#!/usr/bin/env bash
# Fleet end-to-end smoke: coordinator + 3 workers over real HTTP, with a
# worker SIGKILLed mid-sweep. The acceptance property is byte-identity
# under failure — the merged 64-cell NDJSON stream must equal a single
# daemon's output for the same sweep, even though a third of the fleet
# died while serving it — plus visible retry/re-route/breaker counters on
# the coordinator's /metrics. Workers run with the full tiered result
# store (disk tier + peer-fill, DESIGN.md §12), and the tail sections
# assert peer-fill (hit-peer without recompute) and a warm worker restart
# (hit-disk, byte-identical). CI runs it in the fleet shard; locally:
# scripts/fleet_smoke.sh
set -euo pipefail

CPORT="${FLEET_COORD_PORT:-19080}"
WPORT1="${FLEET_W1_PORT:-19081}"
WPORT2="${FLEET_W2_PORT:-19082}"
WPORT3="${FLEET_W3_PORT:-19083}"
SPORT="${FLEET_SINGLE_PORT:-19084}"
COORD="http://127.0.0.1:${CPORT}"
DIR="$(mktemp -d)"
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "== build"
go build -o "$DIR/hdlsd" ./cmd/hdlsd

wait_healthy() {
  for i in $(seq 1 50); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "daemon at $1 never became healthy"
  cat "$DIR"/*.log || true
  exit 1
}

echo "== start 3 workers + coordinator + reference single daemon"
peers_except() { # every worker URL except the port in $1
  local out=()
  for q in "$WPORT1" "$WPORT2" "$WPORT3"; do
    [ "$q" = "$1" ] || out+=("http://127.0.0.1:${q}")
  done
  local IFS=,
  echo "${out[*]}"
}
for p in "$WPORT1" "$WPORT2" "$WPORT3"; do
  "$DIR/hdlsd" -addr "127.0.0.1:${p}" -workers 1 \
    -cache-dir "$DIR/cas-${p}" -cache-peers "$(peers_except "$p")" \
    -cache-peer-timeout 300ms >"$DIR/worker-${p}.log" 2>&1 &
  PIDS+=($!)
done
VICTIM_PID=${PIDS[1]} # the worker on WPORT2
"$DIR/hdlsd" -role coordinator -addr "127.0.0.1:${CPORT}" \
  -peers "http://127.0.0.1:${WPORT1},http://127.0.0.1:${WPORT2},http://127.0.0.1:${WPORT3}" \
  -breaker-failures 1 -breaker-cooldown 60s -backoff 50ms -cell-timeout 30s \
  -probe-interval 500ms >"$DIR/coordinator.log" 2>&1 &
PIDS+=($!)
COORD_PID=${PIDS[3]}
"$DIR/hdlsd" -addr "127.0.0.1:${SPORT}" -workers 4 >"$DIR/single.log" 2>&1 &
PIDS+=($!)
for p in "$WPORT1" "$WPORT2" "$WPORT3" "$CPORT" "$SPORT"; do
  wait_healthy "http://127.0.0.1:${p}"
done
curl -fsS "$COORD/readyz" | grep -q '"status":"ready"' || {
  echo "coordinator not ready"; curl -s "$COORD/readyz"; exit 1; }

echo "== build the 64-cell sweep"
# Heavy enough cells (524288-iteration gaussian loops on 1-thread workers,
# a few hundred ms each) that the sweep is demonstrably in flight when the
# SIGKILL lands.
python3 - "$DIR/sweep.json" <<'EOF'
import json, sys
inters = ["STATIC", "GSS", "TSS", "FAC2"]
cells = [{
    "nodes": 2, "workers_per_node": 8,
    "inter": inters[i % 4], "intra": "STATIC", "approach": "MPI+MPI",
    "seed": i + 1, "workload": "gaussian:n=524288,cv=0.5",
} for i in range(64)]
json.dump({"cells": cells}, open(sys.argv[1], "w"))
EOF

echo "== reference run on the single daemon"
curl -fsSN -H 'Content-Type: application/json' --data-binary "@$DIR/sweep.json" \
  "http://127.0.0.1:${SPORT}/v1/sweep?stream=1" -o "$DIR/expected.ndjson"
[ "$(wc -l <"$DIR/expected.ndjson")" = 64 ] || { echo "reference run incomplete"; exit 1; }

echo "== fleet run, SIGKILLing worker 2 mid-sweep"
: >"$DIR/fleet.ndjson"
curl -fsSN -H 'Content-Type: application/json' --data-binary "@$DIR/sweep.json" \
  "$COORD/v1/sweep" -o "$DIR/fleet.ndjson" &
CURL_PID=$!
# Kill once the stream has demonstrably started but long before it is done.
for i in $(seq 1 200); do
  LINES=$(wc -l <"$DIR/fleet.ndjson")
  if [ "$LINES" -ge 2 ]; then break; fi
  if ! kill -0 "$CURL_PID" 2>/dev/null; then break; fi
  sleep 0.05
done
if [ "$(wc -l <"$DIR/fleet.ndjson")" -lt 64 ]; then
  echo "   killing worker pid $VICTIM_PID at $(wc -l <"$DIR/fleet.ndjson") lines"
else
  echo "   sweep finished before the kill; failover not exercised this run"
fi
kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true
wait "$CURL_PID" || { echo "fleet sweep stream failed"; cat "$DIR/coordinator.log"; exit 1; }

echo "== byte-identity under worker loss"
cmp "$DIR/expected.ndjson" "$DIR/fleet.ndjson" || {
  echo "merged fleet stream differs from the single-daemon reference"
  exit 1
}

echo "== degraded fleet still serves, byte-identically, with 2/3 workers"
curl -fsSN -H 'Content-Type: application/json' --data-binary "@$DIR/sweep.json" \
  "$COORD/v1/sweep" -o "$DIR/fleet2.ndjson"
cmp "$DIR/expected.ndjson" "$DIR/fleet2.ndjson" || {
  echo "degraded-fleet rerun not byte-identical"; exit 1; }

echo "== coordinator metrics show the failure handling"
curl -fsS "$COORD/metrics" >"$DIR/metrics.txt"
grep -q '^hdlsd_fleet_breaker_opens_total [1-9]' "$DIR/metrics.txt" || {
  echo "no breaker trip recorded"; cat "$DIR/metrics.txt"; exit 1; }
for m in hdlsd_fleet_retries_total hdlsd_fleet_reroutes_total hdlsd_fleet_shed_total \
         hdlsd_fleet_breaker_state hdlsd_fleet_cells_total; do
  grep -q "$m" "$DIR/metrics.txt" || { echo "metrics missing $m"; exit 1; }
done
grep -q 'hdlsd_fleet_workers_available 2' "$DIR/metrics.txt" || {
  echo "dead worker still counted available"; grep workers_available "$DIR/metrics.txt"; exit 1; }

echo "== /v1/run through the coordinator relays worker bytes"
CELL='{"nodes":2,"workers_per_node":8,"inter":"GSS","intra":"STATIC","approach":"MPI+MPI","workload":"gaussian:n=2048,cv=0.5"}'
curl -fsS -d "$CELL" "$COORD/v1/run" -o "$DIR/coord-run.json"
curl -fsS -d "$CELL" "http://127.0.0.1:${SPORT}/v1/run" -o "$DIR/single-run.json"
cmp "$DIR/coord-run.json" "$DIR/single-run.json" || { echo "/v1/run bodies differ"; exit 1; }

echo "== readyz reflects the open breaker but the fleet stays ready"
curl -fsS "$COORD/readyz" >"$DIR/readyz.json"
grep -q '"status":"ready"' "$DIR/readyz.json" || { echo "fleet should still be ready"; exit 1; }
grep -q '"open"' "$DIR/readyz.json" || { echo "dead worker's breaker not open in readyz"; cat "$DIR/readyz.json"; exit 1; }

echo "== peer-fill: a worker that never computed a cell serves it as hit-peer"
PCELL='{"nodes":2,"workers_per_node":8,"inter":"TSS","intra":"STATIC","approach":"MPI+MPI","seed":4242,"workload":"gaussian:n=2048,cv=0.5"}'
curl -fsS -d "$PCELL" "http://127.0.0.1:${WPORT1}/v1/run" -o "$DIR/pf-w1.json"
curl -fsS -D "$DIR/pf-h3" -d "$PCELL" "http://127.0.0.1:${WPORT3}/v1/run" -o "$DIR/pf-w3.json"
grep -qi '^x-cache: hit-peer' "$DIR/pf-h3" || {
  echo "worker 3 should peer-fill from worker 1"; cat "$DIR/pf-h3"; exit 1; }
cmp "$DIR/pf-w1.json" "$DIR/pf-w3.json" || { echo "peer fill not byte-identical"; exit 1; }
curl -fsS "http://127.0.0.1:${WPORT3}/metrics" >"$DIR/metrics-w3.txt"
grep -q '^hdlsd_cache_peer_hits_total [1-9]' "$DIR/metrics-w3.txt" || {
  echo "peer-hit counter missing on worker 3"; grep cache "$DIR/metrics-w3.txt"; exit 1; }

echo "== warm restart: worker 1 replays its store from disk as hit-disk"
W1_PID=${PIDS[0]}
kill -TERM "$W1_PID"
for i in $(seq 1 50); do
  kill -0 "$W1_PID" 2>/dev/null || break
  if [ "$i" = 50 ]; then echo "worker 1 did not drain"; exit 1; fi
  sleep 0.2
done
wait "$W1_PID" 2>/dev/null || true
"$DIR/hdlsd" -addr "127.0.0.1:${WPORT1}" -workers 1 \
  -cache-dir "$DIR/cas-${WPORT1}" >"$DIR/worker-${WPORT1}-restart.log" 2>&1 &
PIDS+=($!)
wait_healthy "http://127.0.0.1:${WPORT1}"
curl -fsS -D "$DIR/pf-h1b" -d "$PCELL" "http://127.0.0.1:${WPORT1}/v1/run" -o "$DIR/pf-w1b.json"
grep -qi '^x-cache: hit-disk' "$DIR/pf-h1b" || {
  echo "restarted worker 1 should serve from its disk tier"; cat "$DIR/pf-h1b"; exit 1; }
cmp "$DIR/pf-w1.json" "$DIR/pf-w1b.json" || { echo "warm restart not byte-identical"; exit 1; }

echo "== graceful coordinator shutdown"
kill -TERM "$COORD_PID"
for i in $(seq 1 50); do
  if ! kill -0 "$COORD_PID" 2>/dev/null; then break; fi
  if [ "$i" = 50 ]; then echo "coordinator never exited"; exit 1; fi
  sleep 0.2
done

echo "fleet smoke: OK"
