#!/usr/bin/env bash
# Fleet soak: the durability acceptance scenario (DESIGN.md §13). A
# 3-worker fleet runs under concurrent loadgen traffic while the harness
# SIGKILLs (not SIGTERMs — no drain, no cleanup) first a worker and then
# the coordinator, both of which restart on their original state:
#
#   * an async sweep accepted by the killed worker must survive via the
#     job journal — replayed after restart under its original job id,
#     marked recovered, results complete (zero lost jobs);
#   * the restarted coordinator must merge the reference sweep
#     byte-identically to its pre-crash output;
#   * a tiny-capacity daemon under loadgen overload must shed with 429 +
#     Retry-After (never silent queuing), and an expired end-to-end
#     deadline must resolve every cell as the in-band error line.
#
# CI runs it in the soak shard (~60s); locally: scripts/fleet_soak.sh
set -euo pipefail

CPORT="${SOAK_COORD_PORT:-19090}"
WPORT1="${SOAK_W1_PORT:-19091}"
WPORT2="${SOAK_W2_PORT:-19092}"
WPORT3="${SOAK_W3_PORT:-19093}"
OPORT="${SOAK_OVERLOAD_PORT:-19094}"
COORD="http://127.0.0.1:${CPORT}"
W1="http://127.0.0.1:${WPORT1}"
DIR="$(mktemp -d)"
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null || true; sleep 0.2; rm -rf "$DIR" 2>/dev/null || true' EXIT

echo "== build"
go build -o "$DIR/hdlsd" ./cmd/hdlsd
go build -o "$DIR/loadgen" ./cmd/loadgen

wait_healthy() {
  for i in $(seq 1 50); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "daemon at $1 never became healthy"
  cat "$DIR"/*.log || true
  exit 1
}

start_worker() { # port
  "$DIR/hdlsd" -addr "127.0.0.1:$1" -workers 1 \
    -cache-dir "$DIR/cas-$1" -journal-dir "$DIR/journal-$1" \
    >>"$DIR/worker-$1.log" 2>&1 &
  PIDS+=($!)
}
start_coordinator() {
  "$DIR/hdlsd" -role coordinator -addr "127.0.0.1:${CPORT}" \
    -peers "http://127.0.0.1:${WPORT1},http://127.0.0.1:${WPORT2},http://127.0.0.1:${WPORT3}" \
    -breaker-failures 2 -breaker-cooldown 500ms -backoff 50ms \
    -cell-timeout 30s -probe-interval 250ms >>"$DIR/coordinator.log" 2>&1 &
  PIDS+=($!)
}

echo "== start 3 journaled workers + coordinator"
start_worker "$WPORT1"; W1_PID=$!
start_worker "$WPORT2"
start_worker "$WPORT3"
start_coordinator; COORD_PID=$!
for p in "$WPORT1" "$WPORT2" "$WPORT3" "$CPORT"; do
  wait_healthy "http://127.0.0.1:${p}"
done

echo "== reference sweep through the coordinator (pre-crash baseline)"
python3 - "$DIR/sweep.json" <<'EOF'
import json, sys
inters = ["STATIC", "GSS", "TSS", "FAC2"]
cells = [{
    "nodes": 2, "workers_per_node": 4,
    "inter": inters[i % 4], "intra": "STATIC", "approach": "MPI+MPI",
    "seed": i + 1, "workload": "gaussian:n=65536,cv=0.5",
} for i in range(48)]
json.dump({"cells": cells}, open(sys.argv[1], "w"))
EOF
curl -fsSN -H 'Content-Type: application/json' --data-binary "@$DIR/sweep.json" \
  "$COORD/v1/sweep?stream=1" -o "$DIR/expected.ndjson"
[ "$(wc -l <"$DIR/expected.ndjson")" = 48 ] || { echo "baseline incomplete"; exit 1; }

echo "== background load against the coordinator"
"$DIR/loadgen" -target "$COORD" -clients 3 -duration 20s \
  -cells 6 -workload 'constant:n=16384' >"$DIR/loadgen.json" 2>"$DIR/loadgen.log" &
LOADGEN_PID=$!
PIDS+=($!)

echo "== async sweep accepted by worker 1, then SIGKILL it mid-flight"
# Heavy cells on a 1-thread worker: demonstrably incomplete when the kill
# lands, so recovery really replays work instead of rubber-stamping. SS/SS
# cells contend on every iteration, which the simulator cannot
# fast-forward analytically — several hundred ms each, wall-clock.
python3 - "$DIR/job.json" <<'EOF'
import json, sys
cells = [{
    "nodes": 8, "workers_per_node": 16,
    "inter": "SS", "intra": "SS", "approach": "MPI+MPI",
    "seed": 7000 + i, "workload": "gaussian:n=131072,cv=0.5",
} for i in range(12)]
json.dump({"cells": cells}, open(sys.argv[1], "w"))
EOF
curl -fsS -H 'Content-Type: application/json' --data-binary "@$DIR/job.json" \
  "$W1/v1/sweep" -o "$DIR/accepted.json"
JOB_ID=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["job_id"])' "$DIR/accepted.json")
[ -n "$JOB_ID" ] || { echo "no job id in $(cat "$DIR/accepted.json")"; exit 1; }
ls "$DIR/journal-${WPORT1}/" | grep -q "^${JOB_ID}\." || {
  echo "accepted job $JOB_ID has no journal entry"
  ls -la "$DIR/journal-${WPORT1}/"
  curl -s "$W1/metrics" | grep -E 'journal|recovered'
  tail -5 "$DIR/worker-${WPORT1}.log"
  exit 1; }
sleep 0.5 # let the job get demonstrably in flight
kill -9 "$W1_PID"
wait "$W1_PID" 2>/dev/null || true

echo "== restart worker 1 on its journal + cache dirs"
start_worker "$WPORT1"
wait_healthy "$W1"
curl -fsS "$W1/metrics" -o "$DIR/w1-metrics.txt"
grep -q '^hdlsd_jobs_recovered_total 1' "$DIR/w1-metrics.txt" || {
  echo "restarted worker did not recover the journaled job"
  grep -E 'recover|journal' "$DIR/w1-metrics.txt"; exit 1; }

echo "== recovered job completes under its original id, zero lost jobs"
for i in $(seq 1 300); do
  STATUS=$(curl -fsS "$W1/v1/jobs/$JOB_ID" || echo '{}')
  if echo "$STATUS" | grep -q '"status":"done"'; then break; fi
  if [ "$i" = 300 ]; then echo "recovered job never finished: $STATUS"; exit 1; fi
  sleep 0.2
done
echo "$STATUS" | grep -q '"recovered":true' || {
  echo "job status lost the recovered marker: $STATUS"; exit 1; }
curl -fsS "$W1/v1/jobs/$JOB_ID/results" -o "$DIR/recovered.ndjson"
[ "$(wc -l <"$DIR/recovered.ndjson")" = 12 ] || {
  echo "recovered job returned $(wc -l <"$DIR/recovered.ndjson")/12 cells"; exit 1; }
if grep -q '"error"' "$DIR/recovered.ndjson"; then
  echo "recovered job has error cells"; grep '"error"' "$DIR/recovered.ndjson"; exit 1
fi
# The terminal append + journal removal runs in the completion path; give
# it a beat past the status flip.
for i in $(seq 1 25); do
  if [ -z "$(ls "$DIR/journal-${WPORT1}/")" ]; then break; fi
  if [ "$i" = 25 ]; then
    echo "journal not cleared after completion"; ls "$DIR/journal-${WPORT1}/"; exit 1
  fi
  sleep 0.2
done

echo "== SIGKILL the coordinator under load, restart it"
kill -9 "$COORD_PID"
wait "$COORD_PID" 2>/dev/null || true
start_coordinator
wait_healthy "$COORD"

echo "== restarted coordinator merges the reference sweep byte-identically"
curl -fsSN -H 'Content-Type: application/json' --data-binary "@$DIR/sweep.json" \
  "$COORD/v1/sweep?stream=1" -o "$DIR/replayed.ndjson"
cmp "$DIR/expected.ndjson" "$DIR/replayed.ndjson" || {
  echo "post-crash merged stream differs from the pre-crash baseline"; exit 1; }

echo "== loadgen rode through both crashes"
wait "$LOADGEN_PID" || { echo "loadgen failed"; cat "$DIR/loadgen.log"; exit 1; }
python3 - "$DIR/loadgen.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["sweeps"] > 0, s
assert s["lines"] > 0, s
print(f'   loadgen: {s["sweeps"]} sweeps, {s["lines"]} lines, '
      f'{s["transport_errors"]} transport errors across the crashes')
EOF

echo "== overload sheds with 429 + Retry-After, never silent queuing"
"$DIR/hdlsd" -addr "127.0.0.1:${OPORT}" -workers 1 -max-active-jobs 1 \
  >"$DIR/overload.log" 2>&1 &
PIDS+=($!)
wait_healthy "http://127.0.0.1:${OPORT}"
"$DIR/loadgen" -target "http://127.0.0.1:${OPORT}" -clients 4 -duration 4s \
  -cells 64 -workload 'gaussian:n=524288,cv=0.5' >"$DIR/overload.json" 2>&1
python3 - "$DIR/overload.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["statuses"].get("429", 0) > 0, s
assert s["retry_after_seen"] > 0, s
print(f'   overload: {s["statuses"]["429"]} sheds, '
      f'{s["retry_after_seen"]} Retry-After hints honored')
EOF
curl -fsS "http://127.0.0.1:${OPORT}/metrics" -o "$DIR/overload-metrics.txt"
grep -q '^hdlsd_jobs_shed_total [1-9]' "$DIR/overload-metrics.txt" || {
  echo "sheds not counted on /metrics"; exit 1; }

echo "== an expired end-to-end deadline resolves in-band"
curl -fsSN -H 'Content-Type: application/json' -H 'X-Deadline: 2020-01-01T00:00:00Z' \
  --data-binary "@$DIR/sweep.json" "$COORD/v1/sweep?stream=1" -o "$DIR/expired.ndjson"
[ "$(grep -c '"error":"deadline exceeded"' "$DIR/expired.ndjson")" = 48 ] || {
  echo "expired sweep did not resolve every cell in-band"
  head -3 "$DIR/expired.ndjson"; exit 1; }

echo "fleet soak: OK"
