#!/usr/bin/env bash
# Result-store end-to-end smoke (DESIGN.md §12): a daemon with a disk tier
# computes a cell and a 16-cell sweep, is SIGTERMed (drain flushes pending
# disk writes), and is restarted on the same directory — the warm replay
# must be byte-identical and served as X-Cache: hit-disk without touching
# the engine. A second section starts a two-worker fleet where worker 2
# peer-fills from worker 1 (X-Cache: hit-peer, byte-identical, peer-hits
# metric visible). CI runs it in the castore shard; locally:
# scripts/castore_smoke.sh
set -euo pipefail

PORT="${CASTORE_PORT:-19180}"
W1PORT="${CASTORE_W1_PORT:-19181}"
W2PORT="${CASTORE_W2_PORT:-19182}"
BASE="http://127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "== build"
go build -o "$DIR/hdlsd" ./cmd/hdlsd

wait_healthy() {
  for i in $(seq 1 50); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "daemon at $1 never became healthy"
  cat "$DIR"/*.log || true
  exit 1
}

wait_exit() { # pid logfile
  for i in $(seq 1 50); do
    kill -0 "$1" 2>/dev/null || break
    if [ "$i" = 50 ]; then echo "daemon $1 did not exit after SIGTERM"; exit 1; fi
    sleep 0.2
  done
  wait "$1" 2>/dev/null || true
  grep -q 'drained, exiting' "$2" || { echo "no drain log in $2"; cat "$2"; exit 1; }
}

echo "== cold daemon with a disk tier"
"$DIR/hdlsd" -addr "127.0.0.1:${PORT}" -workers 4 -cache-dir "$DIR/cas" \
  >"$DIR/cold.log" 2>&1 &
COLD_PID=$!
PIDS+=("$COLD_PID")
wait_healthy "$BASE"

CELL='{"app":"Mandelbrot","nodes":2,"workers_per_node":8,"inter":"GSS","intra":"STATIC","approach":"MPI+MPI","workload":"gaussian:n=2048,cv=0.5"}'
curl -fsS -D "$DIR/h-cold" -d "$CELL" "$BASE/v1/run" -o "$DIR/run-cold.json"
grep -qi '^x-cache: miss' "$DIR/h-cold" || { echo "cold run should miss"; cat "$DIR/h-cold"; exit 1; }

python3 - "$DIR/sweep.json" <<'PYEOF'
import json, sys
inters = ["STATIC", "GSS", "TSS", "FAC2"]
cells = [{"inter": inters[i % 4], "intra": "SS", "approach": "MPI+MPI",
          "nodes": 2, "workers_per_node": 8, "seed": 700 + i // 4,
          "workload": "gaussian:n=1024,cv=0.4"} for i in range(16)]
json.dump({"cells": cells}, open(sys.argv[1], "w"))
PYEOF
curl -fsSN -d @"$DIR/sweep.json" "$BASE/v1/sweep?stream=1" -o "$DIR/sweep-cold.ndjson"
[ "$(wc -l <"$DIR/sweep-cold.ndjson")" = 16 ] || { echo "expected 16 NDJSON lines"; exit 1; }

echo "== SIGTERM: the drain flushes the disk tier"
kill -TERM "$COLD_PID"
wait_exit "$COLD_PID" "$DIR/cold.log"
[ "$(ls "$DIR/cas" | wc -l)" -ge 17 ] || {
  echo "disk tier has $(ls "$DIR/cas" | wc -l) entries, want >= 17"; ls -la "$DIR/cas"; exit 1; }

echo "== restart on the same directory: warm replay from disk"
"$DIR/hdlsd" -addr "127.0.0.1:${PORT}" -workers 4 -cache-dir "$DIR/cas" \
  >"$DIR/warm.log" 2>&1 &
WARM_PID=$!
PIDS+=("$WARM_PID")
wait_healthy "$BASE"

curl -fsS -D "$DIR/h-warm" -d "$CELL" "$BASE/v1/run" -o "$DIR/run-warm.json"
grep -qi '^x-cache: hit-disk' "$DIR/h-warm" || { echo "restarted run should hit disk"; cat "$DIR/h-warm"; exit 1; }
cmp "$DIR/run-cold.json" "$DIR/run-warm.json" || { echo "disk replay not byte-identical"; exit 1; }

curl -fsSN -d @"$DIR/sweep.json" "$BASE/v1/sweep?stream=1" -o "$DIR/sweep-warm.ndjson"
cmp "$DIR/sweep-cold.ndjson" "$DIR/sweep-warm.ndjson" || {
  echo "restarted sweep not byte-identical"; exit 1; }

curl -fsS "$BASE/metrics" >"$DIR/metrics-warm"
grep -q '^hdlsd_cache_disk_hits_total 1[7-9]' "$DIR/metrics-warm" || {
  echo "disk-hit counter off (want 17: 1 cell + 16 sweep cells)"
  grep cache "$DIR/metrics-warm"; exit 1; }
grep -q '^hdlsd_cache_disk_entries 1[7-9]' "$DIR/metrics-warm"

kill -TERM "$WARM_PID"
wait_exit "$WARM_PID" "$DIR/warm.log"

echo "== two-worker fleet: worker 2 peer-fills from worker 1"
"$DIR/hdlsd" -addr "127.0.0.1:${W1PORT}" -workers 2 -cache-dir "$DIR/cas-w1" \
  >"$DIR/w1.log" 2>&1 &
PIDS+=($!)
wait_healthy "http://127.0.0.1:${W1PORT}"
"$DIR/hdlsd" -addr "127.0.0.1:${W2PORT}" -workers 2 \
  -cache-peers "http://127.0.0.1:${W1PORT}" -cache-peer-timeout 2s \
  >"$DIR/w2.log" 2>&1 &
PIDS+=($!)
wait_healthy "http://127.0.0.1:${W2PORT}"

curl -fsS -d "$CELL" "http://127.0.0.1:${W1PORT}/v1/run" -o "$DIR/run-w1.json"
curl -fsS -D "$DIR/h-w2" -d "$CELL" "http://127.0.0.1:${W2PORT}/v1/run" -o "$DIR/run-w2.json"
grep -qi '^x-cache: hit-peer' "$DIR/h-w2" || { echo "worker 2 should peer-fill"; cat "$DIR/h-w2"; exit 1; }
cmp "$DIR/run-w1.json" "$DIR/run-w2.json" || { echo "peer fill not byte-identical"; exit 1; }
cmp "$DIR/run-cold.json" "$DIR/run-w2.json" || { echo "peer fill differs from the original compute"; exit 1; }

curl -fsS "http://127.0.0.1:${W2PORT}/metrics" >"$DIR/metrics-w2"
grep -q '^hdlsd_cache_peer_hits_total [1-9]' "$DIR/metrics-w2" || {
  echo "peer-hit counter missing"; grep cache "$DIR/metrics-w2"; exit 1; }

echo "== the /v1/cache endpoint serves raw stored bytes, local-only"
HASH=$(grep -i '^x-config-hash:' "$DIR/h-w2" | tr -d '\r' | awk '{print $2}')
[ -n "$HASH" ] || { echo "no X-Config-Hash header"; cat "$DIR/h-w2"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:${W1PORT}/v1/cache/$HASH")
[ "$CODE" = 200 ] || { echo "peer cache lookup: $CODE"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:${W1PORT}/v1/cache/$(printf '0%.0s' $(seq 64))")
[ "$CODE" = 404 ] || { echo "unknown hash should 404, got $CODE"; exit 1; }

echo "castore smoke: OK"
