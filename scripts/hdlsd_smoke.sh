#!/usr/bin/env bash
# End-to-end smoke against a live hdlsd: builds the daemon, drives the
# acceptance scenario over real HTTP (single cell with cache-hit
# byte-identity, a 16-cell NDJSON sweep repeated byte-identically, async
# job lifecycle, discovery, metrics), then checks graceful SIGTERM drain.
# CI runs it in the hdlsd shard; it is also the quickest local sanity
# check: scripts/hdlsd_smoke.sh
set -euo pipefail

PORT="${HDLSD_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
trap 'kill "${PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "== build"
go build -o "$DIR/hdlsd" ./cmd/hdlsd

echo "== start"
"$DIR/hdlsd" -addr "127.0.0.1:${PORT}" -workers 4 >"$DIR/hdlsd.log" 2>&1 &
PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then echo "daemon never became healthy"; cat "$DIR/hdlsd.log"; exit 1; fi
  sleep 0.2
done
curl -fsS "$BASE/healthz"

echo "== single cell: miss then byte-identical hit"
CELL='{"app":"Mandelbrot","nodes":2,"workers_per_node":8,"inter":"GSS","intra":"STATIC","approach":"MPI+MPI","workload":"gaussian:n=2048,cv=0.5"}'
curl -fsS -D "$DIR/h1" -d "$CELL" "$BASE/v1/run" -o "$DIR/run1.json"
curl -fsS -D "$DIR/h2" -d "$CELL" "$BASE/v1/run" -o "$DIR/run2.json"
grep -qi '^x-cache: miss' "$DIR/h1" || { echo "first run should miss"; cat "$DIR/h1"; exit 1; }
grep -qi '^x-cache: hit' "$DIR/h2" || { echo "second run should hit"; cat "$DIR/h2"; exit 1; }
cmp "$DIR/run1.json" "$DIR/run2.json" || { echo "cache hit not byte-identical"; exit 1; }

echo "== invalid config maps to 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"nodes":-1}' "$BASE/v1/run")
[ "$CODE" = 400 ] || { echo "expected 400, got $CODE"; exit 1; }

echo "== 16-cell sweep: NDJSON stream, repeat byte-identical from cache"
python3 - "$DIR/sweep.json" <<'PYEOF'
import json, sys
inters = ["STATIC", "GSS", "TSS", "FAC2"]
cells = [{"inter": inters[i % 4], "intra": "SS", "approach": "MPI+MPI",
          "nodes": 2, "workers_per_node": 8, "seed": 100 + i // 4,
          "workload": "gaussian:n=1024,cv=0.4"} for i in range(16)]
json.dump({"cells": cells}, open(sys.argv[1], "w"))
PYEOF
curl -fsSN -d @"$DIR/sweep.json" "$BASE/v1/sweep?stream=1" -o "$DIR/sweep1.ndjson"
[ "$(wc -l < "$DIR/sweep1.ndjson")" = 16 ] || { echo "expected 16 NDJSON lines"; exit 1; }
curl -fsSN -d @"$DIR/sweep.json" "$BASE/v1/sweep?stream=1" -o "$DIR/sweep2.ndjson"
cmp "$DIR/sweep1.ndjson" "$DIR/sweep2.ndjson" || { echo "repeated sweep not byte-identical"; exit 1; }

echo "== async job lifecycle"
JOB=$(curl -fsS -d @"$DIR/sweep.json" "$BASE/v1/sweep" | python3 -c 'import json,sys; print(json.load(sys.stdin)["job_id"])')
curl -fsS "$BASE/v1/jobs/$JOB/results" -o "$DIR/job.ndjson"
cmp "$DIR/sweep1.ndjson" "$DIR/job.ndjson" || { echo "job results differ from streamed sweep"; exit 1; }
curl -fsS "$BASE/v1/jobs/$JOB" | grep -q '"status":"done"' || { echo "job not done"; exit 1; }

echo "== discovery + metrics"
curl -fsS "$BASE/v1/techniques" | grep -q '"name":"FAC2"'
curl -fsS "$BASE/v1/workloads" | grep -q '"name":"gaussian"'
curl -fsS "$BASE/metrics" >"$DIR/metrics"
# sweep2 (16 cells) and the async job (16 cells) were served from cache.
grep -q '^hdlsd_cells_cached_total 32' "$DIR/metrics" || { echo "cache counters off"; cat "$DIR/metrics"; exit 1; }
grep -q '^hdlsd_arena_reuses_total' "$DIR/metrics"

echo "== graceful drain on SIGTERM"
kill -TERM "$PID"
for i in $(seq 1 50); do
  kill -0 "$PID" 2>/dev/null || break
  if [ "$i" = 50 ]; then echo "daemon did not exit after SIGTERM"; exit 1; fi
  sleep 0.2
done
wait "$PID" 2>/dev/null || true
grep -q 'drained, exiting' "$DIR/hdlsd.log" || { echo "no drain log"; cat "$DIR/hdlsd.log"; exit 1; }
PID=""

echo "hdlsd smoke: OK"
