#!/usr/bin/env bash
# Negative smoke for the machine-class perf gates (DESIGN.md §14): the
# gates must fail the *right way*. Three scenarios against real subprocess
# daemons:
#
#   1. a healthy tiny class passes and appends one trend row per case
#   2. a deliberately lowered goal fails CI with the check's name and
#      measured-vs-goal values (exit 1)
#   3. a SIGKILLed check daemon mid-case fails the *check* — named, exit 1
#      — instead of crashing the harness (exit >= 2) or hanging
#
# CI runs it in the checks shard; locally: make checks-smoke
set -euo pipefail

DIR="$(mktemp -d)"
trap 'kill "${BGPID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "== build"
go build -o "$DIR/hdlsd" ./cmd/hdlsd
go build -o "$DIR/hdlscheck" ./cmd/hdlscheck

# mk_tree DIR FLOOR SCALE NODES writes a one-class ("smoke") one-case
# ("grid") tree: a figure-4 sweep with a cells/second floor.
mk_tree() {
  local root="$1" floor="$2" scale="$3" nodes="$4"
  mkdir -p "$root/smoke/cases/grid"
  cat >"$root/smoke/machine.json" <<EOF
{"calib_ref_mops": 700, "calib_band": 1000}
EOF
  cat >"$root/smoke/cases/grid/case.json" <<EOF
{
  "target": "sweep",
  "sweep": {"figures": [4], "nodes": [$nodes], "scale": $scale},
  "goals": {"cells_per_second_min": $floor, "error_lines_max": 0}
}
EOF
}

echo "== 1. healthy class passes, trend row appended"
mk_tree "$DIR/pass" 1 1024 2
"$DIR/hdlscheck" -dir "$DIR/pass" -class smoke -hdlsd "$DIR/hdlsd" \
  -trend "$DIR/trend" | tee "$DIR/pass.out"
grep -q 'check smoke/grid: PASS' "$DIR/pass.out" || { echo "FAIL: no named PASS"; exit 1; }
[ "$(wc -l < "$DIR/trend/smoke.ndjson")" = 1 ] || { echo "FAIL: expected 1 trend row"; exit 1; }
grep -q '"check":"smoke/grid"' "$DIR/trend/smoke.ndjson" || { echo "FAIL: trend row unnamed"; exit 1; }

echo "== 2. lowered goal fails with the check's name and measured-vs-goal"
mk_tree "$DIR/fail" 10000000 1024 2
RC=0
"$DIR/hdlscheck" -dir "$DIR/fail" -class smoke -hdlsd "$DIR/hdlsd" \
  -trend none >"$DIR/fail.out" 2>&1 || RC=$?
cat "$DIR/fail.out"
[ "$RC" = 1 ] || { echo "FAIL: lowered goal exited $RC, want 1"; exit 1; }
grep -q 'check smoke/grid: FAIL: cells_per_second .* < goal' "$DIR/fail.out" \
  || { echo "FAIL: verdict does not name check and goal"; exit 1; }

echo "== 3. SIGKILLed daemon fails the check, not the harness"
# A slow grid (large-P rows at 16x the bench workload) keeps the sweep in
# flight for several seconds, leaving a wide window to kill the daemon
# mid-case.
mk_tree "$DIR/kill" 1 4 '8, 16'
RC=0
"$DIR/hdlscheck" -dir "$DIR/kill" -class smoke -hdlsd "$DIR/hdlsd" \
  -trend none -daemon-pidfile "$DIR/pid" >"$DIR/kill.out" 2>&1 &
BGPID=$!
for i in $(seq 1 100); do
  [ -s "$DIR/pid" ] && break
  [ "$i" = 100 ] && { echo "FAIL: pidfile never appeared"; exit 1; }
  sleep 0.1
done
sleep 0.7 # let the sweep get in flight
kill -9 "$(cat "$DIR/pid")"
wait "$BGPID" || RC=$?
BGPID=""
cat "$DIR/kill.out"
[ "$RC" = 1 ] || { echo "FAIL: killed daemon exited $RC, want 1 (named check failure)"; exit 1; }
grep -q 'check smoke/grid: FAIL:.*daemon died' "$DIR/kill.out" \
  || { echo "FAIL: death not attributed to the daemon"; exit 1; }

echo "checks smoke OK"
