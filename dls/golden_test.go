package dls

import (
	"fmt"
	"testing"
)

// TestGoldenChunkProfiles pins the exact chunk sequences of every
// non-adaptive technique at the canonical configuration N=1000, P=4 (the
// setting used throughout the loop-scheduling literature). Correctness
// (coverage, positivity, monotonicity) is established by the invariant
// tests; these snapshots catch unintended formula changes, with the full
// profile in the failure text. Each sequence ends where the
// scheduled-iterations clamp exhausts the loop.
func TestGoldenChunkProfiles(t *testing.T) {
	golden := map[Technique][]int{
		STATIC: {250, 250, 250, 250},
		GSS:    {250, 188, 141, 106, 80, 60, 45, 34, 26, 19, 15, 11, 8, 6, 5, 4, 2},
		TSS:    {125, 116, 108, 100, 91, 83, 75, 67, 58, 50, 42, 34, 25, 17, 9},
		// FAC with σ/µ = 0.5: b₀ = 4/(2√1000)·0.5 ≈ 0.032, x₀ ≈ 1.04 —
		// the first batch hands out nearly everything, as designed.
		FAC: {240, 240, 240, 240, 5, 5, 5, 5, 2, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1},
		FAC2: {125, 125, 125, 125, 63, 63, 63, 63, 32, 32, 32, 32, 16, 16,
			16, 16, 8, 8, 8, 8, 4, 4, 4, 4, 2, 2, 2, 2},
		TFSS: {112, 112, 112, 112, 79, 79, 79, 79, 46, 46, 46, 46, 13, 13, 13, 13},
		WF: {125, 125, 125, 125, 63, 63, 63, 63, 32, 32, 32, 32, 16, 16,
			16, 16, 8, 8, 8, 8, 4, 4, 4, 4, 2, 2, 2, 2},
	}
	for tech, want := range golden {
		got := ChunkSizes(MustNew(tech, allParams(1000, 4)))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%v profile changed:\n got  %v\n want %v", tech, got, want)
		}
	}
	ss := ChunkSizes(MustNew(SS, allParams(1000, 4)))
	if len(ss) != 1000 {
		t.Errorf("SS issued %d chunks, want 1000", len(ss))
	}
}

// TestGoldenFSC pins FSC chunk sizes at two settings.
func TestGoldenFSC(t *testing.T) {
	// Tiny h/σ ratio ⇒ minimal chunks.
	if got := MustNew(FSC, allParams(1000, 4)).Chunk(0, 0); got != 1 {
		t.Errorf("FSC canonical chunk = %d, want 1", got)
	}
	// ℓ = (√2·10⁵·10⁻³/(0.2·16·√log16))^(2/3) ≈ 8.2 ⇒ 9 after ceiling.
	p := Params{N: 100000, P: 16, Sigma: 0.2, Overhead: 1e-3}
	if got := MustNew(FSC, p).Chunk(0, 0); got != 9 {
		t.Errorf("FSC large-h chunk = %d, want 9", got)
	}
}

// TestGoldenRND pins the first RND draws so the hash stays stable across
// refactors (the simulation's determinism depends on it).
func TestGoldenRND(t *testing.T) {
	s := MustNew(RND, Params{N: 1000, P: 4})
	want := []int{55, 80, 40, 110, 28, 10, 71, 86}
	for i, w := range want {
		if got := s.Chunk(i, 0); got != w {
			t.Errorf("RND chunk(%d) = %d, want %d", i, got, w)
		}
	}
}
