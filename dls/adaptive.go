package dls

import "math"

// --------------------------------------------------------------------- AF --

// afSched implements adaptive factoring (Banicescu & Liu, 2000; Cariño &
// Banicescu, 2008): unlike FAC, which needs σ and µ a priori, AF estimates
// each worker's mean iteration time µ_w and variance σ_w² online and sizes
// the next chunk from the current estimates:
//
//	D = Σ_w σ_w²/µ_w,  T = Σ_w 1/µ_w
//	chunk_w = ( D + 2·T·R − √(D² + 4·D·T·R) ) / (2·µ_w·T²)
//
// with R the remaining iterations. In the σ→0 limit this hands worker w its
// proportional share R·(1/µ_w)/T (the adaptive analogue of FAC's σ→0 →
// STATIC degeneration); growing variance estimates shrink the chunks.
// Until every worker has measurements it falls back to FAC2-style batching,
// as practical implementations do.
type afSched struct {
	base
	// Per-worker Welford estimators of iteration execution time.
	count []float64
	mean  []float64
	m2    []float64
	// issued approximates the scheduled-iterations counter so Chunk can
	// estimate R without an external feedback channel. Callers that clamp
	// chunks keep coverage exact regardless (the estimate only shapes
	// sizes, never correctness).
	issued int
}

func newAF(p Params) Schedule {
	return &afSched{
		base:  base{AF, p},
		count: make([]float64, p.P),
		mean:  make([]float64, p.P),
		m2:    make([]float64, p.P),
	}
}

// Record implements Adaptive: it folds a chunk's measured execution time
// into worker w's per-iteration estimators.
func (s *afSched) Record(w int, size int, execTime, schedTime float64) {
	if w < 0 || w >= s.p.P || size <= 0 || execTime <= 0 {
		return
	}
	perIter := execTime / float64(size)
	s.count[w]++
	delta := perIter - s.mean[w]
	s.mean[w] += delta / s.count[w]
	s.m2[w] += delta * (perIter - s.mean[w])
}

func (s *afSched) Chunk(step, worker int) int {
	r := s.p.N - s.issued
	if r < 1 {
		return s.clampMin(1)
	}
	var d, t float64
	sampled := 0
	for w := 0; w < s.p.P; w++ {
		if s.count[w] < 2 || s.mean[w] <= 0 {
			continue
		}
		variance := s.m2[w] / (s.count[w] - 1)
		d += variance / s.mean[w]
		t += 1 / s.mean[w]
		sampled++
	}
	var c int
	if sampled < s.p.P || t <= 0 {
		// Warm-up: FAC2-style batch so every worker gets measured quickly.
		c = fac2Nominal(s.p.N, s.p.P, step/s.p.P+1)
	} else {
		mu := s.mean[worker]
		if worker < 0 || worker >= s.p.P || s.count[worker] < 2 || mu <= 0 {
			mu = float64(s.p.P) / t // harmonic-mean fallback
		}
		rf := float64(r)
		x := d + 2*t*rf - math.Sqrt(d*d+4*d*t*rf)
		c = int(x / (2 * mu * t * t))
	}
	if c < 1 {
		c = 1
	}
	if c > r {
		c = r
	}
	s.issued += c
	return s.clampMin(c)
}

// -------------------------------------------------------------------- RND --

// rndSched is random self-scheduling as implemented in LaPeSD-libGOMP
// (Ciorba, Iwainsky & Buder, iWomp 2018): each scheduling step draws a
// chunk size uniformly from [1, ⌈N/(2P)⌉]. The draw is a pure hash of the
// scheduling step, so the technique stays deterministic, step-indexed and
// safe for concurrent use — exactly like the other closed forms.
type rndSched struct {
	base
	max int64
}

func newRND(p Params) Schedule {
	max := int64(ceilDiv(maxInt(p.N, 1), 2*p.P))
	if max < 1 {
		max = 1
	}
	return &rndSched{base{RND, p}, max}
}

// splitmix64 is the SplitMix64 mixing function — a high-quality stateless
// hash from a 64-bit counter to a 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *rndSched) Chunk(step, _ int) int {
	h := splitmix64(uint64(step) + 0x243f6a8885a308d3)
	return s.clampMin(int(int64(h%uint64(s.max)) + 1))
}
