package dls_test

import (
	"fmt"

	"repro/dls"
)

// Inspect the chunk profile of guided self-scheduling.
func ExampleChunkSizes() {
	sched := dls.MustNew(dls.GSS, dls.Params{N: 100, P: 4})
	fmt.Println(dls.ChunkSizes(sched))
	// Output: [25 19 15 11 8 6 5 4 3 2 2]
}

// Drive a schedule sequentially with an Assigner; chunks are clamped so the
// loop is covered exactly.
func ExampleAssigner() {
	a := dls.NewAssigner(dls.MustNew(dls.FAC2, dls.Params{N: 64, P: 2}))
	for {
		start, size, ok := a.Next(0)
		if !ok {
			break
		}
		fmt.Printf("[%d,%d) ", start, start+size)
	}
	// Output: [0,16) [16,32) [32,40) [40,48) [48,52) [52,56) [56,58) [58,60) [60,61) [61,62) [62,63) [63,64)
}

// Step-indexed chunk calculation: the form used by the paper's distributed
// chunk-calculation approach, where any worker computes the size of step s
// without consulting a master.
func ExampleSchedule_chunk() {
	sched := dls.MustNew(dls.TSS, dls.Params{N: 1000, P: 4})
	for s := 0; s < 5; s++ {
		fmt.Print(sched.Chunk(s, 0), " ")
	}
	// Output: 125 116 108 100 91
}

// Weighted factoring scales chunks by per-worker speed.
func ExampleTechnique_weighted() {
	sched := dls.MustNew(dls.WF, dls.Params{
		N: 1 << 10, P: 2, Weights: []float64{3, 1},
	})
	fmt.Println("fast worker:", sched.Chunk(0, 0))
	fmt.Println("slow worker:", sched.Chunk(1, 1))
	// Output:
	// fast worker: 384
	// slow worker: 128
}

// Parse accepts the conventional names, case-insensitively.
func ExampleParse() {
	t, _ := dls.Parse("awf-b")
	fmt.Println(t, t.IsAdaptive())
	// Output: AWF-B true
}
