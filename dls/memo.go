package dls

import (
	"math"
	"sync"
)

// This file provides a process-wide memo of immutable schedules: sweep
// drivers run thousands of cells that rebuild identical schedules
// (same technique, N, P, statistical inputs and weights), so non-adaptive
// schedules — pure functions of (step, worker) — are constructed once and
// shared. Adaptive techniques (the AWF family, AF) carry per-run mutable
// state and are never shared.
//
// FAC and TFSS extend an internal batch table lazily, which would race
// under concurrent sweep cells; Shared freezes them at construction by
// precomputing the full table (the recurrences reach their constant tail
// after finitely many batches), yielding chunk-for-chunk identical,
// immutable schedules.

// memoKey identifies a schedule construction. Weights (WF) are folded into
// a hash; the stored entry keeps the exact weights to rule out collisions.
type memoKey struct {
	t           Technique
	n, p, min   int
	mean, sigma float64
	overhead    float64
	wlen        int
	whash       uint64
}

type memoEntry struct {
	sched   Schedule
	weights []float64
}

var memo sync.Map // memoKey -> *memoEntry

func hashWeights(ws []float64) uint64 {
	h := uint64(1469598103934665603) // FNV-1a
	for _, w := range ws {
		b := math.Float64bits(w)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> uint(s)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func weightsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Shared returns a process-wide memoized schedule for technique t with
// parameters p, safe for concurrent use from independent simulations. The
// returned schedule produces chunk sizes identical to MustNew(t, p) for
// every (step, worker). Adaptive techniques fall back to a fresh mutable
// schedule, as they must.
func Shared(t Technique, p Params) Schedule {
	if t.IsAdaptive() {
		return MustNew(t, p)
	}
	key := memoKey{
		t: t, n: p.N, p: p.P, min: p.MinChunk,
		mean: p.Mean, sigma: p.Sigma, overhead: p.Overhead,
		wlen: len(p.Weights), whash: hashWeights(p.Weights),
	}
	if v, ok := memo.Load(key); ok {
		e := v.(*memoEntry)
		if weightsEqual(e.weights, p.Weights) {
			return e.sched
		}
		return MustNew(t, p) // astronomically unlikely hash collision
	}
	s := MustNew(t, p)
	freeze(s)
	e := &memoEntry{sched: s}
	if p.Weights != nil {
		e.weights = append([]float64(nil), p.Weights...)
	}
	if prev, loaded := memo.LoadOrStore(key, e); loaded {
		pe := prev.(*memoEntry)
		if weightsEqual(pe.weights, p.Weights) {
			return pe.sched
		}
		return s
	}
	return s
}

// freeze precomputes the lazily extended batch tables of FAC and TFSS so
// the shared instance is immutable. Both recurrences reach a constant tail:
// FAC once the remaining-iteration counter hits zero (every later batch
// yields the clamped minimum), TFSS once the underlying TSS linear decrease
// has bottomed out at its last chunk.
func freeze(s Schedule) {
	switch f := s.(type) {
	case *facSched:
		for batch := 0; ; batch++ {
			f.extendTo(batch)
			if f.remaining[batch] <= 0 {
				f.frozen = true
				return
			}
		}
	case *tfssSched:
		// Beyond the TSS step horizon every chunk is the clamped minimum,
		// so batches past ⌈steps/P⌉ are constant; precompute one beyond.
		last := f.tss.steps/f.p.P + 1
		f.extendTo(last)
		f.frozen = true
	}
}
