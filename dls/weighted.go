package dls

// --------------------------------------------------------------------- WF --

type wfSched struct {
	base
	weights []float64
}

// newWF implements weighted factoring (Hummel, Schmidt, Uma & Wein, SPAA
// 1996): chunks follow FAC2's batch sizes, but each worker's share is scaled
// by its relative weight. Weights are normalized to mean 1 so the batch
// still hands out R_j/2 iterations in expectation.
func newWF(p Params) Schedule {
	w := normalizeWeights(p.Weights, p.P)
	return &wfSched{base{WF, p}, w}
}

func (s *wfSched) Chunk(step, worker int) int {
	nominal := fac2Nominal(s.p.N, s.p.P, step/s.p.P+1)
	wt := 1.0
	if worker >= 0 && worker < len(s.weights) {
		wt = s.weights[worker]
	}
	return s.clampMin(int(float64(nominal)*wt + 0.5))
}

// normalizeWeights scales weights so that their mean is exactly 1; a nil
// slice yields uniform weights.
func normalizeWeights(in []float64, p int) []float64 {
	out := make([]float64, p)
	if in == nil {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	var sum float64
	for _, v := range in {
		sum += v
	}
	for i := range out {
		out[i] = in[i] * float64(p) / sum
	}
	return out
}

// -------------------------------------------------------------- AWF family --

type awfSched struct {
	base
	variant Technique

	iters []float64 // iterations executed per worker
	times []float64 // execution time per worker (incl. overhead for D/E)

	weights   []float64
	lastBatch int  // last batch for which weights were recomputed (B/D)
	dirty     bool // measurements arrived since the last recompute
}

// newAWF builds one of the adaptive weighted factoring variants (Banicescu,
// Velusamy & Devaprasad; Cariño & Banicescu). All use FAC2-style batches
// with per-worker weights derived from measured execution rates:
//
//	AWF-B: weights updated at batch boundaries, pure execution time.
//	AWF-C: weights updated after every chunk, pure execution time.
//	AWF-D: as AWF-B but time includes the scheduling overhead.
//	AWF-E: as AWF-C but time includes the scheduling overhead.
func newAWF(t Technique, p Params) Schedule {
	s := &awfSched{
		base:      base{t, p},
		variant:   t,
		iters:     make([]float64, p.P),
		times:     make([]float64, p.P),
		weights:   normalizeWeights(nil, p.P),
		lastBatch: -1,
	}
	return s
}

// Record implements Adaptive.
func (s *awfSched) Record(w int, size int, execTime, schedTime float64) {
	if w < 0 || w >= s.p.P || size <= 0 {
		return
	}
	t := execTime
	if s.variant == AWFD || s.variant == AWFE {
		t += schedTime
	}
	if t <= 0 {
		return
	}
	s.iters[w] += float64(size)
	s.times[w] += t
	s.dirty = true
	if s.variant == AWFC || s.variant == AWFE {
		s.recompute()
	}
}

// recompute refreshes the normalized weights from measured rates. Workers
// without measurements receive the mean measured rate, so early batches stay
// near-uniform instead of starving unmeasured workers.
func (s *awfSched) recompute() {
	if !s.dirty {
		return
	}
	s.dirty = false
	rates := make([]float64, s.p.P)
	var sum float64
	var known int
	for w := range rates {
		if s.times[w] > 0 {
			rates[w] = s.iters[w] / s.times[w]
			sum += rates[w]
			known++
		}
	}
	if known == 0 {
		return
	}
	mean := sum / float64(known)
	total := 0.0
	for w := range rates {
		if rates[w] == 0 {
			rates[w] = mean
		}
		total += rates[w]
	}
	for w := range rates {
		s.weights[w] = rates[w] * float64(s.p.P) / total
	}
}

func (s *awfSched) Chunk(step, worker int) int {
	batch := step / s.p.P
	if (s.variant == AWFB || s.variant == AWFD) && batch > s.lastBatch {
		s.recompute()
		s.lastBatch = batch
	}
	nominal := fac2Nominal(s.p.N, s.p.P, batch+1)
	wt := 1.0
	if worker >= 0 && worker < len(s.weights) {
		wt = s.weights[worker]
	}
	return s.clampMin(int(float64(nominal)*wt + 0.5))
}

// Weights returns a copy of the current normalized weights; diagnostic.
func (s *awfSched) Weights() []float64 {
	out := make([]float64, len(s.weights))
	copy(out, s.weights)
	return out
}
