package dls

import (
	"math"
	"testing"
	"testing/quick"
)

// allParams builds a valid Params for any technique.
func allParams(n, p int) Params {
	return Params{N: n, P: p, Mean: 1.0, Sigma: 0.5, Overhead: 1e-5}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, tech := range All() {
		got, err := Parse(tech.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", tech.String(), err)
		}
		if got != tech {
			t.Fatalf("Parse(%q) = %v", tech.String(), got)
		}
	}
	if _, err := Parse("awfb"); err != nil {
		t.Fatal("Parse should accept lowercase and missing dash")
	}
	if _, err := Parse("NOPE"); err == nil {
		t.Fatal("Parse accepted an unknown name")
	}
}

func TestIsWeightedIsAdaptive(t *testing.T) {
	if !WF.IsWeighted() || WF.IsAdaptive() {
		t.Fatal("WF must be weighted but not adaptive")
	}
	for _, a := range []Technique{AWFB, AWFC, AWFD, AWFE} {
		if !a.IsAdaptive() || !a.IsWeighted() {
			t.Fatalf("%v must be adaptive and weighted", a)
		}
	}
	for _, s := range []Technique{STATIC, SS, GSS, TSS, FAC, FAC2, TFSS, FSC} {
		if s.IsAdaptive() || s.IsWeighted() {
			t.Fatalf("%v must be neither weighted nor adaptive", s)
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		tech Technique
		p    Params
	}{
		{"negative N", GSS, Params{N: -1, P: 4}},
		{"zero P", GSS, Params{N: 10, P: 0}},
		{"negative MinChunk", SS, Params{N: 10, P: 2, MinChunk: -1}},
		{"FAC without mean", FAC, Params{N: 10, P: 2}},
		{"FSC without sigma", FSC, Params{N: 10, P: 2, Overhead: 1e-5}},
		{"FSC without overhead", FSC, Params{N: 10, P: 2, Sigma: 1}},
		{"WF weight count", WF, Params{N: 10, P: 3, Weights: []float64{1, 2}}},
		{"WF non-positive weight", WF, Params{N: 10, P: 2, Weights: []float64{1, 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.tech, tc.p); err == nil {
				t.Fatalf("New(%v, %+v) accepted invalid params", tc.tech, tc.p)
			}
		})
	}
}

// TestExactCoverage is the central invariant: for every technique and a grid
// of loop/worker sizes, sequential assignment covers exactly N iterations
// with positive chunk sizes.
func TestExactCoverage(t *testing.T) {
	ns := []int{0, 1, 2, 7, 16, 100, 1000, 4096, 12345}
	ps := []int{1, 2, 3, 4, 16, 64, 100}
	for _, tech := range All() {
		for _, n := range ns {
			for _, p := range ps {
				s := MustNew(tech, allParams(n, p))
				chunks := ChunkSizes(s)
				if got := SumChunks(chunks); got != n {
					t.Fatalf("%v N=%d P=%d: covered %d iterations", tech, n, p, got)
				}
				for i, c := range chunks {
					if c <= 0 {
						t.Fatalf("%v N=%d P=%d: chunk[%d] = %d", tech, n, p, i, c)
					}
				}
				if n == 0 && len(chunks) != 0 {
					t.Fatalf("%v: empty loop produced %d chunks", tech, len(chunks))
				}
			}
		}
	}
}

// TestCoverageUnderArbitraryStepInterleaving mirrors the distributed
// chunk-calculation executor: steps may be claimed by any worker in any
// order; the clamp arithmetic must still yield exact coverage.
func TestCoverageUnderArbitraryStepInterleaving(t *testing.T) {
	for _, tech := range []Technique{STATIC, SS, GSS, TSS, FAC, FAC2, TFSS} {
		s := MustNew(tech, allParams(10000, 8))
		// Simulate 8 workers claiming steps in a skewed order: worker w
		// claims bursts of consecutive steps.
		scheduled, step := 0, 0
		for scheduled < 10000 {
			w := step % 8
			burst := 1 + (step*7)%3
			for b := 0; b < burst && scheduled < 10000; b++ {
				c := s.Chunk(step, w)
				step++
				if c > 10000-scheduled {
					c = 10000 - scheduled
				}
				scheduled += c
			}
		}
		if scheduled != 10000 {
			t.Fatalf("%v: interleaved coverage = %d", tech, scheduled)
		}
	}
}

func TestStaticChunks(t *testing.T) {
	s := MustNew(STATIC, Params{N: 100, P: 4})
	chunks := ChunkSizes(s)
	if len(chunks) != 4 {
		t.Fatalf("STATIC issued %d chunks, want 4", len(chunks))
	}
	for _, c := range chunks {
		if c != 25 {
			t.Fatalf("STATIC chunks = %v, want four 25s", chunks)
		}
	}
	// Non-divisible: ceil split, last clamped.
	chunks = ChunkSizes(MustNew(STATIC, Params{N: 10, P: 4}))
	want := []int{3, 3, 3, 1}
	if len(chunks) != 4 {
		t.Fatalf("chunks = %v, want %v", chunks, want)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("chunks = %v, want %v", chunks, want)
		}
	}
}

func TestSSAlwaysOne(t *testing.T) {
	s := MustNew(SS, Params{N: 57, P: 3})
	chunks := ChunkSizes(s)
	if len(chunks) != 57 {
		t.Fatalf("SS issued %d chunks, want 57", len(chunks))
	}
	for _, c := range chunks {
		if c != 1 {
			t.Fatalf("SS produced chunk of %d", c)
		}
	}
}

// gssSequentialReference is the textbook GSS rule: chunk = ⌈R/P⌉ on the
// remaining iterations R.
func gssSequentialReference(n, p int) []int {
	var out []int
	r := n
	for r > 0 {
		c := (r + p - 1) / p
		out = append(out, c)
		r -= c
	}
	return out
}

func TestGSSFirstChunkAndDecrease(t *testing.T) {
	s := MustNew(GSS, Params{N: 1000, P: 4})
	chunks := ChunkSizes(s)
	if chunks[0] != 250 {
		t.Fatalf("GSS first chunk = %d, want N/P = 250", chunks[0])
	}
	for i := 1; i < len(chunks); i++ {
		if chunks[i] > chunks[i-1] {
			t.Fatalf("GSS chunks increase at %d: %v", i, chunks[:i+1])
		}
	}
}

// The closed form and the textbook remaining-based rule are both
// ceiling-rule variants of the same geometric decay. Early chunks must agree
// almost exactly; the tail may differ because the closed form's per-step
// ceiling hands out iterations slightly faster, so its step count is a bit
// smaller (never larger than sequential + 1).
func TestGSSClosedFormMatchesSequentialReference(t *testing.T) {
	for _, n := range []int{64, 1000, 4096, 100000} {
		for _, p := range []int{2, 4, 16} {
			closed := ChunkSizes(MustNew(GSS, Params{N: n, P: p}))
			seq := gssSequentialReference(n, p)
			if len(closed) > len(seq)+1 {
				t.Fatalf("GSS N=%d P=%d: %d closed-form steps vs %d sequential", n, p, len(closed), len(seq))
			}
			if float64(len(closed)) < 0.6*float64(len(seq)) {
				t.Fatalf("GSS N=%d P=%d: closed form used only %d of %d sequential steps", n, p, len(closed), len(seq))
			}
			half := len(closed) / 2
			for i := 0; i < half && i < len(seq); i++ {
				if d := closed[i] - seq[i]; d < -2 || d > 2 {
					t.Fatalf("GSS N=%d P=%d chunk %d: closed %d vs sequential %d", n, p, i, closed[i], seq[i])
				}
			}
		}
	}
}

func TestTSSTzenNiExample(t *testing.T) {
	// Tzen & Ni's canonical setting: N=1000, P=4 ⇒ F=125, L=1, S=16,
	// δ=124/15≈8.27. First chunk 125, linear decrease, ~16 steps.
	s := MustNew(TSS, Params{N: 1000, P: 4})
	chunks := ChunkSizes(s)
	if chunks[0] != 125 {
		t.Fatalf("TSS first chunk = %d, want 125", chunks[0])
	}
	if len(chunks) < 14 || len(chunks) > 18 {
		t.Fatalf("TSS issued %d chunks, want ≈16", len(chunks))
	}
	for i := 1; i < len(chunks); i++ {
		if chunks[i] > chunks[i-1] {
			t.Fatalf("TSS chunks increase at %d: %v", i, chunks)
		}
	}
	// Linear decrement: consecutive differences within ⌈δ⌉+1 of each other.
	for i := 2; i < len(chunks)-1; i++ {
		d1 := chunks[i-2] - chunks[i-1]
		d2 := chunks[i-1] - chunks[i]
		if diff := d1 - d2; diff < -2 || diff > 2 {
			t.Fatalf("TSS decrement not linear at %d: %v", i, chunks)
		}
	}
}

func TestFAC2HalvingBatches(t *testing.T) {
	s := MustNew(FAC2, Params{N: 1024, P: 4})
	chunks := ChunkSizes(s)
	// Batch 0: 1024/(2·4)=128 ×4; batch 1: 64 ×4; batch 2: 32 ×4 ...
	want := []int{128, 128, 128, 128, 64, 64, 64, 64, 32, 32, 32, 32}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("FAC2 chunks = %v..., want prefix %v", chunks[:len(want)], want)
		}
	}
	if chunks[0]*2 != ChunkSizes(MustNew(GSS, Params{N: 1024, P: 4}))[0] {
		t.Fatal("FAC2 initial chunk must be half of GSS's")
	}
}

func TestFACZeroSigmaDegeneratesToStatic(t *testing.T) {
	s := MustNew(FAC, Params{N: 1000, P: 4, Mean: 1, Sigma: 0})
	chunks := ChunkSizes(s)
	if len(chunks) != 4 {
		t.Fatalf("FAC σ=0 issued %d chunks, want 4 (STATIC-like): %v", len(chunks), chunks)
	}
	if chunks[0] != 250 {
		t.Fatalf("FAC σ=0 first chunk = %d, want 250", chunks[0])
	}
}

func TestFACChunksShrinkWithVariance(t *testing.T) {
	// FAC sizes chunks against the measured variability: the higher σ/µ,
	// the smaller the chunks. With b = P/(2√R)·σ/µ ≈ 0.19 (σ/µ=3 here) FAC
	// stays *coarser* than FAC2 (x < 2); only large σ/µ pushes it below.
	low := ChunkSizes(MustNew(FAC, Params{N: 4096, P: 8, Mean: 1, Sigma: 0.5}))
	mid := ChunkSizes(MustNew(FAC, Params{N: 4096, P: 8, Mean: 1, Sigma: 3}))
	high := ChunkSizes(MustNew(FAC, Params{N: 4096, P: 8, Mean: 1, Sigma: 64}))
	if !(low[0] > mid[0] && mid[0] > high[0]) {
		t.Fatalf("FAC first chunks %d, %d, %d do not shrink with σ", low[0], mid[0], high[0])
	}
	fac2 := ChunkSizes(MustNew(FAC2, Params{N: 4096, P: 8}))
	if high[0] >= fac2[0] {
		t.Fatalf("FAC(σ/µ=64) first chunk %d not below FAC2's %d", high[0], fac2[0])
	}
	if mid[0] <= fac2[0] {
		t.Fatalf("FAC(σ/µ=3) first chunk %d should exceed FAC2's %d (x<2)", mid[0], fac2[0])
	}
}

func TestFACBatchesAreEqualWithinBatch(t *testing.T) {
	s := MustNew(FAC, Params{N: 10000, P: 4, Mean: 1, Sigma: 0.8})
	for step := 0; step < 40; step++ {
		batchStart := (step / 4) * 4
		if s.Chunk(step, 0) != s.Chunk(batchStart, 0) {
			t.Fatalf("FAC chunk varies within batch at step %d", step)
		}
	}
}

func TestFSCChunkSizeFormula(t *testing.T) {
	p := Params{N: 100000, P: 16, Sigma: 0.5, Overhead: 1e-4}
	s := MustNew(FSC, p)
	// ℓ = (√2·N·h/(σP√log P))^(2/3)
	want := math.Pow(math.Sqrt2*float64(p.N)*p.Overhead/(p.Sigma*float64(p.P)*math.Sqrt(math.Log(float64(p.P)))), 2.0/3.0)
	got := s.Chunk(0, 0)
	if got < int(want) || got > int(want)+1 {
		t.Fatalf("FSC chunk = %d, want ⌈%.2f⌉", got, want)
	}
	// All chunks equal.
	for step := 1; step < 10; step++ {
		if s.Chunk(step, 0) != got {
			t.Fatal("FSC chunk size not constant")
		}
	}
}

func TestFSCNeverExceedsStaticShare(t *testing.T) {
	s := MustNew(FSC, Params{N: 64, P: 8, Sigma: 1e-9, Overhead: 10})
	if c := s.Chunk(0, 0); c > 8 {
		t.Fatalf("FSC chunk %d exceeds N/P = 8", c)
	}
}

func TestTFSSBatchStructure(t *testing.T) {
	n, p := 2000, 4
	tfss := MustNew(TFSS, Params{N: n, P: p})
	tss := MustNew(TSS, Params{N: n, P: p})
	// Batch 0 chunk is the mean of the first P TSS chunks.
	sum := 0
	for k := 0; k < p; k++ {
		sum += tss.Chunk(k, 0)
	}
	if got, want := tfss.Chunk(0, 0), sum/p; got != want {
		t.Fatalf("TFSS batch-0 chunk = %d, want %d", got, want)
	}
	// Within a batch, chunks are equal; across batches, non-increasing.
	prev := tfss.Chunk(0, 0)
	for b := 1; b < 6; b++ {
		c := tfss.Chunk(b*p, 0)
		for k := 1; k < p; k++ {
			if tfss.Chunk(b*p+k, 0) != c {
				t.Fatalf("TFSS batch %d not uniform", b)
			}
		}
		if c > prev {
			t.Fatalf("TFSS batch chunk increased: %d -> %d", prev, c)
		}
		prev = c
	}
}

func TestWFScalesByWeight(t *testing.T) {
	p := Params{N: 1 << 20, P: 4, Weights: []float64{2, 1, 1, 0.5}}
	s := MustNew(WF, p)
	fast := s.Chunk(0, 0)
	slow := s.Chunk(0, 3)
	norm := s.Chunk(0, 1)
	// Weights normalize to mean 1: 2/1.125, 1/1.125, ..., so fast ≈ 4×slow.
	if fast <= norm || norm <= slow {
		t.Fatalf("WF chunks not ordered by weight: fast=%d norm=%d slow=%d", fast, norm, slow)
	}
	ratio := float64(fast) / float64(slow)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("WF fast/slow chunk ratio = %.2f, want ≈4", ratio)
	}
}

func TestWFUniformEqualsFAC2(t *testing.T) {
	n, p := 100000, 8
	wf := MustNew(WF, Params{N: n, P: p})
	fac2 := MustNew(FAC2, Params{N: n, P: p})
	for step := 0; step < 64; step++ {
		if wf.Chunk(step, step%p) != fac2.Chunk(step, 0) {
			t.Fatalf("uniform WF diverges from FAC2 at step %d", step)
		}
	}
}

func TestAWFAdaptsTowardFasterWorker(t *testing.T) {
	for _, variant := range []Technique{AWFB, AWFC, AWFD, AWFE} {
		s := MustNew(variant, Params{N: 1 << 20, P: 2}).(Adaptive)
		// Worker 0 executes twice as fast as worker 1.
		for i := 0; i < 10; i++ {
			s.Record(0, 100, 1.0, 0.1)
			s.Record(1, 100, 2.0, 0.1)
		}
		// Query an early batch (batch 4) so nominal chunks are still large,
		// while forcing the batch-adaptive variants to refresh weights.
		c0 := s.Chunk(4*s.Params().P, 0)
		c1 := s.Chunk(4*s.Params().P+1, 1)
		if c0 <= c1 {
			t.Fatalf("%v: fast worker chunk %d not larger than slow worker's %d", variant, c0, c1)
		}
		ratio := float64(c0) / float64(c1)
		if ratio < 1.5 || ratio > 2.6 {
			t.Fatalf("%v: chunk ratio %.2f, want ≈2", variant, ratio)
		}
	}
}

func TestAWFDCountsOverhead(t *testing.T) {
	// Same execution times, very different scheduling overheads: only the
	// D/E variants should tilt weights.
	build := func(v Technique) (int, int) {
		s := MustNew(v, Params{N: 1 << 20, P: 2}).(Adaptive)
		for i := 0; i < 8; i++ {
			s.Record(0, 100, 1.0, 0.0)
			s.Record(1, 100, 1.0, 1.0) // heavy scheduling overhead
		}
		return s.Chunk(8, 0), s.Chunk(9, 1)
	}
	b0, b1 := build(AWFB)
	if b0 != b1 {
		t.Fatalf("AWF-B weighted by overhead: %d vs %d", b0, b1)
	}
	d0, d1 := build(AWFD)
	if d0 <= d1 {
		t.Fatalf("AWF-D ignored overhead: %d vs %d", d0, d1)
	}
}

func TestAWFIgnoresBadRecords(t *testing.T) {
	s := MustNew(AWFC, Params{N: 1000, P: 2}).(Adaptive)
	s.Record(-1, 10, 1, 0) // out of range
	s.Record(5, 10, 1, 0)  // out of range
	s.Record(0, 0, 1, 0)   // empty chunk
	s.Record(0, 10, 0, 0)  // zero time
	if c0, c1 := s.Chunk(0, 0), s.Chunk(1, 1); c0 != c1 {
		t.Fatalf("weights moved on invalid records: %d vs %d", c0, c1)
	}
}

func TestMinChunkRespected(t *testing.T) {
	s := MustNew(GSS, Params{N: 10000, P: 4, MinChunk: 32})
	chunks := ChunkSizes(s)
	for i, c := range chunks[:len(chunks)-1] { // final chunk may clamp below
		if c < 32 {
			t.Fatalf("chunk[%d] = %d below MinChunk", i, c)
		}
	}
}

func TestAssignerRanges(t *testing.T) {
	s := MustNew(GSS, Params{N: 1000, P: 4})
	a := NewAssigner(s)
	covered := make([]bool, 1000)
	for {
		start, size, ok := a.Next(0)
		if !ok {
			break
		}
		for i := start; i < start+size; i++ {
			if covered[i] {
				t.Fatalf("iteration %d assigned twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("iteration %d never assigned", i)
		}
	}
	if a.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", a.Remaining())
	}
	if _, _, ok := a.Next(0); ok {
		t.Fatal("Next returned ok after exhaustion")
	}
}

// Property: coverage holds for random N, P across every technique.
func TestQuickCoverageProperty(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw % 5000)
		p := int(pRaw%32) + 1
		for _, tech := range All() {
			s := MustNew(tech, allParams(n, p))
			if SumChunks(ChunkSizes(s)) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: for the decreasing-chunk techniques, the profile never
// increases (ignoring the clamped final chunk).
func TestQuickMonotoneNonIncreasing(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw%10000) + 1
		p := int(pRaw%16) + 1
		for _, tech := range []Technique{GSS, TSS, FAC, FAC2, TFSS} {
			chunks := ChunkSizes(MustNew(tech, allParams(n, p)))
			for i := 1; i < len(chunks)-1; i++ {
				if chunks[i] > chunks[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: scheduling-step count orders as STATIC ≤ FAC2/GSS ≤ SS, the
// overhead spectrum the paper describes in §2.
func TestQuickStepCountSpectrum(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw%8000) + 100
		p := int(pRaw%15) + 2
		nStatic := len(ChunkSizes(MustNew(STATIC, Params{N: n, P: p})))
		nGSS := len(ChunkSizes(MustNew(GSS, Params{N: n, P: p})))
		nSS := len(ChunkSizes(MustNew(SS, Params{N: n, P: p})))
		return nStatic <= nGSS && nGSS <= nSS && nSS == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChunkGSS(b *testing.B) {
	s := MustNew(GSS, Params{N: 1 << 20, P: 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Chunk(i%300, 0)
	}
}

func BenchmarkChunkFAC(b *testing.B) {
	s := MustNew(FAC, Params{N: 1 << 20, P: 16, Mean: 1, Sigma: 0.5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Chunk(i%300, 0)
	}
}

func BenchmarkAssignerFullLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := NewAssigner(MustNew(FAC2, Params{N: 1 << 16, P: 16}))
		for {
			if _, _, ok := a.Next(0); !ok {
				break
			}
		}
	}
}
