package dls

import (
	"testing"
	"testing/quick"
)

func TestGSSSingleWorker(t *testing.T) {
	s := MustNew(GSS, Params{N: 100, P: 1})
	chunks := ChunkSizes(s)
	if len(chunks) != 1 || chunks[0] != 100 {
		t.Fatalf("GSS P=1 chunks = %v, want [100]", chunks)
	}
}

func TestTSSStepCountFormula(t *testing.T) {
	// S = ⌈2N/(F+L)⌉ with F = ⌈N/2P⌉, L = 1.
	for _, tc := range []struct{ n, p int }{{1000, 4}, {4096, 16}, {100, 2}} {
		f := (tc.n + 4*tc.p - 1) / (2 * tc.p)
		steps := (2*tc.n + f) / (f + 1)
		got := len(ChunkSizes(MustNew(TSS, Params{N: tc.n, P: tc.p})))
		// Clamping at the tail may save a couple of steps.
		if got > steps+1 || got < steps-3 {
			t.Fatalf("TSS N=%d P=%d: %d steps, formula says ≈%d", tc.n, tc.p, got, steps)
		}
	}
}

func TestFSCChunkGrowsWithOverhead(t *testing.T) {
	// Higher scheduling overhead h ⇒ larger optimal chunks.
	base := Params{N: 1 << 20, P: 16, Sigma: 1e-4}
	var prev int
	for i, h := range []float64{1e-7, 1e-6, 1e-5, 1e-4} {
		p := base
		p.Overhead = h
		c := MustNew(FSC, p).Chunk(0, 0)
		if i > 0 && c <= prev {
			t.Fatalf("FSC chunk did not grow with overhead: h=%g gives %d after %d", h, c, prev)
		}
		prev = c
	}
}

func TestFSCChunkShrinksWithSigma(t *testing.T) {
	base := Params{N: 1 << 20, P: 16, Overhead: 1e-5}
	var prev int
	for i, sigma := range []float64{1e-5, 1e-4, 1e-3, 1e-2} {
		p := base
		p.Sigma = sigma
		c := MustNew(FSC, p).Chunk(0, 0)
		if i > 0 && c >= prev {
			t.Fatalf("FSC chunk did not shrink with σ: σ=%g gives %d after %d", sigma, c, prev)
		}
		prev = c
	}
}

func TestAWFWeightsExposed(t *testing.T) {
	s := MustNew(AWFC, Params{N: 1 << 16, P: 2}).(Adaptive)
	aw := s.(interface{ Weights() []float64 })
	w0 := aw.Weights()
	if w0[0] != 1 || w0[1] != 1 {
		t.Fatalf("initial weights = %v, want uniform", w0)
	}
	s.Record(0, 100, 1, 0)
	s.Record(1, 100, 3, 0)
	w1 := aw.Weights()
	if w1[0] <= w1[1] {
		t.Fatalf("weights after skewed rates = %v", w1)
	}
	// Normalization: mean stays 1.
	if sum := w1[0] + w1[1]; sum < 1.999 || sum > 2.001 {
		t.Fatalf("weights not normalized: %v", w1)
	}
	// Returned slice is a copy.
	w1[0] = 99
	if aw.Weights()[0] == 99 {
		t.Fatal("Weights returned internal slice")
	}
}

func TestAWFBatchVariantsRefreshOnlyAtBatchBoundaries(t *testing.T) {
	s := MustNew(AWFB, Params{N: 1 << 16, P: 2}).(Adaptive)
	// Prime batch 0 (uniform), then record skewed measurements.
	before := s.Chunk(0, 0)
	s.Record(0, 100, 1, 0)
	s.Record(1, 100, 4, 0)
	// Same batch: weights must not have moved yet.
	if got := s.Chunk(1, 0); got != before {
		t.Fatalf("AWF-B updated weights mid-batch: %d -> %d", before, got)
	}
	// New batch: now they shift.
	c0 := s.Chunk(2, 0)
	c1 := s.Chunk(3, 1)
	if c0 <= c1 {
		t.Fatalf("AWF-B did not adapt at batch boundary: %d vs %d", c0, c1)
	}
}

func TestMinChunkAppliesToSS(t *testing.T) {
	s := MustNew(SS, Params{N: 1000, P: 4, MinChunk: 8})
	chunks := ChunkSizes(s)
	for i, c := range chunks[:len(chunks)-1] {
		if c != 8 {
			t.Fatalf("SS with MinChunk=8: chunk[%d] = %d", i, c)
		}
	}
}

func TestWFNilWeightsUniform(t *testing.T) {
	s := MustNew(WF, Params{N: 4096, P: 4})
	for w := 0; w < 4; w++ {
		if s.Chunk(0, w) != s.Chunk(0, 0) {
			t.Fatal("uniform WF chunks differ across workers")
		}
	}
	// Out-of-range worker ids fall back to weight 1.
	if s.Chunk(0, -1) != s.Chunk(0, 99) {
		t.Fatal("out-of-range workers not treated uniformly")
	}
}

func TestTechniqueStringUnknown(t *testing.T) {
	if Technique(999).String() == "" {
		t.Fatal("unknown technique has empty name")
	}
}

func TestAssignerStepCounts(t *testing.T) {
	s := MustNew(FAC2, Params{N: 1024, P: 4})
	a := NewAssigner(s)
	for i := 0; i < 3; i++ {
		a.Next(i)
	}
	if a.Step() != 3 {
		t.Fatalf("Step = %d, want 3", a.Step())
	}
	if a.Scheduled() != 3*128 {
		t.Fatalf("Scheduled = %d, want 384", a.Scheduled())
	}
	if a.Schedule() != s {
		t.Fatal("Schedule accessor broken")
	}
}

// Property: MinChunk is respected by every technique for all but the final
// clamped chunk.
func TestQuickMinChunkProperty(t *testing.T) {
	f := func(nRaw uint16, pRaw, mRaw uint8) bool {
		n := int(nRaw%4000) + 100
		p := int(pRaw%8) + 1
		m := int(mRaw%16) + 2
		for _, tech := range []Technique{SS, GSS, TSS, FAC2, TFSS} {
			par := allParams(n, p)
			par.MinChunk = m
			chunks := ChunkSizes(MustNew(tech, par))
			for i, c := range chunks {
				if i < len(chunks)-1 && c < m {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted techniques cover the loop exactly even with extreme
// weight skew.
func TestQuickWeightedCoverage(t *testing.T) {
	f := func(nRaw uint16, skewRaw uint8) bool {
		n := int(nRaw % 5000)
		skew := float64(skewRaw%50) + 1
		p := Params{N: n, P: 4, Weights: []float64{skew, 1, 1, 0.25}}
		return SumChunks(ChunkSizes(MustNew(WF, p))) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: for every technique the first chunk never exceeds N and never
// exceeds STATIC's share by more than the weighting factor.
func TestQuickFirstChunkBounded(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw%10000) + 1
		p := int(pRaw%16) + 1
		for _, tech := range []Technique{STATIC, SS, GSS, TSS, FAC, FAC2, TFSS} {
			c := MustNew(tech, allParams(n, p)).Chunk(0, 0)
			if c < 1 || c > n+p { // ceil slack
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAFWarmupMatchesFAC2(t *testing.T) {
	n, p := 1<<16, 4
	af := MustNew(AF, Params{N: n, P: p})
	fac2 := MustNew(FAC2, Params{N: n, P: p})
	// Without measurements, AF batches like FAC2.
	for s := 0; s < 8; s++ {
		if af.Chunk(s, s%p) != fac2.Chunk(s, 0) {
			t.Fatalf("AF warm-up diverges from FAC2 at step %d", s)
		}
	}
}

func TestAFAdaptsToVariance(t *testing.T) {
	n, p := 1<<20, 2
	af := MustNew(AF, Params{N: n, P: p}).(Adaptive)
	// Equal means, but worker 1's times are wildly variable.
	for i := 0; i < 20; i++ {
		af.Record(0, 100, 0.1, 0)
		if i%2 == 0 {
			af.Record(1, 100, 0.02, 0)
		} else {
			af.Record(1, 100, 0.18, 0)
		}
	}
	c0 := af.Chunk(100, 0)
	c1 := af.Chunk(101, 1)
	if c0 <= 0 || c1 <= 0 {
		t.Fatalf("AF produced non-positive chunks: %d, %d", c0, c1)
	}
	// High variance shrinks chunks relative to a zero-variance peer with
	// the same mean (via the smaller 1/µ weight in the D term): the steady
	// worker receives at least as much.
	if c0 < c1 {
		t.Fatalf("steady worker chunk %d smaller than noisy worker's %d", c0, c1)
	}
}

func TestAFAdaptsToSpeed(t *testing.T) {
	// AF sizes chunks ∝ 1/µ_w (proportional allocation when variance is
	// modest). Chunk mutates the remaining-work estimate, so compare two
	// identically-trained instances at the same step.
	n, p := 1<<20, 2
	mk := func() Adaptive {
		af := MustNew(AF, Params{N: n, P: p}).(Adaptive)
		for i := 0; i < 20; i++ {
			af.Record(0, 100, 0.05+0.001*float64(i%3), 0) // fast
			af.Record(1, 100, 0.20+0.004*float64(i%3), 0) // 4× slower
		}
		return af
	}
	c0 := mk().Chunk(50, 0)
	c1 := mk().Chunk(50, 1)
	ratio := float64(c0) / float64(c1)
	if ratio < 3.0 || ratio > 5.5 {
		t.Fatalf("AF fast/slow chunk ratio = %.2f, want ≈4", ratio)
	}
}

func TestAFIgnoresBadRecords(t *testing.T) {
	af := MustNew(AF, Params{N: 1000, P: 2}).(Adaptive)
	af.Record(-1, 10, 1, 0)
	af.Record(9, 10, 1, 0)
	af.Record(0, 0, 1, 0)
	af.Record(0, 10, 0, 0)
	// Still in warm-up: chunks equal FAC2's.
	fac2 := MustNew(FAC2, Params{N: 1000, P: 2})
	if af.Chunk(0, 0) != fac2.Chunk(0, 0) {
		t.Fatal("invalid records changed AF state")
	}
}

func TestRNDDeterministicAndBounded(t *testing.T) {
	n, p := 10000, 4
	a := MustNew(RND, Params{N: n, P: p})
	b := MustNew(RND, Params{N: n, P: p})
	maxChunk := (n + 4*p - 1) / (2 * p)
	seen := map[int]bool{}
	for s := 0; s < 200; s++ {
		ca, cb := a.Chunk(s, 0), b.Chunk(s, 1)
		if ca != cb {
			t.Fatalf("RND not deterministic at step %d: %d vs %d", s, ca, cb)
		}
		if ca < 1 || ca > maxChunk {
			t.Fatalf("RND chunk %d out of [1, %d]", ca, maxChunk)
		}
		seen[ca] = true
	}
	if len(seen) < 20 {
		t.Fatalf("RND produced only %d distinct sizes in 200 steps", len(seen))
	}
}

func TestRNDCoversUniformly(t *testing.T) {
	// Mean RND chunk ≈ max/2 = N/(4P); over many steps the empirical mean
	// must sit near it.
	n, p := 1<<20, 8
	s := MustNew(RND, Params{N: n, P: p})
	total := 0
	const steps = 4000
	for i := 0; i < steps; i++ {
		total += s.Chunk(i, 0)
	}
	mean := float64(total) / steps
	want := float64(n) / (4 * float64(p))
	if mean < 0.85*want || mean > 1.15*want {
		t.Fatalf("RND mean chunk = %.0f, want ≈%.0f", mean, want)
	}
}
