package dls

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the technique as its conventional name (e.g.
// "FAC2", "AWF-B"), the form the hdlsd service API and sweep snapshots
// use. Unknown values error rather than emitting a bare integer.
func (t Technique) MarshalJSON() ([]byte, error) {
	if _, ok := techniqueNames[t]; !ok {
		return nil, fmt.Errorf("dls: cannot marshal unknown technique %d", int(t))
	}
	return json.Marshal(t.String())
}

// UnmarshalJSON decodes a technique from its name via Parse
// (case-insensitive, dashes optional: "fac2", "AWF-B", "awfb").
func (t *Technique) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("dls: technique must be a JSON string: %w", err)
	}
	v, err := Parse(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}
