package dls

import (
	"sync"
	"testing"
)

// memoCases cover every non-adaptive technique, including the frozen-table
// pair (FAC, TFSS) and the weighted WF.
func memoCases() []struct {
	name string
	t    Technique
	p    Params
} {
	return []struct {
		name string
		t    Technique
		p    Params
	}{
		{"static", STATIC, Params{N: 4096, P: 16}},
		{"ss", SS, Params{N: 4096, P: 16}},
		{"fsc", FSC, Params{N: 4096, P: 16, Sigma: 2e-5, Overhead: 3e-6}},
		{"gss", GSS, Params{N: 4096, P: 16}},
		{"tss", TSS, Params{N: 4096, P: 16}},
		{"fac", FAC, Params{N: 4096, P: 16, Mean: 1e-4, Sigma: 3e-5}},
		{"fac2", FAC2, Params{N: 4096, P: 16}},
		{"tfss", TFSS, Params{N: 4096, P: 16}},
		{"rnd", RND, Params{N: 4096, P: 16}},
		{"wf", WF, Params{N: 4096, P: 4, Weights: []float64{1, 0.5, 2, 1.5}}},
		{"fac-tiny", FAC, Params{N: 7, P: 16, Mean: 1e-4, Sigma: 1e-4}},
		{"tfss-tiny", TFSS, Params{N: 5, P: 3}},
	}
}

// TestSharedMatchesFresh asserts the memoized (and, for FAC/TFSS, frozen)
// schedules produce chunk-for-chunk identical sequences to fresh mutable
// ones, far past the point where their batch tables reach the constant
// tail.
func TestSharedMatchesFresh(t *testing.T) {
	for _, tc := range memoCases() {
		shared := Shared(tc.t, tc.p)
		fresh := MustNew(tc.t, tc.p)
		for step := 0; step < 3*tc.p.N/tc.p.P+64; step++ {
			for w := 0; w < tc.p.P; w++ {
				if g, want := shared.Chunk(step, w), fresh.Chunk(step, w); g != want {
					t.Fatalf("%s: Chunk(%d,%d) = %d, fresh %d", tc.name, step, w, g, want)
				}
			}
		}
	}
}

// TestSharedConcurrentByteIdentical hammers the memo from many goroutines —
// run under -race in CI — and checks every observer sees the same instance
// producing the same chunks as an independently built schedule.
func TestSharedConcurrentByteIdentical(t *testing.T) {
	cases := memoCases()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fresh := make([]Schedule, len(cases))
			for i, tc := range cases {
				fresh[i] = MustNew(tc.t, tc.p)
			}
			for round := 0; round < 20; round++ {
				for i, tc := range cases {
					s := Shared(tc.t, tc.p)
					step := (g*31 + round*7) % (2 * tc.p.P * 8)
					w := g % tc.p.P
					if got, want := s.Chunk(step, w), fresh[i].Chunk(step, w); got != want {
						errs <- tc.name
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for name := range errs {
		t.Fatalf("%s: concurrent Shared diverged from fresh schedule", name)
	}
}

// TestSharedAdaptiveNotMemoized guards the must-not-share rule: adaptive
// schedules carry run-local state.
func TestSharedAdaptiveNotMemoized(t *testing.T) {
	p := Params{N: 1024, P: 8, Mean: 1e-4}
	a := Shared(AWFB, p)
	b := Shared(AWFB, p)
	if a == b {
		t.Fatal("adaptive schedule was memoized; it must stay per-run")
	}
	if _, ok := a.(Adaptive); !ok {
		t.Fatal("Shared(AWFB) lost the Adaptive interface")
	}
}
