package dls

// Assigner drives a Schedule under sequential (central-master) semantics:
// it owns the scheduling-step counter and the scheduled-iterations counter
// and clamps every chunk against the remaining work. The distributed
// chunk-calculation executors in this repository reimplement exactly this
// arithmetic with MPI_Fetch_and_op; Assigner is the reference they are
// tested against, and the driver for shared-memory use via package parallel.
type Assigner struct {
	sched     Schedule
	step      int
	scheduled int
}

// NewAssigner wraps a schedule.
func NewAssigner(s Schedule) *Assigner { return &Assigner{sched: s} }

// Schedule returns the wrapped schedule.
func (a *Assigner) Schedule() Schedule { return a.sched }

// Next assigns the next chunk to the given worker. It returns the chunk
// half-open range [start, start+size) and ok=false once the loop is
// exhausted.
func (a *Assigner) Next(worker int) (start, size int, ok bool) {
	n := a.sched.Params().N
	if a.scheduled >= n {
		return n, 0, false
	}
	c := a.sched.Chunk(a.step, worker)
	a.step++
	if c > n-a.scheduled {
		c = n - a.scheduled
	}
	start = a.scheduled
	a.scheduled += c
	return start, c, true
}

// Step reports how many chunks have been issued.
func (a *Assigner) Step() int { return a.step }

// Scheduled reports how many iterations have been assigned so far.
func (a *Assigner) Scheduled() int { return a.scheduled }

// Remaining reports the iterations not yet assigned.
func (a *Assigner) Remaining() int { return a.sched.Params().N - a.scheduled }

// ChunkSizes runs a fresh assigner to completion, cycling workers
// round-robin, and returns every issued chunk size in order. It is the
// standard way to inspect or test a technique's chunk profile.
func ChunkSizes(s Schedule) []int {
	a := NewAssigner(s)
	p := s.Params().P
	var out []int
	for w := 0; ; w = (w + 1) % p {
		_, size, ok := a.Next(w)
		if !ok {
			return out
		}
		out = append(out, size)
	}
}

// SumChunks is a convenience summing a chunk profile.
func SumChunks(chunks []int) int {
	total := 0
	for _, c := range chunks {
		total += c
	}
	return total
}
