package dls

import (
	"math/rand"
	"testing"
)

// Property-based invariants over randomized (N, P, σ, h, MinChunk)
// parameter sweeps. Every technique must satisfy, for any parameters it
// accepts:
//
//  1. Chunk(s, w) ≥ max(1, MinChunk) for every step and worker;
//  2. a schedule walk covers the loop — Σ clamped chunks = N — within a
//     bounded number of steps (N + P + slack: SS needs N, everything else
//     fewer);
//  3. for the deterministic decreasing families (GSS, TSS, FAC, FAC2,
//     TFSS) the raw chunk sequence is non-increasing in the step.
//
// The sweep is seeded, so failures replay.
func propertyParams(rng *rand.Rand) Params {
	n := 1 + rng.Intn(20000)
	p := 1 + rng.Intn(128)
	mean := 1e-6 * (1 + rng.Float64()*200)
	return Params{
		N: n, P: p,
		Mean:     mean,
		Sigma:    mean * rng.Float64() * 2,
		Overhead: 1e-7 * (1 + rng.Float64()*100),
		MinChunk: rng.Intn(4), // 0 defaults to 1
	}
}

// walk simulates the distributed chunk-calculation consumption of sched:
// steps issue in order, each chunk is clamped against the remaining
// iterations, and the walk stops once N iterations are scheduled. It
// returns the raw (unclamped) sizes and fails the test if the walk does
// not terminate within maxSteps.
func walk(t *testing.T, sched Schedule, maxSteps int) (raw []int) {
	t.Helper()
	p := sched.Params()
	minChunk := p.MinChunk
	if minChunk < 1 {
		minChunk = 1
	}
	scheduled := 0
	for step := 0; scheduled < p.N; step++ {
		if step > maxSteps {
			t.Fatalf("%v%+v: no termination after %d steps (scheduled %d of %d)",
				sched.Technique(), p, maxSteps, scheduled, p.N)
		}
		w := step % p.P
		c := sched.Chunk(step, w)
		if c < minChunk {
			t.Fatalf("%v%+v: Chunk(%d, %d) = %d < max(1, MinChunk %d)",
				sched.Technique(), p, step, w, c, p.MinChunk)
		}
		raw = append(raw, c)
		scheduled += c // callers clamp; ≥ N means full coverage
	}
	if scheduled < p.N {
		t.Fatalf("%v%+v: scheduled %d < N %d", sched.Technique(), p, scheduled, p.N)
	}
	return raw
}

// nonIncreasing are the deterministic decreasing-chunk families.
var nonIncreasing = map[Technique]bool{
	GSS: true, TSS: true, FAC: true, FAC2: true, TFSS: true,
}

func TestTechniquePropertiesRandomSweep(t *testing.T) {
	techniques := []Technique{STATIC, SS, FSC, GSS, TSS, FAC, FAC2, WF, TFSS, RND}
	rng := rand.New(rand.NewSource(20260728))
	for _, tech := range techniques {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			for trial := 0; trial < 200; trial++ {
				p := propertyParams(rng)
				if tech == WF && trial%2 == 1 {
					weights := make([]float64, p.P)
					for i := range weights {
						weights[i] = 0.25 + rng.Float64()*2
					}
					p.Weights = weights
				}
				sched, err := New(tech, p)
				if err != nil {
					t.Fatalf("New(%v, %+v): %v", tech, p, err)
				}
				// SS needs exactly N steps; everything else far fewer. The
				// walk adds P+64 slack for clamped tails.
				raw := walk(t, sched, p.N+p.P+64)
				if nonIncreasing[tech] {
					for i := 1; i < len(raw); i++ {
						if raw[i] > raw[i-1] {
							t.Fatalf("%v%+v: chunk sequence increased at step %d: %d -> %d",
								tech, p, i, raw[i-1], raw[i])
						}
					}
				}
			}
		})
	}
}

// TestAdaptivePropertiesRandomSweep covers the feedback-driven family
// (AWF-B/C/D/E, AF) with runtime measurements recorded between steps; the
// invariants are the same minus monotonicity (adaptive chunks legitimately
// grow when a worker speeds up).
func TestAdaptivePropertiesRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tech := range []Technique{AWFB, AWFC, AWFD, AWFE, AF} {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			for trial := 0; trial < 60; trial++ {
				p := propertyParams(rng)
				minChunk := p.MinChunk
				if minChunk < 1 {
					minChunk = 1
				}
				sched := MustNew(tech, p)
				ad, _ := sched.(Adaptive)
				scheduled, maxSteps := 0, p.N+p.P+64
				for step := 0; scheduled < p.N; step++ {
					if step > maxSteps {
						t.Fatalf("%v%+v: no termination after %d steps", tech, p, maxSteps)
					}
					w := step % p.P
					c := sched.Chunk(step, w)
					if c < minChunk {
						t.Fatalf("%v%+v: Chunk(%d, %d) = %d < %d", tech, p, step, w, c, minChunk)
					}
					scheduled += c
					if ad != nil {
						// Jittered per-worker rates exercise the adaptation.
						exec := float64(c) * p.Mean * (0.5 + rng.Float64())
						ad.Record(w, c, exec, p.Overhead)
					}
				}
			}
		})
	}
}

// TestStaticChunkRemainder is the regression test for the STATIC overshoot
// bug: with N % P ≠ 0 the final chunk must be the true remainder
// N − step·⌈N/P⌉, so the raw sequence over the first ⌈N/⌈N/P⌉⌉ steps sums
// to exactly N instead of P·⌈N/P⌉ > N.
func TestStaticChunkRemainder(t *testing.T) {
	cases := []struct{ n, p int }{
		{10, 4}, {10, 3}, {7, 2}, {1, 16}, {16, 16}, {17, 16}, {1000, 7}, {5, 8},
	}
	for _, c := range cases {
		s := MustNew(STATIC, Params{N: c.n, P: c.p})
		chunk := ceilDiv(c.n, c.p)
		sum := 0
		for step := 0; sum < c.n; step++ {
			got := s.Chunk(step, 0)
			want := chunk
			if rem := c.n - step*chunk; rem < chunk {
				want = rem
			}
			if got != want {
				t.Fatalf("STATIC N=%d P=%d: Chunk(%d) = %d, want %d", c.n, c.p, step, got, want)
			}
			sum += got
		}
		if sum != c.n {
			t.Errorf("STATIC N=%d P=%d: raw sequence sums to %d, want exactly N", c.n, c.p, sum)
		}
		// Steps past exhaustion still return a positive size for termination.
		if got := s.Chunk(c.p+3, 0); got < 1 {
			t.Errorf("STATIC N=%d P=%d: post-exhaustion Chunk = %d, want >= 1", c.n, c.p, got)
		}
	}
}
