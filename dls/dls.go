// Package dls implements dynamic loop self-scheduling (DLS) techniques:
// chunk-size calculators that decide how many loop iterations a requesting
// worker receives at each scheduling step.
//
// The package provides the techniques evaluated by Eleliemy & Ciorba
// (arXiv:1903.09510) — STATIC, SS, GSS, TSS, FAC, FAC2 — plus the related
// techniques the paper builds on: fixed-size chunking (FSC), weighted
// factoring (WF), trapezoid factoring self-scheduling (TFSS) and the
// adaptive weighted factoring (AWF) family.
//
// Every technique exposes its chunk size as a function of the scheduling
// step (and, for weighted techniques, the requesting worker). This is the
// form required by the distributed chunk-calculation approach (Eleliemy &
// Ciorba, PDP 2019) where workers atomically increment a shared step counter
// and compute their own chunk without a central master. Σ Chunk(s) over
// steps always diverges, so exact loop coverage is guaranteed by clamping
// against the scheduled-iterations counter.
package dls

import (
	"fmt"
	"strings"
)

// Technique enumerates the implemented self-scheduling techniques.
type Technique int

// Supported techniques.
const (
	// STATIC divides the loop into one equal chunk per worker (straight
	// static chunking, the lowest-overhead extreme).
	STATIC Technique = iota
	// SS is pure self-scheduling: one iteration per request (highest
	// overhead, best balance).
	SS
	// FSC is fixed-size chunking with the Kruskal–Weiss optimal chunk size.
	FSC
	// GSS is guided self-scheduling (Polychronopoulos & Kuck).
	GSS
	// TSS is trapezoid self-scheduling (Tzen & Ni).
	TSS
	// FAC is factoring with known iteration-time mean and standard
	// deviation (Hummel, Schonberg & Flynn).
	FAC
	// FAC2 is the practical factoring variant that halves the remaining
	// iterations per batch.
	FAC2
	// WF is weighted factoring: FAC2 batches, scaled per worker weight.
	WF
	// TFSS is trapezoid factoring self-scheduling (Chronopoulos et al.):
	// batches of equal chunks whose size tracks the TSS linear decrease.
	TFSS
	// AWFB is adaptive weighted factoring, batch-adaptive variant.
	AWFB
	// AWFC is adaptive weighted factoring, chunk-adaptive variant.
	AWFC
	// AWFD is AWF-B with scheduling overhead included in the measured time.
	AWFD
	// AWFE is AWF-C with scheduling overhead included in the measured time.
	AWFE
	// AF is adaptive factoring (Banicescu & Liu): FAC with per-worker mean
	// and variance estimated online instead of supplied a priori.
	AF
	// RND is random self-scheduling (LaPeSD-libGOMP): chunk sizes drawn
	// uniformly from [1, ⌈N/2P⌉] by a deterministic hash of the step.
	RND
)

var techniqueNames = map[Technique]string{
	STATIC: "STATIC", SS: "SS", FSC: "FSC", GSS: "GSS", TSS: "TSS",
	FAC: "FAC", FAC2: "FAC2", WF: "WF", TFSS: "TFSS",
	AWFB: "AWF-B", AWFC: "AWF-C", AWFD: "AWF-D", AWFE: "AWF-E",
	AF: "AF", RND: "RND",
}

// String returns the conventional technique name (e.g. "FAC2", "AWF-B").
func (t Technique) String() string {
	if s, ok := techniqueNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// Parse maps a technique name (case-insensitive, "AWF-B"/"AWFB" both
// accepted) back to its Technique value.
func Parse(name string) (Technique, error) {
	n := strings.ToUpper(strings.ReplaceAll(strings.TrimSpace(name), "-", ""))
	for t, s := range techniqueNames {
		if strings.ReplaceAll(s, "-", "") == n {
			return t, nil
		}
	}
	return 0, fmt.Errorf("dls: unknown technique %q", name)
}

// All returns the techniques in a stable presentation order.
func All() []Technique {
	return []Technique{STATIC, SS, FSC, GSS, TSS, FAC, FAC2, WF, TFSS, AWFB, AWFC, AWFD, AWFE, AF, RND}
}

// IsAdaptive reports whether the technique updates itself from runtime
// measurements (the AWF family and AF).
func (t Technique) IsAdaptive() bool {
	return t == AWFB || t == AWFC || t == AWFD || t == AWFE || t == AF
}

// IsWeighted reports whether Chunk depends on the requesting worker.
func (t Technique) IsWeighted() bool {
	return t == WF || t.IsAdaptive()
}

// Params hold the static inputs of a schedule.
type Params struct {
	// N is the total number of loop iterations.
	N int
	// P is the number of workers served at this scheduling level.
	P int
	// MinChunk is the smallest chunk ever produced (default 1).
	MinChunk int
	// Mean and Sigma describe per-iteration execution time; FAC requires
	// both, FSC requires Sigma, and the AWF family uses Mean as the initial
	// rate estimate. They are ignored elsewhere.
	Mean, Sigma float64
	// Overhead is the per-scheduling-operation cost h used by FSC and the
	// AWF-D/E variants.
	Overhead float64
	// Weights are per-worker relative speeds for WF (nil means uniform);
	// they are normalized so their mean is 1.
	Weights []float64
}

func (p *Params) validate(t Technique) error {
	if p.N < 0 {
		return fmt.Errorf("dls: %v: N = %d, must be >= 0", t, p.N)
	}
	if p.P <= 0 {
		return fmt.Errorf("dls: %v: P = %d, must be > 0", t, p.P)
	}
	if p.MinChunk < 0 {
		return fmt.Errorf("dls: %v: MinChunk = %d, must be >= 0", t, p.MinChunk)
	}
	switch t {
	case FAC:
		if p.Mean <= 0 || p.Sigma < 0 {
			return fmt.Errorf("dls: FAC requires Mean > 0 and Sigma >= 0 (got mean=%g sigma=%g)", p.Mean, p.Sigma)
		}
	case FSC:
		if p.Sigma <= 0 || p.Overhead <= 0 {
			return fmt.Errorf("dls: FSC requires Sigma > 0 and Overhead > 0 (got sigma=%g h=%g)", p.Sigma, p.Overhead)
		}
	case WF:
		if p.Weights != nil && len(p.Weights) != p.P {
			return fmt.Errorf("dls: WF got %d weights for %d workers", len(p.Weights), p.P)
		}
		for i, w := range p.Weights {
			if w <= 0 {
				return fmt.Errorf("dls: WF weight[%d] = %g, must be > 0", i, w)
			}
		}
	}
	return nil
}

// Schedule computes chunk sizes for one loop execution. Implementations are
// deterministic functions of (step, worker) plus — for adaptive techniques —
// the measurements recorded so far.
//
// Chunk returns the raw size for scheduling step s (0-based) requested by
// worker w; callers clamp it against the remaining iterations. Chunk never
// returns less than max(1, MinChunk) so that coverage always terminates.
type Schedule interface {
	// Technique identifies the schedule's technique.
	Technique() Technique
	// Params returns the static inputs the schedule was built from
	// (after defaulting, e.g. MinChunk 0 → 1).
	Params() Params
	// Chunk returns the raw chunk size for scheduling step s (0-based)
	// requested by worker w; callers clamp against remaining iterations.
	Chunk(s, w int) int
}

// Adaptive is implemented by schedules that refine themselves from runtime
// feedback (the AWF family). Record reports that worker w executed a chunk
// of the given size in execTime seconds (plus schedTime seconds of
// scheduling overhead, counted only by the D/E variants).
type Adaptive interface {
	Schedule
	// Record reports that worker w executed a chunk of the given size in
	// execTime seconds (plus schedTime seconds of scheduling overhead,
	// counted only by the D/E variants).
	Record(w int, size int, execTime, schedTime float64)
}

// New constructs the schedule for technique t.
func New(t Technique, p Params) (Schedule, error) {
	if err := p.validate(t); err != nil {
		return nil, err
	}
	if p.MinChunk == 0 {
		p.MinChunk = 1
	}
	switch t {
	case STATIC:
		return newStatic(p), nil
	case SS:
		return newSS(p), nil
	case FSC:
		return newFSC(p), nil
	case GSS:
		return newGSS(p), nil
	case TSS:
		return newTSS(p), nil
	case FAC:
		return newFAC(p), nil
	case FAC2:
		return newFAC2(p), nil
	case WF:
		return newWF(p), nil
	case TFSS:
		return newTFSS(p), nil
	case AWFB, AWFC, AWFD, AWFE:
		return newAWF(t, p), nil
	case AF:
		return newAF(p), nil
	case RND:
		return newRND(p), nil
	}
	return nil, fmt.Errorf("dls: unknown technique %v", t)
}

// MustNew is New, panicking on error; for tests and tables of valid configs.
func MustNew(t Technique, p Params) Schedule {
	s, err := New(t, p)
	if err != nil {
		panic(err)
	}
	return s
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		panic("dls: ceilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
