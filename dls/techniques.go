package dls

import "math"

// base carries the shared fields of all schedules.
type base struct {
	t Technique
	p Params
}

func (b *base) Technique() Technique { return b.t }
func (b *base) Params() Params       { return b.p }

func (b *base) clampMin(c int) int {
	return maxInt(c, maxInt(1, b.p.MinChunk))
}

// ---------------------------------------------------------------- STATIC --

type staticSched struct{ base }

func newStatic(p Params) Schedule { return &staticSched{base{STATIC, p}} }

// Chunk assigns ⌈N/P⌉ to each step while that much work remains and the
// true remainder N − step·⌈N/P⌉ to the final step, so the raw sequence sums
// to exactly N when N % P ≠ 0 instead of overshooting. Later steps (which
// only occur when clamping already exhausted the loop) still return a
// positive size so callers always terminate via the scheduled-iterations
// clamp.
func (s *staticSched) Chunk(step, _ int) int {
	if s.p.N == 0 {
		return s.clampMin(1)
	}
	c := ceilDiv(s.p.N, s.p.P)
	if rem := s.p.N - step*c; rem < c {
		if rem < 1 {
			rem = 1
		}
		return s.clampMin(rem)
	}
	return s.clampMin(c)
}

// -------------------------------------------------------------------- SS --

type ssSched struct{ base }

func newSS(p Params) Schedule { return &ssSched{base{SS, p}} }

func (s *ssSched) Chunk(_, _ int) int { return s.clampMin(1) }

// ------------------------------------------------------------------- FSC --

type fscSched struct {
	base
	size int
}

// newFSC computes the Kruskal–Weiss optimal fixed chunk size
//
//	ℓ = ( √2 · N · h / (σ · P · √(log P)) )^(2/3)
//
// which balances the scheduling overhead h against the load-imbalance cost
// driven by the iteration-time standard deviation σ.
func newFSC(p Params) Schedule {
	logP := math.Log(float64(p.P))
	if logP < 1 {
		logP = 1 // P=1,2: avoid a degenerate divisor; a single worker takes everything anyway
	}
	l := math.Pow(math.Sqrt2*float64(p.N)*p.Overhead/(p.Sigma*float64(p.P)*math.Sqrt(logP)), 2.0/3.0)
	size := int(math.Ceil(l))
	if size < 1 {
		size = 1
	}
	if p.N > 0 && size > ceilDiv(p.N, p.P) {
		size = ceilDiv(p.N, p.P)
	}
	if size < 1 {
		size = 1
	}
	return &fscSched{base{FSC, p}, size}
}

func (s *fscSched) Chunk(_, _ int) int { return s.clampMin(s.size) }

// ------------------------------------------------------------------- GSS --

type gssSched struct{ base }

func newGSS(p Params) Schedule { return &gssSched{base{GSS, p}} }

// Chunk uses the closed form of guided self-scheduling,
//
//	C(s) = ⌈ (N/P) · (1 − 1/P)^s ⌉,
//
// the step-indexed formulation required by distributed chunk calculation:
// it depends only on the scheduling step, not on execution history.
func (s *gssSched) Chunk(step, _ int) int {
	if s.p.P == 1 {
		if step == 0 {
			return s.clampMin(s.p.N)
		}
		return s.clampMin(1)
	}
	f := float64(s.p.N) / float64(s.p.P) * math.Pow(1-1/float64(s.p.P), float64(step))
	return s.clampMin(int(math.Ceil(f)))
}

// ------------------------------------------------------------------- TSS --

type tssSched struct {
	base
	first, last int
	steps       int
	delta       float64
}

// newTSS uses Tzen & Ni's recommended parameters: first chunk F = ⌈N/(2P)⌉,
// last chunk L = 1, so the number of scheduling steps is S = ⌈2N/(F+L)⌉ and
// the per-step linear decrement is δ = (F−L)/(S−1).
func newTSS(p Params) Schedule {
	f := ceilDiv(maxInt(p.N, 1), 2*p.P)
	l := 1
	if f < l {
		f = l
	}
	steps := ceilDiv(2*maxInt(p.N, 1), f+l)
	var delta float64
	if steps > 1 {
		delta = float64(f-l) / float64(steps-1)
	}
	return &tssSched{base{TSS, p}, f, l, steps, delta}
}

func (s *tssSched) Chunk(step, _ int) int {
	c := float64(s.first) - float64(step)*s.delta
	return s.clampMin(int(c))
}

// ------------------------------------------------------------------- FAC --

type facSched struct {
	base
	// batchChunk[j] is the chunk size in batch j, precomputed by replaying
	// the factoring recurrence; the slice is extended on demand. A frozen
	// schedule (dls.Shared) has the full table precomputed and is immutable:
	// batches beyond the table are in the constant remaining≤0 tail.
	batchChunk []int
	remaining  []int // remaining iterations at the start of each batch
	frozen     bool
}

// newFAC implements the probabilistic factoring rule of Hummel, Schonberg &
// Flynn (CACM 1992), as implemented in the authors' DLS4LB library: with
// R_j iterations remaining at batch j and b_j = (P / (2√R_j)) · (σ/µ),
//
//	x_0 = 1 + b_0² + b_0·√(b_0² + 2)     (first batch)
//	x_j = 2 + b_j² + b_j·√(b_j² + 4)     (later batches)
//	chunk_j = ⌈ R_j / (x_j · P) ⌉.
//
// With σ → 0 the first batch degenerates to STATIC (x_0 → 1), and with a
// large σ/µ the chunks shrink toward SS — the behaviour FAC is designed for.
func newFAC(p Params) Schedule {
	return &facSched{base: base{FAC, p}, remaining: []int{p.N}}
}

func (s *facSched) extendTo(batch int) {
	for len(s.batchChunk) <= batch {
		j := len(s.batchChunk)
		r := s.remaining[j]
		if r <= 0 {
			s.batchChunk = append(s.batchChunk, 1)
			s.remaining = append(s.remaining, 0)
			continue
		}
		b := float64(s.p.P) / (2 * math.Sqrt(float64(r))) * (s.p.Sigma / s.p.Mean)
		var x float64
		if j == 0 {
			x = 1 + b*b + b*math.Sqrt(b*b+2)
		} else {
			x = 2 + b*b + b*math.Sqrt(b*b+4)
		}
		c := int(math.Ceil(float64(r) / (x * float64(s.p.P))))
		if c < 1 {
			c = 1
		}
		s.batchChunk = append(s.batchChunk, c)
		left := r - c*s.p.P
		if left < 0 {
			left = 0
		}
		s.remaining = append(s.remaining, left)
	}
}

func (s *facSched) Chunk(step, _ int) int {
	batch := step / s.p.P
	if s.frozen {
		if batch >= len(s.batchChunk) {
			return s.clampMin(1) // exhausted tail, as the lazy recurrence yields
		}
		return s.clampMin(s.batchChunk[batch])
	}
	s.extendTo(batch)
	return s.clampMin(s.batchChunk[batch])
}

// ------------------------------------------------------------------ FAC2 --

type fac2Sched struct{ base }

func newFAC2(p Params) Schedule { return &fac2Sched{base{FAC2, p}} }

// fac2Nominal is the factoring-by-two batch chunk ⌈N/(2^batches·P)⌉, with
// the shift guarded so deep batches (long tails of clamped 1-chunks) cannot
// overflow.
func fac2Nominal(n, p, batches int) int {
	if batches > 40 || batches < 1 {
		return 1
	}
	div := p << uint(batches)
	if div <= 0 || div > n {
		return 1
	}
	return ceilDiv(n, div)
}

// Chunk halves the (nominal) remaining work every batch of P steps:
//
//	C(s) = ⌈ N / (2^(⌊s/P⌋+1) · P) ⌉,
//
// i.e. each batch hands out half of what the previous batch left, split
// evenly over P chunks. The initial chunk is half of GSS's, as the paper
// notes in §2.
func (s *fac2Sched) Chunk(step, _ int) int {
	return s.clampMin(fac2Nominal(s.p.N, s.p.P, step/s.p.P+1))
}

// ------------------------------------------------------------------ TFSS --

type tfssSched struct {
	base
	tss        *tssSched
	batchChunk []int
	frozen     bool
}

// newTFSS implements trapezoid factoring self-scheduling (Chronopoulos,
// Andonie, Benche & Grosu, CLUSTER 2001): work is issued in batches of P
// equal chunks, where the batch chunk size is the average of the next P TSS
// chunk sizes — combining TSS's linear decrease with factoring's batching.
func newTFSS(p Params) Schedule {
	return &tfssSched{base: base{TFSS, p}, tss: newTSS(p).(*tssSched)}
}

func (s *tfssSched) extendTo(batch int) {
	for len(s.batchChunk) <= batch {
		j := len(s.batchChunk)
		sum := 0
		for k := 0; k < s.p.P; k++ {
			sum += s.tss.Chunk(j*s.p.P+k, 0)
		}
		c := sum / s.p.P
		if c < 1 {
			c = 1
		}
		s.batchChunk = append(s.batchChunk, c)
	}
}

func (s *tfssSched) Chunk(step, _ int) int {
	batch := step / s.p.P
	if s.frozen {
		if batch >= len(s.batchChunk) {
			// Past the TSS horizon the batch chunk is constant (the table's
			// last entry was computed inside that regime).
			batch = len(s.batchChunk) - 1
		}
		return s.clampMin(s.batchChunk[batch])
	}
	s.extendTo(batch)
	return s.clampMin(s.batchChunk[batch])
}
