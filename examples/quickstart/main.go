// Quickstart: schedule one loop three ways.
//
// This example touches the three layers of the library's public API:
//
//  1. dls — inspect a technique's chunk profile.
//  2. parallel — run a real Go loop with self-scheduling on the host.
//  3. hdls — simulate the paper's hierarchical MPI+MPI vs. MPI+OpenMP
//     executors on a virtual cluster and compare them.
package main

import (
	"fmt"
	"log"
	"math"
	"sync/atomic"

	"repro/dls"
	"repro/hdls"
	"repro/parallel"
)

func main() {
	// --- 1. Chunk profiles -------------------------------------------------
	// How does guided self-scheduling carve a 1000-iteration loop for 4
	// workers?
	sched := dls.MustNew(dls.GSS, dls.Params{N: 1000, P: 4})
	fmt.Println("GSS chunk profile for N=1000, P=4:")
	fmt.Println(" ", dls.ChunkSizes(sched))

	// --- 2. A real parallel loop -------------------------------------------
	// Sum eased squares with FAC2 self-scheduling across goroutines.
	var sum int64
	stats, err := parallel.For(1_000_000, func(i int) {
		atomic.AddInt64(&sum, int64(math.Sqrt(float64(i))))
	}, parallel.Options{Technique: dls.FAC2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel.For: sum=%d using %d chunks on %d workers\n",
		sum, stats.Chunks, stats.Workers)

	// --- 3. The paper's experiment, in one call ----------------------------
	// GSS across nodes, STATIC within nodes, Mandelbrot workload — the
	// configuration where the paper's MPI+MPI approach shines (Fig. 5).
	for _, approach := range []hdls.Approach{hdls.MPIMPI, hdls.MPIOpenMP} {
		res, err := hdls.Run(hdls.Config{
			App:      hdls.Mandelbrot,
			Nodes:    4,
			Inter:    dls.GSS,
			Intra:    dls.STATIC,
			Approach: approach,
			Scale:    32, // small instance: runs in well under a second
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11v GSS+STATIC on 4 nodes: %.3f s (imbalance %.2f)\n",
			approach, float64(res.ParallelTime), res.LoadImbalance)
	}
	fmt.Println("\nThe MPI+MPI run avoids the OpenMP implicit barrier, which is")
	fmt.Println("exactly the effect Figure 5 of the paper reports.")
}
