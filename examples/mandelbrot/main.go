// Mandelbrot: the paper's first application, end to end.
//
// Part A computes the actual Mandelbrot set in parallel on the host with
// dynamic loop self-scheduling and writes a PGM image — the real kernel.
//
// Part B runs the paper's Figure 5 comparison for this workload on the
// simulated cluster: GSS at the inter-node level, each intra-node technique,
// MPI+MPI vs. MPI+OpenMP, and prints the resulting table.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/dls"
	"repro/hdls"
	"repro/internal/mandelbrot"
	"repro/parallel"
)

func main() {
	// --- Part A: real computation ------------------------------------------
	p := mandelbrot.Default(800, 600)
	counts := make([]int, p.N())
	t0 := time.Now()
	st, err := parallel.For(p.N(), func(i int) {
		counts[i] = p.Escape(i)
	}, parallel.Options{Technique: dls.GSS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed %d pixels in %v (%d chunks, %d workers, imbalance %.3f)\n",
		p.N(), time.Since(t0), st.Chunks, st.Workers, st.LoadImbalance())

	out := "mandelbrot.pgm"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := mandelbrot.WritePGM(f, p.Width, p.Height, p.Render(counts)); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n\n", out)

	// Static chunking, for contrast: on this workload the imbalance metric
	// degrades visibly because contiguous pixel blocks differ wildly.
	stStatic, err := parallel.For(p.N(), func(i int) {
		_ = p.Escape(i)
	}, parallel.Options{Technique: dls.STATIC})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for contrast, STATIC chunking imbalance: %.3f (GSS was %.3f)\n\n",
		stStatic.LoadImbalance(), st.LoadImbalance())

	// --- Part B: the paper's Figure 5(a) ------------------------------------
	fmt.Println("regenerating Figure 5(a) at reduced scale (GSS inter-node):")
	fr, err := hdls.RunFigure(5, hdls.Mandelbrot, hdls.FigureOptions{
		Scale: 32,
		Nodes: []int{2, 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fr.Table())
	fmt.Printf("\nGSS+STATIC speedup of MPI+MPI at 2 nodes: %.2f×"+
		" (the paper reports ≈3.1× at full scale)\n", fr.Speedup(dls.STATIC, 2))
}
