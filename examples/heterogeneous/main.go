// Heterogeneous clusters: the weighted and adaptive extensions.
//
// The paper's related work (weighted factoring, AWF) targets clusters whose
// nodes differ in speed. This example runs the reproduction's extensions on
// a simulated cluster where half the nodes run at 60% speed:
//
//  1. inter-node technique sweep — STATIC collapses, demand-driven GSS/FAC2
//     absorb the heterogeneity, weighted factoring (WF) sizes chunks by
//     node speed up front;
//  2. the AWF family on a real host loop via package parallel, showing the
//     learned weights converging to the workers' true relative speeds.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/dls"
	"repro/hdls"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
	"repro/parallel"
)

func main() {
	// --- 1. Simulated heterogeneous cluster --------------------------------
	prof := workload.Constant(1<<14, 100e-6)
	ideal := idealHetero(prof, 4, 16, []float64{1.0, 0.6})
	fmt.Println("4 nodes (speeds 1.0/0.6 alternating), 16 ranks each, MPI+MPI:")
	fmt.Printf("%-8s %12s %10s\n", "inter", "time (s)", "vs ideal")
	for _, inter := range []dls.Technique{dls.STATIC, dls.GSS, dls.FAC2, dls.WF} {
		res, err := core.Run(core.Config{
			Cluster:        cluster.MiniHPCHetero(4, 1.0, 0.6),
			WorkersPerNode: 16,
			Inter:          inter,
			Intra:          dls.GSS,
			Workload:       prof,
			Approach:       core.MPIMPI,
			Seed:           1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %12.4f %9.2fx\n", inter, float64(res.ParallelTime),
			float64(res.ParallelTime)/ideal)
	}
	fmt.Println("\nSTATIC pins half the loop to the slow nodes; the self-scheduling")
	fmt.Println("techniques rebalance, and WF sizes chunks by node speed a priori.")

	// --- 2. AWF on a real loop ---------------------------------------------
	// Simulate heterogeneity on the host by making the second worker
	// execute a slower body; AWF-C should learn ≈2× weights for the fast
	// worker. (Two workers, so the demo works even on a 2-core machine.)
	fmt.Println("\nAWF-C on a real Go loop (worker 1 artificially 2× slower):")
	slow := func(iters int) {
		x := 0.0
		for k := 0; k < iters; k++ {
			x += float64(k) * 1e-9
		}
		_ = x
	}
	t0 := time.Now()
	st, err := parallel.ForRange(200000, func(lo, hi, w int) {
		per := 2000
		if w%2 == 1 {
			per = 4000 // slow worker
		}
		for i := lo; i < hi; i++ {
			slow(per)
		}
	}, parallel.Options{Workers: 2, Technique: dls.AWFC})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished in %v, %d chunks\n", time.Since(t0), st.Chunks)
	for w, n := range st.PerWorker {
		kind := "fast"
		if w%2 == 1 {
			kind = "slow"
		}
		fmt.Printf("  worker %d (%s): %6d iterations\n", w, kind, n)
	}
	fmt.Println("fast workers end up executing roughly twice the iterations.")

	// --- 3. And through the experiment facade ------------------------------
	res, err := hdls.Run(hdls.Config{
		App: hdls.Mandelbrot, Nodes: 4, Scale: 64,
		Inter: dls.WF, Intra: dls.GSS, Approach: hdls.MPIMPI,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(hdls facade, homogeneous WF run for reference: %.3fs, imbalance %.2f)\n",
		float64(res.ParallelTime), res.LoadImbalance)
}

func idealHetero(prof *workload.Profile, nodes, perNode int, speeds []float64) float64 {
	var capacity float64
	for n := 0; n < nodes; n++ {
		capacity += speeds[n%len(speeds)] * float64(perNode)
	}
	return float64(prof.Total()) / capacity
}
