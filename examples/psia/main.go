// PSIA: the paper's second application — parallel spin-image generation.
//
// Part A builds a synthetic 3D object (a noisy torus), generates real spin
// images for it in parallel with DLS self-scheduling, and writes a few of
// them as PGM files — this is Johnson's algorithm, the actual PSIA kernel.
//
// Part B reproduces the PSIA panels of the paper's evaluation at reduced
// scale: because spin-image work per point varies only mildly, the gap
// between MPI+MPI and MPI+OpenMP is much smaller than Mandelbrot's, which
// is precisely the contrast §5 draws.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/dls"
	"repro/hdls"
	"repro/internal/spinimage"
	"repro/internal/stats"
	"repro/parallel"
)

func main() {
	// --- Part A: real spin images -------------------------------------------
	const points = 30000
	cloud := spinimage.Torus(points, 2.0, 0.8, 0.02, 7)
	gen, err := spinimage.NewGenerator(cloud, spinimage.DefaultParams(32, 0.025))
	if err != nil {
		log.Fatal(err)
	}

	images := make([]spinimage.Image, cloud.N())
	t0 := time.Now()
	st, err := parallel.For(cloud.N(), func(i int) {
		images[i] = gen.Generate(i)
	}, parallel.Options{Technique: dls.FAC2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d spin images in %v (%d chunks, %d workers)\n",
		cloud.N(), time.Since(t0), st.Chunks, st.Workers)

	// The per-image work distribution is the paper's "mild imbalance".
	work := make([]float64, cloud.N())
	for i := range work {
		work[i] = float64(gen.SupportCount(i))
	}
	fmt.Printf("per-image candidate counts: mean %.0f, CoV %.2f (Mandelbrot's CoV is ≈2)\n",
		stats.Mean(work), stats.CoV(work))

	for k := 0; k < 3; k++ {
		idx := k * cloud.N() / 3
		name := fmt.Sprintf("spin_%05d.pgm", idx)
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := images[idx].WritePGM(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", name)
	}

	// --- Part B: the paper's Figure 5(b) -------------------------------------
	fmt.Println("\nregenerating Figure 5(b) at reduced scale (GSS inter-node, PSIA):")
	fr, err := hdls.RunFigure(5, hdls.PSIA, hdls.FigureOptions{
		Scale: 32,
		Nodes: []int{2, 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fr.Table())
	fmt.Printf("\nGSS+STATIC speedup at 2 nodes: %.2f× — small, as the paper's"+
		" 245 s vs 233 s (≈1.05×)\n", fr.Speedup(dls.STATIC, 2))
}
