// Lock contention: why SS is the proposed approach's worst case.
//
// The paper's §5 explains the one configuration where MPI+MPI loses: with
// SS at the intra-node level, every single iteration requires an exclusive
// MPI_Win_lock on the shared local work queue, and the lock-polling
// protocol (Zhao et al.) turns 16 competing ranks into a storm of
// lock-attempt messages. OpenMP's dynamic schedule pays a hardware atomic
// instead — orders of magnitude cheaper.
//
// This example sweeps the intra-node techniques on one simulated node and
// prints the lock traffic alongside the resulting loop time, then shows the
// same comparison as two ASCII Gantt charts (the Figures 2/3 contrast).
package main

import (
	"fmt"
	"log"

	"repro/dls"
	"repro/hdls"
	"repro/internal/workload"
)

func main() {
	// Fine-grained iterations (≈25 µs) are where lock overhead bites:
	// sixteen ranks demand the queue lock faster than the window port can
	// service the attempt storm.
	prof := workload.Uniform(16384, 15e-6, 40e-6, 99)

	fmt.Println("one node, 16 ranks, MPI+MPI — intra-node technique sweep:")
	fmt.Printf("%-8s %12s %14s %18s\n", "intra", "time (s)", "sub-chunks", "lock attempts/acq")
	for _, intra := range []dls.Technique{dls.STATIC, dls.GSS, dls.TSS, dls.FAC2, dls.SS} {
		res, err := hdls.Run(hdls.Config{
			Profile: prof, Nodes: 1, WorkersPerNode: 16,
			Inter: dls.GSS, Intra: intra, Approach: hdls.MPIMPI,
		})
		if err != nil {
			log.Fatal(err)
		}
		ratio := 0.0
		if res.LockAcquisitions > 0 {
			ratio = float64(res.LockAttempts) / float64(res.LockAcquisitions)
		}
		fmt.Printf("%-8v %12.4f %14d %18.2f\n",
			intra, float64(res.ParallelTime), res.LocalChunks, ratio)
	}

	fmt.Println("\nSS pays one exclusive lock per iteration; the attempts/acquisition")
	fmt.Println("ratio shows the polling storm the paper blames for the slowdown.")

	// Gantt contrast on a tiny imbalanced loop (Figures 2 and 3).
	spiky := workload.Bimodal(96, 200e-6, 3e-3, 0.15, 5)
	fmt.Println("\nMPI+OpenMP, STATIC intra (note the '.' barrier idling, Figure 2):")
	omp, err := hdls.Run(hdls.Config{
		Profile: spiky, Nodes: 1, WorkersPerNode: 8,
		Inter: dls.GSS, Intra: dls.STATIC,
		Approach: hdls.MPIOpenMP, CollectTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(omp.Trace.Gantt(96))

	fmt.Println("\nMPI+MPI, STATIC intra (no barrier — the paper's Figure 3):")
	mm, err := hdls.Run(hdls.Config{
		Profile: spiky, Nodes: 1, WorkersPerNode: 8,
		Inter: dls.GSS, Intra: dls.STATIC,
		Approach: hdls.MPIMPI, CollectTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mm.Trace.Gantt(96))
	fmt.Printf("\nparallel time: %.4fs (MPI+OpenMP) vs %.4fs (MPI+MPI)\n",
		float64(omp.ParallelTime), float64(mm.ParallelTime))
}
