package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestMessagesFromSameSourceArriveFIFO(t *testing.T) {
	_, w := newTestWorld(t, 2, 1)
	var got []int
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, 0, 64, i)
			}
		} else {
			for i := 0; i < 10; i++ {
				got = append(got, r.Recv(0, 0).Payload.(int))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("message order = %v", got)
		}
	}
}

func TestLargeMessageSlowerThanSmall(t *testing.T) {
	timeFor := func(bytes int) sim.Time {
		_, w := newTestWorld(t, 2, 1)
		var at sim.Time
		if err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(1, 0, bytes, nil)
			} else {
				r.Recv(0, 0)
				at = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return at
	}
	small := timeFor(8)
	large := timeFor(1 << 24) // 16 MiB
	if large <= small {
		t.Fatalf("16MiB message (%v) not slower than 8B (%v)", large, small)
	}
	// The bandwidth term must roughly match: 16MiB at 12.5 GB/s ≈ 1.3 ms.
	wire := float64(large - small)
	if wire < 0.8e-3 || wire > 3e-3 {
		t.Fatalf("bandwidth term = %v s, want ≈1.3 ms", wire)
	}
}

func TestIncastContentionSerializesAtNIC(t *testing.T) {
	// Eight senders to one receiver: NIC port service must serialize the
	// deliveries, so the last arrival is later than a lone message.
	lastFor := func(senders int) sim.Time {
		eng := sim.NewEngine(1)
		cfg := cluster.MiniHPC(senders + 1)
		w, err := NewWorld(eng, &cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		var last sim.Time
		if err := w.Run(func(r *Rank) {
			if r.Rank() < senders {
				r.Send(senders, 0, 8, nil)
			} else {
				for i := 0; i < senders; i++ {
					r.Recv(AnySource, AnyTag)
				}
				last = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return last
	}
	one := lastFor(1)
	eight := lastFor(8)
	if eight <= one {
		t.Fatalf("8-way incast (%v) not slower than single send (%v)", eight, one)
	}
}

func TestCollectiveKindMismatchPanics(t *testing.T) {
	_, w := newTestWorld(t, 1, 2)
	panicked := false
	err := w.Run(func(r *Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		if r.Rank() == 0 {
			w.Comm().Barrier(r)
		} else {
			w.Comm().Allreduce(r, 1, OpSum)
		}
	})
	_ = err // the survivor deadlocks; that's expected after the panic
	if !panicked {
		t.Fatal("mismatched collectives did not panic")
	}
}

func TestReduceOps(t *testing.T) {
	if OpSum.apply(2, 3) != 5 || OpMax.apply(2, 3) != 3 || OpMin.apply(2, 3) != 2 {
		t.Fatal("reduce op table broken")
	}
}

func TestWinAccountingCounters(t *testing.T) {
	_, w := newTestWorld(t, 1, 4)
	var win *Win
	err := w.Run(func(r *Rank) {
		nc := w.SplitTypeShared(r)
		wn := nc.WinAllocateShared(r, "acc", 1)
		win = wn
		for i := 0; i < 3; i++ {
			wn.Lock(r, 0, LockExclusive)
			wn.Unlock(r, 0, LockExclusive)
			wn.FetchAndOp(r, 0, 0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if win.LockAcquisitions != 12 {
		t.Fatalf("LockAcquisitions = %d, want 12", win.LockAcquisitions)
	}
	if win.LockAttempts < 12 {
		t.Fatalf("LockAttempts = %d, want >= 12", win.LockAttempts)
	}
	if win.AtomicOps != 12 {
		t.Fatalf("AtomicOps = %d, want 12", win.AtomicOps)
	}
	if w.MemPortBusy(0) <= 0 {
		t.Fatal("window port recorded no busy time")
	}
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	_, w := newTestWorld(t, 1, 1)
	panicked := false
	err := w.Run(func(r *Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		nc := w.SplitTypeShared(r)
		win := nc.WinAllocateShared(r, "x", 1)
		win.Unlock(r, 0, LockExclusive)
	})
	_ = err
	if !panicked {
		t.Fatal("Unlock without Lock did not panic")
	}
}

func TestSharedAccessValidation(t *testing.T) {
	// Direct access to a non-shared window panics.
	_, w := newTestWorld(t, 1, 2)
	panicked := 0
	err := w.Run(func(r *Rank) {
		defer func() {
			if recover() != nil {
				panicked++
			}
		}()
		win := w.Comm().WinAllocate(r, "plain", 1)
		win.SharedRead(r, 0, 0)
	})
	_ = err
	if panicked != 2 {
		t.Fatalf("%d panics, want 2 (both ranks)", panicked)
	}
}

func TestBcastNonRootWaitsForRoot(t *testing.T) {
	_, w := newTestWorld(t, 2, 1)
	var nonRootAt sim.Time
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Proc().Sleep(3)
			w.Comm().Bcast(r, 0, 9)
		} else {
			w.Comm().Bcast(r, 0, 0)
			nonRootAt = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if nonRootAt < 3 {
		t.Fatalf("non-root returned from Bcast at %v, before the root entered", nonRootAt)
	}
}

func TestRootDoesNotWaitInBcast(t *testing.T) {
	_, w := newTestWorld(t, 2, 1)
	var rootAt sim.Time
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			w.Comm().Bcast(r, 0, 1)
			rootAt = r.Now()
		} else {
			r.Proc().Sleep(10)
			w.Comm().Bcast(r, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootAt >= 10 {
		t.Fatalf("root blocked in Bcast until %v", rootAt)
	}
}

func TestManyRanksBarrierScales(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(16)
	w, err := NewWorld(eng, &cfg, 16) // 256 ranks
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	if err := w.Run(func(r *Rank) {
		for i := 0; i < 3; i++ {
			w.Comm().Barrier(r)
		}
		done++
	}); err != nil {
		t.Fatal(err)
	}
	if done != 256 {
		t.Fatalf("%d ranks finished, want 256", done)
	}
}

func TestLockFairnessIsNotStarvation(t *testing.T) {
	// Polling locks are unfair, but over many acquisitions every rank must
	// make progress (the executor's liveness depends on it).
	_, w := newTestWorld(t, 1, 8)
	acq := make([]int, 8)
	err := w.Run(func(r *Rank) {
		nc := w.SplitTypeShared(r)
		win := nc.WinAllocateShared(r, "fair", 1)
		for i := 0; i < 50; i++ {
			win.Lock(r, 0, LockExclusive)
			r.Proc().Sleep(2 * sim.Microsecond)
			win.Unlock(r, 0, LockExclusive)
			acq[nc.RankOf(r)]++
			r.Compute(10 * sim.Microsecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range acq {
		if n != 50 {
			t.Fatalf("rank %d completed %d acquisitions, want 50", i, n)
		}
	}
}
