package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Message is a received two-sided message.
type Message struct {
	Src     int // world rank of the sender
	Tag     int
	Bytes   int
	Payload any
	arrival sim.Time
}

// intraNodeLatency is the fixed part of a node-local (memcpy) message.
const intraNodeLatency = 0.3 * sim.Microsecond

// Send transmits an eager message to world rank dst. The sender blocks for
// its injection overhead only; delivery happens asynchronously after the
// transfer delay, with NIC ports serializing per-node traffic.
func (r *Rank) Send(dst, tag, bytes int, payload any) {
	if dst < 0 || dst >= len(r.world.ranks) {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	w := r.world
	net := &w.cfg.Net
	msg := &Message{Src: r.rank, Tag: tag, Bytes: bytes, Payload: payload}

	r.proc.Sleep(net.SendOverhead)
	var arrival sim.Time
	if w.sameNode(r.rank, dst) {
		copyTime := sim.Time(float64(bytes) / w.cfg.Mem.CopyBandwidth)
		arrival = r.Now() + intraNodeLatency + copyTime
	} else {
		// Injection serializes on the sender's NIC, then the wire delay,
		// then service at the destination NIC.
		w.nicPort[r.node].Serve(r.proc, net.PortService)
		wireTime := net.Latency + sim.Time(float64(bytes)/net.Bandwidth)
		arrival = w.nicPort[w.ranks[dst].node].ServeAsync(r.Now()+wireTime, net.PortService)
	}
	msg.arrival = arrival
	dstRank := w.ranks[dst]
	w.eng.Schedule(arrival, func() { dstRank.deliver(msg) })
}

// deliver runs at the destination at the message arrival time.
func (r *Rank) deliver(m *Message) {
	if r.recvWait.Len() > 0 && matches(m, r.recvSrc, r.recvTag) {
		r.mailbox = append(r.mailbox, m)
		r.recvWait.WakeOne()
		return
	}
	r.mailbox = append(r.mailbox, m)
}

func matches(m *Message, src, tag int) bool {
	return (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag)
}

// Recv blocks until a message matching (src, tag) — either may be a
// wildcard — has arrived, charges the receive overhead, and returns it.
// Matching is in arrival order.
func (r *Rank) Recv(src, tag int) *Message {
	for {
		for i, m := range r.mailbox {
			if matches(m, src, tag) {
				r.mailbox = append(r.mailbox[:i], r.mailbox[i+1:]...)
				r.proc.Sleep(r.world.cfg.Net.RecvOverhead)
				return m
			}
		}
		r.recvSrc, r.recvTag = src, tag
		r.recvWait.Wait(r.proc)
	}
}

// Iprobe reports whether a matching message has already arrived, without
// receiving it or advancing time.
func (r *Rank) Iprobe(src, tag int) bool {
	for _, m := range r.mailbox {
		if matches(m, src, tag) {
			return true
		}
	}
	return false
}

// PendingMessages reports the number of arrived, unmatched messages.
func (r *Rank) PendingMessages() int { return len(r.mailbox) }
