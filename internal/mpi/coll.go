package mpi

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Comm is a communicator: an ordered group of world ranks. Comm rank i is
// world rank ranks[i].
type Comm struct {
	world *World
	ranks []int
	name  string
	colls map[int]*collState
	nodes int // distinct nodes spanned (computed lazily)
}

// Size reports the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Name returns the communicator's debug name.
func (c *Comm) Name() string { return c.name }

// RankOf returns r's rank within c, or -1 if r is not a member.
func (c *Comm) RankOf(r *Rank) int {
	for i, wr := range c.ranks {
		if wr == r.rank {
			return i
		}
	}
	return -1
}

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.ranks[commRank] }

// spansNodes reports how many distinct nodes the communicator covers.
func (c *Comm) spansNodes() int {
	if c.nodes == 0 {
		seen := map[int]bool{}
		for _, wr := range c.ranks {
			seen[c.world.ranks[wr].node] = true
		}
		c.nodes = len(seen)
	}
	return c.nodes
}

// SplitTypeShared models MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): it
// returns the communicator of all world ranks sharing r's node. The result
// is memoized so every rank of a node receives the same *Comm.
func (w *World) SplitTypeShared(r *Rank) *Comm {
	if w.nodeComms == nil {
		w.nodeComms = make([]*Comm, w.cfg.Nodes)
	}
	n := r.node
	if w.nodeComms[n] == nil {
		var members []int
		for _, rk := range w.ranks {
			if rk.node == n {
				members = append(members, rk.rank)
			}
		}
		w.nodeComms[n] = &Comm{world: w, ranks: members, name: fmt.Sprintf("node%d", n)}
	}
	return w.nodeComms[n]
}

// Split builds a communicator from the members with the same color, ordered
// by (key, world rank). All ranks of c must call it; ranks passing a
// negative color receive nil (MPI_COMM_NULL).
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	type kv struct{ color, key, world int }
	st := c.enter(r, "split")
	if st.payload == nil {
		st.payload = make([]kv, c.Size())
	}
	parts := st.payload.([]kv)
	parts[c.RankOf(r)] = kv{color, key, r.rank}
	c.arriveAndWait(r, st, c.latencyCost(1, 8))
	var result *Comm
	if color >= 0 {
		if st.extra == nil {
			st.extra = map[int]*Comm{}
		}
		comms := st.extra.(map[int]*Comm)
		if comms[color] == nil {
			var members []kv
			for _, p := range parts {
				if p.color == color {
					members = append(members, p)
				}
			}
			// stable order by (key, world rank)
			for i := 1; i < len(members); i++ {
				for j := i; j > 0; j-- {
					a, b := members[j-1], members[j]
					if b.key < a.key || (b.key == a.key && b.world < a.world) {
						members[j-1], members[j] = b, a
					}
				}
			}
			ranks := make([]int, len(members))
			for i, m := range members {
				ranks[i] = m.world
			}
			comms[color] = &Comm{world: c.world, ranks: ranks, name: fmt.Sprintf("%s/color%d", c.name, color)}
		}
		result = comms[color]
	}
	c.leave(r, st)
	return result
}

// collState tracks one in-flight collective operation on a communicator.
type collState struct {
	arrived int
	passed  int
	wait    sim.WaitQueue
	rootIn  bool
	acc     float64
	vals    []float64
	payload any
	extra   any
	kind    string
}

// enter locates (or creates) the state for this rank's next collective call
// on c, enforcing that all ranks invoke collectives in the same order.
func (c *Comm) enter(r *Rank, kind string) *collState {
	if c.colls == nil {
		c.colls = make(map[int]*collState)
	}
	if r.collSeq == nil {
		r.collSeq = make(map[*Comm]int)
	}
	seq := r.collSeq[c]
	r.collSeq[c] = seq + 1
	st := c.colls[seq]
	if st == nil {
		st = &collState{kind: kind, vals: make([]float64, c.Size())}
		c.colls[seq] = st
	} else if st.kind != kind {
		panic(fmt.Sprintf("mpi: collective mismatch on %s: %s vs %s", c.name, st.kind, kind))
	}
	return st
}

// arriveAndWait blocks r until every rank has arrived, then charges cost.
func (c *Comm) arriveAndWait(r *Rank, st *collState, cost sim.Time) {
	st.arrived++
	if st.arrived == c.Size() {
		st.wait.WakeAll()
	} else {
		st.wait.Wait(r.proc)
	}
	r.proc.Sleep(cost)
}

// leave retires the state once every rank has passed through.
func (c *Comm) leave(r *Rank, st *collState) {
	st.passed++
	if st.passed == c.Size() {
		seq := r.collSeq[c] - 1
		delete(c.colls, seq)
	}
}

// latencyCost models a tree collective: depth × per-hop cost, where the
// per-hop cost is the network latency for multi-node communicators and a
// cheap shared-memory flag for node-local ones, plus a bandwidth term.
func (c *Comm) latencyCost(rounds int, bytes int) sim.Time {
	w := c.world
	depth := sim.Time(math.Ceil(math.Log2(float64(c.Size()))))
	if c.Size() == 1 {
		return 0
	}
	var perHop sim.Time
	if c.spansNodes() > 1 {
		perHop = w.cfg.Net.Latency + w.cfg.Net.PortService +
			sim.Time(float64(bytes)/w.cfg.Net.Bandwidth)
	} else {
		perHop = 4*w.cfg.Mem.LocalAtomic + sim.Time(float64(bytes)/w.cfg.Mem.CopyBandwidth)
	}
	return sim.Time(rounds) * depth * perHop
}

// Barrier blocks until every rank of c has entered.
func (c *Comm) Barrier(r *Rank) {
	st := c.enter(r, "barrier")
	c.arriveAndWait(r, st, c.latencyCost(2, 0))
	c.leave(r, st)
}

// ReduceOp names a reduction operator.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	panic("mpi: unknown ReduceOp")
}

// Bcast distributes root's value to every rank. Non-root ranks block until
// the root has entered; the root does not wait for the others.
func (c *Comm) Bcast(r *Rank, root int, val float64) float64 {
	st := c.enter(r, "bcast")
	me := c.RankOf(r)
	if me == root {
		st.acc = val
		st.rootIn = true
		st.wait.WakeAll()
		r.proc.Sleep(c.latencyCost(1, 8))
	} else {
		for !st.rootIn {
			st.wait.Wait(r.proc)
		}
		r.proc.Sleep(c.latencyCost(1, 8))
	}
	out := st.acc
	st.passed++
	if st.passed == c.Size() {
		delete(c.colls, r.collSeq[c]-1)
	}
	return out
}

// Allreduce combines every rank's value with op and returns the result on
// all ranks. All ranks block until the last has entered.
func (c *Comm) Allreduce(r *Rank, val float64, op ReduceOp) float64 {
	st := c.enter(r, "allreduce")
	if st.arrived == 0 {
		st.acc = val
	} else {
		st.acc = op.apply(st.acc, val)
	}
	c.arriveAndWait(r, st, c.latencyCost(2, 8))
	out := st.acc
	c.leave(r, st)
	return out
}

// Gather collects each rank's value on root, in comm-rank order. Non-root
// ranks return nil and do not wait for completion beyond their own send.
func (c *Comm) Gather(r *Rank, root int, val float64) []float64 {
	st := c.enter(r, "gather")
	me := c.RankOf(r)
	st.vals[me] = val
	st.arrived++
	if me == root {
		for st.arrived < c.Size() {
			st.wait.Wait(r.proc)
		}
		r.proc.Sleep(c.latencyCost(1, 8*c.Size()))
		out := make([]float64, c.Size())
		copy(out, st.vals)
		c.leave(r, st)
		return out
	}
	if st.arrived == c.Size() {
		st.wait.WakeAll()
	}
	r.proc.Sleep(c.latencyCost(1, 8))
	c.leave(r, st)
	return nil
}
