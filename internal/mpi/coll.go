package mpi

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Comm is a communicator: an ordered group of world ranks. Comm rank i is
// world rank ranks[i].
type Comm struct {
	world *World
	ranks []int
	name  string
	// contig marks communicators whose members are the contiguous world-rank
	// range [ranks[0], ranks[0]+Size): the world communicator and the
	// node-local ones. RankOf is then a subtraction; other communicators
	// carry the rankIdx index below.
	contig bool
	// rankIdx maps world rank → comm rank (-1 for non-members); built once
	// at communicator creation so RankOf never scans.
	rankIdx []int32
	// In-flight collective states, indexed seq − collBase. States retire in
	// sequence order (every rank passes collective k before entering k+1),
	// so the window is a short sliding slice; retired states recycle through
	// collFree, which keeps steady-state collectives allocation-free.
	collRing []*collState
	collBase int
	collFree *collState
	// seqOf[commRank] is that rank's next collective sequence number — the
	// per-comm call counter that enforces "all ranks invoke collectives in
	// the same order" without a per-rank map.
	seqOf []int
	nodes int // distinct nodes spanned (computed lazily)
}

// newComm builds a communicator over the given world ranks, precomputing the
// O(1) rank index. The ranks slice is owned by the communicator afterwards.
func newComm(w *World, ranks []int, name string) *Comm {
	c := &Comm{world: w, ranks: ranks, name: name, seqOf: make([]int, len(ranks))}
	c.contig = true
	for i, wr := range ranks {
		if wr != ranks[0]+i {
			c.contig = false
			break
		}
	}
	if !c.contig {
		c.rankIdx = make([]int32, len(w.ranks))
		for i := range c.rankIdx {
			c.rankIdx[i] = -1
		}
		for i, wr := range ranks {
			c.rankIdx[wr] = int32(i)
		}
	}
	return c
}

// Size reports the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Name returns the communicator's debug name.
func (c *Comm) Name() string { return c.name }

// RankOf returns r's rank within c, or -1 if r is not a member. It is O(1):
// contiguous communicators subtract the base rank, the rest consult the
// index built at creation time.
func (c *Comm) RankOf(r *Rank) int {
	if c.contig {
		i := r.rank - c.ranks[0]
		if i < 0 || i >= len(c.ranks) {
			return -1
		}
		return i
	}
	return int(c.rankIdx[r.rank])
}

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.ranks[commRank] }

// spansNodes reports how many distinct nodes the communicator covers.
func (c *Comm) spansNodes() int {
	if c.nodes == 0 {
		if c.contig {
			// Contiguous world ranks cover a contiguous node range.
			c.nodes = c.world.ranks[c.ranks[len(c.ranks)-1]].node -
				c.world.ranks[c.ranks[0]].node + 1
		} else {
			seen := make([]bool, c.world.cfg.Nodes)
			for _, wr := range c.ranks {
				n := c.world.ranks[wr].node
				if !seen[n] {
					seen[n] = true
					c.nodes++
				}
			}
		}
	}
	return c.nodes
}

// SplitTypeShared models MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): it
// returns the communicator of all world ranks sharing r's node. The result
// is memoized so every rank of a node receives the same *Comm. Ranks are
// placed contiguously by node, so construction is O(ranks on the node).
func (w *World) SplitTypeShared(r *Rank) *Comm {
	if w.nodeComms == nil {
		w.nodeComms = make([]*Comm, w.cfg.Nodes)
	}
	n := r.node
	if w.nodeComms[n] == nil {
		members := make([]int, w.nodeRanks[n])
		for i := range members {
			members[i] = w.nodeOff[n] + i
		}
		w.nodeComms[n] = newComm(w, members, fmt.Sprintf("node%d", n))
	}
	return w.nodeComms[n]
}

// Split builds a communicator from the members with the same color, ordered
// by (key, world rank). All ranks of c must call it; ranks passing a
// negative color receive nil (MPI_COMM_NULL).
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	type kv struct{ color, key, world int }
	st := c.enter(r, "split")
	if st.payload == nil {
		st.payload = make([]kv, c.Size())
	}
	parts := st.payload.([]kv)
	parts[c.RankOf(r)] = kv{color, key, r.rank}
	c.arriveAndWait(r, st, c.latencyCost(1, 8))
	var result *Comm
	if color >= 0 {
		if st.extra == nil {
			st.extra = map[int]*Comm{}
		}
		comms := st.extra.(map[int]*Comm)
		if comms[color] == nil {
			var members []kv
			for _, p := range parts {
				if p.color == color {
					members = append(members, p)
				}
			}
			// stable order by (key, world rank)
			for i := 1; i < len(members); i++ {
				for j := i; j > 0; j-- {
					a, b := members[j-1], members[j]
					if b.key < a.key || (b.key == a.key && b.world < a.world) {
						members[j-1], members[j] = b, a
					}
				}
			}
			ranks := make([]int, len(members))
			for i, m := range members {
				ranks[i] = m.world
			}
			comms[color] = newComm(c.world, ranks, fmt.Sprintf("%s/color%d", c.name, color))
		}
		result = comms[color]
	}
	c.leave(r, st)
	return result
}

// collState tracks one in-flight collective operation on a communicator.
type collState struct {
	seq     int
	arrived int
	passed  int
	wait    sim.WaitQueue
	// conts holds goroutine-free arrivals (the *Cont collective variants) in
	// arrival order — the machine-rank analogue of wait. A collective never
	// mixes the two: all ranks of an executor are procs or all are machines.
	conts   []func()
	rootIn  bool
	acc     float64
	vals    []float64
	payload any
	extra   any
	kind    string
	next    *collState // freelist link
}

// enter locates (or creates) the state for this rank's next collective call
// on c, enforcing that all ranks invoke collectives in the same order.
// Lookup is O(1): the per-rank sequence counter indexes the sliding window
// of in-flight states, and retired states are recycled from a freelist.
func (c *Comm) enter(r *Rank, kind string) *collState {
	me := c.RankOf(r)
	seq := c.seqOf[me]
	c.seqOf[me] = seq + 1
	idx := seq - c.collBase
	for idx >= len(c.collRing) {
		c.collRing = append(c.collRing, nil)
	}
	st := c.collRing[idx]
	if st == nil {
		st = c.collFree
		if st == nil {
			st = &collState{vals: make([]float64, c.Size())}
		} else {
			c.collFree = st.next
			st.next = nil
			if cap(st.vals) < c.Size() {
				st.vals = make([]float64, c.Size())
			} else {
				st.vals = st.vals[:c.Size()]
				for i := range st.vals {
					st.vals[i] = 0
				}
			}
			st.arrived, st.passed, st.rootIn, st.acc = 0, 0, false, 0
			st.payload, st.extra = nil, nil
		}
		st.kind = kind
		st.seq = seq
		c.collRing[idx] = st
	} else if st.kind != kind {
		panic(fmt.Sprintf("mpi: collective mismatch on %s: %s vs %s", c.name, st.kind, kind))
	}
	return st
}

// arriveAndWait blocks r until every rank has arrived, then charges cost.
func (c *Comm) arriveAndWait(r *Rank, st *collState, cost sim.Time) {
	st.arrived++
	if st.arrived == c.Size() {
		if len(st.conts) > 0 {
			panic(fmt.Sprintf("mpi: collective on %s mixes process and machine ranks", c.name))
		}
		st.wait.WakeAll()
	} else {
		st.wait.Wait(r.proc)
	}
	r.proc.Sleep(cost)
}

// arriveCont is arriveAndWait for goroutine-free ranks: instead of parking a
// process it records cont and, when the last rank arrives, replays the
// literal wake-and-sleep chain as engine events. Event positions are
// byte-identical to the process version: the waiters' wake events occupy the
// WakeAll resume positions (FIFO), the last arriver's post-cost continuation
// is pushed next (its own Sleep), and each woken rank pushes its post-cost
// continuation when its wake event fires (that rank's Sleep).
func (c *Comm) arriveCont(r *Rank, st *collState, cost sim.Time, cont func()) {
	st.arrived++
	if st.arrived < c.Size() {
		st.conts = append(st.conts, cont)
		return
	}
	if st.wait.Len() > 0 {
		panic(fmt.Sprintf("mpi: collective on %s mixes process and machine ranks", c.name))
	}
	eng := c.world.eng
	now := eng.Now()
	for _, wc := range st.conts {
		wc := wc
		eng.ScheduleAsOf(now, now, func() {
			eng.ScheduleAsOf(now+cost, now, wc)
		})
	}
	st.conts = st.conts[:0]
	eng.ScheduleAsOf(now+cost, now, cont)
}

// leave retires the state once every rank has passed through. States retire
// in sequence order (a rank passes collective k before entering k+1), so
// retirement slides the ring window forward and recycles the state.
func (c *Comm) leave(r *Rank, st *collState) {
	st.passed++
	if st.passed == c.Size() {
		c.collRing[st.seq-c.collBase] = nil
		for len(c.collRing) > 0 && c.collRing[0] == nil {
			c.collRing = c.collRing[1:]
			c.collBase++
		}
		st.next = c.collFree
		c.collFree = st
	}
}

// latencyCost models a tree collective: depth × per-hop cost, where the
// per-hop cost is the network latency for multi-node communicators and a
// cheap shared-memory flag for node-local ones, plus a bandwidth term.
func (c *Comm) latencyCost(rounds int, bytes int) sim.Time {
	w := c.world
	depth := sim.Time(math.Ceil(math.Log2(float64(c.Size()))))
	if c.Size() == 1 {
		return 0
	}
	var perHop sim.Time
	if c.spansNodes() > 1 {
		perHop = w.cfg.Net.Latency + w.cfg.Net.PortService +
			sim.Time(float64(bytes)/w.cfg.Net.Bandwidth)
	} else {
		perHop = 4*w.cfg.Mem.LocalAtomic + sim.Time(float64(bytes)/w.cfg.Mem.CopyBandwidth)
	}
	return sim.Time(rounds) * depth * perHop
}

// Barrier blocks until every rank of c has entered.
func (c *Comm) Barrier(r *Rank) {
	st := c.enter(r, "barrier")
	c.arriveAndWait(r, st, c.latencyCost(2, 0))
	c.leave(r, st)
}

// BarrierCont is Barrier for goroutine-free ranks: cont runs at the event
// position where the literal caller resumed past the barrier.
func (c *Comm) BarrierCont(r *Rank, cont func()) {
	st := c.enter(r, "barrier")
	c.arriveCont(r, st, c.latencyCost(2, 0), func() {
		c.leave(r, st)
		cont()
	})
}

// ReduceOp names a reduction operator.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) apply(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	}
	panic("mpi: unknown ReduceOp")
}

// Bcast distributes root's value to every rank. Non-root ranks block until
// the root has entered; the root does not wait for the others.
func (c *Comm) Bcast(r *Rank, root int, val float64) float64 {
	st := c.enter(r, "bcast")
	me := c.RankOf(r)
	if me == root {
		st.acc = val
		st.rootIn = true
		st.wait.WakeAll()
		r.proc.Sleep(c.latencyCost(1, 8))
	} else {
		for !st.rootIn {
			st.wait.Wait(r.proc)
		}
		r.proc.Sleep(c.latencyCost(1, 8))
	}
	out := st.acc
	c.leave(r, st)
	return out
}

// Allreduce combines every rank's value with op and returns the result on
// all ranks. All ranks block until the last has entered.
func (c *Comm) Allreduce(r *Rank, val float64, op ReduceOp) float64 {
	st := c.enter(r, "allreduce")
	if st.arrived == 0 {
		st.acc = val
	} else {
		st.acc = op.apply(st.acc, val)
	}
	c.arriveAndWait(r, st, c.latencyCost(2, 8))
	out := st.acc
	c.leave(r, st)
	return out
}

// Gather collects each rank's value on root, in comm-rank order. Non-root
// ranks return nil and do not wait for completion beyond their own send.
func (c *Comm) Gather(r *Rank, root int, val float64) []float64 {
	st := c.enter(r, "gather")
	me := c.RankOf(r)
	st.vals[me] = val
	st.arrived++
	if me == root {
		for st.arrived < c.Size() {
			st.wait.Wait(r.proc)
		}
		r.proc.Sleep(c.latencyCost(1, 8*c.Size()))
		out := make([]float64, c.Size())
		copy(out, st.vals)
		c.leave(r, st)
		return out
	}
	if st.arrived == c.Size() {
		st.wait.WakeAll()
	}
	r.proc.Sleep(c.latencyCost(1, 8))
	c.leave(r, st)
	return nil
}
