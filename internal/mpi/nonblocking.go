package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Request is a handle for a nonblocking operation, completed with Wait.
type Request struct {
	rank *Rank
	done bool
	// For receives: the matched message once completed.
	msg *Message
	// recv matching criteria.
	isRecv   bool
	src, tag int
	// send completion time (injection already charged at Isend).
	completeAt sim.Time
}

// Isend starts a nonblocking send. The injection overhead is charged
// immediately (it is CPU work); the returned request completes once the
// message has left the sender's NIC. Delivery proceeds as with Send.
func (r *Rank) Isend(dst, tag, bytes int, payload any) *Request {
	req := &Request{rank: r, completeAt: r.Now()}
	r.Send(dst, tag, bytes, payload) // eager: locally complete after injection
	req.completeAt = r.Now()
	req.done = true
	return req
}

// Irecv posts a nonblocking receive. Matching happens at Wait; Test reports
// whether a matching message has already arrived.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{rank: r, isRecv: true, src: src, tag: tag}
}

// Test reports whether the request could complete without blocking.
func (q *Request) Test() bool {
	if q.done {
		return true
	}
	if q.isRecv {
		return q.rank.Iprobe(q.src, q.tag)
	}
	return q.rank.Now() >= q.completeAt
}

// Wait blocks until the operation completes and, for receives, returns the
// message (nil for sends).
func (q *Request) Wait() *Message {
	if q.done {
		return q.msg
	}
	if q.isRecv {
		q.msg = q.rank.Recv(q.src, q.tag)
	}
	q.done = true
	return q.msg
}

// WaitAll completes a set of requests in order and returns the received
// messages (nil entries for sends). All requests must belong to one rank.
func WaitAll(reqs ...*Request) []*Message {
	out := make([]*Message, len(reqs))
	for i, q := range reqs {
		if q == nil {
			continue
		}
		out[i] = q.Wait()
	}
	return out
}

// Scatter distributes root's values: rank i of the communicator receives
// vals[i]. Only the root supplies vals; others pass nil.
func (c *Comm) Scatter(r *Rank, root int, vals []float64) float64 {
	st := c.enter(r, "scatter")
	me := c.RankOf(r)
	if me == root {
		if len(vals) != c.Size() {
			panic(fmt.Sprintf("mpi: Scatter with %d values for %d ranks", len(vals), c.Size()))
		}
		copy(st.vals, vals)
		st.rootIn = true
		st.wait.WakeAll()
		r.proc.Sleep(c.latencyCost(1, 8*c.Size()))
	} else {
		for !st.rootIn {
			st.wait.Wait(r.proc)
		}
		r.proc.Sleep(c.latencyCost(1, 8))
	}
	out := st.vals[me]
	c.leave(r, st)
	return out
}

// Allgather collects every rank's value on every rank, in comm-rank order.
func (c *Comm) Allgather(r *Rank, val float64) []float64 {
	st := c.enter(r, "allgather")
	st.vals[c.RankOf(r)] = val
	c.arriveAndWait(r, st, c.latencyCost(2, 8*c.Size()))
	out := make([]float64, c.Size())
	copy(out, st.vals)
	c.leave(r, st)
	return out
}

// Reduce combines every rank's value with op; only root receives the
// result (others get 0). Non-root ranks leave after depositing.
func (c *Comm) Reduce(r *Rank, root int, val float64, op ReduceOp) float64 {
	st := c.enter(r, "reduce")
	if st.arrived == 0 {
		st.acc = val
	} else {
		st.acc = op.apply(st.acc, val)
	}
	st.arrived++
	me := c.RankOf(r)
	if me == root {
		for st.arrived < c.Size() {
			st.wait.Wait(r.proc)
		}
		r.proc.Sleep(c.latencyCost(1, 8))
		out := st.acc
		c.leave(r, st)
		return out
	}
	if st.arrived == c.Size() {
		st.wait.WakeAll()
	}
	r.proc.Sleep(c.latencyCost(1, 8))
	c.leave(r, st)
	return 0
}
