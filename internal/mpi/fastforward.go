package mpi

import (
	"os"
	"strings"
	"sync/atomic"
)

// fastFwd is the process-wide analytic fast-forward switch (default on).
// When set, continuation hops whose outcome cannot interact with any other
// pending event run inline at their exact position via sim.Engine.AbsorbAsOf
// instead of round-tripping through the event queue, the port parks the
// provably-failing first check of a contended lock attempt at issue, and a
// wake resolves a grant landing at its own position inline — while keeping
// every surviving event at its literal (time, scheduling-time) key and every
// counter bit-identical.
// DESIGN.md §11 gives the equivalence argument; the differential oracle in
// internal/core/fastforward_test.go enforces it. Results are identical
// either way, so the switch is not part of any configuration or cache key —
// it exists for that oracle and for CI's forced-on/forced-off golden shards.
var fastFwd atomic.Bool

func init() {
	fastFwd.Store(envFastForward(os.Getenv("HDLS_FASTFORWARD")))
}

// envFastForward interprets the HDLS_FASTFORWARD environment variable:
// "0"/"off"/"false"/"no" (any case) force the literal event-per-step
// protocol, anything else — including unset and the "lanes" mode consumed by
// internal/core — leaves the analytic fast-forward on.
func envFastForward(v string) bool {
	switch strings.ToLower(v) {
	case "0", "off", "false", "no":
		return false
	}
	return true
}

// FastForwardEnabled reports the process-wide fast-forward switch.
func FastForwardEnabled() bool { return fastFwd.Load() }

// SetFastForward sets the process-wide fast-forward switch and returns the
// previous value. Flipping it never changes observable output — only the
// number of host events spent producing it.
func SetFastForward(on bool) bool { return fastFwd.Swap(on) }
