package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestRankOfIndexed checks the O(1) RankOf index on every communicator
// shape: the contiguous world and node communicators and a strided Split.
func TestRankOfIndexed(t *testing.T) {
	cl := cluster.MiniHPC(4)
	eng := sim.NewEngine(1)
	w, err := NewWorld(eng, &cl, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) {
		if got := w.Comm().RankOf(r); got != r.Rank() {
			t.Errorf("world RankOf(%d) = %d", r.Rank(), got)
		}
		nc := w.SplitTypeShared(r)
		if got := nc.RankOf(r); got != r.Core() {
			t.Errorf("node RankOf(rank %d) = %d, want core %d", r.Rank(), got, r.Core())
		}
		// Odd/even split with reversed key order: a non-contiguous comm.
		sc := w.Comm().Split(r, r.Rank()%2, -r.Rank())
		me := sc.RankOf(r)
		if sc.WorldRank(me) != r.Rank() {
			t.Errorf("split comm index broken: RankOf→WorldRank = %d for rank %d", sc.WorldRank(me), r.Rank())
		}
		// A rank is never a member of the other color's communicator.
		if r.Rank()%2 == 0 {
			other := w.Rank((r.Rank() + 1) % w.Size())
			if got := sc.RankOf(other); got != -1 {
				t.Errorf("RankOf(non-member) = %d, want -1", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorldResetMatchesFresh verifies World.Reset's pooling contract: a
// world reset onto a reset engine reproduces a fresh world's run bit for
// bit, including RMA lock accounting, across a shape change.
func TestWorldResetMatchesFresh(t *testing.T) {
	run := func(eng *sim.Engine, w *World) (float64, int64, sim.Time) {
		var sum float64
		var win *Win
		err := w.Run(func(r *Rank) {
			wn := w.Comm().WinAllocate(r, "w", 2)
			win = wn
			w.Comm().Barrier(r)
			wn.Lock(r, 0, LockExclusive)
			wn.FetchAndOp(r, 0, 0, 1)
			wn.Unlock(r, 0, LockExclusive)
			sum = w.Comm().Allreduce(r, float64(r.Rank()), OpSum)
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum, win.LockAttempts, eng.Now()
	}

	cl := cluster.MiniHPC(2)
	engF := sim.NewEngine(5)
	wF, err := NewWorld(engF, &cl, 8)
	if err != nil {
		t.Fatal(err)
	}
	sumF, attF, endF := run(engF, wF)

	// Pooled path: dirty the arena with a different shape first.
	eng := sim.NewEngine(99)
	clBig := cluster.MiniHPCHetero(3, 1.0, 0.5)
	w, err := NewWorld(eng, &clBig, 4)
	if err != nil {
		t.Fatal(err)
	}
	run(eng, w)
	eng.Reset(5)
	if err := w.Reset(eng, &cl, 8); err != nil {
		t.Fatal(err)
	}
	sumP, attP, endP := run(eng, w)

	if sumF != sumP || attF != attP || endF != endP {
		t.Fatalf("reset world diverged: fresh (sum %v, attempts %d, end %v) vs pooled (%v, %d, %v)",
			sumF, attF, endF, sumP, attP, endP)
	}
}

// TestWorldResetRejectsBadShape mirrors NewWorld's validation.
func TestWorldResetRejectsBadShape(t *testing.T) {
	cl := cluster.MiniHPC(2)
	eng := sim.NewEngine(1)
	w, err := NewWorld(eng, &cl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(r *Rank) {}); err != nil {
		t.Fatal(err)
	}
	eng.Reset(1)
	if err := w.Reset(eng, &cl, 999); err == nil {
		t.Fatal("Reset accepted ranksPerNode beyond the core count")
	}
}

// BenchmarkCommRankOf measures the O(1) rank lookup the executors lean on
// (it was a linear scan before the precomputed index).
func BenchmarkCommRankOf(b *testing.B) {
	cl := cluster.MiniHPC(16)
	eng := sim.NewEngine(1)
	w, err := NewWorld(eng, &cl, 16)
	if err != nil {
		b.Fatal(err)
	}
	var comms []*Comm
	err = w.Run(func(r *Rank) { comms = append(comms, w.SplitTypeShared(r)) })
	if err != nil {
		b.Fatal(err)
	}
	last := w.Rank(w.Size() - 1) // worst case for the old linear scan
	nc := comms[len(comms)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.Comm().RankOf(last) < 0 || nc.RankOf(last) < 0 {
			b.Fatal("rank not found")
		}
	}
}
