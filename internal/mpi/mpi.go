// Package mpi models an MPI-3 runtime on top of the discrete-event engine in
// internal/sim. It provides the subset of MPI the paper's implementation
// rests on — two-sided messaging, collectives, passive-target RMA with the
// lock-polling protocol, and MPI-3 shared-memory windows
// (MPI_Win_allocate_shared / MPI_Comm_split_type(SHARED)) — with explicit
// cost models taken from the cluster description.
//
// Ranks are simulated processes; window memory is real Go memory touched
// only while a rank holds engine control, so the model is race-free by
// construction while contention and queueing emerge from the Server ports.
package mpi

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Wildcards for two-sided matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// World is a set of ranks placed on a simulated cluster. Ranks are numbered
// contiguously by node: node n hosts ranks [nodeOff[n], nodeOff[n]+nodeRanks[n]).
// On a homogeneous machine that reduces to the classic rank r → node
// r/ranksPerNode placement.
type World struct {
	eng       *sim.Engine
	cfg       *cluster.Config
	nodeRanks []int // ranks hosted per node
	nodeOff   []int // first world rank of each node
	ranks     []*Rank

	// nicPort serializes inter-node message handling per node.
	nicPort []*sim.Server
	// memPort serializes RMA operations (including lock attempts) targeting
	// windows hosted on a node. This is the resource whose saturation
	// produces the paper's lock-polling pathology. Each port also carries
	// the virtual lock-poller machinery (see rma.go): contended Win.Lock
	// callers park instead of generating one host event per retry, and their
	// poll attempts are replayed arithmetically, in arrival order, whenever
	// the port or the lock state is touched.
	memPort []*rmaPort

	world     *Comm
	nodeComms []*Comm
	wins      []*Win
	// winFree holds retired windows from earlier cells of a pooled world;
	// allocateWin reuses their backing arrays (see World.Reset).
	winFree []*Win

	// wakeFree pools wake-chain records (rma.go) so re-arming allocates
	// nothing in steady state.
	wakeFree *wakeRec

	// inlineGrants collects lock grants that advancePort resolved at exactly
	// the running wake event's position; the wake runs them after
	// reconciliation, replacing the same-key grant events the literal
	// protocol would have fired immediately afterwards (DESIGN.md §11).
	inlineGrants []func()

	// lanes holds the per-node fast-forward engines (DESIGN.md §11): when
	// laneOn is set, node n ≥ 1 runs its node-local event chains on
	// lanes[n] while node 0 — which hosts the globally shared window — and
	// all cross-node traffic stay on eng. lanes[0] is always nil. The lane
	// engines are pooled across Reset like every other arena structure;
	// laneOn is re-armed per cell via EnableLanes.
	lanes  []*sim.Engine
	laneOn bool
	// mergeEngs/mergeKeys are LaunchLanes' merge scratch (dense engine list
	// and cached head keys), pooled across cells like the lanes themselves.
	mergeEngs []*sim.Engine
	mergeKeys []engKey
}

// NewWorld creates up to ranksPerNode ranks on each node of cfg: node n
// hosts min(ranksPerNode, cfg.Cores(n)) ranks — one rank per core, as in
// the paper's runs, with heterogeneous core counts capping naturally.
// ranksPerNode must be in 1..MaxCores.
func NewWorld(eng *sim.Engine, cfg *cluster.Config, ranksPerNode int) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ranksPerNode <= 0 || ranksPerNode > cfg.MaxCores() {
		return nil, fmt.Errorf("mpi: ranksPerNode %d out of range 1..%d", ranksPerNode, cfg.MaxCores())
	}
	w := &World{
		eng:       eng,
		cfg:       cfg,
		nodeRanks: make([]int, cfg.Nodes),
		nodeOff:   make([]int, cfg.Nodes),
		nicPort:   make([]*sim.Server, cfg.Nodes),
		memPort:   make([]*rmaPort, cfg.Nodes),
	}
	size := 0
	for n := 0; n < cfg.Nodes; n++ {
		w.nicPort[n] = &sim.Server{}
		w.memPort[n] = &rmaPort{}
		k := ranksPerNode
		if c := cfg.Cores(n); k > c {
			k = c
		}
		w.nodeRanks[n] = k
		w.nodeOff[n] = size
		size += k
	}
	w.ranks = make([]*Rank, size)
	worldRanks := make([]int, size)
	for n := 0; n < cfg.Nodes; n++ {
		for c := 0; c < w.nodeRanks[n]; c++ {
			r := w.nodeOff[n] + c
			w.ranks[r] = &Rank{
				world: w,
				rank:  r,
				node:  n,
				core:  c,
			}
			worldRanks[r] = r
		}
	}
	w.world = newComm(w, worldRanks, "world")
	return w, nil
}

// Reset reinitializes a pooled world in place for a new cell on eng (which
// the caller has already Reset): topology slices, rank structs, NIC and RMA
// ports, communicators and window pools are rebuilt or cleared while keeping
// their backing allocations, so a reused world behaves observationally
// identically to NewWorld(eng, cfg, ranksPerNode) — same rank placement,
// zeroed ports and counters, fresh collective state — with O(1) steady-state
// allocations. Retired windows move to the reuse pool so the next cell's
// WinAllocate recycles their memory (DESIGN.md §8).
func (w *World) Reset(eng *sim.Engine, cfg *cluster.Config, ranksPerNode int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if ranksPerNode <= 0 || ranksPerNode > cfg.MaxCores() {
		return fmt.Errorf("mpi: ranksPerNode %d out of range 1..%d", ranksPerNode, cfg.MaxCores())
	}
	w.eng = eng
	w.cfg = cfg
	w.nodeRanks = resizeZeroed(w.nodeRanks, cfg.Nodes)
	w.nodeOff = resizeZeroed(w.nodeOff, cfg.Nodes)
	w.nicPort = resizeSlice(w.nicPort, cfg.Nodes)
	w.memPort = resizeSlice(w.memPort, cfg.Nodes)
	size := 0
	for n := 0; n < cfg.Nodes; n++ {
		if w.nicPort[n] == nil {
			w.nicPort[n] = &sim.Server{}
		} else {
			*w.nicPort[n] = sim.Server{}
		}
		if w.memPort[n] == nil {
			w.memPort[n] = &rmaPort{}
		} else {
			w.memPort[n].reset()
		}
		k := ranksPerNode
		if c := cfg.Cores(n); k > c {
			k = c
		}
		w.nodeRanks[n] = k
		w.nodeOff[n] = size
		size += k
	}
	w.inlineGrants = w.inlineGrants[:0]
	w.ranks = resizeSlice(w.ranks, size)
	worldRanks := make([]int, size)
	for n := 0; n < cfg.Nodes; n++ {
		for c := 0; c < w.nodeRanks[n]; c++ {
			i := w.nodeOff[n] + c
			r := w.ranks[i]
			if r == nil {
				r = &Rank{}
				w.ranks[i] = r
			}
			pollerBuf := r.pollerBuf
			*r = Rank{world: w, rank: i, node: n, core: c, pollerBuf: pollerBuf}
			worldRanks[i] = i
		}
	}
	w.world = newComm(w, worldRanks, "world")
	w.laneOn = false
	w.nodeComms = resizeSlice(w.nodeComms, cfg.Nodes)
	for i := range w.nodeComms {
		w.nodeComms[i] = nil
	}
	// Retire this cell's windows into the reuse pool; their backing arrays
	// are re-zeroed at reallocation time (pooledWin).
	w.winFree = append(w.winFree, w.wins...)
	w.wins = w.wins[:0]
	return nil
}

// resizeZeroed returns s resized to n zeroed entries, reusing capacity.
func resizeZeroed[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// resizeSlice returns s resized to n entries, reusing capacity and KEEPING
// existing entries — the pooled Rank and port structs are reused in place;
// entries beyond the previous length are nil.
func resizeSlice[T any](s []*T, n int) []*T {
	if cap(s) < n {
		return make([]*T, n)
	}
	prev := len(s)
	s = s[:n]
	for i := prev; i < n; i++ {
		s[i] = nil
	}
	return s
}

// RanksOn reports how many ranks node n hosts.
func (w *World) RanksOn(n int) int { return w.nodeRanks[n] }

// NodeOffset reports the first world rank hosted on node n.
func (w *World) NodeOffset(n int) int { return w.nodeOff[n] }

// Engine returns the owning simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Cluster returns the machine description.
func (w *World) Cluster() *cluster.Config { return w.cfg }

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Comm returns the world communicator.
func (w *World) Comm() *Comm { return w.world }

// Rank returns rank r's handle.
func (w *World) Rank(r int) *Rank { return w.ranks[r] }

// MemPortBusy reports the cumulative RMA service time on node n's window
// port; used by overhead-accounting metrics and tests.
func (w *World) MemPortBusy(n int) sim.Time { return w.memPort[n].srv.BusyTime() }

// Start spawns one simulated process per rank, all running body. It must be
// called before the engine runs.
func (w *World) Start(body func(*Rank)) {
	for _, r := range w.ranks {
		r := r
		r.proc = w.eng.Spawn(fmt.Sprintf("rank%d", r.rank), func(p *sim.Proc) {
			body(r)
		})
	}
}

// Run is a convenience that spawns body on every rank and drives the engine
// to completion, returning the engine's error (e.g. deadlock).
func (w *World) Run(body func(*Rank)) error {
	w.Start(body)
	return w.eng.Run()
}

// EnableLanes arms the per-node fast-forward lanes for this cell: node
// n ≥ 1 gets its own engine (created on first use, Reset in place on
// reuse) onto which the RMA layer routes that node's local event chains —
// lock attempts, critical sections, compute completions, wake replays —
// while node 0 and all cross-node traffic stay on the main engine. The
// caller is responsible for the eligibility gating (no RNG-drawing noise,
// no trace collection) and for driving the run with LaunchLanes; see
// DESIGN.md §11 for the equivalence argument.
func (w *World) EnableLanes() {
	w.lanes = resizeSlice(w.lanes, w.cfg.Nodes)
	for n := 1; n < w.cfg.Nodes; n++ {
		if w.lanes[n] == nil {
			w.lanes[n] = sim.NewEngine(int64(n))
		} else {
			w.lanes[n].Reset(int64(n))
		}
		w.lanes[n].ShareSeq(w.eng)
		// A merged engine's queue head says nothing about the group's next
		// event, so inline absorption (sim.AbsorbAsOf) is unsound here.
		w.lanes[n].SetAbsorb(false)
	}
	w.eng.SetAbsorb(false)
	w.laneOn = true
}

// LanesEnabled reports whether this cell runs with fast-forward lanes.
func (w *World) LanesEnabled() bool { return w.laneOn }

// engOf returns the engine node's local event chains run on: the node's
// lane when lanes are armed, the main engine otherwise (and always for
// node 0, which hosts the cross-node shared state).
func (w *World) engOf(node int) *sim.Engine {
	if w.laneOn && node < len(w.lanes) {
		if l := w.lanes[node]; l != nil {
			return l
		}
	}
	return w.eng
}

// EngineFor exposes engOf to executors: the engine rank-local events for
// the given node must be scheduled on.
func (w *World) EngineFor(node int) *sim.Engine { return w.engOf(node) }

// LaunchLanes is Launch for a lane-armed world: rank starts fire at virtual
// time zero on the main engine exactly as in Launch, but the drive loop
// K-way merges the engines instead of handing the baton to Run: each
// iteration fires the single event with the smallest (time, born, seq) key
// across the main engine and every lane. Because the lanes draw sequence
// numbers from the main engine's counter (ShareSeq), the merge fires events
// in exactly the total order one shared engine would have used, by
// induction: if every event so far fired in literal order, every scheduling
// call so far happened in literal order, so every pending event carries its
// literal key — and the smallest head across the group is the literal next
// event (each engine's head is its own minimum, and a cross-engine schedule
// always lands at or after the issuing event's key, so nothing smaller can
// still be in flight). DESIGN.md §11 spells the argument out.
// The merge costs nothing close to a full K-engine scan per event: head
// keys are cached and re-read only when an engine's PushStamp moved, and
// once a champion engine is picked it is stepped in a burst — an O(1)
// check per step — for as long as it provably stays the group minimum: no
// step pushed onto another engine (GroupSeq advanced exactly as much as
// the champion's own PushStamp) and the champion's new head is still below
// the runner-up key from the last scan. Lane-local chains (grant, sync,
// chunk calculation, unlock, compute) burst through without touching the
// other engines at all.
func (w *World) LaunchLanes(start func(*Rank)) error {
	for _, r := range w.ranks {
		r := r
		w.eng.Schedule(0, func() { start(r) })
	}
	engs := w.mergeEngs[:0]
	engs = append(engs, w.eng)
	for n := 1; n < len(w.lanes); n++ {
		if w.lanes[n] != nil {
			engs = append(engs, w.lanes[n])
		}
	}
	w.mergeEngs = engs
	keys := w.mergeKeys
	if cap(keys) < len(engs) {
		keys = make([]engKey, len(engs))
	}
	keys = keys[:len(engs)]
	w.mergeKeys = keys
	for i, l := range engs {
		keys[i].load(l)
	}
	steps := 0
	for {
		// Scan: refresh stale keys, track champion and runner-up.
		best, chal := -1, -1
		for i := range engs {
			if keys[i].stamp != engs[i].PushStamp() {
				keys[i].load(engs[i])
			}
			if !keys[i].ok {
				continue
			}
			switch {
			case best < 0 || keys[i].less(&keys[best]):
				best, chal = i, best
			case chal < 0 || keys[i].less(&keys[chal]):
				chal = i
			}
		}
		if best < 0 {
			return nil
		}
		ch := engs[best]
		for {
			seq0, p0 := ch.GroupSeq(), ch.PushStamp()
			ch.Step()
			steps++
			if steps >= 512 {
				steps = 0
				if w.eng.Interrupted() {
					return sim.ErrInterrupted
				}
			}
			cross := ch.GroupSeq()-seq0 != ch.PushStamp()-p0
			keys[best].load(ch)
			if cross || !keys[best].ok || (chal >= 0 && !keys[best].less(&keys[chal])) {
				break
			}
		}
	}
}

// engKey caches one merged engine's head event key (see LaunchLanes).
type engKey struct {
	t, born sim.Time
	seq     uint32
	stamp   uint32
	ok      bool
}

func (k *engKey) load(e *sim.Engine) {
	k.t, k.born, k.seq, k.ok = e.NextKey()
	k.stamp = e.PushStamp()
}

// less orders head keys exactly as the engine orders events; seq numbers
// are group-unique under ShareSeq, so the order is total.
func (k *engKey) less(o *engKey) bool {
	if k.t != o.t {
		return k.t < o.t
	}
	if k.born != o.born {
		return k.born < o.born
	}
	return k.seq < o.seq
}

// Launch drives a world of goroutine-free machine ranks: start is invoked
// for every rank, in rank order, inside an engine event at virtual time
// zero — the exact position Start's per-rank spawn resume occupied — and
// the engine then runs to completion. start must build the rank's
// event-driven state machine (the *Cont APIs) and return; no simulated
// process is created, so the cell spawns no goroutines. Machine ranks must
// not call the blocking Rank primitives (Compute, Lock, collectives without
// a Cont suffix) — those need a process to park.
func (w *World) Launch(start func(*Rank)) error {
	// The literal A/B runs of the fast-forward differential tests force
	// every AbsorbAsOf site through the queue.
	w.eng.SetAbsorb(fastFwd.Load())
	for _, r := range w.ranks {
		r := r
		w.eng.Schedule(0, func() { start(r) })
	}
	return w.eng.Run()
}

// Rank is one MPI process.
type Rank struct {
	world *World
	rank  int
	node  int
	core  int
	proc  *sim.Proc

	mailbox  []*Message    // arrived, unmatched messages
	recvWait sim.WaitQueue // parked receivers
	recvSrc  int           // active posted receive (valid while recvWait nonempty)
	recvTag  int

	computeTime sim.Time // cumulative execution time (for utilization stats)

	// pollerBuf is the rank's reusable lock-poller: a rank has at most one
	// outstanding Win.Lock, so the contended path allocates nothing in
	// steady state.
	pollerBuf *poller
}

// pooledPoller returns the rank's reusable poller; the caller overwrites
// every field before registering it.
func (r *Rank) pooledPoller() *poller {
	if r.pollerBuf == nil {
		r.pollerBuf = &poller{}
	}
	return r.pollerBuf
}

// Rank returns the world rank number.
func (r *Rank) Rank() int { return r.rank }

// Node returns the node index the rank is pinned to.
func (r *Rank) Node() int { return r.node }

// Core returns the core index within the node.
func (r *Rank) Core() int { return r.core }

// World returns the owning world.
func (r *Rank) World() *World { return r.world }

// Proc exposes the underlying simulated process (nil for the goroutine-free
// machine ranks of World.Launch).
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Now reports virtual time: the rank's lane clock when fast-forward lanes
// are armed (node-local chains run there), the main engine otherwise.
func (r *Rank) Now() sim.Time { return r.world.engOf(r.node).Now() }

// Compute executes ref seconds of reference-core work on this rank's core,
// scaled by the node's speed and the cluster's noise/perturbation models.
func (r *Rank) Compute(ref sim.Time) {
	d := r.world.cfg.ExecTime(r.node, ref, r.proc.Now(), r.world.eng.Rand())
	r.computeTime += d
	r.proc.Sleep(d)
}

// ComputeTime reports the cumulative time this rank spent in Compute.
func (r *Rank) ComputeTime() sim.Time { return r.computeTime }

// ComputeCost charges ref seconds of reference work starting now and
// returns the scaled duration without scheduling anything: fully
// event-driven executors schedule their own completion event at
// (now+d, now) — the exact position Compute's wake-up occupied.
func (r *Rank) ComputeCost(ref sim.Time) sim.Time {
	eng := r.world.engOf(r.node)
	d := r.world.cfg.ExecTime(r.node, ref, eng.Now(), eng.Rand())
	r.computeTime += d
	return d
}

// sameNode reports whether two ranks share a node (shared-memory domain).
func (w *World) sameNode(a, b int) bool {
	return w.ranks[a].node == w.ranks[b].node
}
