package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestIsendIrecvWait(t *testing.T) {
	_, w := newTestWorld(t, 2, 1)
	var got *Message
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(1, 3, 128, "hello")
			if !req.Test() {
				t.Error("eager Isend should complete after injection")
			}
			req.Wait()
		} else {
			req := r.Irecv(0, 3)
			got = req.Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Payload.(string) != "hello" {
		t.Fatalf("Irecv got %+v", got)
	}
}

func TestIrecvTestBeforeArrival(t *testing.T) {
	_, w := newTestWorld(t, 2, 1)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Proc().Sleep(1)
			r.Send(1, 0, 8, nil)
		} else {
			req := r.Irecv(0, 0)
			if req.Test() {
				t.Error("Test true before any message")
			}
			r.Proc().Sleep(2)
			if !req.Test() {
				t.Error("Test false after arrival")
			}
			if req.Wait() == nil {
				t.Error("Wait returned nil message")
			}
			if !req.Test() {
				t.Error("Test false after completion")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllOverlapsCommunication(t *testing.T) {
	// Posting several Irecvs and waiting on all overlaps the transfers;
	// total time must be far below the sum of sequential round trips.
	_, w := newTestWorld(t, 4, 1)
	var elapsed sim.Time
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			reqs := []*Request{r.Irecv(1, 0), r.Irecv(2, 0), r.Irecv(3, 0)}
			msgs := WaitAll(reqs...)
			for i, m := range msgs {
				if m == nil {
					t.Errorf("message %d missing", i)
				}
			}
			elapsed = r.Now()
		} else {
			r.Send(0, 0, 1<<20, nil) // 1 MiB each
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three 1 MiB transfers at 12.5 GB/s ≈ 80 µs each; they serialize on
	// the destination NIC but not on three sequential send+ack rounds.
	if elapsed > sim.Time(3e-3) {
		t.Fatalf("WaitAll took %v, transfers apparently serialized badly", elapsed)
	}
	if nilMsgs := WaitAll(nil, nil); len(nilMsgs) != 2 {
		t.Fatal("WaitAll(nil...) wrong length")
	}
}

func TestScatter(t *testing.T) {
	_, w := newTestWorld(t, 2, 2)
	got := make([]float64, 4)
	err := w.Run(func(r *Rank) {
		var vals []float64
		if r.Rank() == 0 {
			vals = []float64{10, 11, 12, 13}
		}
		got[r.Rank()] = w.Comm().Scatter(r, 0, vals)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(10+i) {
			t.Fatalf("Scatter results = %v", got)
		}
	}
}

func TestScatterWrongLengthPanics(t *testing.T) {
	_, w := newTestWorld(t, 1, 2)
	panicked := false
	_ = w.Run(func(r *Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		var vals []float64
		if r.Rank() == 0 {
			vals = []float64{1} // wrong: need 2
		}
		w.Comm().Scatter(r, 0, vals)
	})
	if !panicked {
		t.Fatal("Scatter with wrong value count did not panic")
	}
}

func TestAllgather(t *testing.T) {
	_, w := newTestWorld(t, 2, 3)
	results := make([][]float64, 6)
	err := w.Run(func(r *Rank) {
		results[r.Rank()] = w.Comm().Allgather(r, float64(r.Rank())*2)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk, vec := range results {
		if len(vec) != 6 {
			t.Fatalf("rank %d got %d values", rk, len(vec))
		}
		for i, v := range vec {
			if v != float64(i)*2 {
				t.Fatalf("rank %d gathered %v", rk, vec)
			}
		}
	}
}

func TestReduceToRoot(t *testing.T) {
	_, w := newTestWorld(t, 2, 2)
	var rootGot float64
	nonRootZero := true
	err := w.Run(func(r *Rank) {
		out := w.Comm().Reduce(r, 2, float64(r.Rank()+1), OpSum)
		if r.Rank() == 2 {
			rootGot = out
		} else if out != 0 {
			nonRootZero = false
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootGot != 10 {
		t.Fatalf("Reduce sum = %v, want 10", rootGot)
	}
	if !nonRootZero {
		t.Fatal("non-root ranks received a reduce result")
	}
}

func TestReduceMax(t *testing.T) {
	_, w := newTestWorld(t, 1, 4)
	var got float64
	err := w.Run(func(r *Rank) {
		out := w.Comm().Reduce(r, 0, float64((r.Rank()*7)%5), OpMax)
		if r.Rank() == 0 {
			got = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("Reduce max = %v, want 4", got)
	}
}
