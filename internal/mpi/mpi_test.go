package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newTestWorld(t testing.TB, nodes, perNode int) (*sim.Engine, *World) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(nodes)
	w, err := NewWorld(eng, &cfg, perNode)
	if err != nil {
		t.Fatal(err)
	}
	return eng, w
}

func TestWorldLayout(t *testing.T) {
	_, w := newTestWorld(t, 3, 4)
	if w.Size() != 12 {
		t.Fatalf("Size = %d, want 12", w.Size())
	}
	for r := 0; r < 12; r++ {
		rk := w.Rank(r)
		if rk.Node() != r/4 || rk.Core() != r%4 {
			t.Fatalf("rank %d placed at node %d core %d", r, rk.Node(), rk.Core())
		}
	}
}

func TestNewWorldRejectsOversubscription(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(2)
	if _, err := NewWorld(eng, &cfg, cfg.CoresPerNode+1); err == nil {
		t.Fatal("NewWorld accepted ranksPerNode > CoresPerNode")
	}
	if _, err := NewWorld(eng, &cfg, 0); err == nil {
		t.Fatal("NewWorld accepted ranksPerNode = 0")
	}
}

func TestSendRecvAcrossNodes(t *testing.T) {
	_, w := newTestWorld(t, 2, 1)
	var got *Message
	var recvAt sim.Time
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 7, 1024, "payload")
		} else {
			got = r.Recv(0, 7)
			recvAt = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Src != 0 || got.Tag != 7 || got.Payload.(string) != "payload" {
		t.Fatalf("bad message: %+v", got)
	}
	// Inter-node: must include at least the wire latency.
	if recvAt < w.Cluster().Net.Latency {
		t.Fatalf("receive completed at %v, faster than latency %v", recvAt, w.Cluster().Net.Latency)
	}
}

func TestSendRecvIntraNodeFasterThanInterNode(t *testing.T) {
	timeFor := func(nodes, perNode int, dst int) sim.Time {
		_, w := newTestWorld(t, nodes, perNode)
		var at sim.Time
		if err := w.Run(func(r *Rank) {
			switch r.Rank() {
			case 0:
				r.Send(dst, 0, 64, nil)
			case dst:
				r.Recv(0, 0)
				at = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return at
	}
	intra := timeFor(1, 2, 1)
	inter := timeFor(2, 1, 1)
	if intra >= inter {
		t.Fatalf("intra-node %v not faster than inter-node %v", intra, inter)
	}
}

func TestRecvBlocksUntilArrival(t *testing.T) {
	_, w := newTestWorld(t, 2, 1)
	var recvAt sim.Time
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Proc().Sleep(5)
			r.Send(1, 1, 8, nil)
		} else {
			r.Recv(AnySource, AnyTag)
			recvAt = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvAt < 5 {
		t.Fatalf("Recv returned at %v, before message was sent", recvAt)
	}
}

func TestRecvMatchingByTagAndSource(t *testing.T) {
	_, w := newTestWorld(t, 1, 3)
	var order []int
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(2, 10, 8, nil)
		case 1:
			r.Proc().Sleep(1e-3)
			r.Send(2, 20, 8, nil)
		case 2:
			m := r.Recv(1, 20) // must skip the earlier tag-10 message
			order = append(order, m.Tag)
			m = r.Recv(AnySource, AnyTag)
			order = append(order, m.Tag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 20 || order[1] != 10 {
		t.Fatalf("receive order = %v, want [20 10]", order)
	}
}

func TestIprobe(t *testing.T) {
	_, w := newTestWorld(t, 1, 2)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 5, 8, nil)
		} else {
			if r.Iprobe(0, 5) {
				t.Error("Iprobe true before any delay")
			}
			r.Proc().Sleep(1e-3)
			if !r.Iprobe(0, 5) {
				t.Error("Iprobe false after message arrival")
			}
			if r.Iprobe(0, 99) {
				t.Error("Iprobe matched wrong tag")
			}
			r.Recv(0, 5)
			if r.PendingMessages() != 0 {
				t.Error("mailbox not drained")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	_, w := newTestWorld(t, 2, 4)
	var minExit sim.Time = 1 << 30
	err := w.Run(func(r *Rank) {
		r.Proc().Sleep(sim.Time(r.Rank()) * 0.5) // staggered arrivals
		w.Comm().Barrier(r)
		if r.Now() < minExit {
			minExit = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	lastArrival := sim.Time(7) * 0.5
	if minExit < lastArrival {
		t.Fatalf("a rank left the barrier at %v, before last arrival %v", minExit, lastArrival)
	}
}

func TestBarrierRepeats(t *testing.T) {
	_, w := newTestWorld(t, 2, 2)
	count := 0
	err := w.Run(func(r *Rank) {
		for i := 0; i < 5; i++ {
			w.Comm().Barrier(r)
		}
		count++
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("%d ranks completed, want 4", count)
	}
}

func TestBcast(t *testing.T) {
	_, w := newTestWorld(t, 2, 2)
	got := make([]float64, 4)
	err := w.Run(func(r *Rank) {
		val := -1.0
		if r.Rank() == 2 {
			val = 42.5
		}
		got[r.Rank()] = w.Comm().Bcast(r, 2, val)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 42.5 {
			t.Fatalf("rank %d got %v, want 42.5", i, v)
		}
	}
}

func TestAllreduce(t *testing.T) {
	_, w := newTestWorld(t, 2, 3)
	sums := make([]float64, 6)
	maxs := make([]float64, 6)
	err := w.Run(func(r *Rank) {
		sums[r.Rank()] = w.Comm().Allreduce(r, float64(r.Rank()+1), OpSum)
		maxs[r.Rank()] = w.Comm().Allreduce(r, float64(r.Rank()), OpMax)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sums {
		if sums[i] != 21 { // 1+2+...+6
			t.Fatalf("rank %d sum = %v, want 21", i, sums[i])
		}
		if maxs[i] != 5 {
			t.Fatalf("rank %d max = %v, want 5", i, maxs[i])
		}
	}
}

func TestGather(t *testing.T) {
	_, w := newTestWorld(t, 1, 4)
	var rootGot []float64
	err := w.Run(func(r *Rank) {
		out := w.Comm().Gather(r, 1, float64(r.Rank()*r.Rank()))
		if r.Rank() == 1 {
			rootGot = out
		} else if out != nil {
			t.Errorf("non-root rank %d got non-nil gather result", r.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 4, 9}
	for i := range want {
		if rootGot[i] != want[i] {
			t.Fatalf("gather = %v, want %v", rootGot, want)
		}
	}
}

func TestSplitTypeShared(t *testing.T) {
	_, w := newTestWorld(t, 2, 3)
	comms := make([]*Comm, 6)
	ranks := make([]int, 6)
	err := w.Run(func(r *Rank) {
		c := w.SplitTypeShared(r)
		comms[r.Rank()] = c
		ranks[r.Rank()] = c.RankOf(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if comms[0] != comms[1] || comms[1] != comms[2] {
		t.Fatal("node 0 ranks got different node communicators")
	}
	if comms[3] != comms[4] || comms[4] != comms[5] {
		t.Fatal("node 1 ranks got different node communicators")
	}
	if comms[0] == comms[3] {
		t.Fatal("different nodes share a node communicator")
	}
	for i := 0; i < 6; i++ {
		if ranks[i] != i%3 {
			t.Fatalf("world rank %d has node rank %d, want %d", i, ranks[i], i%3)
		}
		if comms[i].Size() != 3 {
			t.Fatalf("node comm size = %d, want 3", comms[i].Size())
		}
	}
}

func TestCommSplitByColor(t *testing.T) {
	_, w := newTestWorld(t, 2, 2)
	sizes := make([]int, 4)
	myRank := make([]int, 4)
	err := w.Run(func(r *Rank) {
		c := w.Comm().Split(r, r.Rank()%2, -r.Rank())
		sizes[r.Rank()] = c.Size()
		myRank[r.Rank()] = c.RankOf(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if sizes[i] != 2 {
			t.Fatalf("rank %d split comm size = %d, want 2", i, sizes[i])
		}
	}
	// Keys were -rank, so higher world ranks come first within a color.
	if myRank[0] != 1 || myRank[2] != 0 {
		t.Fatalf("color-0 ordering wrong: rank0→%d rank2→%d", myRank[0], myRank[2])
	}
}

func TestWinAllocateAndAtomics(t *testing.T) {
	_, w := newTestWorld(t, 2, 2)
	const perRank = 100
	sum := int64(0)
	err := w.Run(func(r *Rank) {
		win := w.Comm().WinAllocate(r, "ctr", 4)
		for i := 0; i < perRank; i++ {
			win.FetchAndOp(r, 0, 0, 1)
		}
		w.Comm().Barrier(r)
		if r.Rank() == 0 {
			sum = win.FetchAndOp(r, 0, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 4*perRank {
		t.Fatalf("counter = %d, want %d", sum, 4*perRank)
	}
}

func TestFetchAndOpReturnsDistinctOldValues(t *testing.T) {
	_, w := newTestWorld(t, 2, 4)
	seen := map[int64]int{}
	err := w.Run(func(r *Rank) {
		win := w.Comm().WinAllocate(r, "ctr", 1)
		for i := 0; i < 10; i++ {
			old := win.FetchAndOp(r, 0, 0, 1)
			seen[old]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 80 {
		t.Fatalf("got %d distinct ticket values, want 80", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("ticket %d issued %d times", v, n)
		}
		if v < 0 || v >= 80 {
			t.Fatalf("ticket %d out of range", v)
		}
	}
}

func TestCompareAndSwap(t *testing.T) {
	_, w := newTestWorld(t, 1, 2)
	winners := 0
	err := w.Run(func(r *Rank) {
		win := w.Comm().WinAllocate(r, "cas", 1)
		if win.CompareAndSwap(r, 0, 0, 0, int64(r.Rank())+100) == 0 {
			winners++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if winners != 1 {
		t.Fatalf("%d CAS winners, want exactly 1", winners)
	}
}

func TestPutGet(t *testing.T) {
	_, w := newTestWorld(t, 2, 1)
	var got []int64
	err := w.Run(func(r *Rank) {
		win := w.Comm().WinAllocate(r, "buf", 8)
		if r.Rank() == 0 {
			win.Put(r, 1, 2, []int64{10, 20, 30})
			r.Send(1, 0, 1, nil) // notify
		} else {
			r.Recv(0, 0)
			got = win.Get(r, 1, 2, 3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Get = %v, want %v", got, want)
		}
	}
}

func TestExclusiveLockMutualExclusion(t *testing.T) {
	_, w := newTestWorld(t, 1, 8)
	inside, peak := 0, 0
	err := w.Run(func(r *Rank) {
		nc := w.SplitTypeShared(r)
		win := nc.WinAllocateShared(r, "q", 2)
		for i := 0; i < 5; i++ {
			win.Lock(r, 0, LockExclusive)
			inside++
			if inside > peak {
				peak = inside
			}
			r.Compute(10 * sim.Microsecond)
			inside--
			win.Unlock(r, 0, LockExclusive)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak != 1 {
		t.Fatalf("peak lock holders = %d, want 1", peak)
	}
}

func TestSharedLockAllowsReadersExcludesWriter(t *testing.T) {
	_, w := newTestWorld(t, 1, 4)
	readersPeak := 0
	readers := 0
	var writerAt, lastReaderRelease sim.Time
	err := w.Run(func(r *Rank) {
		nc := w.SplitTypeShared(r)
		win := nc.WinAllocateShared(r, "rw", 1)
		if r.Rank() < 3 {
			win.Lock(r, 0, LockShared)
			readers++
			if readers > readersPeak {
				readersPeak = readers
			}
			r.Proc().Sleep(100 * sim.Microsecond)
			readers--
			if r.Now() > lastReaderRelease {
				lastReaderRelease = r.Now()
			}
			win.Unlock(r, 0, LockShared)
		} else {
			r.Proc().Sleep(10 * sim.Microsecond) // let readers in first
			win.Lock(r, 0, LockExclusive)
			writerAt = r.Now()
			win.Unlock(r, 0, LockExclusive)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if readersPeak < 2 {
		t.Fatalf("readers did not overlap: peak = %d", readersPeak)
	}
	if writerAt < lastReaderRelease {
		t.Fatalf("writer entered at %v before readers released at %v", writerAt, lastReaderRelease)
	}
}

func TestLockAttemptsGrowUnderContention(t *testing.T) {
	attemptsFor := func(perNode int) float64 {
		eng := sim.NewEngine(1)
		cfg := cluster.MiniHPC(1)
		w, err := NewWorld(eng, &cfg, perNode)
		if err != nil {
			t.Fatal(err)
		}
		var win *Win
		if err := w.Run(func(r *Rank) {
			nc := w.SplitTypeShared(r)
			wn := nc.WinAllocateShared(r, "q", 1)
			win = wn
			for i := 0; i < 20; i++ {
				wn.Lock(r, 0, LockExclusive)
				r.Proc().Sleep(2 * sim.Microsecond)
				wn.Unlock(r, 0, LockExclusive)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return float64(win.LockAttempts) / float64(win.LockAcquisitions)
	}
	solo := attemptsFor(1)
	crowd := attemptsFor(16)
	if solo != 1 {
		t.Fatalf("uncontended attempts per acquisition = %v, want 1", solo)
	}
	if crowd < 1.5 {
		t.Fatalf("contended attempts per acquisition = %v, want noticeably > 1", crowd)
	}
}

func TestRemoteAtomicSlowerThanLocal(t *testing.T) {
	_, w := newTestWorld(t, 2, 2)
	var localT, remoteT sim.Time
	err := w.Run(func(r *Rank) {
		win := w.Comm().WinAllocate(r, "x", 1)
		w.Comm().Barrier(r)
		if r.Rank() == 1 { // same node as target rank 0
			t0 := r.Now()
			win.FetchAndOp(r, 0, 0, 1)
			localT = r.Now() - t0
		}
		if r.Rank() == 2 { // different node
			r.Proc().Sleep(sim.Millisecond) // avoid port interference
			t0 := r.Now()
			win.FetchAndOp(r, 0, 0, 1)
			remoteT = r.Now() - t0
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if remoteT <= localT {
		t.Fatalf("remote atomic %v not slower than local %v", remoteT, localT)
	}
	if remoteT < 2*w.Cluster().Net.Latency {
		t.Fatalf("remote atomic %v cheaper than a round trip %v", remoteT, 2*w.Cluster().Net.Latency)
	}
}

func TestSharedWindowDirectAccess(t *testing.T) {
	_, w := newTestWorld(t, 1, 2)
	var got int64
	err := w.Run(func(r *Rank) {
		nc := w.SplitTypeShared(r)
		win := nc.WinAllocateShared(r, "s", 4)
		if r.Rank() == 0 {
			win.SharedWrite(r, 1, 3, 77)
			win.Sync(r)
		}
		nc.Barrier(r)
		if r.Rank() == 1 {
			win.Sync(r)
			got = win.SharedRead(r, 1, 3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("SharedRead = %d, want 77", got)
	}
}

func TestWinAllocateSharedRejectsMultiNodeComm(t *testing.T) {
	_, w := newTestWorld(t, 2, 1)
	panicked := 0
	err := w.Run(func(r *Rank) {
		defer func() {
			if recover() != nil {
				panicked++
			}
		}()
		w.Comm().WinAllocateShared(r, "bad", 1)
	})
	// Engine may report deadlock since ranks bail out of the collective.
	_ = err
	if panicked == 0 {
		t.Fatal("WinAllocateShared on a multi-node communicator did not panic")
	}
}

func TestComputeScalesWithNodeSpeed(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPCHetero(2, 1.0, 0.5)
	w, err := NewWorld(eng, &cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]sim.Time, 2)
	if err := w.Run(func(r *Rank) {
		t0 := r.Now()
		r.Compute(1)
		times[r.Rank()] = r.Now() - t0
	}); err != nil {
		t.Fatal(err)
	}
	if times[0] != 1 {
		t.Fatalf("full-speed node took %v, want 1", times[0])
	}
	if times[1] != 2 {
		t.Fatalf("half-speed node took %v, want 2", times[1])
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine(99)
		cfg := cluster.MiniHPC(2)
		w, err := NewWorld(eng, &cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		var last sim.Time
		if err := w.Run(func(r *Rank) {
			win := w.Comm().WinAllocate(r, "ctr", 1)
			for {
				tkt := win.FetchAndOp(r, 0, 0, 1)
				if tkt >= 200 {
					break
				}
				r.Compute(sim.Time(tkt%7+1) * 10 * sim.Microsecond)
			}
			w.Comm().Barrier(r)
			last = r.Now()
		}); err != nil {
			t.Fatal(err)
		}
		return last
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs finished at %v and %v", a, b)
	}
}

func BenchmarkFetchAndOpLocal(b *testing.B) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(1)
	w, _ := NewWorld(eng, &cfg, 2)
	w.Start(func(r *Rank) {
		nc := w.SplitTypeShared(r)
		win := nc.WinAllocateShared(r, "b", 1)
		for i := 0; i < b.N; i++ {
			win.FetchAndOp(r, 0, 0, 1)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSendRecvPingPong(b *testing.B) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(2)
	w, _ := NewWorld(eng, &cfg, 1)
	w.Start(func(r *Rank) {
		for i := 0; i < b.N; i++ {
			if r.Rank() == 0 {
				r.Send(1, 0, 8, nil)
				r.Recv(1, 0)
			} else {
				r.Recv(0, 0)
				r.Send(0, 0, 8, nil)
			}
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}
