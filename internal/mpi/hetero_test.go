package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestNewWorldHeterogeneousPlacement checks the per-node rank placement on
// a mixed machine: ranksPerNode acts as a per-node cap, ranks number
// contiguously by node, and the node communicators split accordingly.
func TestNewWorldHeterogeneousPlacement(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(3)
	cfg.NodeCores = []int{16, 8, 4}
	w, err := NewWorld(eng, &cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 28 {
		t.Fatalf("Size = %d, want 16+8+4 = 28", w.Size())
	}
	wantRanks := []int{16, 8, 4}
	wantOff := []int{0, 16, 24}
	for n := range wantRanks {
		if w.RanksOn(n) != wantRanks[n] || w.NodeOffset(n) != wantOff[n] {
			t.Errorf("node %d: RanksOn=%d off=%d, want %d/%d",
				n, w.RanksOn(n), w.NodeOffset(n), wantRanks[n], wantOff[n])
		}
	}
	for r := 0; r < w.Size(); r++ {
		rk := w.Rank(r)
		wantNode := 0
		switch {
		case r >= 24:
			wantNode = 2
		case r >= 16:
			wantNode = 1
		}
		if rk.Node() != wantNode {
			t.Errorf("rank %d on node %d, want %d", r, rk.Node(), wantNode)
		}
		if rk.Core() != r-wantOff[rk.Node()] {
			t.Errorf("rank %d core %d, want %d", r, rk.Core(), r-wantOff[rk.Node()])
		}
	}
	// Node communicators must match the per-node rank sets.
	ran := false
	w.Start(func(r *Rank) {
		nc := w.SplitTypeShared(r)
		if nc.Size() != wantRanks[r.Node()] {
			t.Errorf("rank %d node comm size %d, want %d", r.Rank(), nc.Size(), wantRanks[r.Node()])
		}
		if nc.RankOf(r) != r.Core() {
			t.Errorf("rank %d node rank %d, want core %d", r.Rank(), nc.RankOf(r), r.Core())
		}
		ran = true
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("no rank body executed")
	}
}

func TestNewWorldCapAndValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(2)
	cfg.NodeCores = []int{16, 64}
	// 64 exceeds node 0's cores but not MaxCores: allowed, capped to 16+64.
	w, err := NewWorld(eng, &cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 80 || w.RanksOn(0) != 16 || w.RanksOn(1) != 64 {
		t.Fatalf("cap placement wrong: size=%d ranks=%d/%d", w.Size(), w.RanksOn(0), w.RanksOn(1))
	}
	if _, err := NewWorld(eng, &cfg, 65); err == nil {
		t.Error("NewWorld accepted ranksPerNode > MaxCores")
	}
}
