package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Win is an RMA window: each rank of the creating communicator exposes a
// segment of int64 words. Operations name a target comm rank and an offset
// within the target's segment.
//
// Passive-target synchronization follows the lock-polling protocol the paper
// discusses (citing Zhao et al.): Lock is acquire-by-retry, every attempt is
// an RMA round serviced serially by the target node's window port, and
// failed attempts back off for the cluster's PollInterval. Under contention
// the attempt storm both delays the holder's own operations and stretches
// grant hand-off — the mechanism behind the paper's SS results.
type Win struct {
	world  *World
	comm   *Comm
	name   string
	shared bool
	// mem is the single backing array behind every rank's segment; data[i]
	// is the i-th rank's count-word subslice of it. One allocation per
	// window, and World.Reset can recycle the arrays across pooled cells.
	mem   []int64
	data  [][]int64
	locks []lockState

	// Accounting for overhead analysis.
	LockAttempts     int64
	LockAcquisitions int64
	AtomicOps        int64
}

type lockState struct {
	excl    bool
	readers int

	// relsInFlight counts releases that have been issued but not yet applied
	// to the lock word. While it is zero and the lock is held, the lock can
	// only become *less* available before any instant a fresh attempt's first
	// check could land — every release must first arrive at the port and its
	// service queues behind that in-flight attempt — so the check provably
	// fails and the analytic fast-forward parks the attempt at issue without
	// an engine event (see NewLockCont).
	relsInFlight int

	// Wake-chain bookkeeping for coalesced polling: when the lock is in a
	// state some parked poller could acquire, (wakeAt, wakeBorn) is the
	// earliest pending poll decision and an engine event is scheduled at
	// that position. See rmaPort.
	wakeAt   sim.Time
	wakeBorn sim.Time
	wakeSet  bool
}

// rmaPort is one node's window port: the serial RMA service station plus the
// virtual lock-poller list that coalesces the lock-polling protocol's retry
// storm.
//
// In the literal protocol a contended MPI_Win_lock retries every
// PollInterval, and every retry is a full RMA round through this port — an
// O(hold-time/PollInterval) stream of simulated events per waiter that
// dominates host time in the SS experiments. The coalesced implementation
// keeps the *arithmetic* of every retry (each one still consumes port
// service time, delays other requests, and bumps the attempt counters —
// that feedback is the paper's SS pathology) but performs it lazily: the
// waiting process parks, and its pending retries are replayed in virtual-
// timestamp order whenever something observes the port (a real RMA arrival)
// or the lock state (an unlock, or the wake chain below). Timing, attempt
// counts and acquisition order are identical to the literal protocol; only
// the host-event count changes. DESIGN.md §3 gives the equivalence
// argument.
type rmaPort struct {
	srv sim.Server
	// keys is a binary min-heap of pending poll steps ordered by
	// (at, born, reg): the engine's (time, scheduling-time) event order,
	// with registration order as the deterministic tie-break — exactly the
	// order the literal selection scan preferred. Keys are pointer-free so
	// every sift swap is a barrier-less 24-byte copy; items holds the
	// pollers in stable slots the keys point at. The heap makes each
	// replayed step O(log P) instead of a full rescan, and the earliest
	// pending step is an O(1) peek.
	keys      []pollerKey
	items     []*poller
	freeSlots []int32
	// byReg holds the same pollers in registration order: reconcilePort must
	// walk them exactly as the literal slice scan did, because the order in
	// which wake-chain positions are armed is part of the frozen event
	// sequence.
	byReg []*poller
	// hom is true while every registered poller targets one (win, target)
	// pair — the common shape (a node's ranks all contend for the one local
	// queue lock) — letting reconcilePort skip the whole walk with a single
	// lock-word check when that lock is exclusively held.
	hom bool
	// reg is the monotone registration counter behind the tie-break
	// (32-bit with a wrap guard, matching pollerKey.reg).
	reg uint32
	// armW/armT are reconcilePort's arm-once scratch: the locks whose
	// covering mark improved during the current walk, deduplicated.
	armW []*Win
	armT []int
	// checksInFlight counts literal first-check events scheduled on this
	// port's locks but not yet fired. The analytic fast-forward only parks an
	// attempt at issue while it is zero: a pending literal check could
	// register its poller between this issue and its own (later) check
	// instant, and registration order — which the frozen wake-arming sequence
	// depends on — must stay the literal check order.
	checksInFlight int
}

// pollerKey is a heap entry: the poller's pending-step position plus its
// stable slot in items.
type pollerKey struct {
	at   sim.Time
	born sim.Time
	// reg is 32-bit (with a wrap guard at registration): it only breaks
	// (at, born) ties, and the 24-byte key keeps ring shifts cheap.
	reg  uint32
	slot int32
}

func keyLess(a, b *pollerKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.born != b.born {
		return a.born < b.born
	}
	return a.reg < b.reg
}

// reset clears a pooled port for reuse, keeping slice capacity.
func (pt *rmaPort) reset() {
	pt.srv = sim.Server{}
	pt.keys = pt.keys[:0]
	for i := range pt.items {
		pt.items[i] = nil
	}
	pt.items = pt.items[:0]
	pt.freeSlots = pt.freeSlots[:0]
	for i := range pt.byReg {
		pt.byReg[i] = nil
	}
	pt.byReg = pt.byReg[:0]
	pt.reg = 0
	for i := range pt.armW {
		pt.armW[i] = nil
	}
	pt.armW = pt.armW[:0]
	pt.armT = pt.armT[:0]
	pt.checksInFlight = 0
}

// pending reports whether any poll step is registered.
func (pt *rmaPort) pending() bool { return len(pt.keys) > 0 }

// root returns the earliest pending step's poller.
func (pt *rmaPort) root() *poller { return pt.items[pt.keys[0].slot] }

// pushPoller registers a new waiter.
func (pt *rmaPort) pushPoller(pl *poller) {
	pt.reg++
	if pt.reg == 0 {
		panic("mpi: poller registration counter overflow")
	}
	pl.reg = pt.reg
	if len(pt.byReg) == 0 {
		pt.hom = true
	} else if pt.hom && (pl.win != pt.byReg[0].win || pl.target != pt.byReg[0].target) {
		pt.hom = false
	}
	pt.byReg = append(pt.byReg, pl)
	var slot int32
	if n := len(pt.freeSlots); n > 0 {
		slot = pt.freeSlots[n-1]
		pt.freeSlots = pt.freeSlots[:n-1]
		pt.items[slot] = pl
	} else {
		pt.items = append(pt.items, pl)
		slot = int32(len(pt.items) - 1)
	}
	h := append(pt.keys, pollerKey{at: pl.at, born: pl.born, reg: pl.reg, slot: slot})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !keyLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	pt.keys = h
}

// fixRoot re-syncs the root key from its poller (whose pending step
// advanced) and restores the heap.
func (pt *rmaPort) fixRoot() {
	pl := pt.items[pt.keys[0].slot]
	pt.fixRootTo(pl.at, pl.born)
}

// fixRootTo is fixRoot with the advanced position passed in, saving the
// poller reload on the advancePort hot path.
func (pt *rmaPort) fixRootTo(at, born sim.Time) {
	h := pt.keys
	h[0].at, h[0].born = at, born
	n := len(h)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && keyLess(&h[r], &h[l]) {
			m = r
		}
		if !keyLess(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// popRoot removes the earliest pending step from every view.
func (pt *rmaPort) popRoot() {
	h := pt.keys
	slot := h[0].slot
	pl := pt.items[slot]
	pt.items[slot] = nil
	pt.freeSlots = append(pt.freeSlots, slot)
	n := len(h) - 1
	h[0] = h[n]
	pt.keys = h[:n]
	if n > 0 {
		pt.fixRoot()
	}
	for i, q := range pt.byReg {
		if q == pl {
			pt.byReg = append(pt.byReg[:i], pt.byReg[i+1:]...)
			break
		}
	}
}

// poller is one parked Win.Lock caller whose retries are simulated
// arithmetically. It alternates between two phases: the next attempt
// *arriving* at the port (inService false, at = arrival time) and the
// in-flight attempt *completing and checking* the lock word (inService
// true, at = check time).
type poller struct {
	win      *Win
	target   int
	lockType int
	proc     *sim.Proc
	remote   bool
	// cont, when non-nil, is run at the grant position instead of resuming
	// proc there (continuation-style locking, see LockCont). The event it
	// runs in has exactly the (time, scheduling-time) key the literal
	// winner's resume would have had.
	cont func()

	inService bool
	at        sim.Time
	// born is the virtual time the step pending at `at` would have been
	// scheduled in the literal protocol (the previous check for an arrival,
	// the arrival for a check). Events of equal firing time fire in
	// scheduling order, so born decides ties between a replayed step and a
	// real same-instant arrival.
	born     sim.Time
	attempts int
	granted  bool
	reg      uint32 // registration tie-break, assigned by pushPoller
}

// canSucceed reports whether the poller's next check would acquire the lock
// in state ls.
func (pl *poller) canSucceed(ls *lockState) bool {
	if pl.lockType == LockExclusive {
		return !ls.excl && ls.readers == 0
	}
	return !ls.excl
}

// advancePort replays pending virtual poll steps on node's port in
// (timestamp, scheduling-time) order — the engine's own event order. Steps
// strictly before t always replay; steps exactly at t replay only if their
// would-be event was scheduled before bornLimit (or at it, when incl is
// set), because events of equal firing time fire in scheduling order.
// Callers replaying on behalf of a real port arrival or a lock release pass
// that event's EventScheduledAt exclusively; wake events pass their own
// position inclusively. The call must precede any real arrival at the port
// (so the serial service order matches the literal protocol) and any
// lock-state change (so every check resolves against the state that held
// at its own virtual time). Grants resolve exactly at their check time and
// position: the wake chain guarantees an engine event fires there, so
// eng.Now() == pl.at.
func (w *World) advancePort(node int, t, bornLimit sim.Time, incl bool) (advanced bool) {
	pt := w.memPort[node]
	mem := &w.cfg.Mem
	net := &w.cfg.Net
	for pt.pending() {
		// Bail out on the root KEY alone — the hot exit skips the poller
		// indirection entirely.
		k0 := &pt.keys[0]
		if k0.at > t || (k0.at == t && (k0.born > bornLimit || (k0.born == bornLimit && !incl))) {
			return
		}
		best := pt.items[k0.slot]
		advanced = true
		if !best.inService {
			// The retry reaches the port: consume serial service exactly as
			// the literal rmaRound would, then wait for the check moment.
			svc := mem.LockAttempt
			if best.remote {
				svc += net.PortService
			}
			done := pt.srv.ServeAsync(best.at, svc)
			best.win.LockAttempts++
			best.attempts++
			best.inService = true
			// Mirror the literal Serve bit-for-bit: the waiting process
			// would have slept (done − now) from now, so its wake-up is
			// at + (done − at), which floating point does not guarantee to
			// equal done. The check event's scheduling time is the Serve
			// wake-up for a local rank; a remote rank checks after a second
			// latency sleep scheduled at that wake-up.
			completion := best.at + (done - best.at)
			if best.remote {
				best.born = completion
				best.at = completion + net.Latency
			} else {
				best.born = best.at
				best.at = completion
			}
			pt.fixRootTo(best.at, best.born)
			continue
		}
		// The attempt completes: check the lock word at its own timestamp.
		ls := &best.win.locks[best.target]
		if best.canSucceed(ls) {
			if best.lockType == LockExclusive {
				ls.excl = true
			} else {
				ls.readers++
			}
			best.win.LockAcquisitions++
			best.granted = true
			pt.popRoot()
			// Resume the winner at its check time, in the position the
			// literal check event (scheduled at the attempt's arrival)
			// would have fired, so everything it schedules next gets the
			// same relative order as in the literal protocol. Node-local
			// continuations go to the node's engine (its lane when armed).
			//
			// Analytic fast-forward: when the grant resolves at exactly the
			// position of the wake event this replay runs in (incl callers
			// pass their own position), the literal grant event would fire
			// immediately after the wake completes — nothing can interpose
			// at the same (time, born) key, since on a homogeneous port no
			// second wake can cover the same position (reconcilePort never
			// re-arms an identical one). Collect the continuation instead;
			// the wake runs it after reconciliation, where eng.Now() and
			// EventScheduledAt() already equal the grant position.
			if best.cont != nil {
				if incl && best.at == t && best.born == bornLimit && pt.hom && fastFwd.Load() {
					w.inlineGrants = append(w.inlineGrants, best.cont)
				} else {
					w.engOf(node).ScheduleAsOf(best.at, best.born, best.cont)
				}
			} else {
				best.proc.UnparkAsOf(best.at, best.born)
			}
			continue
		}
		// Failed: back off PollInterval and retry. A local rank's next
		// arrival is the back-off sleep's wake-up (scheduled at the check);
		// a remote rank pays a further wire-latency sleep scheduled at that
		// wake-up before its attempt reaches the port.
		best.inService = false
		if best.remote {
			best.born = best.at + mem.PollInterval
			best.at = best.born + net.Latency
		} else {
			best.born = best.at
			best.at += mem.PollInterval
		}
		pt.fixRootTo(best.at, best.born)
	}
	return advanced
}

// reconcilePort re-establishes the wake-chain invariant after the port or a
// lock hosted on it changed: for every lock with a parked poller that could
// acquire it in the current state, an engine event is scheduled at the
// earliest such poll decision, in that decision's own event position. Stale
// wake events (the state changed again first) fire harmlessly: they just
// advance and reconcile again.
func (w *World) reconcilePort(node int) {
	pt := w.memPort[node]
	// Fast path: when every parked poller contends for the same lock and
	// that lock is exclusively held, no poller can acquire it — the walk
	// below would arm nothing. One lock-word load replaces the scan.
	if pt.hom && len(pt.byReg) > 0 && pt.byReg[0].win.locks[pt.byReg[0].target].excl {
		return
	}
	// Walk in registration order — the literal scan order — improving each
	// lock's covering mark, then arm one wake per improved lock at its final
	// mark. The literal protocol's intermediate, immediately-superseded
	// wake-ups carry no observable state of their own: a stale wake only
	// advances the port to its position, and every replayed poll step is
	// position-exact arithmetic that yields the same timestamps and counters
	// whichever trigger drives it, so only the earliest covering decision —
	// where a grant can actually resolve — needs an engine event.
	for _, pl := range pt.byReg {
		ls := &pl.win.locks[pl.target]
		if !pl.canSucceed(ls) {
			continue
		}
		if ls.wakeSet && (ls.wakeAt < pl.at || (ls.wakeAt == pl.at && ls.wakeBorn <= pl.born)) {
			continue
		}
		ls.wakeAt = pl.at
		ls.wakeBorn = pl.born
		ls.wakeSet = true
		found := false
		for i := range pt.armW {
			if pt.armW[i] == pl.win && pt.armT[i] == pl.target {
				found = true
				break
			}
		}
		if !found {
			pt.armW = append(pt.armW, pl.win)
			pt.armT = append(pt.armT, pl.target)
		}
	}
	for i := range pt.armW {
		win, target := pt.armW[i], pt.armT[i]
		pt.armW[i] = nil
		ls := &win.locks[target]
		w.scheduleWake(node, win, target, ls.wakeAt, ls.wakeBorn)
	}
	pt.armW = pt.armW[:0]
	pt.armT = pt.armT[:0]
}

// wakeRec is one pooled wake-chain link; fire is the closure bound to it
// once, so re-arming the chain allocates nothing in steady state.
type wakeRec struct {
	w      *World
	win    *Win
	target int
	node   int
	at     sim.Time
	born   sim.Time
	fire   func()
	next   *wakeRec
}

// scheduleWake arms one link of the wake chain: an event at the exact
// (time, scheduling-time) position of the poll decision it covers, firing
// after every same-instant event that preceded the literal decision and
// before every one that followed it.
func (w *World) scheduleWake(node int, win *Win, target int, at, born sim.Time) {
	wr := w.wakeFree
	if wr == nil {
		wr = &wakeRec{w: w}
		wr.fire = func() {
			w := wr.w
			ls := &wr.win.locks[wr.target]
			cleared := ls.wakeSet && ls.wakeAt == wr.at && ls.wakeBorn == wr.born
			if cleared {
				ls.wakeSet = false
			}
			node, born := wr.node, wr.born
			wr.win = nil
			wr.next = w.wakeFree
			w.wakeFree = wr
			advanced := w.advancePort(node, w.engOf(node).Now(), born, true)
			if cleared || advanced {
				w.reconcilePort(node)
				// Grants the replay resolved at this event's own position run
				// here — after reconciliation, exactly where their literal
				// same-key grant events fired — in replay order, which is the
				// order those events would have been scheduled. A grant's
				// continuation can replay other ports or re-arm this one, but
				// only exclusive (incl=false) replays, so the list is stable.
				// Only the last grant is in tail position: the earlier ones
				// (shared locks granted together) must leave their follow-up
				// events queued so ordering against the remaining grants stays
				// with the comparator.
				eng := w.engOf(node)
				for i := 0; i < len(w.inlineGrants); i++ {
					g := w.inlineGrants[i]
					w.inlineGrants[i] = nil
					if i < len(w.inlineGrants)-1 {
						eng.WithoutAbsorb(g)
					} else {
						g()
					}
				}
				w.inlineGrants = w.inlineGrants[:0]
				return
			}
			// A stale link that replayed nothing cannot have created a new
			// earliest decision: poll positions only ever move later, every
			// eligibility-increasing mutation (a release) reconciles itself,
			// and the covering mark is still armed. The walk would arm
			// nothing, so skip it.
		}
	} else {
		w.wakeFree = wr.next
	}
	wr.win, wr.target, wr.node, wr.at, wr.born = win, target, node, at, born
	w.engOf(node).ScheduleAsOf(at, born, wr.fire)
}

// Lock types, mirroring MPI_LOCK_EXCLUSIVE / MPI_LOCK_SHARED.
const (
	LockExclusive = iota
	LockShared
)

// winState is the payload used during collective window creation.
type winAllocPayload struct{ win *Win }

// newWin builds the window object shared by a collective allocation. The
// per-rank segments subslice one backing array (and reuse a pooled window's
// backing memory when the world has one of the right shape), so window
// creation costs O(1) allocations rather than O(ranks).
func (c *Comm) newWin(name string, count int, shared bool) *Win {
	size := c.Size()
	w := c.world.pooledWin(size, count)
	if w == nil {
		w = &Win{mem: make([]int64, size*count), data: make([][]int64, size), locks: make([]lockState, size)}
	}
	w.world, w.comm, w.name, w.shared = c.world, c, name, shared
	for i := range w.data {
		w.data[i] = w.mem[i*count : (i+1)*count : (i+1)*count]
	}
	c.world.wins = append(c.world.wins, w)
	return w
}

// pooledWin returns a retired window whose backing arrays fit size ranks of
// count words each (see World.Reset), zeroed and ready for reuse, or nil.
func (w *World) pooledWin(size, count int) *Win {
	for i, pw := range w.winFree {
		if len(pw.data) == size && cap(pw.mem) >= size*count {
			w.winFree[i] = w.winFree[len(w.winFree)-1]
			w.winFree = w.winFree[:len(w.winFree)-1]
			pw.mem = pw.mem[:size*count]
			for j := range pw.mem {
				pw.mem[j] = 0
			}
			pw.locks = pw.locks[:size]
			for j := range pw.locks {
				pw.locks[j] = lockState{}
			}
			pw.LockAttempts, pw.LockAcquisitions, pw.AtomicOps = 0, 0, 0
			return pw
		}
	}
	return nil
}

func (c *Comm) allocateWin(r *Rank, name string, count int, shared bool) *Win {
	if shared && c.spansNodes() != 1 {
		panic(fmt.Sprintf("mpi: WinAllocateShared on communicator %q spanning %d nodes", c.name, c.spansNodes()))
	}
	st := c.enter(r, "winalloc")
	if st.payload == nil {
		st.payload = winAllocPayload{win: c.newWin(name, count, shared)}
	}
	win := st.payload.(winAllocPayload).win
	c.arriveAndWait(r, st, c.latencyCost(2, 0)) // window creation synchronizes
	c.leave(r, st)
	return win
}

// allocateWinCont is allocateWin for goroutine-free ranks: cont receives the
// window at the event position where the literal caller resumed from the
// creation barrier.
func (c *Comm) allocateWinCont(r *Rank, name string, count int, shared bool, cont func(*Win)) {
	if shared && c.spansNodes() != 1 {
		panic(fmt.Sprintf("mpi: WinAllocateShared on communicator %q spanning %d nodes", c.name, c.spansNodes()))
	}
	st := c.enter(r, "winalloc")
	if st.payload == nil {
		st.payload = winAllocPayload{win: c.newWin(name, count, shared)}
	}
	win := st.payload.(winAllocPayload).win
	c.arriveCont(r, st, c.latencyCost(2, 0), func() {
		c.leave(r, st)
		cont(win)
	})
}

// WinAllocateCont is the goroutine-free WinAllocate: the calling rank must
// be a machine rank (no simulated process), and cont runs holding the new
// window at the literal post-creation-barrier event position.
func (c *Comm) WinAllocateCont(r *Rank, name string, count int, cont func(*Win)) {
	c.allocateWinCont(r, name, count, false, cont)
}

// WinAllocateSharedCont is the goroutine-free WinAllocateShared.
func (c *Comm) WinAllocateSharedCont(r *Rank, name string, count int, cont func(*Win)) {
	c.allocateWinCont(r, name, count, true, cont)
}

// WinAllocate collectively creates a window with count int64 words per rank.
func (c *Comm) WinAllocate(r *Rank, name string, count int) *Win {
	return c.allocateWin(r, name, count, false)
}

// WinAllocateShared collectively creates an MPI-3 shared-memory window; the
// communicator must live on a single node (use SplitTypeShared).
func (c *Comm) WinAllocateShared(r *Rank, name string, count int) *Win {
	return c.allocateWin(r, name, count, true)
}

// Name returns the window's debug name.
func (w *Win) Name() string { return w.name }

// Comm returns the communicator the window was created on.
func (w *Win) Comm() *Comm { return w.comm }

// targetNode returns the node hosting the target comm rank's segment.
func (w *Win) targetNode(target int) int {
	return w.world.ranks[w.comm.ranks[target]].node
}

// rmaRound performs one RMA operation round from r to the target's host
// port: wire latency both ways when the target is remote, and serial
// service at the port either way. It returns after the op completed.
func (w *Win) rmaRound(r *Rank, target int, service sim.Time) {
	w.rmaRoundFrom(r.proc, r.node, target, service)
}

// rmaRoundFrom is rmaRound for an arbitrary simulated process (e.g. an
// OpenMP thread making MPI calls under MPI_THREAD_MULTIPLE).
func (w *Win) rmaRoundFrom(p *sim.Proc, fromNode, target int, service sim.Time) {
	wld := w.world
	tn := w.targetNode(target)
	pt := wld.memPort[tn]
	if tn == fromNode {
		if pt.pending() {
			wld.advancePort(tn, p.Now(), wld.eng.EventScheduledAt(), false)
		}
		pt.srv.Serve(p, service)
		return
	}
	net := &wld.cfg.Net
	p.Sleep(net.Latency)
	if pt.pending() {
		wld.advancePort(tn, p.Now(), wld.eng.EventScheduledAt(), false)
	}
	pt.srv.Serve(p, service+net.PortService)
	p.Sleep(net.Latency)
}

// FetchAndOpFrom is FetchAndOp issued from an arbitrary simulated process
// pinned to fromNode. It models threads calling MPI under
// MPI_THREAD_MULTIPLE (used by the nowait extension executor).
func (w *Win) FetchAndOpFrom(p *sim.Proc, fromNode, target, offset int, delta int64) int64 {
	w.AtomicOps++
	w.rmaRoundFrom(p, fromNode, target, w.world.cfg.Mem.SharedWinOp)
	old := w.data[target][offset]
	w.data[target][offset] = old + delta
	return old
}

// Lock acquires the window lock on target for r, with MPI semantics of
// MPI_Win_lock: exclusive locks conflict with everything, shared locks only
// with exclusive ones. It returns the number of attempts that were needed;
// the first attempt can succeed, so the minimum is 1.
func (w *Win) Lock(r *Rank, target int, lockType int) int {
	mem := &w.world.cfg.Mem
	// First attempt is taken literally: under no contention it succeeds and
	// costs exactly one RMA round, as in the original protocol.
	w.LockAttempts++
	w.rmaRound(r, target, mem.LockAttempt)
	ls := &w.locks[target]
	if lockType == LockExclusive {
		if !ls.excl && ls.readers == 0 {
			ls.excl = true
			w.LockAcquisitions++
			return 1
		}
	} else {
		if !ls.excl {
			ls.readers++
			w.LockAcquisitions++
			return 1
		}
	}
	// Contended: hand the retry loop to the port's coalesced poller
	// machinery and park. Every virtual retry still pays the same port
	// service and PollInterval back-off as the literal loop; it is merely
	// replayed lazily. The process resumes exactly at the virtual time its
	// winning attempt's check would have completed.
	tn := w.targetNode(target)
	remote := tn != r.node
	born := r.Now()
	next := born + mem.PollInterval
	if remote {
		// The literal remote retry sleeps PollInterval, then a wire
		// latency scheduled at that wake-up; the arrival event's
		// scheduling time is the back-off expiry.
		born = next
		next += w.world.cfg.Net.Latency
	}
	pl := r.pooledPoller()
	*pl = poller{
		win: w, target: target, lockType: lockType,
		proc: r.proc, remote: remote,
		at: next, born: born, attempts: 1,
	}
	pt := w.world.memPort[tn]
	pt.pushPoller(pl)
	r.proc.Park()
	if !pl.granted {
		panic(fmt.Sprintf("mpi: lock poller on %s[%d] resumed without grant", w.name, target))
	}
	return pl.attempts
}

// Unlock releases r's lock on target. The release is itself an RMA round
// (it flushes pending operations), so it competes with poll attempts.
func (w *Win) Unlock(r *Rank, target int, lockType int) {
	w.locks[target].relsInFlight++
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp)
	tn := w.targetNode(target)
	// Resolve every poll decision up to the release instant against the
	// still-held state: retries whose check lands before the release (in
	// (time, scheduling-order) event order) must fail, exactly as they
	// would have in the literal protocol.
	if w.world.memPort[tn].pending() {
		w.world.advancePort(tn, r.proc.Now(), w.world.eng.EventScheduledAt(), false)
	}
	ls := &w.locks[target]
	if lockType == LockExclusive {
		if !ls.excl {
			panic(fmt.Sprintf("mpi: exclusive Unlock of unheld lock on %s[%d]", w.name, target))
		}
		ls.excl = false
	} else {
		if ls.readers <= 0 {
			panic(fmt.Sprintf("mpi: shared Unlock of unheld lock on %s[%d]", w.name, target))
		}
		ls.readers--
	}
	ls.relsInFlight--
	// The lock may now be acquirable: arm the wake chain so the next poll
	// decision fires at its exact virtual time.
	w.world.reconcilePort(tn)
}

// UnlockAsOf is Unlock for a caller that is still at an earlier instant of
// its critical section: arrival names the virtual time the unlock's RMA
// round reaches the port and born the scheduling position of the literal
// pre-arrival wake-up (the last sleep of the caller's critical-section
// chain). The caller parks; the arrival half (pre-release poll replay plus
// port service) runs in an event at the exact position the literal caller
// occupied, and the caller resumes precisely at the service completion —
// where the literal Serve wake-up fired — to apply the release. Every
// externally visible action (poll replay, port-queue arrival, lock-word
// mutation, wake-chain arming) happens at its literal (time, position), so
// runs are byte-identical to Sync/Sleep/Unlock chains; only the caller's
// intermediate wake-ups disappear. Shared (node-local) windows only.
func (w *Win) UnlockAsOf(r *Rank, target, lockType int, arrival, born sim.Time) {
	wld := w.world
	tn := w.targetNode(target)
	if tn != r.node {
		panic(fmt.Sprintf("mpi: UnlockAsOf on %s[%d] from another node", w.name, target))
	}
	pt := wld.memPort[tn]
	eng := wld.eng
	w.locks[target].relsInFlight++
	eng.ScheduleAsOf(arrival, born, func() {
		if pt.pending() {
			wld.advancePort(tn, arrival, eng.EventScheduledAt(), false)
		}
		done := pt.srv.ServeAsync(arrival, wld.cfg.Mem.SharedWinOp)
		// Mirror Serve's wake arithmetic bit for bit (see advancePort).
		r.proc.UnparkAsOf(arrival+(done-arrival), arrival)
	})
	r.proc.Park()
	// The release half runs in the wake event, exactly as the literal
	// Unlock continuation did after its Serve returned.
	if pt.pending() {
		wld.advancePort(tn, r.proc.Now(), eng.EventScheduledAt(), false)
	}
	ls := &w.locks[target]
	if lockType == LockExclusive {
		if !ls.excl {
			panic(fmt.Sprintf("mpi: exclusive Unlock of unheld lock on %s[%d]", w.name, target))
		}
		ls.excl = false
	} else {
		if ls.readers <= 0 {
			panic(fmt.Sprintf("mpi: shared Unlock of unheld lock on %s[%d]", w.name, target))
		}
		ls.readers--
	}
	ls.relsInFlight--
	wld.reconcilePort(tn)
}

// NewLockCont returns a reusable continuation-style Lock issuer for a
// node-local window. Calling the issuer performs the literal first
// attempt's arrival (poll replay plus port service reservation) at the
// current instant and arranges for cont to run, holding the lock, in an
// event at the position of the literal check — where Lock's caller would
// have resumed. Under contention the retry loop runs through the same
// coalesced poller machinery and cont fires at the exact grant position.
// The caller must park (or otherwise yield) after each issue; the issuer
// and its closures are allocated once, so steady-state issues are
// allocation-free.
func (w *Win) NewLockCont(r *Rank, target, lockType int, cont func()) func() {
	wld := w.world
	tn := w.targetNode(target)
	if tn != r.node {
		panic(fmt.Sprintf("mpi: NewLockCont on %s[%d] from another node", w.name, target))
	}
	mem := &wld.cfg.Mem
	pt := wld.memPort[tn]
	eng := wld.engOf(tn)
	check := func() {
		pt.checksInFlight--
		ls := &w.locks[target]
		if lockType == LockExclusive {
			if !ls.excl && ls.readers == 0 {
				ls.excl = true
				w.LockAcquisitions++
				cont()
				return
			}
		} else {
			if !ls.excl {
				ls.readers++
				w.LockAcquisitions++
				cont()
				return
			}
		}
		// Contended: park on the coalesced poller machinery, exactly as the
		// literal loop registered itself after its first failed check.
		born := eng.Now()
		pl := r.pooledPoller()
		*pl = poller{
			win: w, target: target, lockType: lockType,
			proc: r.proc, cont: cont,
			at: born + mem.PollInterval, born: born, attempts: 1,
		}
		pt.pushPoller(pl)
	}
	return func() {
		// Literal first attempt: one RMA round through the port.
		w.LockAttempts++
		if pt.pending() {
			wld.advancePort(tn, eng.Now(), eng.EventScheduledAt(), false)
		}
		now := eng.Now()
		done := pt.srv.ServeAsync(now, mem.LockAttempt)
		chk := now + (done - now) // Serve's wake arithmetic, bit for bit
		if fastFwd.Load() {
			// Analytic fast-forward: the check at chk provably fails when the
			// lock is held and no release is in flight — any future release
			// must arrive at this port and its service queues behind the
			// attempt just reserved, so the lock word cannot improve before
			// chk. Park directly in the state the literal failed check would
			// have left (born = check time, next arrival one back-off later,
			// one attempt consumed) and skip the check event entirely.
			ls := &w.locks[target]
			if ls.relsInFlight == 0 && pt.checksInFlight == 0 &&
				(ls.excl || (lockType == LockExclusive && ls.readers > 0)) {
				pl := r.pooledPoller()
				*pl = poller{
					win: w, target: target, lockType: lockType,
					proc: r.proc, cont: cont,
					at: chk + mem.PollInterval, born: chk, attempts: 1,
				}
				pt.pushPoller(pl)
				return
			}
		}
		pt.checksInFlight++
		eng.AbsorbAsOf(chk, now, check)
	}
}

// NewUnlockCont returns a reusable continuation-style unlock issuer:
// issue(arrival, born) runs the unlock's arrival half (poll replay, port
// service) in an event at the literal pre-arrival wake position, the
// release half at the literal service completion, and cont(release) inline
// right after the release — exactly where the literal Unlock caller
// resumed — so everything cont schedules gets the same relative order. At
// most one unlock may be in flight per issuer; the caller parks meanwhile.
func (w *Win) NewUnlockCont(r *Rank, target, lockType int, cont func(release sim.Time)) func(arrival, born sim.Time) {
	wld := w.world
	tn := w.targetNode(target)
	if tn != r.node {
		panic(fmt.Sprintf("mpi: NewUnlockCont on %s[%d] from another node", w.name, target))
	}
	pt := wld.memPort[tn]
	eng := wld.engOf(tn)
	var arrival, release sim.Time
	releaseFn := func() {
		if pt.pending() {
			wld.advancePort(tn, release, eng.EventScheduledAt(), false)
		}
		ls := &w.locks[target]
		if lockType == LockExclusive {
			if !ls.excl {
				panic(fmt.Sprintf("mpi: exclusive Unlock of unheld lock on %s[%d]", w.name, target))
			}
			ls.excl = false
		} else {
			if ls.readers <= 0 {
				panic(fmt.Sprintf("mpi: shared Unlock of unheld lock on %s[%d]", w.name, target))
			}
			ls.readers--
		}
		ls.relsInFlight--
		wld.reconcilePort(tn)
		cont(release)
	}
	arriveFn := func() {
		if pt.pending() {
			wld.advancePort(tn, arrival, eng.EventScheduledAt(), false)
		}
		done := pt.srv.ServeAsync(arrival, wld.cfg.Mem.SharedWinOp)
		release = arrival + (done - arrival)
		eng.AbsorbAsOf(release, arrival, releaseFn)
	}
	return func(arr, born sim.Time) {
		arrival = arr
		w.locks[target].relsInFlight++
		eng.AbsorbAsOf(arr, born, arriveFn)
	}
}

// NewFetchAndOpCont returns a reusable event-driven MPI_Fetch_and_op issuer
// on w for rank r: issue(target, offset, delta, cont) performs the literal
// rmaRound — wire latency both ways when the target is remote, poll replay
// and serial service at the target port either way — entirely in engine
// events at the exact (time, scheduling-time) positions the blocking
// FetchAndOp's sleeps occupied, then applies the read-modify-write and runs
// cont(old) inline at the completion event, where the literal caller
// resumed. At most one operation may be in flight per issuer; the issuer
// and its closures are allocated once, so steady-state issues allocate
// nothing. The caller must already be executing inside an engine event (a
// machine rank), so the pre-service poll replay sees the same
// EventScheduledAt as the literal call site.
func (w *Win) NewFetchAndOpCont(r *Rank) func(target, offset int, delta int64, cont func(old int64)) {
	wld := w.world
	// Under fast-forward lanes the issuer spans two engines: the issue, the
	// final latency hop and cont run on the requester's engine (its node's
	// lane), while the target port's arrival and service run on the engine
	// owning the target node — the main engine for the globally shared
	// window on node 0 — so port service order stays the global virtual-time
	// order. Cross-engine schedules always land in the receiving engine's
	// future (see World.LaunchLanes). Without lanes both are wld.eng and the
	// event stream is unchanged.
	engR := wld.engOf(r.node)
	net := &wld.cfg.Net
	var (
		target, offset int
		delta          int64
		cont           func(int64)
		engT           *sim.Engine
	)
	finish := func() {
		old := w.data[target][offset]
		w.data[target][offset] = old + delta
		cont(old)
	}
	servedRemote := func() {
		now := engT.Now()
		engR.AbsorbAsOf(now+net.Latency, now, finish)
	}
	arriveRemote := func() {
		tn := w.targetNode(target)
		pt := wld.memPort[tn]
		if pt.pending() {
			wld.advancePort(tn, engT.Now(), engT.EventScheduledAt(), false)
		}
		now := engT.Now()
		done := pt.srv.ServeAsync(now, wld.cfg.Mem.SharedWinOp+net.PortService)
		engT.AbsorbAsOf(now+(done-now), now, servedRemote)
	}
	return func(t, off int, d int64, c func(int64)) {
		target, offset, delta, cont = t, off, d, c
		w.AtomicOps++
		tn := w.targetNode(target)
		now := engR.Now()
		if tn != r.node {
			engT = wld.engOf(tn)
			engT.AbsorbAsOf(now+net.Latency, now, arriveRemote)
			return
		}
		pt := wld.memPort[tn]
		if pt.pending() {
			wld.advancePort(tn, now, engR.EventScheduledAt(), false)
		}
		done := pt.srv.ServeAsync(now, wld.cfg.Mem.SharedWinOp)
		engR.AbsorbAsOf(now+(done-now), now, finish)
	}
}

// FetchAndOp atomically adds delta to the word at (target, offset) and
// returns its previous value — MPI_Fetch_and_op with MPI_SUM. With delta 0
// it is an atomic read (MPI_NO_OP).
func (w *Win) FetchAndOp(r *Rank, target, offset int, delta int64) int64 {
	w.AtomicOps++
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp)
	old := w.data[target][offset]
	w.data[target][offset] = old + delta
	return old
}

// CompareAndSwap atomically replaces the word at (target, offset) with
// replace if it equals compare, returning the previous value.
func (w *Win) CompareAndSwap(r *Rank, target, offset int, compare, replace int64) int64 {
	w.AtomicOps++
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp)
	old := w.data[target][offset]
	if old == compare {
		w.data[target][offset] = replace
	}
	return old
}

// Get copies n words starting at (target, offset) into a fresh slice.
func (w *Win) Get(r *Rank, target, offset, n int) []int64 {
	bytes := float64(8 * n)
	var bw float64
	if w.targetNode(target) == r.node {
		bw = w.world.cfg.Mem.CopyBandwidth
	} else {
		bw = w.world.cfg.Net.Bandwidth
	}
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp+sim.Time(bytes/bw))
	out := make([]int64, n)
	copy(out, w.data[target][offset:offset+n])
	return out
}

// Put copies vals into the target segment starting at offset.
func (w *Win) Put(r *Rank, target, offset int, vals []int64) {
	bytes := float64(8 * len(vals))
	var bw float64
	if w.targetNode(target) == r.node {
		bw = w.world.cfg.Mem.CopyBandwidth
	} else {
		bw = w.world.cfg.Net.Bandwidth
	}
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp+sim.Time(bytes/bw))
	copy(w.data[target][offset:], vals)
}

// Sync models MPI_Win_sync: the memory-barrier cost that shared-window
// algorithms pay to publish or observe direct stores.
func (w *Win) Sync(r *Rank) {
	r.proc.Sleep(w.world.cfg.Mem.WinSync)
}

// Shared returns the target segment of a shared window for direct
// load/store access, validating locality once. Hot executor loops index it
// instead of paying the per-access checks of SharedRead/SharedWrite; the
// visibility discipline (Sync, or a lock held across the accesses) remains
// the caller's responsibility, as in MPI-3.
func (w *Win) Shared(r *Rank, target int) []int64 {
	w.checkShared(r, target)
	return w.data[target]
}

// SharedRead performs a direct load from a shared window. Only legal on
// shared windows for ranks on the hosting node; visibility discipline
// (Sync) is the caller's responsibility, as in MPI-3.
func (w *Win) SharedRead(r *Rank, target, offset int) int64 {
	w.checkShared(r, target)
	return w.data[target][offset]
}

// SharedWrite performs a direct store into a shared window.
func (w *Win) SharedWrite(r *Rank, target, offset int, val int64) {
	w.checkShared(r, target)
	w.data[target][offset] = val
}

func (w *Win) checkShared(r *Rank, target int) {
	if !w.shared {
		panic(fmt.Sprintf("mpi: direct access to non-shared window %s", w.name))
	}
	if w.targetNode(target) != r.node {
		panic(fmt.Sprintf("mpi: direct access to %s[%d] from another node", w.name, target))
	}
}
