package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Win is an RMA window: each rank of the creating communicator exposes a
// segment of int64 words. Operations name a target comm rank and an offset
// within the target's segment.
//
// Passive-target synchronization follows the lock-polling protocol the paper
// discusses (citing Zhao et al.): Lock is acquire-by-retry, every attempt is
// an RMA round serviced serially by the target node's window port, and
// failed attempts back off for the cluster's PollInterval. Under contention
// the attempt storm both delays the holder's own operations and stretches
// grant hand-off — the mechanism behind the paper's SS results.
type Win struct {
	world  *World
	comm   *Comm
	name   string
	shared bool
	data   [][]int64
	locks  []lockState

	// Accounting for overhead analysis.
	LockAttempts     int64
	LockAcquisitions int64
	AtomicOps        int64
}

type lockState struct {
	excl    bool
	readers int
}

// Lock types, mirroring MPI_LOCK_EXCLUSIVE / MPI_LOCK_SHARED.
const (
	LockExclusive = iota
	LockShared
)

// winState is the payload used during collective window creation.
type winAllocPayload struct{ win *Win }

func (c *Comm) allocateWin(r *Rank, name string, count int, shared bool) *Win {
	if shared && c.spansNodes() != 1 {
		panic(fmt.Sprintf("mpi: WinAllocateShared on communicator %q spanning %d nodes", c.name, c.spansNodes()))
	}
	st := c.enter(r, "winalloc")
	if st.payload == nil {
		w := &Win{world: c.world, comm: c, name: name, shared: shared}
		w.data = make([][]int64, c.Size())
		for i := range w.data {
			w.data[i] = make([]int64, count)
		}
		w.locks = make([]lockState, c.Size())
		c.world.wins = append(c.world.wins, w)
		st.payload = winAllocPayload{win: w}
	}
	win := st.payload.(winAllocPayload).win
	c.arriveAndWait(r, st, c.latencyCost(2, 0)) // window creation synchronizes
	c.leave(r, st)
	return win
}

// WinAllocate collectively creates a window with count int64 words per rank.
func (c *Comm) WinAllocate(r *Rank, name string, count int) *Win {
	return c.allocateWin(r, name, count, false)
}

// WinAllocateShared collectively creates an MPI-3 shared-memory window; the
// communicator must live on a single node (use SplitTypeShared).
func (c *Comm) WinAllocateShared(r *Rank, name string, count int) *Win {
	return c.allocateWin(r, name, count, true)
}

// Name returns the window's debug name.
func (w *Win) Name() string { return w.name }

// Comm returns the communicator the window was created on.
func (w *Win) Comm() *Comm { return w.comm }

// targetNode returns the node hosting the target comm rank's segment.
func (w *Win) targetNode(target int) int {
	return w.world.ranks[w.comm.ranks[target]].node
}

// rmaRound performs one RMA operation round from r to the target's host
// port: wire latency both ways when the target is remote, and serial
// service at the port either way. It returns after the op completed.
func (w *Win) rmaRound(r *Rank, target int, service sim.Time) {
	w.rmaRoundFrom(r.proc, r.node, target, service)
}

// rmaRoundFrom is rmaRound for an arbitrary simulated process (e.g. an
// OpenMP thread making MPI calls under MPI_THREAD_MULTIPLE).
func (w *Win) rmaRoundFrom(p *sim.Proc, fromNode, target int, service sim.Time) {
	wld := w.world
	tn := w.targetNode(target)
	if tn == fromNode {
		wld.memPort[tn].Serve(p, service)
		return
	}
	net := &wld.cfg.Net
	p.Sleep(net.Latency)
	wld.memPort[tn].Serve(p, service+net.PortService)
	p.Sleep(net.Latency)
}

// FetchAndOpFrom is FetchAndOp issued from an arbitrary simulated process
// pinned to fromNode. It models threads calling MPI under
// MPI_THREAD_MULTIPLE (used by the nowait extension executor).
func (w *Win) FetchAndOpFrom(p *sim.Proc, fromNode, target, offset int, delta int64) int64 {
	w.AtomicOps++
	w.rmaRoundFrom(p, fromNode, target, w.world.cfg.Mem.SharedWinOp)
	old := w.data[target][offset]
	w.data[target][offset] = old + delta
	return old
}

// Lock acquires the window lock on target for r, with MPI semantics of
// MPI_Win_lock: exclusive locks conflict with everything, shared locks only
// with exclusive ones. It returns the number of attempts that were needed;
// the first attempt can succeed, so the minimum is 1.
func (w *Win) Lock(r *Rank, target int, lockType int) int {
	mem := &w.world.cfg.Mem
	attempts := 0
	for {
		attempts++
		w.LockAttempts++
		w.rmaRound(r, target, mem.LockAttempt)
		ls := &w.locks[target]
		if lockType == LockExclusive {
			if !ls.excl && ls.readers == 0 {
				ls.excl = true
				w.LockAcquisitions++
				return attempts
			}
		} else {
			if !ls.excl {
				ls.readers++
				w.LockAcquisitions++
				return attempts
			}
		}
		r.proc.Sleep(mem.PollInterval)
	}
}

// Unlock releases r's lock on target. The release is itself an RMA round
// (it flushes pending operations), so it competes with poll attempts.
func (w *Win) Unlock(r *Rank, target int, lockType int) {
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp)
	ls := &w.locks[target]
	if lockType == LockExclusive {
		if !ls.excl {
			panic(fmt.Sprintf("mpi: exclusive Unlock of unheld lock on %s[%d]", w.name, target))
		}
		ls.excl = false
	} else {
		if ls.readers <= 0 {
			panic(fmt.Sprintf("mpi: shared Unlock of unheld lock on %s[%d]", w.name, target))
		}
		ls.readers--
	}
}

// FetchAndOp atomically adds delta to the word at (target, offset) and
// returns its previous value — MPI_Fetch_and_op with MPI_SUM. With delta 0
// it is an atomic read (MPI_NO_OP).
func (w *Win) FetchAndOp(r *Rank, target, offset int, delta int64) int64 {
	w.AtomicOps++
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp)
	old := w.data[target][offset]
	w.data[target][offset] = old + delta
	return old
}

// CompareAndSwap atomically replaces the word at (target, offset) with
// replace if it equals compare, returning the previous value.
func (w *Win) CompareAndSwap(r *Rank, target, offset int, compare, replace int64) int64 {
	w.AtomicOps++
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp)
	old := w.data[target][offset]
	if old == compare {
		w.data[target][offset] = replace
	}
	return old
}

// Get copies n words starting at (target, offset) into a fresh slice.
func (w *Win) Get(r *Rank, target, offset, n int) []int64 {
	bytes := float64(8 * n)
	var bw float64
	if w.targetNode(target) == r.node {
		bw = w.world.cfg.Mem.CopyBandwidth
	} else {
		bw = w.world.cfg.Net.Bandwidth
	}
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp+sim.Time(bytes/bw))
	out := make([]int64, n)
	copy(out, w.data[target][offset:offset+n])
	return out
}

// Put copies vals into the target segment starting at offset.
func (w *Win) Put(r *Rank, target, offset int, vals []int64) {
	bytes := float64(8 * len(vals))
	var bw float64
	if w.targetNode(target) == r.node {
		bw = w.world.cfg.Mem.CopyBandwidth
	} else {
		bw = w.world.cfg.Net.Bandwidth
	}
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp+sim.Time(bytes/bw))
	copy(w.data[target][offset:], vals)
}

// Sync models MPI_Win_sync: the memory-barrier cost that shared-window
// algorithms pay to publish or observe direct stores.
func (w *Win) Sync(r *Rank) {
	r.proc.Sleep(w.world.cfg.Mem.WinSync)
}

// SharedRead performs a direct load from a shared window. Only legal on
// shared windows for ranks on the hosting node; visibility discipline
// (Sync) is the caller's responsibility, as in MPI-3.
func (w *Win) SharedRead(r *Rank, target, offset int) int64 {
	w.checkShared(r, target)
	return w.data[target][offset]
}

// SharedWrite performs a direct store into a shared window.
func (w *Win) SharedWrite(r *Rank, target, offset int, val int64) {
	w.checkShared(r, target)
	w.data[target][offset] = val
}

func (w *Win) checkShared(r *Rank, target int) {
	if !w.shared {
		panic(fmt.Sprintf("mpi: direct access to non-shared window %s", w.name))
	}
	if w.targetNode(target) != r.node {
		panic(fmt.Sprintf("mpi: direct access to %s[%d] from another node", w.name, target))
	}
}
