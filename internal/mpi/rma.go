package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// Win is an RMA window: each rank of the creating communicator exposes a
// segment of int64 words. Operations name a target comm rank and an offset
// within the target's segment.
//
// Passive-target synchronization follows the lock-polling protocol the paper
// discusses (citing Zhao et al.): Lock is acquire-by-retry, every attempt is
// an RMA round serviced serially by the target node's window port, and
// failed attempts back off for the cluster's PollInterval. Under contention
// the attempt storm both delays the holder's own operations and stretches
// grant hand-off — the mechanism behind the paper's SS results.
type Win struct {
	world  *World
	comm   *Comm
	name   string
	shared bool
	data   [][]int64
	locks  []lockState

	// Accounting for overhead analysis.
	LockAttempts     int64
	LockAcquisitions int64
	AtomicOps        int64
}

type lockState struct {
	excl    bool
	readers int

	// Wake-chain bookkeeping for coalesced polling: when the lock is in a
	// state some parked poller could acquire, (wakeAt, wakeBorn) is the
	// earliest pending poll decision and an engine event is scheduled at
	// that position. See rmaPort.
	wakeAt   sim.Time
	wakeBorn sim.Time
	wakeSet  bool
}

// rmaPort is one node's window port: the serial RMA service station plus the
// virtual lock-poller list that coalesces the lock-polling protocol's retry
// storm.
//
// In the literal protocol a contended MPI_Win_lock retries every
// PollInterval, and every retry is a full RMA round through this port — an
// O(hold-time/PollInterval) stream of simulated events per waiter that
// dominates host time in the SS experiments. The coalesced implementation
// keeps the *arithmetic* of every retry (each one still consumes port
// service time, delays other requests, and bumps the attempt counters —
// that feedback is the paper's SS pathology) but performs it lazily: the
// waiting process parks, and its pending retries are replayed in virtual-
// timestamp order whenever something observes the port (a real RMA arrival)
// or the lock state (an unlock, or the wake chain below). Timing, attempt
// counts and acquisition order are identical to the literal protocol; only
// the host-event count changes. DESIGN.md §3 gives the equivalence
// argument.
type rmaPort struct {
	srv sim.Server
	// pollers holds the parked waiters in registration order, which is also
	// the tie-break order for equal virtual timestamps.
	pollers []*poller
}

// poller is one parked Win.Lock caller whose retries are simulated
// arithmetically. It alternates between two phases: the next attempt
// *arriving* at the port (inService false, at = arrival time) and the
// in-flight attempt *completing and checking* the lock word (inService
// true, at = check time).
type poller struct {
	win      *Win
	target   int
	lockType int
	proc     *sim.Proc
	remote   bool

	inService bool
	at        sim.Time
	// born is the virtual time the step pending at `at` would have been
	// scheduled in the literal protocol (the previous check for an arrival,
	// the arrival for a check). Events of equal firing time fire in
	// scheduling order, so born decides ties between a replayed step and a
	// real same-instant arrival.
	born     sim.Time
	attempts int
	granted  bool
}

// canSucceed reports whether the poller's next check would acquire the lock
// in state ls.
func (pl *poller) canSucceed(ls *lockState) bool {
	if pl.lockType == LockExclusive {
		return !ls.excl && ls.readers == 0
	}
	return !ls.excl
}

// advancePort replays pending virtual poll steps on node's port in
// (timestamp, scheduling-time) order — the engine's own event order. Steps
// strictly before t always replay; steps exactly at t replay only if their
// would-be event was scheduled before bornLimit (or at it, when incl is
// set), because events of equal firing time fire in scheduling order.
// Callers replaying on behalf of a real port arrival or a lock release pass
// that event's EventScheduledAt exclusively; wake events pass their own
// position inclusively. The call must precede any real arrival at the port
// (so the serial service order matches the literal protocol) and any
// lock-state change (so every check resolves against the state that held
// at its own virtual time). Grants resolve exactly at their check time and
// position: the wake chain guarantees an engine event fires there, so
// eng.Now() == pl.at.
func (w *World) advancePort(node int, t, bornLimit sim.Time, incl bool) {
	pt := w.memPort[node]
	mem := &w.cfg.Mem
	net := &w.cfg.Net
	for {
		var best *poller
		bi := -1
		for i, pl := range pt.pollers {
			if pl.at > t {
				continue
			}
			if pl.at == t && (pl.born > bornLimit || (pl.born == bornLimit && !incl)) {
				continue
			}
			if best == nil || pl.at < best.at || (pl.at == best.at && pl.born < best.born) {
				best, bi = pl, i
			}
		}
		if best == nil {
			return
		}
		if !best.inService {
			// The retry reaches the port: consume serial service exactly as
			// the literal rmaRound would, then wait for the check moment.
			svc := mem.LockAttempt
			if best.remote {
				svc += net.PortService
			}
			done := pt.srv.ServeAsync(best.at, svc)
			best.win.LockAttempts++
			best.attempts++
			best.inService = true
			// Mirror the literal Serve bit-for-bit: the waiting process
			// would have slept (done − now) from now, so its wake-up is
			// at + (done − at), which floating point does not guarantee to
			// equal done. The check event's scheduling time is the Serve
			// wake-up for a local rank; a remote rank checks after a second
			// latency sleep scheduled at that wake-up.
			completion := best.at + (done - best.at)
			if best.remote {
				best.born = completion
				best.at = completion + net.Latency
			} else {
				best.born = best.at
				best.at = completion
			}
			continue
		}
		// The attempt completes: check the lock word at its own timestamp.
		ls := &best.win.locks[best.target]
		if best.canSucceed(ls) {
			if best.lockType == LockExclusive {
				ls.excl = true
			} else {
				ls.readers++
			}
			best.win.LockAcquisitions++
			best.granted = true
			pt.pollers = append(pt.pollers[:bi], pt.pollers[bi+1:]...)
			// Resume the winner at its check time, in the position the
			// literal check event (scheduled at the attempt's arrival)
			// would have fired, so everything it schedules next gets the
			// same relative order as in the literal protocol.
			best.proc.UnparkAsOf(best.at, best.born)
			continue
		}
		// Failed: back off PollInterval and retry. A local rank's next
		// arrival is the back-off sleep's wake-up (scheduled at the check);
		// a remote rank pays a further wire-latency sleep scheduled at that
		// wake-up before its attempt reaches the port.
		best.inService = false
		if best.remote {
			best.born = best.at + mem.PollInterval
			best.at = best.born + net.Latency
		} else {
			best.born = best.at
			best.at += mem.PollInterval
		}
	}
}

// reconcilePort re-establishes the wake-chain invariant after the port or a
// lock hosted on it changed: for every lock with a parked poller that could
// acquire it in the current state, an engine event is scheduled at the
// earliest such poll decision, in that decision's own event position. Stale
// wake events (the state changed again first) fire harmlessly: they just
// advance and reconcile again.
func (w *World) reconcilePort(node int) {
	pt := w.memPort[node]
	for _, pl := range pt.pollers {
		ls := &pl.win.locks[pl.target]
		if !pl.canSucceed(ls) {
			continue
		}
		if ls.wakeSet && (ls.wakeAt < pl.at || (ls.wakeAt == pl.at && ls.wakeBorn <= pl.born)) {
			continue
		}
		ls.wakeAt = pl.at
		ls.wakeBorn = pl.born
		ls.wakeSet = true
		w.scheduleWake(node, pl.win, pl.target, pl.at, pl.born)
	}
}

// scheduleWake arms one link of the wake chain: an event at the exact
// (time, scheduling-time) position of the poll decision it covers, firing
// after every same-instant event that preceded the literal decision and
// before every one that followed it.
func (w *World) scheduleWake(node int, win *Win, target int, at, born sim.Time) {
	w.eng.ScheduleAsOf(at, born, func() {
		ls := &win.locks[target]
		if ls.wakeSet && ls.wakeAt == at && ls.wakeBorn == born {
			ls.wakeSet = false
		}
		w.advancePort(node, w.eng.Now(), born, true)
		w.reconcilePort(node)
	})
}

// Lock types, mirroring MPI_LOCK_EXCLUSIVE / MPI_LOCK_SHARED.
const (
	LockExclusive = iota
	LockShared
)

// winState is the payload used during collective window creation.
type winAllocPayload struct{ win *Win }

func (c *Comm) allocateWin(r *Rank, name string, count int, shared bool) *Win {
	if shared && c.spansNodes() != 1 {
		panic(fmt.Sprintf("mpi: WinAllocateShared on communicator %q spanning %d nodes", c.name, c.spansNodes()))
	}
	st := c.enter(r, "winalloc")
	if st.payload == nil {
		w := &Win{world: c.world, comm: c, name: name, shared: shared}
		w.data = make([][]int64, c.Size())
		for i := range w.data {
			w.data[i] = make([]int64, count)
		}
		w.locks = make([]lockState, c.Size())
		c.world.wins = append(c.world.wins, w)
		st.payload = winAllocPayload{win: w}
	}
	win := st.payload.(winAllocPayload).win
	c.arriveAndWait(r, st, c.latencyCost(2, 0)) // window creation synchronizes
	c.leave(r, st)
	return win
}

// WinAllocate collectively creates a window with count int64 words per rank.
func (c *Comm) WinAllocate(r *Rank, name string, count int) *Win {
	return c.allocateWin(r, name, count, false)
}

// WinAllocateShared collectively creates an MPI-3 shared-memory window; the
// communicator must live on a single node (use SplitTypeShared).
func (c *Comm) WinAllocateShared(r *Rank, name string, count int) *Win {
	return c.allocateWin(r, name, count, true)
}

// Name returns the window's debug name.
func (w *Win) Name() string { return w.name }

// Comm returns the communicator the window was created on.
func (w *Win) Comm() *Comm { return w.comm }

// targetNode returns the node hosting the target comm rank's segment.
func (w *Win) targetNode(target int) int {
	return w.world.ranks[w.comm.ranks[target]].node
}

// rmaRound performs one RMA operation round from r to the target's host
// port: wire latency both ways when the target is remote, and serial
// service at the port either way. It returns after the op completed.
func (w *Win) rmaRound(r *Rank, target int, service sim.Time) {
	w.rmaRoundFrom(r.proc, r.node, target, service)
}

// rmaRoundFrom is rmaRound for an arbitrary simulated process (e.g. an
// OpenMP thread making MPI calls under MPI_THREAD_MULTIPLE).
func (w *Win) rmaRoundFrom(p *sim.Proc, fromNode, target int, service sim.Time) {
	wld := w.world
	tn := w.targetNode(target)
	pt := wld.memPort[tn]
	if tn == fromNode {
		if len(pt.pollers) > 0 {
			wld.advancePort(tn, p.Now(), wld.eng.EventScheduledAt(), false)
		}
		pt.srv.Serve(p, service)
		return
	}
	net := &wld.cfg.Net
	p.Sleep(net.Latency)
	if len(pt.pollers) > 0 {
		wld.advancePort(tn, p.Now(), wld.eng.EventScheduledAt(), false)
	}
	pt.srv.Serve(p, service+net.PortService)
	p.Sleep(net.Latency)
}

// FetchAndOpFrom is FetchAndOp issued from an arbitrary simulated process
// pinned to fromNode. It models threads calling MPI under
// MPI_THREAD_MULTIPLE (used by the nowait extension executor).
func (w *Win) FetchAndOpFrom(p *sim.Proc, fromNode, target, offset int, delta int64) int64 {
	w.AtomicOps++
	w.rmaRoundFrom(p, fromNode, target, w.world.cfg.Mem.SharedWinOp)
	old := w.data[target][offset]
	w.data[target][offset] = old + delta
	return old
}

// Lock acquires the window lock on target for r, with MPI semantics of
// MPI_Win_lock: exclusive locks conflict with everything, shared locks only
// with exclusive ones. It returns the number of attempts that were needed;
// the first attempt can succeed, so the minimum is 1.
func (w *Win) Lock(r *Rank, target int, lockType int) int {
	mem := &w.world.cfg.Mem
	// First attempt is taken literally: under no contention it succeeds and
	// costs exactly one RMA round, as in the original protocol.
	w.LockAttempts++
	w.rmaRound(r, target, mem.LockAttempt)
	ls := &w.locks[target]
	if lockType == LockExclusive {
		if !ls.excl && ls.readers == 0 {
			ls.excl = true
			w.LockAcquisitions++
			return 1
		}
	} else {
		if !ls.excl {
			ls.readers++
			w.LockAcquisitions++
			return 1
		}
	}
	// Contended: hand the retry loop to the port's coalesced poller
	// machinery and park. Every virtual retry still pays the same port
	// service and PollInterval back-off as the literal loop; it is merely
	// replayed lazily. The process resumes exactly at the virtual time its
	// winning attempt's check would have completed.
	tn := w.targetNode(target)
	remote := tn != r.node
	born := r.Now()
	next := born + mem.PollInterval
	if remote {
		// The literal remote retry sleeps PollInterval, then a wire
		// latency scheduled at that wake-up; the arrival event's
		// scheduling time is the back-off expiry.
		born = next
		next += w.world.cfg.Net.Latency
	}
	pl := &poller{
		win: w, target: target, lockType: lockType,
		proc: r.proc, remote: remote,
		at: next, born: born, attempts: 1,
	}
	pt := w.world.memPort[tn]
	pt.pollers = append(pt.pollers, pl)
	r.proc.Park()
	if !pl.granted {
		panic(fmt.Sprintf("mpi: lock poller on %s[%d] resumed without grant", w.name, target))
	}
	return pl.attempts
}

// Unlock releases r's lock on target. The release is itself an RMA round
// (it flushes pending operations), so it competes with poll attempts.
func (w *Win) Unlock(r *Rank, target int, lockType int) {
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp)
	tn := w.targetNode(target)
	// Resolve every poll decision up to the release instant against the
	// still-held state: retries whose check lands before the release (in
	// (time, scheduling-order) event order) must fail, exactly as they
	// would have in the literal protocol.
	if len(w.world.memPort[tn].pollers) > 0 {
		w.world.advancePort(tn, r.proc.Now(), w.world.eng.EventScheduledAt(), false)
	}
	ls := &w.locks[target]
	if lockType == LockExclusive {
		if !ls.excl {
			panic(fmt.Sprintf("mpi: exclusive Unlock of unheld lock on %s[%d]", w.name, target))
		}
		ls.excl = false
	} else {
		if ls.readers <= 0 {
			panic(fmt.Sprintf("mpi: shared Unlock of unheld lock on %s[%d]", w.name, target))
		}
		ls.readers--
	}
	// The lock may now be acquirable: arm the wake chain so the next poll
	// decision fires at its exact virtual time.
	w.world.reconcilePort(tn)
}

// FetchAndOp atomically adds delta to the word at (target, offset) and
// returns its previous value — MPI_Fetch_and_op with MPI_SUM. With delta 0
// it is an atomic read (MPI_NO_OP).
func (w *Win) FetchAndOp(r *Rank, target, offset int, delta int64) int64 {
	w.AtomicOps++
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp)
	old := w.data[target][offset]
	w.data[target][offset] = old + delta
	return old
}

// CompareAndSwap atomically replaces the word at (target, offset) with
// replace if it equals compare, returning the previous value.
func (w *Win) CompareAndSwap(r *Rank, target, offset int, compare, replace int64) int64 {
	w.AtomicOps++
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp)
	old := w.data[target][offset]
	if old == compare {
		w.data[target][offset] = replace
	}
	return old
}

// Get copies n words starting at (target, offset) into a fresh slice.
func (w *Win) Get(r *Rank, target, offset, n int) []int64 {
	bytes := float64(8 * n)
	var bw float64
	if w.targetNode(target) == r.node {
		bw = w.world.cfg.Mem.CopyBandwidth
	} else {
		bw = w.world.cfg.Net.Bandwidth
	}
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp+sim.Time(bytes/bw))
	out := make([]int64, n)
	copy(out, w.data[target][offset:offset+n])
	return out
}

// Put copies vals into the target segment starting at offset.
func (w *Win) Put(r *Rank, target, offset int, vals []int64) {
	bytes := float64(8 * len(vals))
	var bw float64
	if w.targetNode(target) == r.node {
		bw = w.world.cfg.Mem.CopyBandwidth
	} else {
		bw = w.world.cfg.Net.Bandwidth
	}
	w.rmaRound(r, target, w.world.cfg.Mem.SharedWinOp+sim.Time(bytes/bw))
	copy(w.data[target][offset:], vals)
}

// Sync models MPI_Win_sync: the memory-barrier cost that shared-window
// algorithms pay to publish or observe direct stores.
func (w *Win) Sync(r *Rank) {
	r.proc.Sleep(w.world.cfg.Mem.WinSync)
}

// SharedRead performs a direct load from a shared window. Only legal on
// shared windows for ranks on the hosting node; visibility discipline
// (Sync) is the caller's responsibility, as in MPI-3.
func (w *Win) SharedRead(r *Rank, target, offset int) int64 {
	w.checkShared(r, target)
	return w.data[target][offset]
}

// SharedWrite performs a direct store into a shared window.
func (w *Win) SharedWrite(r *Rank, target, offset int, val int64) {
	w.checkShared(r, target)
	w.data[target][offset] = val
}

func (w *Win) checkShared(r *Rank, target int) {
	if !w.shared {
		panic(fmt.Sprintf("mpi: direct access to non-shared window %s", w.name))
	}
	if w.targetNode(target) != r.node {
		panic(fmt.Sprintf("mpi: direct access to %s[%d] from another node", w.name, target))
	}
}
