package workload

// SpecKind documents one spec kind accepted by ParseSpec — the machine-
// readable form of ParseSpec's doc table, served by hdlsd's /v1/workloads
// endpoint for discoverability.
type SpecKind struct {
	// Name is the kind token before the colon (aliases listed separately).
	Name string `json:"name"`
	// Aliases are alternate spellings ParseSpec accepts for this kind.
	Aliases []string `json:"aliases,omitempty"`
	// Params are the key=val parameter names the kind understands.
	Params []string `json:"params"`
	// Example is a complete spec string ready to paste into Config.Workload.
	Example string `json:"example"`
	// Description says what cost distribution the kind generates.
	Description string `json:"description"`
}

// SpecKinds lists every ParseSpec kind in presentation order. The slice is
// freshly allocated per call; callers may reorder or annotate it.
func SpecKinds() []SpecKind {
	return []SpecKind{
		{Name: "constant", Params: []string{"n", "mean"},
			Example:     "constant:n=4096,mean=100e-6",
			Description: "every iteration costs exactly mean seconds (perfectly balanced)"},
		{Name: "uniform", Params: []string{"n", "lo", "hi"},
			Example:     "uniform:n=4096,lo=50e-6,hi=150e-6",
			Description: "iteration costs drawn uniformly from [lo, hi]"},
		{Name: "gaussian", Aliases: []string{"normal"}, Params: []string{"n", "mean", "sigma", "cv"},
			Example:     "gaussian:n=8192,cv=0.5",
			Description: "normally distributed costs, truncated positive; cv sets sigma/mean"},
		{Name: "exponential", Aliases: []string{"exp"}, Params: []string{"n", "mean"},
			Example:     "exponential:n=2048",
			Description: "exponentially distributed costs (heavy right tail)"},
		{Name: "gamma", Params: []string{"n", "shape", "scale"},
			Example:     "gamma:n=4096,shape=0.5",
			Description: "gamma-distributed costs; shape < 1 gives strong irregularity"},
		{Name: "bimodal", Params: []string{"n", "lo", "hi", "frac"},
			Example:     "bimodal:n=2048,frac=0.2",
			Description: "a frac fraction of hot iterations (mean hi) among cold ones (mean lo)"},
		{Name: "increasing", Params: []string{"n", "lo", "hi"},
			Example:     "increasing:n=4096,lo=10e-6,hi=200e-6",
			Description: "linear cost ramp from lo to hi across the iteration space"},
		{Name: "decreasing", Params: []string{"n", "lo", "hi"},
			Example:     "decreasing:n=4096,lo=10e-6,hi=200e-6",
			Description: "linear cost ramp from hi down to lo (adversarial for GSS-like decay)"},
		{Name: "mandelbrot", Aliases: []string{"mandel"}, Params: []string{"scale"},
			Example:     "mandelbrot:scale=8",
			Description: "the paper's Mandelbrot kernel profile at 1/scale size (highly imbalanced)"},
		{Name: "psia", Aliases: []string{"spinimage"}, Params: []string{"scale"},
			Example:     "psia:scale=8",
			Description: "the paper's spin-image (PSIA) kernel profile at 1/scale size (mildly imbalanced)"},
	}
}
