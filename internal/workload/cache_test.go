package workload

import (
	"sync"
	"testing"
)

// TestParseSpecMemoized asserts the (spec, seed) memo returns the identical
// immutable profile, while distinct seeds still get distinct random draws.
func TestParseSpecMemoized(t *testing.T) {
	a, err := ParseSpec("gaussian:n=512,cv=0.4", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("gaussian:n=512,cv=0.4", 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (spec, seed) returned distinct profiles; memo missing")
	}
	c, err := ParseSpec("gaussian:n=512,cv=0.4", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds shared one profile; seed must key the memo")
	}
	if _, err := ParseSpec("nonsense:zzz=1", 1); err == nil {
		t.Error("bad spec accepted")
	}
}

// TestParseSpecConcurrentByteIdentical resolves the same specs from many
// goroutines (run under -race in CI) and checks every result is
// byte-identical to a reference resolution.
func TestParseSpecConcurrentByteIdentical(t *testing.T) {
	specs := []string{
		"gaussian:n=256,cv=0.3", "uniform:n=256", "exponential:n=128",
		"bimodal:n=256", "mandelbrot:scale=64", "psia:scale=256",
	}
	refs := make([]*Profile, len(specs))
	for i, sp := range specs {
		p, err := ParseSpec(sp, 11)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = p
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failure string
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				for i, sp := range specs {
					p, err := ParseSpec(sp, 11)
					if err != nil || p.N() != refs[i].N() {
						mu.Lock()
						failure = sp
						mu.Unlock()
						return
					}
					for k := 0; k < p.N(); k += 17 {
						if p.Cost(k) != refs[i].Cost(k) {
							mu.Lock()
							failure = sp
							mu.Unlock()
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if failure != "" {
		t.Fatalf("%s: concurrent ParseSpec diverged from reference", failure)
	}
}

// TestKernelProfileCachesShareBackingData pins the process-wide kernel
// memos: repeated profile construction must not recompute the escape
// counts / candidate counts.
func TestKernelProfileCachesShareBackingData(t *testing.T) {
	if MandelbrotProfile(64) != MandelbrotProfile(64) {
		t.Error("MandelbrotProfile not memoized")
	}
	if PSIAProfile(256) != PSIAProfile(256) {
		t.Error("PSIAProfile not memoized")
	}
	if MandelbrotProfile(64) == MandelbrotProfile(32) {
		t.Error("distinct scales shared one profile")
	}
}
