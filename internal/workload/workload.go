// Package workload turns applications into iteration cost profiles: for a
// loop of N independent iterations, a Profile knows the reference-core
// execution time of each iteration and answers range sums in O(1) via
// prefix sums. The simulation executors consume profiles; the per-iteration
// costs of the paper's two applications come from the real kernels in
// internal/mandelbrot and internal/spinimage.
//
// Calibration: the paper does not state loop sizes or per-iteration times,
// so profiles are normalized to a target mean iteration cost. The *shape*
// (relative cost of each iteration) always comes from the real computation;
// only the scale is calibrated, as documented in DESIGN.md §1.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/mandelbrot"
	"repro/internal/sim"
	"repro/internal/spinimage"
	"repro/internal/stats"
)

// Profile is an immutable per-iteration cost table with O(1) range sums.
type Profile struct {
	name   string
	costs  []float64
	prefix []float64 // prefix[i] = Σ costs[0..i)

	covOnce sync.Once
	cov     float64
}

// New builds a profile; every cost must be positive.
func New(name string, costs []float64) (*Profile, error) {
	p := &Profile{name: name, costs: costs, prefix: make([]float64, len(costs)+1)}
	for i, c := range costs {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("workload %q: cost[%d] = %v, must be positive and finite", name, i, c)
		}
		p.prefix[i+1] = p.prefix[i] + c
	}
	return p, nil
}

// MustNew is New, panicking on error.
func MustNew(name string, costs []float64) *Profile {
	p, err := New(name, costs)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the workload name.
func (p *Profile) Name() string { return p.name }

// N reports the loop size.
func (p *Profile) N() int { return len(p.costs) }

// Cost returns iteration i's reference-core execution time in seconds.
func (p *Profile) Cost(i int) float64 { return p.costs[i] }

// Range returns the total cost of iterations [a, b) in O(1).
func (p *Profile) Range(a, b int) sim.Time {
	if a < 0 || b > len(p.costs) || a > b {
		panic(fmt.Sprintf("workload %q: Range(%d, %d) out of [0,%d]", p.name, a, b, len(p.costs)))
	}
	return sim.Time(p.prefix[b] - p.prefix[a])
}

// Total returns the serial execution time of the whole loop.
func (p *Profile) Total() sim.Time { return sim.Time(p.prefix[len(p.costs)]) }

// Mean returns the mean iteration cost.
func (p *Profile) Mean() float64 {
	if len(p.costs) == 0 {
		return 0
	}
	return p.prefix[len(p.costs)] / float64(len(p.costs))
}

// CoV returns the coefficient of variation of iteration costs — the
// irregularity measure the DLS literature keys on. The O(N) statistic is
// computed once per profile: sweeps ask for it in every cell.
func (p *Profile) CoV() float64 {
	p.covOnce.Do(func() { p.cov = stats.CoV(p.costs) })
	return p.cov
}

// Costs returns the backing cost slice; callers must not modify it.
func (p *Profile) Costs() []float64 { return p.costs }

// FromCounts converts integer work counts (escape iterations, candidate
// points, ...) into a profile with the given mean iteration cost. Each
// iteration costs base + k·count, where base = baseFrac·meanCost models the
// fixed loop-body overhead and k is solved so the profile mean is exactly
// meanCost. Degenerate all-zero counts yield a constant profile.
func FromCounts(name string, counts []int, meanCost, baseFrac float64) *Profile {
	if meanCost <= 0 {
		panic(fmt.Sprintf("workload %q: meanCost %g must be positive", name, meanCost))
	}
	if baseFrac < 0 || baseFrac >= 1 {
		panic(fmt.Sprintf("workload %q: baseFrac %g out of [0,1)", name, baseFrac))
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	costs := make([]float64, len(counts))
	base := baseFrac * meanCost
	if sum == 0 {
		for i := range costs {
			costs[i] = meanCost
		}
		return MustNew(name, costs)
	}
	meanCount := sum / float64(len(counts))
	k := (meanCost - base) / meanCount
	for i, c := range counts {
		costs[i] = base + k*float64(c)
	}
	return MustNew(name, costs)
}

// ---------------------------------------------------------------- kernels --

// MandelbrotParams are the experiment defaults for the Mandelbrot workload:
// a 1024×1024 grid (2²⁰ iterations) at 143 µs mean iteration cost, chosen so
// per-iteration granularity sits where the paper's SS observations are
// reproducible (see DESIGN.md). Scale divides the row count, preserving the
// mean cost so every overhead-to-granularity ratio is scale-invariant.
func MandelbrotProfile(scale int) *Profile {
	if scale < 1 {
		scale = 1
	}
	return cached(fmt.Sprintf("mandelbrot/%d", scale), func() *Profile {
		p := mandelbrot.Default(1024, 1024/scale)
		return FromCounts(fmt.Sprintf("Mandelbrot-%dx%d", p.Width, p.Height),
			p.EscapeCountsCached(), 143e-6, 0.05)
	})
}

// PSIAProfile builds the PSIA workload: spin-image generation over a torus
// point cloud of 2²²/scale oriented points at 45 µs mean iteration cost
// (≈100 candidate points binned per image at sub-µs each). Iteration cost is proportional
// to the candidate count the grid scan examines for that point's image —
// the real inner-loop trip count. PSIA iterations are *finer* than
// Mandelbrot's (45 µs vs 143 µs), which is why the paper's §5 finds the SS
// scheduling overhead "more visible in PSIA than Mandelbrot".
func PSIAProfile(scale int) *Profile {
	if scale < 1 {
		scale = 1
	}
	return cached(fmt.Sprintf("psia/%d", scale), func() *Profile {
		n := (1 << 22) / scale
		radius := math.Sqrt(674.0 / float64(n)) // targets ≈96 mean candidates
		counts := spinimage.TorusCandidateCounts(n, 2.0, 0.8, 0.02, 20190322, radius)
		return FromCounts(fmt.Sprintf("PSIA-%d", n), counts, 45e-6, 0.10)
	})
}

var profileCache sync.Map

func cached(key string, build func() *Profile) *Profile {
	if v, ok := profileCache.Load(key); ok {
		return v.(*Profile)
	}
	p := build()
	profileCache.Store(key, p)
	return p
}

// -------------------------------------------------------------- synthetic --

// Constant returns n iterations of identical cost.
func Constant(n int, cost float64) *Profile {
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = cost
	}
	return MustNew(fmt.Sprintf("constant-%d", n), costs)
}

// Uniform draws costs uniformly from [lo, hi).
func Uniform(n int, lo, hi float64, seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = lo + (hi-lo)*rng.Float64()
	}
	return MustNew(fmt.Sprintf("uniform-%d", n), costs)
}

// Gaussian draws costs from N(mean, sigma²), truncated at mean/100 so they
// stay positive.
func Gaussian(n int, mean, sigma float64, seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	floor := mean / 100
	for i := range costs {
		c := mean + sigma*rng.NormFloat64()
		if c < floor {
			c = floor
		}
		costs[i] = c
	}
	return MustNew(fmt.Sprintf("gaussian-%d", n), costs)
}

// Exponential draws costs from Exp(1/mean): high variance (CoV = 1), the
// classic model for highly irregular loops.
func Exponential(n int, mean float64, seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = mean * (rng.ExpFloat64() + 1e-6)
	}
	return MustNew(fmt.Sprintf("exponential-%d", n), costs)
}

// Gamma draws costs from a Gamma(shape, scale) distribution (Marsaglia &
// Tsang sampling); shape < 1 gives CoV > 1.
func Gamma(n int, shape, scale float64, seed int64) *Profile {
	if shape <= 0 || scale <= 0 {
		panic("workload: Gamma requires positive shape and scale")
	}
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = gammaSample(rng, shape)*scale + 1e-12
	}
	return MustNew(fmt.Sprintf("gamma-%d", n), costs)
}

func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a)
		return gammaSample(rng, shape+1) * math.Pow(rng.Float64()+1e-300, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Bimodal mixes two Gaussians: frac of iterations around meanHot, the rest
// around meanCold; a model for loops with an expensive kernel subset.
func Bimodal(n int, meanCold, meanHot, frac float64, seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	for i := range costs {
		mean := meanCold
		if rng.Float64() < frac {
			mean = meanHot
		}
		c := mean * (1 + 0.05*rng.NormFloat64())
		if c < meanCold/100 {
			c = meanCold / 100
		}
		costs[i] = c
	}
	return MustNew(fmt.Sprintf("bimodal-%d", n), costs)
}

// Increasing ramps costs linearly from lo to hi across the loop — the
// adversarial case for GSS (big early chunks swallow cheap work).
func Increasing(n int, lo, hi float64) *Profile {
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = lo + (hi-lo)*float64(i)/float64(maxInt(n-1, 1))
	}
	return MustNew(fmt.Sprintf("increasing-%d", n), costs)
}

// Decreasing ramps costs linearly from hi down to lo — the case FAC2
// handles better than GSS, as the paper notes in §2.
func Decreasing(n int, lo, hi float64) *Profile {
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = hi - (hi-lo)*float64(i)/float64(maxInt(n-1, 1))
	}
	return MustNew(fmt.Sprintf("decreasing-%d", n), costs)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
