package workload

import (
	"math"
	"testing"
)

func TestParseSpecKinds(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"constant", 4096},
		{"constant:n=100,mean=2e-6", 100},
		{"uniform:n=512", 512},
		{"gaussian:n=256,mean=50e-6,cv=0.5", 256},
		{"normal:n=256,sigma=10e-6", 256},
		{"exponential:n=128", 128},
		{"exp:n=128,mean=2e-5", 128},
		{"gamma:n=64,shape=0.7", 64},
		{"bimodal:n=300,frac=0.1", 300},
		{"increasing:n=200,lo=1e-6,hi=9e-6", 200},
		{"decreasing:n=200", 200},
	}
	for _, c := range cases {
		p, err := ParseSpec(c.spec, 1)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if p.N() != c.n {
			t.Errorf("ParseSpec(%q): N = %d, want %d", c.spec, p.N(), c.n)
		}
		if p.Total() <= 0 {
			t.Errorf("ParseSpec(%q): non-positive total %v", c.spec, p.Total())
		}
	}
}

func TestParseSpecKernels(t *testing.T) {
	p, err := ParseSpec("mandelbrot:scale=64", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p != MandelbrotProfile(64) {
		t.Error("mandelbrot spec did not hit the kernel profile cache")
	}
	p, err = ParseSpec("psia:scale=64", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p != PSIAProfile(64) {
		t.Error("psia spec did not hit the kernel profile cache")
	}
}

func TestParseSpecDeterministicPerSeed(t *testing.T) {
	a, err := ParseSpec("gaussian:n=128,cv=0.4", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("gaussian:n=128,cv=0.4", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		if a.Cost(i) != b.Cost(i) {
			t.Fatalf("same seed diverged at iteration %d", i)
		}
	}
	c, err := ParseSpec("gaussian:n=128,cv=0.4", 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.N(); i++ {
		if a.Cost(i) != c.Cost(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical profiles")
	}
}

func TestParseSpecRamps(t *testing.T) {
	inc, err := ParseSpec("increasing:n=100", 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ParseSpec("decreasing:n=100", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 100; i++ {
		if inc.Cost(i) < inc.Cost(i-1) {
			t.Fatalf("increasing ramp decreased at %d", i)
		}
		if dec.Cost(i) > dec.Cost(i-1) {
			t.Fatalf("decreasing ramp increased at %d", i)
		}
	}
	if math.Abs(inc.Cost(0)-dec.Cost(99)) > 1e-18 {
		t.Error("ramps are not mirror images at the endpoints")
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"", "unknown", "uniform:lo", "uniform:lo=abc",
		"uniform:n=0", "uniform:mean=-1", "uniform:lo=5,hi=2",
		"gaussian:shape=1", // unknown key for kind
		"constant:lo=1e-6", // unknown key for kind
		"bimodal:frac=1.5", // out of range
		"gamma:shape=-1",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec accepted %q", spec)
		}
	}
}

func TestSpecN(t *testing.T) {
	cases := []struct {
		spec string
		want int
	}{
		{"constant", 4096},
		{"gaussian:n=512,cv=0.5", 512},
		{"bimodal:n=100", 100},
		{"mandelbrot:scale=8", 1024 * 128},
		{"mandelbrot:scale=1", 1024 * 1024},
		{"psia:scale=4", 1 << 20},
	}
	for _, tc := range cases {
		got, err := SpecN(tc.spec)
		if err != nil {
			t.Errorf("SpecN(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("SpecN(%q) = %d, want %d", tc.spec, got, tc.want)
		}
		// SpecN must agree with the profile ParseSpec actually builds.
		p, err := ParseSpec(tc.spec, 1)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if p.N() != got {
			t.Errorf("SpecN(%q) = %d but ParseSpec built n = %d", tc.spec, got, p.N())
		}
	}
	for _, bad := range []string{"", "nosuchkind", "constant:n=-1", "gaussian:n=oops"} {
		if _, err := SpecN(bad); err == nil {
			t.Errorf("SpecN(%q) should fail", bad)
		}
	}
}
