package workload

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// specKey identifies one ParseSpec construction; the seed participates
// because the random synthetic kinds draw from it.
type specKey struct {
	spec string
	seed int64
}

var specCache sync.Map // specKey -> *Profile

// specCacheMax bounds the memo's entry count. CLI sweeps resolve a
// handful of distinct (spec, seed) pairs, but a long-running daemon sees
// client-controlled keys; beyond the bound ParseSpec still works, it just
// stops retaining (profiles are pure functions of the key, so skipping
// the memo changes nothing but speed).
const specCacheMax = 4096

var specCacheLen atomic.Int64

// ParseSpec builds a workload from a compact scenario string of the form
// "kind" or "kind:key=val,key=val". It is the CLI/Config surface of the
// synthetic generators; the two paper kernels are reachable too, so every
// sweep axis accepts one flag.
//
// Kinds and their keys (all costs in seconds; seed comes from the caller):
//
//	constant     n, mean
//	uniform      n, lo, hi            (default lo=mean/2, hi=3·mean/2)
//	gaussian     n, mean, sigma | cv  (default cv=0.3)
//	exponential  n, mean
//	gamma        n, shape, scale      (default shape=0.5, scale=mean/shape)
//	bimodal      n, lo, hi, frac      (cold mean lo, hot mean hi; default
//	                                   lo=mean/2, hi=4·mean, frac=0.2)
//	increasing   n, lo, hi            (linear ramp lo → hi)
//	decreasing   n, lo, hi            (linear ramp hi → lo)
//	mandelbrot   scale                (the paper kernel at 1/scale size)
//	psia         scale
//
// Shared defaults: n=4096, mean=100e-6, scale=8.
//
// Successful parses are memoized process-wide by (spec, seed): profiles are
// immutable, and sweep drivers resolve the same spec in every cell.
func ParseSpec(spec string, seed int64) (*Profile, error) {
	key := specKey{spec: spec, seed: seed}
	if v, ok := specCache.Load(key); ok {
		return v.(*Profile), nil
	}
	p, err := parseSpec(spec, seed)
	if err != nil {
		return nil, err
	}
	if specCacheLen.Load() >= specCacheMax {
		return p, nil // memo full: serve unretained (see specCacheMax)
	}
	if v, loaded := specCache.LoadOrStore(key, p); loaded {
		return v.(*Profile), nil
	}
	specCacheLen.Add(1)
	return p, nil
}

// specParams parses a spec's head: the kind token and its key=val
// parameter map. Shared by parseSpec and SpecN.
func specParams(spec string) (string, map[string]float64, error) {
	kind, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	kind = strings.ToLower(strings.TrimSpace(kind))
	if kind == "" {
		return "", nil, fmt.Errorf("workload: empty spec")
	}
	kv := map[string]float64{}
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				return "", nil, fmt.Errorf("workload: spec %q: bad parameter %q (want key=val)", spec, part)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return "", nil, fmt.Errorf("workload: spec %q: parameter %q: %v", spec, part, err)
			}
			kv[strings.ToLower(strings.TrimSpace(k))] = f
		}
	}
	return kind, kv, nil
}

// SpecN reports the iteration count a spec would produce, without
// building the profile (no cost-slice allocation). Services use it to
// bound request sizes before ParseSpec commits memory; parameter errors
// the full parse would catch later (bad lo/hi etc.) are not detected here.
func SpecN(spec string) (int, error) {
	kind, kv, err := specParams(spec)
	if err != nil {
		return 0, err
	}
	get := func(key string, def float64) float64 {
		if v, ok := kv[key]; ok {
			return v
		}
		return def
	}
	switch kind {
	case "mandelbrot", "mandel":
		scale := int(get("scale", 8))
		if scale < 1 {
			scale = 1
		}
		return 1024 * (1024 / scale), nil
	case "psia", "spinimage":
		scale := int(get("scale", 8))
		if scale < 1 {
			scale = 1
		}
		return (1 << 22) / scale, nil
	case "constant", "uniform", "gaussian", "normal", "exponential", "exp",
		"gamma", "bimodal", "increasing", "decreasing":
		n := int(get("n", 4096))
		if n <= 0 {
			return 0, fmt.Errorf("workload: spec %q: n = %d, must be positive", spec, n)
		}
		return n, nil
	}
	return 0, fmt.Errorf("workload: unknown kind %q", kind)
}

func parseSpec(spec string, seed int64) (*Profile, error) {
	kind, kv, err := specParams(spec)
	if err != nil {
		return nil, err
	}
	known := func(keys ...string) error {
		for k := range kv {
			ok := false
			for _, want := range keys {
				if k == want {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("workload: spec %q: unknown parameter %q (valid: %s)",
					spec, k, strings.Join(keys, ", "))
			}
		}
		return nil
	}
	get := func(key string, def float64) float64 {
		if v, ok := kv[key]; ok {
			return v
		}
		return def
	}
	mean := get("mean", 100e-6)
	n := int(get("n", 4096))
	if n <= 0 {
		return nil, fmt.Errorf("workload: spec %q: n = %d, must be positive", spec, n)
	}
	if mean <= 0 {
		return nil, fmt.Errorf("workload: spec %q: mean = %g, must be positive", spec, mean)
	}

	switch kind {
	case "constant":
		if err := known("n", "mean"); err != nil {
			return nil, err
		}
		return Constant(n, mean), nil
	case "uniform":
		if err := known("n", "mean", "lo", "hi"); err != nil {
			return nil, err
		}
		lo, hi := get("lo", mean/2), get("hi", 1.5*mean)
		if lo <= 0 || hi <= lo {
			return nil, fmt.Errorf("workload: spec %q: need 0 < lo < hi (got lo=%g hi=%g)", spec, lo, hi)
		}
		return Uniform(n, lo, hi, seed), nil
	case "gaussian", "normal":
		if err := known("n", "mean", "sigma", "cv"); err != nil {
			return nil, err
		}
		sigma := get("sigma", get("cv", 0.3)*mean)
		if sigma < 0 {
			return nil, fmt.Errorf("workload: spec %q: sigma = %g, must be non-negative", spec, sigma)
		}
		return Gaussian(n, mean, sigma, seed), nil
	case "exponential", "exp":
		if err := known("n", "mean"); err != nil {
			return nil, err
		}
		return Exponential(n, mean, seed), nil
	case "gamma":
		if err := known("n", "mean", "shape", "scale"); err != nil {
			return nil, err
		}
		shape := get("shape", 0.5)
		if shape <= 0 {
			return nil, fmt.Errorf("workload: spec %q: shape = %g, must be positive", spec, shape)
		}
		return Gamma(n, shape, get("scale", mean/shape), seed), nil
	case "bimodal":
		if err := known("n", "mean", "lo", "hi", "frac"); err != nil {
			return nil, err
		}
		lo, hi, frac := get("lo", mean/2), get("hi", 4*mean), get("frac", 0.2)
		if lo <= 0 || hi <= lo || frac < 0 || frac > 1 {
			return nil, fmt.Errorf("workload: spec %q: need 0 < lo < hi and frac in [0,1] (got lo=%g hi=%g frac=%g)",
				spec, lo, hi, frac)
		}
		return Bimodal(n, lo, hi, frac, seed), nil
	case "increasing":
		if err := known("n", "mean", "lo", "hi"); err != nil {
			return nil, err
		}
		lo, hi := get("lo", mean/5), get("hi", 9*mean/5)
		if lo <= 0 || hi <= lo {
			return nil, fmt.Errorf("workload: spec %q: need 0 < lo < hi (got lo=%g hi=%g)", spec, lo, hi)
		}
		return Increasing(n, lo, hi), nil
	case "decreasing":
		if err := known("n", "mean", "lo", "hi"); err != nil {
			return nil, err
		}
		lo, hi := get("lo", mean/5), get("hi", 9*mean/5)
		if lo <= 0 || hi <= lo {
			return nil, fmt.Errorf("workload: spec %q: need 0 < lo < hi (got lo=%g hi=%g)", spec, lo, hi)
		}
		return Decreasing(n, lo, hi), nil
	case "mandelbrot", "mandel":
		if err := known("scale"); err != nil {
			return nil, err
		}
		return MandelbrotProfile(int(get("scale", 8))), nil
	case "psia", "spinimage":
		if err := known("scale"); err != nil {
			return nil, err
		}
		return PSIAProfile(int(get("scale", 8))), nil
	}
	return nil, fmt.Errorf("workload: unknown kind %q (constant, uniform, gaussian, exponential, gamma, bimodal, increasing, decreasing, mandelbrot, psia)", kind)
}
