package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNewRejectsBadCosts(t *testing.T) {
	for _, costs := range [][]float64{{1, 0, 1}, {1, -2}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := New("bad", costs); err == nil {
			t.Fatalf("New accepted %v", costs)
		}
	}
}

func TestRangeSums(t *testing.T) {
	p := MustNew("t", []float64{1, 2, 3, 4})
	cases := []struct {
		a, b int
		want sim.Time
	}{
		{0, 4, 10}, {0, 0, 0}, {1, 3, 5}, {3, 4, 4}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := p.Range(c.a, c.b); got != c.want {
			t.Fatalf("Range(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if p.Total() != 10 {
		t.Fatalf("Total = %v", p.Total())
	}
	if p.Mean() != 2.5 {
		t.Fatalf("Mean = %v", p.Mean())
	}
}

func TestRangePanicsOutOfBounds(t *testing.T) {
	p := MustNew("t", []float64{1, 2})
	for _, c := range [][2]int{{-1, 1}, {0, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Range(%d,%d) did not panic", c[0], c[1])
				}
			}()
			p.Range(c[0], c[1])
		}()
	}
}

func TestFromCountsCalibration(t *testing.T) {
	counts := []int{0, 10, 20, 30}
	p := FromCounts("c", counts, 100e-6, 0.1)
	if math.Abs(p.Mean()-100e-6) > 1e-12 {
		t.Fatalf("mean = %v, want 100µs", p.Mean())
	}
	// Base floor: the zero-count iteration costs exactly baseFrac·mean.
	if got := p.Cost(0); math.Abs(got-10e-6) > 1e-12 {
		t.Fatalf("base cost = %v, want 10µs", got)
	}
	// Costs are affine in counts.
	if d := (p.Cost(3) - p.Cost(2)) - (p.Cost(2) - p.Cost(1)); math.Abs(d) > 1e-15 {
		t.Fatal("costs not affine in counts")
	}
	// Degenerate all-zero counts: constant profile at the mean.
	z := FromCounts("z", []int{0, 0, 0}, 5e-6, 0.2)
	for i := 0; i < 3; i++ {
		if z.Cost(i) != 5e-6 {
			t.Fatalf("zero-count profile cost = %v", z.Cost(i))
		}
	}
}

func TestMandelbrotProfile(t *testing.T) {
	p := MandelbrotProfile(64) // 1024×16 grid, fast
	if p.N() != 1024*16 {
		t.Fatalf("N = %d, want %d", p.N(), 1024*16)
	}
	if math.Abs(p.Mean()-143e-6) > 1e-9 {
		t.Fatalf("mean = %v, want 143µs", p.Mean())
	}
	if cov := p.CoV(); cov < 0.8 {
		t.Fatalf("Mandelbrot CoV = %.2f, want high imbalance", cov)
	}
	// Cached: the same pointer comes back.
	if MandelbrotProfile(64) != p {
		t.Fatal("profile cache miss on identical parameters")
	}
}

func TestPSIAProfile(t *testing.T) {
	p := PSIAProfile(64) // 32768 points
	if p.N() != (1<<22)/64 {
		t.Fatalf("N = %d", p.N())
	}
	if math.Abs(p.Mean()-45e-6) > 1e-9 {
		t.Fatalf("mean = %v, want 45µs", p.Mean())
	}
	cov := p.CoV()
	if cov <= 0.01 || cov >= 1.0 {
		t.Fatalf("PSIA CoV = %.3f, want mild imbalance", cov)
	}
}

func TestPSIALessImbalancedThanMandelbrot(t *testing.T) {
	// The paper's §5 relies on this ordering.
	m := MandelbrotProfile(64)
	p := PSIAProfile(64)
	if p.CoV() >= m.CoV() {
		t.Fatalf("PSIA CoV %.2f not below Mandelbrot CoV %.2f", p.CoV(), m.CoV())
	}
}

func TestSyntheticProfiles(t *testing.T) {
	n := 5000
	c := Constant(n, 2e-6)
	if c.CoV() > 1e-9 || math.Abs(float64(c.Total())-float64(n)*2e-6) > 1e-12 {
		t.Fatalf("constant profile wrong: cov=%v total=%v", c.CoV(), c.Total())
	}
	u := Uniform(n, 1e-6, 3e-6, 1)
	if m := u.Mean(); m < 1.8e-6 || m > 2.2e-6 {
		t.Fatalf("uniform mean = %v", m)
	}
	g := Gaussian(n, 10e-6, 2e-6, 1)
	if m := g.Mean(); m < 9e-6 || m > 11e-6 {
		t.Fatalf("gaussian mean = %v", m)
	}
	e := Exponential(n, 5e-6, 1)
	if cov := e.CoV(); cov < 0.8 || cov > 1.2 {
		t.Fatalf("exponential CoV = %v, want ≈1", cov)
	}
	ga := Gamma(n, 0.5, 1e-6, 1)
	if cov := ga.CoV(); cov < 1.0 {
		t.Fatalf("gamma(0.5) CoV = %v, want > 1", cov)
	}
	b := Bimodal(n, 1e-6, 100e-6, 0.1, 1)
	if cov := b.CoV(); cov < 1.5 {
		t.Fatalf("bimodal CoV = %v, want large", cov)
	}
}

func TestIncreasingDecreasing(t *testing.T) {
	inc := Increasing(100, 1e-6, 9e-6)
	dec := Decreasing(100, 1e-6, 9e-6)
	closeTo := func(a, b float64) bool { return math.Abs(a-b) < 1e-15 }
	if !closeTo(inc.Cost(0), 1e-6) || !closeTo(inc.Cost(99), 9e-6) {
		t.Fatalf("increasing endpoints: %v, %v", inc.Cost(0), inc.Cost(99))
	}
	if !closeTo(dec.Cost(0), 9e-6) || !closeTo(dec.Cost(99), 1e-6) {
		t.Fatalf("decreasing endpoints: %v, %v", dec.Cost(0), dec.Cost(99))
	}
	for i := 1; i < 100; i++ {
		if inc.Cost(i) < inc.Cost(i-1) || dec.Cost(i) > dec.Cost(i-1) {
			t.Fatal("ramp not monotone")
		}
	}
	// Mirror images: same total.
	if math.Abs(float64(inc.Total()-dec.Total())) > 1e-15 {
		t.Fatalf("totals differ: %v vs %v", inc.Total(), dec.Total())
	}
}

func TestGammaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma accepted non-positive shape")
		}
	}()
	Gamma(10, 0, 1, 1)
}

// Property: Range(a,b) always equals the direct sum, and Range(0,N) = Total.
func TestQuickPrefixSumConsistency(t *testing.T) {
	f := func(seed int64, nRaw uint8, aRaw, bRaw uint8) bool {
		n := int(nRaw%100) + 1
		p := Uniform(n, 1e-6, 5e-6, seed)
		a := int(aRaw) % (n + 1)
		b := int(bRaw) % (n + 1)
		if a > b {
			a, b = b, a
		}
		var direct float64
		for i := a; i < b; i++ {
			direct += p.Cost(i)
		}
		return math.Abs(float64(p.Range(a, b))-direct) < 1e-12 &&
			math.Abs(float64(p.Range(0, n)-p.Total())) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRange(b *testing.B) {
	p := Uniform(1<<20, 1e-6, 3e-6, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Range(i%1000, 1000+i%100000)
	}
}
