package spinimage

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Fatalf("Dot = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
	n := (Vec3{0, 0, 9}).Normalize()
	if n != (Vec3{0, 0, 1}) {
		t.Fatalf("Normalize = %v", n)
	}
	if z := (Vec3{}).Normalize(); z != (Vec3{}) {
		t.Fatal("Normalize(0) changed the zero vector")
	}
}

func TestSphereSampling(t *testing.T) {
	c := Sphere(1000, 0, 1)
	if c.N() != 1000 {
		t.Fatalf("N = %d", c.N())
	}
	for i, p := range c.Points {
		if r := p.Norm(); math.Abs(r-1) > 1e-9 {
			t.Fatalf("point %d radius %v, want 1 (no noise)", i, r)
		}
		if math.Abs(c.Normals[i].Norm()-1) > 1e-9 {
			t.Fatalf("normal %d not unit", i)
		}
	}
	// With noise, radii spread around 1.
	noisy := Sphere(1000, 0.1, 1)
	var lo, hi float64 = 2, 0
	for _, p := range noisy.Points {
		r := p.Norm()
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo > 0.96 || hi < 1.04 {
		t.Fatalf("noise did not spread radii: [%v, %v]", lo, hi)
	}
}

func TestTorusSampling(t *testing.T) {
	c := Torus(2000, 2.0, 0.5, 0, 1)
	for i, p := range c.Points {
		// Distance from the torus ring must equal the minor radius.
		ring := math.Hypot(p.X, p.Y) - 2.0
		d := math.Hypot(ring, p.Z)
		if math.Abs(d-0.5) > 1e-9 {
			t.Fatalf("point %d off torus surface by %v", i, d-0.5)
		}
		if math.Abs(c.Normals[i].Norm()-1) > 1e-9 {
			t.Fatalf("normal %d not unit", i)
		}
	}
}

func TestTwoSpheresSplit(t *testing.T) {
	c := TwoSpheres(1000, 0, 3)
	if c.N() != 1000 {
		t.Fatalf("N = %d", c.N())
	}
	near, far := 0, 0
	for _, p := range c.Points {
		if p.X > 1.2 {
			far++
		} else {
			near++
		}
	}
	if near != 700 || far != 300 {
		t.Fatalf("split = %d/%d, want 700/300", near, far)
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(16, 0.05)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{ImageWidth: 0, BinSize: 0.1, SupportAngle: 1},
		{ImageWidth: 8, BinSize: 0, SupportAngle: 1},
		{ImageWidth: 8, BinSize: 0.1, SupportAngle: 0},
		{ImageWidth: 8, BinSize: 0.1, SupportAngle: 4},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad[%d] accepted", i)
		}
	}
}

func TestNewGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(&Cloud{}, DefaultParams(8, 0.1)); err == nil {
		t.Fatal("empty cloud accepted")
	}
	c := Sphere(10, 0, 1)
	c.Normals = c.Normals[:5]
	if _, err := NewGenerator(c, DefaultParams(8, 0.1)); err == nil {
		t.Fatal("mismatched normals accepted")
	}
	c2 := Sphere(10, 0, 1)
	if _, err := NewGenerator(c2, Params{ImageWidth: -1, BinSize: 1, SupportAngle: 1}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestSpinImageCapturesNeighbours(t *testing.T) {
	c := Sphere(4000, 0, 7)
	p := DefaultParams(8, 0.02) // support radius 0.16
	p.SupportAngle = math.Pi    // keep all normals
	g, err := NewGenerator(c, p)
	if err != nil {
		t.Fatal(err)
	}
	img := g.Generate(100)
	if img.Width != 8 || len(img.Bins) != 64 {
		t.Fatalf("image shape %dx%d", img.Width, len(img.Bins))
	}
	if img.Sum() <= 0 {
		t.Fatal("empty spin image on a dense sphere")
	}
	// Mass must not exceed the number of candidates (bilinear weights sum ≤ 1
	// per contributor, < 1 only at the image border).
	if img.Sum() > float64(g.SupportCount(100)) {
		t.Fatalf("image mass %v exceeds candidate count %d", img.Sum(), g.SupportCount(100))
	}
	for i, b := range img.Bins {
		if b < 0 {
			t.Fatalf("negative bin %d", i)
		}
	}
}

func TestSupportAngleFilters(t *testing.T) {
	// Support radius 1.2 on a unit sphere spans ≈74° of normal deviation,
	// so a 30° support angle must drop contributors.
	c := TwoSpheres(4000, 0, 9)
	wide := DefaultParams(8, 0.15)
	wide.SupportAngle = math.Pi
	narrow := wide
	narrow.SupportAngle = math.Pi / 6
	gw, _ := NewGenerator(c, wide)
	gn, _ := NewGenerator(c, narrow)
	wideSum, narrowSum := 0.0, 0.0
	for i := 0; i < 50; i++ {
		wideSum += gw.Generate(i).Sum()
		narrowSum += gn.Generate(i).Sum()
	}
	if narrowSum >= wideSum {
		t.Fatalf("support-angle filter did not reduce mass: %v vs %v", narrowSum, wideSum)
	}
}

func TestSphereSymmetryOfWork(t *testing.T) {
	// On a uniform sphere, per-point support counts are nearly equal — the
	// "PSIA has less load imbalance" property.
	c := Sphere(20000, 0, 11)
	counts := CandidateCounts(c.Points, 0.15)
	xs := make([]float64, len(counts))
	for i, v := range counts {
		xs[i] = float64(v)
	}
	if cov := stats.CoV(xs); cov > 0.5 {
		t.Fatalf("sphere candidate-count CoV = %.2f, want small", cov)
	}
}

func TestCandidateCountsMatchGeneratorScan(t *testing.T) {
	c := Torus(3000, 2, 0.6, 0, 5)
	radius := 0.3
	counts := CandidateCounts(c.Points, radius)
	p := Params{ImageWidth: 4, BinSize: radius / 4, SupportAngle: math.Pi}
	g, err := NewGenerator(c, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i += 211 {
		if got, want := g.SupportCount(i), counts[i]; got != want {
			t.Fatalf("point %d: generator scans %d, CandidateCounts says %d", i, got, want)
		}
	}
}

func TestCandidateCountsTorusSpread(t *testing.T) {
	// Torus sampling (constant-rate in parameter space) is denser on the
	// inner rim: moderate but nonzero spread — PSIA's workload character.
	c := Torus(50000, 2, 0.8, 0.02, 13)
	counts := CandidateCounts(c.Points, math.Sqrt(674.0/50000))
	xs := make([]float64, len(counts))
	for i, v := range counts {
		xs[i] = float64(v)
	}
	cov := stats.CoV(xs)
	if cov < 0.05 || cov > 1.0 {
		t.Fatalf("torus candidate CoV = %.3f, want moderate (0.05..1.0)", cov)
	}
}

func TestCandidateCountsEmpty(t *testing.T) {
	if CandidateCounts(nil, 1) != nil {
		t.Fatal("CandidateCounts(nil) should be nil")
	}
}

func TestImageWritePGM(t *testing.T) {
	im := Image{Width: 2, Bins: []float32{0, 1, 2, 4}}
	var buf bytes.Buffer
	if err := im.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	want := append([]byte("P5\n2 2\n255\n"), 0, 63, 127, 255)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("PGM bytes = %v, want %v", buf.Bytes(), want)
	}
	// All-zero image must not divide by zero.
	zero := Image{Width: 1, Bins: []float32{0}}
	buf.Reset()
	if err := zero.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	c := Sphere(20000, 0.01, 1)
	g, err := NewGenerator(c, DefaultParams(16, 0.01))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(i % c.N())
	}
}

func BenchmarkCandidateCounts(b *testing.B) {
	c := Torus(100000, 2, 0.8, 0.02, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CandidateCounts(c.Points, 0.08)
	}
}
