// Package spinimage implements spin-image generation (Johnson, 1997), the
// kernel of PSIA — the paper's second application. A spin image is a 2D
// histogram accumulated around an oriented point p with normal n: every
// neighbouring point x within the support region contributes to the bin at
//
//	α = √(‖x−p‖² − (n·(x−p))²)   (radial distance)
//	β = n·(x−p)                   (signed axial distance)
//
// One loop iteration of PSIA generates the spin image of one oriented
// point; its cost is proportional to the number of points inside the
// support region. On a surface sampled roughly uniformly, that count varies
// only moderately between points — which is why PSIA exhibits far less load
// imbalance than Mandelbrot, the property the paper's §5 leans on.
package spinimage

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
)

// Vec3 is a 3D vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a − b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Scale returns s·a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Norm returns ‖a‖.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a/‖a‖ (zero vector unchanged).
func (a Vec3) Normalize() Vec3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Cloud is an oriented point cloud: surface samples with unit normals.
type Cloud struct {
	Points  []Vec3
	Normals []Vec3
}

// N reports the number of oriented points.
func (c *Cloud) N() int { return len(c.Points) }

// Sphere samples n points on a unit sphere with the given surface noise
// amplitude; normals point radially.
func Sphere(n int, noise float64, seed int64) *Cloud {
	rng := rand.New(rand.NewSource(seed))
	c := &Cloud{Points: make([]Vec3, n), Normals: make([]Vec3, n)}
	for i := 0; i < n; i++ {
		// Fibonacci-style lattice keeps sampling near-uniform and, like a
		// real scanned mesh, spatially coherent in index order.
		z := 1 - 2*(float64(i)+0.5)/float64(n)
		r := math.Sqrt(1 - z*z)
		phi := math.Pi * (1 + math.Sqrt(5)) * float64(i)
		dir := Vec3{r * math.Cos(phi), r * math.Sin(phi), z}
		rad := 1 + noise*(rng.Float64()-0.5)
		c.Points[i] = dir.Scale(rad)
		c.Normals[i] = dir
	}
	return c
}

// Torus samples n points on a torus with major radius R and minor radius r.
// The non-uniform curvature yields a wider neighbour-count spread than the
// sphere, useful for imbalance experiments.
func Torus(n int, R, r float64, noise float64, seed int64) *Cloud {
	rng := rand.New(rand.NewSource(seed))
	c := &Cloud{Points: make([]Vec3, n), Normals: make([]Vec3, n)}
	golden := math.Pi * (1 + math.Sqrt(5))
	for i := 0; i < n; i++ {
		u := 2 * math.Pi * (float64(i) + 0.5) / float64(n) * math.Sqrt(float64(n))
		v := golden * float64(i)
		cu, su := math.Cos(u), math.Sin(u)
		cv, sv := math.Cos(v), math.Sin(v)
		rr := r * (1 + noise*(rng.Float64()-0.5))
		c.Points[i] = Vec3{(R + rr*cv) * cu, (R + rr*cv) * su, rr * sv}
		c.Normals[i] = Vec3{cv * cu, cv * su, sv}
	}
	return c
}

// TwoSpheres samples an uneven dumbbell: 70% of points on a unit sphere at
// the origin and 30% on a half-radius sphere offset on x. Its bimodal
// density is the stress case for neighbour-count variance.
func TwoSpheres(n int, noise float64, seed int64) *Cloud {
	nA := n * 7 / 10
	a := Sphere(nA, noise, seed)
	b := Sphere(n-nA, noise, seed+1)
	for i := range b.Points {
		b.Points[i] = b.Points[i].Scale(0.5).Add(Vec3{X: 2.0})
	}
	a.Points = append(a.Points, b.Points...)
	a.Normals = append(a.Normals, b.Normals...)
	return a
}

// Params configures spin-image generation.
type Params struct {
	// ImageWidth is the number of bins per image axis (images are square).
	ImageWidth int
	// BinSize is the world-space width of one bin.
	BinSize float64
	// SupportAngle, in radians, discards contributors whose normals deviate
	// from the oriented point's normal by more than this angle (Johnson's
	// support-angle filter). Pi disables the filter.
	SupportAngle float64
}

// DefaultParams returns Johnson-style parameters sized to the cloud: the
// support radius (ImageWidth × BinSize) covers a moderate neighbourhood.
func DefaultParams(imageWidth int, binSize float64) Params {
	return Params{ImageWidth: imageWidth, BinSize: binSize, SupportAngle: math.Pi / 3}
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	if p.ImageWidth <= 0 {
		return fmt.Errorf("spinimage: ImageWidth = %d must be positive", p.ImageWidth)
	}
	if p.BinSize <= 0 {
		return fmt.Errorf("spinimage: BinSize = %g must be positive", p.BinSize)
	}
	if p.SupportAngle <= 0 || p.SupportAngle > math.Pi {
		return fmt.Errorf("spinimage: SupportAngle = %g out of (0, π]", p.SupportAngle)
	}
	return nil
}

// SupportRadius is the world-space radius of the support cylinder.
func (p *Params) SupportRadius() float64 { return float64(p.ImageWidth) * p.BinSize }

// Image is one spin image: a row-major ImageWidth×ImageWidth bin grid.
type Image struct {
	Width int
	Bins  []float32
}

// Generator builds spin images over a cloud using a uniform spatial grid
// for neighbour lookup, which is what makes generating hundreds of
// thousands of images tractable.
type Generator struct {
	cloud  *Cloud
	params Params
	grid   *grid
}

// NewGenerator indexes the cloud.
func NewGenerator(c *Cloud, p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if c.N() == 0 {
		return nil, fmt.Errorf("spinimage: empty cloud")
	}
	if len(c.Points) != len(c.Normals) {
		return nil, fmt.Errorf("spinimage: %d points vs %d normals", len(c.Points), len(c.Normals))
	}
	return &Generator{cloud: c, params: p, grid: buildGrid(c.Points, p.SupportRadius())}, nil
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.params }

// Cloud returns the indexed cloud.
func (g *Generator) Cloud() *Cloud { return g.cloud }

// Generate computes the spin image of oriented point i — the body of one
// PSIA loop iteration.
func (g *Generator) Generate(i int) Image {
	p := g.params
	w := p.ImageWidth
	img := Image{Width: w, Bins: make([]float32, w*w)}
	base := g.cloud.Points[i]
	n := g.cloud.Normals[i]
	cosSupport := math.Cos(p.SupportAngle)
	radius := p.SupportRadius()
	halfHeight := radius / 2

	g.grid.visit(base, radius, func(j int) {
		x := g.cloud.Points[j]
		if g.cloud.Normals[j].Dot(n) < cosSupport {
			return
		}
		d := x.Sub(base)
		beta := n.Dot(d)
		if beta < -halfHeight || beta >= halfHeight {
			return
		}
		alpha2 := d.Dot(d) - beta*beta
		if alpha2 < 0 {
			alpha2 = 0
		}
		alpha := math.Sqrt(alpha2)
		if alpha >= radius {
			return
		}
		// Bilinear binning as in Johnson's thesis.
		fa := alpha / p.BinSize
		fb := (halfHeight - beta) / p.BinSize
		ia, ib := int(fa), int(fb)
		da, db := float32(fa-float64(ia)), float32(fb-float64(ib))
		deposit := func(bx, by int, wgt float32) {
			if bx >= 0 && bx < w && by >= 0 && by < w {
				img.Bins[by*w+bx] += wgt
			}
		}
		deposit(ia, ib, (1-da)*(1-db))
		deposit(ia+1, ib, da*(1-db))
		deposit(ia, ib+1, (1-da)*db)
		deposit(ia+1, ib+1, da*db)
	})
	return img
}

// SupportCount returns the number of points the support region of point i
// examines; this is the per-iteration work driver used to build the PSIA
// cost profile without materializing two million images.
func (g *Generator) SupportCount(i int) int {
	base := g.cloud.Points[i]
	radius := g.params.SupportRadius()
	count := 0
	g.grid.visit(base, radius, func(int) { count++ })
	return count
}

// SupportCounts computes SupportCount for every point.
func (g *Generator) SupportCounts() []int {
	out := make([]int, g.cloud.N())
	for i := range out {
		out[i] = g.SupportCount(i)
	}
	return out
}

// Sum returns the total mass of an image.
func (im Image) Sum() float64 {
	var s float64
	for _, b := range im.Bins {
		s += float64(b)
	}
	return s
}

// WritePGM renders the image to a binary PGM, normalized to its peak bin.
func (im Image) WritePGM(w io.Writer) error {
	peak := float32(0)
	for _, b := range im.Bins {
		if b > peak {
			peak = b
		}
	}
	px := make([]uint8, len(im.Bins))
	for i, b := range im.Bins {
		if peak > 0 {
			px[i] = uint8(255 * b / peak)
		}
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", im.Width, im.Width); err != nil {
		return err
	}
	_, err := w.Write(px)
	return err
}

// CandidateCounts returns, for every point, the number of candidate points
// a grid-accelerated implementation scans when generating that point's spin
// image: the population of the 27-cell neighbourhood at cell size = support
// radius. This is the honest per-iteration work measure (the inner loop of
// PSIA runs once per candidate) and is computable in O(N) without building
// per-cell point lists, which keeps multi-million-point cost profiles cheap.
func CandidateCounts(points []Vec3, radius float64) []int {
	if len(points) == 0 {
		return nil
	}
	min, max := points[0], points[0]
	for _, p := range points[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		min.Z = math.Min(min.Z, p.Z)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
		max.Z = math.Max(max.Z, p.Z)
	}
	nx := int((max.X-min.X)/radius) + 1
	ny := int((max.Y-min.Y)/radius) + 1
	nz := int((max.Z-min.Z)/radius) + 1
	counts := make([]int32, nx*ny*nz)
	coord := func(p Vec3) (int, int, int) {
		return clamp(int((p.X-min.X)/radius), nx),
			clamp(int((p.Y-min.Y)/radius), ny),
			clamp(int((p.Z-min.Z)/radius), nz)
	}
	for _, p := range points {
		cx, cy, cz := coord(p)
		counts[(cz*ny+cy)*nx+cx]++
	}
	out := make([]int, len(points))
	for i, p := range points {
		cx, cy, cz := coord(p)
		total := 0
		for z := cz - 1; z <= cz+1; z++ {
			if z < 0 || z >= nz {
				continue
			}
			for y := cy - 1; y <= cy+1; y++ {
				if y < 0 || y >= ny {
					continue
				}
				row := (z*ny + y) * nx
				for x := cx - 1; x <= cx+1; x++ {
					if x < 0 || x >= nx {
						continue
					}
					total += int(counts[row+x])
				}
			}
		}
		out[i] = total
	}
	return out
}

// torusCountsKey identifies one TorusCandidateCounts computation.
type torusCountsKey struct {
	n        int
	major, r float64
	noise    float64
	seed     int64
	radius   float64
}

var torusCountsCache sync.Map // torusCountsKey -> []int

// TorusCandidateCounts returns CandidateCounts over a Torus cloud from a
// process-wide memo: the PSIA cost profile is derived from the same cloud
// in every sweep cell, and both the cloud and its counts are pure functions
// of the parameters. Callers must not modify the returned slice.
func TorusCandidateCounts(n int, major, r, noise float64, seed int64, radius float64) []int {
	key := torusCountsKey{n: n, major: major, r: r, noise: noise, seed: seed, radius: radius}
	if v, ok := torusCountsCache.Load(key); ok {
		return v.([]int)
	}
	cloud := Torus(n, major, r, noise, seed)
	counts := CandidateCounts(cloud.Points, radius)
	if v, loaded := torusCountsCache.LoadOrStore(key, counts); loaded {
		return v.([]int)
	}
	return counts
}

// grid is a uniform spatial hash over the cloud's bounding box.
type grid struct {
	min        Vec3
	cell       float64
	nx, ny, nz int
	cells      [][]int32
}

func buildGrid(points []Vec3, cell float64) *grid {
	g := &grid{cell: cell}
	min, max := points[0], points[0]
	for _, p := range points[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		min.Z = math.Min(min.Z, p.Z)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
		max.Z = math.Max(max.Z, p.Z)
	}
	g.min = min
	g.nx = int((max.X-min.X)/cell) + 1
	g.ny = int((max.Y-min.Y)/cell) + 1
	g.nz = int((max.Z-min.Z)/cell) + 1
	g.cells = make([][]int32, g.nx*g.ny*g.nz)
	for i, p := range points {
		idx := g.index(p)
		g.cells[idx] = append(g.cells[idx], int32(i))
	}
	return g
}

func (g *grid) coord(p Vec3) (int, int, int) {
	cx := int((p.X - g.min.X) / g.cell)
	cy := int((p.Y - g.min.Y) / g.cell)
	cz := int((p.Z - g.min.Z) / g.cell)
	return clamp(cx, g.nx), clamp(cy, g.ny), clamp(cz, g.nz)
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

func (g *grid) index(p Vec3) int {
	cx, cy, cz := g.coord(p)
	return (cz*g.ny+cy)*g.nx + cx
}

// visit calls fn for every point whose cell intersects the cube of the
// given radius around center. Candidates, not exact sphere membership —
// exactly the set a real implementation would scan.
func (g *grid) visit(center Vec3, radius float64, fn func(i int)) {
	r := int(math.Ceil(radius / g.cell))
	cx, cy, cz := g.coord(center)
	for z := cz - r; z <= cz+r; z++ {
		if z < 0 || z >= g.nz {
			continue
		}
		for y := cy - r; y <= cy+r; y++ {
			if y < 0 || y >= g.ny {
				continue
			}
			row := (z*g.ny + y) * g.nx
			for x := cx - r; x <= cx+r; x++ {
				if x < 0 || x >= g.nx {
					continue
				}
				for _, i := range g.cells[row+x] {
					fn(int(i))
				}
			}
		}
	}
}
