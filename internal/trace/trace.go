// Package trace records and validates per-chunk execution traces of the
// scheduling executors: which worker executed which iteration range when.
// Traces drive the ASCII Gantt views (the reproduction of the paper's
// Figures 2 and 3), CSV export, and the executor correctness checks (exact
// coverage, no temporal overlap per core).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// KindExec is the execution of an iteration range.
	KindExec Kind = iota
	// KindSchedGlobal is a global-queue (inter-node) scheduling operation.
	KindSchedGlobal
	// KindSchedLocal is a local-queue or OpenMP-runtime scheduling operation.
	KindSchedLocal
	// KindBarrier is time spent blocked in an implicit or explicit barrier.
	KindBarrier
)

func (k Kind) String() string {
	switch k {
	case KindExec:
		return "exec"
	case KindSchedGlobal:
		return "sched-global"
	case KindSchedLocal:
		return "sched-local"
	case KindBarrier:
		return "barrier"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one traced interval on one worker.
type Event struct {
	Worker     int // global worker index
	Node       int
	Kind       Kind
	Start, End sim.Time
	IterStart  int // for KindExec: [IterStart, IterEnd)
	IterEnd    int
}

// Trace is an append-only event log.
type Trace struct {
	Workers int
	Events  []Event
}

// New creates a trace for the given number of workers.
func New(workers int) *Trace { return &Trace{Workers: workers} }

// Add appends an event.
func (t *Trace) Add(ev Event) { t.Events = append(t.Events, ev) }

// ExecEvents returns only the execution events.
func (t *Trace) ExecEvents() []Event {
	var out []Event
	for _, ev := range t.Events {
		if ev.Kind == KindExec {
			out = append(out, ev)
		}
	}
	return out
}

// Validate checks the two executor invariants: (1) the execution events
// cover each of the n iterations exactly once, and (2) no worker has two
// overlapping events. It returns the first violation found.
func (t *Trace) Validate(n int) error {
	seen := make([]bool, n)
	covered := 0
	for _, ev := range t.Events {
		if ev.Kind != KindExec {
			continue
		}
		if ev.IterStart < 0 || ev.IterEnd > n || ev.IterStart >= ev.IterEnd {
			return fmt.Errorf("trace: bad exec range [%d,%d) for n=%d", ev.IterStart, ev.IterEnd, n)
		}
		for i := ev.IterStart; i < ev.IterEnd; i++ {
			if seen[i] {
				return fmt.Errorf("trace: iteration %d executed twice", i)
			}
			seen[i] = true
			covered++
		}
	}
	if covered != n {
		return fmt.Errorf("trace: %d of %d iterations executed", covered, n)
	}
	byWorker := make(map[int][]Event)
	for _, ev := range t.Events {
		byWorker[ev.Worker] = append(byWorker[ev.Worker], ev)
	}
	for w, evs := range byWorker {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		for i := 1; i < len(evs); i++ {
			const eps = 1e-12
			if evs[i].Start < evs[i-1].End-eps {
				return fmt.Errorf("trace: worker %d events overlap at t=%v", w, evs[i].Start)
			}
		}
	}
	return nil
}

// BusyTime sums execution time per worker.
func (t *Trace) BusyTime() []sim.Time {
	busy := make([]sim.Time, t.Workers)
	for _, ev := range t.Events {
		if ev.Kind == KindExec {
			busy[ev.Worker] += ev.End - ev.Start
		}
	}
	return busy
}

// Makespan returns the latest event end time.
func (t *Trace) Makespan() sim.Time {
	var m sim.Time
	for _, ev := range t.Events {
		if ev.End > m {
			m = ev.End
		}
	}
	return m
}

// Gantt renders the trace as an ASCII chart, one row per worker, width
// columns spanning [0, makespan]. Execution is '#', scheduling '+',
// barriers '.', idle ' '. It reproduces the structure of the paper's
// Figures 2 and 3: barrier-synchronized stripes vs. densely packed rows.
func (t *Trace) Gantt(width int) string {
	if width <= 0 {
		width = 80
	}
	span := t.Makespan()
	if span == 0 {
		return "(empty trace)\n"
	}
	rows := make([][]byte, t.Workers)
	for w := range rows {
		rows[w] = []byte(strings.Repeat(" ", width))
	}
	paint := func(row []byte, a, b sim.Time, ch byte, overwrite bool) {
		lo := int(float64(a) / float64(span) * float64(width))
		hi := int(float64(b) / float64(span) * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			if overwrite || row[i] == ' ' {
				row[i] = ch
			}
		}
	}
	// Paint barriers and scheduling first, execution last so it dominates.
	for _, ev := range t.Events {
		if ev.Worker < 0 || ev.Worker >= t.Workers {
			continue
		}
		switch ev.Kind {
		case KindBarrier:
			paint(rows[ev.Worker], ev.Start, ev.End, '.', false)
		case KindSchedGlobal, KindSchedLocal:
			paint(rows[ev.Worker], ev.Start, ev.End, '+', false)
		}
	}
	for _, ev := range t.Events {
		if ev.Kind == KindExec && ev.Worker >= 0 && ev.Worker < t.Workers {
			paint(rows[ev.Worker], ev.Start, ev.End, '#', true)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t = 0 .. %.4fs   ('#' exec, '+' sched, '.' barrier)\n", float64(span))
	for w, row := range rows {
		fmt.Fprintf(&b, "w%03d |%s|\n", w, row)
	}
	return b.String()
}

// WriteChromeJSON emits the trace in the Chrome tracing (about://tracing,
// Perfetto) JSON array format: one complete event per interval, worker as
// tid, node as pid, microsecond timestamps. Load the file in a trace viewer
// to browse the execution interactively.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range t.Events {
		name := ev.Kind.String()
		if ev.Kind == KindExec {
			name = fmt.Sprintf("exec[%d,%d)", ev.IterStart, ev.IterEnd)
		}
		sep := ","
		if i == len(t.Events)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			"  {\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d}%s\n",
			name, ev.Kind, float64(ev.Start)*1e6, float64(ev.End-ev.Start)*1e6,
			ev.Node, ev.Worker, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// WriteCSV emits the events as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "worker,node,kind,start,end,iter_start,iter_end"); err != nil {
		return err
	}
	for _, ev := range t.Events {
		_, err := fmt.Fprintf(w, "%d,%d,%s,%.9f,%.9f,%d,%d\n",
			ev.Worker, ev.Node, ev.Kind, float64(ev.Start), float64(ev.End), ev.IterStart, ev.IterEnd)
		if err != nil {
			return err
		}
	}
	return nil
}
