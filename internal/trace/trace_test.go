package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func execEv(w int, start, end float64, a, b int) Event {
	return Event{Worker: w, Kind: KindExec, Start: sim.Time(start), End: sim.Time(end), IterStart: a, IterEnd: b}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindExec: "exec", KindSchedGlobal: "sched-global",
		KindSchedLocal: "sched-local", KindBarrier: "barrier",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind should include its number")
	}
}

func TestValidateAcceptsExactCoverage(t *testing.T) {
	tr := New(2)
	tr.Add(execEv(0, 0, 1, 0, 5))
	tr.Add(execEv(1, 0, 2, 5, 10))
	tr.Add(execEv(0, 1, 3, 10, 12))
	if err := tr.Validate(12); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsDoubleExecution(t *testing.T) {
	tr := New(2)
	tr.Add(execEv(0, 0, 1, 0, 5))
	tr.Add(execEv(1, 0, 1, 4, 8))
	if err := tr.Validate(8); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("Validate = %v, want double-execution error", err)
	}
}

func TestValidateRejectsGap(t *testing.T) {
	tr := New(1)
	tr.Add(execEv(0, 0, 1, 0, 5))
	if err := tr.Validate(6); err == nil || !strings.Contains(err.Error(), "5 of 6") {
		t.Fatalf("Validate = %v, want coverage error", err)
	}
}

func TestValidateRejectsOverlapOnWorker(t *testing.T) {
	tr := New(1)
	tr.Add(execEv(0, 0, 2, 0, 3))
	tr.Add(execEv(0, 1, 3, 3, 6))
	if err := tr.Validate(6); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("Validate = %v, want overlap error", err)
	}
}

func TestValidateRejectsBadRange(t *testing.T) {
	tr := New(1)
	tr.Add(execEv(0, 0, 1, 3, 3))
	if err := tr.Validate(5); err == nil || !strings.Contains(err.Error(), "bad exec range") {
		t.Fatalf("Validate = %v, want range error", err)
	}
}

func TestBusyTimeAndMakespan(t *testing.T) {
	tr := New(2)
	tr.Add(execEv(0, 0, 1.5, 0, 1))
	tr.Add(execEv(1, 1, 2.5, 1, 2))
	tr.Add(execEv(0, 2, 2.75, 2, 3))
	busy := tr.BusyTime()
	if busy[0] != 2.25 || busy[1] != 1.5 {
		t.Fatalf("BusyTime = %v", busy)
	}
	if tr.Makespan() != 2.75 {
		t.Fatalf("Makespan = %v", tr.Makespan())
	}
}

func TestGanttShapes(t *testing.T) {
	tr := New(2)
	tr.Add(execEv(0, 0, 10, 0, 1))
	tr.Add(Event{Worker: 1, Kind: KindBarrier, Start: 0, End: 5})
	tr.Add(execEv(1, 5, 10, 1, 2))
	g := tr.Gantt(20)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 {
		t.Fatalf("Gantt has %d lines, want header + 2 rows:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[1], "#") {
		t.Fatalf("worker 0 row missing exec marks: %q", lines[1])
	}
	if !strings.Contains(lines[2], ".") || !strings.Contains(lines[2], "#") {
		t.Fatalf("worker 1 row missing barrier+exec: %q", lines[2])
	}
	if Gantt := New(1).Gantt(10); !strings.Contains(Gantt, "empty") {
		t.Fatalf("empty trace Gantt = %q", Gantt)
	}
}

func TestExecEventsFilter(t *testing.T) {
	tr := New(1)
	tr.Add(execEv(0, 0, 1, 0, 1))
	tr.Add(Event{Worker: 0, Kind: KindSchedGlobal, Start: 1, End: 2})
	if got := len(tr.ExecEvents()); got != 1 {
		t.Fatalf("ExecEvents = %d, want 1", got)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New(1)
	tr.Add(execEv(0, 0, 1, 0, 4))
	tr.Add(Event{Worker: 0, Node: 3, Kind: KindSchedLocal, Start: 1, End: 1.5})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "worker,node,kind,start,end") {
		t.Fatalf("bad CSV header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "sched-local") {
		t.Fatalf("bad CSV row: %q", lines[2])
	}
}

func TestWriteChromeJSON(t *testing.T) {
	tr := New(2)
	tr.Add(execEv(0, 0, 0.001, 0, 4))
	tr.Add(Event{Worker: 1, Node: 1, Kind: KindSchedGlobal, Start: 0.001, End: 0.002})
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["name"] != "exec[0,4)" {
		t.Fatalf("bad first event: %v", events[0])
	}
	if events[0]["dur"].(float64) != 1000 { // 1 ms = 1000 µs
		t.Fatalf("duration = %v µs, want 1000", events[0]["dur"])
	}
	if events[1]["tid"].(float64) != 1 || events[1]["pid"].(float64) != 1 {
		t.Fatalf("bad ids: %v", events[1])
	}
}
