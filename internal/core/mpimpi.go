package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Global-queue window layout (hosted by world rank 0).
const (
	gwStep      = 0 // latest scheduling step
	gwScheduled = 1 // total scheduled iterations
)

// Local-queue shared-window layout (hosted at node rank 0). The queue is a
// ring of chunk entries plus a done flag, maintained under MPI_Win_lock
// exactly as §3 describes.
const (
	lqHead  = 0 // ring index of the oldest chunk
	lqCount = 1 // chunks currently queued
	lqDone  = 2 // set once the global queue is exhausted
	lqBase  = 3 // first ring entry
	lqWords = 4 // words per entry: cur, end, step, orig
)

const (
	entCur = iota
	entEnd
	entStep
	entOrig
)

// runMPIMPI executes the proposed hierarchical MPI+MPI approach: one MPI
// rank per core, a shared local work queue per node, distributed chunk
// calculation against the global window.
//
// Ranks are goroutine-free machines (World.Launch): the setup collectives,
// the §3 worker loop and the rank's retirement all run as engine events at
// the exact positions the process-driven rank occupied, so a cell spawns no
// goroutines at all while producing byte-identical results (DESIGN.md §8).
func (h *harness) runMPIMPI() error {
	c := h.cfg
	world, err := h.newWorld(&c.Cluster, c.WorkersPerNode)
	if err != nil {
		return err
	}
	inter := h.interSchedule(h.interP())
	n := h.prof.N()
	ringWords := lqBase + c.QueueCapacity*lqWords

	// Per-node window handles are filled in during setup (every rank of a
	// node receives the same *Win from the collective allocation).
	localWins := make([]*mpi.Win, c.Cluster.Nodes)
	finished := 0
	fin := func() { finished++ }

	// Under lane mode (DESIGN.md §11) the setup collectives run on the
	// main engine as always, but worker bodies of lane nodes are deferred:
	// every barrier release fires at the same (time, born) main-engine
	// position, so the last one — before any later-timed event can fire on
	// any engine — schedules the deferred bodies onto their node lanes at
	// that instant, in release order. Per-node relative order is exactly the
	// literal release order, which is all the lane's private event stream
	// can observe.
	ff := h.ffLanes()
	type laneStart struct {
		node int
		run  func()
	}
	var (
		released int
		deferred []laneStart
	)

	start := func(r *mpi.Rank) {
		world.Comm().WinAllocateCont(r, "global-queue", 2, func(gw *mpi.Win) {
			nodeComm := world.SplitTypeShared(r)
			nodeComm.WinAllocateSharedCont(r, fmt.Sprintf("local-queue-%d", r.Node()), ringWords, func(lw *mpi.Win) {
				localWins[r.Node()] = lw
				w := nodeComm.RankOf(r)
				world.Comm().BarrierCont(r, func() {
					if !ff || r.Node() == 0 {
						h.mpimpiWorker(r, gw, lw, w, inter, n, fin)
					} else {
						deferred = append(deferred, laneStart{node: r.Node(), run: func() {
							h.mpimpiWorker(r, gw, lw, w, inter, n, fin)
						}})
					}
					released++
					if ff && released == world.Size() {
						now := world.Engine().Now()
						for _, d := range deferred {
							world.EngineFor(d.node).ScheduleAsOf(now, now, d.run)
						}
						deferred = nil
					}
				})
			})
		})
	}

	var runErr error
	if ff {
		world.EnableLanes()
		runErr = world.LaunchLanes(start)
	} else {
		runErr = world.Launch(start)
	}
	lastRunPushes.Store(uint64(world.Engine().PushStamp()))
	if runErr != nil {
		return runErr
	}
	if finished != world.Size() {
		return fmt.Errorf("core: %d of %d MPI+MPI ranks stalled", world.Size()-finished, world.Size())
	}
	for _, lw := range localWins {
		if lw == nil {
			continue
		}
		h.lockAtt += lw.LockAttempts
		h.lockAcq += lw.LockAcquisitions
	}
	return nil
}

// mpimpiWorker is the §3 worker loop. w is the node-local rank.
//
// The worker first tries to obtain a sub-chunk from the node's local work
// queue. If the queue is empty, the worker — which at that moment *is* "the
// fastest MPI process within the compute node" (§3) — keeps holding the
// queue lock while it obtains a fresh chunk from the global work queue and
// installs it. Holding the lock across the fill serializes fills per node
// (teammates poll the lock meanwhile), which is what preserves one-chunk-
// per-node semantics under inter-node STATIC and prevents a thundering herd
// against the global window at startup.
//
// The worker is a pure event-driven state machine: the lock grant, the
// critical section, the unlock release, the compute dispatch AND the global
// refill's MPI calls all execute inside engine events at the exact (time,
// scheduling-position) keys the literal Lock/Sync/Sleep/Unlock/Compute/
// Fetch_and_op chain occupied (NewLockCont/NewUnlockCont/NewFetchAndOpCont/
// ComputeCost), so every run is byte-identical to the literal protocol —
// including noise draws and trace order — while the rank owns no goroutine
// at all. done is called once, at the rank's literal retirement position.
func (h *harness) mpimpiWorker(r *mpi.Rank, gw, lw *mpi.Win, w int, inter interSched, n int, done func()) {
	c := h.cfg
	node := r.Node()
	worker := r.Rank() // world rank == global worker index (one rank/core)

	ws := c.Cluster.Mem.WinSync
	cc := c.ChunkCalcCost
	// q is the node's local-queue window memory: the exclusive lock guards
	// every access, so the executor indexes it directly (one locality check
	// at setup instead of per word).
	q := lw.Shared(r, 0)

	var (
		a, b     int
		size     int // current refill's global chunk size
		start    sim.Time
		schedT0  sim.Time
		schedKnd trace.Kind
		lockCont func()
		fopSched func(int64)
		eng      = h.engFor(r)
	)
	fop := gw.NewFetchAndOpCont(r)

	// execEnd fires at sub-chunk completion — the position of the literal
	// Compute wake-up — accounts the executed range, and issues the next
	// lock attempt: the steady state is pure event processing.
	execEnd := func() {
		h.execute(worker, node, a, b, start, eng.Now())
		schedT0 = eng.Now()
		lockCont()
	}

	// execCont runs at the unlock release, exactly where the literal worker
	// resumed to execute its sub-chunk [a, b).
	execCont := func(release sim.Time) {
		h.traceSched(worker, node, schedKnd, schedT0, release)
		start = release
		if a < b {
			d := r.ComputeCost(h.prof.Range(a, b))
			eng.AbsorbAsOf(release+d, release, execEnd)
		} else {
			eng.AbsorbAsOf(release, release, execEnd)
		}
	}
	// exitCont runs at the unlock release on the queue-drained path — where
	// the literal rank resumed only to return; the machine rank retires.
	exitCont := func(release sim.Time) {
		h.traceSched(worker, node, trace.KindSchedLocal, schedT0, release)
		done()
	}
	// doneExit retires the rank after it published global exhaustion — the
	// position where the literal rank resumed from UnlockAsOf and returned.
	doneExit := func(release sim.Time) {
		h.traceSched(worker, node, trace.KindSchedGlobal, schedT0, release)
		done()
	}
	unlockExec := lw.NewUnlockCont(r, 0, mpi.LockExclusive, execCont)
	unlockExit := lw.NewUnlockCont(r, 0, mpi.LockExclusive, exitCont)
	unlockDone := lw.NewUnlockCont(r, 0, mpi.LockExclusive, doneExit)

	// fopSched completes the refill: it fires where the literal rank
	// resumed from its second Fetch_and_op, holding the obtained range.
	fopSched = func(gstart64 int64) {
		gstart := int(gstart64)
		if gstart >= n {
			// Global queue exhausted: publish completion to the node.
			q[lqDone] = 1
			now := eng.Now()
			unlockDone(now+ws, now)
			return
		}
		end := gstart + size
		if end > n {
			end = n
		}
		h.globalChunks++

		// Stage 3: install the chunk and take this worker's own sub-chunk
		// within the same critical section.
		cnt := int(q[lqCount])
		if cnt >= c.QueueCapacity {
			panic("core: local work queue overflow")
		}
		head := int(q[lqHead])
		slot := (head + cnt) % c.QueueCapacity
		base := lqBase + slot*lqWords
		q[base+entCur] = int64(gstart)
		q[base+entEnd] = int64(end)
		q[base+entStep] = 0
		q[base+entOrig] = int64(end - gstart)
		q[lqCount] = int64(cnt + 1)
		a, b = h.takeHeadLocked(q, node, w)
		schedKnd = trace.KindSchedGlobal
		t1 := eng.Now() + cc // literal: chunk-calc wake
		unlockExec(t1+ws, t1)
	}
	// fopCalc runs at the literal chunk-calculation wake between the two
	// global atomics and issues the second one.
	fopCalc := func() {
		fop(0, gwScheduled, int64(size), fopSched)
	}
	// fopStep receives the scheduling step from the first global atomic,
	// computes the chunk size locally (distributed chunk calculation) and
	// sleeps the calculation cost — as an event, not a parked goroutine.
	fopStep := func(step int64) {
		// The requester identity matters only for weighted techniques:
		// under MPI+MPI every rank is a requester, so pass the rank (its
		// node's speed weights it).
		requester := node
		if h.interP() > h.cfg.Cluster.Nodes {
			requester = r.Rank()
		}
		size = inter.Chunk(int(step), requester)
		now := eng.Now()
		eng.AbsorbAsOf(now+cc, now, fopCalc)
	}
	// refill runs stage 2 holding the queue lock — two atomics on the
	// global window — starting at the literal Sync wake position.
	refill := func() {
		fop(0, gwStep, 1, fopStep)
	}

	// granted runs at the event position where the literal worker resumed
	// holding the queue lock (Lock's first check or the poller's grant).
	granted := func() {
		// Stage 1: sub-chunk from the local queue. The exclusive lock is
		// held until the unlock release completes, so the reads and writes
		// here — literally interleaved with Sync and chunk-calculation
		// sleeps — see and leave exactly the same queue state (DESIGN.md §7).
		if q[lqCount] > 0 {
			a, b = h.takeHeadLocked(q, node, w)
			schedKnd = trace.KindSchedLocal
			t1 := r.Now() + ws // literal: Sync wake
			t2 := t1 + cc      // literal: chunk-calc wake
			unlockExec(t2+ws, t2)
			return
		}
		if q[lqDone] != 0 {
			t1 := r.Now() + ws
			unlockExit(t1+ws, t1)
			return
		}
		// Queue empty, not done: this worker refills from the global queue,
		// resuming at the literal Sync wake.
		now := r.Now()
		eng.AbsorbAsOf(now+ws, now, refill)
	}

	lockCont = lw.NewLockCont(r, 0, mpi.LockExclusive, granted)

	schedT0 = r.Now()
	lockCont()
}

// takeHeadLocked removes one sub-chunk from the head chunk of node's local
// queue memory. The caller holds the queue lock and charges the
// chunk-calculation cost itself (the unlock continuation following each
// call covers it, positioned where the literal post-calculation wake-up
// fired).
func (h *harness) takeHeadLocked(q []int64, node, w int) (int, int) {
	c := h.cfg
	head := int(q[lqHead])
	base := lqBase + head*lqWords
	cur := int(q[base+entCur])
	end := int(q[base+entEnd])
	step := int(q[base+entStep])
	orig := int(q[base+entOrig])
	size := h.intraChunkSize(node, orig, step, w)
	if size > end-cur {
		size = end - cur
	}
	nxt := cur + size
	q[base+entCur] = int64(nxt)
	q[base+entStep] = int64(step + 1)
	if nxt >= end {
		q[lqHead] = int64((head + 1) % c.QueueCapacity)
		q[lqCount]--
	}
	h.localChunks++
	return cur, nxt
}

func (h *harness) traceSched(worker, node int, kind trace.Kind, t0, t1 sim.Time) {
	if h.tr == nil || t1 <= t0 {
		return
	}
	h.tr.Add(trace.Event{Worker: worker, Node: node, Kind: kind, Start: t0, End: t1})
}

// interSched is the subset of dls.Schedule the executors use.
type interSched interface {
	Chunk(step, worker int) int
}
