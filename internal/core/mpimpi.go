package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Global-queue window layout (hosted by world rank 0).
const (
	gwStep      = 0 // latest scheduling step
	gwScheduled = 1 // total scheduled iterations
)

// Local-queue shared-window layout (hosted at node rank 0). The queue is a
// ring of chunk entries plus a done flag, maintained under MPI_Win_lock
// exactly as §3 describes.
const (
	lqHead  = 0 // ring index of the oldest chunk
	lqCount = 1 // chunks currently queued
	lqDone  = 2 // set once the global queue is exhausted
	lqBase  = 3 // first ring entry
	lqWords = 4 // words per entry: cur, end, step, orig
)

const (
	entCur = iota
	entEnd
	entStep
	entOrig
)

// runMPIMPI executes the proposed hierarchical MPI+MPI approach: one MPI
// rank per core, a shared local work queue per node, distributed chunk
// calculation against the global window.
func (h *harness) runMPIMPI() error {
	c := h.cfg
	world, err := mpi.NewWorld(h.eng, &c.Cluster, c.WorkersPerNode)
	if err != nil {
		return err
	}
	inter := h.interSchedule(h.interP())
	n := h.prof.N()
	ringWords := lqBase + c.QueueCapacity*lqWords

	// Per-node window handles are filled in during setup (every rank of a
	// node receives the same *Win from the collective allocation).
	localWins := make([]*mpi.Win, c.Cluster.Nodes)

	runErr := world.Run(func(r *mpi.Rank) {
		gw := world.Comm().WinAllocate(r, "global-queue", 2)
		nodeComm := world.SplitTypeShared(r)
		lw := nodeComm.WinAllocateShared(r, fmt.Sprintf("local-queue-%d", r.Node()), ringWords)
		localWins[r.Node()] = lw
		world.Comm().Barrier(r)

		h.mpimpiWorker(r, gw, lw, nodeComm.RankOf(r), inter, n)
	})
	if runErr != nil {
		return runErr
	}
	for _, lw := range localWins {
		if lw == nil {
			continue
		}
		h.lockAtt += lw.LockAttempts
		h.lockAcq += lw.LockAcquisitions
	}
	return nil
}

// mpimpiWorker is the §3 worker loop. w is the node-local rank.
//
// The worker first tries to obtain a sub-chunk from the node's local work
// queue. If the queue is empty, the worker — which at that moment *is* "the
// fastest MPI process within the compute node" (§3) — keeps holding the
// queue lock while it obtains a fresh chunk from the global work queue and
// installs it. Holding the lock across the fill serializes fills per node
// (teammates poll the lock meanwhile), which is what preserves one-chunk-
// per-node semantics under inter-node STATIC and prevents a thundering herd
// against the global window at startup.
func (h *harness) mpimpiWorker(r *mpi.Rank, gw, lw *mpi.Win, w int, inter interSched, n int) {
	c := h.cfg
	node := r.Node()
	worker := r.Rank() // world rank == global worker index (one rank/core)

	for {
		schedT0 := r.Now()
		lw.Lock(r, 0, mpi.LockExclusive)
		lw.Sync(r)

		// Stage 1: sub-chunk from the local queue.
		if int(lw.SharedRead(r, 0, lqCount)) > 0 {
			a, b := h.takeHeadLocked(r, lw, w)
			lw.Sync(r)
			lw.Unlock(r, 0, mpi.LockExclusive)
			h.traceSched(worker, node, trace.KindSchedLocal, schedT0, r.Now())
			h.execRange(r, worker, node, a, b)
			continue
		}
		if lw.SharedRead(r, 0, lqDone) != 0 {
			lw.Sync(r)
			lw.Unlock(r, 0, mpi.LockExclusive)
			h.traceSched(worker, node, trace.KindSchedLocal, schedT0, r.Now())
			return
		}

		// Stage 2: queue empty — this worker fills it from the global
		// queue (distributed chunk calculation: two atomics, chunk size
		// computed locally from the obtained step). The requester identity
		// matters only for weighted techniques: under MPI+MPI every rank
		// is a requester, so pass the rank (its node's speed weights it).
		step := gw.FetchAndOp(r, 0, gwStep, 1)
		requester := node
		if h.interP() > h.cfg.Cluster.Nodes {
			requester = r.Rank()
		}
		size := inter.Chunk(int(step), requester)
		r.Proc().Sleep(c.ChunkCalcCost)
		start := gw.FetchAndOp(r, 0, gwScheduled, int64(size))
		if int(start) >= n {
			// Global queue exhausted: publish completion to the node.
			lw.SharedWrite(r, 0, lqDone, 1)
			lw.Sync(r)
			lw.Unlock(r, 0, mpi.LockExclusive)
			h.traceSched(worker, node, trace.KindSchedGlobal, schedT0, r.Now())
			return
		}
		end := int(start) + size
		if end > n {
			end = n
		}
		h.globalChunks++

		// Stage 3: install the chunk and take this worker's own sub-chunk
		// within the same critical section.
		cnt := int(lw.SharedRead(r, 0, lqCount))
		if cnt >= c.QueueCapacity {
			panic("core: local work queue overflow")
		}
		head := int(lw.SharedRead(r, 0, lqHead))
		slot := (head + cnt) % c.QueueCapacity
		base := lqBase + slot*lqWords
		lw.SharedWrite(r, 0, base+entCur, start)
		lw.SharedWrite(r, 0, base+entEnd, int64(end))
		lw.SharedWrite(r, 0, base+entStep, 0)
		lw.SharedWrite(r, 0, base+entOrig, int64(end-int(start)))
		lw.SharedWrite(r, 0, lqCount, int64(cnt+1))
		a, b := h.takeHeadLocked(r, lw, w)
		lw.Sync(r)
		lw.Unlock(r, 0, mpi.LockExclusive)
		h.traceSched(worker, node, trace.KindSchedGlobal, schedT0, r.Now())
		if a < b {
			h.execRange(r, worker, node, a, b)
		}
	}
}

// takeHeadLocked removes one sub-chunk from the head chunk. The caller
// holds the queue lock.
func (h *harness) takeHeadLocked(r *mpi.Rank, lw *mpi.Win, w int) (int, int) {
	c := h.cfg
	head := int(lw.SharedRead(r, 0, lqHead))
	base := lqBase + head*lqWords
	cur := int(lw.SharedRead(r, 0, base+entCur))
	end := int(lw.SharedRead(r, 0, base+entEnd))
	step := int(lw.SharedRead(r, 0, base+entStep))
	orig := int(lw.SharedRead(r, 0, base+entOrig))
	size := h.intraChunkSize(r.Node(), orig, step, w)
	r.Proc().Sleep(c.ChunkCalcCost)
	if size > end-cur {
		size = end - cur
	}
	nxt := cur + size
	lw.SharedWrite(r, 0, base+entCur, int64(nxt))
	lw.SharedWrite(r, 0, base+entStep, int64(step+1))
	if nxt >= end {
		cnt := int(lw.SharedRead(r, 0, lqCount))
		lw.SharedWrite(r, 0, lqHead, int64((head+1)%c.QueueCapacity))
		lw.SharedWrite(r, 0, lqCount, int64(cnt-1))
	}
	h.localChunks++
	return cur, nxt
}

// execRange executes iterations [a, b) on the calling rank.
func (h *harness) execRange(r *mpi.Rank, worker, node, a, b int) {
	t0 := r.Now()
	r.Compute(h.prof.Range(a, b))
	h.execute(worker, node, a, b, t0, r.Now())
}

func (h *harness) traceSched(worker, node int, kind trace.Kind, t0, t1 sim.Time) {
	if h.tr == nil || t1 <= t0 {
		return
	}
	h.tr.Add(trace.Event{Worker: worker, Node: node, Kind: kind, Start: t0, End: t1})
}

// interSched is the subset of dls.Schedule the executors use.
type interSched interface {
	Chunk(step, worker int) int
}
