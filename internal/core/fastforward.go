package core

import (
	"os"
	"strings"
	"sync/atomic"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Fast-forward has two mechanisms, both producing byte-identical results
// (DESIGN.md §11):
//
//   - The analytic fast-forward (default on, owned by internal/mpi): event
//     chains that provably cannot interact with any other pending event run
//     inline at their exact (time, scheduling-time) position via
//     sim.Engine.AbsorbAsOf — the engine absorbs an event only when every
//     queued event orders strictly after it, i.e. the absorbed event is
//     literally the one dispatch would pop next. On top of it the RMA port
//     parks a provably-failing first lock check at issue and resolves
//     same-position grants inside the wake that discovered them. Every
//     surviving event keeps its literal key and every RNG draw its host
//     order, so the mechanism needs no eligibility gating at all.
//
//   - The per-node lane split (opt-in via HDLS_FASTFORWARD=lanes): node-
//     local event chains run on per-node engines merged in literal
//     (time, born, seq) order by mpi.World.LaunchLanes. It is kept as
//     verified infrastructure and for A/B experiments; measured net host
//     cost exceeds the queue savings (EXPERIMENTS.md), so it is not the
//     default.
//
// Neither switch is part of Config (nor of any cache key derived from it);
// they exist for the differential oracle in fastforward_test.go and for
// CI's forced-on/forced-off golden shards.
var laneMode atomic.Bool

func init() {
	laneMode.Store(strings.EqualFold(os.Getenv("HDLS_FASTFORWARD"), "lanes"))
}

// FastForwardEnabled reports the analytic fast-forward switch.
func FastForwardEnabled() bool { return mpi.FastForwardEnabled() }

// SetFastForward sets the analytic fast-forward switch and returns the
// previous value. It exists for the differential tests and CI shards that
// compare the fast-forward and literal execution paths; both produce
// byte-identical results, so flipping it never changes observable output.
func SetFastForward(on bool) bool { return mpi.SetFastForward(on) }

// SetLaneMode sets the per-node lane-split switch and returns the previous
// value (test and experiment hook).
func SetLaneMode(on bool) bool { return laneMode.Swap(on) }

// ffLanes reports whether this cell runs the MPI+MPI executor on per-node
// lanes. The gates keep the lane interleaving provably byte-identical to
// the literal single-engine run:
//
//   - noise CVs must be zero: ExecTime draws from the engine RNG only when
//     a CV is nonzero, and RNG draws are a property of the global event
//     order, which lanes do not preserve (only the per-node and cross-node
//     projections of it). Transient slowdowns and background load remain
//     eligible — perturb.Model.Factor is a pure function of (node, time).
//   - no trace collection: the trace records events in global host order.
//   - at least two nodes: with one node there is nothing to peel off the
//     main engine.
func (h *harness) ffLanes() bool {
	c := h.cfg
	return laneMode.Load() &&
		h.tr == nil &&
		c.Cluster.NoiseCV == 0 &&
		c.Perturb.NoiseCV == 0 &&
		c.Cluster.Nodes > 1
}

// engFor returns the engine rank r's worker chain runs on: its node's lane
// under lane mode, the shared engine otherwise.
func (h *harness) engFor(r *mpi.Rank) *sim.Engine { return r.World().EngineFor(r.Node()) }

// lastRunPushes records the main engine's queue-insertion count of the most
// recent MPI+MPI run. It instruments the fast-forward event census in
// fastforward_test.go: wall-clock comparisons drown in host noise, but the
// number of engine events a cell costs is deterministic per configuration.
var lastRunPushes atomic.Uint64
