package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/perturb"
	"repro/internal/workload"
)

// allInter is every inter-node technique the executors accept (the
// adaptive AWF/AF family exists only at the dls reference level and is
// rejected by Config.Validate, so it cannot diverge).
var allInter = []dls.Technique{
	dls.STATIC, dls.SS, dls.FSC, dls.GSS, dls.TSS, dls.FAC, dls.FAC2,
	dls.WF, dls.TFSS, dls.RND,
}

// fuzzIntra is the intra-level pool (the executors accept a subset of the
// techniques at the intra level, see intraSupported).
var fuzzIntra = []dls.Technique{
	dls.STATIC, dls.SS, dls.FSC, dls.GSS, dls.TSS, dls.FAC, dls.FAC2, dls.TFSS, dls.RND,
}

// fuzzConfig draws one randomized cell: topology (node count, heterogeneous
// speeds and core counts), perturbations (noise, transient slowdowns,
// background load) and workload are all fuzzed. Noisy configs are fair game:
// the fast-forward preserves the host order of every RNG draw, so it needs
// no smooth-machine gating.
func fuzzConfig(rng *rand.Rand, inter dls.Technique) Config {
	nodes := []int{1, 2, 3, 4, 8}[rng.Intn(5)]
	cl := cluster.MiniHPC(nodes)
	if rng.Intn(3) == 0 { // heterogeneous speeds, tiled like -speeds
		pat := [][]float64{{1, 0.5}, {1, 0.45, 2}}[rng.Intn(2)]
		sp := make([]float64, nodes)
		for i := range sp {
			sp[i] = pat[i%len(pat)]
		}
		cl.NodeSpeed = sp
	}
	if rng.Intn(4) == 0 { // heterogeneous core counts
		cores := make([]int, nodes)
		for i := range cores {
			cores[i] = []int{4, 8, 16}[rng.Intn(3)]
		}
		cl.NodeCores = cores
	}
	var pc perturb.Config
	switch rng.Intn(4) {
	case 0:
		pc.NoiseCV = []float64{0.1, 0.3, 0.7}[rng.Intn(3)]
	case 1:
		pc.SlowdownRate = 50
		pc.SlowdownFactor = 2 + rng.Float64()*2
		pc.SlowdownDuration = 0.005
	case 2:
		pc.NoiseCV = 0.2
		pc.BackgroundLoad = []float64{0, rng.Float64() * 0.4}
	}
	n := 512 + rng.Intn(4096)
	var prof *workload.Profile
	if rng.Intn(2) == 0 {
		prof = workload.Uniform(n, 20e-6, 60e-6, rng.Int63n(1e6)+1)
	} else {
		prof = workload.Gaussian(n, 40e-6, 15e-6, rng.Int63n(1e6)+1)
	}
	wpn := []int{1, 2, 4, 8, 16}[rng.Intn(5)]
	if mc := cl.MaxCores(); wpn > mc {
		wpn = mc
	}
	cfg := Config{
		Cluster:        cl,
		WorkersPerNode: wpn,
		Inter:          inter,
		Intra:          fuzzIntra[rng.Intn(len(fuzzIntra))],
		Workload:       prof,
		Approach:       MPIMPI,
		Seed:           rng.Int63n(1e6) + 1,
		Perturb:        pc,
		CollectTrace:   true,
	}
	if rng.Intn(4) == 0 {
		cfg.Approach = MPIOpenMP
		cfg.ExtendedRuntime = true // admit the TSS/FAC2 clauses too
		omp := []dls.Technique{dls.STATIC, dls.SS, dls.GSS, dls.TSS, dls.FAC2}
		cfg.Intra = omp[rng.Intn(len(omp))]
	}
	return cfg
}

// diffResults compares two runs of the same configuration field by field,
// including the full host-ordered trace, and returns a description of the
// first divergence ("" when byte-identical).
func diffResults(a, b *Result) string {
	if a.ParallelTime != b.ParallelTime {
		return fmt.Sprintf("ParallelTime %v != %v", a.ParallelTime, b.ParallelTime)
	}
	if a.LoadImbalance != b.LoadImbalance {
		return fmt.Sprintf("LoadImbalance %v != %v", a.LoadImbalance, b.LoadImbalance)
	}
	if a.GlobalChunks != b.GlobalChunks || a.LocalChunks != b.LocalChunks {
		return fmt.Sprintf("chunks (%d,%d) != (%d,%d)", a.GlobalChunks, a.LocalChunks, b.GlobalChunks, b.LocalChunks)
	}
	if a.LockAttempts != b.LockAttempts || a.LockAcquisitions != b.LockAcquisitions {
		return fmt.Sprintf("locks (%d,%d) != (%d,%d)", a.LockAttempts, a.LockAcquisitions, b.LockAttempts, b.LockAcquisitions)
	}
	if a.BarrierWait != b.BarrierWait {
		return fmt.Sprintf("BarrierWait %v != %v", a.BarrierWait, b.BarrierWait)
	}
	for i := range a.WorkerFinish {
		if a.WorkerFinish[i] != b.WorkerFinish[i] {
			return fmt.Sprintf("WorkerFinish[%d] %v != %v", i, a.WorkerFinish[i], b.WorkerFinish[i])
		}
		if a.WorkerCompute[i] != b.WorkerCompute[i] {
			return fmt.Sprintf("WorkerCompute[%d] %v != %v", i, a.WorkerCompute[i], b.WorkerCompute[i])
		}
	}
	for i := range a.NodeFinish {
		if a.NodeFinish[i] != b.NodeFinish[i] {
			return fmt.Sprintf("NodeFinish[%d] %v != %v", i, a.NodeFinish[i], b.NodeFinish[i])
		}
	}
	if len(a.Trace.Events) != len(b.Trace.Events) {
		return fmt.Sprintf("trace length %d != %d", len(a.Trace.Events), len(b.Trace.Events))
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			return fmt.Sprintf("trace[%d] %+v != %+v", i, a.Trace.Events[i], b.Trace.Events[i])
		}
	}
	return ""
}

// TestFastForwardDifferential is the fuzz-style differential oracle: for
// every inter-node technique it draws randomized cells (topology ×
// perturbation × workload, seeded and reproducible) and runs each one with
// the analytic fast-forward off and on. The traces record events in host
// execution order, so equality here pins the fast-forward to trace-level
// byte identity, not just identical aggregates (DESIGN.md §11).
func TestFastForwardDifferential(t *testing.T) {
	prev := FastForwardEnabled()
	defer SetFastForward(prev)
	rng := rand.New(rand.NewSource(20260807))
	perTech := 3
	if testing.Short() {
		perTech = 1
	}
	for _, inter := range allInter {
		for c := 0; c < perTech; c++ {
			cfg := fuzzConfig(rng, inter)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%v case %d: invalid fuzz config: %v", inter, c, err)
			}
			SetFastForward(false)
			lit, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v case %d (literal): %v", inter, c, err)
			}
			SetFastForward(true)
			ff, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v case %d (fast-forward): %v", inter, c, err)
			}
			if d := diffResults(lit, ff); d != "" {
				t.Errorf("%v case %d (%v/%v %dn×%dw %v seed=%d): fast-forward diverges: %s",
					inter, c, cfg.Inter, cfg.Intra, cfg.Cluster.Nodes,
					cfg.WorkersPerNode, cfg.Approach, cfg.Seed, d)
			}
		}
	}
}

// TestFastForwardEventCensus checks the fast-forward's actual effect — the
// engine event count — on bench-representative cells. Unlike wall clock,
// the census is deterministic per configuration: fast-forward on must never
// cost more engine events than the literal protocol, and on the contended
// cells it must save a measurable fraction.
func TestFastForwardEventCensus(t *testing.T) {
	prev := FastForwardEnabled()
	defer SetFastForward(prev)
	for _, tc := range []struct {
		inter, intra dls.Technique
		spec         string
	}{
		{dls.GSS, dls.GSS, "uniform:n=65536"},
		{dls.GSS, dls.STATIC, "uniform:n=4096"},
		{dls.STATIC, dls.SS, "uniform:n=16384"},
		{dls.GSS, dls.SS, "uniform:n=16384"},
		{dls.FAC2, dls.GSS, "uniform:n=16384"},
	} {
		prof, err := workload.ParseSpec(tc.spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Cluster:        cluster.MiniHPC(8),
			WorkersPerNode: 16,
			Inter:          tc.inter,
			Intra:          tc.intra,
			Workload:       prof,
			Approach:       MPIMPI,
			Seed:           1,
		}
		var pushes [2]uint64
		for i, ff := range []bool{false, true} {
			SetFastForward(ff)
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
			pushes[i] = lastRunPushes.Load()
		}
		if pushes[1] > pushes[0] {
			t.Errorf("%s/%s %s: fast-forward costs events: off=%d on=%d",
				tc.inter, tc.intra, tc.spec, pushes[0], pushes[1])
		}
		t.Logf("%s/%s %s: off=%d on=%d saved=%.1f%%", tc.inter, tc.intra, tc.spec,
			pushes[0], pushes[1], 100*(1-float64(pushes[1])/float64(pushes[0])))
	}
}

// TestFastForwardAB is the wall-clock measurement harness behind
// EXPERIMENTS.md's fast-forward table: interleaved off/on rounds of the
// bench-row cells, reporting per-cell medians. Interleaving in one process
// is the only A/B this host supports — separate benchmark runs drift ±30%
// with neighbour load. Log-only; skipped under -short.
func TestFastForwardAB(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement harness")
	}
	prev := FastForwardEnabled()
	defer SetFastForward(prev)
	for _, nodes := range []int{1, 8, 16} {
		for _, tc := range []struct {
			inter, intra dls.Technique
			spec         string
		}{
			{dls.GSS, dls.GSS, "uniform:n=65536"},
			{dls.GSS, dls.SS, "uniform:n=16384"},
			{dls.STATIC, dls.STATIC, "uniform:n=65536"},
		} {
			prof, err := workload.ParseSpec(tc.spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				Cluster:        cluster.MiniHPC(nodes),
				WorkersPerNode: 16,
				Inter:          tc.inter,
				Intra:          tc.intra,
				Workload:       prof,
				Approach:       MPIMPI,
				Seed:           1,
			}
			const rounds = 9
			var offs, ons []float64
			for i := 0; i < rounds; i++ {
				for _, ff := range []bool{false, true} {
					SetFastForward(ff)
					t0 := time.Now()
					if _, err := Run(cfg); err != nil {
						t.Fatal(err)
					}
					d := time.Since(t0).Seconds() * 1e3
					if ff {
						ons = append(ons, d)
					} else {
						offs = append(offs, d)
					}
				}
			}
			sort.Float64s(offs)
			sort.Float64s(ons)
			mOff, mOn := offs[rounds/2], ons[rounds/2]
			t.Logf("%2dn %s/%s: off=%.2fms on=%.2fms speedup=%.2fx",
				nodes, tc.inter, tc.intra, mOff, mOn, mOff/mOn)
		}
	}
}
