package core

import (
	"bytes"
	"math"
	"testing"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestScalingReducesTime(t *testing.T) {
	// Doubling nodes must cut the parallel time substantially for every
	// approach on a well-balanced dynamic configuration.
	prof := workload.Uniform(1<<14, 30e-6, 90e-6, 23)
	for _, app := range []Approach{MPIMPI, MPIOpenMP} {
		var prev sim.Time
		for i, nodes := range []int{1, 2, 4, 8} {
			cfg := testConfig(nodes, 8, prof)
			cfg.Approach = app
			cfg.Inter = dls.FAC2
			cfg.Intra = dls.GSS
			res := mustRun(t, cfg)
			if i > 0 {
				speedup := float64(prev) / float64(res.ParallelTime)
				if speedup < 1.5 {
					t.Fatalf("%v: %d→%d nodes speedup %.2f, want ≥1.5", app, nodes/2, nodes, speedup)
				}
			}
			prev = res.ParallelTime
		}
	}
}

func TestParallelTimeLowerBoundedByIdeal(t *testing.T) {
	prof := workload.Uniform(1<<13, 30e-6, 90e-6, 29)
	ideal := float64(prof.Total()) / 32
	for _, app := range []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait} {
		for _, inter := range []dls.Technique{dls.STATIC, dls.GSS, dls.FAC2} {
			cfg := testConfig(2, 16, prof)
			cfg.Approach = app
			cfg.Inter = inter
			res := mustRun(t, cfg)
			if float64(res.ParallelTime) < ideal*0.999 {
				t.Fatalf("%v %v: time %v beats the ideal bound %v", app, inter,
					res.ParallelTime, ideal)
			}
		}
	}
}

func TestWorkerFinishNeverExceedsParallelTime(t *testing.T) {
	prof := workload.Exponential(4096, 60e-6, 31)
	for _, app := range []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait} {
		cfg := testConfig(2, 8, prof)
		cfg.Approach = app
		res := mustRun(t, cfg)
		for w, f := range res.WorkerFinish {
			if f > res.ParallelTime {
				t.Fatalf("%v: worker %d finish %v > parallel time %v", app, w, f, res.ParallelTime)
			}
		}
	}
}

func TestFSCInterLevel(t *testing.T) {
	// FSC needs σ and h; the harness derives them from the profile. The run
	// must produce constant global chunk sizes (until the final clamp).
	prof := workload.Gaussian(8192, 50e-6, 10e-6, 37)
	cfg := testConfig(2, 8, prof)
	cfg.Inter = dls.FSC
	cfg.CollectTrace = true
	res := mustRun(t, cfg)
	if res.GlobalChunks < 2 {
		t.Fatalf("FSC issued %d global chunks", res.GlobalChunks)
	}
}

func TestSingleWorkerPerNode(t *testing.T) {
	prof := workload.Uniform(512, 20e-6, 60e-6, 41)
	for _, app := range []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait} {
		cfg := testConfig(2, 1, prof)
		cfg.Approach = app
		res := mustRun(t, cfg)
		if res.Workers != 2 {
			t.Fatalf("%v: workers = %d", app, res.Workers)
		}
	}
}

func TestQueueCapacityOne(t *testing.T) {
	// Fills are serialized under the queue lock, so a single-slot ring must
	// still cover the loop for every intra technique.
	prof := workload.Uniform(2048, 20e-6, 60e-6, 43)
	for _, intra := range []dls.Technique{dls.STATIC, dls.SS, dls.GSS, dls.FAC2} {
		cfg := testConfig(2, 8, prof)
		cfg.Intra = intra
		cfg.QueueCapacity = 1
		mustRun(t, cfg)
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	prof := workload.Uniform(256, 20e-6, 60e-6, 47)
	cfg := testConfig(1, 4, prof)
	cfg.CollectTrace = true
	res := mustRun(t, cfg)
	var buf bytes.Buffer
	if err := res.Trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || bytes.Count(buf.Bytes(), []byte("\n")) < 10 {
		t.Fatal("trace CSV suspiciously small")
	}
}

func TestChunkCalcCostDefaultApplied(t *testing.T) {
	cfg := testConfig(1, 2, workload.Constant(64, 10e-6))
	c := cfg.withDefaults()
	if c.ChunkCalcCost <= 0 || c.QueueCapacity != 2 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	// Explicit values survive.
	cfg.ChunkCalcCost = 5e-6
	cfg.QueueCapacity = 7
	c = cfg.withDefaults()
	if c.ChunkCalcCost != 5e-6 || c.QueueCapacity != 7 {
		t.Fatalf("explicit values overridden: %+v", c)
	}
}

func TestNoiseIncreasesImbalanceForStatic(t *testing.T) {
	// With STATIC+STATIC and a constant workload, a noisy machine must show
	// more imbalance than a quiet one — the "systemic variation" motivation
	// from the paper's introduction.
	prof := workload.Constant(4096, 50e-6)
	quiet := testConfig(2, 8, prof)
	quiet.Inter, quiet.Intra = dls.STATIC, dls.STATIC
	q := mustRun(t, quiet)
	noisy := quiet
	noisy.Cluster = cluster.MiniHPC(2)
	noisy.Cluster.NoiseCV = 0.3
	n := mustRun(t, noisy)
	if n.LoadImbalance <= q.LoadImbalance {
		t.Fatalf("noise did not raise imbalance: %.4f vs %.4f", n.LoadImbalance, q.LoadImbalance)
	}
}

func TestDynamicInterMitigatesNoiseBetterThanStatic(t *testing.T) {
	// The core claim of DLS: under systemic variation, self-scheduling
	// outperforms static partitioning.
	prof := workload.Constant(8192, 50e-6)
	mk := func(inter, intra dls.Technique) sim.Time {
		cfg := testConfig(2, 8, prof)
		cfg.Inter, cfg.Intra = inter, intra
		cfg.Cluster.NoiseCV = 0.4
		cfg.Seed = 7
		return mustRun(t, cfg).ParallelTime
	}
	static := mk(dls.STATIC, dls.STATIC)
	dynamic := mk(dls.FAC2, dls.GSS)
	if dynamic >= static {
		t.Fatalf("dynamic scheduling (%v) not better than static (%v) under noise", dynamic, static)
	}
}

func TestHeterogeneousDynamicBeatsStatic(t *testing.T) {
	// Same argument for heterogeneity: a half-speed node hurts STATIC far
	// more than demand-driven scheduling.
	prof := workload.Constant(8192, 50e-6)
	mk := func(inter dls.Technique) sim.Time {
		cfg := testConfig(2, 8, prof)
		cfg.Cluster = cluster.MiniHPCHetero(2, 1.0, 0.5)
		cfg.Inter, cfg.Intra = inter, dls.GSS
		return mustRun(t, cfg).ParallelTime
	}
	static := mk(dls.STATIC)
	dynamic := mk(dls.GSS)
	if float64(dynamic) > 0.85*float64(static) {
		t.Fatalf("GSS inter (%v) should clearly beat STATIC inter (%v) on a hetero cluster", dynamic, static)
	}
}

func TestGSSInterAssignsMoreWorkToFasterNode(t *testing.T) {
	prof := workload.Constant(8192, 50e-6)
	cfg := testConfig(2, 8, prof)
	cfg.Cluster = cluster.MiniHPCHetero(2, 1.0, 0.5)
	cfg.Inter, cfg.Intra = dls.GSS, dls.GSS
	res := mustRun(t, cfg)
	fast, slow := 0.0, 0.0
	for w, c := range res.WorkerCompute {
		if w < 8 {
			fast += float64(c)
		} else {
			slow += float64(c)
		}
	}
	// Compute time is wall time on the node, so equal wall shares mean the
	// fast node executed ~2× the iterations. Check via executed work: the
	// fast node's compute share should be close to the slow node's even
	// though it processed more iterations.
	if math.Abs(fast-slow)/math.Max(fast, slow) > 0.35 {
		t.Fatalf("wall-time shares diverge: fast %.3f vs slow %.3f", fast, slow)
	}
}

func TestResultFieldsConsistency(t *testing.T) {
	prof := workload.Uniform(1024, 20e-6, 60e-6, 53)
	cfg := testConfig(2, 4, prof)
	res := mustRun(t, cfg)
	if res.Approach != MPIMPI || res.Inter != dls.GSS || res.Intra != dls.STATIC {
		t.Fatalf("result echo wrong: %+v", res)
	}
	if res.Nodes != 2 || res.Workers != 8 {
		t.Fatalf("topology echo wrong: %+v", res)
	}
	if len(res.WorkerFinish) != 8 || len(res.WorkerCompute) != 8 {
		t.Fatal("per-worker slices sized wrong")
	}
	if res.LoadImbalance < 0 {
		t.Fatalf("negative imbalance %v", res.LoadImbalance)
	}
}

func TestWeightedInterOnHeterogeneousCluster(t *testing.T) {
	// The heterogeneity extension: weighted factoring at the inter-node
	// level sizes chunks by node speed. Coverage must hold and the fast
	// node must execute roughly twice the iterations of the half-speed one.
	prof := workload.Constant(8192, 50e-6)
	for _, app := range []Approach{MPIMPI, MPIOpenMP} {
		cfg := testConfig(2, 8, prof)
		cfg.Cluster = cluster.MiniHPCHetero(2, 1.0, 0.5)
		cfg.Inter, cfg.Intra = dls.WF, dls.GSS
		cfg.Approach = app
		cfg.CollectTrace = true
		res := mustRun(t, cfg)
		fastIters, slowIters := 0, 0
		for _, ev := range res.Trace.ExecEvents() {
			if ev.Node == 0 {
				fastIters += ev.IterEnd - ev.IterStart
			} else {
				slowIters += ev.IterEnd - ev.IterStart
			}
		}
		ratio := float64(fastIters) / float64(slowIters)
		if ratio < 1.5 || ratio > 3.0 {
			t.Fatalf("%v: fast/slow node iteration ratio = %.2f, want ≈2", app, ratio)
		}
	}
}

func TestWeightedInterBeatsStaticOnHetero(t *testing.T) {
	prof := workload.Constant(8192, 50e-6)
	mk := func(inter dls.Technique) sim.Time {
		cfg := testConfig(2, 8, prof)
		cfg.Cluster = cluster.MiniHPCHetero(2, 1.0, 0.5)
		cfg.Inter, cfg.Intra = inter, dls.GSS
		return mustRun(t, cfg).ParallelTime
	}
	wf := mk(dls.WF)
	static := mk(dls.STATIC)
	if float64(wf) > 0.8*float64(static) {
		t.Fatalf("WF inter (%v) should clearly beat STATIC inter (%v) on a hetero cluster", wf, static)
	}
}

func TestRNDIntraCoverage(t *testing.T) {
	prof := workload.Uniform(2048, 20e-6, 60e-6, 61)
	for _, app := range []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait} {
		cfg := testConfig(2, 8, prof)
		cfg.Intra = dls.RND
		cfg.Approach = app
		cfg.ExtendedRuntime = true // RND needs the extended OpenMP runtime
		mustRun(t, cfg)
	}
}

func TestRNDIntraRequiresExtendedRuntime(t *testing.T) {
	cfg := testConfig(2, 4, workload.Constant(256, 10e-6))
	cfg.Approach = MPIOpenMP
	cfg.Intra = dls.RND
	if _, err := Run(cfg); err == nil {
		t.Fatal("RND intra accepted on the stock OpenMP runtime")
	}
}
