package core

import (
	"fmt"

	"repro/dls"
	"repro/internal/mpi"
	"repro/internal/openmp"
	"repro/internal/sim"
	"repro/internal/trace"
)

func mapIntraToOpenMP(t dls.Technique) (openmp.ScheduleKind, error) {
	return openmp.MapTechnique(t)
}

// runMPIOpenMP executes the hierarchical MPI+OpenMP baseline: one MPI rank
// per node fetches chunks via distributed chunk calculation and executes
// each with an OpenMP worksharing loop (implicit barrier after every
// chunk — the overhead the proposed approach removes).
func (h *harness) runMPIOpenMP() error {
	c := h.cfg
	world, err := h.newWorld(&c.Cluster, 1)
	if err != nil {
		return err
	}
	kind, err := mapIntraToOpenMP(c.Intra)
	if err != nil {
		return err
	}
	inter := h.interSchedule(h.interP())
	n := h.prof.N()

	return world.Run(func(r *mpi.Rank) {
		gw := world.Comm().WinAllocate(r, "global-queue", 2)
		team, err := openmp.NewTeam(h.eng, &c.Cluster, r.Node(), h.wPerNode[r.Node()])
		if err != nil {
			panic(err)
		}
		world.Comm().Barrier(r)
		node := r.Node()

		for {
			schedT0 := r.Now()
			step := gw.FetchAndOp(r, 0, gwStep, 1)
			size := inter.Chunk(int(step), node)
			r.Proc().Sleep(c.ChunkCalcCost)
			start := int(gw.FetchAndOp(r, 0, gwScheduled, int64(size)))
			h.traceSched(h.wOff[node], node, trace.KindSchedGlobal, schedT0, r.Now())
			if start >= n {
				break
			}
			end := start + size
			if end > n {
				end = n
			}
			h.globalChunks++

			res := team.ParallelFor(r.Proc(), openmp.For{
				N:        end - start,
				Schedule: kind,
				Chunk:    c.IntraChunk,
				RangeCost: func(a, b int) sim.Time {
					return h.prof.Range(start+a, start+b)
				},
				Visit: func(tid, a, b int, t0, t1 sim.Time) {
					worker := h.wOff[node] + tid
					h.execute(worker, node, start+a, start+b, t0, t1)
					h.localChunks++
				},
			})
			h.barrierWait += res.BarrierWait
			if h.tr != nil {
				// Record each thread's barrier idle interval.
				for tid, fin := range res.ThreadFinish {
					if res.MaxFinish > fin {
						h.tr.Add(trace.Event{
							Worker: h.wOff[node] + tid, Node: node,
							Kind: trace.KindBarrier, Start: fin, End: res.MaxFinish,
						})
					}
				}
			}
		}
	})
}

// nowaitState is the per-node shared state of the nowait extension: the
// current chunk plus refill coordination. It lives in host memory; the
// simulated costs (atomics, MPI calls, polling) are charged explicitly.
type nowaitState struct {
	cur, end, step, orig int
	exhausted            bool
	refilling            bool
	refillMu             sim.Mutex
}

// threadMPIPenalty is the extra per-call cost of MPI_THREAD_MULTIPLE
// (runtime-internal locking) paid by threads issuing MPI calls.
const threadMPIPenalty = 0.6 * sim.Microsecond

// runMPIOpenMPNoWait implements the paper's future-work variant: OpenMP
// threads never meet a barrier; whichever thread drains the chunk fetches
// the next one via MPI while the others keep executing or briefly poll.
// The implementation mirrors the "many synchronization statements" the
// paper warns about: a per-node refill mutex plus polling on the shared
// chunk descriptor.
func (h *harness) runMPIOpenMPNoWait() error {
	c := h.cfg
	world, err := h.newWorld(&c.Cluster, 1)
	if err != nil {
		return err
	}
	if _, err := mapIntraToOpenMP(c.Intra); err != nil {
		return err
	}
	inter := h.interSchedule(h.interP())
	n := h.prof.N()

	return world.Run(func(r *mpi.Rank) {
		gw := world.Comm().WinAllocate(r, "global-queue", 2)
		world.Comm().Barrier(r)
		node := r.Node()
		st := &nowaitState{}
		var atomicPort sim.Server
		doneThreads := 0
		var join sim.WaitQueue

		threadBody := func(p *sim.Proc, tid int) {
			worker := h.wOff[node] + tid
			for {
				// Grab a sub-chunk from the current chunk (atomic).
				atomicPort.Serve(p, c.Cluster.Mem.LocalAtomic)
				if st.cur < st.end {
					size := h.intraChunkSize(node, st.orig, st.step, tid)
					if size > st.end-st.cur {
						size = st.end - st.cur
					}
					a := st.cur
					st.cur += size
					st.step++
					h.localChunks++
					t0 := p.Now()
					d := c.Cluster.ExecTime(node, h.prof.Range(a, a+size), t0, h.eng.Rand())
					p.Sleep(d)
					h.execute(worker, node, a, a+size, t0, p.Now())
					continue
				}
				if st.exhausted {
					break
				}
				// Chunk drained: exactly one thread refills via MPI.
				if st.refillMu.TryLock() {
					if st.cur >= st.end && !st.exhausted {
						schedT0 := p.Now()
						p.Sleep(threadMPIPenalty)
						step := gw.FetchAndOpFrom(p, node, 0, gwStep, 1)
						size := inter.Chunk(int(step), node)
						p.Sleep(c.ChunkCalcCost)
						start := int(gw.FetchAndOpFrom(p, node, 0, gwScheduled, int64(size)))
						h.traceSched(worker, node, trace.KindSchedGlobal, schedT0, p.Now())
						if start >= n {
							st.exhausted = true
						} else {
							end := start + size
							if end > n {
								end = n
							}
							h.globalChunks++
							st.orig = end - start
							st.step = 0
							st.cur, st.end = start, end
						}
					}
					st.refillMu.Unlock()
					continue
				}
				// Another thread is refilling: poll briefly.
				p.Sleep(1 * sim.Microsecond)
			}
			doneThreads++
			join.WakeAll()
		}

		for tid := 1; tid < h.wPerNode[node]; tid++ {
			tid := tid
			h.eng.Spawn(fmt.Sprintf("nw-n%d-t%d", node, tid), func(p *sim.Proc) {
				threadBody(p, tid)
			})
		}
		threadBody(r.Proc(), 0)
		for doneThreads < h.wPerNode[node] {
			join.Wait(r.Proc())
		}
	})
}
