package core

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ParseApproach maps an approach name to its value. It accepts the
// display forms ("MPI+MPI", "MPI+OpenMP", "MPI+OpenMP(nowait)") and the
// usual CLI spellings ("mpimpi", "mpi-openmp", "nowait"), case-insensitively.
func ParseApproach(s string) (Approach, error) {
	n := strings.ToLower(strings.TrimSpace(s))
	n = strings.NewReplacer("_", "", "-", "", "+", "", " ", "").Replace(n)
	switch n {
	case "mpimpi":
		return MPIMPI, nil
	case "mpiopenmp", "mpiomp", "openmp":
		return MPIOpenMP, nil
	case "mpiopenmp(nowait)", "mpiopenmpnowait", "nowait":
		return MPIOpenMPNoWait, nil
	}
	return 0, fmt.Errorf("core: unknown approach %q", s)
}

// MarshalJSON encodes the approach as its display name ("MPI+MPI",
// "MPI+OpenMP", "MPI+OpenMP(nowait)").
func (a Approach) MarshalJSON() ([]byte, error) {
	switch a {
	case MPIMPI, MPIOpenMP, MPIOpenMPNoWait:
		return json.Marshal(a.String())
	}
	return nil, fmt.Errorf("core: cannot marshal unknown approach %d", int(a))
}

// UnmarshalJSON decodes an approach from any spelling ParseApproach accepts.
func (a *Approach) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("core: approach must be a JSON string: %w", err)
	}
	v, err := ParseApproach(s)
	if err != nil {
		return err
	}
	*a = v
	return nil
}
