package core

import (
	"sort"
	"testing"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Differential oracle: on a 1-node/1-worker machine the hierarchy
// degenerates — there is exactly one requester and the intra level (STATIC
// over one worker) passes every global chunk through untouched — so every
// executor must execute precisely the chunk sequence of a direct
// dls.Schedule walk with the same parameters. This pins the executors'
// distributed chunk calculation (step accounting, clamping, termination)
// to the package-level reference semantics.
func TestExecutorsMatchScheduleWalkOnSingleWorker(t *testing.T) {
	prof := workload.Uniform(1237, 20e-6, 60e-6, 11) // non-round N exercises clamping
	techniques := []dls.Technique{
		dls.STATIC, dls.SS, dls.FSC, dls.GSS, dls.TSS,
		dls.FAC, dls.FAC2, dls.TFSS, dls.RND, dls.WF,
	}
	approaches := []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait}

	for _, tech := range techniques {
		for _, ap := range approaches {
			cfg := Config{
				Cluster: cluster.MiniHPC(1), WorkersPerNode: 1,
				Inter: tech, Intra: dls.STATIC,
				Workload: prof, Approach: ap, Seed: 1,
				CollectTrace: true,
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%v/%v: %v", tech, ap, err)
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", tech, ap, err)
			}
			got := execRanges(res.Trace)
			want := referenceWalk(t, tech, prof)
			if len(got) != len(want) {
				t.Fatalf("%v/%v: executor scheduled %d chunks, reference walk %d\n got: %v\nwant: %v",
					tech, ap, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v/%v: chunk %d = [%d,%d), reference [%d,%d)",
						tech, ap, i, got[i][0], got[i][1], want[i][0], want[i][1])
				}
			}
		}
	}
}

// execRanges extracts the executed iteration ranges in schedule order.
func execRanges(tr *trace.Trace) [][2]int {
	var evs []trace.Event
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindExec {
			evs = append(evs, ev)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	out := make([][2]int, len(evs))
	for i, ev := range evs {
		out[i] = [2]int{ev.IterStart, ev.IterEnd}
	}
	return out
}

// referenceWalk consumes a direct dls.Schedule exactly as the distributed
// chunk calculation does: step-indexed chunks clamped against the
// remaining iterations, using the same parameterization the harness feeds
// the inter level (see harness.interSchedule).
func referenceWalk(t *testing.T, tech dls.Technique, prof *workload.Profile) [][2]int {
	t.Helper()
	params := dls.Params{
		N: prof.N(), P: 1,
		Mean: prof.Mean(), Sigma: prof.CoV() * prof.Mean(),
		Overhead: 3e-6,
	}
	if tech == dls.WF {
		params.Weights = []float64{1}
	}
	sched, err := dls.New(tech, params)
	if err != nil {
		t.Fatalf("reference %v: %v", tech, err)
	}
	var out [][2]int
	next := 0
	for step := 0; next < prof.N(); step++ {
		if step > prof.N()+64 {
			t.Fatalf("reference %v: walk did not terminate", tech)
		}
		size := sched.Chunk(step, 0)
		end := next + size
		if end > prof.N() {
			end = prof.N()
		}
		out = append(out, [2]int{next, end})
		next = end
	}
	return out
}

// TestExecutorsHeterogeneousCores is the regression test for the per-node
// worker plumbing across every executor: on a mixed machine (in both node
// orders) each run must cover the loop exactly, size its flat worker
// slices to the summed per-node counts, and report per-node finish times.
// The nowait executor previously spawned WorkersPerNode threads on every
// node regardless of its core count, indexing past the worker slices.
func TestExecutorsHeterogeneousCores(t *testing.T) {
	prof := workload.Uniform(2048, 20e-6, 60e-6, 3)
	for _, cores := range [][]int{{64, 16}, {16, 64}} {
		for _, ap := range []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait} {
			cl := cluster.MiniHPC(2)
			cl.NodeCores = cores
			cl.NodeSpeed = []float64{1, 0.7}
			res, err := Run(Config{
				Cluster: cl, WorkersPerNode: 64,
				Inter: dls.GSS, Intra: dls.SS,
				Workload: prof, Approach: ap, Seed: 1,
			})
			if err != nil {
				t.Fatalf("cores %v %v: %v", cores, ap, err)
			}
			wantWorkers := cores[0] + cores[1]
			if res.Workers != wantWorkers || len(res.WorkerFinish) != wantWorkers {
				t.Errorf("cores %v %v: Workers = %d (finish len %d), want %d",
					cores, ap, res.Workers, len(res.WorkerFinish), wantWorkers)
			}
			if len(res.NodeWorkers) != 2 || res.NodeWorkers[0] != cores[0] || res.NodeWorkers[1] != cores[1] {
				t.Errorf("cores %v %v: NodeWorkers = %v", cores, ap, res.NodeWorkers)
			}
			for n, f := range res.NodeFinish {
				if f <= 0 || f > res.ParallelTime {
					t.Errorf("cores %v %v: NodeFinish[%d] = %v outside (0, %v]",
						cores, ap, n, f, res.ParallelTime)
				}
			}
		}
	}
}
