package core

import (
	"strings"
	"testing"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testConfig returns a small, fast experiment config.
func testConfig(nodes, perNode int, prof *workload.Profile) Config {
	return Config{
		Cluster:        cluster.MiniHPC(nodes),
		WorkersPerNode: perNode,
		Inter:          dls.GSS,
		Intra:          dls.STATIC,
		Workload:       prof,
		Approach:       MPIMPI,
		Seed:           1,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%v %v+%v): %v", cfg.Approach, cfg.Inter, cfg.Intra, err)
	}
	return res
}

func TestValidateRejects(t *testing.T) {
	prof := workload.Constant(100, 1e-6)
	base := testConfig(2, 4, prof)
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero workers", func(c *Config) { c.WorkersPerNode = 0 }, "WorkersPerNode"},
		{"oversubscribed", func(c *Config) { c.WorkersPerNode = 99 }, "WorkersPerNode"},
		{"nil workload", func(c *Config) { c.Workload = nil }, "workload"},
		{"adaptive inter", func(c *Config) { c.Inter = dls.AWFB }, "unsupported"},
		{"adaptive intra", func(c *Config) { c.Intra = dls.AWFB }, "unsupported"},
		{"weighted intra", func(c *Config) { c.Intra = dls.WF }, "unsupported"},
		{"TSS intra on stock OpenMP", func(c *Config) {
			c.Approach = MPIOpenMP
			c.Intra = dls.TSS
		}, "extended"},
		{"FAC2 intra on stock OpenMP", func(c *Config) {
			c.Approach = MPIOpenMP
			c.Intra = dls.FAC2
		}, "extended"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			_, err := Run(cfg)
			if err == nil {
				t.Fatal("Run accepted an invalid config")
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The extended runtime unlocks TSS/FAC2 intra for MPI+OpenMP.
	cfg := base
	cfg.Approach = MPIOpenMP
	cfg.Intra = dls.TSS
	cfg.ExtendedRuntime = true
	mustRun(t, cfg)
}

// TestCoverageAllCombinations drives every approach × inter × intra cell:
// Run fails internally if any iteration is lost or duplicated.
func TestCoverageAllCombinations(t *testing.T) {
	prof := workload.Uniform(2000, 20e-6, 60e-6, 3)
	inters := []dls.Technique{dls.STATIC, dls.SS, dls.FSC, dls.GSS, dls.TSS, dls.FAC, dls.FAC2, dls.TFSS}
	intras := []dls.Technique{dls.STATIC, dls.SS, dls.GSS, dls.TSS, dls.FAC2}
	for _, app := range []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait} {
		for _, inter := range inters {
			for _, intra := range intras {
				cfg := testConfig(2, 4, prof)
				cfg.Approach = app
				cfg.Inter = inter
				cfg.Intra = intra
				cfg.ExtendedRuntime = true
				res := mustRun(t, cfg)
				if res.ParallelTime <= 0 {
					t.Fatalf("%v %v+%v: non-positive parallel time", app, inter, intra)
				}
				if res.Workers != 8 {
					t.Fatalf("Workers = %d, want 8", res.Workers)
				}
				if res.GlobalChunks < cfg.Cluster.Nodes {
					t.Fatalf("%v %v+%v: only %d global chunks", app, inter, intra, res.GlobalChunks)
				}
				if res.LocalChunks < res.GlobalChunks {
					t.Fatalf("%v %v+%v: local chunks %d < global %d", app, inter, intra, res.LocalChunks, res.GlobalChunks)
				}
			}
		}
	}
}

func TestCoverageEdgeSizes(t *testing.T) {
	for _, n := range []int{1, 3, 7, 17, 63} {
		prof := workload.Constant(n, 10e-6)
		for _, app := range []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait} {
			cfg := testConfig(2, 4, prof)
			cfg.Approach = app
			mustRun(t, cfg)
		}
	}
	// Single node, single worker.
	cfg := testConfig(1, 1, workload.Constant(50, 1e-6))
	mustRun(t, cfg)
}

func TestStaticInterChunkCounts(t *testing.T) {
	// STATIC at the inter-node level is a static division across node
	// groups under both approaches: exactly one global chunk per node.
	prof := workload.Constant(1024, 10e-6)
	for _, app := range []Approach{MPIOpenMP, MPIMPI} {
		cfg := testConfig(4, 4, prof)
		cfg.Approach = app
		cfg.Inter = dls.STATIC
		if res := mustRun(t, cfg); res.GlobalChunks != 4 {
			t.Fatalf("%v: STATIC inter issued %d global chunks, want 4 (one per node)", app, res.GlobalChunks)
		}
	}
	// Dynamic inter techniques serve every rank under MPI+MPI: the first
	// FAC2 batch alone spans 16 chunks.
	cfg := testConfig(4, 4, prof)
	cfg.Inter = dls.FAC2
	if res := mustRun(t, cfg); res.GlobalChunks <= 4 {
		t.Fatalf("MPI+MPI: FAC2 inter issued only %d global chunks", res.GlobalChunks)
	}
}

func TestSSIntraIssuesOneIterationSubChunks(t *testing.T) {
	n := 512
	prof := workload.Constant(n, 10e-6)
	cfg := testConfig(2, 4, prof)
	cfg.Intra = dls.SS
	res := mustRun(t, cfg)
	if res.LocalChunks != n {
		t.Fatalf("SS intra issued %d sub-chunks, want %d", res.LocalChunks, n)
	}
}

func TestDeterminism(t *testing.T) {
	prof := workload.Exponential(1024, 50e-6, 9)
	for _, app := range []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait} {
		cfg := testConfig(2, 8, prof)
		cfg.Approach = app
		a := mustRun(t, cfg)
		b := mustRun(t, cfg)
		if a.ParallelTime != b.ParallelTime {
			t.Fatalf("%v: nondeterministic parallel time %v vs %v", app, a.ParallelTime, b.ParallelTime)
		}
		for i := range a.WorkerFinish {
			if a.WorkerFinish[i] != b.WorkerFinish[i] {
				t.Fatalf("%v: worker %d finish differs", app, i)
			}
		}
	}
}

func TestTraceCollection(t *testing.T) {
	prof := workload.Uniform(256, 10e-6, 50e-6, 5)
	for _, app := range []Approach{MPIMPI, MPIOpenMP} {
		cfg := testConfig(2, 4, prof)
		cfg.Approach = app
		cfg.CollectTrace = true
		res := mustRun(t, cfg)
		if res.Trace == nil {
			t.Fatalf("%v: no trace collected", app)
		}
		// Trace was validated inside Run; sanity-check the Gantt renders.
		g := res.Trace.Gantt(60)
		if !strings.Contains(g, "#") {
			t.Fatalf("%v: Gantt has no execution marks:\n%s", app, g)
		}
		busy := res.Trace.BusyTime()
		for w := range busy {
			diff := float64(busy[w] - res.WorkerCompute[w])
			if diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%v: trace busy %v != accounted compute %v for worker %d",
					app, busy[w], res.WorkerCompute[w], w)
			}
		}
	}
}

func TestComputeConservation(t *testing.T) {
	// Total compute across workers must equal the workload total (no noise,
	// homogeneous speeds).
	prof := workload.Uniform(2048, 10e-6, 30e-6, 7)
	for _, app := range []Approach{MPIMPI, MPIOpenMP, MPIOpenMPNoWait} {
		cfg := testConfig(2, 8, prof)
		cfg.Approach = app
		res := mustRun(t, cfg)
		var total sim.Time
		for _, c := range res.WorkerCompute {
			total += c
		}
		diff := float64(total - prof.Total())
		if diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%v: compute %v != workload total %v", app, total, prof.Total())
		}
	}
}

func TestBarrierWaitOnlyForOpenMP(t *testing.T) {
	// Spiked workload under STATIC intra: the OpenMP implicit barrier must
	// accumulate idle time; MPI+MPI has no barrier by construction.
	prof := workload.Bimodal(512, 5e-6, 500e-6, 0.05, 11)
	cfgOMP := testConfig(2, 8, prof)
	cfgOMP.Approach = MPIOpenMP
	omp := mustRun(t, cfgOMP)
	if omp.BarrierWait <= 0 {
		t.Fatal("MPI+OpenMP reported zero barrier wait on an imbalanced loop")
	}
	cfgMPI := testConfig(2, 8, prof)
	mpi := mustRun(t, cfgMPI)
	if mpi.BarrierWait != 0 {
		t.Fatalf("MPI+MPI reported barrier wait %v", mpi.BarrierWait)
	}
	if mpi.LockAcquisitions == 0 {
		t.Fatal("MPI+MPI reported no lock acquisitions")
	}
	if omp.LockAcquisitions != 0 {
		t.Fatal("MPI+OpenMP reported local-queue lock acquisitions")
	}
}

func TestLockPollingUnderSSContention(t *testing.T) {
	// Fine-grained SS on many workers: the polling protocol must need
	// multiple attempts per acquisition.
	prof := workload.Constant(2048, 10e-6)
	cfg := testConfig(1, 16, prof)
	cfg.Intra = dls.SS
	res := mustRun(t, cfg)
	ratio := float64(res.LockAttempts) / float64(res.LockAcquisitions)
	if ratio < 1.3 {
		t.Fatalf("attempts/acquisition = %.2f under 16-way SS, want contention", ratio)
	}
	// A single worker polls exactly once per acquisition.
	cfg1 := testConfig(1, 1, prof)
	cfg1.Intra = dls.SS
	res1 := mustRun(t, cfg1)
	if res1.LockAttempts != res1.LockAcquisitions {
		t.Fatalf("solo worker needed %d attempts for %d acquisitions", res1.LockAttempts, res1.LockAcquisitions)
	}
}

// --- Shape assertions from the paper (small-scale) --------------------------

// imbalancedProfile is a small real-Mandelbrot workload (1024×128 pixels):
// strongly imbalanced *and* spatially correlated, like the paper's kernel —
// contiguous sub-blocks have wildly different costs, which is what makes
// the implicit barrier expensive. (I.i.d. noise would average out within
// 100-iteration sub-chunks and mask the effect.) The resolution is high
// enough that no single indivisible row dominates the makespan.
func imbalancedProfile() *workload.Profile {
	return workload.MandelbrotProfile(8)
}

func TestShapeGSSStaticMPIMPIWins(t *testing.T) {
	// Fig. 5: with a dynamic inter technique and STATIC intra, avoiding the
	// implicit barrier lets MPI+MPI finish markedly earlier.
	prof := imbalancedProfile()
	mpiCfg := testConfig(2, 16, prof)
	mpiCfg.Inter, mpiCfg.Intra = dls.GSS, dls.STATIC
	ompCfg := mpiCfg
	ompCfg.Approach = MPIOpenMP
	a := mustRun(t, mpiCfg)
	b := mustRun(t, ompCfg)
	if float64(b.ParallelTime) < 1.15*float64(a.ParallelTime) {
		t.Fatalf("GSS+STATIC: MPI+OpenMP %v not clearly slower than MPI+MPI %v",
			b.ParallelTime, a.ParallelTime)
	}
}

func TestShapeSSIntraMPIMPILoses(t *testing.T) {
	// Figs. 4–7, SS column: MPI_Win_lock polling makes SS the worst case
	// for the proposed approach, while OpenMP's cheap atomics shrug it off.
	prof := workload.Constant(8192, 30e-6)
	mpiCfg := testConfig(2, 16, prof)
	mpiCfg.Inter, mpiCfg.Intra = dls.STATIC, dls.SS
	ompCfg := mpiCfg
	ompCfg.Approach = MPIOpenMP
	a := mustRun(t, mpiCfg)
	b := mustRun(t, ompCfg)
	if float64(a.ParallelTime) < 1.5*float64(b.ParallelTime) {
		t.Fatalf("STATIC+SS: MPI+MPI %v not clearly slower than MPI+OpenMP %v",
			a.ParallelTime, b.ParallelTime)
	}
}

func TestShapeStaticInterParity(t *testing.T) {
	// Fig. 4: with STATIC inter (one scheduling round per node group) and a
	// non-SS intra technique, the approaches perform the same.
	prof := imbalancedProfile()
	for _, intra := range []dls.Technique{dls.STATIC, dls.GSS, dls.TSS, dls.FAC2} {
		mpiCfg := testConfig(2, 16, prof)
		mpiCfg.Inter, mpiCfg.Intra = dls.STATIC, intra
		ompCfg := mpiCfg
		ompCfg.Approach = MPIOpenMP
		ompCfg.ExtendedRuntime = true // allow TSS/FAC2 intra for the parity check
		a := mustRun(t, mpiCfg)
		b := mustRun(t, ompCfg)
		ratio := float64(a.ParallelTime) / float64(b.ParallelTime)
		if ratio < 0.75 || ratio > 1.3 {
			t.Fatalf("STATIC+%v: approaches differ by %.2f×, want parity", intra, ratio)
		}
	}
}

func TestShapeNoWaitRecoversBarrierLoss(t *testing.T) {
	// §6 future work: removing the barrier should recover part of the
	// MPI+OpenMP loss. Use an i.i.d. workload: its barrier waits come from
	// block-sum variance rather than an indivisible hot block, so the
	// pipeline across chunk boundaries has something to recover.
	prof := workload.Exponential(8192, 150e-6, 1903)
	base := testConfig(2, 16, prof)
	base.Inter, base.Intra = dls.GSS, dls.STATIC
	omp := base
	omp.Approach = MPIOpenMP
	nw := base
	nw.Approach = MPIOpenMPNoWait
	a := mustRun(t, omp)
	b := mustRun(t, nw)
	if b.ParallelTime >= a.ParallelTime {
		t.Fatalf("nowait %v not faster than barrier variant %v", b.ParallelTime, a.ParallelTime)
	}
}

func TestHeterogeneousClusterStillCovers(t *testing.T) {
	prof := workload.Uniform(2048, 20e-6, 60e-6, 13)
	cfg := testConfig(2, 8, prof)
	cfg.Cluster = cluster.MiniHPCHetero(2, 1.0, 0.5)
	res := mustRun(t, cfg)
	// The slow node stretches the makespan beyond the homogeneous run.
	homo := mustRun(t, testConfig(2, 8, prof))
	if res.ParallelTime <= homo.ParallelTime {
		t.Fatalf("hetero run %v not slower than homogeneous %v", res.ParallelTime, homo.ParallelTime)
	}
}

func TestNoiseKeepsDeterminismPerSeed(t *testing.T) {
	prof := workload.Uniform(512, 20e-6, 60e-6, 17)
	cfg := testConfig(2, 4, prof)
	cfg.Cluster.NoiseCV = 0.1
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.ParallelTime != b.ParallelTime {
		t.Fatal("same seed with noise produced different results")
	}
	cfg.Seed = 2
	c := mustRun(t, cfg)
	if c.ParallelTime == a.ParallelTime {
		t.Fatal("different seed with noise produced identical results")
	}
}

func TestQueueCapacityOverride(t *testing.T) {
	prof := workload.Uniform(1024, 10e-6, 40e-6, 19)
	cfg := testConfig(2, 8, prof)
	cfg.QueueCapacity = 8 // == WorkersPerNode, the provable bound
	mustRun(t, cfg)
}

func BenchmarkRunMPIMPIGSSStatic(b *testing.B) {
	prof := workload.Uniform(4096, 50e-6, 150e-6, 1)
	cfg := testConfig(2, 16, prof)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunMPIOpenMPGSSStatic(b *testing.B) {
	prof := workload.Uniform(4096, 50e-6, 150e-6, 1)
	cfg := testConfig(2, 16, prof)
	cfg.Approach = MPIOpenMP
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
