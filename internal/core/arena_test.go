package core

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/workload"
)

// TestArenaReuseByteIdentical is the pooled-arena oracle: the same cell run
// through a fresh engine/world and through a pooled context — dirtied in
// between by cells of different shapes, approaches and seeds — must produce
// byte-identical results, including the full event trace. This is the
// contract DESIGN.md §8 rests on: Engine.Reset/World.Reset restore the exact
// NewEngine/NewWorld starting state.
func TestArenaReuseByteIdentical(t *testing.T) {
	prof := workload.Uniform(1536, 15e-6, 45e-6, 11)
	cell := Config{
		Cluster:        cluster.MiniHPC(2),
		WorkersPerNode: 8,
		Inter:          dls.GSS,
		Intra:          dls.SS, // lock contention: exercises ports, pollers, wake chains
		Workload:       prof,
		Approach:       MPIMPI,
		Seed:           3,
		CollectTrace:   true,
	}
	dirty := []Config{
		{ // different machine shape and approach
			Cluster: cluster.MiniHPCHetero(3, 1.0, 0.6), WorkersPerNode: 4,
			Inter: dls.FAC2, Intra: dls.STATIC,
			Workload: workload.Constant(700, 20e-6), Approach: MPIOpenMP, Seed: 9,
		},
		{ // different seed and noise on the same executor
			Cluster: withNoiseCV(cluster.MiniHPC(4), 0.2), WorkersPerNode: 16,
			Inter: dls.TSS, Intra: dls.GSS,
			Workload: workload.Exponential(2048, 40e-6, 5), Approach: MPIMPI, Seed: 17,
		},
	}

	harnessPool = sync.Pool{} // guarantee the first run builds a fresh arena
	fresh := mustRun(t, cell)
	for _, d := range dirty {
		mustRun(t, d)
	}
	pooled := mustRun(t, cell) // reuses the arena the dirty cells retired
	pooled2 := mustRun(t, cell)

	for _, got := range []*Result{pooled, pooled2} {
		if got.ParallelTime != fresh.ParallelTime {
			t.Fatalf("pooled ParallelTime %v != fresh %v", got.ParallelTime, fresh.ParallelTime)
		}
		if !reflect.DeepEqual(got.WorkerFinish, fresh.WorkerFinish) ||
			!reflect.DeepEqual(got.WorkerCompute, fresh.WorkerCompute) ||
			!reflect.DeepEqual(got.NodeFinish, fresh.NodeFinish) {
			t.Fatal("pooled per-worker results differ from fresh run")
		}
		if got.GlobalChunks != fresh.GlobalChunks || got.LocalChunks != fresh.LocalChunks ||
			got.LockAttempts != fresh.LockAttempts || got.LockAcquisitions != fresh.LockAcquisitions {
			t.Fatalf("pooled counters differ: %+v vs fresh %+v", got, fresh)
		}
		if !reflect.DeepEqual(got.Trace.Events, fresh.Trace.Events) {
			t.Fatal("pooled event trace differs from fresh run")
		}
	}
}

func withNoiseCV(c cluster.Config, cv float64) cluster.Config {
	c.NoiseCV = cv
	return c
}

// TestPooledSweepLeaksNoGoroutines is the goroutine-leak guard for the
// arena pool: MPI+MPI cells are goroutine-free machines and MPI+OpenMP rank
// processes exit with their cell, so a pooled sweep must leave the host
// goroutine count where it found it.
func TestPooledSweepLeaksNoGoroutines(t *testing.T) {
	prof := workload.Uniform(1024, 15e-6, 40e-6, 7)
	cfgs := []Config{
		{Cluster: cluster.MiniHPC(4), WorkersPerNode: 16, Inter: dls.GSS, Intra: dls.SS,
			Workload: prof, Approach: MPIMPI, Seed: 1},
		{Cluster: cluster.MiniHPC(2), WorkersPerNode: 8, Inter: dls.FAC2, Intra: dls.GSS,
			Workload: prof, Approach: MPIOpenMP, Seed: 2},
		{Cluster: cluster.MiniHPC(2), WorkersPerNode: 8, Inter: dls.GSS, Intra: dls.STATIC,
			Workload: prof, Approach: MPIOpenMPNoWait, Seed: 3},
	}
	run := func() {
		for _, cfg := range cfgs {
			if _, err := RunSummary(cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	run() // warm the pool and any lazy runtime machinery
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		run()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("pooled sweep leaked goroutines: %d before, %d after", before, after)
	}
}

// TestMPIMPISpawnsNoGoroutines pins the goroutine-free rank contract: an
// MPI+MPI cell must run start to finish without spawning a single simulated
// process (and therefore no goroutines at all).
func TestMPIMPISpawnsNoGoroutines(t *testing.T) {
	cfg := Config{
		Cluster: cluster.MiniHPC(2), WorkersPerNode: 16,
		Inter: dls.GSS, Intra: dls.SS,
		Workload: workload.Uniform(2048, 15e-6, 40e-6, 3),
		Approach: MPIMPI, Seed: 1,
	}
	h, err := runHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spawned := h.eng.ProcsSpawned()
	h.release()
	if spawned != 0 {
		t.Fatalf("MPI+MPI cell spawned %d simulated processes, want 0", spawned)
	}
}
