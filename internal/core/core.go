// Package core implements the paper's contribution: hierarchical dynamic
// loop self-scheduling on distributed memory with two executors sharing one
// distributed chunk-calculation substrate.
//
// Both executors schedule at two levels. At the inter-node level, a global
// work queue — two counters (scheduling step, scheduled iterations) in an
// RMA window on rank 0 — is advanced with MPI_Fetch_and_op; every node
// computes its own chunks from the step it obtained (Eleliemy & Ciorba's
// distributed chunk calculation, no master process). At the intra-node
// level the two approaches differ, and that difference is the paper:
//
//   - MPI+MPI (§3): all ranks of a node share a local work queue in an
//     MPI-3 shared-memory window guarded by MPI_Win_lock / MPI_Win_sync.
//     Whenever a rank finds the local queue empty it fetches a fresh global
//     chunk and refills — "the fastest process always takes this
//     responsibility" — so no rank ever waits for teammates.
//
//   - MPI+OpenMP (HLS-style baseline): one rank per node executes each
//     global chunk with an OpenMP worksharing loop; the loop's implicit
//     barrier synchronizes all threads before the next chunk is fetched.
//
// A third executor, MPIOpenMPNoWait, implements the paper's future-work
// idea: OpenMP threads pipeline across chunk boundaries with the fastest
// thread fetching new chunks under MPI_THREAD_MULTIPLE.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/perturb"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Approach selects the intra-node execution model.
type Approach int

// The implemented approaches.
const (
	// MPIMPI is the paper's proposed approach (§3).
	MPIMPI Approach = iota
	// MPIOpenMP is the existing hierarchical baseline (§4).
	MPIOpenMP
	// MPIOpenMPNoWait is the paper's future-work variant: no implicit
	// barrier, threads self-schedule across chunk boundaries.
	MPIOpenMPNoWait
)

func (a Approach) String() string {
	switch a {
	case MPIMPI:
		return "MPI+MPI"
	case MPIOpenMP:
		return "MPI+OpenMP"
	case MPIOpenMPNoWait:
		return "MPI+OpenMP(nowait)"
	}
	return fmt.Sprintf("Approach(%d)", int(a))
}

// Config describes one hierarchical scheduling experiment.
type Config struct {
	Cluster cluster.Config
	// WorkersPerNode is the number of MPI ranks per node (MPI+MPI) or
	// OpenMP threads per node (MPI+OpenMP). The paper uses 16. On a
	// heterogeneous machine it acts as a per-node cap: node n runs
	// min(WorkersPerNode, Cluster.Cores(n)) workers, so a 64-core KNL node
	// fills all its cores at WorkersPerNode = 64 while a 16-core Xeon
	// neighbour still runs 16.
	WorkersPerNode int
	// Inter is the DLS technique at the inter-node level (P = nodes).
	Inter dls.Technique
	// Intra is the technique at the intra-node level, applied per chunk
	// (P = WorkersPerNode).
	Intra dls.Technique
	// IntraChunk is the OpenMP schedule-clause chunk argument (0 = default).
	IntraChunk int
	// Workload supplies the loop and its per-iteration costs.
	Workload *workload.Profile
	Approach Approach
	// Seed drives the engine RNG (noise); runs are bit-deterministic per seed.
	Seed int64
	// Perturb describes scenario perturbations (internal/perturb): system
	// noise, transient slowdowns, background load. The zero value keeps the
	// machine smooth. A zero Perturb.Seed inherits Seed.
	Perturb perturb.Config
	// ExtendedRuntime permits TSS/FAC2 intra-node under MPI+OpenMP,
	// modelling the LaPeSD-libGOMP runtime the paper defers to future work.
	// Without it those combinations error, matching the Intel runtime.
	ExtendedRuntime bool
	// CollectTrace records a full per-chunk event trace (memory-heavy for
	// SS runs; coverage is always verified via a bitmap regardless).
	CollectTrace bool
	// QueueCapacity bounds the node-local work queue in chunks
	// (default WorkersPerNode, which is also the provable upper bound).
	QueueCapacity int
	// ChunkCalcCost is the CPU cost of computing one chunk's size inside a
	// critical section (default 0.15 µs).
	ChunkCalcCost sim.Time
	// Interrupt, when non-nil, is polled by the engine during the run; once
	// it reads true the run aborts with an error wrapping sim.ErrInterrupted.
	// It exists so services can stop a simulation whose requester has gone
	// away (client disconnect). It never affects a run that completes: the
	// flag is only read, so results stay pure functions of the other fields.
	Interrupt *atomic.Bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueCapacity <= 0 {
		// The provable bound is the node's worker count; on heterogeneous
		// machines size for the largest node so every local queue fits.
		out.QueueCapacity = out.WorkersPerNode
		if m := out.Cluster.MaxCores(); out.QueueCapacity > m {
			out.QueueCapacity = m
		}
	}
	if out.ChunkCalcCost <= 0 {
		out.ChunkCalcCost = 0.15 * sim.Microsecond
	}
	if out.Perturb.Seed == 0 {
		out.Perturb.Seed = out.Seed
	}
	return out
}

// workersOn reports node n's worker count: WorkersPerNode capped by the
// node's core count.
func (c *Config) workersOn(n int) int {
	if k := c.Cluster.Cores(n); c.WorkersPerNode > k {
		return k
	}
	return c.WorkersPerNode
}

// intraSupported lists the techniques valid at the intra-node level for the
// MPI+MPI executor (weighted/adaptive techniques need per-worker feedback
// plumbing that the shared-queue word layout doesn't carry).
func intraSupported(t dls.Technique) bool {
	switch t {
	case dls.STATIC, dls.SS, dls.FSC, dls.GSS, dls.TSS, dls.FAC, dls.FAC2, dls.TFSS, dls.RND:
		return true
	}
	return false
}

// Validate checks the configuration, including the paper's runtime
// constraint: the stock OpenMP runtime only offers static/dynamic/guided.
func (c *Config) Validate() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.WorkersPerNode <= 0 || c.WorkersPerNode > c.Cluster.MaxCores() {
		return fmt.Errorf("core: WorkersPerNode %d out of 1..%d", c.WorkersPerNode, c.Cluster.MaxCores())
	}
	if err := c.Perturb.Validate(); err != nil {
		return err
	}
	if c.Workload == nil || c.Workload.N() == 0 {
		return fmt.Errorf("core: empty workload")
	}
	if !intraSupported(c.Inter) && c.Inter != dls.WF {
		return fmt.Errorf("core: inter-node technique %v unsupported", c.Inter)
	}
	if !intraSupported(c.Intra) {
		return fmt.Errorf("core: intra-node technique %v unsupported", c.Intra)
	}
	if c.Approach == MPIOpenMP || c.Approach == MPIOpenMPNoWait {
		kind, err := mapIntraToOpenMP(c.Intra)
		if err != nil {
			return err
		}
		if kind.Extended() && !c.ExtendedRuntime {
			return fmt.Errorf("core: intra %v requires the extended OpenMP runtime "+
				"(the paper's Intel stack supports only static/dynamic/guided; set ExtendedRuntime)", c.Intra)
		}
	}
	return nil
}

// Result reports one experiment.
type Result struct {
	Approach     Approach
	Inter, Intra dls.Technique
	Nodes        int
	Workers      int // total workers (Σ per-node worker counts)
	// NodeWorkers is each node's worker count; worker w of the flat slices
	// below lives on the node whose [offset, offset+count) range contains w,
	// in node order.
	NodeWorkers []int

	// ParallelTime is the paper's metric: the time at which the last
	// worker finished executing loop iterations.
	ParallelTime sim.Time
	// WorkerFinish is each worker's last-execution completion time.
	WorkerFinish []sim.Time
	// WorkerCompute is each worker's accumulated execution time.
	WorkerCompute []sim.Time
	// NodeFinish is each node's last-execution completion time (the max
	// over its workers) — the robustness sweeps key on its spread.
	NodeFinish []sim.Time
	// LoadImbalance is max/mean − 1 over worker finish times.
	LoadImbalance float64

	GlobalChunks int // chunks issued by the global queue
	LocalChunks  int // sub-chunks issued at the intra-node level

	// LockAttempts / LockAcquisitions count MPI_Win_lock activity on the
	// local queues (MPI+MPI only); their ratio exposes the polling storms.
	LockAttempts     int64
	LockAcquisitions int64
	// BarrierWait is the accumulated implicit-barrier idle time
	// (MPI+OpenMP only) — the overhead the paper's Figure 2 illustrates.
	BarrierWait sim.Time

	// Trace is non-nil when Config.CollectTrace was set.
	Trace *trace.Trace
}

// Run executes the configured experiment and returns its result. The run
// fails if the executors violate the exact-coverage invariant — every loop
// iteration executed exactly once. The simulation arena (engine, MPI world,
// executor scratch) is drawn from a pool and reinitialized in place, which
// is observationally identical to building it from scratch (DESIGN.md §8);
// results are a pure function of cfg either way.
func Run(cfg Config) (*Result, error) {
	h, err := runHarness(cfg)
	if err != nil {
		return nil, err
	}
	res := h.result()
	h.release()
	return res, nil
}

// Summary is the compact per-cell outcome sweep drivers aggregate
// incrementally: scalars only, no per-worker slices, so thousand-cell
// sweeps run flat in memory. Every value is computed with exactly the
// arithmetic Run's Result consumers would have used.
type Summary struct {
	ParallelTime     sim.Time `json:"parallel_time"`
	NodeFinishCoV    float64  `json:"node_finish_cov"` // CoV over per-node last-finish times
	LoadImbalance    float64  `json:"load_imbalance"`
	Workers          int      `json:"workers"`
	GlobalChunks     int      `json:"global_chunks"`
	LocalChunks      int      `json:"local_chunks"`
	LockAttempts     int64    `json:"lock_attempts"`
	LockAcquisitions int64    `json:"lock_acquisitions"`
	BarrierWait      sim.Time `json:"barrier_wait"`
}

// RunSummary executes the experiment like Run but returns only the compact
// summary, skipping the Result's per-worker slice copies.
func RunSummary(cfg Config) (Summary, error) {
	h, err := runHarness(cfg)
	if err != nil {
		return Summary{}, err
	}
	s := h.summary()
	h.release()
	return s, nil
}

func runHarness(cfg Config) (*harness, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	if c.Perturb.Enabled() {
		m, err := perturb.New(c.Perturb, c.Cluster.Nodes)
		if err != nil {
			return nil, err
		}
		c.Cluster.Perturb = m
	}
	h := newHarness(&c)
	var err error
	switch c.Approach {
	case MPIMPI:
		err = h.runMPIMPI()
	case MPIOpenMP:
		err = h.runMPIOpenMP()
	case MPIOpenMPNoWait:
		err = h.runMPIOpenMPNoWait()
	default:
		return nil, fmt.Errorf("core: unknown approach %v", c.Approach)
	}
	if err != nil {
		return nil, err
	}
	if err := h.checkCoverage(); err != nil {
		return nil, err
	}
	return h, nil
}

// harness carries the shared bookkeeping of one run.
type harness struct {
	cfg   *Config
	eng   *sim.Engine
	world *mpi.World // pooled across cells; reset per run (DESIGN.md §8)
	prof  *workload.Profile

	nWorkers int
	wPerNode []int // workers hosted per node
	wOff     []int // first flat worker index of each node
	finish   []sim.Time
	compute  []sim.Time

	bitmap   []uint64
	executed int

	globalChunks int
	localChunks  int
	lockAtt      int64
	lockAcq      int64
	barrierWait  sim.Time

	tr *trace.Trace

	// Intra-level schedule cache, one slice per node indexed by chunk
	// length; schedules are pure functions of (step, worker) so sharing
	// them per node is safe. Slice indexing keeps the steady-state lookup
	// in takeHeadLocked allocation- and hash-free (chunk lengths repeat
	// heavily: inter-level techniques emit few distinct sizes). Lengths of
	// intraCacheCap or more use the one-entry per-node cache below instead
	// of inflating the slice.
	intraCache  [][]dls.Schedule
	intraBigLen []int
	intraBig    []dls.Schedule
	sigma       float64
}

// intraCacheCap bounds the slice-indexed intra-schedule cache per node;
// chunk lengths at or above it (rare, e.g. full-scale inter-STATIC slabs)
// use the one-entry cache plus the process-wide memo.
const intraCacheCap = 1 << 14

// harnessPool holds retired cell arenas: harness scratch plus the engine and
// MPI world attached to it. Sweep workers draw from it so a thousand-cell
// sweep reuses a handful of arenas instead of rebuilding the simulated
// machine — and spawning its goroutines — per cell (DESIGN.md §8).
var harnessPool sync.Pool

// Arena-pool telemetry: how many cells drew a recycled arena versus built a
// fresh one, and how many arenas were returned after clean runs. The gap
// between gets and puts counts arenas abandoned after executor errors.
// Exposed by hdlsd's /metrics to observe pool behavior under live traffic.
var (
	arenaReuses atomic.Int64
	arenaBuilds atomic.Int64
	arenaPuts   atomic.Int64
)

// ArenaStats reports process-wide simulation-arena pool counters: cells
// served by a recycled arena, cells that built a fresh arena, and arenas
// returned to the pool after clean runs.
func ArenaStats() (reuses, builds, puts int64) {
	return arenaReuses.Load(), arenaBuilds.Load(), arenaPuts.Load()
}

// newHarness returns a run-ready harness for c: a pooled arena reinitialized
// in place when one is available, a freshly built one otherwise. The two are
// observationally identical — Engine.Reset and World.Reset restore the
// exact NewEngine/NewWorld starting state, and every scratch structure below
// is resized and zeroed explicitly.
func newHarness(c *Config) *harness {
	h, _ := harnessPool.Get().(*harness)
	if h == nil {
		h = &harness{eng: sim.NewEngine(c.Seed)}
		arenaBuilds.Add(1)
	} else {
		h.eng.Reset(c.Seed)
		arenaReuses.Add(1)
	}
	h.eng.SetInterrupt(c.Interrupt)
	n := c.Workload.N()
	nodes := c.Cluster.Nodes
	h.cfg = c
	h.prof = c.Workload
	h.nWorkers = 0
	h.wPerNode = resizeZeroed(h.wPerNode, nodes)
	h.wOff = resizeZeroed(h.wOff, nodes)
	for node := 0; node < nodes; node++ {
		h.wPerNode[node] = c.workersOn(node)
		h.wOff[node] = h.nWorkers
		h.nWorkers += h.wPerNode[node]
	}
	h.finish = resizeZeroed(h.finish, h.nWorkers)
	h.compute = resizeZeroed(h.compute, h.nWorkers)
	h.bitmap = resizeZeroed(h.bitmap, (n+63)/64)
	h.executed = 0
	h.globalChunks, h.localChunks = 0, 0
	h.lockAtt, h.lockAcq = 0, 0
	h.barrierWait = 0
	if cap(h.intraCache) < nodes {
		h.intraCache = make([][]dls.Schedule, nodes)
	} else {
		h.intraCache = h.intraCache[:nodes]
		for node := range h.intraCache {
			cache := h.intraCache[node]
			for i := range cache {
				cache[i] = nil
			}
		}
	}
	h.intraBigLen = resizeZeroed(h.intraBigLen, nodes)
	h.intraBig = resizeZeroed(h.intraBig, nodes)
	h.sigma = h.prof.CoV() * h.prof.Mean()
	h.tr = nil
	if c.CollectTrace {
		h.tr = trace.New(h.nWorkers) // escapes into the Result; never pooled
	}
	return h
}

// release returns a cleanly finished harness to the arena pool. Callers must
// not release after an executor error: a failed run can leave live processes
// or queued events behind, and such an arena is abandoned to the GC instead
// (Engine.Reset would refuse it anyway).
func (h *harness) release() {
	h.cfg = nil
	h.prof = nil
	h.tr = nil
	arenaPuts.Add(1)
	harnessPool.Put(h)
}

// resizeZeroed returns s resized to n zeroed entries, reusing capacity.
func resizeZeroed[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// newWorld returns the cell's MPI world: the pooled world reset in place
// when the harness came from the arena pool (byte-identical to a fresh one
// by World.Reset's contract), or a newly built one otherwise.
func (h *harness) newWorld(cfg *cluster.Config, ranksPerNode int) (*mpi.World, error) {
	if h.world != nil {
		if err := h.world.Reset(h.eng, cfg, ranksPerNode); err != nil {
			return nil, err
		}
		return h.world, nil
	}
	w, err := mpi.NewWorld(h.eng, cfg, ranksPerNode)
	if err != nil {
		return nil, err
	}
	h.world = w
	return w, nil
}

// interP returns the number of requesters the global queue serves.
//
// Under MPI+OpenMP only the per-node ranks request chunks, so P = nodes.
// Under MPI+MPI every rank participates in the distributed chunk
// calculation, so dynamic techniques use P = nodes × WorkersPerNode —
// finer global chunks that the local queues subdivide (this is what lets
// the proposed approach track the ideal time in Figs. 5–7). STATIC is the
// exception on both sides: a static division is decided "prior to
// execution" across the node groups (one N/nodes slab per node, the
// paper's "STATIC is the first level of scheduling (the inter-node
// scheduling)"), which is why Fig. 4 shows the two approaches matching.
func (h *harness) interP() int {
	if h.cfg.Approach == MPIMPI && h.cfg.Inter != dls.STATIC {
		return h.nWorkers
	}
	return h.cfg.Cluster.Nodes
}

// nodeOfWorker maps a flat worker index back to its hosting node.
func (h *harness) nodeOfWorker(w int) int {
	for node := len(h.wOff) - 1; node > 0; node-- {
		if w >= h.wOff[node] {
			return node
		}
	}
	return 0
}

// interSchedule builds the global-queue schedule for interP requesters.
// Weighted factoring at the inter level (the heterogeneity extension) takes
// its per-requester weights from the cluster's node speeds.
func (h *harness) interSchedule(p int) dls.Schedule {
	params := dls.Params{
		N: h.prof.N(), P: p,
		Mean: h.prof.Mean(), Sigma: h.sigma,
		Overhead: 3e-6, // FSC: global scheduling op ≈ one remote atomic
	}
	if h.cfg.Inter == dls.WF {
		weights := make([]float64, p)
		for i := range weights {
			node := i
			if p > h.cfg.Cluster.Nodes {
				node = h.nodeOfWorker(i) // requesters are ranks
			}
			weights[i] = h.cfg.Cluster.Speed(node)
		}
		params.Weights = weights
	}
	// Non-adaptive inter schedules are pure: identical cells across a sweep
	// share one immutable memoized instance.
	return dls.Shared(h.cfg.Inter, params)
}

// intraChunkSize returns the sub-chunk size for a chunk of length origLen at
// intra scheduling step, requested by node-local worker w. The intra-level
// worker count is the hosting node's (per-node on heterogeneous machines).
func (h *harness) intraChunkSize(node, origLen, step, w int) int {
	c := h.cfg
	nw := h.wPerNode[node]
	switch c.Intra {
	case dls.SS:
		return 1
	case dls.STATIC:
		return (origLen + nw - 1) / nw
	case dls.GSS:
		p := float64(nw)
		if p == 1 {
			if step == 0 {
				return origLen
			}
			return 1
		}
		f := float64(origLen) / p * math.Pow(1-1/p, float64(step))
		s := int(math.Ceil(f))
		if s < 1 {
			s = 1
		}
		return s
	}
	// Intra schedules are pure functions of their parameters, so identical
	// (technique, N, P, mean, sigma) cells — and identical chunk lengths in
	// other nodes or other sweep cells — share one immutable schedule from
	// the process-wide memo. Steady-state lengths are small and repeat
	// heavily, so they index a per-node slice (allocation- and hash-free);
	// the few large one-off lengths (e.g. an inter-STATIC slab at full
	// scale) go straight to the memo instead of inflating the slice.
	if origLen >= intraCacheCap {
		// One-entry per-node cache: a large chunk is consumed sub-chunk by
		// sub-chunk before the next appears, so the same length repeats.
		if h.intraBigLen[node] != origLen {
			h.intraBig[node] = dls.Shared(c.Intra, dls.Params{
				N: origLen, P: nw,
				Mean: h.prof.Mean(), Sigma: h.sigma,
				Overhead: 3e-6,
			})
			h.intraBigLen[node] = origLen
		}
		return h.intraBig[node].Chunk(step, w)
	}
	cache := h.intraCache[node]
	if origLen < len(cache) {
		if sched := cache[origLen]; sched != nil {
			return sched.Chunk(step, w)
		}
	} else {
		grown := make([]dls.Schedule, origLen+1)
		copy(grown, cache)
		cache = grown
		h.intraCache[node] = cache
	}
	sched := dls.Shared(c.Intra, dls.Params{
		N: origLen, P: nw,
		Mean: h.prof.Mean(), Sigma: h.sigma,
		Overhead: 3e-6,
	})
	cache[origLen] = sched
	return sched.Chunk(step, w)
}

// execute accounts one executed range for worker w: coverage bitmap,
// compute time, finish time, and the optional trace event.
func (h *harness) execute(w, node, a, b int, start, end sim.Time) {
	if a < b {
		h.mark(w, a, b)
	}
	h.executed += b - a
	h.compute[w] += end - start
	if end > h.finish[w] {
		h.finish[w] = end
	}
	if h.tr != nil {
		h.tr.Add(trace.Event{
			Worker: w, Node: node, Kind: trace.KindExec,
			Start: start, End: end, IterStart: a, IterEnd: b,
		})
	}
}

// mark sets coverage bits for the non-empty range [a, b) with whole-word
// operations: overlap detection is one AND per word, setting one OR. The
// double-execution panic is byte-compatible with the per-iteration loop —
// it names the lowest doubly-executed iteration.
func (h *harness) mark(w, a, b int) {
	wa, wb := a>>6, (b-1)>>6
	maskA := ^uint64(0) << uint(a&63)
	maskB := ^uint64(0) >> uint(63-(b-1)&63)
	if wa == wb {
		m := maskA & maskB
		if dup := h.bitmap[wa] & m; dup != 0 {
			h.panicTwice(wa, dup, w)
		}
		h.bitmap[wa] |= m
		return
	}
	if dup := h.bitmap[wa] & maskA; dup != 0 {
		h.panicTwice(wa, dup, w)
	}
	h.bitmap[wa] |= maskA
	for i := wa + 1; i < wb; i++ {
		if h.bitmap[i] != 0 {
			h.panicTwice(i, h.bitmap[i], w)
		}
		h.bitmap[i] = ^uint64(0)
	}
	if dup := h.bitmap[wb] & maskB; dup != 0 {
		h.panicTwice(wb, dup, w)
	}
	h.bitmap[wb] |= maskB
}

// panicTwice reports the first doubly-executed iteration in word idx.
func (h *harness) panicTwice(idx int, dup uint64, w int) {
	i := idx*64 + bits.TrailingZeros64(dup)
	panic(fmt.Sprintf("core: iteration %d executed twice (worker %d)", i, w))
}

func (h *harness) checkCoverage() error {
	n := h.prof.N()
	if h.executed != n {
		return fmt.Errorf("core: executed %d of %d iterations", h.executed, n)
	}
	for i := range h.bitmap {
		want := ^uint64(0)
		if hi := n - i*64; hi < 64 {
			want >>= uint(64 - hi)
		}
		if miss := want &^ h.bitmap[i]; miss != 0 {
			return fmt.Errorf("core: iteration %d never executed", i*64+bits.TrailingZeros64(miss))
		}
	}
	if h.tr != nil {
		if err := h.tr.Validate(n); err != nil {
			return err
		}
	}
	return nil
}

func (h *harness) makespan() sim.Time {
	var m sim.Time
	for _, f := range h.finish {
		if f > m {
			m = f
		}
	}
	return m
}

// summary computes the compact outcome with the same floating-point
// arithmetic as result() plus the stats the sweep drivers derive from it
// (node-finish CoV as in hdls.RunRobustness, imbalance as in result).
func (h *harness) summary() Summary {
	fin := make([]float64, len(h.finish))
	for i, f := range h.finish {
		fin[i] = float64(f)
	}
	nf := make([]float64, h.cfg.Cluster.Nodes)
	for node := range nf {
		var m sim.Time
		for w := h.wOff[node]; w < h.wOff[node]+h.wPerNode[node]; w++ {
			if h.finish[w] > m {
				m = h.finish[w]
			}
		}
		nf[node] = float64(m)
	}
	return Summary{
		ParallelTime:     h.makespan(),
		NodeFinishCoV:    stats.CoV(nf),
		LoadImbalance:    stats.LoadImbalance(fin),
		Workers:          h.nWorkers,
		GlobalChunks:     h.globalChunks,
		LocalChunks:      h.localChunks,
		LockAttempts:     h.lockAtt,
		LockAcquisitions: h.lockAcq,
		BarrierWait:      h.barrierWait,
	}
}

func (h *harness) result() *Result {
	fin := make([]float64, len(h.finish))
	for i, f := range h.finish {
		fin[i] = float64(f)
	}
	nodeFinish := make([]sim.Time, h.cfg.Cluster.Nodes)
	for node := range nodeFinish {
		for w := h.wOff[node]; w < h.wOff[node]+h.wPerNode[node]; w++ {
			if h.finish[w] > nodeFinish[node] {
				nodeFinish[node] = h.finish[w]
			}
		}
	}
	return &Result{
		Approach:         h.cfg.Approach,
		Inter:            h.cfg.Inter,
		Intra:            h.cfg.Intra,
		Nodes:            h.cfg.Cluster.Nodes,
		Workers:          h.nWorkers,
		NodeWorkers:      append([]int(nil), h.wPerNode...),
		NodeFinish:       nodeFinish,
		ParallelTime:     h.makespan(),
		WorkerFinish:     append([]sim.Time(nil), h.finish...),
		WorkerCompute:    append([]sim.Time(nil), h.compute...),
		LoadImbalance:    stats.LoadImbalance(fin),
		GlobalChunks:     h.globalChunks,
		LocalChunks:      h.localChunks,
		LockAttempts:     h.lockAtt,
		LockAcquisitions: h.lockAcq,
		BarrierWait:      h.barrierWait,
		Trace:            h.tr,
	}
}
