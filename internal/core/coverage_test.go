package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/workload"
)

// testHarness builds a bare harness over n iterations for white-box tests
// of the coverage bitmap and the schedule cache.
func testHarness(t *testing.T, n int) *harness {
	t.Helper()
	cfg := Config{
		Cluster: cluster.MiniHPC(1), WorkersPerNode: 4,
		Inter: dls.GSS, Intra: dls.TSS,
		Workload: workload.Constant(n, 1e-5), Approach: MPIMPI, Seed: 1,
	}
	c := cfg.withDefaults()
	return newHarness(&c)
}

// naiveMark is the per-iteration oracle the word-level bitmap replaced: it
// must agree bit for bit, including which iteration a double-execution
// panic names.
func naiveMark(bitmap []uint64, w, a, b int) {
	for i := a; i < b; i++ {
		idx, bit := i/64, uint64(1)<<uint(i%64)
		if bitmap[idx]&bit != 0 {
			panic(fmt.Sprintf("core: iteration %d executed twice (worker %d)", i, w))
		}
		bitmap[idx] |= bit
	}
}

func recoverPanic(f func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	f()
	return ""
}

// TestMarkMatchesNaiveOracle drives the word-level bitmap and the naive
// per-iteration loop through identical random range sequences — adjacent,
// overlapping, unaligned, word-crossing — and demands identical bitmaps
// and identical panic messages.
func TestMarkMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(500)
		h := testHarness(t, n)
		oracle := make([]uint64, len(h.bitmap))
		for op := 0; op < 40; op++ {
			a := rng.Intn(n)
			b := a + 1 + rng.Intn(n-a)
			w := rng.Intn(8)
			want := recoverPanic(func() { naiveMark(oracle, w, a, b) })
			got := recoverPanic(func() { h.mark(w, a, b) })
			if got != want {
				t.Fatalf("trial %d op %d [%d,%d): panic %q, oracle %q", trial, op, a, b, got, want)
			}
			if want != "" {
				break // state after a panic is unspecified; next trial
			}
			for i := range oracle {
				if h.bitmap[i] != oracle[i] {
					t.Fatalf("trial %d op %d [%d,%d): word %d = %#x, oracle %#x",
						trial, op, a, b, i, h.bitmap[i], oracle[i])
				}
			}
		}
	}
}

// TestMarkExactRanges pins the aligned/unaligned word edges.
func TestMarkExactRanges(t *testing.T) {
	for _, tc := range [][2]int{{0, 64}, {0, 1}, {63, 65}, {64, 128}, {1, 191}, {127, 129}, {0, 192}} {
		h := testHarness(t, 192)
		h.mark(0, tc[0], tc[1])
		for i := 0; i < 192; i++ {
			got := h.bitmap[i/64]&(uint64(1)<<uint(i%64)) != 0
			want := i >= tc[0] && i < tc[1]
			if got != want {
				t.Fatalf("range [%d,%d): bit %d = %v, want %v", tc[0], tc[1], i, got, want)
			}
		}
	}
}

// TestCheckCoverageWordLevel verifies the word-level full-coverage check
// reports the first missing iteration, exactly as the per-iteration scan.
func TestCheckCoverageWordLevel(t *testing.T) {
	h := testHarness(t, 130)
	h.mark(0, 0, 130)
	h.executed = 130
	if err := h.checkCoverage(); err != nil {
		t.Fatalf("full coverage rejected: %v", err)
	}
	h2 := testHarness(t, 130)
	h2.mark(0, 0, 100)
	h2.mark(0, 101, 130)
	h2.executed = 130 // fake the count so the bitmap path is exercised
	err := h2.checkCoverage()
	if err == nil || err.Error() != "core: iteration 100 never executed" {
		t.Fatalf("gap detection = %v, want iteration 100 never executed", err)
	}
}

// TestExecutorSteadyStateZeroAlloc is the alloc-regression guard: the
// steady-state executor path — coverage accounting plus a warm
// intra-schedule lookup — must not allocate.
func TestExecutorSteadyStateZeroAlloc(t *testing.T) {
	h := testHarness(t, 1024)
	h.intraChunkSize(0, 256, 0, 0) // warm the slice-indexed cache
	allocs := testing.AllocsPerRun(200, func() {
		h.mark(3, 0, 1024)
		for i := range h.bitmap {
			h.bitmap[i] = 0
		}
		if h.intraChunkSize(0, 256, 1, 0) < 1 {
			t.Fatal("bad chunk")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state executor path allocates %.1f/op, want 0", allocs)
	}
}
