package openmp

import (
	"sort"
	"testing"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func runLoop(t *testing.T, threads int, f For) (ForResult, *Team) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(1)
	team, err := NewTeam(eng, &cfg, 0, threads)
	if err != nil {
		t.Fatal(err)
	}
	var res ForResult
	eng.Spawn("master", func(p *sim.Proc) {
		res = team.ParallelFor(p, f)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return res, team
}

// coverageFor runs the loop and asserts each iteration executes exactly once.
func coverageFor(t *testing.T, threads, n int, sched ScheduleKind, chunk int) (ForResult, *Team) {
	t.Helper()
	prof := workload.Uniform(n, 1e-6, 5e-6, 42)
	seen := make([]int, n)
	f := For{
		N:         n,
		Schedule:  sched,
		Chunk:     chunk,
		RangeCost: func(a, b int) sim.Time { return prof.Range(a, b) },
		Visit: func(tid, a, b int, start, end sim.Time) {
			for i := a; i < b; i++ {
				seen[i]++
			}
		},
	}
	res, team := runLoop(t, threads, f)
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("%v: iteration %d executed %d times", sched, i, c)
		}
	}
	return res, team
}

func TestScheduleMapping(t *testing.T) {
	// The paper's Table 1.
	cases := []struct {
		tech dls.Technique
		want ScheduleKind
	}{
		{dls.STATIC, ScheduleStatic},
		{dls.SS, ScheduleDynamic},
		{dls.GSS, ScheduleGuided},
		{dls.TSS, ScheduleTSS},
		{dls.FAC2, ScheduleFAC2},
	}
	for _, c := range cases {
		got, err := MapTechnique(c.tech)
		if err != nil {
			t.Fatalf("MapTechnique(%v): %v", c.tech, err)
		}
		if got != c.want {
			t.Fatalf("MapTechnique(%v) = %v, want %v", c.tech, got, c.want)
		}
	}
	// Stock runtimes support only the three standard clauses.
	for _, k := range []ScheduleKind{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
		if k.Extended() {
			t.Fatalf("%v flagged extended", k)
		}
	}
	for _, k := range []ScheduleKind{ScheduleTSS, ScheduleFAC2, ScheduleRandom} {
		if !k.Extended() {
			t.Fatalf("%v not flagged extended", k)
		}
	}
	if _, err := MapTechnique(dls.FAC); err == nil {
		t.Fatal("MapTechnique accepted FAC")
	}
}

func TestNewTeamValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(1)
	if _, err := NewTeam(eng, &cfg, 0, 0); err == nil {
		t.Fatal("accepted 0 threads")
	}
	if _, err := NewTeam(eng, &cfg, 0, cfg.CoresPerNode+1); err == nil {
		t.Fatal("accepted oversubscription")
	}
}

func TestCoverageAllSchedules(t *testing.T) {
	for _, sched := range []ScheduleKind{
		ScheduleStatic, ScheduleDynamic, ScheduleGuided,
		ScheduleTSS, ScheduleFAC2, ScheduleRandom,
	} {
		coverageFor(t, 8, 1000, sched, 0)
	}
	// Chunked variants.
	coverageFor(t, 8, 1000, ScheduleDynamic, 16)
	coverageFor(t, 8, 1000, ScheduleGuided, 8)
	coverageFor(t, 4, 1000, ScheduleStatic, 32) // static,k cyclic
	// Edge sizes.
	coverageFor(t, 8, 1, ScheduleDynamic, 0)
	coverageFor(t, 8, 7, ScheduleStatic, 0)
	coverageFor(t, 3, 0, ScheduleGuided, 0)
}

func TestStaticSplitIsContiguousAndEven(t *testing.T) {
	n, threads := 100, 4
	var ranges [][3]int
	f := For{
		N:         n,
		Schedule:  ScheduleStatic,
		RangeCost: func(a, b int) sim.Time { return sim.Time(b-a) * 1e-6 },
		Visit: func(tid, a, b int, _, _ sim.Time) {
			ranges = append(ranges, [3]int{tid, a, b})
		},
	}
	runLoop(t, threads, f)
	if len(ranges) != threads {
		t.Fatalf("static produced %d ranges, want %d", len(ranges), threads)
	}
	for _, r := range ranges {
		if r[2]-r[1] != 25 {
			t.Fatalf("uneven static block: %v", r)
		}
		if r[1] != r[0]*25 {
			t.Fatalf("block not aligned to thread id: %v", r)
		}
	}
}

func TestImplicitBarrierWaits(t *testing.T) {
	// One expensive iteration: under static, one thread gets all the load in
	// its block; everyone else must wait at the barrier.
	n, threads := 64, 8
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1e-6
	}
	costs[0] = 1e-3 // thread 0's block is 1000× the others
	prof := workload.MustNew("spike", costs)
	f := For{
		N:         n,
		Schedule:  ScheduleStatic,
		RangeCost: func(a, b int) sim.Time { return prof.Range(a, b) },
	}
	res, team := runLoop(t, threads, f)
	if res.BarrierWait < 6e-3 { // ≈7 threads × ~1ms each
		t.Fatalf("BarrierWait = %v, want ≈7ms of accumulated idling", res.BarrierWait)
	}
	if team.BarrierWait != res.BarrierWait {
		t.Fatal("team did not accumulate barrier wait")
	}
	// Master leaves at the barrier release: its clock equals MaxFinish.
	if res.MaxFinish <= 1e-3 {
		t.Fatalf("MaxFinish = %v, want > 1ms", res.MaxFinish)
	}
}

func TestDynamicBalancesSpikeLoad(t *testing.T) {
	// Same spiked workload: dynamic,1 must finish much faster than static.
	n, threads := 64, 8
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1e-6
	}
	costs[0] = 1e-3
	prof := workload.MustNew("spike", costs)
	mk := func(s ScheduleKind) sim.Time {
		f := For{N: n, Schedule: s,
			RangeCost: func(a, b int) sim.Time { return prof.Range(a, b) }}
		res, _ := runLoop(t, threads, f)
		return res.MaxFinish
	}
	static := mk(ScheduleStatic)
	dynamic := mk(ScheduleDynamic)
	if dynamic >= static {
		t.Fatalf("dynamic (%v) not faster than static (%v) on spiked load", dynamic, static)
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	n, threads := 1000, 4
	var sizes []int
	f := For{
		N:        n,
		Schedule: ScheduleGuided,
		RangeCost: func(a, b int) sim.Time {
			return sim.Time(b-a) * 1e-6
		},
		Visit: func(tid, a, b int, _, _ sim.Time) { sizes = append(sizes, b-a) },
	}
	runLoop(t, threads, f)
	// Visit fires at completion, so sizes are in completion order; compare
	// the extremes instead.
	maxC, minC := 0, n
	for _, s := range sizes {
		if s > maxC {
			maxC = s
		}
		if s < minC {
			minC = s
		}
	}
	if maxC != 250 {
		t.Fatalf("largest guided chunk = %d, want 250", maxC)
	}
	if minC > 4 {
		t.Fatalf("smallest guided chunk = %d, want small", minC)
	}
}

func TestGuidedMinChunkParameter(t *testing.T) {
	n := 1000
	var sizes []int
	f := For{
		N:        n,
		Schedule: ScheduleGuided,
		Chunk:    50,
		RangeCost: func(a, b int) sim.Time {
			return sim.Time(b-a) * 1e-6
		},
		Visit: func(tid, a, b int, _, _ sim.Time) { sizes = append(sizes, b-a) },
	}
	runLoop(t, 4, f)
	for i, s := range sizes[:len(sizes)-1] {
		if s < 50 {
			t.Fatalf("guided,50 chunk %d = %d below minimum", i, s)
		}
	}
}

func TestExtendedTSSMatchesDLSPackage(t *testing.T) {
	n, threads := 1000, 4
	var sizes []int
	f := For{
		N:        n,
		Schedule: ScheduleTSS,
		RangeCost: func(a, b int) sim.Time {
			return sim.Time(b-a) * 1e-6
		},
		Visit: func(tid, a, b int, _, _ sim.Time) { sizes = append(sizes, b-a) },
	}
	runLoop(t, threads, f)
	want := dls.ChunkSizes(dls.MustNew(dls.TSS, dls.Params{N: n, P: threads}))
	// Visit order is completion order, so compare as multisets.
	if len(sizes) != len(want) {
		t.Fatalf("TSS issued %d chunks, reference %d", len(sizes), len(want))
	}
	sort.Ints(sizes)
	sort.Ints(want)
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("TSS chunk multiset differs at %d: %d vs %d", i, sizes[i], want[i])
		}
	}
}

func TestNoWaitSkipsBarrier(t *testing.T) {
	// Thread 1's static block is heavy; with NoWait, the master (thread 0)
	// returns without waiting for it.
	n, threads := 8, 2
	costs := []float64{1e-6, 1e-6, 1e-6, 1e-6, 1e-3, 1e-3, 1e-3, 1e-3}
	prof := workload.MustNew("skew", costs)
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(1)
	team, _ := NewTeam(eng, &cfg, 0, threads)
	var returnedAt sim.Time
	eng.Spawn("master", func(p *sim.Proc) {
		team.ParallelFor(p, For{
			N: n, Schedule: ScheduleStatic, NoWait: true,
			RangeCost: func(a, b int) sim.Time { return prof.Range(a, b) },
		})
		returnedAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if returnedAt > 1e-3 {
		t.Fatalf("NoWait master returned at %v, should not wait for the 4ms thread", returnedAt)
	}
}

func TestAtomicContentionSerializes(t *testing.T) {
	// With zero-cost iterations, dynamic,1 throughput is bounded by the
	// atomic port: total time ≈ N × LocalAtomic regardless of thread count.
	n := 2000
	cfg := cluster.MiniHPC(1)
	f := For{
		N:         n,
		Schedule:  ScheduleDynamic,
		RangeCost: func(a, b int) sim.Time { return 1e-12 },
	}
	res, _ := runLoop(t, 16, f)
	floor := sim.Time(n) * cfg.Mem.LocalAtomic
	if res.MaxFinish < floor {
		t.Fatalf("finish %v beat the atomic serialization floor %v", res.MaxFinish, floor)
	}
	if res.MaxFinish > 3*floor {
		t.Fatalf("finish %v far above the serialization floor %v", res.MaxFinish, floor)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Time {
		prof := workload.Exponential(512, 20e-6, 7)
		f := For{
			N:         512,
			Schedule:  ScheduleGuided,
			RangeCost: func(a, b int) sim.Time { return prof.Range(a, b) },
		}
		res, _ := runLoop(t, 8, f)
		return res.MaxFinish
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestLoopAccounting(t *testing.T) {
	_, team := coverageFor(t, 4, 500, ScheduleDynamic, 10)
	if team.Loops != 1 {
		t.Fatalf("Loops = %d, want 1", team.Loops)
	}
	if team.Chunks != 50 {
		t.Fatalf("Chunks = %d, want 50", team.Chunks)
	}
}

func BenchmarkParallelForDynamic(b *testing.B) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(1)
	team, _ := NewTeam(eng, &cfg, 0, 16)
	prof := workload.Uniform(1<<12, 1e-6, 3e-6, 1)
	eng.Spawn("master", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			team.ParallelFor(p, For{
				N: prof.N(), Schedule: ScheduleDynamic,
				RangeCost: func(x, y int) sim.Time { return prof.Range(x, y) },
			})
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestRandomScheduleDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) sim.Time {
		eng := sim.NewEngine(seed)
		cfg := cluster.MiniHPC(1)
		team, _ := NewTeam(eng, &cfg, 0, 4)
		prof := workload.Uniform(512, 10e-6, 40e-6, 7)
		var res ForResult
		eng.Spawn("master", func(p *sim.Proc) {
			res = team.ParallelFor(p, For{
				N: 512, Schedule: ScheduleRandom,
				RangeCost: func(a, b int) sim.Time { return prof.Range(a, b) },
			})
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return res.MaxFinish
	}
	if run(5) != run(5) {
		t.Fatal("random schedule not reproducible for a fixed seed")
	}
	if run(5) == run(6) {
		t.Fatal("random schedule identical across seeds")
	}
}

func TestGuidedMoreThreadsThanIterations(t *testing.T) {
	res, _ := coverageFor(t, 16, 5, ScheduleGuided, 0)
	if res.Chunks > 5 {
		t.Fatalf("guided issued %d chunks for 5 iterations", res.Chunks)
	}
}

func TestSequentialLoopsAccumulate(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(1)
	team, _ := NewTeam(eng, &cfg, 0, 4)
	prof := workload.Constant(64, 5e-6)
	eng.Spawn("master", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			team.ParallelFor(p, For{
				N: 64, Schedule: ScheduleDynamic, Chunk: 4,
				RangeCost: func(a, b int) sim.Time { return prof.Range(a, b) },
			})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if team.Loops != 3 {
		t.Fatalf("Loops = %d, want 3", team.Loops)
	}
	if team.Chunks != 3*16 {
		t.Fatalf("Chunks = %d, want 48", team.Chunks)
	}
}

func TestParallelForPanicsOnMisuse(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := cluster.MiniHPC(1)
	team, _ := NewTeam(eng, &cfg, 0, 2)
	panics := 0
	eng.Spawn("master", func(p *sim.Proc) {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			team.ParallelFor(p, For{N: -1, Schedule: ScheduleStatic,
				RangeCost: func(a, b int) sim.Time { return 0 }})
		}()
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			team.ParallelFor(p, For{N: 10, Schedule: ScheduleStatic})
		}()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if panics != 2 {
		t.Fatalf("%d panics, want 2 (negative N, missing RangeCost)", panics)
	}
}
