// Package openmp models an OpenMP runtime on the simulated cluster: thread
// teams pinned to one node's cores, worksharing loops with the standard
// schedule clauses (static, dynamic, guided) and — mirroring the
// LaPeSD-libGOMP extension the paper cites as future work — the research
// schedules TSS, FAC2 and RANDOM.
//
// The model reproduces the two properties the paper's comparison hinges on:
//
//  1. Worksharing loops end in an implicit barrier; per-loop idle time is
//     max(thread finish) − thread finish, which the executor accumulates.
//  2. dynamic/guided chunk grabs are hardware atomics on a shared cache
//     line, orders of magnitude cheaper than MPI passive-target locks; they
//     serialize on a per-team port so contention still emerges.
package openmp

import (
	"fmt"
	"math"

	"repro/dls"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// ScheduleKind selects the worksharing schedule.
type ScheduleKind int

// Schedule kinds: the three standard OpenMP clauses plus the extended
// research schedules of LaPeSD-libGOMP.
const (
	ScheduleStatic ScheduleKind = iota
	ScheduleDynamic
	ScheduleGuided
	ScheduleTSS
	ScheduleFAC2
	ScheduleRandom
)

func (k ScheduleKind) String() string {
	switch k {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	case ScheduleTSS:
		return "tss"
	case ScheduleFAC2:
		return "fac2"
	case ScheduleRandom:
		return "random"
	}
	return fmt.Sprintf("ScheduleKind(%d)", int(k))
}

// Extended reports whether the schedule requires the extended
// (libGOMP-style) runtime rather than a stock vendor runtime.
func (k ScheduleKind) Extended() bool {
	return k == ScheduleTSS || k == ScheduleFAC2 || k == ScheduleRandom
}

// MapTechnique translates a DLS technique to the OpenMP schedule clause per
// the paper's Table 1 (STATIC→static, SS→dynamic,1, GSS→guided,1). TSS and
// FAC2 map onto the extended runtime schedules; everything else is
// unsupported, matching the limitation the paper works around.
func MapTechnique(t dls.Technique) (ScheduleKind, error) {
	switch t {
	case dls.STATIC:
		return ScheduleStatic, nil
	case dls.SS:
		return ScheduleDynamic, nil
	case dls.GSS:
		return ScheduleGuided, nil
	case dls.TSS:
		return ScheduleTSS, nil
	case dls.FAC2:
		return ScheduleFAC2, nil
	case dls.RND:
		return ScheduleRandom, nil
	}
	return 0, fmt.Errorf("openmp: no schedule clause for technique %v", t)
}

// Team is a thread team pinned to one node. Thread 0 is the calling
// (master) process; the remaining threads are simulated processes spawned
// per worksharing loop, as fork–join semantics dictate.
type Team struct {
	eng     *sim.Engine
	cl      *cluster.Config
	node    int
	threads int

	// atomicPort serializes dynamic/guided chunk grabs (one cache line).
	atomicPort sim.Server

	// Costs; zero values are replaced by defaults in NewTeam.
	ForkJoin sim.Time // fork + join overhead charged to the master per loop
	Barrier  sim.Time // implicit-barrier signalling cost per thread

	// Accumulated statistics across loops.
	BarrierWait sim.Time // Σ idle time at implicit barriers
	Loops       int
	Chunks      int
}

// NewTeam creates a team of the given size on node.
func NewTeam(eng *sim.Engine, cl *cluster.Config, node, threads int) (*Team, error) {
	if threads <= 0 || threads > cl.Cores(node) {
		return nil, fmt.Errorf("openmp: team of %d threads on %d-core node", threads, cl.Cores(node))
	}
	return &Team{
		eng:      eng,
		cl:       cl,
		node:     node,
		threads:  threads,
		ForkJoin: 1.5 * sim.Microsecond,
		Barrier:  0.8 * sim.Microsecond,
	}, nil
}

// Threads reports the team size.
func (t *Team) Threads() int { return t.threads }

// For describes one worksharing loop over [0, N).
type For struct {
	N        int
	Schedule ScheduleKind
	// Chunk is the schedule clause's chunk argument: the fixed size for
	// dynamic, the minimum for guided. 0 means the OpenMP default (1).
	Chunk int
	// RangeCost returns the reference-core cost of iterations [a, b).
	RangeCost func(a, b int) sim.Time
	// Visit, if non-nil, observes each executed range with its thread id
	// and execution interval — the hook the tracer uses.
	Visit func(thread, a, b int, start, end sim.Time)
	// NoWait skips the implicit barrier: the master returns as soon as its
	// own work is done. (Loop-level nowait; the paper's cross-chunk nowait
	// pipeline is modelled by the executor in internal/core.)
	NoWait bool
}

// ForResult reports one loop execution.
type ForResult struct {
	ThreadFinish []sim.Time // absolute finish time per thread
	MaxFinish    sim.Time
	BarrierWait  sim.Time // Σ (MaxFinish − finish), 0 under NoWait
	Chunks       int
}

// loopState is the shared worksharing state of one loop instance.
type loopState struct {
	next           int // first unassigned iteration (dynamic/guided/extended)
	step           int // scheduling step (extended schedules)
	sched          dls.Schedule
	assignedStatic []bool // static: whether a thread took its block
	cyclicPos      []int  // static,k: next strip start per thread
}

// ParallelFor executes f on the team. The caller's process acts as thread
// 0; threads 1..T−1 are spawned for the loop and joined at its end (the
// implicit barrier), unless NoWait is set.
func (t *Team) ParallelFor(master *sim.Proc, f For) ForResult {
	if f.N < 0 {
		panic("openmp: negative loop size")
	}
	if f.RangeCost == nil {
		panic("openmp: For.RangeCost is required")
	}
	T := t.threads
	res := ForResult{ThreadFinish: make([]sim.Time, T)}
	st := &loopState{}
	switch f.Schedule {
	case ScheduleTSS:
		st.sched = dls.MustNew(dls.TSS, dls.Params{N: f.N, P: T})
	case ScheduleFAC2:
		st.sched = dls.MustNew(dls.FAC2, dls.Params{N: f.N, P: T})
	}

	// Fork overhead on the master.
	master.Sleep(t.ForkJoin)
	t.Loops++

	done := make([]bool, T)
	var joinQueue sim.WaitQueue
	chunks := 0

	body := func(p *sim.Proc, tid int) {
		if f.Schedule == ScheduleStatic {
			// Precomputed split, no chunk-grab port: stay process-driven.
			for {
				a, b := t.grab(p, f, st, tid)
				if a >= b {
					break
				}
				chunks++
				start := p.Now()
				d := t.cl.ExecTime(t.node, f.RangeCost(a, b), start, t.eng.Rand())
				p.Sleep(d)
				if f.Visit != nil {
					f.Visit(tid, a, b, start, p.Now())
				}
			}
		} else {
			// Dynamic-family schedules run fully event-driven: the chunk
			// grab's shared-state update, cost lookup and noise draw happen
			// in an event at the exact position of the literal post-serve
			// wake-up, chunk completion (visit plus next grab) in an event
			// at the literal execution wake-up, and the thread's goroutine
			// parks until the loop is exhausted. Event keys, state updates
			// and RNG draw order are identical to the literal Serve/Sleep
			// loop.
			var a, b int
			var start sim.Time
			eng := t.eng
			var issueGrab func()
			execEnd := func() {
				chunks++
				if f.Visit != nil {
					f.Visit(tid, a, b, start, eng.Now())
				}
				issueGrab()
			}
			grabbed := func() {
				a, b = t.take(f, st, tid)
				now := eng.Now()
				if a >= b {
					p.UnparkAsOf(now, now)
					return
				}
				start = now
				d := t.cl.ExecTime(t.node, f.RangeCost(a, b), start, eng.Rand())
				eng.ScheduleAsOf(start+d, start, execEnd)
			}
			issueGrab = func() {
				now := eng.Now()
				fin := t.atomicPort.ServeAsync(now, t.cl.Mem.LocalAtomic)
				eng.ScheduleAsOf(now+(fin-now), now, grabbed)
			}
			issueGrab()
			p.Park()
		}
		p.Sleep(t.Barrier) // barrier signalling cost
		res.ThreadFinish[tid] = p.Now()
		done[tid] = true
	}

	// Worker threads are goroutine-free state machines: each one starts in
	// an engine event at the exact position its spawn resume occupied, its
	// grabs and chunk completions run at the literal event keys of body's
	// process-driven loop, and its retirement (barrier signalling, finish
	// bookkeeping, master wake-up) fires where the literal thread's final
	// wake-ups did. A worksharing loop therefore spawns no goroutines at
	// all; only the master — the calling MPI rank — is a real process.
	for tid := 1; tid < T; tid++ {
		t.startThreadMachine(f, st, res.ThreadFinish, done, &joinQueue, &chunks, tid)
	}
	body(master, 0)

	if !f.NoWait {
		for !allDone(done) {
			joinQueue.Wait(master)
		}
	}
	for _, fin := range res.ThreadFinish {
		if fin > res.MaxFinish {
			res.MaxFinish = fin
		}
	}
	if !f.NoWait {
		for _, fin := range res.ThreadFinish {
			res.BarrierWait += res.MaxFinish - fin
		}
		// Join: master leaves at the barrier-release time.
		if res.MaxFinish > master.Now() {
			master.Sleep(res.MaxFinish - master.Now())
		}
	}
	t.BarrierWait += res.BarrierWait
	t.Chunks += chunks
	res.Chunks = chunks
	return res
}

// startThreadMachine builds the goroutine-free worker thread tid of one
// worksharing loop and schedules its start in an engine event at the current
// instant — the exact position the literal thread's spawn resume occupied.
// Every subsequent step (grab service completion, chunk completion, the
// barrier-signalling sleep, finish bookkeeping and the master wake-up) fires
// at the literal (time, scheduling-time) event keys of the process-driven
// thread body, so shared loop state, noise draws and visit order are
// byte-identical; only the goroutine disappears.
func (t *Team) startThreadMachine(f For, st *loopState, finish []sim.Time, done []bool, join *sim.WaitQueue, chunks *int, tid int) {
	eng := t.eng
	var (
		a, b  int
		start sim.Time
	)
	retire := func() {
		finish[tid] = eng.Now()
		done[tid] = true
		join.WakeAll() // master may be waiting for stragglers
	}
	// barrier charges the implicit-barrier signalling cost — the literal
	// thread's final Sleep — and retires at its wake position.
	barrier := func() {
		now := eng.Now()
		eng.ScheduleAsOf(now+t.Barrier, now, retire)
	}
	now := eng.Now()
	if f.Schedule == ScheduleStatic {
		// Precomputed split, no chunk-grab port: one event per strip.
		var step func()
		exec := func() {
			if f.Visit != nil {
				f.Visit(tid, a, b, start, eng.Now())
			}
			step()
		}
		step = func() {
			a, b = t.grab(nil, f, st, tid)
			if a >= b {
				barrier()
				return
			}
			*chunks++
			start = eng.Now()
			d := t.cl.ExecTime(t.node, f.RangeCost(a, b), start, eng.Rand())
			eng.ScheduleAsOf(start+d, start, exec)
		}
		eng.ScheduleAsOf(now, now, step)
		return
	}
	// Dynamic-family: the same event chain the process-driven body built,
	// with the loop-exhaustion unpark feeding the barrier chain directly.
	var issueGrab func()
	execEnd := func() {
		*chunks++
		if f.Visit != nil {
			f.Visit(tid, a, b, start, eng.Now())
		}
		issueGrab()
	}
	grabbed := func() {
		a, b = t.take(f, st, tid)
		now := eng.Now()
		if a >= b {
			eng.ScheduleAsOf(now, now, barrier)
			return
		}
		start = now
		d := t.cl.ExecTime(t.node, f.RangeCost(a, b), start, eng.Rand())
		eng.ScheduleAsOf(start+d, start, execEnd)
	}
	issueGrab = func() {
		now := eng.Now()
		doneAt := t.atomicPort.ServeAsync(now, t.cl.Mem.LocalAtomic)
		eng.ScheduleAsOf(now+(doneAt-now), now, grabbed)
	}
	eng.ScheduleAsOf(now, now, issueGrab)
}

func allDone(done []bool) bool {
	for _, d := range done {
		if !d {
			return false
		}
	}
	return true
}

// grab assigns the next chunk [a, b) to thread tid under f's schedule,
// charging the appropriate runtime cost. a >= b signals loop exhaustion.
// Dynamic-family schedules serve the grab's atomic at the team port and
// apply the shared-state update at the service completion (take); the
// continuation path in ParallelFor performs the same two halves without
// waking the thread in between.
func (t *Team) grab(p *sim.Proc, f For, st *loopState, tid int) (int, int) {
	T := t.threads
	switch f.Schedule {
	case ScheduleStatic:
		// Precomputed contiguous split; zero runtime cost beyond the fork.
		if f.Chunk > 0 {
			// static,k: round-robin strips of k; executed as one merged
			// visit per strip to bound event counts.
			return t.staticCyclic(st, f, tid)
		}
		if st.assignedStatic == nil {
			st.assignedStatic = make([]bool, T)
		}
		if st.assignedStatic[tid] {
			return f.N, f.N
		}
		st.assignedStatic[tid] = true
		return f.N * tid / T, f.N * (tid + 1) / T
	case ScheduleDynamic, ScheduleGuided, ScheduleTSS, ScheduleFAC2, ScheduleRandom:
		t.atomicPort.Serve(p, t.cl.Mem.LocalAtomic)
		return t.take(f, st, tid)
	}
	panic(fmt.Sprintf("openmp: unknown schedule %v", f.Schedule))
}

// take is the post-service half of a dynamic-family chunk grab: it reads
// and updates the shared loop state at the atomic's completion instant.
func (t *Team) take(f For, st *loopState, tid int) (int, int) {
	T := t.threads
	if st.next >= f.N {
		return f.N, f.N
	}
	var c int
	switch f.Schedule {
	case ScheduleDynamic:
		c = f.Chunk
		if c <= 0 {
			c = 1
		}
	case ScheduleGuided:
		k := f.Chunk
		if k <= 0 {
			k = 1
		}
		rem := f.N - st.next
		c = (rem + T - 1) / T
		if c < k {
			c = k
		}
	case ScheduleTSS, ScheduleFAC2:
		c = st.sched.Chunk(st.step, tid)
		st.step++
	case ScheduleRandom:
		maxC := (f.N - st.next + T - 1) / T
		if maxC < 1 {
			maxC = 1
		}
		c = 1 + t.eng.Rand().Intn(maxC)
	default:
		panic(fmt.Sprintf("openmp: unknown schedule %v", f.Schedule))
	}
	a := st.next
	st.next = minInt(a+c, f.N)
	return a, st.next
}

// staticCyclic hands thread tid its full round-robin strip set as one range
// per call, k iterations at a time in cyclic order. To keep the event count
// linear in strips (not iterations), each call returns one strip.
func (t *Team) staticCyclic(st *loopState, f For, tid int) (int, int) {
	k := f.Chunk
	T := t.threads
	if st.cyclicPos == nil {
		st.cyclicPos = make([]int, T)
		for i := range st.cyclicPos {
			st.cyclicPos[i] = i * k
		}
	}
	a := st.cyclicPos[tid]
	if a >= f.N {
		return f.N, f.N
	}
	b := minInt(a+k, f.N)
	st.cyclicPos[tid] = a + T*k
	return a, b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// expectedGuidedSteps is a helper for sizing tests: an upper bound on
// guided,1 scheduling steps for N iterations on T threads.
func expectedGuidedSteps(n, threads int) int {
	if n <= 0 {
		return 0
	}
	return threads*int(math.Ceil(math.Log(float64(n))))*2 + threads + 4
}
