// Package mandelbrot implements the escape-time computation of the
// Mandelbrot set, the first of the paper's two applications. Each loop
// iteration computes one pixel; the escape-iteration count varies by orders
// of magnitude across the image, which is exactly the algorithmic load
// imbalance the paper exploits ("high algorithmic load imbalance that
// motivated its use as a kernel for DLS performance evaluation").
//
// Two recurrences are provided: the standard z ← z² + c and the logistic
// variant z ← λz(1−z) from the paper's citation (Mandelbrot, 1980). The
// kernel is the real computation — escape counts are not synthesized — and
// also renders images for the example programs.
package mandelbrot

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// Variant selects the iterated map.
type Variant int

const (
	// Standard iterates z ← z² + c over the pixel's point c.
	Standard Variant = iota
	// Logistic iterates z ← λz(1−z) with λ the pixel's point and z₀ = 0.5,
	// the form cited by the paper [34].
	Logistic
)

// Params describes one Mandelbrot computation.
type Params struct {
	Width, Height          int
	XMin, XMax, YMin, YMax float64
	MaxIter                int
	Variant                Variant
}

// Default returns the grid used by the experiment harness: a window around
// the set that is vertically near-symmetric — equal halves of rows carry
// almost the same total work (as in the paper, where GSS's first N/2 chunk
// runs close to ideal), but the tiny offset keeps slabs from being exactly
// equal. Within a slab, row costs still differ by an order of magnitude,
// which is the intra-node imbalance the schedulers fight over.
func Default(width, height int) Params {
	return Params{
		Width: width, Height: height,
		XMin: -2.2, XMax: 0.8,
		YMin: -1.26, YMax: 1.24,
		MaxIter: 2000,
		Variant: Standard,
	}
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("mandelbrot: grid %dx%d must be positive", p.Width, p.Height)
	}
	if p.MaxIter <= 0 {
		return fmt.Errorf("mandelbrot: MaxIter = %d must be positive", p.MaxIter)
	}
	if p.XMax <= p.XMin || p.YMax <= p.YMin {
		return fmt.Errorf("mandelbrot: empty region [%g,%g]x[%g,%g]", p.XMin, p.XMax, p.YMin, p.YMax)
	}
	return nil
}

// N reports the loop size (number of pixels).
func (p *Params) N() int { return p.Width * p.Height }

// Point maps pixel (px, py) to its complex coordinate.
func (p *Params) Point(px, py int) complex128 {
	x := p.XMin + (p.XMax-p.XMin)*(float64(px)+0.5)/float64(p.Width)
	y := p.YMin + (p.YMax-p.YMin)*(float64(py)+0.5)/float64(p.Height)
	return complex(x, y)
}

// EscapeXY runs the escape-time loop for pixel (px, py) and returns the
// iteration count at which |z| exceeded 2, or MaxIter if it never did
// (the point is taken to be in the set).
func (p *Params) EscapeXY(px, py int) int {
	c := p.Point(px, py)
	switch p.Variant {
	case Logistic:
		z := complex(0.5, 0)
		for i := 0; i < p.MaxIter; i++ {
			z = c * z * (1 - z)
			if real(z)*real(z)+imag(z)*imag(z) > 4 {
				return i + 1
			}
		}
		return p.MaxIter
	default:
		var zr, zi float64
		cr, ci := real(c), imag(c)
		for i := 0; i < p.MaxIter; i++ {
			zr2, zi2 := zr*zr, zi*zi
			if zr2+zi2 > 4 {
				return i + 1
			}
			zr, zi = zr2-zi2+cr, 2*zr*zi+ci
		}
		return p.MaxIter
	}
}

// Escape computes the escape count of loop iteration i in row-major order,
// the iteration space the schedulers partition.
func (p *Params) Escape(i int) int {
	return p.EscapeXY(i%p.Width, i/p.Width)
}

// EscapeCounts computes the whole grid; this is the real kernel the
// workload cost profile is derived from.
func (p *Params) EscapeCounts() []int {
	out := make([]int, p.N())
	for i := range out {
		out[i] = p.Escape(i)
	}
	return out
}

var escapeCache sync.Map // Params -> []int

// EscapeCountsCached returns the grid's escape counts from a process-wide
// memo keyed by the (comparable) Params: sweep drivers derive cost profiles
// from the same grids over and over, and the counts are immutable. Callers
// must not modify the returned slice.
func (p Params) EscapeCountsCached() []int {
	if v, ok := escapeCache.Load(p); ok {
		return v.([]int)
	}
	counts := p.EscapeCounts()
	if v, loaded := escapeCache.LoadOrStore(p, counts); loaded {
		return v.([]int)
	}
	return counts
}

// InSet reports whether the pixel's point never escaped.
func (p *Params) InSet(i int) bool { return p.Escape(i) == p.MaxIter }

// Render produces an 8-bit grayscale image (log-scaled escape counts,
// in-set points black), row-major.
func (p *Params) Render(counts []int) []uint8 {
	img := make([]uint8, len(counts))
	for i, c := range counts {
		if c >= p.MaxIter {
			img[i] = 0
			continue
		}
		// log scale for visual contrast
		v := 255.0 * math.Log2(float64(c)+1) / math.Log2(float64(p.MaxIter))
		if v > 255 {
			v = 255
		}
		img[i] = uint8(255 - v)
	}
	return img
}

// WritePGM writes a binary PGM (P5) image.
func WritePGM(w io.Writer, width, height int, pixels []uint8) error {
	if len(pixels) != width*height {
		return fmt.Errorf("mandelbrot: %d pixels for %dx%d image", len(pixels), width, height)
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	_, err := w.Write(pixels)
	return err
}
