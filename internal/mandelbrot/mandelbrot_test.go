package mandelbrot

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

func TestValidate(t *testing.T) {
	good := Default(64, 64)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Width: 0, Height: 10, MaxIter: 10, XMin: 0, XMax: 1, YMin: 0, YMax: 1},
		{Width: 10, Height: 10, MaxIter: 0, XMin: 0, XMax: 1, YMin: 0, YMax: 1},
		{Width: 10, Height: 10, MaxIter: 10, XMin: 1, XMax: 0, YMin: 0, YMax: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad[%d] accepted", i)
		}
	}
}

func TestKnownPoints(t *testing.T) {
	// A grid positioned so we can reason about specific points.
	p := Params{
		Width: 3, Height: 1,
		XMin: -0.5, XMax: 2.5, // pixel centers at 0, 1, 2
		YMin: -0.5, YMax: 0.5, // center row y = 0
		MaxIter: 500,
	}
	// c = 0: never escapes (in the set).
	if got := p.EscapeXY(0, 0); got != 500 {
		t.Fatalf("escape(c=0) = %d, want MaxIter", got)
	}
	// c = 1: escapes quickly (orbit 0,1,2,5,...).
	if got := p.EscapeXY(1, 0); got >= 10 {
		t.Fatalf("escape(c=1) = %d, want small", got)
	}
	// c = 2: escapes even faster.
	if p.EscapeXY(2, 0) > p.EscapeXY(1, 0) {
		t.Fatal("escape(c=2) should not exceed escape(c=1)")
	}
}

func TestInSetCardioidSample(t *testing.T) {
	// Points well inside the main cardioid must never escape.
	p := Default(256, 256)
	p.MaxIter = 1000
	inside := []complex128{-0.1, -0.5, complex(0.2, 0.2)}
	for _, c := range inside {
		// Find the nearest pixel to c and confirm it is in the set.
		px := int((real(c) - p.XMin) / (p.XMax - p.XMin) * float64(p.Width))
		py := int((imag(c) - p.YMin) / (p.YMax - p.YMin) * float64(p.Height))
		if got := p.EscapeXY(px, py); got != p.MaxIter {
			t.Fatalf("pixel near %v escaped after %d", c, got)
		}
	}
}

func TestEscapeRowMajorConsistency(t *testing.T) {
	p := Default(16, 8)
	for i := 0; i < p.N(); i += 7 {
		if p.Escape(i) != p.EscapeXY(i%16, i/16) {
			t.Fatalf("Escape(%d) inconsistent with EscapeXY", i)
		}
	}
}

func TestEscapeCountsDeterministic(t *testing.T) {
	p := Default(32, 32)
	a := p.EscapeCounts()
	b := p.EscapeCounts()
	if len(a) != 1024 {
		t.Fatalf("len = %d, want 1024", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic escape at %d", i)
		}
	}
}

func TestWorkloadIsHighlyImbalanced(t *testing.T) {
	// The paper uses Mandelbrot precisely for its algorithmic imbalance;
	// the default region must show a large cost spread.
	p := Default(128, 128)
	counts := p.EscapeCounts()
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	if cov := stats.CoV(xs); cov < 1.0 {
		t.Fatalf("escape-count CoV = %.2f, want > 1 (high imbalance)", cov)
	}
	min, max := stats.MinMax(xs)
	if max/min < 50 {
		t.Fatalf("max/min cost ratio = %.1f, want ≫ 1", max/min)
	}
}

func TestLogisticVariantDiffers(t *testing.T) {
	std := Default(64, 64)
	log := std
	log.Variant = Logistic
	log.XMin, log.XMax, log.YMin, log.YMax = 2.5, 4.0, -1.0, 1.0 // λ window
	s := std.EscapeCounts()
	l := log.EscapeCounts()
	same := true
	for i := range s {
		if s[i] != l[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("logistic variant produced identical counts to standard")
	}
	// λ = 2 (real axis): logistic map converges to fixed point, never escapes.
	if got := log.EscapeXY(0, 32); got < log.MaxIter/2 {
		t.Fatalf("λ≈2.5 escaped after %d, expected bounded orbit", got)
	}
}

func TestRenderAndPGM(t *testing.T) {
	p := Default(16, 16)
	counts := p.EscapeCounts()
	img := p.Render(counts)
	if len(img) != 256 {
		t.Fatalf("render length = %d", len(img))
	}
	// In-set pixels are black; there must be at least one, and some white-ish.
	hasBlack := false
	for i, c := range counts {
		if c == p.MaxIter && img[i] != 0 {
			t.Fatal("in-set pixel not black")
		}
		if img[i] == 0 {
			hasBlack = true
		}
	}
	if !hasBlack {
		t.Fatal("no in-set pixels in default region")
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, 16, 16, img); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P5\n16 16\n255\n")) {
		t.Fatalf("bad PGM header: %q", buf.Bytes()[:16])
	}
	if err := WritePGM(&buf, 4, 4, img); err == nil {
		t.Fatal("WritePGM accepted mismatched dimensions")
	}
}

func BenchmarkEscapeCounts64(b *testing.B) {
	p := Default(64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EscapeCounts()
	}
}
