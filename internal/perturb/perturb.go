// Package perturb models execution-time perturbations of the simulated
// machine as deterministic seeded processes: multiplicative system noise
// (OS jitter), transient slowdowns (a node temporarily loses a fraction of
// its speed — thermal throttling, co-scheduled jobs, degraded links), and
// constant per-node background load.
//
// The DLS literature ("OpenMP Loop Scheduling Revisited", arXiv:1809.03188;
// the distributed chunk-calculation follow-up, arXiv:2101.07050) stresses
// that technique rankings flip once per-core speeds vary over time; this
// package supplies exactly those scenario axes while keeping runs
// reproducible.
//
// Determinism and replay: every node owns an independent random stream
// seeded from (Seed, node), and transient slowdown intervals are drawn
// lazily from that stream alone. The interval set a node experiences is
// therefore a pure function of (Config, node) — independent of executor
// interleaving, host parallelism, and which other nodes are queried — so
// two runs with the same Config replay byte-identical perturbations even
// across different scheduling techniques. Only the white-noise factor
// (NoiseCV) is drawn from the engine's run-level RNG, which is itself
// deterministic per seed.
package perturb

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Config describes the perturbation scenario. The zero value disables every
// perturbation and reproduces the smooth machine of the paper's runs.
type Config struct {
	// NoiseCV applies multiplicative white noise with this coefficient of
	// variation to each executed chunk (drawn from the engine RNG, truncated
	// so durations stay positive).
	NoiseCV float64 `json:"noise_cv,omitempty"`

	// SlowdownRate is the expected number of transient slowdown events per
	// simulated second per node (Poisson arrivals). 0 disables slowdowns.
	SlowdownRate float64 `json:"slowdown_rate,omitempty"`
	// SlowdownFactor multiplies execution time while a slowdown is active
	// (must be > 1 when SlowdownRate > 0; 2 halves the node's speed).
	SlowdownFactor float64 `json:"slowdown_factor,omitempty"`
	// SlowdownDuration is the mean duration of one slowdown (exponentially
	// distributed; must be > 0 when SlowdownRate > 0).
	SlowdownDuration sim.Time `json:"slowdown_duration,omitempty"`

	// BackgroundLoad gives each node a constant stolen-CPU fraction in
	// [0, 1): effective node speed is multiplied by (1 − load). The pattern
	// is tiled across nodes; nil means no background load.
	BackgroundLoad []float64 `json:"background_load,omitempty"`

	// Seed drives the per-node slowdown streams. 0 lets the caller
	// substitute the run seed.
	Seed int64 `json:"seed,omitempty"`
}

// Enabled reports whether any perturbation axis is active.
func (c Config) Enabled() bool {
	if c.NoiseCV > 0 || c.SlowdownRate > 0 {
		return true
	}
	for _, l := range c.BackgroundLoad {
		if l != 0 {
			return true
		}
	}
	return false
}

// Validate checks the scenario parameters.
func (c Config) Validate() error {
	if c.NoiseCV < 0 {
		return errors.New("perturb: NoiseCV must be non-negative")
	}
	if c.SlowdownRate < 0 {
		return errors.New("perturb: SlowdownRate must be non-negative")
	}
	if c.SlowdownRate > 0 {
		if c.SlowdownFactor <= 1 {
			return fmt.Errorf("perturb: SlowdownFactor %g must be > 1 when slowdowns are enabled", c.SlowdownFactor)
		}
		if c.SlowdownDuration <= 0 {
			return errors.New("perturb: SlowdownDuration must be positive when slowdowns are enabled")
		}
	}
	for i, l := range c.BackgroundLoad {
		if l < 0 || l >= 1 {
			return fmt.Errorf("perturb: BackgroundLoad[%d] = %g out of [0, 1)", i, l)
		}
	}
	return nil
}

// interval is one transient slowdown window [start, end).
type interval struct {
	start, end sim.Time
}

// sharedStream is the process-wide slowdown interval source of one
// (seed, node, rate, duration) tuple. The interval sequence is a pure
// function of that key — DESIGN.md §6's replay contract — so every cell of
// a sweep that runs the same scenario reads one shared, append-only
// history instead of rebuilding an RNG stream per cell. Readers take an
// atomic snapshot of the published prefix; extension happens under the
// mutex and re-publishes.
type sharedStream struct {
	mu    sync.Mutex
	rng   *rand.Rand
	clock sim.Time // next arrival is drawn relative to this point
	ivs   atomic.Pointer[[]interval]
}

// streamKey identifies a slowdown stream; every parameter that shapes the
// drawn sequence participates.
type streamKey struct {
	seed     int64
	node     int
	rate     float64
	duration sim.Time
}

var streamCache sync.Map // streamKey -> *sharedStream

// streamCacheMax bounds the process-wide stream memo. Sweeps replay a few
// scenarios (one key per node each), but a daemon sees client-controlled
// seeds; beyond the bound new keys get private streams — identical
// interval sequences (pure functions of the key), just unshared.
const streamCacheMax = 1 << 14

var streamCacheLen atomic.Int64

func sharedStreamFor(key streamKey) *sharedStream {
	if v, ok := streamCache.Load(key); ok {
		return v.(*sharedStream)
	}
	s := &sharedStream{rng: rand.New(rand.NewSource(nodeSeed(key.seed, key.node)))}
	empty := []interval(nil)
	s.ivs.Store(&empty)
	if streamCacheLen.Load() >= streamCacheMax {
		return s // memo full: private stream (see streamCacheMax)
	}
	if v, loaded := streamCache.LoadOrStore(key, s); loaded {
		return v.(*sharedStream)
	}
	streamCacheLen.Add(1)
	return s
}

// extendTo draws intervals until the stream covers t and returns the
// published history. Gaps are exponential(1/rate) between consecutive
// windows and lengths exponential(duration), so windows never overlap and
// the long-run active fraction is rate·duration / (1 + rate·duration).
func (s *sharedStream) extendTo(t sim.Time, rate float64, duration sim.Time) []interval {
	ivs := *s.ivs.Load()
	if s.clockCovered(ivs, t) {
		return ivs
	}
	s.mu.Lock()
	ivs = *s.ivs.Load()
	for s.clock <= t {
		gap := sim.Time(s.rng.ExpFloat64() / rate)
		dur := sim.Time(s.rng.ExpFloat64()) * duration
		iv := interval{start: s.clock + gap, end: s.clock + gap + dur}
		ivs = append(ivs, iv)
		s.clock = iv.end
	}
	s.ivs.Store(&ivs)
	s.mu.Unlock()
	return ivs
}

// clockCovered reports whether the published history already extends past
// t (reading clock requires either the lock or this conservative check on
// the immutable snapshot).
func (s *sharedStream) clockCovered(ivs []interval, t sim.Time) bool {
	return len(ivs) > 0 && ivs[len(ivs)-1].end > t
}

// Model is the instantiated perturbation scenario for a cluster of a given
// size. It implements the cluster package's perturber hook. Models are
// cheap per-cell views: the interval streams behind them are shared
// process-wide (see sharedStream), so instantiating one per simulation
// allocates no RNG state in the per-chunk path.
type Model struct {
	cfg     Config
	bgSpeed []float64 // per-node 1/(1−load) execution-time multiplier
	streams []*sharedStream
}

// New instantiates cfg for a cluster of nodes nodes. A nil model (from a
// disabled config) is a valid "no perturbation" value for consumers.
func New(cfg Config, nodes int) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("perturb: nodes = %d, must be positive", nodes)
	}
	m := &Model{cfg: cfg}
	if len(cfg.BackgroundLoad) > 0 {
		m.bgSpeed = make([]float64, nodes)
		for n := range m.bgSpeed {
			m.bgSpeed[n] = 1 / (1 - cfg.BackgroundLoad[n%len(cfg.BackgroundLoad)])
		}
	}
	if cfg.SlowdownRate > 0 {
		m.streams = make([]*sharedStream, nodes)
		for n := range m.streams {
			m.streams[n] = sharedStreamFor(streamKey{
				seed: cfg.Seed, node: n,
				rate: cfg.SlowdownRate, duration: cfg.SlowdownDuration,
			})
		}
	}
	return m, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config, nodes int) *Model {
	m, err := New(cfg, nodes)
	if err != nil {
		panic(err)
	}
	return m
}

// nodeSeed mixes the scenario seed with a node index (splitmix64 finalizer)
// so per-node streams are decorrelated even for adjacent seeds.
func nodeSeed(seed int64, node int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(node+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// NoiseCV reports the white-noise coefficient of variation.
func (m *Model) NoiseCV() float64 {
	if m == nil {
		return 0
	}
	return m.cfg.NoiseCV
}

// Factor returns the execution-time multiplier for work starting on node at
// virtual time now (≥ 1: background load and any active transient slowdown;
// white noise is handled separately by the cluster's ExecTime). The factor
// is sampled at the chunk's start time and applied to the whole chunk.
func (m *Model) Factor(node int, now sim.Time) float64 {
	if m == nil {
		return 1
	}
	f := 1.0
	if m.bgSpeed != nil {
		f = m.bgSpeed[node%len(m.bgSpeed)]
	}
	if m.streams != nil && m.inSlowdown(node, now) {
		f *= m.cfg.SlowdownFactor
	}
	return f
}

// inSlowdown reports whether node is inside a transient slowdown at t,
// extending the node's shared interval stream as far as t on demand.
// Lookup is a binary search over the immutable published history —
// allocation-free and O(log windows) regardless of how far queries jump
// around in time.
func (m *Model) inSlowdown(node int, t sim.Time) bool {
	s := m.streams[node%len(m.streams)]
	ivs := s.extendTo(t, m.cfg.SlowdownRate, m.cfg.SlowdownDuration)
	// First window ending after t; t is inside iff that window started.
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ivs[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ivs) && ivs[lo].start <= t
}

// NextChange returns the earliest virtual time strictly after t at which
// node's Factor can change: the next transient-slowdown boundary (a window
// opening or closing). When the factor is provably constant from t onward —
// no slowdown stream, only background load — it returns +Inf.
//
// This is the boundary query behind analytic fast-forward eligibility: a
// closed-form skip of a node's event chain over [t, u) may treat the node's
// speed as constant exactly when u ≤ NextChange(node, t). The query extends
// the node's shared interval stream on demand, so asking about the future
// is safe and deterministic (the stream is a pure function of the scenario
// key, per the package's replay contract).
func (m *Model) NextChange(node int, t sim.Time) sim.Time {
	if m == nil || m.streams == nil {
		return sim.Time(math.Inf(1))
	}
	s := m.streams[node%len(m.streams)]
	ivs := s.extendTo(t, m.cfg.SlowdownRate, m.cfg.SlowdownDuration)
	// First window ending after t (exists: extendTo covers t).
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ivs[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if iv := ivs[lo]; iv.start > t {
		return iv.start // next change: the window opens
	} else {
		return iv.end // inside the window: it closes
	}
}

// Intervals returns a copy of node's slowdown windows generated so far
// (diagnostics and tests). Because streams are shared process-wide, "so
// far" covers every model with the same (Seed, rate, duration) — the
// sequence itself is identical for all of them by the replay contract.
func (m *Model) Intervals(node int) [][2]sim.Time {
	if m == nil || m.streams == nil {
		return nil
	}
	ivs := *m.streams[node%len(m.streams)].ivs.Load()
	out := make([][2]sim.Time, len(ivs))
	for i, iv := range ivs {
		out[i] = [2]sim.Time{iv.start, iv.end}
	}
	return out
}

// String summarizes the scenario for tables and logs.
func (c Config) String() string {
	if !c.Enabled() {
		return "none"
	}
	parts := []string{}
	if c.NoiseCV > 0 {
		parts = append(parts, fmt.Sprintf("noise cv=%.2g", c.NoiseCV))
	}
	if c.SlowdownRate > 0 {
		parts = append(parts, fmt.Sprintf("slowdowns %.3g/s ×%.2g for %.3gs",
			c.SlowdownRate, c.SlowdownFactor, float64(c.SlowdownDuration)))
	}
	if len(c.BackgroundLoad) > 0 {
		parts = append(parts, fmt.Sprintf("bg load %v", c.BackgroundLoad))
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += ", " + p
	}
	return out
}
