package perturb

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NoiseCV: -0.1},
		{SlowdownRate: -1},
		{SlowdownRate: 1}, // missing factor/duration
		{SlowdownRate: 1, SlowdownFactor: 0.5, SlowdownDuration: 1}, // factor ≤ 1
		{SlowdownRate: 1, SlowdownFactor: 2},                        // duration ≤ 0
		{BackgroundLoad: []float64{-0.1}},
		{BackgroundLoad: []float64{1.0}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	good := []Config{
		{},
		{NoiseCV: 0.5},
		{SlowdownRate: 3, SlowdownFactor: 2, SlowdownDuration: 0.01},
		{BackgroundLoad: []float64{0, 0.9}},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected %+v: %v", i, c, err)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config reports Enabled")
	}
	if (Config{BackgroundLoad: []float64{0, 0}}).Enabled() {
		t.Error("all-zero background load reports Enabled")
	}
	for _, c := range []Config{
		{NoiseCV: 0.1},
		{SlowdownRate: 1, SlowdownFactor: 2, SlowdownDuration: 1},
		{BackgroundLoad: []float64{0, 0.2}},
	} {
		if !c.Enabled() {
			t.Errorf("%+v not Enabled", c)
		}
	}
}

func TestNilModelIsNeutral(t *testing.T) {
	var m *Model
	if f := m.Factor(0, 0); f != 1 {
		t.Errorf("nil model Factor = %v, want 1", f)
	}
	if cv := m.NoiseCV(); cv != 0 {
		t.Errorf("nil model NoiseCV = %v, want 0", cv)
	}
}

func TestBackgroundLoadFactor(t *testing.T) {
	m := MustNew(Config{BackgroundLoad: []float64{0, 0.5}}, 4)
	for node, want := range map[int]float64{0: 1, 1: 2, 2: 1, 3: 2} { // tiled
		if got := m.Factor(node, 0); math.Abs(got-want) > 1e-12 {
			t.Errorf("node %d: Factor = %v, want %v", node, got, want)
		}
	}
}

func TestSlowdownsDeterministicPerNode(t *testing.T) {
	cfg := Config{SlowdownRate: 40, SlowdownFactor: 3, SlowdownDuration: 5e-3, Seed: 11}
	a, b := MustNew(cfg, 3), MustNew(cfg, 3)
	// Different query patterns must leave identical interval streams.
	for i := 0; i < 500; i++ {
		a.Factor(i%3, sim.Time(float64(i)*1e-3))
	}
	b.Factor(2, 0.5)
	b.Factor(0, 0.499)
	b.Factor(1, 0.1)
	for node := 0; node < 3; node++ {
		ia, ib := a.Intervals(node), b.Intervals(node)
		if len(ia) == 0 || len(ib) == 0 {
			t.Fatalf("node %d: no intervals (a=%d b=%d)", node, len(ia), len(ib))
		}
		m := len(ia)
		if len(ib) < m {
			m = len(ib)
		}
		for i := 0; i < m; i++ {
			if ia[i] != ib[i] {
				t.Fatalf("node %d interval %d: %v vs %v", node, i, ia[i], ib[i])
			}
		}
	}
	// Distinct nodes see distinct streams.
	if i0, i1 := a.Intervals(0), a.Intervals(1); len(i0) > 0 && len(i1) > 0 && i0[0] == i1[0] {
		t.Error("nodes 0 and 1 drew identical first intervals; per-node seeds not decorrelated")
	}
}

func TestSlowdownFactorInsideInterval(t *testing.T) {
	cfg := Config{SlowdownRate: 100, SlowdownFactor: 2.5, SlowdownDuration: 1e-2, Seed: 3}
	m := MustNew(cfg, 1)
	m.Factor(0, 1.0) // force generation up to t=1
	ivs := m.Intervals(0)
	if len(ivs) == 0 {
		t.Fatal("no intervals generated in 1 virtual second at rate 100")
	}
	iv := ivs[0]
	mid := (iv[0] + iv[1]) / 2
	if got := m.Factor(0, mid); got != 2.5 {
		t.Errorf("Factor inside slowdown = %v, want 2.5", got)
	}
	if iv[0] > 0 {
		if got := m.Factor(0, iv[0]/2); got != 1 {
			t.Errorf("Factor before first slowdown = %v, want 1", got)
		}
	}
	if got := m.Factor(0, iv[1]); got != 1 && len(ivs) > 1 && iv[1] < ivs[1][0] {
		t.Errorf("Factor at interval end = %v, want 1 (interval is half-open)", got)
	}
}

// TestActiveFraction sanity-checks the long-run duty cycle against the
// analytic rate·duration / (1 + rate·duration) for non-overlapping
// exponential on/off processes.
func TestActiveFraction(t *testing.T) {
	rate, dur := 20.0, 0.01
	m := MustNew(Config{SlowdownRate: rate, SlowdownFactor: 2, SlowdownDuration: sim.Time(dur), Seed: 1}, 1)
	horizon := 2000.0
	m.Factor(0, sim.Time(horizon))
	var active float64
	for _, iv := range m.Intervals(0) {
		hi := math.Min(float64(iv[1]), horizon)
		if lo := float64(iv[0]); lo < hi {
			active += hi - lo
		}
	}
	got := active / horizon
	want := rate * dur / (1 + rate*dur)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("active fraction %.3f, want ≈ %.3f", got, want)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(Config{NoiseCV: -1}, 2); err == nil {
		t.Error("New accepted invalid config")
	}
	if _, err := New(Config{}, 0); err == nil {
		t.Error("New accepted zero nodes")
	}
}

func TestConfigString(t *testing.T) {
	if s := (Config{}).String(); s != "none" {
		t.Errorf("zero Config String = %q", s)
	}
	c := Config{NoiseCV: 0.2, SlowdownRate: 5, SlowdownFactor: 2, SlowdownDuration: 0.01,
		BackgroundLoad: []float64{0, 0.3}}
	s := c.String()
	for _, want := range []string{"noise", "slowdowns", "bg load"} {
		if !containsStr(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestNextChange pins the boundary query to the generated interval set:
// Factor must be constant on [t, NextChange(t)) and actually change across
// the boundary whenever the boundary is finite.
func TestNextChange(t *testing.T) {
	cfg := Config{SlowdownRate: 40, SlowdownFactor: 3, SlowdownDuration: 0.02, Seed: 7}
	m := MustNew(cfg, 2)
	for node := 0; node < 2; node++ {
		at := sim.Time(0)
		changes := 0
		for at < 1.0 {
			next := m.NextChange(node, at)
			if math.IsInf(float64(next), 1) {
				t.Fatalf("node %d: infinite boundary with slowdowns enabled", node)
			}
			if next <= at {
				t.Fatalf("node %d: NextChange(%v) = %v, not strictly after", node, at, next)
			}
			f := m.Factor(node, at)
			// The factor holds at every probe inside [at, next).
			for _, frac := range []float64{0.25, 0.5, 0.99} {
				probe := at + sim.Time(frac)*(next-at)
				if probe >= next {
					continue
				}
				if got := m.Factor(node, probe); got != f {
					t.Fatalf("node %d: Factor changed inside [%v, %v): %v != %v at %v",
						node, at, next, got, f, probe)
				}
			}
			if m.Factor(node, next) != f {
				changes++
			}
			at = next
		}
		if changes == 0 {
			t.Fatalf("node %d: no factor change over a second at rate 40/s", node)
		}
	}

	// Constant-factor scenarios report an unbounded window.
	bg := MustNew(Config{BackgroundLoad: []float64{0.3}}, 1)
	if next := bg.NextChange(0, 0); !math.IsInf(float64(next), 1) {
		t.Fatalf("background-only scenario: NextChange = %v, want +Inf", next)
	}
	var none *Model
	if next := none.NextChange(0, 5); !math.IsInf(float64(next), 1) {
		t.Fatalf("nil model: NextChange = %v, want +Inf", next)
	}
}
