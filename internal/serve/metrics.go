package serve

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
)

// handleMetrics exposes the daemon's operational counters in the
// Prometheus text format: throughput (cells/sec over the process
// lifetime), cache effectiveness, queue pressure, and the simulation
// arena pool's reuse behavior under concurrent traffic (DESIGN.md §9).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.manager.Stats()
	hits, misses, entries := s.cache.Stats()
	reuses, builds, puts := core.ArenaStats()
	uptime := time.Since(s.started).Seconds()
	cellsPerSec := 0.0
	if uptime > 0 {
		cellsPerSec = float64(st.Cells) / uptime
	}
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	draining := 0
	if s.manager.Draining() {
		draining = 1
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	type metric struct {
		name, help, typ string
		value           float64
	}
	for _, m := range []metric{
		{"hdlsd_uptime_seconds", "Seconds since the daemon started.", "gauge", uptime},
		{"hdlsd_jobs_total", "Sweep jobs accepted.", "counter", float64(st.Jobs)},
		{"hdlsd_jobs_active", "Jobs with incomplete cells.", "gauge", float64(st.ActiveJobs)},
		{"hdlsd_jobs_retained", "Jobs currently replayable under /v1/jobs.", "gauge", float64(st.JobsRetained)},
		{"hdlsd_jobs_evicted_total", "Completed jobs dropped by TTL/count retention.", "counter", float64(st.JobsEvicted)},
		{"hdlsd_cells_total", "Simulation cells processed (cache hits included).", "counter", float64(st.Cells)},
		{"hdlsd_cells_cached_total", "Cells served from the result cache.", "counter", float64(st.CellsCached)},
		{"hdlsd_cells_canceled_total", "Cells skipped or aborted after client disconnect.", "counter", float64(st.CellsCanceled)},
		{"hdlsd_cell_errors_total", "Cells that failed after validation.", "counter", float64(st.CellErrors)},
		{"hdlsd_cells_per_second", "Lifetime cell throughput.", "gauge", cellsPerSec},
		{"hdlsd_queue_depth", "Cells queued but not yet started.", "gauge", float64(st.QueueDepth)},
		{"hdlsd_cache_hits_total", "Result-cache hits.", "counter", float64(hits)},
		{"hdlsd_cache_misses_total", "Result-cache misses.", "counter", float64(misses)},
		{"hdlsd_cache_entries", "Result-cache resident entries.", "gauge", float64(entries)},
		{"hdlsd_cache_hit_rate", "Lifetime hit fraction of cache lookups.", "gauge", hitRate},
		{"hdlsd_arena_reuses_total", "Cells served by a recycled simulation arena.", "counter", float64(reuses)},
		{"hdlsd_arena_builds_total", "Cells that built a fresh simulation arena.", "counter", float64(builds)},
		{"hdlsd_arena_returns_total", "Arenas returned to the pool after clean runs.", "counter", float64(puts)},
		{"hdlsd_draining", "1 while the daemon is draining.", "gauge", float64(draining)},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
}
