package serve

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// handleMetrics exposes the daemon's operational counters in the
// Prometheus text format: throughput (cells/sec over the process
// lifetime), tiered-store effectiveness (per-tier hits, singleflight
// collapses, disk-tier health), queue pressure, and the simulation arena
// pool's reuse behavior under concurrent traffic (DESIGN.md §9, §12).
//
// The pre-tiered daemon exposed a single hdlsd_cache_hit_rate gauge; that
// conflates tiers now that disk and peer hits exist (a cold-restart disk
// hit and a hot mem hit have very different costs), so the rate is split
// per tier — each gauge is that tier's share of all lookups — and the
// legacy names (hdlsd_cache_hits_total, hdlsd_cache_hit_rate) remain as
// the cross-tier aggregates.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.manager.Stats()
	cs := s.store.Stats()
	reuses, builds, puts := core.ArenaStats()
	uptime := time.Since(s.started).Seconds()
	cellsPerSec := 0.0
	if uptime > 0 {
		cellsPerSec = float64(st.Cells) / uptime
	}
	lookups := cs.Hits() + cs.Misses
	rate := func(hits int64) float64 {
		if lookups == 0 {
			return 0
		}
		return float64(hits) / float64(lookups)
	}
	draining := 0
	if s.manager.Draining() {
		draining = 1
	}
	diskDisabled := 0
	if cs.DiskDisabled {
		diskDisabled = 1
	}
	var js journalStats
	if s.journal != nil {
		js = s.journal.stats()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	type metric struct {
		name, help, typ string
		value           float64
	}
	for _, m := range []metric{
		{"hdlsd_uptime_seconds", "Seconds since the daemon started.", "gauge", uptime},
		{"hdlsd_jobs_total", "Sweep jobs accepted.", "counter", float64(st.Jobs)},
		{"hdlsd_jobs_active", "Jobs with incomplete cells.", "gauge", float64(st.ActiveJobs)},
		{"hdlsd_jobs_retained", "Jobs currently replayable under /v1/jobs.", "gauge", float64(st.JobsRetained)},
		{"hdlsd_jobs_evicted_total", "Completed jobs dropped by TTL/count retention.", "counter", float64(st.JobsEvicted)},
		{"hdlsd_jobs_shed_total", "Submissions rejected by admission control (429s).", "counter", float64(st.JobsShed)},
		{"hdlsd_jobs_recovered_total", "Jobs replayed from the journal after a restart.", "counter", float64(st.JobsRecovered)},
		{"hdlsd_jobs_recovery_failures_total", "Journal records that could not be replayed.", "counter", float64(st.RecoveryFails)},
		{"hdlsd_journal_records_total", "Job-journal acceptance records written.", "counter", float64(js.Records)},
		{"hdlsd_journal_write_errors_total", "Job-journal records that failed to persist.", "counter", float64(js.WriteErrors)},
		{"hdlsd_journal_finish_errors_total", "Job-journal terminal appends that failed.", "counter", float64(js.FinishErrors)},
		{"hdlsd_journal_corrupt_total", "Unparseable journals removed at startup.", "counter", float64(js.Corrupt)},
		{"hdlsd_cells_total", "Simulation cells processed (cache hits included).", "counter", float64(st.Cells)},
		{"hdlsd_cells_cached_total", "Cells served from a result-store tier.", "counter", float64(st.CellsCached)},
		{"hdlsd_cells_collapsed_total", "Cells that joined a concurrent identical in-flight cell.", "counter", float64(st.CellsCollapsed)},
		{"hdlsd_cells_canceled_total", "Cells skipped or aborted after client disconnect.", "counter", float64(st.CellsCanceled)},
		{"hdlsd_cells_deadline_expired_total", "Cells refused or aborted past their end-to-end deadline.", "counter", float64(st.CellsExpired)},
		{"hdlsd_cell_errors_total", "Cells that failed after validation.", "counter", float64(st.CellErrors)},
		{"hdlsd_cells_per_second", "Lifetime cell throughput.", "gauge", cellsPerSec},
		{"hdlsd_queue_depth", "Cells queued but not yet started.", "gauge", float64(st.QueueDepth)},
		{"hdlsd_cache_hits_total", "Result-store hits across all tiers.", "counter", float64(cs.Hits())},
		{"hdlsd_cache_mem_hits_total", "Result-store memory-tier hits.", "counter", float64(cs.MemHits)},
		{"hdlsd_cache_disk_hits_total", "Result-store disk-tier hits.", "counter", float64(cs.DiskHits)},
		{"hdlsd_cache_peer_hits_total", "Misses filled from a fleet peer's store.", "counter", float64(cs.PeerHits)},
		{"hdlsd_cache_misses_total", "Result-store lookups no tier could serve.", "counter", float64(cs.Misses)},
		{"hdlsd_cache_inflight_collapsed_total", "Lookups collapsed onto an in-flight identical computation.", "counter", float64(cs.Collapsed)},
		{"hdlsd_cache_entries", "Memory-tier resident entries.", "gauge", float64(cs.MemEntries)},
		{"hdlsd_cache_disk_entries", "Disk-tier resident entries.", "gauge", float64(cs.DiskEntries)},
		{"hdlsd_cache_disk_bytes", "Disk-tier resident bytes.", "gauge", float64(cs.DiskBytes)},
		{"hdlsd_cache_disk_evictions_total", "Disk-tier entries removed by the byte cap.", "counter", float64(cs.DiskEvictions)},
		{"hdlsd_cache_disk_corruptions_total", "Disk-tier entries rejected by checksum/framing and deleted.", "counter", float64(cs.DiskCorruptions)},
		{"hdlsd_cache_disk_write_errors_total", "Disk-tier writes that failed.", "counter", float64(cs.DiskWriteErrors)},
		{"hdlsd_cache_disk_write_drops_total", "Disk-tier writes dropped (full queue, or tier disabled).", "counter", float64(cs.DiskWriteDrops)},
		{"hdlsd_cache_disk_disabled", "1 after consecutive write failures shut the disk tier's writes off.", "gauge", float64(diskDisabled)},
		{"hdlsd_cache_disk_writes_pending", "Disk-tier writes queued but not yet persisted.", "gauge", float64(cs.PendingWrites)},
		{"hdlsd_cache_hit_rate", "Lifetime hit fraction of store lookups, all tiers.", "gauge", rate(cs.Hits())},
		{"hdlsd_cache_mem_hit_rate", "Fraction of store lookups served by the memory tier.", "gauge", rate(cs.MemHits)},
		{"hdlsd_cache_disk_hit_rate", "Fraction of store lookups served by the disk tier.", "gauge", rate(cs.DiskHits)},
		{"hdlsd_cache_peer_hit_rate", "Fraction of store lookups filled from a fleet peer.", "gauge", rate(cs.PeerHits)},
		{"hdlsd_arena_reuses_total", "Cells served by a recycled simulation arena.", "counter", float64(reuses)},
		{"hdlsd_arena_builds_total", "Cells that built a fresh simulation arena.", "counter", float64(builds)},
		{"hdlsd_arena_returns_total", "Arenas returned to the pool after clean runs.", "counter", float64(puts)},
		{"hdlsd_process_rss_bytes", "Resident set size of the daemon process (0 where unsupported).", "gauge", float64(processRSSBytes())},
		{"hdlsd_go_mallocs_total", "Cumulative heap objects allocated by the Go runtime.", "counter", float64(ms.Mallocs)},
		{"hdlsd_go_heap_alloc_bytes", "Live heap bytes held by the Go runtime.", "gauge", float64(ms.HeapAlloc)},
		{"hdlsd_draining", "1 while the daemon is draining.", "gauge", float64(draining)},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
}

// processRSSBytes reads the process's resident set size from
// /proc/self/status (VmRSS, kibibytes). It returns 0 on platforms without
// procfs — consumers (the checks runner's RSS goal) treat 0 as
// "unavailable" and skip the goal rather than passing or failing on it.
func processRSSBytes() int64 {
	buf, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// ParseMetrics parses the Prometheus text exposition this daemon emits
// into a name → value map. It is the scrape half of the machine-class
// perf gates (internal/checks): goal evaluation works on scrape deltas,
// so the parser and the emitter must agree and live side by side. Only
// the subset the daemon produces is handled — unlabeled samples, one per
// line — and # comment lines are skipped; a malformed sample line is an
// error naming the line.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("malformed metric line %q", line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("malformed metric value in %q: %v", line, err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
