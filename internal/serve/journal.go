package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/hdls"
	"repro/internal/castore"
)

// The job journal makes accepted async sweeps durable (DESIGN.md §13): a
// 202 response is a promise, and a crash must not turn that promise into
// silent data loss. The format is deliberately minimal — one NDJSON file
// per job under the journal directory:
//
//	line 1  acceptance record: id, client, submit time, deadline, cells
//	line 2  terminal record:   {"done":true,...} — appended on completion
//
// The acceptance record is written with castore.WriteFileAtomic (temp +
// fsync + rename) BEFORE the job's first cell can run, so the terminal
// append can never race it and a crash at any instant leaves either no
// file or a complete, parseable record. On startup, journals with a
// terminal record are deleted; journals without one are replayed through
// the normal submission path. Replay is at-least-once and safe because
// cell results are pure functions of the canonical config hash: any cell
// that completed before the crash was persisted by the store's disk tier
// and replays as a byte-identical hit-disk, so recovery costs roughly only
// the cells that had not finished.
const journalSuffix = ".journal"

// journalRecord is the acceptance line — everything needed to resubmit
// the job with its original identity, admission key, and deadline.
type journalRecord struct {
	ID        string        `json:"id"`
	Client    string        `json:"client,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Deadline  *time.Time    `json:"deadline,omitempty"`
	Cells     []hdls.Config `json:"cells"`
}

// journalTerminal is the completion line appended to a finished job's
// journal; its presence is what "done" means to the startup scan.
type journalTerminal struct {
	Done      bool `json:"done"`
	Completed int  `json:"completed"`
	Failed    int  `json:"failed"`
}

// jobJournal persists acceptance/terminal records for async jobs. All
// methods are safe for concurrent use; failures are counted and fail open
// (the daemon keeps serving, durability degrades).
type jobJournal struct {
	dir string

	records      atomic.Int64 // acceptance records written
	writeErrors  atomic.Int64 // acceptance records that failed to persist
	finishErrors atomic.Int64 // terminal appends that failed
	corrupt      atomic.Int64 // unparseable journals removed at startup
}

// journalStats is the journal's counter snapshot for /metrics.
type journalStats struct {
	Records      int64
	WriteErrors  int64
	FinishErrors int64
	Corrupt      int64
}

func (jl *jobJournal) stats() journalStats {
	return journalStats{
		Records:      jl.records.Load(),
		WriteErrors:  jl.writeErrors.Load(),
		FinishErrors: jl.finishErrors.Load(),
		Corrupt:      jl.corrupt.Load(),
	}
}

// openJournal prepares the journal directory, sweeping atomic-write temp
// debris abandoned by a crash mid-record.
func openJournal(dir string) (*jobJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), castore.TempFilePrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &jobJournal{dir: dir}, nil
}

func (jl *jobJournal) path(id string) string {
	return filepath.Join(jl.dir, id+journalSuffix)
}

// record persists the acceptance line for j. Called by SubmitWith before
// any cell is enqueued (same package; j's fields are still unshared).
func (jl *jobJournal) record(j *Job) error {
	rec := journalRecord{ID: j.ID, Client: j.Client, Submitted: j.Created, Cells: j.cells}
	if !j.deadline.IsZero() {
		d := j.deadline
		rec.Deadline = &d
	}
	data, err := json.Marshal(rec)
	if err == nil {
		err = castore.WriteFileAtomic(jl.path(j.ID), append(data, '\n'))
	}
	if err != nil {
		jl.writeErrors.Add(1)
		return err
	}
	jl.records.Add(1)
	return nil
}

// finish appends the terminal record (O_APPEND + fsync, so a crash
// mid-append leaves a journal that merely replays once more), then removes
// the file — completed journals carry no information a restart needs, and
// removing them here bounds the directory instead of letting one file per
// job accumulate until the next startup sweep.
func (jl *jobJournal) finish(j *Job) {
	completed, failed := j.Progress()
	line, _ := json.Marshal(journalTerminal{Done: true, Completed: completed, Failed: failed})
	path := jl.path(j.ID)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err == nil {
		_, werr := f.Write(append(line, '\n'))
		if serr := f.Sync(); werr == nil {
			werr = serr
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		err = werr
	}
	if err != nil {
		jl.finishErrors.Add(1)
		return
	}
	os.Remove(path)
}

// scan returns the incomplete journals in submission order (numeric job-id
// order), removing everything else: completed journals (terminal record
// present) and corrupt ones (unparseable acceptance line — counted; a
// half-written journal cannot exist thanks to the atomic write, so corrupt
// means external damage and the only safe move is to drop it loudly).
func (jl *jobJournal) scan() []journalRecord {
	entries, err := os.ReadDir(jl.dir)
	if err != nil {
		return nil
	}
	var recs []journalRecord
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, journalSuffix) {
			continue
		}
		path := filepath.Join(jl.dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		lines := bytes.Split(raw, []byte{'\n'})
		var rec journalRecord
		if json.Unmarshal(lines[0], &rec) != nil || rec.ID == "" || len(rec.Cells) == 0 ||
			rec.ID+journalSuffix != name {
			jl.corrupt.Add(1)
			os.Remove(path)
			continue
		}
		done := false
		for _, l := range lines[1:] {
			var term journalTerminal
			if len(bytes.TrimSpace(l)) > 0 && json.Unmarshal(l, &term) == nil && term.Done {
				done = true
				break
			}
		}
		if done {
			os.Remove(path)
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, k int) bool { return journalSeq(recs[i].ID) < journalSeq(recs[k].ID) })
	return recs
}

// journalSeq extracts the numeric suffix of a "job-N" id for replay
// ordering.
func journalSeq(id string) int64 {
	n, _ := strconv.ParseInt(strings.TrimPrefix(id, "job-"), 10, 64)
	return n
}
