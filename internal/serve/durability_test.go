package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/dls"
	"repro/hdls"
)

// slowCells builds a batch big enough that its job stays active while a
// test makes admission assertions; callers cancel the submission context
// afterwards so the tail is skipped instead of simulated.
func slowCells(n int) []hdls.Config {
	cells := make([]hdls.Config, n)
	for i := range cells {
		cells[i] = hdls.Config{
			Nodes: 2, WorkersPerNode: 4, Inter: dls.GSS, Intra: dls.STATIC,
			Approach: hdls.MPIMPI, Seed: int64(i + 1), Workload: "constant:n=1048576",
		}
	}
	return cells
}

// TestAdmissionControlSheds pins the admission policy at the manager:
// submissions beyond MaxActiveJobs shed with ErrOverloaded, a client at
// its MaxJobsPerClient cap sheds with ErrClientBusy while other clients
// still get in, sheds are counted, and a client's slot frees once its job
// completes. Shedding is the explicit alternative to silent queuing: a
// 202 the daemon cannot back with capacity is a lie.
func TestAdmissionControlSheds(t *testing.T) {
	m := NewManager(ManagerConfig{
		Workers: 1, QueueCapacity: 256, JobTTL: time.Minute, RetainedJobs: 8,
		MaxActiveJobs: 2, MaxJobsPerClient: 1, Store: newMemStore(t, 64),
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j1, err := m.SubmitWith(ctx, slowCells(32), SubmitOpts{Client: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitWith(ctx, slowCells(1), SubmitOpts{Client: "alice"}); err != ErrClientBusy {
		t.Fatalf("second alice submission: err = %v, want ErrClientBusy", err)
	}
	j2, err := m.SubmitWith(ctx, slowCells(1), SubmitOpts{Client: "bob"})
	if err != nil {
		t.Fatalf("bob under the active limit: %v", err)
	}
	// Two jobs active: the global bound now sheds even a fresh client.
	if _, err := m.SubmitWith(ctx, slowCells(1), SubmitOpts{Client: "carol"}); err != ErrOverloaded {
		t.Fatalf("over the active limit: err = %v, want ErrOverloaded", err)
	}
	if shed := m.Stats().JobsShed; shed != 2 {
		t.Errorf("JobsShed = %d, want 2", shed)
	}

	// Completion releases the admission slots: cancel skips the queued
	// tail, then alice fits again.
	cancel()
	for _, j := range []*Job{j1, j2} {
		deadline := time.Now().Add(30 * time.Second)
		for !j.Done() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never completed after cancel", j.ID)
			}
			time.Sleep(time.Millisecond)
		}
	}
	j3, err := m.SubmitWith(context.Background(), []hdls.Config{cheapCell(99, dls.GSS)}, SubmitOpts{Client: "alice"})
	if err != nil {
		t.Fatalf("alice after her job completed: %v", err)
	}
	if _, err := j3.WaitCell(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterSecondsClamps pins the overload hint derivation: backlog
// divided by the observed EWMA completion rate, clamped to [1, 60], with
// a flat 2s before any throughput signal exists.
func TestRetryAfterSecondsClamps(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, Store: newMemStore(t, 4)})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	if got := m.RetryAfterSeconds(); got != 2 {
		t.Errorf("cold-start hint = %d, want 2", got)
	}
	for hint, tc := range map[int]struct {
		rate  float64
		depth int64
	}{
		10: {rate: 10, depth: 100},
		1:  {rate: 1000, depth: 100},  // near-zero wait still says 1
		60: {rate: 1, depth: 1 << 20}, // huge backlog clamps at 60
	} {
		m.ewmaMu.Lock()
		m.ewmaRate = tc.rate
		m.ewmaMu.Unlock()
		m.queueDepth.Store(tc.depth)
		if got := m.RetryAfterSeconds(); got != hint {
			t.Errorf("hint(rate=%v, depth=%d) = %d, want %d", tc.rate, tc.depth, got, hint)
		}
	}
	m.queueDepth.Store(0)
}

// TestSweepSheds429WithRetryAfter pins the HTTP surface of admission
// control: a submission over the active-job bound answers 429 with an
// honest integer Retry-After, and the shed shows on /metrics. 503 stays
// reserved for drain/queue-capacity failures.
func TestSweepSheds429WithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, MaxActiveJobs: 1})

	// Occupy the only admission slot with a streaming sweep we can cancel.
	body, err := json.Marshal(map[string]any{"cells": slowCells(64)})
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, ts.URL+"/v1/sweep?stream=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		// Stay attached: closing the body would disconnect the client and
		// cancel the job before the assertions below run.
		io.Copy(io.Discard, resp.Body)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for s.manager.Stats().ActiveJobs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("streamed job never became active: stats %+v", s.manager.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/sweep", sweepBody(1))
	shed := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit sweep: HTTP %d (%s), want 429", resp.StatusCode, shed)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := time.ParseDuration(ra + "s"); err != nil || secs < time.Second || secs > 60*time.Second {
		t.Errorf("Retry-After = %q, want an integer in [1, 60]", ra)
	}
	if !bytes.Contains(shed, []byte("active-job limit")) {
		t.Errorf("shed body %s does not name the limit", shed)
	}
	metrics := string(readBody(t, mustGet(t, ts.URL+"/metrics")))
	if !strings.Contains(metrics, "\nhdlsd_jobs_shed_total 1\n") {
		t.Error("metrics missing hdlsd_jobs_shed_total 1")
	}
	cancel()
	<-streamDone
}

// mustGet GETs url or fails the test.
func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

// TestJournalRecoveryByteIdentity is the crash-recovery contract under
// -race: a daemon that accepted an async sweep and died mid-flight must,
// on restart over the same journal and cache directories, replay the job
// under its original id and serve results byte-identical to what the
// uninterrupted daemon would have produced. The "crash" is simulated by
// materializing exactly what a SIGKILL leaves behind — an acceptance
// record with no terminal line, a partially-warm cache — because a real
// kill cannot happen in-process; scripts/fleet_soak.sh does it with
// actual SIGKILLs against real daemons.
func TestJournalRecoveryByteIdentity(t *testing.T) {
	cacheDir := t.TempDir()
	cells := make([]hdls.Config, 6)
	for i := range cells {
		cells[i] = cheapCell(int64(i+1), dls.FAC2)
	}

	// The uninterrupted run: compute the sweep, capture the baseline bytes,
	// drain so every cell is persisted in the disk tier.
	baseline := func() []byte {
		s := New(Options{Workers: 2, CacheDir: cacheDir})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("baseline drain: %v", err)
			}
		}()
		resp := postJSON(t, ts.URL+"/v1/sweep?stream=1", map[string]any{"cells": cells})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline sweep: HTTP %d", resp.StatusCode)
		}
		return readBody(t, resp)
	}()

	// The crash leftovers: an acceptance record without a terminal line,
	// and a cache missing some of the job's cells (the writer had not
	// flushed them) — deterministic recomputation must restore those with
	// identical bytes.
	journalDir := t.TempDir()
	rec, err := json.Marshal(journalRecord{
		ID: "job-42", Client: "soak-tester", Submitted: time.Now(), Cells: cells,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(journalDir, "job-42"+journalSuffix), append(rec, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, e := range entries {
		if len(e.Name()) == 64 && removed < 2 {
			os.Remove(filepath.Join(cacheDir, e.Name()))
			removed++
		}
	}
	if removed != 2 {
		t.Fatalf("expected to evict 2 cached cells, got %d", removed)
	}

	// Restart: recovery must replay job-42 through the normal path.
	s, ts := newTestServer(t, Options{Workers: 2, CacheDir: cacheDir, JournalDir: journalDir})
	if got := s.manager.Stats().JobsRecovered; got != 1 {
		t.Fatalf("JobsRecovered = %d, want 1", got)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var status struct {
			Status    string `json:"status"`
			Recovered bool   `json:"recovered"`
		}
		if err := json.Unmarshal(readBody(t, mustGet(t, ts.URL+"/v1/jobs/job-42")), &status); err != nil {
			t.Fatal(err)
		}
		if !status.Recovered {
			t.Fatal("job status does not report recovered: true")
		}
		if status.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered job never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := readBody(t, mustGet(t, ts.URL+"/v1/jobs/job-42/results"))
	if !bytes.Equal(got, baseline) {
		t.Fatalf("replayed results differ from the uninterrupted run:\n got: %s\nwant: %s", got, baseline)
	}
	metrics := string(readBody(t, mustGet(t, ts.URL+"/metrics")))
	if !strings.Contains(metrics, "\nhdlsd_jobs_recovered_total 1\n") {
		t.Error("metrics missing hdlsd_jobs_recovered_total 1")
	}
	// The finished job's journal is gone, and the id sequence moved past
	// the recovered id so new jobs cannot collide with replayed ones.
	waitJournalEmpty(t, journalDir)
	resp := postJSON(t, ts.URL+"/v1/sweep", sweepBody(1))
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(readBody(t, resp), &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.JobID != "job-43" {
		t.Errorf("post-recovery job id = %q, want job-43", accepted.JobID)
	}
}

// waitJournalEmpty polls until dir holds no journals (the terminal append
// and removal run asynchronously in the completion path).
func waitJournalEmpty(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			return
		}
		if time.Now().After(deadline) {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name()
			}
			t.Fatalf("journal dir still holds %v", names)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalScanFiltersLeftovers pins the startup scan: completed
// journals (terminal record present) and corrupt ones are removed, temp
// debris from a crash mid-write is swept, and only genuine incomplete
// acceptance records come back — in submission order.
func TestJournalScanFiltersLeftovers(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, lines ...string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mkRec := func(id string) string {
		rec, err := json.Marshal(journalRecord{
			ID: id, Submitted: time.Now(), Cells: []hdls.Config{cheapCell(1, dls.GSS)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return string(rec)
	}
	write("job-9"+journalSuffix, mkRec("job-9"))
	write("job-2"+journalSuffix, mkRec("job-2"))
	write("job-5"+journalSuffix, mkRec("job-5"), `{"done":true,"completed":1,"failed":0}`)
	write("job-7"+journalSuffix, "{ this is not json")
	write("job-8"+journalSuffix, mkRec("job-1")) // id does not match its file
	write(".tmp-job-3"+journalSuffix+"-x", "partial write")

	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := jl.scan()
	if len(recs) != 2 || recs[0].ID != "job-2" || recs[1].ID != "job-9" {
		t.Fatalf("scan = %+v, want [job-2 job-9]", recs)
	}
	if got := jl.corrupt.Load(); got != 2 {
		t.Errorf("corrupt = %d, want 2", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var left []string
	for _, e := range entries {
		left = append(left, e.Name())
	}
	want := []string{"job-2" + journalSuffix, "job-9" + journalSuffix}
	if fmt.Sprint(left) != fmt.Sprint(want) {
		t.Errorf("dir after scan = %v, want %v", left, want)
	}
}

// TestDeadlineExpiredSweepResolvesInBand pins end-to-end deadline
// behavior on the sweep surface: an already-expired deadline (absolute
// X-Deadline or relative ?timeout=) still yields a well-formed 200 stream
// whose every cell is the frozen, timestamp-free "deadline exceeded"
// error line — byte-identical no matter which daemon or fleet produced it
// — and the expiries are counted. Malformed deadline inputs are 400s.
func TestDeadlineExpiredSweepResolvesInBand(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	cells := []hdls.Config{cheapCell(1, dls.GSS), cheapCell(2, dls.FAC2)}
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}

	for name, arm := range map[string]func(*http.Request){
		"absolute-header": func(r *http.Request) { r.Header.Set("X-Deadline", "2020-01-01T00:00:00Z") },
		"relative-query":  func(r *http.Request) { r.URL.RawQuery += "&timeout=1ns" },
	} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep?stream=1", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		arm(req)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		got := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d, want a 200 stream", name, resp.StatusCode)
		}
		var want []byte
		for i, c := range cells {
			want = append(want, errorLine(i, c.Hash(), deadlineExceededMsg)...)
			want = append(want, '\n')
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s stream:\n got: %s\nwant: %s", name, got, want)
		}
	}
	metrics := string(readBody(t, mustGet(t, ts.URL+"/metrics")))
	if !strings.Contains(metrics, "\nhdlsd_cells_deadline_expired_total 4\n") {
		t.Error("metrics missing hdlsd_cells_deadline_expired_total 4")
	}

	for query, hdr := range map[string]string{
		"?stream=1&timeout=banana": "",
		"?stream=1":                "half past noon",
	} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep"+query, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if hdr != "" {
			req.Header.Set("X-Deadline", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed deadline (%s %q): HTTP %d, want 400", query, hdr, resp.StatusCode)
		}
	}
}

// TestRunDeadline pins /v1/run deadline semantics: an expired deadline on
// an uncached cell is a 504 carrying the in-band error line, while a
// cache hit dodges the deadline entirely — replaying frozen bytes is
// effectively free, so refusing it would punish the cheap path.
func TestRunDeadline(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	cfg := cheapCell(77, dls.WF)
	post := func(deadline string) *http.Response {
		t.Helper()
		buf, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if deadline != "" {
			req.Header.Set("X-Deadline", deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post("2020-01-01T00:00:00Z")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout || !bytes.Contains(body, []byte(deadlineExceededMsg)) {
		t.Fatalf("expired uncached run: HTTP %d %s, want 504 with the in-band line", resp.StatusCode, body)
	}
	// Compute it for real, then the expired deadline no longer matters.
	if resp := post(""); resp.StatusCode != http.StatusOK {
		t.Fatalf("unbounded run: HTTP %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
	resp = post("2020-01-01T00:00:00Z")
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("X-Cache"), "hit") {
		t.Fatalf("expired cached run: HTTP %d X-Cache %q, want a 200 hit", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
}

// TestDurabilityMetricNames pins the metric names this PR's dashboards
// and soak assertions grep for.
func TestDurabilityMetricNames(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, JournalDir: t.TempDir()})
	metrics := string(readBody(t, mustGet(t, ts.URL+"/metrics")))
	for _, want := range []string{
		"hdlsd_jobs_shed_total", "hdlsd_jobs_recovered_total",
		"hdlsd_jobs_recovery_failures_total", "hdlsd_journal_records_total",
		"hdlsd_journal_write_errors_total", "hdlsd_journal_finish_errors_total",
		"hdlsd_journal_corrupt_total", "hdlsd_cells_deadline_expired_total",
		"hdlsd_cache_disk_disabled", "hdlsd_cache_disk_write_drops_total",
	} {
		if !strings.Contains(metrics, "\n"+want+" ") {
			t.Errorf("metrics missing %s", want)
		}
	}
}
