package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dls"
	"repro/internal/core"
)

// engineExecutions reads the cumulative engine-execution count: every
// simulation acquires exactly one arena (recycled or built), so the
// reuses+builds sum is the number of times the engine actually ran.
func engineExecutions() int64 {
	reuses, builds, _ := core.ArenaStats()
	return reuses + builds
}

// TestSingleflightRunCollapses is the PR's regression gate (run under
// -race in CI): 32 concurrent identical POST /v1/run must execute the
// engine exactly once — every other request collapses onto the in-flight
// cell or replays the stored bytes — and all 32 bodies must be
// byte-identical with a coherent X-Cache label on each.
func TestSingleflightRunCollapses(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 8})
	cfg := cheapCell(4242, dls.FAC2)
	req, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 32
	before := engineExecutions()
	bodies := make([][]byte, clients)
	labels := make([]string, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(req))
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", c, err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- fmt.Errorf("client %d read: %v", c, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
				return
			}
			bodies[c] = body
			labels[c] = resp.Header.Get("X-Cache")
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if delta := engineExecutions() - before; delta != 1 {
		t.Fatalf("engine ran %d times for 32 identical requests, want exactly 1", delta)
	}
	var misses int
	for c := 0; c < clients; c++ {
		if !bytes.Equal(bodies[0], bodies[c]) {
			t.Fatalf("client %d body differs:\n%s\n%s", c, bodies[0], bodies[c])
		}
		switch labels[c] {
		case "miss":
			misses++
		case "hit", "hit-disk", "collapsed":
		default:
			t.Fatalf("client %d has unexpected X-Cache %q", c, labels[c])
		}
	}
	if misses != 1 {
		t.Fatalf("%d clients saw X-Cache miss, want exactly the 1 that computed", misses)
	}
}

// TestSingleflightSweepHammer is the acceptance criterion's identical
// concurrent-sweep hammer: 16 clients submit the same 8-cell sweep at
// once; across all 128 cell executions the engine must run exactly 8
// times — once per distinct hash — and every response stream must be
// byte-identical.
func TestSingleflightSweepHammer(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 8})
	const (
		clients = 16
		cells   = 8
	)
	req, err := json.Marshal(sweepBody(cells))
	if err != nil {
		t.Fatal(err)
	}

	before := engineExecutions()
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(req))
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", c, err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- fmt.Errorf("client %d read: %v", c, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
				return
			}
			bodies[c] = body
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if delta := engineExecutions() - before; delta != cells {
		t.Fatalf("engine ran %d times for %d identical %d-cell sweeps, want exactly %d",
			delta, clients, cells, cells)
	}
	for c := 1; c < clients; c++ {
		if !bytes.Equal(bodies[0], bodies[c]) {
			t.Fatalf("client %d stream differs from client 0", c)
		}
	}
	if got := len(parseNDJSON(t, bodies[0])); got != cells {
		t.Fatalf("stream has %d lines, want %d", got, cells)
	}
}

// TestMetricsTierCounterNames pins the per-tier metric names the
// dashboards and smoke scripts scrape — renaming any of these is a
// breaking change.
func TestMetricsTierCounterNames(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, CacheDir: t.TempDir()})
	// Touch the store so counters are live, not just declared.
	resp := postJSON(t, ts.URL+"/v1/run", cheapCell(31, dls.GSS))
	readBody(t, resp)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, mresp))
	for _, want := range []string{
		// Satellite-pinned tier counters.
		"hdlsd_cache_mem_hits_total",
		"hdlsd_cache_disk_hits_total",
		"hdlsd_cache_peer_hits_total",
		"hdlsd_cache_inflight_collapsed_total",
		// Legacy aggregates must survive the tier split.
		"hdlsd_cache_hits_total",
		"hdlsd_cache_misses_total",
		"hdlsd_cache_hit_rate",
		// Per-tier rate split of the legacy gauge.
		"hdlsd_cache_mem_hit_rate",
		"hdlsd_cache_disk_hit_rate",
		"hdlsd_cache_peer_hit_rate",
		// Disk-tier health.
		"hdlsd_cache_disk_entries",
		"hdlsd_cache_disk_bytes",
		"hdlsd_cache_disk_evictions_total",
		"hdlsd_cache_disk_corruptions_total",
		"hdlsd_cache_disk_write_errors_total",
		"hdlsd_cache_disk_write_drops_total",
		"hdlsd_cache_disk_writes_pending",
		// Manager-level collapse counter.
		"hdlsd_cells_collapsed_total",
		// Process/runtime gauges the machine-class perf gates scrape
		// (internal/checks evaluates RSS and allocs-per-cell goals from
		// these names).
		"hdlsd_process_rss_bytes",
		"hdlsd_go_mallocs_total",
		"hdlsd_go_heap_alloc_bytes",
	} {
		if !strings.Contains(metrics, "\n"+want+" ") {
			t.Errorf("metrics missing %s", want)
		}
	}
	// The scrape parser the checks runner uses must read back what the
	// daemon emits — round-trip the same body through ParseMetrics.
	parsed, err := ParseMetrics(strings.NewReader(metrics))
	if err != nil {
		t.Fatalf("ParseMetrics on live /metrics body: %v", err)
	}
	if parsed["hdlsd_cells_total"] < 1 {
		t.Errorf("parsed hdlsd_cells_total = %v, want >= 1", parsed["hdlsd_cells_total"])
	}
	if parsed["hdlsd_go_mallocs_total"] <= 0 {
		t.Errorf("parsed hdlsd_go_mallocs_total = %v, want > 0", parsed["hdlsd_go_mallocs_total"])
	}
}

// TestWarmRestartServesDiskHits is the serve-level warm-restart contract:
// a daemon with a cache dir computes a cell, drains (flushing the disk
// write), and a fresh daemon on the same dir serves the identical bytes
// from the disk tier without touching the engine.
func TestWarmRestartServesDiskHits(t *testing.T) {
	dir := t.TempDir()
	cfg := cheapCell(77, dls.TSS)

	s1 := New(Options{Workers: 2, CacheDir: dir})
	ts1 := newHTTPServer(t, s1)
	resp1 := postJSON(t, ts1.URL+"/v1/run", cfg)
	body1 := readBody(t, resp1)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first run: status %d X-Cache %q", resp1.StatusCode, resp1.Header.Get("X-Cache"))
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2 := New(Options{Workers: 2, CacheDir: dir})
	ts2 := newHTTPServer(t, s2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})

	before := engineExecutions()
	resp2 := postJSON(t, ts2.URL+"/v1/run", cfg)
	body2 := readBody(t, resp2)
	if got := resp2.Header.Get("X-Cache"); got != "hit-disk" {
		t.Fatalf("restart X-Cache = %q, want hit-disk", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("warm-restart body differs:\n%s\n%s", body1, body2)
	}
	if delta := engineExecutions() - before; delta != 0 {
		t.Fatalf("restart re-ran the engine %d times", delta)
	}

	// The disk hit promoted into memory: the next request is a mem hit.
	resp3 := postJSON(t, ts2.URL+"/v1/run", cfg)
	body3 := readBody(t, resp3)
	if got := resp3.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("post-promotion X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("post-promotion body differs")
	}
}

// TestCacheLookupEndpoint covers the fleet peer-fill endpoint: stored
// hashes serve their raw summary bytes, unknown hashes 404, malformed
// hashes 400.
func TestCacheLookupEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	cfg := cheapCell(55, dls.STATIC)
	resp := postJSON(t, ts.URL+"/v1/run", cfg)
	runBody := readBody(t, resp)
	hash := cfg.Hash()

	lresp, err := http.Get(ts.URL + "/v1/cache/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	got := readBody(t, lresp)
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("cache lookup status %d: %s", lresp.StatusCode, got)
	}
	if lresp.Header.Get("X-Config-Hash") != hash {
		t.Errorf("X-Config-Hash = %q", lresp.Header.Get("X-Config-Hash"))
	}
	// The endpoint serves the raw summary bytes — exactly what the store
	// holds, and exactly what /v1/run wraps into its response body.
	want := fmt.Appendf(nil, `{"hash":%q,"summary":`, hash)
	want = append(want, got...)
	want = append(want, '}', '\n')
	if !bytes.Equal(runBody, want) {
		t.Fatalf("lookup bytes do not reassemble the run body:\nrun:    %slookup: %s", runBody, got)
	}
	if body, _, ok := s.Store().LookupLocal(hash); !ok || !bytes.Equal(body, got) {
		t.Fatal("endpoint bytes differ from the store's")
	}

	if resp, err := http.Get(ts.URL + "/v1/cache/" + strings.Repeat("0", 64)); err != nil {
		t.Fatal(err)
	} else if readBody(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown hash status = %d, want 404", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/cache/nothex"); err != nil {
		t.Fatal(err)
	} else if readBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed hash status = %d, want 400", resp.StatusCode)
	}
}

// TestJobStatusCacheCounts checks the job-status JSON's per-tier
// breakdown: a first sweep computes every cell, an identical second sweep
// is served entirely by the store.
func TestJobStatusCacheCounts(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	statusCounts := func(n int) CacheCounts {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/sweep?stream=0", sweepBody(n))
		var acc struct {
			JobID      string `json:"job_id"`
			ResultsURL string `json:"results_url"`
			StatusURL  string `json:"status_url"`
		}
		if err := json.Unmarshal(readBody(t, resp), &acc); err != nil {
			t.Fatal(err)
		}
		rresp, err := http.Get(ts.URL + acc.ResultsURL) // blocks until done
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, rresp)
		sresp, err := http.Get(ts.URL + acc.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Cache CacheCounts `json:"cache"`
		}
		if err := json.Unmarshal(readBody(t, sresp), &st); err != nil {
			t.Fatal(err)
		}
		return st.Cache
	}

	first := statusCounts(8)
	if first.Computed != 8 || first.MemHits != 0 {
		t.Fatalf("cold sweep cache counts = %+v, want 8 computed", first)
	}
	second := statusCounts(8)
	if second.Computed != 0 || second.MemHits != 8 {
		t.Fatalf("warm sweep cache counts = %+v, want 8 mem hits", second)
	}
}

// newHTTPServer mounts an already-built Server without registering drain
// cleanup — for tests that manage the server lifecycle themselves.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(s.Handler())
}
