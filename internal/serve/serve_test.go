package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dls"
	"repro/hdls"
	"repro/internal/castore"
)

// newMemStore opens a memory-only tiered store for manager-level tests.
func newMemStore(t *testing.T, entries int) *castore.Store {
	t.Helper()
	st, err := castore.Open(castore.Options{MemEntries: entries})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(st.Close)
	return st
}

// newTestServer starts a real HTTP server (flushing works through the
// network stack) and registers cleanup for both it and the worker pool.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s, ts
}

// cheapCell is a fast-to-simulate cell used throughout the tests.
func cheapCell(seed int64, inter dls.Technique) hdls.Config {
	return hdls.Config{
		Nodes: 2, WorkersPerNode: 4, Inter: inter, Intra: dls.STATIC,
		Approach: hdls.MPIMPI, Seed: seed, Workload: "constant:n=256",
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return body
}

func TestRunValidation400s(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"nodes":`},
		{"unknown field", `{"nodez":4}`},
		{"unknown technique", `{"inter":"BOGUS"}`},
		{"technique not a string", `{"inter":17}`},
		{"negative nodes", `{"nodes":-3}`},
		{"bad workload spec", `{"workload":"gaussian:n=-5"}`},
		{"unsupported intra under openmp", `{"inter":"GSS","intra":"TSS","approach":"MPI+OpenMP"}`},
		{"unknown approach", `{"approach":"MPI+PVM"}`},
		// Size limits fire before any request-sized allocation.
		{"nodes over limit", `{"nodes":1000000000}`},
		{"workers over limit", `{"workers_per_node":1000000000}`},
		{"node x worker product over limit", `{"nodes":4096,"workers_per_node":4096}`},
		{"workload n over limit", `{"workload":"constant:n=2000000000"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body not JSON {error}: %s", body)
			}
		})
	}

	// The paper's runtime constraint lifts with extended_runtime.
	resp := postJSON(t, ts.URL+"/v1/run", map[string]any{
		"inter": "GSS", "intra": "TSS", "approach": "MPI+OpenMP",
		"extended_runtime": true, "workload": "constant:n=256",
		"nodes": 2, "workers_per_node": 4,
	})
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("extended TSS cell: status %d, body %s", resp.StatusCode, body)
	}
}

func TestRunCacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	cfg := cheapCell(7, dls.GSS)

	resp1 := postJSON(t, ts.URL+"/v1/run", cfg)
	body1 := readBody(t, resp1)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d body %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first run X-Cache = %q, want miss", got)
	}

	resp2 := postJSON(t, ts.URL+"/v1/run", cfg)
	body2 := readBody(t, resp2)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second run X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs:\n%s\n%s", body1, body2)
	}

	var out struct {
		Hash    string       `json:"hash"`
		Summary hdls.Summary `json:"summary"`
	}
	if err := json.Unmarshal(body1, &out); err != nil {
		t.Fatalf("response not {hash, summary}: %v\n%s", err, body1)
	}
	if out.Hash != cfg.Hash() {
		t.Errorf("hash = %s, want %s", out.Hash, cfg.Hash())
	}
	if out.Summary.ParallelTime <= 0 || out.Summary.Workers != 8 {
		t.Errorf("implausible summary: %+v", out.Summary)
	}

	// A different seed is a different canonical config: must miss.
	resp3 := postJSON(t, ts.URL+"/v1/run", cheapCell(8, dls.GSS))
	readBody(t, resp3)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("different seed X-Cache = %q, want miss", got)
	}
}

// sweepBody builds a 16-cell request spanning techniques and seeds.
func sweepBody(n int) map[string]any {
	inters := []dls.Technique{dls.STATIC, dls.GSS, dls.TSS, dls.FAC2}
	cells := make([]hdls.Config, n)
	for i := range cells {
		cells[i] = cheapCell(int64(100+i/len(inters)), inters[i%len(inters)])
	}
	return map[string]any{"cells": cells}
}

// parseNDJSON decodes a stream body into per-line envelopes.
func parseNDJSON(t *testing.T, body []byte) []struct {
	Index   int             `json:"index"`
	Hash    string          `json:"hash"`
	Summary json.RawMessage `json:"summary"`
	Error   string          `json:"error"`
} {
	t.Helper()
	lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
	out := make([]struct {
		Index   int             `json:"index"`
		Hash    string          `json:"hash"`
		Summary json.RawMessage `json:"summary"`
		Error   string          `json:"error"`
	}, len(lines))
	for i, ln := range lines {
		if err := json.Unmarshal(ln, &out[i]); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
	}
	return out
}

func TestSweepStreamSixteenCells(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	req := sweepBody(16)

	resp := postJSON(t, ts.URL+"/v1/sweep?stream=1", req)
	body1 := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body1)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	cells := parseNDJSON(t, body1)
	if len(cells) != 16 {
		t.Fatalf("got %d NDJSON lines, want 16", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("line %d has index %d: stream must be in cell order", i, c.Index)
		}
		if c.Error != "" || len(c.Summary) == 0 {
			t.Fatalf("cell %d: error=%q summary=%s", i, c.Error, c.Summary)
		}
	}

	// The identical sweep replays from cache, byte for byte.
	resp2 := postJSON(t, ts.URL+"/v1/sweep?stream=1", req)
	body2 := readBody(t, resp2)
	if !bytes.Equal(body1, body2) {
		t.Fatalf("repeat sweep not byte-identical:\n%s\n%s", body1, body2)
	}

	// The repeat touched the engine for zero cells.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, mresp))
	if !strings.Contains(metrics, "hdlsd_cells_cached_total 16") {
		t.Errorf("metrics missing 16 cached cells:\n%s", metrics)
	}
}

func TestSweepAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})

	// An explicit stream=0 opts out of streaming: still the async 202.
	resp := postJSON(t, ts.URL+"/v1/sweep?stream=0", sweepBody(8))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var acc struct {
		JobID      string `json:"job_id"`
		Cells      int    `json:"cells"`
		StatusURL  string `json:"status_url"`
		ResultsURL string `json:"results_url"`
	}
	if err := json.Unmarshal(body, &acc); err != nil || acc.JobID == "" {
		t.Fatalf("bad 202 body: %v %s", err, body)
	}
	if acc.Cells != 8 {
		t.Errorf("cells = %d, want 8", acc.Cells)
	}

	// The results stream blocks until cells complete, in order.
	rresp, err := http.Get(ts.URL + acc.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	lines := parseNDJSON(t, readBody(t, rresp))
	if len(lines) != 8 {
		t.Fatalf("results: %d lines, want 8", len(lines))
	}

	// Status reflects completion; replaying results is identical.
	sresp, err := http.Get(ts.URL + acc.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Status    string `json:"status"`
		Completed int    `json:"completed"`
		Failed    int    `json:"failed"`
	}
	if err := json.Unmarshal(readBody(t, sresp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "done" || st.Completed != 8 || st.Failed != 0 {
		t.Errorf("status = %+v, want done/8/0", st)
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	} else if readBody(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

func TestSweepRejectsBadBatches(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxCells: 4})
	for name, body := range map[string]string{
		"empty cells":    `{"cells":[]}`,
		"missing cells":  `{}`,
		"unknown field":  `{"cellz":[]}`,
		"over max cells": `{"cells":[{},{},{},{},{}]}`,
		"invalid cell":   `{"cells":[{"nodes":2},{"nodes":-1}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if b := readBody(t, resp); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, b)
		}
	}
}

// TestConcurrentSweeps drives ≥8 simultaneous sweep requests through the
// pooled-arena path; -race in CI makes this the contention smoke the
// acceptance criteria require. Identical request bodies must produce
// identical response bodies regardless of interleaving.
func TestConcurrentSweeps(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	const clients = 8
	req, err := json.Marshal(sweepBody(12))
	if err != nil {
		t.Fatal(err)
	}

	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(req))
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", c, err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- fmt.Errorf("client %d read: %v", c, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
				return
			}
			bodies[c] = body
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for c := 1; c < clients; c++ {
		if !bytes.Equal(bodies[0], bodies[c]) {
			t.Fatalf("client %d body differs from client 0", c)
		}
	}
	if got := len(parseNDJSON(t, bodies[0])); got != 12 {
		t.Fatalf("got %d lines, want 12", got)
	}
}

func TestDiscoveryAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/techniques")
	if err != nil {
		t.Fatal(err)
	}
	var tl struct {
		Techniques []struct {
			Name          string `json:"name"`
			Adaptive      bool   `json:"adaptive"`
			InterOK       bool   `json:"inter_ok"`
			IntraOK       bool   `json:"intra_ok"`
			IntraOpenMPOK bool   `json:"intra_openmp_ok"`
		} `json:"techniques"`
	}
	if err := json.Unmarshal(readBody(t, resp), &tl); err != nil {
		t.Fatal(err)
	}
	byName := map[string]bool{}
	for _, ti := range tl.Techniques {
		byName[ti.Name] = true
		switch ti.Name {
		case "GSS":
			if !ti.InterOK || !ti.IntraOK || !ti.IntraOpenMPOK {
				t.Errorf("GSS should be valid everywhere: %+v", ti)
			}
		case "TSS":
			// The paper's Intel-runtime constraint: fine under MPI+MPI,
			// unavailable as a stock OpenMP schedule.
			if !ti.IntraOK || ti.IntraOpenMPOK {
				t.Errorf("TSS should be MPI+MPI-only at the intra level: %+v", ti)
			}
		case "AWF-B":
			if !ti.Adaptive || ti.IntraOK {
				t.Errorf("AWF-B should be adaptive and intra-unsupported: %+v", ti)
			}
		}
	}
	if len(byName) != len(dls.All()) {
		t.Errorf("techniques lists %d entries, want %d", len(byName), len(dls.All()))
	}

	resp, err = http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var wl struct {
		Apps  []string `json:"apps"`
		Specs []struct {
			Name    string `json:"name"`
			Example string `json:"example"`
		} `json:"specs"`
	}
	if err := json.Unmarshal(readBody(t, resp), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Apps) != 2 || len(wl.Specs) < 10 {
		t.Errorf("workloads: %d apps, %d specs", len(wl.Apps), len(wl.Specs))
	}
	// Every advertised example must actually validate.
	for _, sp := range wl.Specs {
		cfg := hdls.Config{Workload: sp.Example}
		if err := cfg.Validate(); err != nil {
			t.Errorf("example %q does not validate: %v", sp.Example, err)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if b := readBody(t, resp); resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"ok"`)) {
		t.Errorf("healthz: %d %s", resp.StatusCode, b)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, resp))
	for _, want := range []string{
		"hdlsd_cells_total", "hdlsd_cache_hits_total", "hdlsd_queue_depth",
		"hdlsd_cells_per_second", "hdlsd_arena_reuses_total", "hdlsd_draining 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// TestEvictionDefersForInFlightReplay pins the retention rule behind
// Manager.Acquire: a completed job being replayed must survive TTL and
// count-cap eviction until its last reader releases, then get collected
// on a later janitor tick. Concurrent replay readers hammer WaitCell
// while the janitor ticks past the TTL, so the race detector covers the
// pin/evict interaction too (run under -race in CI's fast-forward shard).
func TestEvictionDefersForInFlightReplay(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueCapacity: 64, JobTTL: 25 * time.Millisecond, RetainedJobs: 2, Store: newMemStore(t, 16)})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	job, err := m.Submit([]hdls.Config{cheapCell(1, dls.GSS)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.WaitCell(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	j, release, ok := m.Acquire(job.ID)
	if !ok {
		t.Fatal("completed job not addressable")
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				if _, err := j.WaitCell(context.Background(), 0); err != nil {
					t.Errorf("replay read: %v", err)
					return
				}
			}
		}()
	}

	// Count-cap pressure: with maxJobs=2, these completions push the
	// pinned job past the cap on every evictLocked run.
	for i := 0; i < 4; i++ {
		other, err := m.Submit([]hdls.Config{cheapCell(int64(i+10), dls.GSS)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := other.WaitCell(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
	}
	// TTL pressure: several 10ms janitor ticks past the 25ms TTL.
	time.Sleep(120 * time.Millisecond)
	if _, ok := m.Job(job.ID); !ok {
		t.Fatal("pinned job evicted while a replay was in flight")
	}
	wg.Wait()
	release()
	release() // idempotent: a double release must not underflow the pin

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Job(job.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("released job never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
