// Package serve implements hdlsd's sweep-as-a-service layer: HTTP handlers
// that run hierarchical DLS simulation cells on a bounded worker pool,
// stream per-cell results as NDJSON, and resolve results through the
// tiered content-addressed store (internal/castore) keyed by canonical
// config hash — deterministic simulations make a cell's summary a pure
// function of its canonical hdls.Config, so a hit at any tier (memory,
// disk, fleet peer) replays byte-identical bytes without touching the
// engine, and concurrent identical requests collapse onto one execution
// (DESIGN.md §9, §12).
//
// Endpoints:
//
//	POST /v1/run               one cell, JSON hdls.Config in, summary out
//	POST /v1/sweep             batched cells; ?stream=1 for inline NDJSON
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/results NDJSON stream, cells in index order
//	GET  /v1/cache/{hash}      raw stored summary bytes (fleet peer-fill)
//	GET  /v1/techniques        DLS technique discovery
//	GET  /v1/workloads         workload spec discovery
//	GET  /healthz              liveness (always 200 while the process serves)
//	GET  /readyz               readiness (503 + Retry-After on drain/overload)
//	GET  /metrics              Prometheus-style counters
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/dls"
	"repro/hdls"
	"repro/internal/castore"
	"repro/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent cell simulations (default GOMAXPROCS).
	Workers int
	// CacheEntries bounds the store's in-memory LRU tier (default 4096
	// entries).
	CacheEntries int
	// CacheDir enables the store's checksummed on-disk tier at this
	// directory, so restarts are warm (default off). Entries are written
	// atomically (temp + fsync + rename) and verified on read; corruption
	// is counted and treated as a miss.
	CacheDir string
	// CacheDiskMax caps the disk tier's total bytes, LRU-evicted
	// (default 256 MiB; ignored without CacheDir).
	CacheDiskMax int64
	// PeerFetch, when non-nil, is probed on a local store miss before the
	// engine runs — fleet workers use it to pull a cell a ring peer
	// already computed (fleet.PeerFill builds the hook).
	PeerFetch castore.PeerFetch
	// MaxCells bounds the cell count of one sweep submission (default 4096).
	MaxCells int
	// QueueCapacity bounds queued-but-unstarted cells across all jobs;
	// submissions that would overflow it get 503 (default 65536).
	QueueCapacity int
	// MaxNodes bounds a cell's simulated node count (default 4096). The
	// machine model allocates per-node state during validation, so the
	// bound is enforced before any allocation sized by the request.
	MaxNodes int
	// MaxWorkersPerNode bounds a cell's per-node worker cap (default 4096).
	MaxWorkersPerNode int
	// MaxWorkloadN bounds a cell's workload iteration count (default 2²²,
	// the full-size PSIA loop). Workload profiles allocate O(n) float64s,
	// so this is the request's memory ceiling; checked via workload.SpecN
	// before the profile is built.
	MaxWorkloadN int
	// JobTTL bounds how long a completed job stays replayable under
	// /v1/jobs/{id} (default 15 minutes). Together with RetainedJobs it
	// caps job-store growth; evictions are counted on /metrics.
	JobTTL time.Duration
	// RetainedJobs caps how many completed jobs are retained for replay
	// (default 256); the oldest completed jobs are evicted first.
	RetainedJobs int
	// JournalDir enables the crash-recovery job journal at this directory
	// (default off): async sweep acceptances are persisted before any cell
	// runs, and incomplete journals are replayed at startup (DESIGN.md §13).
	JournalDir string
	// MaxActiveJobs bounds incomplete jobs; submissions past it are shed
	// with 429 + Retry-After instead of queued silently (default 1024).
	MaxActiveJobs int
	// MaxJobsPerClient bounds one client's incomplete jobs — the admission
	// key is the X-Client header or the remote host (default 64).
	MaxJobsPerClient int
	// Chaos, when non-empty, arms the deterministic fault-injection layer:
	// a static chaos spec (e.g. "truncate:lines=3,times=1"), or "header" to
	// inject only per-request via the X-Chaos header. Requests may override
	// the static spec with X-Chaos. Never enable in production; the fleet
	// tests and chaos harness use it to exercise every failure path.
	Chaos string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.MaxCells <= 0 {
		o.MaxCells = 4096
	}
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 1 << 16
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 4096
	}
	if o.MaxWorkersPerNode <= 0 {
		o.MaxWorkersPerNode = 4096
	}
	if o.MaxWorkloadN <= 0 {
		o.MaxWorkloadN = 1 << 22
	}
	if o.JobTTL <= 0 {
		o.JobTTL = 15 * time.Minute
	}
	if o.RetainedJobs <= 0 {
		o.RetainedJobs = 256
	}
	return o
}

// Server wires the manager, tiered result store and HTTP handlers. Create
// with New, mount Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	opts    Options
	store   *castore.Store
	manager *Manager
	journal *jobJournal // nil when Options.JournalDir is unset
	mux     *http.ServeMux
	handler http.Handler // mux, possibly wrapped in the chaos layer
	started time.Time

	techOnce sync.Once
	techJSON []byte
}

// New builds a Server and starts its worker pool.
func New(opt Options) *Server {
	s, err := NewWithError(opt)
	if err != nil { // only a malformed Options.Chaos spec can fail
		panic(err)
	}
	return s
}

// NewWithError is New returning construction errors (a malformed
// Options.Chaos spec, an unusable Options.CacheDir) instead of panicking;
// cmd/hdlsd uses it to turn flag typos into a clean startup failure.
func NewWithError(opt Options) (*Server, error) {
	o := opt.withDefaults()
	store, err := castore.Open(castore.Options{
		MemEntries:   o.CacheEntries,
		Dir:          o.CacheDir,
		DiskMaxBytes: o.CacheDiskMax,
		Peers:        o.PeerFetch,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    o,
		store:   store,
		started: time.Now(),
	}
	if o.JournalDir != "" {
		s.journal, err = openJournal(o.JournalDir)
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	s.manager = NewManager(ManagerConfig{
		Workers:          o.Workers,
		QueueCapacity:    o.QueueCapacity,
		JobTTL:           o.JobTTL,
		RetainedJobs:     o.RetainedJobs,
		MaxActiveJobs:    o.MaxActiveJobs,
		MaxJobsPerClient: o.MaxJobsPerClient,
		Journal:          s.journal,
		Store:            s.store,
	})
	if s.journal != nil {
		s.recoverJobs(s.journal.scan())
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	s.mux.HandleFunc("GET /v1/cache/{hash}", s.handleCacheLookup)
	s.mux.HandleFunc("GET /v1/techniques", s.handleTechniques)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.mux
	if o.Chaos != "" {
		h, err := Chaos(o.Chaos, s.mux)
		if err != nil {
			return nil, err
		}
		s.handler = h
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// recoverJobs resubmits incomplete journal records through the normal
// submission path, with their original ids, clients, and deadlines. Cells
// that completed before the crash come back as hit-disk from the castore,
// so replay costs roughly only the unfinished tail; an already-expired
// deadline resolves every cell as the frozen in-band "deadline exceeded"
// line, which is still a completed job the client can read. Replay
// bypasses admission control — the work was admitted before the crash —
// but not the cell-queue bound: a record that does not fit stays journaled
// on disk (SubmitWith only rewrites the record on acceptance) and is
// retried at the next restart, counted as a recovery failure here.
func (s *Server) recoverJobs(recs []journalRecord) {
	for _, rec := range recs {
		ctx := context.Background()
		var cancel context.CancelFunc
		if rec.Deadline != nil {
			ctx, cancel = context.WithDeadline(ctx, *rec.Deadline)
		}
		_, err := s.manager.SubmitWith(ctx, rec.Cells, SubmitOpts{
			ID:        rec.ID,
			Client:    rec.Client,
			Recovered: true,
			Journal:   true,
			Cancel:    cancel,
		})
		if err != nil {
			s.manager.recoveryFails.Add(1)
			if cancel != nil {
				cancel()
			}
		}
	}
}

// Drain stops accepting work, waits for accepted jobs (bounded by ctx),
// then flushes the store's pending disk writes. An aborted drain leaves
// the store open — cells may still be running and must be able to publish
// their results; a later successful Drain (or repeated calls — Close is
// idempotent) finishes the flush.
func (s *Server) Drain(ctx context.Context) error {
	if err := s.manager.Drain(ctx); err != nil {
		return err
	}
	s.store.Close()
	return nil
}

// Store exposes the server's tiered result store (the fleet worker wiring
// and tests read its per-tier counters).
func (s *Server) Store() *castore.Store { return s.store }

// marshalSummary freezes a summary as compact JSON. Field order is fixed
// by the struct, so equal summaries marshal to equal bytes.
func marshalSummary(sum hdls.Summary) []byte {
	buf, err := json.Marshal(sum)
	if err != nil { // Summary is plain scalars; cannot fail
		panic(fmt.Sprintf("serve: marshal summary: %v", err))
	}
	return buf
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(append(body, '\n'))
}

// decodeConfig decodes a strict JSON hdls.Config: unknown fields and
// trailing garbage are rejected so typos fail loudly instead of running
// the default experiment.
func decodeConfig(dec *json.Decoder, cfg *hdls.Config) error {
	dec.DisallowUnknownFields()
	return dec.Decode(cfg)
}

// maxTotalWorkers bounds Nodes × WorkersPerNode regardless of the
// per-axis limits: rank state is allocated per worker, so the product is
// the simulation's memory footprint.
const maxTotalWorkers = 1 << 20

// checkCell enforces the service's size limits — before hdls.Config
// validation, because validation itself builds the machine model and the
// workload profile, both sized by request fields — then runs the full
// validator. All failures map to 400s.
func (s *Server) checkCell(cfg hdls.Config) error { return s.opts.CheckCell(cfg) }

// CheckCell validates one cell against these limits (zero fields take the
// defaults), then runs the full hdls.Config validator. Exported so the
// fleet coordinator rejects a sweep with exactly the 400s a worker would,
// instead of discovering validation failures shard by shard mid-dispatch.
func (o Options) CheckCell(cfg hdls.Config) error {
	o = o.withDefaults()
	c := cfg.Canonical()
	if c.Nodes > o.MaxNodes {
		return fmt.Errorf("nodes %d exceeds the service limit %d", c.Nodes, o.MaxNodes)
	}
	if c.WorkersPerNode > o.MaxWorkersPerNode {
		return fmt.Errorf("workers_per_node %d exceeds the service limit %d",
			c.WorkersPerNode, o.MaxWorkersPerNode)
	}
	if c.Nodes > 0 && c.WorkersPerNode > 0 && c.Nodes*c.WorkersPerNode > maxTotalWorkers {
		return fmt.Errorf("nodes × workers_per_node = %d exceeds the service limit %d",
			c.Nodes*c.WorkersPerNode, maxTotalWorkers)
	}
	if c.Workload != "" {
		n, err := workload.SpecN(c.Workload)
		if err != nil {
			return err
		}
		if n > o.MaxWorkloadN {
			return fmt.Errorf("workload %q has %d iterations, exceeding the service limit %d",
				c.Workload, n, o.MaxWorkloadN)
		}
	}
	return cfg.Validate()
}

// retryAfterSeconds is the back-pressure hint on drain/saturation 503s:
// shed requests tell clients when to come back instead of letting them
// hammer a saturated daemon. Admission-control 429s carry a live hint
// derived from observed throughput instead (Manager.RetryAfterSeconds).
const retryAfterSeconds = "2"

// ClientKey returns a request's admission key: the X-Client header when
// present (the fleet coordinator forwards its caller's identity so the
// per-client budget follows the real client through the fleet), else the
// remote host. Exported for the coordinator and the load generator.
func ClientKey(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// ParseDeadline extracts a request's end-to-end deadline: the absolute
// X-Deadline header (RFC 3339, nanosecond precision) wins over the
// relative ?timeout= Go duration. The zero time means unbounded. An
// already-expired deadline is NOT an error — the job is accepted and its
// cells resolve as in-band "deadline exceeded" lines, exactly as if the
// deadline had passed a microsecond after submission, so single-daemon and
// fleet behavior cannot diverge on the boundary. Exported for the fleet
// coordinator, which forwards the deadline minus its network margin.
func ParseDeadline(r *http.Request) (time.Time, error) {
	if h := r.Header.Get("X-Deadline"); h != "" {
		t, err := time.Parse(time.RFC3339Nano, h)
		if err != nil {
			return time.Time{}, fmt.Errorf("malformed X-Deadline %q: %v", h, err)
		}
		return t, nil
	}
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			return time.Time{}, fmt.Errorf("malformed timeout %q (want a positive Go duration)", q)
		}
		return time.Now().Add(d), nil
	}
	return time.Time{}, nil
}

// submitOrFail maps submission errors to HTTP rejections: queue/drain
// failures to 503, admission-control shedding (job limits) to 429, both
// with Retry-After — shed work is always explicit, never silently queued.
// The job's cells are tied to ctx: handlers pass the request context for
// synchronous (streaming) submissions so a client disconnect cancels the
// work, and a detached context for async jobs that must run to
// completion. nil job means the response has been written.
func (s *Server) submitOrFail(ctx context.Context, w http.ResponseWriter, cells []hdls.Config, opts SubmitOpts) *Job {
	job, err := s.manager.SubmitWith(ctx, cells, opts)
	if err != nil {
		if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClientBusy) {
			w.Header().Set("Retry-After", strconv.Itoa(s.manager.RetryAfterSeconds()))
			httpError(w, http.StatusTooManyRequests, "%v", err)
		} else {
			w.Header().Set("Retry-After", retryAfterSeconds)
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return nil
	}
	return job
}

// handleRun runs a single cell synchronously through the worker pool and
// returns {"hash":…,"summary":…}. Identical configs are served from the
// tiered store with byte-identical bodies; X-Cache reports how the cell
// resolved ("hit", "hit-disk", "hit-peer", "collapsed", or "miss" for the
// one request that actually ran the engine).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var cfg hdls.Config
	if err := decodeConfig(json.NewDecoder(r.Body), &cfg); err != nil {
		httpError(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}
	if err := s.checkCell(cfg); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline, err := ParseDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash := cfg.Hash()
	if body, tier, ok := s.store.LookupLocal(hash); ok {
		// Cache hits dodge the deadline entirely: replaying frozen bytes is
		// effectively free, and refusing them would punish the cheap path.
		label := "hit"
		if tier == castore.TierDisk {
			label = "hit-disk"
		}
		writeRunBody(w, hash, body, label)
		return
	}
	ctx := r.Context()
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	job := s.submitOrFail(ctx, w, []hdls.Config{cfg}, SubmitOpts{Client: ClientKey(r)})
	if job == nil {
		return
	}
	line, err := job.WaitCell(r.Context(), 0)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "canceled: %v", err)
		return
	}
	// Slice the summary back out of the frozen cell line instead of
	// re-querying the store, so the hit/miss counters see only client
	// lookups. An error line (no summary prefix) means the cell failed
	// after validation — an internal fault, except for a deadline expiry,
	// which is the client's own bound and maps to 504 (non-retryable:
	// a passed deadline will not un-pass).
	prefix := fmt.Appendf(nil, `{"index":0,"hash":%q,"summary":`, hash)
	if !bytes.HasPrefix(line, prefix) {
		status := http.StatusInternalServerError
		if bytes.Contains(line, []byte(`"error":"`+deadlineExceededMsg+`"`)) {
			status = http.StatusGatewayTimeout
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(append(bytes.Clone(line), '\n'))
		return
	}
	writeRunBody(w, hash, line[len(prefix):len(line)-1], job.Outcome(0).String())
}

// handleCacheLookup serves the raw stored summary bytes for a canonical
// config hash — the fleet peer-fill endpoint. Deliberately local-only
// (memory and disk tiers; never this daemon's own peer hook), so probe
// chains terminate after one hop and a cache miss can never cascade into
// a fleet-wide probe storm. 404 means "I don't have it; simulate it
// yourself".
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if len(hash) != 64 {
		httpError(w, http.StatusBadRequest, "malformed config hash %q", hash)
		return
	}
	body, tier, ok := s.store.LookupLocal(hash)
	if !ok {
		httpError(w, http.StatusNotFound, "hash %s not cached", hash)
		return
	}
	label := "hit"
	if tier == castore.TierDisk {
		label = "hit-disk"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", label)
	w.Header().Set("X-Config-Hash", hash)
	w.Write(body)
}

// writeRunBody writes the /v1/run response. The bytes around the cached
// summary are a pure function of the hash, so hit and miss responses for
// one config are byte-identical.
func writeRunBody(w http.ResponseWriter, hash string, summaryJSON []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Header().Set("X-Config-Hash", hash)
	body := fmt.Appendf(nil, `{"hash":%q,"summary":`, hash)
	body = append(body, summaryJSON...)
	body = append(body, '}', '\n')
	w.Write(body)
}

// sweepRequest is the POST /v1/sweep body.
type sweepRequest struct {
	// Cells lists one hdls.Config per simulation cell.
	Cells []hdls.Config `json:"cells"`
}

// handleSweep accepts a batch of cells. With ?stream=1 (or Accept:
// application/x-ndjson) it streams per-cell NDJSON results on this
// response as cells complete; otherwise it returns 202 with the job's
// status and results URLs.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep request: %v", err)
		return
	}
	if len(req.Cells) == 0 {
		httpError(w, http.StatusBadRequest, "sweep needs at least one cell")
		return
	}
	if len(req.Cells) > s.opts.MaxCells {
		httpError(w, http.StatusBadRequest, "sweep of %d cells exceeds the %d-cell limit",
			len(req.Cells), s.opts.MaxCells)
		return
	}
	for i, cfg := range req.Cells {
		if err := s.checkCell(cfg); err != nil {
			httpError(w, http.StatusBadRequest, "cell %d: %v", i, err)
			return
		}
	}
	deadline, err := ParseDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Streamed sweeps live and die with their request: the submitter is the
	// only reader, so its disconnect cancels the remaining cells. Async
	// jobs detach — their results are fetched later — and are the jobs the
	// journal makes durable: the 202 below is a promise that must survive a
	// crash. Either way a client deadline bounds the job end to end.
	stream := wantStream(r)
	opts := SubmitOpts{Client: ClientKey(r)}
	ctx := context.Background()
	if stream {
		ctx = r.Context()
		if !deadline.IsZero() {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, deadline)
			defer cancel()
		}
	} else {
		opts.Journal = true
		if !deadline.IsZero() {
			// The cancel releases the deadline timer once the last cell
			// completes; SubmitWith stores it on the job.
			ctx, opts.Cancel = context.WithDeadline(ctx, deadline)
		}
	}
	job := s.submitOrFail(ctx, w, req.Cells, opts)
	if job == nil {
		if opts.Cancel != nil {
			opts.Cancel()
		}
		return
	}
	if stream {
		s.streamJob(w, r, job)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	resp := map[string]any{
		"job_id":      job.ID,
		"cells":       job.Cells(),
		"status_url":  "/v1/jobs/" + job.ID,
		"results_url": "/v1/jobs/" + job.ID + "/results",
	}
	json.NewEncoder(w).Encode(resp)
}

// wantStream reports whether a sweep submission asked for inline NDJSON:
// ?stream with any truthy value ("1", "true", "yes", or bare), or an
// NDJSON Accept header. "0", "false" and "no" explicitly select the
// async 202 response.
func wantStream(r *http.Request) bool {
	if r.Header.Get("Accept") == "application/x-ndjson" {
		return true
	}
	if !r.URL.Query().Has("stream") {
		return false
	}
	switch strings.ToLower(r.URL.Query().Get("stream")) {
	case "0", "false", "no":
		return false
	}
	return true
}

// handleJobStatus reports a job's progress.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	completed, failed := job.Progress()
	status := "running"
	if completed == job.Cells() {
		status = "done"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"id":        job.ID,
		"status":    status,
		"cells":     job.Cells(),
		"completed": completed,
		"failed":    failed,
		"cache":     job.CacheCounts(),
		"created":   job.Created.UTC().Format(time.RFC3339Nano),
		"recovered": job.Recovered,
	})
}

// handleJobResults streams (or replays) a job's per-cell NDJSON lines.
// The Acquire pin is held for the life of the stream so TTL/count-cap
// eviction cannot drop the job from the store while this replay is still
// consuming it (Manager.Acquire).
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	job, release, ok := s.manager.Acquire(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	defer release()
	s.streamJob(w, r, job)
}

// streamJob writes the job's cells as NDJSON in index order, flushing each
// line as its cell completes. Index order makes the whole body a pure
// function of the cell list: re-running an identical sweep — cached or not
// — yields byte-identical output, while the head-of-line discipline still
// delivers early cells long before the sweep finishes.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-Id", job.ID)
	flusher, _ := w.(http.Flusher)
	for i := 0; i < job.Cells(); i++ {
		line, err := job.WaitCell(r.Context(), i)
		if err != nil {
			return // client went away; workers finish the job regardless
		}
		w.Write(line)
		w.Write([]byte{'\n'})
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// techniqueInfo is one /v1/techniques row.
type techniqueInfo struct {
	// Name is the conventional technique name (dls.Technique.String).
	Name string `json:"name"`
	// Adaptive marks techniques that learn from runtime measurements.
	Adaptive bool `json:"adaptive"`
	// Weighted marks techniques whose chunks depend on the worker.
	Weighted bool `json:"weighted"`
	// InterOK reports whether the technique is accepted at the inter-node
	// level (probed against hdls.Config.Validate; approach-independent).
	InterOK bool `json:"inter_ok"`
	// IntraOK reports intra-node acceptance under the proposed MPI+MPI
	// executor.
	IntraOK bool `json:"intra_ok"`
	// IntraOpenMPOK reports intra-node acceptance under MPI+OpenMP on the
	// stock runtime — the paper's Intel stack, which lacks TSS/FAC2
	// schedules (they need extended_runtime).
	IntraOpenMPOK bool `json:"intra_openmp_ok"`
}

// handleTechniques lists every DLS technique with its hierarchy-level
// support, computed once by probing the real validator so the endpoint
// can never drift from what POST /v1/run actually accepts.
func (s *Server) handleTechniques(w http.ResponseWriter, r *http.Request) {
	s.techOnce.Do(func() {
		probe := func(cfg hdls.Config) bool {
			cfg.Workload = "constant:n=64"
			cfg.Nodes = 2
			return cfg.Validate() == nil
		}
		var infos []techniqueInfo
		for _, t := range dls.All() {
			infos = append(infos, techniqueInfo{
				Name:          t.String(),
				Adaptive:      t.IsAdaptive(),
				Weighted:      t.IsWeighted(),
				InterOK:       probe(hdls.Config{Inter: t, Intra: dls.STATIC}),
				IntraOK:       probe(hdls.Config{Inter: dls.STATIC, Intra: t, Approach: hdls.MPIMPI}),
				IntraOpenMPOK: probe(hdls.Config{Inter: dls.STATIC, Intra: t, Approach: hdls.MPIOpenMP}),
			})
		}
		s.techJSON, _ = json.Marshal(map[string]any{"techniques": infos})
		s.techJSON = append(s.techJSON, '\n')
	})
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.techJSON)
}

// handleWorkloads lists the synthetic workload spec kinds plus the two
// paper applications accepted by Config.App.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"apps":  []string{hdls.Mandelbrot.String(), hdls.PSIA.String()},
		"specs": workload.SpecKinds(),
	})
}

// handleHealthz is the liveness probe: 200 for as long as the process can
// answer HTTP at all, draining included. Liveness deliberately says nothing
// about whether the daemon wants traffic — that is /readyz — so orchestrators
// don't kill a pod that is merely draining or saturated.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.1f}\n", time.Since(s.started).Seconds())
}

// handleReadyz is the readiness probe: 503 with a Retry-After hint once the
// daemon drains or its cell queue saturates, so load balancers and fleet
// coordinators stop routing before submissions start bouncing. The body
// reports the drain state and worker-pool saturation either way.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.manager.Stats()
	capacity := s.manager.QueueCapacity()
	draining := s.manager.Draining()
	saturated := st.QueueDepth >= int64(capacity)
	status := "ready"
	code := http.StatusOK
	switch {
	case draining:
		status, code = "draining", http.StatusServiceUnavailable
	case saturated:
		status, code = "saturated", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.Header().Set("Retry-After", retryAfterSeconds)
		w.WriteHeader(code)
	}
	fmt.Fprintf(w, "{\"status\":%q,\"draining\":%t,\"queue_depth\":%d,\"queue_capacity\":%d,\"workers\":%d,\"active_jobs\":%d}\n",
		status, draining, st.QueueDepth, capacity, s.opts.Workers, st.ActiveJobs)
}
