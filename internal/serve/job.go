package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/hdls"
	"repro/internal/castore"
)

// Submission errors surfaced as HTTP statuses by the handlers.
var (
	// ErrDraining rejects new work while the daemon drains (503).
	ErrDraining = errors.New("serve: draining, not accepting new jobs")
	// ErrBusy rejects work that does not fit the bounded cell queue (503).
	ErrBusy = errors.New("serve: cell queue full")
)

// Job is one accepted sweep: a batch of cells running on the manager's
// worker pool. Each cell's result is frozen as a complete NDJSON line;
// lines are retained so streams can be replayed after completion.
type Job struct {
	// ID addresses the job under /v1/jobs/{id}.
	ID string
	// Created is the submission time.
	Created time.Time

	mgr   *Manager
	cells []hdls.Config
	// ctx is the submitter's context: canceled when a streaming client
	// disconnects, so queued cells are skipped and the in-flight cell's
	// simulation aborts instead of running the sweep to completion.
	// Async (202) submissions carry context.Background() and always finish.
	ctx context.Context

	mu        sync.Mutex
	cond      *sync.Cond
	lines     [][]byte          // per-cell NDJSON line, newline excluded
	outcomes  []castore.Outcome // how the store resolved each completed cell
	completed int
	failed    int
	finished  time.Time // when the last cell completed (zero while running)

	// pins counts in-flight readers (results replays) holding the job.
	// Guarded by the MANAGER's mu, not j.mu: pin/unpin and the eviction
	// decision in evictLocked must be atomic with respect to each other.
	pins int
}

// newJob freezes the cell list and allocates completion tracking.
func newJob(ctx context.Context, mgr *Manager, id string, cells []hdls.Config) *Job {
	j := &Job{
		ID:       id,
		Created:  time.Now(),
		mgr:      mgr,
		cells:    cells,
		ctx:      ctx,
		lines:    make([][]byte, len(cells)),
		outcomes: make([]castore.Outcome, len(cells)),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Cells returns the number of cells in the job.
func (j *Job) Cells() int { return len(j.cells) }

// Progress reports completed and failed cell counts.
func (j *Job) Progress() (completed, failed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed, j.failed
}

// Done reports whether every cell has completed.
func (j *Job) Done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed == len(j.cells)
}

// doneSince reports completion and, if complete, when.
func (j *Job) doneSince() (bool, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed == len(j.cells), j.finished
}

// complete records cell idx's frozen line and store outcome, and wakes
// streamers.
func (j *Job) complete(idx int, line []byte, failed bool, outcome castore.Outcome) {
	j.mu.Lock()
	j.lines[idx] = line
	j.outcomes[idx] = outcome
	j.completed++
	if failed {
		j.failed++
	}
	last := j.completed == len(j.cells)
	if last {
		j.finished = time.Now()
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	if last {
		j.mgr.jobWG.Done()
		j.mgr.activeJobs.Add(-1)
	}
}

// Outcome reports how the store resolved cell idx; meaningful only after
// the cell completed (WaitCell returned its line).
func (j *Job) Outcome(idx int) castore.Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	if idx < 0 || idx >= len(j.outcomes) {
		return castore.Computed
	}
	return j.outcomes[idx]
}

// CacheCounts tallies the job's completed cells by store outcome — the
// per-tier breakdown the job-status JSON reports.
type CacheCounts struct {
	Computed  int `json:"computed"`  // cells that ran the engine
	Collapsed int `json:"collapsed"` // cells that joined a concurrent identical flight
	MemHits   int `json:"mem_hits"`  // cells served by the memory tier
	DiskHits  int `json:"disk_hits"` // cells served by the disk tier
	PeerHits  int `json:"peer_hits"` // cells filled from a fleet peer
}

// CacheCounts reports the per-tier resolution breakdown of the job's
// completed cells.
func (j *Job) CacheCounts() CacheCounts {
	j.mu.Lock()
	defer j.mu.Unlock()
	var c CacheCounts
	for idx, line := range j.lines {
		if line == nil {
			continue
		}
		switch j.outcomes[idx] {
		case castore.Collapsed:
			c.Collapsed++
		case castore.HitMem:
			c.MemHits++
		case castore.HitDisk:
			c.DiskHits++
		case castore.HitPeer:
			c.PeerHits++
		default:
			c.Computed++
		}
	}
	return c
}

// WaitCell blocks until cell idx's line is available or ctx is canceled.
// Streamers call it in index order, so results flow to the client as the
// head-of-line cell completes while later cells are still running.
func (j *Job) WaitCell(ctx context.Context, idx int) ([]byte, error) {
	if idx < 0 || idx >= len(j.cells) {
		return nil, fmt.Errorf("serve: cell %d out of range", idx)
	}
	// The wakeup must take j.mu before broadcasting: a bare Broadcast could
	// fire in the window between a waiter's ctx check and its cond.Wait,
	// waking nobody and leaving the waiter parked until the next cell
	// completes. Holding the lock forces the broadcast to order after the
	// waiter has either parked (wakes it) or not yet checked ctx (it will
	// see the cancellation).
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		j.cond.Broadcast()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.lines[idx] == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j.cond.Wait()
	}
	return j.lines[idx], nil
}

// Manager owns the bounded worker pool that executes cells, the job
// registry, and the tiered result store. One manager serves the whole
// daemon; its worker count bounds simultaneous simulations regardless of
// how many HTTP requests are in flight, so the arena pool (DESIGN.md §8)
// sees at most Workers concurrent arenas.
type Manager struct {
	store       *castore.Store
	queue       chan cellTask
	jobTTL      time.Duration // completed-job retention time
	maxJobs     int           // completed-job retention count cap
	janitorStop chan struct{}

	mu          sync.Mutex
	jobs        map[string]*Job
	jobOrder    []string // submission order, for bounded retention
	queueClosed bool

	seq        atomic.Int64
	draining   atomic.Bool
	jobWG      sync.WaitGroup // accepted, not yet fully completed jobs
	workerWG   sync.WaitGroup
	queueDepth atomic.Int64
	activeJobs atomic.Int64

	jobsTotal      atomic.Int64
	jobsEvicted    atomic.Int64
	cellsTotal     atomic.Int64
	cellsCached    atomic.Int64
	cellsCollapsed atomic.Int64
	cellsCanceled  atomic.Int64
	cellErrors     atomic.Int64
}

type cellTask struct {
	job *Job
	idx int
}

// NewManager starts workers goroutines serving a cell queue of the given
// capacity (defaults: GOMAXPROCS workers, 65536 cells). Completed jobs are
// retained for replay until they age past jobTTL or the newest maxJobs
// completed jobs push them out, whichever comes first (defaults: 15
// minutes, 256 jobs).
func NewManager(workers, queueCapacity int, jobTTL time.Duration, maxJobs int, store *castore.Store) *Manager {
	if queueCapacity <= 0 {
		queueCapacity = 1 << 16
	}
	if jobTTL <= 0 {
		jobTTL = 15 * time.Minute
	}
	if maxJobs <= 0 {
		maxJobs = 256
	}
	m := &Manager{
		store:       store,
		queue:       make(chan cellTask, queueCapacity),
		jobTTL:      jobTTL,
		maxJobs:     maxJobs,
		janitorStop: make(chan struct{}),
		jobs:        make(map[string]*Job),
	}
	for i := 0; i < workers; i++ {
		m.workerWG.Add(1)
		go m.worker()
	}
	go m.janitor()
	return m
}

// Submit accepts a batch of cells as one job whose cells always run to
// completion (context.Background). Streaming handlers use SubmitCtx instead
// so a client disconnect cancels the work.
func (m *Manager) Submit(cells []hdls.Config) (*Job, error) {
	return m.SubmitCtx(context.Background(), cells)
}

// SubmitCtx accepts a batch of cells as one job and enqueues every cell on
// the worker pool; ctx cancellation skips the job's unstarted cells and
// aborts its in-flight simulations. It fails with ErrDraining during
// shutdown and ErrBusy when the queue cannot hold the whole batch; partial
// enqueues never happen, so a rejected submission leaves no orphaned work.
func (m *Manager) SubmitCtx(ctx context.Context, cells []hdls.Config) (*Job, error) {
	if len(cells) == 0 {
		return nil, errors.New("serve: empty cell list")
	}
	m.mu.Lock()
	// Re-checked under mu: Drain closes the queue only after setting the
	// flag and waiting out accepted jobs, so a submission that sees the
	// flag clear here enqueues strictly before the close.
	if m.draining.Load() {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	// Holding mu across the capacity check and enqueue makes the
	// all-or-nothing guarantee: Submit is the only sender.
	if len(m.queue)+len(cells) > cap(m.queue) {
		m.mu.Unlock()
		return nil, ErrBusy
	}
	id := fmt.Sprintf("job-%d", m.seq.Add(1))
	j := newJob(ctx, m, id, cells)
	m.jobs[id] = j
	m.jobOrder = append(m.jobOrder, id)
	m.evictLocked(time.Now())
	m.jobWG.Add(1)
	m.jobsTotal.Add(1)
	m.activeJobs.Add(1)
	for i := range cells {
		m.queue <- cellTask{job: j, idx: i}
		m.queueDepth.Add(1)
	}
	m.mu.Unlock()
	return j, nil
}

// Job looks up a retained job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Acquire looks up a retained job and pins it against retention eviction
// until the returned release is called (release is idempotent). Handlers
// that replay a job's results hold the pin for the life of the stream:
// without it, a TTL or count-cap eviction racing the replay drops the job
// from the store while a reader is still consuming it, so the job 404s
// for status polls and resume attempts mid-stream even though its results
// are actively being served. A pinned job is simply skipped by
// evictLocked; the janitor collects it on its next tick once the last
// pin drops.
func (m *Manager) Acquire(id string) (*Job, func(), bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, false
	}
	j.pins++
	var once sync.Once
	release := func() {
		once.Do(func() {
			m.mu.Lock()
			j.pins--
			m.mu.Unlock()
		})
	}
	return j, release, true
}

// QueueCapacity reports the cell queue's bound (for saturation reporting).
func (m *Manager) QueueCapacity() int { return cap(m.queue) }

// evictLocked drops completed jobs that aged past the TTL, then the oldest
// completed jobs beyond the retention count cap. Running jobs are never
// evicted: their submitters still hold the *Job, and the worker pool still
// feeds it. Pinned jobs (in-flight results replays, see Acquire) are never
// evicted either — eviction is deferred to the janitor tick after the last
// reader releases.
func (m *Manager) evictLocked(now time.Time) {
	completed := 0
	for _, id := range m.jobOrder {
		if done, _ := m.jobs[id].doneSince(); done {
			completed++
		}
	}
	kept := m.jobOrder[:0]
	for _, id := range m.jobOrder {
		j := m.jobs[id]
		done, finished := j.doneSince()
		evict := done && j.pins == 0 &&
			(now.Sub(finished) > m.jobTTL || completed > m.maxJobs)
		if evict {
			delete(m.jobs, id)
			m.jobsEvicted.Add(1)
			completed--
			continue
		}
		kept = append(kept, id)
	}
	m.jobOrder = kept
}

// janitor evicts TTL-expired jobs even when no submissions arrive. Stopped
// by Drain.
func (m *Manager) janitor() {
	interval := m.jobTTL / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.mu.Lock()
			m.evictLocked(time.Now())
			m.mu.Unlock()
		}
	}
}

// worker executes queued cells until the queue closes during drain.
func (m *Manager) worker() {
	defer m.workerWG.Done()
	for task := range m.queue {
		m.queueDepth.Add(-1)
		m.runCell(task)
	}
}

// runCell resolves one cell through the tiered store: memory, disk, a
// fleet peer, or hdls.RunSummaryCtx (the pooled-arena path) — with
// concurrent identical cells collapsed onto a single engine execution by
// the store's singleflight. The frozen NDJSON line embeds the stored
// summary bytes verbatim, so identical cells produce byte-identical lines
// regardless of which tier served them. A canceled job short-circuits:
// queued cells are skipped and the in-flight simulation aborts; canceled
// outcomes are never cached, so a later resubmission of the same cell
// recomputes the real result.
func (m *Manager) runCell(task cellTask) {
	cfg := task.job.cells[task.idx]
	hash := cfg.Hash()
	m.cellsTotal.Add(1)
	if err := task.job.ctx.Err(); err != nil {
		m.cellsCanceled.Add(1)
		task.job.complete(task.idx, errorLine(task.idx, hash, "canceled: "+err.Error()), true, castore.Computed)
		return
	}
	body, outcome, err := m.store.Do(task.job.ctx, hash, func(ctx context.Context) ([]byte, error) {
		sum, err := hdls.RunSummaryCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return marshalSummary(sum), nil
	})
	if err != nil {
		if task.job.ctx.Err() != nil {
			m.cellsCanceled.Add(1)
		} else {
			// Submission validates every cell, so this is an internal
			// failure; report it in-band so the stream stays well-formed.
			m.cellErrors.Add(1)
		}
		task.job.complete(task.idx, errorLine(task.idx, hash, err.Error()), true, outcome)
		return
	}
	switch outcome {
	case castore.Computed:
		// The one caller that paid the engine cost.
	case castore.Collapsed:
		m.cellsCollapsed.Add(1)
	default: // HitMem, HitDisk, HitPeer
		m.cellsCached.Add(1)
	}
	task.job.complete(task.idx, cellLine(task.idx, hash, body), false, outcome)
}

// cellLine composes the per-cell NDJSON line around the cached summary
// bytes. Index and hash are deterministic, so the line is a pure function
// of the cell config. The fleet coordinator (internal/fleet) rebuilds
// exactly these bytes around worker-streamed summaries, which is what makes
// a merged fleet response byte-identical to a single daemon's.
func cellLine(idx int, hash string, summaryJSON []byte) []byte {
	line := fmt.Appendf(nil, `{"index":%d,"hash":%q,"summary":`, idx, hash)
	line = append(line, summaryJSON...)
	return append(line, '}')
}

// CellLine exposes the frozen NDJSON cell-line layout to the fleet
// coordinator; see cellLine.
func CellLine(idx int, hash string, summaryJSON []byte) []byte {
	return cellLine(idx, hash, summaryJSON)
}

// errorLine composes the per-cell NDJSON error line — the failure
// counterpart of cellLine, same frozen layout discipline.
func errorLine(idx int, hash, msg string) []byte {
	return fmt.Appendf(nil, `{"index":%d,"hash":%q,"error":%q}`, idx, hash, msg)
}

// ErrorCellLine exposes the frozen NDJSON error-line layout to the fleet
// coordinator; see errorLine.
func ErrorCellLine(idx int, hash, msg string) []byte {
	return errorLine(idx, hash, msg)
}

// Drain stops accepting jobs, waits for every accepted cell to finish (or
// ctx to expire), then shuts the worker pool down. Idempotent in effect:
// later calls wait on the same state.
func (m *Manager) Drain(ctx context.Context) error {
	// Setting the flag under mu orders it against Submit's jobWG.Add: every
	// accepted job is either visible to the Wait below or rejected.
	m.mu.Lock()
	m.draining.Store(true)
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain aborted with %d jobs still active: %w",
			m.activeJobs.Load(), ctx.Err())
	}
	m.mu.Lock()
	if !m.queueClosed { // all cells consumed: jobWG is zero and Submit rejects
		close(m.queue)
		m.queueClosed = true
		close(m.janitorStop)
	}
	m.mu.Unlock()
	m.workerWG.Wait()
	return nil
}

// Draining reports whether Drain has been initiated.
func (m *Manager) Draining() bool { return m.draining.Load() }

// ManagerStats is the manager's operational counter snapshot for /metrics.
type ManagerStats struct {
	Jobs           int64 // jobs accepted over the process lifetime
	JobsEvicted    int64 // completed jobs dropped by TTL/count retention
	JobsRetained   int   // jobs currently addressable under /v1/jobs
	ActiveJobs     int64 // jobs with incomplete cells
	Cells          int64 // cells processed (cache hits included)
	CellsCached    int64 // cells served from a store tier (mem/disk/peer)
	CellsCollapsed int64 // cells that joined a concurrent identical flight
	CellsCanceled  int64 // cells skipped or aborted by client disconnect
	CellErrors     int64 // cells that failed after validation
	QueueDepth     int64 // cells queued but not yet started
}

// Stats reports lifetime job/cell counters and the live queue depth.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	retained := len(m.jobOrder)
	m.mu.Unlock()
	return ManagerStats{
		Jobs:           m.jobsTotal.Load(),
		JobsEvicted:    m.jobsEvicted.Load(),
		JobsRetained:   retained,
		ActiveJobs:     m.activeJobs.Load(),
		Cells:          m.cellsTotal.Load(),
		CellsCached:    m.cellsCached.Load(),
		CellsCollapsed: m.cellsCollapsed.Load(),
		CellsCanceled:  m.cellsCanceled.Load(),
		CellErrors:     m.cellErrors.Load(),
		QueueDepth:     m.queueDepth.Load(),
	}
}
