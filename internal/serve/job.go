package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/hdls"
	"repro/internal/castore"
)

// Submission errors surfaced as HTTP statuses by the handlers.
var (
	// ErrDraining rejects new work while the daemon drains (503).
	ErrDraining = errors.New("serve: draining, not accepting new jobs")
	// ErrBusy rejects work that does not fit the bounded cell queue (503).
	ErrBusy = errors.New("serve: cell queue full")
	// ErrOverloaded rejects a submission that would exceed the bounded
	// pending-jobs limit (429 + Retry-After): accepted work is never
	// silently queued beyond what the daemon admits it can serve.
	ErrOverloaded = errors.New("serve: active-job limit reached")
	// ErrClientBusy rejects a submission whose client already has its full
	// allowance of in-flight jobs (429 + Retry-After), so one aggressive
	// client cannot monopolize the admission budget.
	ErrClientBusy = errors.New("serve: per-client in-flight job limit reached")
)

// deadlineExceededMsg is the frozen in-band error for a cell refused (or
// aborted) because its end-to-end deadline passed. Deterministic — no
// timestamps — so a deadline-expired cell line from a fleet worker is
// byte-identical to a single daemon's.
const deadlineExceededMsg = "deadline exceeded"

// Job is one accepted sweep: a batch of cells running on the manager's
// worker pool. Each cell's result is frozen as a complete NDJSON line;
// lines are retained so streams can be replayed after completion.
type Job struct {
	// ID addresses the job under /v1/jobs/{id}.
	ID string
	// Created is the submission time.
	Created time.Time
	// Client is the admission key the job was accepted under (X-Client
	// header or remote address); empty for internal submissions.
	Client string
	// Recovered marks a job replayed from the journal after a restart.
	Recovered bool

	mgr   *Manager
	cells []hdls.Config
	// ctx is the submitter's context: canceled when a streaming client
	// disconnects, so queued cells are skipped and the in-flight cell's
	// simulation aborts instead of running the sweep to completion.
	// Async (202) submissions carry context.Background() and always finish,
	// unless an end-to-end deadline bounds them.
	ctx context.Context
	// deadline is the job's end-to-end deadline (zero = none), snapshotted
	// from ctx at submission so the refuse-expired-cells check needs no
	// context machinery on the hot path.
	deadline time.Time
	// cancel releases the deadline timer backing an async job's context;
	// called once the last cell completes.
	cancel context.CancelFunc
	// journaled marks jobs with an acceptance record on disk: completion
	// must append the terminal record.
	journaled bool

	mu        sync.Mutex
	cond      *sync.Cond
	lines     [][]byte          // per-cell NDJSON line, newline excluded
	outcomes  []castore.Outcome // how the store resolved each completed cell
	completed int
	failed    int
	finished  time.Time // when the last cell completed (zero while running)

	// pins counts in-flight readers (results replays) holding the job.
	// Guarded by the MANAGER's mu, not j.mu: pin/unpin and the eviction
	// decision in evictLocked must be atomic with respect to each other.
	pins int
}

// newJob freezes the cell list and allocates completion tracking.
func newJob(ctx context.Context, mgr *Manager, id string, cells []hdls.Config) *Job {
	j := &Job{
		ID:       id,
		Created:  time.Now(),
		mgr:      mgr,
		cells:    cells,
		ctx:      ctx,
		lines:    make([][]byte, len(cells)),
		outcomes: make([]castore.Outcome, len(cells)),
	}
	if dl, ok := ctx.Deadline(); ok {
		j.deadline = dl
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Deadline reports the job's end-to-end deadline (zero when unbounded).
func (j *Job) Deadline() time.Time { return j.deadline }

// Cells returns the number of cells in the job.
func (j *Job) Cells() int { return len(j.cells) }

// Progress reports completed and failed cell counts.
func (j *Job) Progress() (completed, failed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed, j.failed
}

// Done reports whether every cell has completed.
func (j *Job) Done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed == len(j.cells)
}

// doneSince reports completion and, if complete, when.
func (j *Job) doneSince() (bool, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed == len(j.cells), j.finished
}

// complete records cell idx's frozen line and store outcome, and wakes
// streamers.
func (j *Job) complete(idx int, line []byte, failed bool, outcome castore.Outcome) {
	j.mu.Lock()
	j.lines[idx] = line
	j.outcomes[idx] = outcome
	j.completed++
	if failed {
		j.failed++
	}
	last := j.completed == len(j.cells)
	if last {
		j.finished = time.Now()
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	j.mgr.noteCellDone()
	if last {
		j.mgr.activeJobs.Add(-1)
		j.mgr.jobDone(j)
		j.mgr.jobWG.Done()
	}
}

// Outcome reports how the store resolved cell idx; meaningful only after
// the cell completed (WaitCell returned its line).
func (j *Job) Outcome(idx int) castore.Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	if idx < 0 || idx >= len(j.outcomes) {
		return castore.Computed
	}
	return j.outcomes[idx]
}

// CacheCounts tallies the job's completed cells by store outcome — the
// per-tier breakdown the job-status JSON reports.
type CacheCounts struct {
	Computed  int `json:"computed"`  // cells that ran the engine
	Collapsed int `json:"collapsed"` // cells that joined a concurrent identical flight
	MemHits   int `json:"mem_hits"`  // cells served by the memory tier
	DiskHits  int `json:"disk_hits"` // cells served by the disk tier
	PeerHits  int `json:"peer_hits"` // cells filled from a fleet peer
}

// CacheCounts reports the per-tier resolution breakdown of the job's
// completed cells.
func (j *Job) CacheCounts() CacheCounts {
	j.mu.Lock()
	defer j.mu.Unlock()
	var c CacheCounts
	for idx, line := range j.lines {
		if line == nil {
			continue
		}
		switch j.outcomes[idx] {
		case castore.Collapsed:
			c.Collapsed++
		case castore.HitMem:
			c.MemHits++
		case castore.HitDisk:
			c.DiskHits++
		case castore.HitPeer:
			c.PeerHits++
		default:
			c.Computed++
		}
	}
	return c
}

// WaitCell blocks until cell idx's line is available or ctx is canceled.
// Streamers call it in index order, so results flow to the client as the
// head-of-line cell completes while later cells are still running.
func (j *Job) WaitCell(ctx context.Context, idx int) ([]byte, error) {
	if idx < 0 || idx >= len(j.cells) {
		return nil, fmt.Errorf("serve: cell %d out of range", idx)
	}
	// The wakeup must take j.mu before broadcasting: a bare Broadcast could
	// fire in the window between a waiter's ctx check and its cond.Wait,
	// waking nobody and leaving the waiter parked until the next cell
	// completes. Holding the lock forces the broadcast to order after the
	// waiter has either parked (wakes it) or not yet checked ctx (it will
	// see the cancellation).
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		j.cond.Broadcast()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.lines[idx] == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j.cond.Wait()
	}
	return j.lines[idx], nil
}

// Manager owns the bounded worker pool that executes cells, the job
// registry, and the tiered result store. One manager serves the whole
// daemon; its worker count bounds simultaneous simulations regardless of
// how many HTTP requests are in flight, so the arena pool (DESIGN.md §8)
// sees at most Workers concurrent arenas.
type Manager struct {
	store        *castore.Store
	queue        chan cellTask
	jobTTL       time.Duration // completed-job retention time
	maxJobs      int           // completed-job retention count cap
	maxActive    int           // admission bound on incomplete jobs
	maxPerClient int           // admission bound on one client's incomplete jobs
	janitorStop  chan struct{}
	// journal is the optional durability sink (nil = off): SubmitWith writes
	// the acceptance record before enqueueing, jobDone appends the terminal
	// record. See journal.go and DESIGN.md §13.
	journal *jobJournal

	mu          sync.Mutex
	jobs        map[string]*Job
	jobOrder    []string       // submission order, for bounded retention
	clients     map[string]int // incomplete jobs per admission key
	queueClosed bool

	seq        atomic.Int64
	draining   atomic.Bool
	jobWG      sync.WaitGroup // accepted, not yet fully completed jobs
	workerWG   sync.WaitGroup
	queueDepth atomic.Int64
	activeJobs atomic.Int64

	jobsTotal      atomic.Int64
	jobsEvicted    atomic.Int64
	jobsShed       atomic.Int64 // submissions rejected by admission control
	jobsRecovered  atomic.Int64 // journal records replayed at startup
	recoveryFails  atomic.Int64 // journal records that could not be replayed
	cellsTotal     atomic.Int64
	cellsCached    atomic.Int64
	cellsCollapsed atomic.Int64
	cellsCanceled  atomic.Int64
	cellsExpired   atomic.Int64 // cells refused/aborted past their deadline
	cellErrors     atomic.Int64

	// EWMA of the cell completion rate (cells/s), fed by every complete()
	// and read by RetryAfterSeconds to turn the queue backlog into an
	// honest Retry-After hint for shed clients.
	ewmaMu   sync.Mutex
	ewmaRate float64
	ewmaLast time.Time
}

type cellTask struct {
	job *Job
	idx int
}

// ManagerConfig sizes a Manager. Zero values take the documented defaults.
type ManagerConfig struct {
	// Workers is the cell worker pool size (default GOMAXPROCS).
	Workers int
	// QueueCapacity bounds the cell queue (default 65536).
	QueueCapacity int
	// JobTTL retains completed jobs for replay this long (default 15m).
	JobTTL time.Duration
	// RetainedJobs caps how many completed jobs stay addressable
	// (default 256).
	RetainedJobs int
	// MaxActiveJobs bounds incomplete jobs; submissions past it shed with
	// ErrOverloaded rather than queue silently (default 1024).
	MaxActiveJobs int
	// MaxJobsPerClient bounds one admission key's incomplete jobs
	// (default 64).
	MaxJobsPerClient int
	// Journal, when non-nil, makes accepted async jobs crash-recoverable.
	Journal *jobJournal
	// Store is the tiered result store (required).
	Store *castore.Store
}

// NewManager starts the worker pool and janitor for cfg.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1 << 16
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = 15 * time.Minute
	}
	if cfg.RetainedJobs <= 0 {
		cfg.RetainedJobs = 256
	}
	if cfg.MaxActiveJobs <= 0 {
		cfg.MaxActiveJobs = 1024
	}
	if cfg.MaxJobsPerClient <= 0 {
		cfg.MaxJobsPerClient = 64
	}
	m := &Manager{
		store:        cfg.Store,
		queue:        make(chan cellTask, cfg.QueueCapacity),
		jobTTL:       cfg.JobTTL,
		maxJobs:      cfg.RetainedJobs,
		maxActive:    cfg.MaxActiveJobs,
		maxPerClient: cfg.MaxJobsPerClient,
		journal:      cfg.Journal,
		janitorStop:  make(chan struct{}),
		jobs:         make(map[string]*Job),
		clients:      make(map[string]int),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.workerWG.Add(1)
		go m.worker()
	}
	go m.janitor()
	return m
}

// Submit accepts a batch of cells as one job whose cells always run to
// completion (context.Background). Streaming handlers use SubmitCtx instead
// so a client disconnect cancels the work.
func (m *Manager) Submit(cells []hdls.Config) (*Job, error) {
	return m.SubmitCtx(context.Background(), cells)
}

// SubmitCtx accepts a batch of cells as one job; see SubmitWith.
func (m *Manager) SubmitCtx(ctx context.Context, cells []hdls.Config) (*Job, error) {
	return m.SubmitWith(ctx, cells, SubmitOpts{})
}

// SubmitOpts carries a submission's admission and durability attributes.
type SubmitOpts struct {
	// Client is the admission key (ClientKey of the request); empty skips
	// the per-client cap (internal submissions, recovery).
	Client string
	// ID reuses a recovered job's identity so clients' status URLs survive
	// a restart; empty allocates the next sequence id.
	ID string
	// Recovered marks a journal replay: it bypasses admission control
	// (the work was already accepted before the crash) and is counted.
	Recovered bool
	// Journal writes the acceptance record before enqueueing, making the
	// job crash-recoverable. No-op when the manager has no journal.
	Journal bool
	// Cancel, when non-nil, is invoked once the last cell completes —
	// releases the deadline timer backing an async job's context.
	Cancel context.CancelFunc
}

// SubmitWith accepts a batch of cells as one job and enqueues every cell
// on the worker pool; ctx cancellation skips the job's unstarted cells and
// aborts its in-flight simulations, and a ctx deadline becomes the job's
// end-to-end deadline (expired cells resolve as in-band error lines).
//
// Admission is explicit, never silent: ErrDraining during shutdown,
// ErrBusy when the cell queue cannot hold the whole batch (503s), and
// ErrOverloaded / ErrClientBusy when the active-job or per-client bound is
// hit (429s with a Retry-After derived from observed throughput). Partial
// enqueues never happen, so a rejected submission leaves no orphaned work.
//
// When opts.Journal is set and the manager has a journal, the acceptance
// record is persisted before any cell can run; journal write failure is
// fail-open (counted, job still accepted) — durability degrades before
// availability does.
func (m *Manager) SubmitWith(ctx context.Context, cells []hdls.Config, opts SubmitOpts) (*Job, error) {
	if len(cells) == 0 {
		return nil, errors.New("serve: empty cell list")
	}
	m.mu.Lock()
	// Re-checked under mu: Drain closes the queue only after setting the
	// flag and waiting out accepted jobs, so a submission that sees the
	// flag clear here enqueues strictly before the close.
	if m.draining.Load() {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	// Recovered jobs skip the admission bounds: they were admitted before
	// the crash, and re-shedding them would turn a restart into data loss.
	// The cell-queue capacity check still applies — it protects memory.
	if !opts.Recovered {
		if int(m.activeJobs.Load()) >= m.maxActive {
			m.jobsShed.Add(1)
			m.mu.Unlock()
			return nil, ErrOverloaded
		}
		if opts.Client != "" && m.clients[opts.Client] >= m.maxPerClient {
			m.jobsShed.Add(1)
			m.mu.Unlock()
			return nil, ErrClientBusy
		}
	}
	// Holding mu across the capacity check and enqueue makes the
	// all-or-nothing guarantee: Submit is the only sender.
	if len(m.queue)+len(cells) > cap(m.queue) {
		m.mu.Unlock()
		return nil, ErrBusy
	}
	id := opts.ID
	if id == "" {
		id = fmt.Sprintf("job-%d", m.seq.Add(1))
	} else {
		m.bumpSeq(id)
	}
	if _, dup := m.jobs[id]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: job id %q already in use", id)
	}
	j := newJob(ctx, m, id, cells)
	j.Client = opts.Client
	j.Recovered = opts.Recovered
	j.cancel = opts.Cancel
	if opts.Journal && m.journal != nil {
		// Record before the first cell can complete, so the terminal append
		// can never race the acceptance write. Errors are fail-open: the
		// journal counts them, the job runs without a safety net.
		if err := m.journal.record(j); err == nil {
			j.journaled = true
		}
	}
	m.jobs[id] = j
	m.jobOrder = append(m.jobOrder, id)
	if opts.Client != "" {
		m.clients[opts.Client]++
	}
	m.evictLocked(time.Now())
	m.jobWG.Add(1)
	m.jobsTotal.Add(1)
	if opts.Recovered {
		m.jobsRecovered.Add(1)
	}
	m.activeJobs.Add(1)
	for i := range cells {
		m.queue <- cellTask{job: j, idx: i}
		m.queueDepth.Add(1)
	}
	m.mu.Unlock()
	return j, nil
}

// bumpSeq advances the id sequence past a recovered "job-N" id so fresh
// submissions never collide with replayed jobs. Caller holds m.mu (only
// for consistency of intent — the CAS loop itself is lock-free).
func (m *Manager) bumpSeq(id string) {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "job-"), 10, 64)
	if err != nil {
		return
	}
	for {
		cur := m.seq.Load()
		if cur >= n || m.seq.CompareAndSwap(cur, n) {
			return
		}
	}
}

// jobDone runs once per job, after its last cell completes: release the
// deadline timer, free the client's admission slot, and append the
// journal's terminal record so a restart will not replay the job.
func (m *Manager) jobDone(j *Job) {
	if j.cancel != nil {
		j.cancel()
	}
	if j.Client != "" {
		m.mu.Lock()
		if n := m.clients[j.Client]; n <= 1 {
			delete(m.clients, j.Client)
		} else {
			m.clients[j.Client] = n - 1
		}
		m.mu.Unlock()
	}
	if j.journaled {
		m.journal.finish(j)
	}
}

// Job looks up a retained job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Acquire looks up a retained job and pins it against retention eviction
// until the returned release is called (release is idempotent). Handlers
// that replay a job's results hold the pin for the life of the stream:
// without it, a TTL or count-cap eviction racing the replay drops the job
// from the store while a reader is still consuming it, so the job 404s
// for status polls and resume attempts mid-stream even though its results
// are actively being served. A pinned job is simply skipped by
// evictLocked; the janitor collects it on its next tick once the last
// pin drops.
func (m *Manager) Acquire(id string) (*Job, func(), bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, false
	}
	j.pins++
	var once sync.Once
	release := func() {
		once.Do(func() {
			m.mu.Lock()
			j.pins--
			m.mu.Unlock()
		})
	}
	return j, release, true
}

// QueueCapacity reports the cell queue's bound (for saturation reporting).
func (m *Manager) QueueCapacity() int { return cap(m.queue) }

// noteCellDone feeds the completion-rate EWMA (alpha 0.2 on the
// instantaneous inter-completion rate). Cheap enough to run per cell; the
// rate is only a hint, so lock contention here is the real budget.
func (m *Manager) noteCellDone() {
	now := time.Now()
	m.ewmaMu.Lock()
	if !m.ewmaLast.IsZero() {
		if dt := now.Sub(m.ewmaLast).Seconds(); dt > 0 {
			inst := 1.0 / dt
			if m.ewmaRate == 0 {
				m.ewmaRate = inst
			} else {
				m.ewmaRate = 0.2*inst + 0.8*m.ewmaRate
			}
		}
	}
	m.ewmaLast = now
	m.ewmaMu.Unlock()
}

// RetryAfterSeconds estimates how long a shed client should wait before
// retrying: the current cell backlog divided by the observed completion
// rate, clamped to [1s, 60s]. With no throughput signal yet (cold start)
// it answers a flat 2s. The hint is deliberately conservative and honest —
// never "retry immediately" while a backlog exists.
func (m *Manager) RetryAfterSeconds() int {
	m.ewmaMu.Lock()
	rate := m.ewmaRate
	m.ewmaMu.Unlock()
	if rate <= 0 {
		return 2
	}
	secs := int(math.Ceil(float64(m.queueDepth.Load()) / rate))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// evictLocked drops completed jobs that aged past the TTL, then the oldest
// completed jobs beyond the retention count cap. Running jobs are never
// evicted: their submitters still hold the *Job, and the worker pool still
// feeds it. Pinned jobs (in-flight results replays, see Acquire) are never
// evicted either — eviction is deferred to the janitor tick after the last
// reader releases.
func (m *Manager) evictLocked(now time.Time) {
	completed := 0
	for _, id := range m.jobOrder {
		if done, _ := m.jobs[id].doneSince(); done {
			completed++
		}
	}
	kept := m.jobOrder[:0]
	for _, id := range m.jobOrder {
		j := m.jobs[id]
		done, finished := j.doneSince()
		evict := done && j.pins == 0 &&
			(now.Sub(finished) > m.jobTTL || completed > m.maxJobs)
		if evict {
			delete(m.jobs, id)
			m.jobsEvicted.Add(1)
			completed--
			continue
		}
		kept = append(kept, id)
	}
	m.jobOrder = kept
}

// janitor evicts TTL-expired jobs even when no submissions arrive. Stopped
// by Drain.
func (m *Manager) janitor() {
	interval := m.jobTTL / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.mu.Lock()
			m.evictLocked(time.Now())
			m.mu.Unlock()
		}
	}
}

// worker executes queued cells until the queue closes during drain.
func (m *Manager) worker() {
	defer m.workerWG.Done()
	for task := range m.queue {
		m.queueDepth.Add(-1)
		m.runCell(task)
	}
}

// runCell resolves one cell through the tiered store: memory, disk, a
// fleet peer, or hdls.RunSummaryCtx (the pooled-arena path) — with
// concurrent identical cells collapsed onto a single engine execution by
// the store's singleflight. The frozen NDJSON line embeds the stored
// summary bytes verbatim, so identical cells produce byte-identical lines
// regardless of which tier served them. A canceled job short-circuits:
// queued cells are skipped and the in-flight simulation aborts; canceled
// outcomes are never cached, so a later resubmission of the same cell
// recomputes the real result.
func (m *Manager) runCell(task cellTask) {
	cfg := task.job.cells[task.idx]
	hash := cfg.Hash()
	m.cellsTotal.Add(1)
	// Refuse cells whose end-to-end deadline already passed: running them
	// would burn worker time producing results nobody is waiting for. The
	// refusal is an in-band error line with a frozen, timestamp-free
	// message, so fleet workers and a single daemon emit identical bytes.
	if !task.job.deadline.IsZero() && !time.Now().Before(task.job.deadline) {
		m.cellsExpired.Add(1)
		task.job.complete(task.idx, errorLine(task.idx, hash, deadlineExceededMsg), true, castore.Computed)
		return
	}
	if err := task.job.ctx.Err(); err != nil {
		m.cellsCanceled.Add(1)
		task.job.complete(task.idx, errorLine(task.idx, hash, "canceled: "+err.Error()), true, castore.Computed)
		return
	}
	body, outcome, err := m.store.Do(task.job.ctx, hash, func(ctx context.Context) ([]byte, error) {
		sum, err := hdls.RunSummaryCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return marshalSummary(sum), nil
	})
	if err != nil {
		if !task.job.deadline.IsZero() && errors.Is(err, context.DeadlineExceeded) {
			// Mid-flight expiry: same frozen in-band line as the refusal
			// above, so where in the pipeline the deadline fired does not
			// change the bytes the client reads.
			m.cellsExpired.Add(1)
			task.job.complete(task.idx, errorLine(task.idx, hash, deadlineExceededMsg), true, outcome)
			return
		}
		if task.job.ctx.Err() != nil {
			m.cellsCanceled.Add(1)
		} else {
			// Submission validates every cell, so this is an internal
			// failure; report it in-band so the stream stays well-formed.
			m.cellErrors.Add(1)
		}
		task.job.complete(task.idx, errorLine(task.idx, hash, err.Error()), true, outcome)
		return
	}
	switch outcome {
	case castore.Computed:
		// The one caller that paid the engine cost.
	case castore.Collapsed:
		m.cellsCollapsed.Add(1)
	default: // HitMem, HitDisk, HitPeer
		m.cellsCached.Add(1)
	}
	task.job.complete(task.idx, cellLine(task.idx, hash, body), false, outcome)
}

// cellLine composes the per-cell NDJSON line around the cached summary
// bytes. Index and hash are deterministic, so the line is a pure function
// of the cell config. The fleet coordinator (internal/fleet) rebuilds
// exactly these bytes around worker-streamed summaries, which is what makes
// a merged fleet response byte-identical to a single daemon's.
func cellLine(idx int, hash string, summaryJSON []byte) []byte {
	line := fmt.Appendf(nil, `{"index":%d,"hash":%q,"summary":`, idx, hash)
	line = append(line, summaryJSON...)
	return append(line, '}')
}

// CellLine exposes the frozen NDJSON cell-line layout to the fleet
// coordinator; see cellLine.
func CellLine(idx int, hash string, summaryJSON []byte) []byte {
	return cellLine(idx, hash, summaryJSON)
}

// errorLine composes the per-cell NDJSON error line — the failure
// counterpart of cellLine, same frozen layout discipline.
func errorLine(idx int, hash, msg string) []byte {
	return fmt.Appendf(nil, `{"index":%d,"hash":%q,"error":%q}`, idx, hash, msg)
}

// ErrorCellLine exposes the frozen NDJSON error-line layout to the fleet
// coordinator; see errorLine.
func ErrorCellLine(idx int, hash, msg string) []byte {
	return errorLine(idx, hash, msg)
}

// Drain stops accepting jobs, waits for every accepted cell to finish (or
// ctx to expire), then shuts the worker pool down. Idempotent in effect:
// later calls wait on the same state.
func (m *Manager) Drain(ctx context.Context) error {
	// Setting the flag under mu orders it against Submit's jobWG.Add: every
	// accepted job is either visible to the Wait below or rejected.
	m.mu.Lock()
	m.draining.Store(true)
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain aborted with %d jobs still active: %w",
			m.activeJobs.Load(), ctx.Err())
	}
	m.mu.Lock()
	if !m.queueClosed { // all cells consumed: jobWG is zero and Submit rejects
		close(m.queue)
		m.queueClosed = true
		close(m.janitorStop)
	}
	m.mu.Unlock()
	m.workerWG.Wait()
	return nil
}

// Draining reports whether Drain has been initiated.
func (m *Manager) Draining() bool { return m.draining.Load() }

// ManagerStats is the manager's operational counter snapshot for /metrics.
type ManagerStats struct {
	Jobs           int64 // jobs accepted over the process lifetime
	JobsEvicted    int64 // completed jobs dropped by TTL/count retention
	JobsRetained   int   // jobs currently addressable under /v1/jobs
	JobsShed       int64 // submissions rejected by admission control (429s)
	JobsRecovered  int64 // jobs replayed from the journal after a restart
	RecoveryFails  int64 // journal records that could not be replayed
	ActiveJobs     int64 // jobs with incomplete cells
	Cells          int64 // cells processed (cache hits included)
	CellsCached    int64 // cells served from a store tier (mem/disk/peer)
	CellsCollapsed int64 // cells that joined a concurrent identical flight
	CellsCanceled  int64 // cells skipped or aborted by client disconnect
	CellsExpired   int64 // cells refused or aborted past their deadline
	CellErrors     int64 // cells that failed after validation
	QueueDepth     int64 // cells queued but not yet started
}

// Stats reports lifetime job/cell counters and the live queue depth.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	retained := len(m.jobOrder)
	m.mu.Unlock()
	return ManagerStats{
		Jobs:           m.jobsTotal.Load(),
		JobsEvicted:    m.jobsEvicted.Load(),
		JobsRetained:   retained,
		JobsShed:       m.jobsShed.Load(),
		JobsRecovered:  m.jobsRecovered.Load(),
		RecoveryFails:  m.recoveryFails.Load(),
		ActiveJobs:     m.activeJobs.Load(),
		Cells:          m.cellsTotal.Load(),
		CellsCached:    m.cellsCached.Load(),
		CellsCollapsed: m.cellsCollapsed.Load(),
		CellsCanceled:  m.cellsCanceled.Load(),
		CellsExpired:   m.cellsExpired.Load(),
		CellErrors:     m.cellErrors.Load(),
		QueueDepth:     m.queueDepth.Load(),
	}
}
