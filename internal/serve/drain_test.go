package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/dls"
	"repro/hdls"
)

// TestGracefulDrain locks down the shutdown contract: Drain returns only
// after every accepted cell has completed, later submissions are refused
// with ErrDraining (503 over HTTP), and /readyz flips to 503 with a
// Retry-After hint so load balancers stop routing — while /healthz stays
// 200, because a draining process is alive and must not be killed.
func TestGracefulDrain(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A sweep big enough that some cells are still queued when Drain starts.
	cells := make([]hdls.Config, 24)
	for i := range cells {
		cells[i] = hdls.Config{
			Nodes: 2, WorkersPerNode: 8, Inter: dls.GSS, Intra: dls.SS,
			Approach: hdls.MPIMPI, Seed: int64(i + 1),
			Workload: "gaussian:n=2048,cv=0.5",
		}
	}
	job, err := s.manager.Submit(cells)
	if err != nil {
		t.Fatal(err)
	}
	if job.Done() {
		t.Log("job finished before drain; drain-waits-for-work not exercised this run")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !job.Done() {
		t.Fatal("Drain returned before the accepted job completed")
	}
	if completed, failed := job.Progress(); completed != 24 || failed != 0 {
		t.Fatalf("job progress after drain: %d/%d failed=%d", completed, 24, failed)
	}

	// New work is refused at both layers.
	if _, err := s.manager.Submit(cells[:1]); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain: err = %v, want ErrDraining", err)
	}
	body, _ := json.Marshal(map[string]any{"cells": cells[:1]})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep during drain: status %d, want 503", resp.StatusCode)
	}

	// Liveness keeps saying alive; readiness says stop routing.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("readyz 503 during drain is missing the Retry-After hint")
	}

	// Completed results remain replayable after the drain.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	lines := parseNDJSON(t, readBody(t, resp))
	if len(lines) != 24 {
		t.Fatalf("post-drain replay: %d lines, want 24", len(lines))
	}

	// A second Drain is a no-op that returns promptly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDrainTimeout exercises the bounded-drain path: a canceled context
// makes Drain report the jobs it could not wait out.
func TestDrainTimeout(t *testing.T) {
	s := New(Options{Workers: 1})
	cells := make([]hdls.Config, 8)
	for i := range cells {
		cells[i] = hdls.Config{
			Nodes: 2, WorkersPerNode: 8, Inter: dls.GSS, Intra: dls.SS,
			Approach: hdls.MPIMPI, Seed: int64(i + 1),
			Workload: "gaussian:n=4096,cv=0.5",
		}
	}
	job, err := s.manager.Submit(cells)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: drain must not block on the running job
	if err := s.Drain(ctx); err == nil && !job.Done() {
		t.Fatal("Drain with canceled ctx returned nil while work was pending")
	}

	// Clean up for real so the worker pool exits.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	if !job.Done() {
		t.Fatal("job incomplete after final drain")
	}
}
