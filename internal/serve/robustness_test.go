package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/dls"
	"repro/hdls"
)

// TestSubmitOverloadShedsWithRetryAfter locks graceful degradation at the
// submission edge: a sweep that cannot fit the bounded cell queue is shed
// with 503 and a Retry-After hint instead of queueing unboundedly.
func TestSubmitOverloadShedsWithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueCapacity: 2})
	cells := []hdls.Config{cheapCell(1, dls.GSS), cheapCell(2, dls.GSS), cheapCell(3, dls.GSS)}
	body, _ := json.Marshal(map[string]any{"cells": cells})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized submission: status %d, want 503 (%s)", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("overload 503 is missing the Retry-After hint")
	}
}

// TestReadyzReady is the happy half of the readiness contract (the drain
// and saturation halves live in TestGracefulDrain and the fleet tests).
func TestReadyzReady(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d %s", resp.StatusCode, b)
	}
	var rz struct {
		Status        string `json:"status"`
		Draining      bool   `json:"draining"`
		QueueCapacity int    `json:"queue_capacity"`
		Workers       int    `json:"workers"`
	}
	if err := json.Unmarshal(b, &rz); err != nil {
		t.Fatalf("readyz body: %v %s", err, b)
	}
	if rz.Status != "ready" || rz.Draining || rz.Workers != 2 || rz.QueueCapacity <= 0 {
		t.Fatalf("readyz = %+v", rz)
	}
}

// TestJobStoreEviction locks satellite: the job store no longer grows
// unboundedly. Completed jobs age out by TTL (janitor-driven, no further
// submissions needed) and are capped by count, evictions are counted, and
// running jobs are never evicted.
func TestJobStoreEviction(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, QueueCapacity: 64, JobTTL: 80 * time.Millisecond, RetainedJobs: 2, Store: newMemStore(t, 64)})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	}()

	waitDone := func(j *Job) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !j.Done() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not complete", j.ID)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Count cap: with RetainedJobs=2, finishing a third job must push the
	// oldest completed one out on the next submission's eviction pass.
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit([]hdls.Config{cheapCell(int64(10+i), dls.GSS)})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(j)
		jobs = append(jobs, j)
	}
	if _, ok := m.Job(jobs[0].ID); ok {
		t.Fatalf("job %s survived the retention cap", jobs[0].ID)
	}
	if _, ok := m.Job(jobs[3].ID); !ok {
		t.Fatalf("newest job %s was evicted", jobs[3].ID)
	}
	st := m.Stats()
	if st.JobsEvicted == 0 {
		t.Fatal("eviction happened but JobsEvicted is 0")
	}
	// The cap counts completed jobs: at job-4's submission-time eviction
	// pass, job-4 itself was still running, so up to cap+1 jobs linger
	// until the next pass.
	if st.JobsRetained > 3 {
		t.Fatalf("JobsRetained = %d, want <= 3", st.JobsRetained)
	}

	// TTL: with no further submissions, the janitor alone must clear the
	// remaining completed jobs once they age past the TTL.
	deadline := time.Now().Add(30 * time.Second)
	for m.Stats().JobsRetained > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("janitor never evicted TTL-expired jobs: %d retained", m.Stats().JobsRetained)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamDisconnectCancelsCells locks the request-context satellite: a
// client that abandons a streaming sweep mid-flight aborts the in-flight
// simulation and skips the queued cells — and none of those canceled
// outcomes poison the result cache.
func TestStreamDisconnectCancelsCells(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	cells := make([]hdls.Config, 24)
	for i := range cells {
		cells[i] = hdls.Config{
			Nodes: 2, WorkersPerNode: 8, Inter: dls.GSS, Intra: dls.SS,
			Approach: hdls.MPIMPI, Seed: int64(i + 1),
			Workload: "gaussian:n=16384,cv=0.5",
		}
	}
	body, _ := json.Marshal(map[string]any{"cells": cells})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep?stream=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first line so the sweep is demonstrably in flight, then
	// vanish like a crashed client.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first byte: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The worker pool must come to rest without running the whole sweep.
	deadline := time.Now().Add(60 * time.Second)
	for s.manager.Stats().ActiveJobs > 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never settled after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s.manager.Stats()
	if st.CellsCanceled == 0 {
		t.Fatalf("no cells were canceled after disconnect: %+v", st)
	}

	// Canceled outcomes must not be cached: rerunning the sweep to
	// completion yields a real summary for every cell.
	resp2 := postJSON(t, ts.URL+"/v1/sweep?stream=1", map[string]any{"cells": cells})
	lines := parseNDJSON(t, readBody(t, resp2))
	if len(lines) != len(cells) {
		t.Fatalf("rerun: %d lines, want %d", len(lines), len(cells))
	}
	for i, ln := range lines {
		if ln.Error != "" || len(ln.Summary) == 0 {
			t.Fatalf("rerun cell %d poisoned by cancellation: error=%q", i, ln.Error)
		}
	}
}

// TestMetricsExposeRobustnessCounters checks the new rows are actually on
// /metrics, where the fleet smoke and dashboards look for them.
func TestMetricsExposeRobustnessCounters(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, resp))
	for _, want := range []string{
		"hdlsd_jobs_retained", "hdlsd_jobs_evicted_total", "hdlsd_cells_canceled_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}
