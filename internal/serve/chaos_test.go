package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestChaosSpecParsing(t *testing.T) {
	cases := []struct {
		spec string
		ok   bool
	}{
		{"delay:d=50ms", true},
		{"error", true},
		{"error:code=503,after=2,times=1", true},
		{"drop:times=3", true},
		{"truncate:lines=2", true},
		{"explode", false},
		{"error:code=200", false}, // not an error status
		{"error:code=abc", false},
		{"delay:d=", false},
		{"delay:d", false}, // not key=value
		{"drop:bogus=1", false},
	}
	for _, tc := range cases {
		_, err := parseChaosSpec(tc.spec)
		if (err == nil) != tc.ok {
			t.Errorf("parseChaosSpec(%q): err = %v, want ok=%t", tc.spec, err, tc.ok)
		}
	}
	spec, err := parseChaosSpec("error:code=503,after=2,times=1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.mode != "error" || spec.code != 503 || spec.after != 2 || spec.times != 1 {
		t.Fatalf("parsed spec = %+v", spec)
	}

	// A bad -chaos flag must fail daemon construction, not a later request.
	if _, err := NewWithError(Options{Workers: 1, Chaos: "explode"}); err == nil {
		t.Fatal("NewWithError accepted a malformed chaos spec")
	}
}

// TestChaosWindowCounting locks the deterministic injection window: with
// after=1,times=2, eligible requests 2 and 3 are injected and every other
// one passes — which is exactly what lets a test break "the second sweep
// and nothing else".
func TestChaosWindowCounting(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h, err := Chaos("error:code=503,after=1,times=2", next)
	if err != nil {
		t.Fatal(err)
	}
	got := ""
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", nil))
		got += fmt.Sprintf("%d,", rec.Code)
	}
	if want := "200,503,503,200,200,"; got != want {
		t.Fatalf("status sequence = %s, want %s", got, want)
	}

	// Probes and metrics are never eligible, whatever the rule says.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz got injected: %d", rec.Code)
	}
}

func TestChaosHeaderOverride(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h, err := Chaos(chaosHeaderOnly, next) // armed, no static rule
	if err != nil {
		t.Fatal(err)
	}

	// No header: untouched.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("unarmed request: %d", rec.Code)
	}

	// Header injects this one request.
	req := httptest.NewRequest(http.MethodPost, "/v1/run", nil)
	req.Header.Set("X-Chaos", "error:code=502")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("X-Chaos error: %d, want 502", rec.Code)
	}

	// A malformed header is a client error, not silent pass-through.
	req = httptest.NewRequest(http.MethodPost, "/v1/run", nil)
	req.Header.Set("X-Chaos", "explode")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed X-Chaos: %d, want 400", rec.Code)
	}
}

func TestChaosDelay(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h, err := Chaos("delay:d=60ms", next)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", nil))
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("delayed request returned after %s, want >= 60ms", elapsed)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("delay must not change the response: %d", rec.Code)
	}
}

// TestChaosDropSeversConnection uses a real server: the client must see a
// transport-level failure, indistinguishable from a SIGKILLed worker.
func TestChaosDropSeversConnection(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h, err := Chaos("drop", next)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{}"))
	if err == nil {
		resp.Body.Close()
		t.Fatal("dropped request returned a response")
	}
}

// TestChaosTruncateMidStream locks the truncation contract: the client
// receives exactly lines=N complete NDJSON lines, then an abrupt EOF with
// no trailing partial line — the signature the fleet coordinator must
// recover from.
func TestChaosTruncateMidStream(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Mimic streamJob's write pattern: line bytes, then the newline.
		for i := 0; i < 5; i++ {
			fmt.Fprintf(w, `{"index":%d}`, i)
			w.Write([]byte{'\n'})
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	})
	h, err := Chaos("truncate:lines=2", next)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	var readErr error
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	readErr = sc.Err()
	if readErr == nil {
		// bufio.Scanner maps some abort shapes to a clean EOF after the last
		// full line; reading the raw body again distinguishes — but either
		// way the line count is the contract.
		_, readErr = io.Copy(io.Discard, resp.Body)
	}
	if len(lines) != 2 {
		t.Fatalf("client saw %d complete lines, want exactly 2: %q", len(lines), lines)
	}
	if lines[0] != `{"index":0}` || lines[1] != `{"index":1}` {
		t.Fatalf("truncated prefix corrupted: %q", lines)
	}
	if readErr == nil {
		t.Fatal("truncated stream ended without a transport error")
	}
	if errors.Is(readErr, io.EOF) {
		t.Fatalf("expected an abrupt abort, got clean EOF")
	}
}
