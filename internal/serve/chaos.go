package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The chaos layer is deterministic fault injection for the worker daemon:
// every failure path the fleet coordinator must survive — slow workers,
// 5xx responses, dropped connections, streams truncated mid-body — can be
// provoked on purpose, by count, so tests exercise recovery instead of
// hoping for it. It is armed explicitly (Options.Chaos / hdlsd -chaos) and
// never touches a production daemon.
//
// A chaos spec is "mode:key=value,..." with modes
//
//	delay     sleep d (e.g. delay:d=200ms) before handling the request
//	error     reply with an HTTP error (code=500 by default)
//	drop      abort the connection before writing anything
//	truncate  stream the first lines=N NDJSON lines, then abort mid-body;
//	          bytes=M additionally leaks M bytes of the next line first
//	          (M=-1: the whole next line except its newline — the
//	          unterminated-final-line artifact merge layers must reject)
//
// and common keys times=N (inject on the first N eligible requests only;
// default unlimited) and after=M (let the first M eligible requests pass
// untouched). Counts make injection deterministic: "truncate:lines=2,
// after=0,times=1" breaks exactly the first sweep stream and nothing else.
// Only /v1/run and /v1/sweep requests are eligible — probes and metrics
// always tell the truth.
//
// The per-request X-Chaos header (same syntax) overrides the static spec,
// with its own independent counters, so a curl session can break a single
// request of a live-but-armed worker.

// chaosSpec is one parsed injection rule with its request counter.
type chaosSpec struct {
	mode  string
	delay time.Duration
	code  int   // error mode: status code
	lines int   // truncate mode: NDJSON lines to let through
	cut   int   // truncate mode: bytes of the next line to leak (-1: all but its newline)
	after int64 // eligible requests to let pass first
	times int64 // injections to perform (<0 = unlimited)

	seen atomic.Int64 // eligible requests observed
}

// chaosHeaderOnly is the Options.Chaos value that arms the layer without a
// static rule: only X-Chaos headers inject.
const chaosHeaderOnly = "header"

// parseChaosSpec parses "mode:key=value,..." into a rule.
func parseChaosSpec(s string) (*chaosSpec, error) {
	mode, args, _ := strings.Cut(s, ":")
	spec := &chaosSpec{mode: strings.TrimSpace(mode), code: http.StatusInternalServerError, lines: 0, times: -1}
	switch spec.mode {
	case "delay", "error", "drop", "truncate":
	default:
		return nil, fmt.Errorf("serve: unknown chaos mode %q (delay, error, drop, truncate)", spec.mode)
	}
	if args == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(args, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("serve: chaos argument %q is not key=value", kv)
		}
		var err error
		switch strings.TrimSpace(k) {
		case "d":
			spec.delay, err = time.ParseDuration(v)
		case "code":
			spec.code, err = strconv.Atoi(v)
		case "lines":
			spec.lines, err = strconv.Atoi(v)
		case "bytes":
			spec.cut, err = strconv.Atoi(v)
			if err == nil && spec.cut < -1 {
				return nil, fmt.Errorf("serve: chaos bytes %d out of -1..", spec.cut)
			}
		case "after":
			spec.after, err = strconv.ParseInt(v, 10, 64)
		case "times":
			spec.times, err = strconv.ParseInt(v, 10, 64)
		default:
			return nil, fmt.Errorf("serve: unknown chaos key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: chaos key %s: %w", k, err)
		}
	}
	if spec.mode == "error" && (spec.code < 400 || spec.code > 599) {
		return nil, fmt.Errorf("serve: chaos error code %d out of 400..599", spec.code)
	}
	return spec, nil
}

// fires reports whether this eligible request is within the rule's
// [after, after+times) injection window.
func (c *chaosSpec) fires() bool {
	n := c.seen.Add(1) - 1 // this request's zero-based eligible index
	if n < c.after {
		return false
	}
	return c.times < 0 || n < c.after+c.times
}

// chaosHandler wraps next with a static rule (nil when header-only armed)
// and honors per-request X-Chaos overrides.
type chaosHandler struct {
	static *chaosSpec
	next   http.Handler
}

// Chaos wraps next in the fault-injection layer armed with spec ("header"
// for header-only arming). It errors on malformed specs so a daemon with a
// typoed -chaos flag fails at startup, not mid-experiment.
func Chaos(spec string, next http.Handler) (http.Handler, error) {
	h := &chaosHandler{next: next}
	if spec != chaosHeaderOnly {
		rule, err := parseChaosSpec(spec)
		if err != nil {
			return nil, err
		}
		h.static = rule
	}
	return h, nil
}

// chaosEligible limits injection to the cell-serving endpoints.
func chaosEligible(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/v1/run") || strings.HasPrefix(r.URL.Path, "/v1/sweep")
}

func (h *chaosHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !chaosEligible(r) {
		h.next.ServeHTTP(w, r)
		return
	}
	rule := h.static
	if hdr := r.Header.Get("X-Chaos"); hdr != "" {
		// Header rules are one-shot by construction: each request carries
		// its own spec, so the counter starts fresh (after/times still
		// apply, letting a client express "pass" with after=1).
		override, err := parseChaosSpec(hdr)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid X-Chaos header: %v", err)
			return
		}
		rule = override
	}
	if rule == nil || !rule.fires() {
		h.next.ServeHTTP(w, r)
		return
	}
	switch rule.mode {
	case "delay":
		time.Sleep(rule.delay)
		h.next.ServeHTTP(w, r)
	case "error":
		httpError(w, rule.code, "chaos: injected %d", rule.code)
	case "drop":
		// ErrAbortHandler makes net/http sever the connection without a
		// response: the client sees a transport error, exactly like a
		// SIGKILLed worker.
		panic(http.ErrAbortHandler)
	case "truncate":
		tw := &truncatingWriter{ResponseWriter: w, remaining: rule.lines, cut: rule.cut}
		h.next.ServeHTTP(tw, r)
		if tw.tripped {
			panic(http.ErrAbortHandler)
		}
	}
}

// truncatingWriter lets rule.lines NDJSON lines through — plus, when cut
// is set, a leading fragment of the following line (cut = -1 leaks that
// whole line but withholds its newline) — then swallows all further output
// and marks itself tripped so the handler aborts the connection. The
// client observes a well-formed prefix (possibly ending in an unterminated
// line) followed by an unexpected EOF, the signature of a worker dying
// mid-stream.
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
	cut       int
	tripped   bool
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 && !t.tripped {
		if t.remaining > 0 {
			nl := bytes.IndexByte(p, '\n')
			if nl < 0 {
				_, err := t.ResponseWriter.Write(p)
				return total, err
			}
			if _, err := t.ResponseWriter.Write(p[:nl+1]); err != nil {
				return total, err
			}
			p = p[nl+1:]
			t.remaining--
			continue
		}
		// Line budget spent: leak the configured fragment of what follows,
		// then flush and trip so the abort leaves the fragment visible.
		frag := p
		done := false
		if t.cut < 0 {
			if nl := bytes.IndexByte(p, '\n'); nl >= 0 {
				frag = p[:nl]
				done = true
			}
		} else if len(frag) >= t.cut {
			frag = frag[:t.cut]
			t.cut = 0
			done = true
		} else {
			t.cut -= len(frag)
		}
		if len(frag) > 0 {
			if _, err := t.ResponseWriter.Write(frag); err != nil {
				return total, err
			}
		}
		p = p[len(frag):]
		if done {
			t.tripped = true
			if f, ok := t.ResponseWriter.(http.Flusher); ok {
				f.Flush()
			}
		}
	}
	return total, nil
}

// Flush forwards flushes while the writer is still passing data through.
func (t *truncatingWriter) Flush() {
	if t.tripped {
		return
	}
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
