// Package cliutil holds the small flag-parsing helpers the hdlsim and
// hdlsweep commands share, so the scenario flags (-speeds, -cores, -bg,
// -nodes) parse identically in both binaries.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFloats parses a comma-separated float list ("1,0.5").
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParsePositiveInts parses a comma-separated list of positive integers
// ("16,64"), rejecting zero and negatives.
func ParsePositiveInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
