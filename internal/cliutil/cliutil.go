// Package cliutil holds the small flag-parsing and profiling helpers the
// hdlsim and hdlsweep commands share, so the scenario flags (-speeds,
// -cores, -bg, -nodes) and the -cpuprofile/-memprofile instrumentation
// behave identically in both binaries.
package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"
)

// StartProfiles begins CPU profiling (when cpuPath is non-empty) and
// returns a stop function that finishes the CPU profile and, when memPath
// is non-empty, writes a heap profile. Perf work should start from a
// profile, not a guess: run the workload with these flags and feed the
// output to `go tool pprof` (or commit it as default.pgo for PGO builds).
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}, nil
}

// CalibScore measures the host's current single-core integer throughput
// (millions of splitmix64 steps per second) with a fixed ~100 ms kernel.
// Perf snapshots record it next to cells/second so the bench-trend check
// can compare load-normalized throughput: absolute wall-clock numbers swing
// with neighbour load and host class, but the ratio of two workloads
// measured at the same moment does not.
func CalibScore() float64 {
	const iters = 40_000_000
	var acc uint64
	start := time.Now()
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < iters; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		acc ^= z ^ (z >> 31)
	}
	el := time.Since(start).Seconds()
	if acc == 42 { // keep the loop from being optimized away
		fmt.Fprintln(os.Stderr, "calib sentinel")
	}
	if el <= 0 {
		return 0
	}
	return float64(iters) / el / 1e6
}

// ParseFloats parses a comma-separated float list ("1,0.5").
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseNodeCounts parses the -nodes comma list strictly. Each element
// names one row of the sweep axis, so sloppy input that a lenient parser
// would paper over changes what actually runs: a duplicate ("8,8")
// silently runs a cell twice and skews aggregate output, a trailing comma
// ("8,8,") hides a dropped element, and embedded whitespace ("2, 4") is
// usually a shell-quoting accident. All three are rejected with errors
// naming the offending element instead of being normalized away.
func ParseNodeCounts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	seen := make(map[int]bool, len(parts))
	for i, part := range parts {
		if part == "" {
			return nil, fmt.Errorf("empty element at position %d in %q", i+1, s)
		}
		if trimmed := strings.TrimSpace(part); trimmed != part {
			return nil, fmt.Errorf("element %q contains whitespace; write it as %q", part, trimmed)
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad node count %q", part)
		}
		if seen[v] {
			return nil, fmt.Errorf("duplicate node count %d", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// ParsePositiveInts parses a comma-separated list of positive integers
// ("16,64"), rejecting zero and negatives. Unlike ParseNodeCounts it
// tolerates whitespace and duplicates: it backs flags like -cores where
// repeated values are meaningful (per-node core counts).
func ParsePositiveInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
