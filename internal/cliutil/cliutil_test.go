package cliutil

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseNodeCounts pins the strict -nodes contract: lenient inputs
// that used to be silently normalized (whitespace) or half-rejected with
// an opaque message (trailing comma) now fail with errors naming the
// offending element, and duplicates are rejected outright.
func TestParseNodeCounts(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []int
		wantErr string // substring of the error, "" for success
	}{
		{in: "8", want: []int{8}},
		{in: "2,4,8,16", want: []int{2, 4, 8, 16}},
		{in: "16,4", want: []int{16, 4}}, // order preserved, not sorted
		{in: "2, 4", wantErr: `element " 4" contains whitespace`},
		{in: " 2,4", wantErr: `element " 2" contains whitespace`},
		{in: "2\t,4", wantErr: "contains whitespace"},
		{in: "8,8,", wantErr: "duplicate node count 8"}, // dup hit before the trailing comma
		{in: "8,4,", wantErr: "empty element at position 3"},
		{in: ",8", wantErr: "empty element at position 1"},
		{in: "", wantErr: "empty element at position 1"},
		{in: "8,8", wantErr: "duplicate node count 8"},
		{in: "2,4,2", wantErr: "duplicate node count 2"},
		{in: "0", wantErr: `bad node count "0"`},
		{in: "-4", wantErr: `bad node count "-4"`},
		{in: "4x", wantErr: `bad node count "4x"`},
	} {
		got, err := ParseNodeCounts(tc.in)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("ParseNodeCounts(%q) = %v, want error containing %q", tc.in, got, tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseNodeCounts(%q) error = %q, want it to contain %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseNodeCounts(%q): %v", tc.in, err)
		} else if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseNodeCounts(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestParsePositiveIntsStaysLenient pins the split contract: -cores style
// lists keep tolerating whitespace and duplicates (repeated per-node core
// counts are meaningful there).
func TestParsePositiveIntsStaysLenient(t *testing.T) {
	got, err := ParsePositiveInts("4, 4 ,8")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 4, 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ParsePositiveInts = %v, want %v", got, want)
	}
	if _, err := ParsePositiveInts("4,0"); err == nil {
		t.Fatal("ParsePositiveInts accepted a zero")
	}
}
