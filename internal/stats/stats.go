// Package stats provides the small statistical toolkit used across the
// repository: moments, percentiles, histograms, and the load-imbalance
// metrics standard in the DLS literature.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// CoV returns the coefficient of variation σ/µ, the standard measure of a
// workload's irregularity in the DLS literature. It returns 0 when the mean
// is 0.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// MinMax returns the extrema of xs; it panics on empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics; it panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p <= 0 {
		m, _ := MinMax(xs)
		return m
	}
	if p >= 100 {
		_, m := MinMax(xs)
		return m
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LoadImbalance returns the classic max/mean − 1 metric over per-worker
// finishing loads: 0 means perfectly balanced. It returns 0 for degenerate
// inputs.
func LoadImbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	m := Mean(loads)
	if m == 0 {
		return 0
	}
	_, max := MinMax(loads)
	return max/m - 1
}

// Histogram bins xs into n equal-width buckets over [min, max] and returns
// the bucket counts. Values exactly at max land in the last bucket.
func Histogram(xs []float64, n int) []int {
	if n <= 0 || len(xs) == 0 {
		return nil
	}
	min, max := MinMax(xs)
	counts := make([]int, n)
	if max == min {
		counts[0] = len(xs)
		return counts
	}
	w := (max - min) / float64(n)
	for _, x := range xs {
		b := int((x - min) / w)
		if b < 0 || math.IsNaN((x-min)/w) { // extreme ranges can overflow the division
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}

// Sparkline renders counts as a compact unicode bar string, for trace and
// CLI output.
func Sparkline(counts []int) string {
	if len(counts) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for _, c := range counts {
		if max == 0 {
			b.WriteRune(levels[0])
			continue
		}
		idx := c * (len(levels) - 1) / max
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// FormatSeconds renders a duration in seconds with an adaptive unit, for
// result tables.
func FormatSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.2f µs", s*1e6)
	default:
		return fmt.Sprintf("%.0f ns", s*1e9)
	}
}
