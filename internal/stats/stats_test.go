package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestStdDevAndCoV(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of singleton != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := CoV(xs); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("CoV = %v, want 0.4", got)
	}
	if CoV([]float64{0, 0}) != 0 {
		t.Fatal("CoV of zero-mean input should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Percentile(25) = %v, want 2.5", got)
	}
}

func TestLoadImbalance(t *testing.T) {
	if got := LoadImbalance([]float64{1, 1, 1, 1}); got != 0 {
		t.Fatalf("balanced imbalance = %v, want 0", got)
	}
	if got := LoadImbalance([]float64{1, 1, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("imbalance = %v, want 0.5", got)
	}
	if LoadImbalance(nil) != 0 || LoadImbalance([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	h := Histogram(xs, 2)
	// Buckets are [0, 0.5) and [0.5, 1.0]: 0.5 lands in the second.
	if len(h) != 2 || h[0] != 3 || h[1] != 3 {
		t.Fatalf("Histogram = %v, want [3 3]", h)
	}
	if got := Histogram([]float64{3, 3, 3}, 4); got[0] != 3 {
		t.Fatalf("constant histogram = %v", got)
	}
	if Histogram(nil, 3) != nil {
		t.Fatal("Histogram(nil) should be nil")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]int{0, 5, 10})
	if len([]rune(s)) != 3 {
		t.Fatalf("Sparkline length = %d, want 3", len([]rune(s)))
	}
	if []rune(s)[0] != '▁' || []rune(s)[2] != '█' {
		t.Fatalf("Sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("Sparkline(nil) should be empty")
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2.5, "2.50 s"},
		{0.0025, "2.50 ms"},
		{2.5e-6, "2.50 µs"},
		{3e-9, "3 ns"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Fatalf("FormatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if !strings.Contains(FormatSeconds(61), "s") {
		t.Fatal("seconds must carry a unit")
	}
}

// Property: histogram conserves count; imbalance is non-negative.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []float64, nRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Bound magnitudes so sums cannot overflow; astronomically
				// scaled inputs are not a supported regime.
				xs = append(xs, math.Mod(x, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		n := int(nRaw%10) + 1
		total := 0
		for _, c := range Histogram(xs, n) {
			if c < 0 {
				return false
			}
			total += c
		}
		pos := make([]float64, len(xs))
		for i, x := range xs {
			pos[i] = math.Abs(x) + 1
		}
		return total == len(xs) && LoadImbalance(pos) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
