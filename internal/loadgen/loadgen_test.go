package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestSummarySchemaGolden pins the Summary's JSON field names. Shell
// harnesses (scripts/fleet_soak.sh) and the checks runner consume this
// schema; renaming or dropping a key is a breaking change, and adding one
// must extend this golden deliberately.
func TestSummarySchemaGolden(t *testing.T) {
	s := Summary{
		Sweeps:          3,
		Statuses:        map[string]int{"200": 2, "429": 1},
		Lines:           16,
		ErrorLines:      1,
		TransportErrors: 0,
		RetryAfterSeen:  1,
		JobIDs:          []string{"job-1"},
		ElapsedSeconds:  1.5,
		Latency:         Latency{Count: 2, P50: 10, P90: 12, P99: 12, Max: 12},
	}
	got, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"sweeps":3,"statuses":{"200":2,"429":1},"lines":16,` +
		`"error_lines":1,"transport_errors":0,"retry_after_seen":1,` +
		`"job_ids":["job-1"],"elapsed_seconds":1.5,` +
		`"latency_ms":{"count":2,"p50":10,"p90":12,"p99":12,"max":12}}`
	if string(got) != want {
		t.Fatalf("summary schema drifted:\n got %s\nwant %s", got, want)
	}
}

// TestOptionsValidate names the missing/invalid field for every rejection.
func TestOptionsValidate(t *testing.T) {
	ok := Options{Target: "http://x", Mode: "stream", Clients: 1, Cells: 1, Sweeps: 1}
	for _, tc := range []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"missing target", func(o *Options) { o.Target = "" }, "Target"},
		{"unknown mode", func(o *Options) { o.Mode = "burst" }, `Mode "burst"`},
		{"zero clients", func(o *Options) { o.Clients = 0 }, "Clients"},
		{"zero cells", func(o *Options) { o.Cells = 0 }, "Cells"},
		{"no budget", func(o *Options) { o.Sweeps = 0; o.Duration = 0 }, "Sweeps or Duration"},
	} {
		o := ok
		tc.mut(&o)
		err := o.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, o)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// TestRunStreamAgainstServe drives a tiny deterministic stream-mode run
// against an in-process hdlsd and checks the tallies line up: every sweep
// a 200, every cell a line, latency recorded per completed sweep.
func TestRunStreamAgainstServe(t *testing.T) {
	srv := serve.New(serve.Options{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	const clients, sweeps, cells = 2, 2, 3
	sum, err := Run(context.Background(), Options{
		Target:   ts.URL,
		Clients:  clients,
		Sweeps:   sweeps,
		Cells:    cells,
		Workload: "constant:n=256",
		Mode:     "stream",
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSweeps := clients * sweeps
	if sum.Sweeps != wantSweeps {
		t.Errorf("sweeps = %d, want %d", sum.Sweeps, wantSweeps)
	}
	if sum.Statuses["200"] != wantSweeps {
		t.Errorf("statuses = %v, want %d×200", sum.Statuses, wantSweeps)
	}
	if sum.Lines != wantSweeps*cells {
		t.Errorf("lines = %d, want %d", sum.Lines, wantSweeps*cells)
	}
	if sum.ErrorLines != 0 || sum.TransportErrors != 0 {
		t.Errorf("unexpected errors in %+v", sum)
	}
	if sum.Latency.Count != wantSweeps {
		t.Errorf("latency count = %d, want %d", sum.Latency.Count, wantSweeps)
	}
	if sum.Latency.P99 < sum.Latency.P50 || sum.Latency.Max < sum.Latency.P99 {
		t.Errorf("latency percentiles out of order: %+v", sum.Latency)
	}
}

// TestRunAsyncWait covers the async+wait path the soak target uses: jobs
// accepted with 202, polled to completion, results drained and counted.
func TestRunAsyncWait(t *testing.T) {
	srv := serve.New(serve.Options{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	sum, err := Run(context.Background(), Options{
		Target:   ts.URL,
		Clients:  1,
		Sweeps:   2,
		Cells:    2,
		Workload: "constant:n=256",
		Mode:     "async",
		Wait:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Statuses["202"] != 2 {
		t.Errorf("statuses = %v, want 2×202", sum.Statuses)
	}
	if len(sum.JobIDs) != 2 {
		t.Errorf("job ids = %v, want 2", sum.JobIDs)
	}
	if sum.Lines != 4 {
		t.Errorf("lines = %d, want 4", sum.Lines)
	}
	if sum.Latency.Count != 2 {
		t.Errorf("latency count = %d, want 2", sum.Latency.Count)
	}
}
