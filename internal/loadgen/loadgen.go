// Package loadgen generates concurrent sweep traffic against an hdlsd
// daemon or fleet coordinator and reports what it observed. It is the
// engine behind cmd/loadgen (the soak harness's load half, DESIGN.md §13)
// and the serving-path case runner in internal/checks (the perf gates,
// DESIGN.md §14): both need the same well-behaved client — distinct
// X-Client identities, bounded Retry-After honoring, 429/503 treated as
// observations rather than errors — and both consume the same Summary.
//
// The Summary's JSON field names are a frozen schema: shell harnesses
// (scripts/fleet_soak.sh) and the checks runner assert on them, and a
// golden test pins them against drift.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Options configures one load run. The zero value is not runnable: Target,
// Clients, Cells and a Mode are required; Validate names what is missing.
type Options struct {
	// Target is the daemon or coordinator base URL.
	Target string
	// Clients is the number of concurrent client identities (X-Client
	// "<ClientPrefix>-<i>").
	Clients int
	// Duration bounds the run when Sweeps is zero: each client submits
	// until it elapses.
	Duration time.Duration
	// Sweeps, when positive, fixes the per-client sweep count instead of
	// running for Duration — the deterministic mode the checks runner uses.
	Sweeps int
	// Cells is the cell count of every generated sweep.
	Cells int
	// Workload is the workload spec of every generated cell.
	Workload string
	// Mode selects the submission path: "stream" (POST /v1/sweep?stream=1,
	// consume the NDJSON inline) or "async" (202 + job id).
	Mode string
	// Timeout, when non-empty, is forwarded as ?timeout= on every sweep.
	Timeout string
	// Chaos, when non-empty, is sent as the X-Chaos header on every sweep.
	Chaos string
	// ClientPrefix is the X-Client identity prefix (default "loadgen").
	ClientPrefix string
	// Seed is the base seed; client i sweep k cell j derives a distinct
	// seed, so the target really simulates instead of replaying its cache.
	Seed int64
	// Wait, in async mode, polls each accepted job to completion and
	// fetches its results; the drain latency lands in Summary.Latency.
	Wait bool
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.ClientPrefix == "" {
		o.ClientPrefix = "loadgen"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// Validate reports the first configuration error, naming the field.
func (o Options) Validate() error {
	if o.Target == "" {
		return fmt.Errorf("loadgen: Target is required")
	}
	if o.Mode != "stream" && o.Mode != "async" {
		return fmt.Errorf("loadgen: unknown Mode %q (stream, async)", o.Mode)
	}
	if o.Clients <= 0 {
		return fmt.Errorf("loadgen: Clients must be positive, got %d", o.Clients)
	}
	if o.Cells <= 0 {
		return fmt.Errorf("loadgen: Cells must be positive, got %d", o.Cells)
	}
	if o.Sweeps <= 0 && o.Duration <= 0 {
		return fmt.Errorf("loadgen: either Sweeps or Duration must be positive")
	}
	return nil
}

// Latency summarizes the distribution of completed-sweep latencies in
// milliseconds: stream-mode sweeps measure submit → stream fully consumed;
// async -wait sweeps measure submit → job done → results fully drained.
// Shed (429/503) and transport-failed sweeps are excluded.
type Latency struct {
	// Count is how many completed sweeps the percentiles summarize.
	Count int `json:"count"`
	// P50 is the median latency in milliseconds.
	P50 float64 `json:"p50"`
	// P90 is the 90th-percentile latency in milliseconds.
	P90 float64 `json:"p90"`
	// P99 is the 99th-percentile latency in milliseconds.
	P99 float64 `json:"p99"`
	// Max is the slowest completed sweep in milliseconds.
	Max float64 `json:"max"`
}

// Summary is one run's observations. Field names are a frozen schema
// (TestSummarySchemaGolden): scripts and the checks runner unmarshal it.
type Summary struct {
	// Sweeps counts submission attempts, including shed and failed ones.
	Sweeps int `json:"sweeps"`
	// Statuses counts responses per HTTP status code (keys are the codes
	// in decimal, e.g. "200").
	Statuses map[string]int `json:"statuses"`
	// Lines counts NDJSON result lines consumed across all sweeps.
	Lines int `json:"lines"`
	// ErrorLines counts in-band per-cell error lines among Lines.
	ErrorLines int `json:"error_lines"`
	// TransportErrors counts submissions or reads that failed below HTTP
	// (connection refused, reset mid-stream — expected while a target
	// restarts under the soak harness).
	TransportErrors int `json:"transport_errors"`
	// RetryAfterSeen counts 429/503 responses whose Retry-After hint the
	// generator honored (bounded, so a long hint cannot stall the run).
	RetryAfterSeen int `json:"retry_after_seen"`
	// JobIDs lists accepted async job ids, sorted.
	JobIDs []string `json:"job_ids"`
	// ElapsedSeconds is the whole run's wall time.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Latency summarizes completed-sweep latency in milliseconds.
	Latency Latency `json:"latency_ms"`
}

// Run drives the configured load until every client finishes its sweep
// budget, Duration elapses, or ctx is canceled (clients stop between
// sweeps; the in-flight sweep is abandoned to its request context).
func Run(ctx context.Context, opt Options) (Summary, error) {
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return Summary{}, err
	}
	var t tally
	t.statuses = map[int]int{}
	start := time.Now()
	stopAt := start.Add(o.Duration)
	var wg sync.WaitGroup
	for i := 0; i < o.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client{
				opt:      o,
				id:       fmt.Sprintf("%s-%d", o.ClientPrefix, i),
				seedBase: o.Seed + int64(i)*1_000_000_000,
				tally:    &t,
			}
			for k := 0; ; k++ {
				if ctx.Err() != nil {
					return
				}
				if o.Sweeps > 0 {
					if k >= o.Sweeps {
						return
					}
				} else if time.Now().After(stopAt) {
					return
				}
				c.sweep(ctx, k)
			}
		}(i)
	}
	wg.Wait()

	t.mu.Lock()
	defer t.mu.Unlock()
	statuses := map[string]int{}
	for code, n := range t.statuses {
		statuses[strconv.Itoa(code)] = n
	}
	sort.Strings(t.jobIDs)
	return Summary{
		Sweeps:          t.sweeps,
		Statuses:        statuses,
		Lines:           t.lines,
		ErrorLines:      t.errorLines,
		TransportErrors: t.transportErrors,
		RetryAfterSeen:  t.retryAfterSeen,
		JobIDs:          t.jobIDs,
		ElapsedSeconds:  time.Since(start).Seconds(),
		Latency:         summarizeLatency(t.latencies),
	}, nil
}

// summarizeLatency reduces raw durations to the frozen percentile set.
func summarizeLatency(ds []time.Duration) Latency {
	if len(ds) == 0 {
		return Latency{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(q float64) float64 {
		idx := int(q*float64(len(ds))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ds) {
			idx = len(ds) - 1
		}
		return ms(ds[idx])
	}
	return Latency{
		Count: len(ds),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Max:   ms(ds[len(ds)-1]),
	}
}

// tally aggregates observations across all client goroutines.
type tally struct {
	mu              sync.Mutex
	sweeps          int
	statuses        map[int]int
	lines           int
	errorLines      int
	transportErrors int
	retryAfterSeen  int
	jobIDs          []string
	latencies       []time.Duration
}

// client is one concurrent submitter identity.
type client struct {
	opt      Options
	id       string
	seedBase int64
	tally    *tally
}

// sweep submits one generated sweep and records the outcome. Submission
// failures are observations, not fatal errors: the soak harness kills
// daemons under this load on purpose.
func (c *client) sweep(ctx context.Context, k int) {
	body := c.body(k)
	url := c.opt.Target + "/v1/sweep"
	if c.opt.Mode == "stream" {
		url += "?stream=1"
		if c.opt.Timeout != "" {
			url += "&timeout=" + c.opt.Timeout
		}
	} else if c.opt.Timeout != "" {
		url += "?timeout=" + c.opt.Timeout
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		// Only a malformed Target can fail request construction; surface it
		// as a transport observation so a run never panics mid-soak.
		c.note(func(t *tally) { t.transportErrors++ })
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", c.id)
	if c.opt.Chaos != "" {
		req.Header.Set("X-Chaos", c.opt.Chaos)
	}
	start := time.Now()
	resp, err := c.opt.Client.Do(req)
	c.note(func(t *tally) { t.sweeps++ })
	if err != nil {
		c.note(func(t *tally) { t.transportErrors++ })
		sleepCtx(ctx, 100*time.Millisecond) // the target may be mid-restart
		return
	}
	defer resp.Body.Close()
	c.note(func(t *tally) { t.statuses[resp.StatusCode]++ })
	switch {
	case resp.StatusCode == http.StatusOK && c.opt.Mode == "stream":
		if c.consume(resp.Body) {
			c.note(func(t *tally) { t.latencies = append(t.latencies, time.Since(start)) })
		}
	case resp.StatusCode == http.StatusAccepted && c.opt.Mode == "async":
		var acc struct {
			JobID string `json:"job_id"`
		}
		if json.NewDecoder(resp.Body).Decode(&acc) == nil && acc.JobID != "" {
			c.note(func(t *tally) { t.jobIDs = append(t.jobIDs, acc.JobID) })
			if c.opt.Wait && c.awaitJob(ctx, acc.JobID) {
				c.note(func(t *tally) { t.latencies = append(t.latencies, time.Since(start)) })
			}
		}
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		// Honor a bounded slice of the hint: enough to be a polite client,
		// capped so a long hint cannot stall the generator's run budget.
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			c.note(func(t *tally) { t.retryAfterSeen++ })
			sleepCtx(ctx, min(time.Duration(secs)*time.Second, 500*time.Millisecond))
		}
	default:
		io.Copy(io.Discard, resp.Body)
	}
}

// body generates the k-th sweep request for this client; every cell seed
// is distinct run-wide so the target really simulates under load instead
// of replaying its cache.
func (c *client) body(k int) []byte {
	inters := []string{"STATIC", "GSS", "TSS", "FAC2"}
	cells := make([]map[string]any, c.opt.Cells)
	for j := range cells {
		cells[j] = map[string]any{
			"nodes": 2, "workers_per_node": 4,
			"inter": inters[j%len(inters)], "intra": "STATIC", "approach": "MPI+MPI",
			"seed":     c.seedBase + int64(k)*int64(c.opt.Cells) + int64(j),
			"workload": c.opt.Workload,
		}
	}
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil { // plain scalars; cannot fail
		panic(fmt.Sprintf("loadgen: marshal sweep: %v", err))
	}
	return body
}

// consume counts the NDJSON lines of one sweep stream and reports whether
// the stream was read to completion.
func (c *client) consume(r io.Reader) bool {
	data, err := io.ReadAll(r)
	if err != nil {
		c.note(func(t *tally) { t.transportErrors++ })
		return false
	}
	lines := bytes.Count(data, []byte{'\n'})
	errs := bytes.Count(data, []byte(`"error":"`))
	c.note(func(t *tally) { t.lines += lines; t.errorLines += errs })
	return true
}

// awaitJob polls an async job to completion, then fetches and counts its
// results, reporting whether they were fully drained. Poll failures are
// transport observations — the daemon may be down between SIGKILL and
// restart.
func (c *client) awaitJob(ctx context.Context, id string) bool {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		resp, err := c.opt.Client.Get(c.opt.Target + "/v1/jobs/" + id)
		if err != nil {
			c.note(func(t *tally) { t.transportErrors++ })
			sleepCtx(ctx, 200*time.Millisecond)
			continue
		}
		var status struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err == nil && status.Status == "done" {
			results, err := c.opt.Client.Get(c.opt.Target + "/v1/jobs/" + id + "/results")
			if err != nil {
				c.note(func(t *tally) { t.transportErrors++ })
				return false
			}
			defer results.Body.Close()
			return c.consume(results.Body)
		}
		sleepCtx(ctx, 50*time.Millisecond)
	}
	return false
}

// note applies one mutation to the shared tally under its lock.
func (c *client) note(fn func(*tally)) {
	c.tally.mu.Lock()
	defer c.tally.mu.Unlock()
	fn(c.tally)
}

// sleepCtx sleeps for d or until ctx is canceled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
