package sim

// Mutex is a simulated FIFO mutex: contending processes are granted the lock
// in arrival order. It models a fair lock with zero intrinsic cost; callers
// add explicit Sleep costs around it when the protocol being modelled has
// them.
type Mutex struct {
	held    bool
	waiters WaitQueue
}

// Lock blocks p until the mutex is free and p is at the head of the queue.
func (m *Mutex) Lock(p *Proc) {
	for m.held {
		m.waiters.Wait(p)
	}
	m.held = true
}

// TryLock acquires the mutex if it is free, reporting whether it did.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases the mutex and wakes the next waiter, if any. Unlocking a
// free mutex panics.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: Unlock of unlocked Mutex")
	}
	m.held = false
	m.waiters.WakeOne()
}

// Held reports whether the mutex is currently held.
func (m *Mutex) Held() bool { return m.held }

// Server is a single FIFO service station: requests are serviced one at a
// time, each occupying the server for its service duration. It models
// serialization points such as a NIC, an RMA window's host port, or a memory
// controller. Waiting time under load emerges from the queue.
type Server struct {
	busyUntil Time
	busyTime  Time // cumulative busy (service) time, for utilization metrics
	served    int64
}

// Serve blocks p until the server has completed all earlier requests and
// then p's own request of the given service duration. It returns the time p
// spent waiting before service began.
func (s *Server) Serve(p *Proc, service Time) Time {
	e := p.eng
	start := e.now
	if s.busyUntil < e.now {
		s.busyUntil = e.now
	}
	begin := s.busyUntil
	s.busyUntil += service
	s.busyTime += service
	s.served++
	p.Sleep(s.busyUntil - e.now)
	return begin - start
}

// ServeAsync reserves service time on the server without blocking the
// caller, returning the virtual time at which the request completes. It
// models DMA-style offloaded work (e.g. an eager message landing in a remote
// mailbox while the sender continues).
func (s *Server) ServeAsync(now Time, service Time) Time {
	if s.busyUntil < now {
		s.busyUntil = now
	}
	s.busyUntil += service
	s.busyTime += service
	s.served++
	return s.busyUntil
}

// BusyTime reports the cumulative service time performed by the server.
func (s *Server) BusyTime() Time { return s.busyTime }

// Served reports the number of completed service requests.
func (s *Server) Served() int64 { return s.served }

// Semaphore is a counting semaphore with FIFO wakeup.
type Semaphore struct {
	count   int
	waiters WaitQueue
}

// NewSemaphore returns a semaphore holding n permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{count: n} }

// Acquire blocks p until a permit is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.waiters.Wait(p)
	}
	s.count--
}

// Release returns a permit and wakes one waiter if present.
func (s *Semaphore) Release() {
	s.count++
	s.waiters.WakeOne()
}

// Available reports the current number of permits.
func (s *Semaphore) Available() int { return s.count }
