package sim

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestInterruptAbortsRun verifies the external-interrupt contract: a run
// whose interrupt flag is set stops with ErrInterrupted, reaps its parked
// processes, and leaks no goroutines.
func TestInterruptAbortsRun(t *testing.T) {
	e := NewEngine(1)
	var flag atomic.Bool
	e.SetInterrupt(&flag)

	// A self-perpetuating event chain that would run forever, plus a parked
	// process that only Shutdown can reap.
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired == 2*interruptStride {
			flag.Store(true)
		}
		e.After(1, tick)
	}
	e.Schedule(0, tick)
	e.Spawn("parked-forever", func(p *Proc) { p.Park() })

	err := e.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Run = %v, want ErrInterrupted", err)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("%d live procs after interrupted Run", e.LiveProcs())
	}
	if fired < 2*interruptStride || fired > 3*interruptStride {
		t.Fatalf("fired %d events; interrupt should stop within one stride", fired)
	}
}

// TestInterruptUnsetIsHarmless locks down that installing a never-set flag
// does not change a run's outcome or timing.
func TestInterruptUnsetIsHarmless(t *testing.T) {
	run := func(flag *atomic.Bool) (Time, error) {
		e := NewEngine(7)
		e.SetInterrupt(flag)
		var end Time
		e.Spawn("worker", func(p *Proc) {
			for i := 0; i < 3*interruptStride; i++ {
				p.Sleep(0.5)
			}
			end = p.Now()
		})
		err := e.Run()
		return end, err
	}
	var flag atomic.Bool
	gotFlag, err1 := run(&flag)
	gotNil, err2 := run(nil)
	if err1 != nil || err2 != nil {
		t.Fatalf("runs failed: %v, %v", err1, err2)
	}
	if gotFlag != gotNil {
		t.Fatalf("flagged run ended at %v, plain run at %v", gotFlag, gotNil)
	}
}

// TestResetClearsInterrupt verifies that Reset detaches the previous run's
// flag so pooled engines never observe a stale cancellation.
func TestResetClearsInterrupt(t *testing.T) {
	e := NewEngine(1)
	var flag atomic.Bool
	flag.Store(true)
	e.SetInterrupt(&flag)
	e.Reset(2)

	ran := 0
	for i := 0; i < 2*interruptStride; i++ {
		e.Schedule(Time(i), func() { ran++ })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
	if ran != 2*interruptStride {
		t.Fatalf("ran %d events, want %d", ran, 2*interruptStride)
	}
}
