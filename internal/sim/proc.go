package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs only while the engine
// has handed it control, and that advances virtual time through the blocking
// primitives below. All primitives must be called from the process's own
// body function; calling them from outside the simulation is a programming
// error.
type Proc struct {
	eng     *Engine
	id      int
	name    string
	resume  chan struct{}
	done    bool
	parked  bool
	aborted bool
}

// procAborted unwinds a process goroutine during Engine.Shutdown.
type procAborted struct{}

// Spawn creates a process whose body starts executing at the current virtual
// time. The body runs cooperatively: it keeps control until it calls a
// blocking primitive or returns.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procAborted); !ok {
					// Re-panic on the engine side with context; the engine
					// goroutine is blocked in runProc waiting for our yield,
					// so panicking here crashes the program with a useful
					// trace, which is the desired behaviour for bugs.
					panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
				}
			}
			p.done = true
			p.parked = false
			e.live--
			e.yielded <- struct{}{}
		}()
		<-p.resume
		p.parked = false
		if p.aborted {
			panic(procAborted{})
		}
		body(p)
	}()
	p.parked = true
	e.Schedule(e.now, func() { e.runProc(p) })
	return p
}

// runProc transfers control from the engine to p until p yields or ends.
func (e *Engine) runProc(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-e.yielded
}

// yield transfers control back to the engine; the process stays parked until
// something calls unpark (via a scheduled event or a wait queue wake).
func (p *Proc) yield() {
	p.parked = true
	p.eng.yielded <- struct{}{}
	<-p.resume
	p.parked = false
	if p.aborted {
		panic(procAborted{})
	}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn index, unique within its engine.
func (p *Proc) ID() int { return p.id }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep advances the process's local view of time by d. Other processes run
// in the meantime. Negative or zero durations still yield, modelling a
// zero-cost reschedule point.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.Schedule(e.now+d, func() { e.runProc(p) })
	p.yield()
}

// Park blocks the process until some other activity calls Unpark. It is the
// low-level primitive beneath WaitQueue; most code should prefer WaitQueue.
func (p *Proc) Park() { p.yield() }

// Unpark schedules a parked process to resume at the current virtual time.
// Calling Unpark on a process that is not parked is a bug and panics.
func (p *Proc) Unpark() {
	if p.done {
		panic(fmt.Sprintf("sim: Unpark of finished process %q", p.name))
	}
	e := p.eng
	e.Schedule(e.now, func() { e.runProc(p) })
}

// WaitQueue is a FIFO list of parked processes. Wake order equals wait
// order, which keeps simulations deterministic.
type WaitQueue struct {
	waiters []*Proc
}

// Len reports the number of parked processes.
func (w *WaitQueue) Len() int { return len(w.waiters) }

// Wait parks p on the queue until WakeOne or WakeAll releases it.
func (w *WaitQueue) Wait(p *Proc) {
	w.waiters = append(w.waiters, p)
	p.yield()
}

// WakeOne releases the longest-waiting process, if any, and reports whether
// a process was woken.
func (w *WaitQueue) WakeOne() bool {
	if len(w.waiters) == 0 {
		return false
	}
	p := w.waiters[0]
	copy(w.waiters, w.waiters[1:])
	w.waiters = w.waiters[:len(w.waiters)-1]
	p.Unpark()
	return true
}

// WakeAll releases every parked process in FIFO order and reports how many
// were woken.
func (w *WaitQueue) WakeAll() int {
	n := len(w.waiters)
	for _, p := range w.waiters {
		p.Unpark()
	}
	w.waiters = w.waiters[:0]
	return n
}
