package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs only while it holds the
// engine's control baton, and that advances virtual time through the
// blocking primitives below. All primitives must be called from the
// process's own body function; calling them from outside the simulation is
// a programming error.
type Proc struct {
	eng  *Engine
	id   int
	name string
	// gate is the process's baton slot: a one-slot channel so that handing
	// control to a process never blocks the giver, and a process resuming
	// itself (back-to-back events) costs no goroutine switch at all.
	gate    chan struct{}
	done    bool
	parked  bool
	aborted bool
}

// procAborted unwinds a process goroutine during Engine.Shutdown.
type procAborted struct{}

// Spawn creates a process whose body starts executing at the current virtual
// time. The body runs cooperatively: it keeps control until it calls a
// blocking primitive or returns.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		eng:  e,
		id:   len(e.procs),
		name: name,
		gate: make(chan struct{}, 1),
	}
	e.procs = append(e.procs, p)
	e.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procAborted); !ok {
					// Re-panic with context; an unrecovered panic on this
					// goroutine crashes the program with a useful trace,
					// which is the desired behaviour for bugs.
					panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
				}
			}
			p.done = true
			p.parked = false
			e.live--
			// Pass the baton on: normally to the next event's owner, during
			// Shutdown straight back to the shutdown loop.
			if e.shutdown {
				e.main <- struct{}{}
			} else {
				e.dispatch()
			}
		}()
		<-p.gate
		p.parked = false
		if p.aborted {
			panic(procAborted{})
		}
		body(p)
	}()
	p.parked = true
	e.scheduleResume(p, e.now)
	return p
}

// yield hands the baton to the engine's next event; the process stays parked
// until something schedules its resumption (a sleep expiry, an Unpark, or a
// wait-queue wake).
func (p *Proc) yield() {
	p.parked = true
	p.eng.dispatch()
	<-p.gate
	p.parked = false
	if p.aborted {
		panic(procAborted{})
	}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the process's spawn index, unique within its engine.
func (p *Proc) ID() int { return p.id }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep advances the process's local view of time by d. Other processes run
// in the meantime. Negative or zero durations still yield, modelling a
// zero-cost reschedule point.
//
// Fast path: when the wake-up would be the next event anyway — nothing else
// fires strictly before it in (time, born, seq) order — the engine advances
// the clock in place and control never leaves the process. The observable
// event order is exactly that of the literal schedule-and-dispatch cycle
// (the skipped resume would have been popped immediately); only the host
// cost of a heap round-trip and a baton hand-off disappears.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	if e.sleepInPlace(e.now+d, e.now) {
		return
	}
	e.scheduleResume(p, e.now+d)
	p.yield()
}

// Park blocks the process until some other activity calls Unpark. It is the
// low-level primitive beneath WaitQueue; most code should prefer WaitQueue.
func (p *Proc) Park() { p.yield() }

// Unpark schedules a parked process to resume at the current virtual time.
// Calling Unpark on a process that is not parked is a bug and panics.
func (p *Proc) Unpark() {
	if p.done {
		panic(fmt.Sprintf("sim: Unpark of finished process %q", p.name))
	}
	e := p.eng
	e.scheduleResume(p, e.now)
}

// UnparkAt schedules a parked process to resume at absolute virtual time t
// (clamped to now). It is the timed variant of Unpark, used by runtime
// models that compute a wake-up time arithmetically instead of sleeping the
// process through it.
func (p *Proc) UnparkAt(t Time) {
	if p.done {
		panic(fmt.Sprintf("sim: UnparkAt of finished process %q", p.name))
	}
	p.eng.scheduleResume(p, t)
}

// UnparkAsOf schedules a parked process to resume at absolute virtual time
// t in the firing position of an event scheduled at virtual time born — the
// resume analogue of Engine.ScheduleAsOf, used when a coalesced replay must
// hand control back to a process exactly where its literal wake-up event
// would have fired.
func (p *Proc) UnparkAsOf(t, born Time) {
	if p.done {
		panic(fmt.Sprintf("sim: UnparkAsOf of finished process %q", p.name))
	}
	e := p.eng
	if t < e.now {
		t = e.now
	}
	e.push(event{t: t, seq: e.nextSeq(), born: born, pay: e.alloc(p, nil)})
}

// WaitQueue is a FIFO list of parked processes. Wake order equals wait
// order, which keeps simulations deterministic. The zero value is ready to
// use; the queue is a ring so WakeOne is O(1).
type WaitQueue struct {
	waiters []*Proc
	head    int
	n       int
}

// Len reports the number of parked processes.
func (w *WaitQueue) Len() int { return w.n }

// Wait parks p on the queue until WakeOne or WakeAll releases it.
func (w *WaitQueue) Wait(p *Proc) {
	if w.n == len(w.waiters) {
		w.grow()
	}
	w.waiters[(w.head+w.n)%len(w.waiters)] = p
	w.n++
	p.yield()
}

// grow doubles the ring, re-linearizing the live window.
func (w *WaitQueue) grow() {
	size := 2 * len(w.waiters)
	if size < 4 {
		size = 4
	}
	next := make([]*Proc, size)
	for i := 0; i < w.n; i++ {
		next[i] = w.waiters[(w.head+i)%len(w.waiters)]
	}
	w.waiters = next
	w.head = 0
}

// WakeOne releases the longest-waiting process, if any, and reports whether
// a process was woken.
func (w *WaitQueue) WakeOne() bool {
	if w.n == 0 {
		return false
	}
	p := w.waiters[w.head]
	w.waiters[w.head] = nil
	w.head = (w.head + 1) % len(w.waiters)
	w.n--
	p.Unpark()
	return true
}

// WakeAll releases every parked process in FIFO order and reports how many
// were woken.
func (w *WaitQueue) WakeAll() int {
	woken := w.n
	for w.n > 0 {
		p := w.waiters[w.head]
		w.waiters[w.head] = nil
		w.head = (w.head + 1) % len(w.waiters)
		w.n--
		p.Unpark()
	}
	w.head = 0
	return woken
}
