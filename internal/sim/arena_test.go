package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEngineResetMatchesFresh verifies the arena-pooling contract: a Reset
// engine is observationally identical to a fresh one — same clock, same RNG
// stream, same event order — even after a run that exercised the queue's
// layouts and the payload free-list.
func TestEngineResetMatchesFresh(t *testing.T) {
	scenario := func(e *Engine) []Time {
		var fired []Time
		for i := 0; i < 3; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 4; j++ {
					p.Sleep(Time(i+1) * Microsecond * Time(j+1))
					fired = append(fired, p.Now()+Time(e.Rand().Float64())*Nanosecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	fresh := scenario(NewEngine(42))

	e := NewEngine(7)
	scenario(e) // dirty the engine with a different seed's run
	e.Reset(42)
	if e.Now() != 0 || e.LiveProcs() != 0 || e.ProcsSpawned() != 0 {
		t.Fatalf("Reset left state: now=%v live=%d spawned=%d", e.Now(), e.LiveProcs(), e.ProcsSpawned())
	}
	again := scenario(e)
	if len(fresh) != len(again) {
		t.Fatalf("event counts differ: %d vs %d", len(fresh), len(again))
	}
	for i := range fresh {
		if fresh[i] != again[i] {
			t.Fatalf("event %d differs: fresh %v, reset %v", i, fresh[i], again[i])
		}
	}
}

// TestEngineResetRefusesDirtyEngine pins the safety contract: an engine
// with pending events or live processes must not be pooled.
func TestEngineResetRefusesDirtyEngine(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(1*Microsecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Reset accepted an engine with pending events")
		}
	}()
	e.Reset(2)
}

// TestQueueOrderAcrossLayouts drives the event queue through every layout —
// front buffer, sorted gap buffer, heapified spill, and the low-water
// re-sort back to the array — and asserts the firing order is the exact
// (t, born, seq) total order throughout.
func TestQueueOrderAcrossLayouts(t *testing.T) {
	e := NewEngine(1)
	rng := rand.New(rand.NewSource(9))
	const n = 4000 // far beyond arrayModeMax: forces heapify and the drain re-sort
	type key struct {
		t   Time
		seq int
	}
	want := make([]key, 0, n)
	got := make([]key, 0, n)
	for i := 0; i < n; i++ {
		// Clustered times with deliberate duplicates to exercise tie-breaks.
		at := Time(rng.Intn(500)) * Microsecond
		k := key{t: at, seq: i}
		want = append(want, k)
		e.Schedule(at, func() { got = append(got, k) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// All events were scheduled at now=0, so the expected order is (t, then
	// scheduling order) — a stable sort by time.
	sort.SliceStable(want, func(i, j int) bool { return want[i].t < want[j].t })
	if len(got) != n {
		t.Fatalf("fired %d of %d events", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired out of order: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
