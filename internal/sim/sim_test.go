package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestScheduleTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(10, func() {
		e.Schedule(3, func() { // in the past; must fire at t=10
			if e.Now() != 10 {
				t.Errorf("past event fired at %v, want 10", e.Now())
			}
			fired = true
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine(1)
	var at []Time
	e.Spawn("a", func(p *Proc) {
		at = append(at, p.Now())
		p.Sleep(1.5)
		at = append(at, p.Now())
		p.Sleep(0.25)
		at = append(at, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 1.5, 1.75}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("times = %v, want %v", at, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine(7)
		var log []string
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("p%d", i)
			d := Time(i+1) * 0.1
			e.Spawn(name, func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(d)
					log = append(log, fmt.Sprintf("%s@%.2f", p.Name(), float64(p.Now())))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 12 {
		t.Fatalf("log lengths %d, %d; want 12", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestZeroAndNegativeSleepYields(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
		p.Sleep(-5)
		order = append(order, "b2")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	var sleeper *Proc
	sleeper = e.Spawn("sleeper", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(2)
		sleeper.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 2 {
		t.Fatalf("sleeper woke at %v, want 2", woke)
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var order []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		delay := Time(i) * 0.1
		e.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			q.Wait(p)
			order = append(order, p.Name())
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(1)
		for q.Len() > 0 {
			q.WakeOne()
			p.Sleep(0.01)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w0", "w1", "w2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestWaitQueueWakeAll(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(1)
		if n := q.WakeAll(); n != 5 {
			t.Errorf("WakeAll woke %d, want 5", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestMutexMutualExclusionAndFIFO(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	inside := 0
	maxInside := 0
	var order []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("p%d", i)
		delay := Time(i) * 0.01
		e.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			m.Lock(p)
			order = append(order, p.Name())
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(1) // hold across virtual time
			inside--
			m.Unlock()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	want := []string{"p0", "p1", "p2", "p3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	e.Spawn("a", func(p *Proc) {
		if !m.TryLock() {
			t.Error("first TryLock failed")
		}
		if m.TryLock() {
			t.Error("second TryLock succeeded while held")
		}
		m.Unlock()
		if !m.TryLock() {
			t.Error("TryLock after Unlock failed")
		}
		m.Unlock()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unheld mutex did not panic")
		}
	}()
	var m Mutex
	m.Unlock()
}

func TestServerSerializesRequests(t *testing.T) {
	e := NewEngine(1)
	var s Server
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			s.Serve(p, 2)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{2, 4, 6}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times = %v, want %v", finish, want)
		}
	}
	if s.BusyTime() != 6 {
		t.Fatalf("BusyTime = %v, want 6", s.BusyTime())
	}
	if s.Served() != 3 {
		t.Fatalf("Served = %d, want 3", s.Served())
	}
}

func TestServerIdleGapDoesNotAccumulate(t *testing.T) {
	e := NewEngine(1)
	var s Server
	var second Time
	e.Spawn("a", func(p *Proc) {
		s.Serve(p, 1) // finishes at t=1
		p.Sleep(9)    // server idle 1..10
		s.Serve(p, 1) // must finish at 11, not 2+...
		second = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 11 {
		t.Fatalf("second completion at %v, want 11", second)
	}
}

func TestServerReportsWaitTime(t *testing.T) {
	e := NewEngine(1)
	var s Server
	var waits []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			w := s.Serve(p, 5)
			waits = append(waits, w)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 5, 10}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("waits = %v, want %v", waits, want)
		}
	}
}

func TestServeAsync(t *testing.T) {
	var s Server
	if got := s.ServeAsync(10, 2); got != 12 {
		t.Fatalf("first async completion = %v, want 12", got)
	}
	if got := s.ServeAsync(10, 2); got != 14 {
		t.Fatalf("queued async completion = %v, want 14", got)
	}
	if got := s.ServeAsync(100, 1); got != 101 {
		t.Fatalf("idle-gap async completion = %v, want 101", got)
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine(1)
	sem := NewSemaphore(2)
	inside, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(1)
			inside--
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if sem.Available() != 2 {
		t.Fatalf("final permits = %d, want 2", sem.Available())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("stuck", func(p *Proc) {
		p.Park() // nobody will Unpark
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run error = %v, want *DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("Blocked = %v, want [stuck]", de.Blocked)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after shutdown = %d, want 0", e.LiveProcs())
	}
}

func TestShutdownReleasesNestedWaiters(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	e.Spawn("holder", func(p *Proc) {
		m.Lock(p)
		p.Park() // hold forever
	})
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("waiter%d", i), func(p *Proc) {
			p.Sleep(1)
			m.Lock(p)
		})
	}
	err := e.Run()
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("Run error = %v, want deadlock", err)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0 after shutdown", e.LiveProcs())
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine(1)
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(3)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(1)
			childAt = c.Now()
		})
		p.Sleep(10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 4 {
		t.Fatalf("child finished at %v, want 4", childAt)
	}
}

func TestEngineRandDeterminism(t *testing.T) {
	draw := func(seed int64) []float64 {
		e := NewEngine(seed)
		out := make([]float64, 5)
		for i := range out {
			out[i] = e.Rand().Float64()
		}
		return out
	}
	a, b := draw(42), draw(42)
	c := draw(43)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical sequences")
	}
}

// Property: for any set of random sleep programs, each process observes
// non-decreasing time, and the engine clock ends at the max finish time.
func TestQuickVirtualTimeMonotonic(t *testing.T) {
	f := func(seed int64, nProcsRaw uint8) bool {
		nProcs := int(nProcsRaw%8) + 1
		e := NewEngine(seed)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		var maxEnd Time
		ends := make([]Time, nProcs)
		for i := 0; i < nProcs; i++ {
			i := i
			steps := rng.Intn(20) + 1
			durs := make([]Time, steps)
			for j := range durs {
				durs[j] = Time(rng.Float64())
			}
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				prev := p.Now()
				for _, d := range durs {
					p.Sleep(d)
					if p.Now() < prev {
						ok = false
					}
					prev = p.Now()
				}
				ends[i] = p.Now()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for _, end := range ends {
			if end > maxEnd {
				maxEnd = end
			}
		}
		return ok && e.Now() == maxEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Server's total busy time equals the sum of service demands,
// and completions are spaced at least a service apart.
func TestQuickServerConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		e := NewEngine(seed)
		rng := rand.New(rand.NewSource(seed))
		var s Server
		var total Time
		demands := make([]Time, n)
		for i := range demands {
			demands[i] = Time(rng.Float64() + 0.01)
			total += demands[i]
		}
		var sumServed Time
		for i := 0; i < n; i++ {
			d := demands[i]
			arrive := Time(rng.Float64() * 2)
			e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
				p.Sleep(arrive)
				s.Serve(p, d)
				sumServed += d
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		const eps = 1e-12
		return absT(s.BusyTime()-total) < eps && absT(sumServed-total) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func absT(t Time) Time {
	if t < 0 {
		return -t
	}
	return t
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1e-6)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngineManyProcs(b *testing.B) {
	e := NewEngine(1)
	const procs = 256
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < per; k++ {
				p.Sleep(1e-6)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
