package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestSteadyStateSleepAllocatesNothing is the allocation regression gate for
// the kernel hot path: once an engine and its processes exist, Sleep (and
// the resume events beneath it) must not allocate. The budget covers only
// fixed setup (engine, proc, goroutine, heap growth), so it stays constant
// while the sleep count scales.
func TestSteadyStateSleepAllocatesNothing(t *testing.T) {
	const sleeps = 100_000
	allocs := testing.AllocsPerRun(3, func() {
		e := NewEngine(1)
		for i := 0; i < 4; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < sleeps/4; k++ {
					p.Sleep(Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Error(err)
		}
	})
	// ~40 fixed allocations observed; anything growing with the sleep count
	// would show up as thousands.
	if allocs > 200 {
		t.Fatalf("steady-state run allocated %.0f times for %d sleeps; the resume path must be allocation-free", allocs, sleeps)
	}
}

// TestEqualTimestampFIFOAcrossEventKinds locks in the seq tie-break across
// the two event representations (specialized resume vs generic callback):
// events scheduled for the same instant fire strictly in schedule order.
func TestEqualTimestampFIFOAcrossEventKinds(t *testing.T) {
	e := NewEngine(1)
	var order []string
	var a, b *Proc
	a = e.Spawn("a", func(p *Proc) {
		p.Park()
		order = append(order, "resume-a")
	})
	b = e.Spawn("b", func(p *Proc) {
		p.Park()
		order = append(order, "resume-b")
	})
	e.Schedule(2, func() {
		// All four at t=2, interleaving callback and resume events.
		e.Schedule(2, func() { order = append(order, "fn-1") })
		a.Unpark()
		e.Schedule(2, func() { order = append(order, "fn-2") })
		b.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"fn-1", "resume-a", "fn-2", "resume-b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tie-break order = %v, want %v", order, want)
		}
	}
}

// TestHeapStressOrdering drives the 4-ary heap through thousands of
// interleaved pushes and pops with many duplicate timestamps and checks the
// global (t, seq) order.
func TestHeapStressOrdering(t *testing.T) {
	e := NewEngine(99)
	const n = 5000
	var fired []int
	seq := 0
	// Schedule from inside callbacks too, so the heap churns mid-run.
	for i := 0; i < n; i++ {
		i := i
		tm := Time(e.rng.Intn(50)) // heavy timestamp collisions
		e.Schedule(tm, func() {
			fired = append(fired, i)
			if i%7 == 0 {
				j := n + seq
				seq++
				e.After(Time(e.rng.Intn(3)), func() { fired = append(fired, j) })
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n+seq {
		t.Fatalf("fired %d events, want %d", len(fired), n+seq)
	}
	// The first n scheduled callbacks share seq order within equal times;
	// verify no pair of the originals with the same timestamp inverted.
	// (Original i was scheduled with seq i+1, so for equal t, order is by i.)
	// We can't reconstruct t here, so assert the stronger engine-level
	// property indirectly: time never went backwards during Run, which pop
	// ordering guarantees; a heap bug would have surfaced as a misfire above
	// or in TestEqualTimestampFIFOAcrossEventKinds.
}

// TestShutdownAfterDeadlockLeaksNoGoroutines verifies that a deadlocked
// simulation's Shutdown reaps every parked process goroutine.
func TestShutdownAfterDeadlockLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		e := NewEngine(1)
		var q WaitQueue
		for i := 0; i < 32; i++ {
			e.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) {
				q.Wait(p) // nobody wakes the queue
			})
		}
		err := e.Run()
		if _, ok := err.(*DeadlockError); !ok {
			t.Fatalf("Run error = %v, want deadlock", err)
		}
		if e.LiveProcs() != 0 {
			t.Fatalf("LiveProcs = %d after shutdown", e.LiveProcs())
		}
	}
	// Give exited goroutines a moment to be accounted.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+5 {
		t.Fatalf("goroutines grew %d -> %d across 10 deadlocked runs", before, after)
	}
}

// TestWaitQueueWakeOrderUnderChurn exercises the ring buffer through many
// grow/wrap cycles and checks strict FIFO wake order.
func TestWaitQueueWakeOrderUnderChurn(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var woke []int
	const workers = 20
	for i := 0; i < workers; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for round := 0; round < 5; round++ {
				// Stagger arrivals so the ring head wraps repeatedly.
				p.Sleep(Time(i+1+round*workers) * Microsecond)
				q.Wait(p)
				woke = append(woke, round*workers+i)
			}
		})
	}
	e.Spawn("waker", func(p *Proc) {
		for total := 0; total < workers*5; {
			p.Sleep(200 * Microsecond)
			for q.Len() > 0 {
				q.WakeOne()
				total++
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != workers*5 {
		t.Fatalf("woke %d, want %d", len(woke), workers*5)
	}
	// Within each batch the wake order equals arrival order; arrivals are
	// strictly staggered by the sleep pattern, so the full sequence must be
	// sorted in arrival order per round: 0..19, 20..39, ...
	for i, v := range woke {
		if v != i {
			t.Fatalf("wake order broken at %d: got %v", i, woke[:i+1])
		}
	}
}

// TestReentrantRunPanics pins the guard against driving an engine that is
// already running.
func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine(1)
	panicked := false
	e.Schedule(1, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		_ = e.Run() // re-entrant: must panic, not recurse
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("re-entrant Run did not panic")
	}
}

// TestUnparkAt verifies the timed resume primitive, including past-time
// clamping.
func TestUnparkAt(t *testing.T) {
	e := NewEngine(1)
	var woke, woke2 Time
	s1 := e.Spawn("s1", func(p *Proc) { p.Park(); woke = p.Now() })
	s2 := e.Spawn("s2", func(p *Proc) { p.Park(); woke2 = p.Now() })
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(5)
		s1.UnparkAt(9) // future: exact
		s2.UnparkAt(1) // past: clamps to now
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 9 {
		t.Fatalf("UnparkAt woke at %v, want 9", woke)
	}
	if woke2 != 5 {
		t.Fatalf("past UnparkAt woke at %v, want clamp to 5", woke2)
	}
}
