// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel. Simulated processes are goroutines that run one at a
// time under the control of an Engine; they advance virtual time by calling
// blocking primitives such as (*Proc).Sleep or by parking on wait queues.
//
// The kernel guarantees determinism: with the same program and seed, every
// run produces the same event order and the same virtual timestamps. This is
// the substrate on which the MPI and OpenMP runtime models are built.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Time is virtual time in seconds.
type Time float64

// Common durations, for readability at call sites.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// event is a scheduled callback. Events with equal time fire in schedule
// order (seq), which makes runs reproducible.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the event queue. All simulated activity
// is single-threaded from the host's point of view: exactly one process (or
// the engine itself) runs at any instant, so simulated processes may freely
// share Go memory without host-level synchronization.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	yielded chan struct{}
	procs   []*Proc
	live    int
	rng     *rand.Rand
	running bool
}

// NewEngine returns an engine with its virtual clock at zero and a
// deterministic random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		yielded: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. It must only be
// used from simulated processes or event callbacks.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule arranges for fn to run at absolute virtual time t. Times in the
// past are clamped to now.
func (e *Engine) Schedule(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// DeadlockError reports that the simulation stopped with live processes but
// no pending events: every remaining process is parked forever.
type DeadlockError struct {
	Now     Time
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.9f: %d process(es) parked forever: %v",
		float64(d.Now), len(d.Blocked), d.Blocked)
}

// Run drives the simulation until the event queue drains. It returns a
// *DeadlockError if processes remain parked with no event that could wake
// them; otherwise nil. Run may be called once per engine.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Engine.Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.t > e.now {
			e.now = ev.t
		}
		ev.fn()
	}
	if e.live > 0 {
		d := &DeadlockError{Now: e.now}
		for _, p := range e.procs {
			if !p.done {
				d.Blocked = append(d.Blocked, p.name)
			}
		}
		sort.Strings(d.Blocked)
		e.Shutdown()
		return d
	}
	return nil
}

// Shutdown force-terminates every parked process so that no goroutines leak
// after a deadlocked or abandoned simulation. It is safe to call after Run.
func (e *Engine) Shutdown() {
	for _, p := range e.procs {
		if p.done || !p.parked {
			continue
		}
		p.aborted = true
		p.resume <- struct{}{}
		<-e.yielded
	}
}

// LiveProcs reports the number of processes that have been spawned but have
// not yet finished.
func (e *Engine) LiveProcs() int { return e.live }
