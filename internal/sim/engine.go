// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel. Simulated processes are goroutines that run one at a
// time under the control of an Engine; they advance virtual time by calling
// blocking primitives such as (*Proc).Sleep or by parking on wait queues.
//
// The kernel guarantees determinism: with the same program and seed, every
// run produces the same event order and the same virtual timestamps. This is
// the substrate on which the MPI and OpenMP runtime models are built.
//
// The hot path is engineered for throughput (see DESIGN.md §2): the event
// queue is a value-typed 4-ary min-heap with no interface boxing, the
// dominant "resume this process" event is a specialized struct field rather
// than a closure (Sleep/Unpark/Spawn allocate nothing in steady state), and
// control is handed directly from one process goroutine to the next instead
// of bouncing through a central scheduler goroutine, halving the host
// context switches per simulated event.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// ErrInterrupted reports that a run was aborted by an external interrupt
// flag (SetInterrupt) before the event queue drained. The engine's state is
// undefined afterwards — parked processes have been reaped by Shutdown, but
// events may remain queued — so an interrupted engine must be abandoned,
// never Reset.
var ErrInterrupted = errors.New("sim: run interrupted")

// Time is virtual time in seconds.
type Time float64

// Common durations, for readability at call sites.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// event is a scheduled occurrence. born records the virtual time the event
// was scheduled; events fire in (time, born, seq) order. Because scheduling
// always happens at the current instant, seq order refines born order and
// the ordering is exactly "equal-time events fire in schedule order" — the
// property that makes runs reproducible. Carrying born explicitly lets
// runtime models that replay coalesced activity late (see ScheduleAsOf)
// re-insert events at the position they would have occupied. The common
// case — resume a parked process — is encoded by a non-nil p and needs no
// closure; fn is only set for generic callbacks.
type event struct {
	t    Time
	born Time
	// seq is 32-bit on purpose: it only breaks ties between events of equal
	// (t, born), so its absolute value never matters, and the 24-byte entry
	// (vs 32 with a uint64) cuts the memmove volume of the sorted-array
	// queue layout by a quarter. nextSeq guards against wrap-around.
	seq uint32
	// pay indexes the engine's payload table. Keeping the heap entries
	// pointer-free makes every shift a barrier-less 24-byte copy, which is
	// most of what push/pop cost on deep queues.
	pay int32
}

// payload carries an event's action: resume p, or call fn.
type payload struct {
	p  *Proc
	fn func()
}

// eventLess orders events by (time, scheduling time, schedule sequence).
func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.born != b.born {
		return a.born < b.born
	}
	return a.seq < b.seq
}

// Engine owns the virtual clock and the event queue. All simulated activity
// is single-threaded from the host's point of view: a single control baton
// is passed between process goroutines (and the Run caller), so exactly one
// process runs at any instant and simulated processes may freely share Go
// memory without host-level synchronization.
type Engine struct {
	now Time
	seq uint32
	// seqSrc, when non-nil, points at the sequence counter of the engine
	// group this engine is merged into (see ShareSeq).
	seqSrc *uint32
	// pushes counts queue insertions. Merged drive loops compare it against
	// a cached value to skip re-reading the head key of an engine whose
	// queue nobody touched (see PushStamp).
	pushes uint32
	// heap holds the queued events in one of two layouts: while at most
	// arrayModeMax entries (arrayMode), a descending-sorted gap buffer —
	// the live window is heap[lo:], pops take the last element with zero
	// comparisons, and inserts binary-search the window and shift whichever
	// side is shorter (the slack below lo makes a far-future insert, which
	// lands at the front, an O(shift of the few events beyond it) move
	// instead of a whole-array memmove). This beats heap sifting at the
	// queue sizes cells actually reach — one pending event per simulated
	// process, so hundreds of entries on 16-node machines. If the queue
	// grows past arrayModeMax it is heapified (4-ary min-heap over heap[0:])
	// and converts back once it drains to arrayModeLowWater. Pop order is
	// the total order (t, born, seq) either way.
	heap      []event
	lo        int // array mode: first live entry of the gap buffer
	arrayMode bool
	// nextEv, when nextSet, is the queue's minimum, buffered outside the
	// heap (see push).
	nextEv  event
	nextSet bool
	// pays holds event payloads, indexed by event.pay; free is the slot
	// free-list.
	pays []payload
	free []int32

	// main is the Run caller's wake-up gate: the baton returns here when the
	// event queue drains (and during Shutdown hand-back).
	main chan struct{}

	procs    []*Proc
	live     int
	rng      *rand.Rand
	running  bool
	shutdown bool // finishing procs hand the baton to main, not to dispatch

	// curBorn is the scheduling time of the event currently being executed
	// (see EventScheduledAt).
	curBorn Time

	// absorbDepth is the current nesting depth of inline event absorption
	// (see AbsorbAsOf); absorbOff suppresses absorption entirely (merged
	// engine groups, literal A/B runs).
	absorbDepth int
	absorbOff   bool

	// interrupt, when non-nil, is polled every interruptStride events; once
	// it reads true the run aborts with ErrInterrupted. The flag is owned by
	// the caller (typically set from another goroutine on request
	// cancellation) and is the only cross-goroutine communication the engine
	// ever performs; non-interrupted runs are unaffected because the flag is
	// only read, never written, on the simulation path.
	interrupt   *atomic.Bool
	intCount    int
	interrupted bool
}

// interruptStride is how many events fire between interrupt-flag polls: rare
// enough that the atomic load vanishes from profiles, frequent enough that a
// canceled cell stops within microseconds of wall-clock work.
const interruptStride = 512

// SetInterrupt installs (or, with nil, removes) the run's interrupt flag.
// It must be called while the engine is idle, before Run.
func (e *Engine) SetInterrupt(flag *atomic.Bool) {
	e.interrupt = flag
	e.intCount = 0
}

// NewEngine returns an engine with its virtual clock at zero and a
// deterministic random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		main:      make(chan struct{}, 1),
		rng:       rand.New(rand.NewSource(seed)),
		arrayMode: true,
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// nextSeq returns the next event sequence number. seq is 32-bit (see event);
// a single run issuing more than 4.29 billion events would wrap it and
// corrupt same-instant tie-breaks, so wrap-around panics instead. Engines
// driven as a merged group (ShareSeq) draw from the group leader's counter
// so sequence numbers order events across all member engines exactly as a
// single shared engine would have.
func (e *Engine) nextSeq() uint32 {
	c := &e.seq
	if e.seqSrc != nil {
		c = e.seqSrc
	}
	*c++
	if *c == 0 {
		panic("sim: event sequence counter overflow")
	}
	return *c
}

// ShareSeq makes e draw event sequence numbers from src's counter instead
// of its own. Merged drive loops (mpi.World.LaunchLanes) use it so that a
// (t, born, seq) comparison across member engines reproduces the exact
// firing order one shared engine would have used: scheduling order — which
// seq records — is then a property of the group, not the member. Reset
// reverts e to its own counter.
func (e *Engine) ShareSeq(src *Engine) { e.seqSrc = &src.seq }

// PushStamp reports a counter of queue insertions into e. A merged drive
// loop caches it alongside the head key: while the stamp is unchanged and
// the engine has not been stepped, the cached key is still current.
func (e *Engine) PushStamp() uint32 { return e.pushes }

// GroupSeq reports the current value of the engine's sequence counter —
// the group leader's when ShareSeq is in effect. Because every schedule
// call on any group member advances it by exactly one, a merged drive loop
// stepping a single engine can detect cross-engine scheduling in O(1):
// the step pushed onto another member iff the group counter advanced more
// than the stepped engine's own PushStamp.
func (e *Engine) GroupSeq() uint32 {
	if e.seqSrc != nil {
		return *e.seqSrc
	}
	return e.seq
}

// Rand exposes the engine's deterministic random source. It must only be
// used from simulated processes or event callbacks.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc stores a payload and returns its slot index.
func (e *Engine) alloc(p *Proc, fn func()) int32 {
	if n := len(e.free); n > 0 {
		i := e.free[n-1]
		e.free = e.free[:n-1]
		e.pays[i] = payload{p: p, fn: fn}
		return i
	}
	e.pays = append(e.pays, payload{p: p, fn: fn})
	return int32(len(e.pays) - 1)
}

// push inserts an event into the queue. The single-slot front buffer
// (nextEv) catches the dominant pattern — an event scheduled to fire before
// everything already queued, usually a continuation at or just after the
// current instant — and makes its round-trip O(1): no sift on push, no sift
// on pop. Ordering is decided by the same (t, born, seq) comparator either
// way, so the firing sequence is untouched.
func (e *Engine) push(ev event) {
	e.pushes++
	if e.nextSet {
		if eventLess(&ev, &e.nextEv) {
			e.pushHeap(e.nextEv)
			e.nextEv = ev
			return
		}
		e.pushHeap(ev)
		return
	}
	if len(e.heap) == e.lo || eventLess(&ev, e.peekMin()) {
		e.nextEv = ev
		e.nextSet = true
		return
	}
	e.pushHeap(ev)
}

// arrayModeMax bounds the sorted-array layout; beyond it inserts would
// memmove too much and the queue switches to the heap layout. The bound is
// sized for large-P sweeps: a P-rank cell keeps roughly one pending event
// per rank, so 16 nodes × 16 ranks (plus wake-chain marks) still fits the
// array layout, where pops are free and inserts are short tail memmoves.
// Genuinely huge queues (the opt-in 64-node stress cells and beyond) spill
// into the heap, whose O(log n) costs are the safe asymptotic fallback.
const arrayModeMax = 128

// arrayModeLowWater is the size at which a heap-mode queue converts back to
// the sorted-array layout (see pop): once a queue that spiked past
// arrayModeMax has drained this far, array-mode pops win again and the
// one-off re-sort is cheap.
const arrayModeLowWater = 16

// peekMin returns the earliest queued event (the queue must be non-empty;
// the front buffer is checked by callers).
func (e *Engine) peekMin() *event {
	if e.arrayMode {
		return &e.heap[len(e.heap)-1]
	}
	return &e.heap[0]
}

// heapify converts the descending-sorted gap buffer into a 4-ary min-heap:
// the window is compacted to the front and reversed (an ascending array
// satisfies the heap invariant).
func (e *Engine) heapify() {
	h := e.heap
	if e.lo > 0 {
		n := copy(h, h[e.lo:])
		h = h[:n]
		e.lo = 0
	}
	for i, j := 0, len(h)-1; i < j; i, j = i+1, j-1 {
		h[i], h[j] = h[j], h[i]
	}
	e.heap = h
	e.arrayMode = false
}

// pending reports whether any event is queued.
func (e *Engine) pending() bool { return e.nextSet || len(e.heap) > e.lo }

// frontGap opens slack below the live window so front-side inserts can
// shift left instead of moving the whole array; the gap is a quarter of the
// window, which amortizes the slide.
func (e *Engine) frontGap() {
	n := len(e.heap)
	g := n/4 + 8
	if cap(e.heap) >= n+g {
		h := e.heap[:n+g]
		copy(h[g:], h[:n])
		e.heap = h
	} else {
		h := make([]event, n+g, 2*(n+g))
		copy(h[g:], e.heap)
		e.heap = h
	}
	e.lo = g
}

// pushHeap inserts an event into the queue's current layout.
func (e *Engine) pushHeap(ev event) {
	if e.arrayMode {
		if len(e.heap)-e.lo < arrayModeMax {
			h := e.heap
			lo, hi := e.lo, len(h)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if eventLess(&h[mid], &ev) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			// Insert before index lo, shifting whichever side is shorter:
			// soon events shift the tail, far-future events shift the few
			// entries ahead of them into the front gap.
			n := len(h)
			if lo-e.lo < n-lo {
				if e.lo == 0 {
					e.frontGap()
					h = e.heap
					lo += e.lo
				}
				copy(h[e.lo-1:], h[e.lo:lo])
				h[lo-1] = ev
				e.lo--
				return
			}
			h = append(h, event{})
			copy(h[lo+1:], h[lo:])
			h[lo] = ev
			e.heap = h
			return
		}
		e.heapify()
	}
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the earliest event.
func (e *Engine) pop() event {
	if e.nextSet {
		e.nextSet = false
		return e.nextEv
	}
	if e.arrayMode {
		h := e.heap
		n := len(h) - 1
		top := h[n]
		if n == e.lo {
			n, e.lo = 0, 0 // drained: close the front gap
		}
		e.heap = h[:n]
		return top
	}
	h := e.heap
	top := h[0]
	n := len(h) - 1
	if n == 0 {
		e.arrayMode = true // drained: return to the cheap layout
	}
	last := h[n]
	h = h[:n]
	e.heap = h
	if n > 0 && n <= arrayModeLowWater {
		// A queue that spiked past arrayModeMax has drained back down:
		// re-sort the remainder into the descending array layout. The pop
		// order is the same total (t, born, seq) order in either layout.
		h[0] = last
		sort.Slice(h, func(i, j int) bool { return eventLess(&h[j], &h[i]) })
		e.arrayMode = true
		return top
	}
	if n > 0 {
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			m := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if eventLess(&h[c], &h[m]) {
					m = c
				}
			}
			if !eventLess(&h[m], &last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// Schedule arranges for fn to run at absolute virtual time t. Times in the
// past are clamped to now.
func (e *Engine) Schedule(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(event{t: t, seq: e.nextSeq(), born: e.now, pay: e.alloc(nil, fn)})
}

// ScheduleAsOf arranges for fn to run at absolute virtual time t in the
// firing position of an event that had been scheduled at virtual time born:
// among events with equal firing time, it precedes those scheduled after
// born and follows those scheduled before. Runtime models that coalesce
// fine-grained activity and replay it lazily use this to fire a replayed
// occurrence exactly where its literal counterpart would have fired.
func (e *Engine) ScheduleAsOf(t, born Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(event{t: t, seq: e.nextSeq(), born: born, pay: e.alloc(nil, fn)})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// absorbDepthMax bounds the nesting depth of inline absorption. Each
// absorbed event runs in the host stack frame of the event that scheduled
// it, so an unbounded contention-free chain would recurse without limit;
// past the bound AbsorbAsOf falls back to the queue, the whole absorbed
// stack unwinds (every absorption site is in tail position), and the chain
// resumes from the dispatch loop. The bound also caps how many events can
// fire between interrupt-flag polls inside one absorbed chain.
const absorbDepthMax = 64

// headAfter reports whether every queued event fires strictly after a
// hypothetical event scheduled now at (t, born): the queue's minimum —
// which, being already queued, carries an earlier sequence number and so
// wins any full-key tie — orders after (t, born) in (time, scheduling-time)
// order.
func (e *Engine) headAfter(t, born Time) bool {
	var h *event
	if e.nextSet {
		h = &e.nextEv
	} else if len(e.heap) > e.lo {
		h = e.peekMin()
	} else {
		return true
	}
	return h.t > t || (h.t == t && h.born > born)
}

// AbsorbAsOf behaves exactly like ScheduleAsOf — fn fires at time t in the
// position of an event scheduled at born — but when that event would be the
// engine's very next (every queued event orders strictly after it), fn runs
// inline instead of taking a queue round-trip. The skipped push/pop pair is
// the one dispatch would have performed immediately anyway: the clock and
// EventScheduledAt are set exactly as dispatch would have set them, and no
// other event can interleave, so the simulated event order — and with it
// every timestamp, RNG draw and trace record — is byte-identical to the
// scheduled execution. Sequence numbers refine scheduling order only
// relatively (see sleepInPlace), so the absorbed event not drawing one
// cannot reorder anything.
//
// Caller contract: the call must be in tail position of the current event —
// nothing with observable effect may run after AbsorbAsOf returns — because
// fn (and transitively the chain it absorbs) executes before the caller's
// remaining statements. Callers firing several deferred continuations in a
// row must suppress absorption for all but the last (see WithoutAbsorb).
func (e *Engine) AbsorbAsOf(t, born Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	if e.absorbOff || e.absorbDepth >= absorbDepthMax || !e.headAfter(t, born) {
		e.push(event{t: t, seq: e.nextSeq(), born: born, pay: e.alloc(nil, fn)})
		return
	}
	if e.interrupt != nil {
		if e.intCount++; e.intCount >= interruptStride {
			e.intCount = 0
			if e.interrupt.Load() {
				// Unwind through the queue; dispatch will see the flag.
				e.push(event{t: t, seq: e.nextSeq(), born: born, pay: e.alloc(nil, fn)})
				return
			}
		}
	}
	if t > e.now {
		e.now = t
	}
	e.curBorn = born
	e.absorbDepth++
	fn()
	e.absorbDepth--
}

// WithoutAbsorb runs f with inline absorption suppressed: every AbsorbAsOf
// call inside f degrades to ScheduleAsOf. Callers that fire several
// collected same-key continuations in a row use it for all but the last —
// only the last is in tail position, and the earlier ones must leave their
// follow-up events queued so the ordering against the remaining
// continuations is decided by the comparator, not by call order.
func (e *Engine) WithoutAbsorb(f func()) {
	if e.absorbOff {
		f()
		return
	}
	e.absorbOff = true
	f()
	e.absorbOff = false
}

// SetAbsorb enables or disables inline absorption. Disabling forces every
// AbsorbAsOf through the queue — required for engines driven as a merged
// group (a member's queue head says nothing about the group's next event)
// and used by the literal A/B runs of the fast-forward differential tests.
func (e *Engine) SetAbsorb(on bool) { e.absorbOff = !on }

// EventScheduledAt reports the virtual time at which the currently
// executing event was scheduled. Together with the (time, seq) firing order
// it lets runtime models reconstruct how a hypothetical event scheduled at
// a known instant would have interleaved with the current one: events of
// equal firing time fire in scheduling order, and scheduling order follows
// scheduling time.
func (e *Engine) EventScheduledAt() Time { return e.curBorn }

// sleepInPlace reports whether a resume event (t, born, next seq) for the
// running process would fire strictly before every pending event, and if so
// advances the clock to t without touching the heap or the baton. The
// skipped event is exactly the one dispatch would pop next, so the simulated
// event order is unchanged; curBorn is set as dispatch would have set it.
// Sequence numbers refine scheduling order only relatively, so leaving seq
// untouched cannot reorder anything.
func (e *Engine) sleepInPlace(t, born Time) bool {
	if e.nextSet {
		if e.nextEv.t < t || (e.nextEv.t == t && e.nextEv.born <= born) {
			return false // an earlier (or tie-winning) event must fire first
		}
	} else if len(e.heap) > e.lo {
		h0 := e.peekMin()
		if h0.t < t || (h0.t == t && h0.born <= born) {
			return false
		}
	}
	if t > e.now {
		e.now = t
	}
	e.curBorn = born
	return true
}

// scheduleResume arranges for p to be handed the baton at absolute time t.
// This is the allocation-free fast path beneath Sleep, Unpark and Spawn.
func (e *Engine) scheduleResume(p *Proc, t Time) {
	if t < e.now {
		t = e.now
	}
	e.push(event{t: t, seq: e.nextSeq(), born: e.now, pay: e.alloc(p, nil)})
}

// dispatch advances the simulation until control must move elsewhere: it
// fires generic callbacks inline on the calling goroutine and, on the first
// resume event, hands the baton to that process and returns. When the queue
// drains it hands the baton back to the Run caller. The caller must be the
// current baton holder and must park (or finish) immediately after.
func (e *Engine) dispatch() {
	for e.pending() {
		if e.interrupt != nil {
			if e.intCount++; e.intCount >= interruptStride {
				e.intCount = 0
				if e.interrupt.Load() {
					// Abort: pretend the queue drained and hand the baton
					// back to Run, which sees the flag and shuts down.
					e.interrupted = true
					e.main <- struct{}{}
					return
				}
			}
		}
		ev := e.pop()
		pay := e.pays[ev.pay]
		e.pays[ev.pay] = payload{}
		e.free = append(e.free, ev.pay)
		if ev.t > e.now {
			e.now = ev.t
		}
		e.curBorn = ev.born
		if pay.p != nil {
			if pay.p.done {
				continue
			}
			pay.p.gate <- struct{}{}
			return
		}
		pay.fn()
	}
	e.main <- struct{}{}
}

// Step fires the single earliest pending event and reports whether one was
// pending. It is the fast-forward hook beneath World-level merged drive
// loops: a caller that owns several engines (a main engine plus node-local
// fast-forward lanes) interleaves them one event at a time instead of
// handing the baton to Run. Step is only legal on engines whose queued
// events are all generic callbacks — machine-rank simulations that spawn no
// processes — because there is no baton holder to hand a process resume to;
// hitting a process-resume event panics. Clock, curBorn and payload
// recycling behave exactly as in dispatch, so the observable event order is
// the same total (t, born, seq) order Run would have produced.
func (e *Engine) Step() bool {
	if !e.pending() {
		return false
	}
	ev := e.pop()
	pay := e.pays[ev.pay]
	e.pays[ev.pay] = payload{}
	e.free = append(e.free, ev.pay)
	if ev.t > e.now {
		e.now = ev.t
	}
	e.curBorn = ev.born
	if pay.p != nil {
		panic("sim: Step on an engine with process-resume events")
	}
	pay.fn()
	return true
}

// NextKey reports the earliest pending event's full (firing time,
// scheduling time, schedule sequence) ordering key. Merged drive loops over
// a ShareSeq engine group compare the heads of all member engines and fire
// the smallest key: because the group draws sequence numbers from one
// counter, that comparison reproduces the exact total order a single
// shared engine would have used. A cross-engine schedule always lands at or
// after the issuing event's own key, so the engine with the smallest head
// is always safe to step.
func (e *Engine) NextKey() (t, born Time, seq uint32, ok bool) {
	if e.nextSet {
		return e.nextEv.t, e.nextEv.born, e.nextEv.seq, true
	}
	if len(e.heap) > e.lo {
		ev := e.peekMin()
		return ev.t, ev.born, ev.seq, true
	}
	return 0, 0, 0, false
}

// Pending reports whether any event is queued (fast-forward drive loops use
// it to decide termination).
func (e *Engine) Pending() bool { return e.pending() }

// Interrupted polls the installed interrupt flag (nil-safe). Drive loops
// built on Step/Drain poll it themselves, since they bypass dispatch's
// stride polling.
func (e *Engine) Interrupted() bool { return e.interrupt != nil && e.interrupt.Load() }

// DeadlockError reports that the simulation stopped with live processes but
// no pending events: every remaining process is parked forever.
type DeadlockError struct {
	Now     Time
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.9f: %d process(es) parked forever: %v",
		float64(d.Now), len(d.Blocked), d.Blocked)
}

// Run drives the simulation until the event queue drains. It returns a
// *DeadlockError if processes remain parked with no event that could wake
// them; otherwise nil. Run may be called once per engine.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Engine.Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	e.dispatch()
	<-e.main
	if e.interrupted {
		e.interrupted = false
		e.Shutdown()
		return ErrInterrupted
	}
	if e.live > 0 {
		d := &DeadlockError{Now: e.now}
		for _, p := range e.procs {
			if !p.done {
				d.Blocked = append(d.Blocked, p.name)
			}
		}
		sort.Strings(d.Blocked)
		e.Shutdown()
		return d
	}
	return nil
}

// Shutdown force-terminates every parked process so that no goroutines leak
// after a deadlocked or abandoned simulation. It is safe to call after Run.
func (e *Engine) Shutdown() {
	e.shutdown = true
	defer func() { e.shutdown = false }()
	for _, p := range e.procs {
		if p.done || !p.parked {
			continue
		}
		p.aborted = true
		p.gate <- struct{}{}
		<-e.main
	}
}

// LiveProcs reports the number of processes that have been spawned but have
// not yet finished.
func (e *Engine) LiveProcs() int { return e.live }

// ProcsSpawned reports how many processes this engine has spawned since it
// was created or Reset — the goroutine-free executors assert it stays zero.
func (e *Engine) ProcsSpawned() int { return len(e.procs) }

// Reset reinitializes a drained engine in place so it can run another
// simulation: the clock returns to zero, the random source is reseeded, and
// the event queue, payload table and process list empty while keeping their
// backing capacity. The result is observationally identical to
// NewEngine(seed) — same clock, same RNG stream, same (t, born, seq) event
// ordering — which is what lets sweep drivers pool engines across cells
// (DESIGN.md §8). Reset panics if the previous run left live processes or
// queued events: such an engine still owns goroutines or pending work and
// must be abandoned (or Shutdown) instead of reused.
func (e *Engine) Reset(seed int64) {
	if e.running || e.live > 0 || e.pending() {
		panic("sim: Engine.Reset on an engine with live processes or pending events")
	}
	e.now = 0
	e.seq = 0
	e.seqSrc = nil
	e.pushes = 0
	e.curBorn = 0
	e.absorbDepth = 0
	e.absorbOff = false
	e.heap = e.heap[:0]
	e.lo = 0
	e.arrayMode = true
	e.nextSet = false
	e.pays = e.pays[:0]
	e.free = e.free[:0]
	e.procs = e.procs[:0]
	e.rng.Seed(seed)
	e.interrupt = nil
	e.intCount = 0
	e.interrupted = false
}
