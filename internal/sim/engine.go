// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel. Simulated processes are goroutines that run one at a
// time under the control of an Engine; they advance virtual time by calling
// blocking primitives such as (*Proc).Sleep or by parking on wait queues.
//
// The kernel guarantees determinism: with the same program and seed, every
// run produces the same event order and the same virtual timestamps. This is
// the substrate on which the MPI and OpenMP runtime models are built.
//
// The hot path is engineered for throughput (see DESIGN.md §2): the event
// queue is a value-typed 4-ary min-heap with no interface boxing, the
// dominant "resume this process" event is a specialized struct field rather
// than a closure (Sleep/Unpark/Spawn allocate nothing in steady state), and
// control is handed directly from one process goroutine to the next instead
// of bouncing through a central scheduler goroutine, halving the host
// context switches per simulated event.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Time is virtual time in seconds.
type Time float64

// Common durations, for readability at call sites.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// event is a scheduled occurrence. born records the virtual time the event
// was scheduled; events fire in (time, born, seq) order. Because scheduling
// always happens at the current instant, seq order refines born order and
// the ordering is exactly "equal-time events fire in schedule order" — the
// property that makes runs reproducible. Carrying born explicitly lets
// runtime models that replay coalesced activity late (see ScheduleAsOf)
// re-insert events at the position they would have occupied. The common
// case — resume a parked process — is encoded by a non-nil p and needs no
// closure; fn is only set for generic callbacks.
type event struct {
	t    Time
	seq  uint64
	born Time
	p    *Proc
	fn   func()
}

// eventLess orders events by (time, scheduling time, schedule sequence).
func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.born != b.born {
		return a.born < b.born
	}
	return a.seq < b.seq
}

// Engine owns the virtual clock and the event queue. All simulated activity
// is single-threaded from the host's point of view: a single control baton
// is passed between process goroutines (and the Run caller), so exactly one
// process runs at any instant and simulated processes may freely share Go
// memory without host-level synchronization.
type Engine struct {
	now  Time
	seq  uint64
	heap []event

	// main is the Run caller's wake-up gate: the baton returns here when the
	// event queue drains (and during Shutdown hand-back).
	main chan struct{}

	procs    []*Proc
	live     int
	rng      *rand.Rand
	running  bool
	shutdown bool // finishing procs hand the baton to main, not to dispatch

	// curBorn is the scheduling time of the event currently being executed
	// (see EventScheduledAt).
	curBorn Time
}

// NewEngine returns an engine with its virtual clock at zero and a
// deterministic random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		main: make(chan struct{}, 1),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. It must only be
// used from simulated processes or event callbacks.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// push inserts an event into the 4-ary min-heap.
func (e *Engine) push(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the earliest event.
func (e *Engine) pop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the fn/proc references
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			m := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if eventLess(&h[c], &h[m]) {
					m = c
				}
			}
			if !eventLess(&h[m], &last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	e.heap = h
	return top
}

// Schedule arranges for fn to run at absolute virtual time t. Times in the
// past are clamped to now.
func (e *Engine) Schedule(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.push(event{t: t, seq: e.seq, born: e.now, fn: fn})
}

// ScheduleAsOf arranges for fn to run at absolute virtual time t in the
// firing position of an event that had been scheduled at virtual time born:
// among events with equal firing time, it precedes those scheduled after
// born and follows those scheduled before. Runtime models that coalesce
// fine-grained activity and replay it lazily use this to fire a replayed
// occurrence exactly where its literal counterpart would have fired.
func (e *Engine) ScheduleAsOf(t, born Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.push(event{t: t, seq: e.seq, born: born, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// EventScheduledAt reports the virtual time at which the currently
// executing event was scheduled. Together with the (time, seq) firing order
// it lets runtime models reconstruct how a hypothetical event scheduled at
// a known instant would have interleaved with the current one: events of
// equal firing time fire in scheduling order, and scheduling order follows
// scheduling time.
func (e *Engine) EventScheduledAt() Time { return e.curBorn }

// scheduleResume arranges for p to be handed the baton at absolute time t.
// This is the allocation-free fast path beneath Sleep, Unpark and Spawn.
func (e *Engine) scheduleResume(p *Proc, t Time) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.push(event{t: t, seq: e.seq, born: e.now, p: p})
}

// dispatch advances the simulation until control must move elsewhere: it
// fires generic callbacks inline on the calling goroutine and, on the first
// resume event, hands the baton to that process and returns. When the queue
// drains it hands the baton back to the Run caller. The caller must be the
// current baton holder and must park (or finish) immediately after.
func (e *Engine) dispatch() {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.t > e.now {
			e.now = ev.t
		}
		e.curBorn = ev.born
		if ev.p != nil {
			if ev.p.done {
				continue
			}
			ev.p.gate <- struct{}{}
			return
		}
		ev.fn()
	}
	e.main <- struct{}{}
}

// DeadlockError reports that the simulation stopped with live processes but
// no pending events: every remaining process is parked forever.
type DeadlockError struct {
	Now     Time
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.9f: %d process(es) parked forever: %v",
		float64(d.Now), len(d.Blocked), d.Blocked)
}

// Run drives the simulation until the event queue drains. It returns a
// *DeadlockError if processes remain parked with no event that could wake
// them; otherwise nil. Run may be called once per engine.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Engine.Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	e.dispatch()
	<-e.main
	if e.live > 0 {
		d := &DeadlockError{Now: e.now}
		for _, p := range e.procs {
			if !p.done {
				d.Blocked = append(d.Blocked, p.name)
			}
		}
		sort.Strings(d.Blocked)
		e.Shutdown()
		return d
	}
	return nil
}

// Shutdown force-terminates every parked process so that no goroutines leak
// after a deadlocked or abandoned simulation. It is safe to call after Run.
func (e *Engine) Shutdown() {
	e.shutdown = true
	defer func() { e.shutdown = false }()
	for _, p := range e.procs {
		if p.done || !p.parked {
			continue
		}
		p.aborted = true
		p.gate <- struct{}{}
		<-e.main
	}
}

// LiveProcs reports the number of processes that have been spawned but have
// not yet finished.
func (e *Engine) LiveProcs() int { return e.live }
