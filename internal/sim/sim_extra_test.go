package sim

import (
	"fmt"
	"testing"
)

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(5, func() {
		e.After(2.5, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7.5 {
		t.Fatalf("After fired at %v, want 7.5", at)
	}
}

func TestEventCallbackCanSpawn(t *testing.T) {
	e := NewEngine(1)
	var done Time
	e.Schedule(3, func() {
		e.Spawn("late", func(p *Proc) {
			p.Sleep(1)
			done = p.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("late proc finished at %v, want 4", done)
	}
}

func TestUnparkFinishedProcPanics(t *testing.T) {
	e := NewEngine(1)
	var p *Proc
	p = e.Spawn("short", func(*Proc) {})
	e.Schedule(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("Unpark of finished proc did not panic")
			}
		}()
		p.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcIdentity(t *testing.T) {
	e := NewEngine(1)
	var ids []int
	for i := 0; i < 3; i++ {
		p := e.Spawn(fmt.Sprintf("p%d", i), func(pr *Proc) {
			if pr.Engine() != e {
				t.Error("Engine() wrong")
			}
		})
		ids = append(ids, p.ID())
		if p.Name() != fmt.Sprintf("p%d", i) {
			t.Fatalf("Name = %q", p.Name())
		}
	}
	if ids[0] == ids[1] || ids[1] == ids[2] {
		t.Fatalf("IDs not unique: %v", ids)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMassiveProcCount(t *testing.T) {
	// 4096 procs with interleaved sleeps: stresses the heap and handoff.
	e := NewEngine(1)
	finished := 0
	for i := 0; i < 4096; i++ {
		d := Time(i%17+1) * Microsecond
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < 5; k++ {
				p.Sleep(d)
			}
			finished++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 4096 {
		t.Fatalf("finished = %d", finished)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d", e.LiveProcs())
	}
}

func TestDurationConstants(t *testing.T) {
	if Second != 1 || Millisecond != 1e-3 || Microsecond != 1e-6 || Nanosecond != 1e-9 {
		t.Fatal("duration constants wrong")
	}
}

func TestSemaphoreBlocksAtZero(t *testing.T) {
	e := NewEngine(1)
	sem := NewSemaphore(0)
	var acquired Time
	e.Spawn("waiter", func(p *Proc) {
		sem.Acquire(p)
		acquired = p.Now()
	})
	e.Spawn("releaser", func(p *Proc) {
		p.Sleep(2)
		sem.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if acquired != 2 {
		t.Fatalf("acquired at %v, want 2", acquired)
	}
}
