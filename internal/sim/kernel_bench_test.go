package sim

import (
	"fmt"
	"testing"
)

// Kernel microbenchmarks for the discrete-event hot path. Run with
//
//	go test ./internal/sim -bench Kernel -benchmem
//
// The alloc columns are the regression signal: the resume path must report
// ~0 allocs/op in steady state.

// BenchmarkKernelSelfSleep measures a single process sleeping repeatedly:
// the pure event-queue cost with no goroutine switch (self-resume stays on
// the same goroutine via the buffered gate).
func BenchmarkKernelSelfSleep(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelPingPong measures the cross-process handoff: two processes
// alternating, one goroutine switch per event.
func BenchmarkKernelPingPong(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < b.N/2; k++ {
				p.Sleep(Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelManyProcs stresses the heap with 256 interleaved sleepers,
// the shape of a 16-node × 16-rank simulation.
func BenchmarkKernelManyProcs(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	const procs = 256
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		d := Time(i%17+1) * Microsecond
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < per; k++ {
				p.Sleep(d)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelScheduleCallback measures the generic closure event path
// (the rare case; one closure allocation per event is expected here).
func BenchmarkKernelScheduleCallback(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	var fire func()
	n := 0
	fire = func() {
		if n < b.N {
			n++
			e.After(Microsecond, fire)
		}
	}
	e.Schedule(0, fire)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelWaitQueue measures park/wake through the FIFO ring.
func BenchmarkKernelWaitQueue(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	var q WaitQueue
	e.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Wait(p)
		}
	})
	e.Spawn("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for q.Len() == 0 {
				p.Sleep(Microsecond)
			}
			q.WakeOne()
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelMutexConvoy measures a contended simulated mutex: 16
// processes taking turns, the shape of the paper's lock-polling scenarios at
// the sim layer.
func BenchmarkKernelMutexConvoy(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	var m Mutex
	const procs = 16
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < per; k++ {
				m.Lock(p)
				p.Sleep(Microsecond)
				m.Unlock()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
