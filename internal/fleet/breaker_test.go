package fleet

import (
	"testing"
	"time"
)

// fakeClock drives a Breaker through time deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

// TestBreakerStateMachine walks the full closed → open → half-open cycle
// both ways: a failed trial re-arms the cooldown, a successful one
// recloses.
func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(3, time.Minute)
	b.now = clk.now

	// Closed: admits traffic, counts consecutive failures.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused traffic")
		}
		b.Fail()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, got)
		}
	}
	// A success resets the count: two more failures must not trip it.
	b.Success()
	b.Fail()
	b.Fail()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("failure count survived a success: %v", got)
	}

	// Third consecutive failure trips it open.
	b.Fail()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures: %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}
	if b.Available() {
		t.Fatal("open breaker reported available inside the cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}

	// Cooldown elapses: exactly one half-open trial is admitted.
	clk.advance(time.Minute)
	if !b.Available() {
		t.Fatal("cooled-down breaker reported unavailable")
	}
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open trial")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during trial: %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while a trial is in flight")
	}

	// Failed trial: straight back to open, cooldown re-armed from now.
	b.Fail()
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("failed trial: state %v opens %d, want open/2", b.State(), b.Opens())
	}
	clk.advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("cooldown was not re-armed by the failed trial")
	}
	clk.advance(31 * time.Second)
	if !b.Allow() {
		t.Fatal("re-armed cooldown never elapsed")
	}

	// Successful trial recloses and clears everything.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful trial: %v, want closed", b.State())
	}
	b.Fail()
	b.Fail()
	if b.State() != BreakerClosed {
		t.Fatal("failure count was not reset by the reclose")
	}
}

// TestBreakerLateFailuresWhileOpen: failures reported by older in-flight
// requests after the trip must not extend the cooldown.
func TestBreakerLateFailuresWhileOpen(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	b := NewBreaker(1, time.Minute)
	b.now = clk.now
	b.Fail() // trips
	clk.advance(59 * time.Second)
	b.Fail() // a straggler from before the trip
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("straggler failure extended the cooldown")
	}
}

// TestRetryAfterFromBreakerDeadline drives the coordinator's Retry-After
// derivation with an injected clock: a fully-open fleet hints the earliest
// half-open deadline (rounded up, floored at 1), and the hint shrinks as
// that deadline approaches.
func TestRetryAfterFromBreakerDeadline(t *testing.T) {
	c, err := New(Options{
		Workers:         []string{"http://w1", "http://w2"},
		BreakerFailures: 1,
		BreakerCooldown: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := time.Unix(1000, 0)
	now := base
	clock := func() time.Time { return now }
	c.now = clock
	for _, wk := range c.workers {
		wk.breaker.now = clock
	}

	if got := c.retryAfter(); got != retryAfterSeconds {
		t.Fatalf("healthy fleet: Retry-After = %q, want the %q default", got, retryAfterSeconds)
	}

	// Trip w1 now and w2 three seconds later: the hint must follow the
	// EARLIEST half-open deadline (w1's, 10s out), not w2's.
	c.workers[0].breaker.Fail()
	now = base.Add(3 * time.Second)
	c.workers[1].breaker.Fail()
	if got := c.retryAfter(); got != "7" {
		t.Fatalf("both open at t=3s: Retry-After = %q, want \"7\" (w1 reopens at t=10s)", got)
	}

	// Fractional remainders round up, and the hint never drops below 1.
	now = base.Add(9*time.Second + 100*time.Millisecond)
	if got := c.retryAfter(); got != "1" {
		t.Fatalf("900ms before the deadline: Retry-After = %q, want \"1\"", got)
	}
	now = base.Add(20 * time.Second)
	if got := c.retryAfter(); got != retryAfterSeconds {
		t.Fatalf("cooldown elapsed: Retry-After = %q, want the %q default (half-open admits a trial)", got, retryAfterSeconds)
	}
}
