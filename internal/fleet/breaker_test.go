package fleet

import (
	"testing"
	"time"
)

// fakeClock drives a Breaker through time deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

// TestBreakerStateMachine walks the full closed → open → half-open cycle
// both ways: a failed trial re-arms the cooldown, a successful one
// recloses.
func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(3, time.Minute)
	b.now = clk.now

	// Closed: admits traffic, counts consecutive failures.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused traffic")
		}
		b.Fail()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, got)
		}
	}
	// A success resets the count: two more failures must not trip it.
	b.Success()
	b.Fail()
	b.Fail()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("failure count survived a success: %v", got)
	}

	// Third consecutive failure trips it open.
	b.Fail()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures: %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}
	if b.Available() {
		t.Fatal("open breaker reported available inside the cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}

	// Cooldown elapses: exactly one half-open trial is admitted.
	clk.advance(time.Minute)
	if !b.Available() {
		t.Fatal("cooled-down breaker reported unavailable")
	}
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open trial")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during trial: %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while a trial is in flight")
	}

	// Failed trial: straight back to open, cooldown re-armed from now.
	b.Fail()
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("failed trial: state %v opens %d, want open/2", b.State(), b.Opens())
	}
	clk.advance(30 * time.Second)
	if b.Allow() {
		t.Fatal("cooldown was not re-armed by the failed trial")
	}
	clk.advance(31 * time.Second)
	if !b.Allow() {
		t.Fatal("re-armed cooldown never elapsed")
	}

	// Successful trial recloses and clears everything.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful trial: %v, want closed", b.State())
	}
	b.Fail()
	b.Fail()
	if b.State() != BreakerClosed {
		t.Fatal("failure count was not reset by the reclose")
	}
}

// TestBreakerLateFailuresWhileOpen: failures reported by older in-flight
// requests after the trip must not extend the cooldown.
func TestBreakerLateFailuresWhileOpen(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	b := NewBreaker(1, time.Minute)
	b.now = clk.now
	b.Fail() // trips
	clk.advance(59 * time.Second)
	b.Fail() // a straggler from before the trip
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("straggler failure extended the cooldown")
	}
}
