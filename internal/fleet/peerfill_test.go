package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/dls"
	"repro/hdls"
	"repro/internal/core"
	"repro/internal/serve"
)

// peerCell is a fast cell for the peer-fill tests.
func peerCell(seed int64) hdls.Config {
	return hdls.Config{
		Nodes: 2, WorkersPerNode: 4, Inter: dls.GSS, Intra: dls.STATIC,
		Approach: hdls.MPIMPI, Seed: seed, Workload: "constant:n=256",
	}
}

func drainServer(t *testing.T, s *serve.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// TestPeerFillServesByteIdenticalWithoutRecompute is the fresh-vs-peer
// reproducibility gate: worker A computes a cell; worker B, wired with a
// peer-fill hook pointing at A, serves the identical bytes as a peer hit
// without running the engine again.
func TestPeerFillServesByteIdenticalWithoutRecompute(t *testing.T) {
	sA := serve.New(serve.Options{Workers: 2})
	tsA := httptest.NewServer(sA.Handler())
	t.Cleanup(func() { tsA.Close(); drainServer(t, sA) })

	cfg := peerCell(901)
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	respA, err := http.Post(tsA.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bodyA, err := io.ReadAll(respA.Body)
	respA.Body.Close()
	if err != nil || respA.StatusCode != http.StatusOK {
		t.Fatalf("worker A run: %v status %d %s", err, respA.StatusCode, bodyA)
	}

	sB := serve.New(serve.Options{
		Workers:   2,
		PeerFetch: PeerFill(PeerFillOptions{Peers: []string{tsA.URL}}),
	})
	tsB := httptest.NewServer(sB.Handler())
	t.Cleanup(func() { tsB.Close(); drainServer(t, sB) })

	reuses, builds, _ := core.ArenaStats()
	before := reuses + builds
	respB, err := http.Post(tsB.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bodyB, err := io.ReadAll(respB.Body)
	respB.Body.Close()
	if err != nil || respB.StatusCode != http.StatusOK {
		t.Fatalf("worker B run: %v status %d %s", err, respB.StatusCode, bodyB)
	}
	if got := respB.Header.Get("X-Cache"); got != "hit-peer" {
		t.Fatalf("worker B X-Cache = %q, want hit-peer", got)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatalf("peer-filled body differs from the computing worker's:\n%s\n%s", bodyA, bodyB)
	}
	reuses, builds, _ = core.ArenaStats()
	if delta := reuses + builds - before; delta != 0 {
		t.Fatalf("worker B ran the engine %d times despite the peer having the cell", delta)
	}
	if st := sB.Store().Stats(); st.PeerHits != 1 {
		t.Fatalf("worker B store stats = %+v, want PeerHits=1", st)
	}

	// The peer fill cached locally: a repeat on B is a mem hit, same bytes.
	respB2, err := http.Post(tsB.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bodyB2, _ := io.ReadAll(respB2.Body)
	respB2.Body.Close()
	if got := respB2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(bodyA, bodyB2) {
		t.Fatal("repeat body differs")
	}
}

// TestPeerFillMissFallsThroughToCompute: peers that lack the cell (404)
// or are unreachable must not fail the request — the worker simulates
// locally, exactly as if it had no peers.
func TestPeerFillMissFallsThroughToCompute(t *testing.T) {
	sA := serve.New(serve.Options{Workers: 2}) // empty store: every probe 404s
	tsA := httptest.NewServer(sA.Handler())
	t.Cleanup(func() { tsA.Close(); drainServer(t, sA) })

	dead := "http://127.0.0.1:1" // nothing listens here
	sB := serve.New(serve.Options{
		Workers: 2,
		PeerFetch: PeerFill(PeerFillOptions{
			Peers:   []string{tsA.URL, dead},
			Probes:  2,
			Timeout: 200 * time.Millisecond,
		}),
	})
	tsB := httptest.NewServer(sB.Handler())
	t.Cleanup(func() { tsB.Close(); drainServer(t, sB) })

	body, err := json.Marshal(peerCell(902))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tsB.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss (local compute)", got)
	}
	if st := sB.Store().Stats(); st.PeerHits != 0 || st.Misses == 0 {
		t.Fatalf("store stats = %+v, want a plain miss", st)
	}
}

// TestPeerFillNilWithoutPeers: no peers means no hook at all.
func TestPeerFillNilWithoutPeers(t *testing.T) {
	if PeerFill(PeerFillOptions{}) != nil {
		t.Fatal("PeerFill with no peers should return nil")
	}
}

// TestPeerFillProbesRingSuccessorsFirst: the probe order for a hash must
// start at the ring owner, mirroring the coordinator's routing, so the
// first probe lands on the worker most likely to hold the cell.
func TestPeerFillProbesRingSuccessorsFirst(t *testing.T) {
	var got []string
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cache/{hash}", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	// Three fake peers that record the order they are probed in.
	var peers []string
	for i := 0; i < 3; i++ {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			got = append(got, r.Host)
			http.NotFound(w, r)
		}))
		t.Cleanup(ts.Close)
		peers = append(peers, ts.URL)
	}

	hash := peerCell(903).Hash()
	fetch := PeerFill(PeerFillOptions{Peers: peers, Probes: 3})
	if _, ok := fetch(context.Background(), hash); ok {
		t.Fatal("all peers 404ed; fetch must miss")
	}

	ring := NewRing(peers, 64)
	want := ring.Successors(hdls.HashKeyOf(hash))
	if len(got) != 3 {
		t.Fatalf("probed %d peers, want 3", len(got))
	}
	for i, wi := range want {
		if "http://"+got[i] != peers[wi] {
			t.Fatalf("probe %d hit %s, want ring successor %s", i, got[i], peers[wi])
		}
	}
}
