package fleet

import (
	"context"
	"io"
	"net/http"
	"time"
)

// probeLoop actively probes worker readiness at the configured interval
// until Close. Probing does two jobs the data path can't: it detects a
// lost worker before any sweep traffic pays for the discovery (cells owned
// by a tripped worker re-route proactively at placement time), and it
// recovers a healed worker by serving as the breaker's half-open trial —
// no live cell has to gamble on an unproven worker.
func (c *Coordinator) probeLoop(interval time.Duration) {
	defer close(c.probeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-t.C:
			c.ProbeOnce(context.Background())
		}
	}
}

// probeTimeout bounds one probe request: snappy relative to the interval,
// never slower than the 2s ceiling.
func (c *Coordinator) probeTimeout() time.Duration {
	d := 2 * time.Second
	if c.opts.ProbeInterval > 0 && c.opts.ProbeInterval < d {
		d = c.opts.ProbeInterval
	}
	return d
}

// ProbeOnce probes every worker whose breaker admits traffic — for an open
// breaker past its cooldown, the probe itself is the half-open trial — and
// records the outcome. GET /readyz is the probe: a draining or saturated
// worker answers 503, so it is taken out of routing before submissions
// start bouncing off it. Exported so tests and operational tooling can
// drive recovery deterministically, without waiting out a ticker.
func (c *Coordinator) ProbeOnce(ctx context.Context) {
	for _, wk := range c.workers {
		if !wk.breaker.Allow() {
			continue // open and cooling down, or a trial already in flight
		}
		c.probes.Add(1)
		if c.probeWorker(ctx, wk) {
			wk.breaker.Success()
		} else {
			wk.breaker.Fail()
			c.probeFails.Add(1)
		}
	}
}

// probeWorker reports whether one worker answered its readiness probe.
func (c *Coordinator) probeWorker(ctx context.Context, wk *worker) bool {
	reqCtx, cancel := context.WithTimeout(ctx, c.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, wk.name+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	return resp.StatusCode == http.StatusOK
}
