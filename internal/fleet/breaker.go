package fleet

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the worker is presumed lost; all traffic is refused
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one trial request is
	// allowed through to decide between reclosing and reopening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-worker circuit breaker. It trips open after threshold
// consecutive failures, refuses traffic for cooldown, then admits a single
// half-open trial whose outcome either recloses the breaker or rearms the
// cooldown. Time is injected so tests drive transitions deterministically.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	trial    bool      // half-open trial currently in flight

	opens int64 // lifetime closed/half-open → open transitions
}

// NewBreaker returns a closed breaker that trips after threshold
// consecutive failures and cools down for cooldown before a trial.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may be sent now, performing the
// open → half-open transition when the cooldown has elapsed. In half-open
// state only one caller is admitted until Success or Fail settles the
// trial.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.trial = true
		return true
	default: // BreakerHalfOpen
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Available reports whether Allow would (or will soon) admit traffic,
// without consuming the half-open trial slot. The coordinator uses it for
// shed decisions and readiness reporting.
func (b *Breaker) Available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != BreakerOpen || b.now().Sub(b.openedAt) >= b.cooldown
}

// Success records a request that completed cleanly: the breaker recloses
// and the consecutive-failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.trial = false
}

// Fail records a failed request. A half-open trial failure reopens
// immediately and rearms the cooldown; while closed, the threshold-th
// consecutive failure trips the breaker.
func (b *Breaker) Fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trial = false
		b.failures = 0
		b.opens++
	case BreakerClosed:
		if b.failures++; b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.failures = 0
			b.opens++
		}
	default: // BreakerOpen: late failures from older in-flight requests
		// must not extend the cooldown; ignore.
	}
}

// ReadyAt returns when the breaker will next admit traffic: the half-open
// deadline while the cooldown is still running, the zero time (ready now)
// otherwise. The coordinator derives its Retry-After hints from the
// earliest deadline across the fleet.
func (b *Breaker) ReadyAt() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if at := b.openedAt.Add(b.cooldown); at.After(b.now()) {
			return at
		}
	}
	return time.Time{}
}

// State returns the breaker's current position (after applying a due
// open → half-open transition, so metrics don't report a stale "open").
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens returns the lifetime count of trips to open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
