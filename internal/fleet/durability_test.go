package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/hdls"
	"repro/internal/serve"
)

// shardServer builds a fake worker whose /v1/sweep handler is supplied by
// the test; every other path answers 200 so health probes stay quiet.
func shardServer(t *testing.T, handle func(w http.ResponseWriter, cells []hdls.Config, r *http.Request)) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" {
			w.WriteHeader(http.StatusOK)
			return
		}
		var req struct {
			Cells []hdls.Config `json:"cells"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("fake worker: bad shard request: %v", err)
			return
		}
		handle(w, req.Cells, r)
	}))
}

// serveShard writes a well-formed NDJSON line for every cell.
func serveShard(w http.ResponseWriter, cells []hdls.Config) {
	for i, c := range cells {
		summary, _ := json.Marshal(map[string]any{"fake": i})
		w.Write(serve.CellLine(i, c.Hash(), summary))
		w.Write([]byte{'\n'})
	}
}

// TestWorkerRetryAfterFloorsBackoff pins satellite behavior for overload
// coupling between the fleet layers: when a worker sheds a shard with 429
// + Retry-After, the hint becomes the floor for that attempt's backoff —
// the worker said exactly when it expects capacity, and retrying sooner
// just buys another shed. A shed is capacity signaling, not failure, so
// it must not trip the worker's breaker or count as a stream break.
func TestWorkerRetryAfterFloorsBackoff(t *testing.T) {
	var calls atomic.Int64
	fake := shardServer(t, func(w http.ResponseWriter, cells []hdls.Config, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"shedding load: active-job limit reached"}`)
			return
		}
		serveShard(w, cells)
	})
	defer fake.Close()

	_, ts, slept := newCoordinator(t, []string{fake.URL}, func(o *Options) {
		o.BackoffBase = time.Millisecond
		o.BackoffMax = 4 * time.Millisecond
	})
	resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json",
		bytes.NewReader(sweepJSON(t, []hdls.Config{fleetCell(1), fleetCell(2)})))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || bytes.Count(body, []byte{'\n'}) != 2 {
		t.Fatalf("sweep through a shedding worker: HTTP %d %s", resp.StatusCode, body)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("worker saw %d shard attempts, want 2 (shed, then success)", got)
	}
	floored := false
	for _, d := range *slept {
		if d == 7*time.Second {
			floored = true
		}
	}
	if !floored {
		t.Errorf("backoff sleeps %v never hit the 7s Retry-After floor", *slept)
	}
	metrics := getMetrics(t, ts.URL)
	if !strings.Contains(metrics, "\nhdlsd_fleet_retry_after_honored_total 2\n") {
		t.Error("metrics missing hdlsd_fleet_retry_after_honored_total 2")
	}
	if !strings.Contains(metrics, "\nhdlsd_fleet_stream_breaks_total 0\n") {
		t.Error("a shed counted as a stream break")
	}
	if !strings.Contains(metrics, "\nhdlsd_fleet_breaker_opens_total 0\n") {
		t.Error("a shed tripped the worker's breaker")
	}
}

// TestDeadlineAndClientForwarded pins the propagation contract: the
// coordinator stamps every shard with the submitter's identity (X-Client,
// so per-client admission on workers sees the real client and not the
// coordinator) and with the end-to-end deadline minus the configured
// network margin, serialized UTC RFC3339Nano.
func TestDeadlineAndClientForwarded(t *testing.T) {
	var gotClient, gotDeadline atomic.Value
	fake := shardServer(t, func(w http.ResponseWriter, cells []hdls.Config, r *http.Request) {
		gotClient.Store(r.Header.Get("X-Client"))
		gotDeadline.Store(r.Header.Get("X-Deadline"))
		serveShard(w, cells)
	})
	defer fake.Close()

	_, ts, _ := newCoordinator(t, []string{fake.URL}, func(o *Options) {
		o.DeadlineMargin = 250 * time.Millisecond
	})
	deadline := time.Now().Add(time.Hour).UTC().Truncate(time.Millisecond)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep?stream=1",
		bytes.NewReader(sweepJSON(t, []hdls.Config{fleetCell(1)})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client", "tester")
	req.Header.Set("X-Deadline", deadline.Format(time.RFC3339Nano))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: HTTP %d", resp.StatusCode)
	}
	if got := gotClient.Load(); got != "tester" {
		t.Errorf("worker saw X-Client %q, want tester", got)
	}
	want := deadline.Add(-250 * time.Millisecond).Format(time.RFC3339Nano)
	if got := gotDeadline.Load(); got != want {
		t.Errorf("worker saw X-Deadline %q, want %q (deadline minus margin)", got, want)
	}
}

// TestFleetExpiredDeadlineByteIdentity pins fleet/single-daemon parity
// for deadline expiry: a sweep submitted to the coordinator with an
// already-passed deadline merges to exactly the bytes a single daemon
// would emit — one frozen in-band error line per cell, in order — and the
// workers' 504-class refusals are resolutions, not retryable failures.
func TestFleetExpiredDeadlineByteIdentity(t *testing.T) {
	workers := []string{startWorker(t, serve.Options{Workers: 2}).URL, startWorker(t, serve.Options{Workers: 2}).URL}
	_, ts, slept := newCoordinator(t, workers, nil)

	cells := []hdls.Config{fleetCell(1), fleetCell(2), fleetCell(3)}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep?stream=1",
		bytes.NewReader(sweepJSON(t, cells)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Deadline", "2020-01-01T00:00:00Z")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expired fleet sweep: HTTP %d %s", resp.StatusCode, got)
	}
	var want []byte
	for i, c := range cells {
		want = append(want, serve.ErrorCellLine(i, c.Hash(), "deadline exceeded")...)
		want = append(want, '\n')
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged expired stream:\n got: %s\nwant: %s", got, want)
	}
	if len(*slept) != 0 {
		t.Errorf("expired cells were retried (sleeps %v); expiry is a resolution", *slept)
	}
}

// TestRunRelays504WithoutRetry pins single-cell deadline relaying: a
// worker's 504 (deadline expired before compute) goes back to the client
// verbatim on the first attempt — a deadline will not un-expire, so
// retrying against another worker only burns fleet capacity.
func TestRunRelays504WithoutRetry(t *testing.T) {
	worker := startWorker(t, serve.Options{Workers: 2})
	_, ts, slept := newCoordinator(t, []string{worker.URL}, nil)

	buf, err := json.Marshal(fleetCell(9))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Deadline", "2020-01-01T00:00:00Z")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout || !bytes.Contains(body, []byte("deadline exceeded")) {
		t.Fatalf("expired run: HTTP %d %s, want a relayed 504", resp.StatusCode, body)
	}
	if len(*slept) != 0 {
		t.Errorf("the 504 was retried (sleeps %v)", *slept)
	}
}

// sweepJSON marshals a sweep request body.
func sweepJSON(t *testing.T, cells []hdls.Config) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// getMetrics fetches the coordinator's metrics page.
func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
