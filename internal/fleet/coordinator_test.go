package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dls"
	"repro/hdls"
	"repro/internal/serve"
)

// startWorker launches one real hdlsd worker (handler over a TCP server so
// flushing, chunking and connection aborts behave like production).
func startWorker(t *testing.T, opt serve.Options) *httptest.Server {
	t.Helper()
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	s, err := serve.NewWithError(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("worker drain: %v", err)
		}
	})
	return ts
}

// newCoordinator builds a Coordinator over the given workers with
// test-friendly timings; mut tweaks the options before construction. The
// backoff sleep is stubbed to record requested delays without waiting, so
// retry storms resolve in microseconds while the schedule stays checkable.
func newCoordinator(t *testing.T, workers []string, mut func(*Options)) (*Coordinator, *httptest.Server, *[]time.Duration) {
	t.Helper()
	opt := Options{
		Workers:     workers,
		MaxAttempts: 4,
		CellTimeout: 30 * time.Second,
	}
	if mut != nil {
		mut(&opt)
	}
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	slept := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*slept = append(*slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts, slept
}

// fleetCell is a cheap distinct cell; seeds and techniques vary so a sweep
// spreads across the ring.
func fleetCell(seed int64) hdls.Config {
	inters := []dls.Technique{dls.STATIC, dls.GSS, dls.TSS, dls.FAC2}
	return hdls.Config{
		Nodes: 2, WorkersPerNode: 4, Inter: inters[int(seed)%len(inters)],
		Intra: dls.STATIC, Approach: hdls.MPIMPI, Seed: seed,
		Workload: "constant:n=256",
	}
}

// mixedCells returns n distinct cells of which at least minVictim are
// ring-homed on worker victim. httptest ports differ run to run, so the
// routing is re-derived per run; scanning seeds keeps the guarantee
// deterministic by construction rather than probabilistic.
func mixedCells(t *testing.T, c *Coordinator, n, victim, minVictim int) []hdls.Config {
	t.Helper()
	cells := make([]hdls.Config, 0, n)
	owned := 0
	for seed := int64(1); len(cells) < n; seed++ {
		cfg := fleetCell(seed)
		if c.ring.Owner(cfg.HashKey()) == victim {
			owned++
		}
		cells = append(cells, cfg)
	}
	for seed := int64(10000); owned < minVictim; seed++ {
		if seed > 200000 {
			t.Fatal("could not find enough victim-owned cells")
		}
		cfg := fleetCell(seed)
		if c.ring.Owner(cfg.HashKey()) != victim {
			continue
		}
		for i := range cells {
			if c.ring.Owner(cells[i].HashKey()) != victim {
				cells[i] = cfg
				owned++
				break
			}
		}
	}
	if owned < minVictim {
		t.Fatalf("only %d victim-owned cells, want >= %d", owned, minVictim)
	}
	return cells
}

func postSweep(t *testing.T, url string, cells []hdls.Config) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	// ?stream=1 so a plain worker streams too; the coordinator always does.
	resp, err := http.Post(url+"/v1/sweep?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read sweep body: %v", err)
	}
	return resp, b
}

// expectedStream computes the ground-truth NDJSON body straight from the
// library: hdls.RunSummary is deterministic, so the whole fleet — however
// many workers, retries and re-routes were involved — must reproduce these
// exact bytes.
func expectedStream(t *testing.T, cells []hdls.Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, cfg := range cells {
		sum, err := hdls.RunSummary(cfg)
		if err != nil {
			t.Fatalf("ground-truth cell %d: %v", i, err)
		}
		sumJSON, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(serve.CellLine(i, cfg.Hash(), sumJSON))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestFleetSweepByteIdentical is the core acceptance property: a sweep
// through coordinator + 3 workers produces a body byte-identical to both a
// single daemon and the library ground truth.
func TestFleetSweepByteIdentical(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	w2 := startWorker(t, serve.Options{})
	w3 := startWorker(t, serve.Options{})
	c, ts, _ := newCoordinator(t, []string{w1.URL, w2.URL, w3.URL}, nil)

	cells := make([]hdls.Config, 64)
	for i := range cells {
		cells[i] = fleetCell(int64(i + 1))
	}
	resp, fleetBody := postSweep(t, ts.URL, cells)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep: status %d: %s", resp.StatusCode, fleetBody)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	single := startWorker(t, serve.Options{Workers: 4})
	sresp, singleBody := postSweep(t, single.URL, cells)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("single-daemon sweep: status %d", sresp.StatusCode)
	}
	if !bytes.Equal(fleetBody, singleBody) {
		t.Fatalf("fleet body differs from single daemon:\nfleet:  %.200s\nsingle: %.200s", fleetBody, singleBody)
	}
	if want := expectedStream(t, cells); !bytes.Equal(fleetBody, want) {
		t.Fatal("fleet body differs from library ground truth")
	}

	// The sweep actually sharded: more than one worker saw cells, and the
	// clean path needed no retries.
	owners := map[int]bool{}
	for _, cfg := range cells {
		owners[c.ring.Owner(cfg.HashKey())] = true
	}
	if len(owners) < 2 {
		t.Errorf("64 cells all landed on one worker; ring placement suspect")
	}
	if got := c.retries.Load(); got != 0 {
		t.Errorf("clean sweep recorded %d retries", got)
	}
	if got := c.cells.Load(); got != 64 {
		t.Errorf("merged cell count = %d, want 64", got)
	}
}

// chaosRecoveryCase exercises one injected failure mode on one worker and
// requires the merged response to stay byte-identical anyway.
func chaosRecoveryCase(t *testing.T, chaos string, mut func(*Options)) *Coordinator {
	t.Helper()
	w1 := startWorker(t, serve.Options{})
	w2 := startWorker(t, serve.Options{Chaos: chaos}) // the victim
	w3 := startWorker(t, serve.Options{})
	c, ts, _ := newCoordinator(t, []string{w1.URL, w2.URL, w3.URL}, mut)

	cells := mixedCells(t, c, 24, 1, 4)
	resp, fleetBody := postSweep(t, ts.URL, cells)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep under %q: status %d: %s", chaos, resp.StatusCode, fleetBody)
	}
	if want := expectedStream(t, cells); !bytes.Equal(fleetBody, want) {
		t.Fatalf("sweep under %q not byte-identical to ground truth:\ngot:  %.300s\nwant: %.300s",
			chaos, fleetBody, want)
	}
	if got := c.retries.Load(); got == 0 {
		t.Errorf("chaos %q: recovery involved no retries — injection never fired", chaos)
	}
	return c
}

// TestFleetRecoversFromDrop: the victim severs every connection (the
// closest chaos analogue of a SIGKILLed worker). With a 1-failure breaker
// the victim trips on first contact and its cells re-route to successors.
func TestFleetRecoversFromDrop(t *testing.T) {
	c := chaosRecoveryCase(t, "drop", func(o *Options) {
		o.BreakerFailures = 1
		o.BreakerCooldown = time.Hour
	})
	if got := c.workers[1].breaker.State(); got != BreakerOpen {
		t.Errorf("victim breaker = %v, want open", got)
	}
	if got := c.reroutes.Load(); got == 0 {
		t.Error("no re-routes recorded for a dead worker")
	}
	if got := c.workers[1].breaker.Opens(); got != 1 {
		t.Errorf("victim breaker opens = %d, want 1", got)
	}
}

// TestFleetRecoversFromTruncation: the victim streams one good line then
// aborts mid-body. The coordinator must keep the delivered prefix, re-route
// only the unresolved suffix, and still merge byte-identical output.
func TestFleetRecoversFromTruncation(t *testing.T) {
	c := chaosRecoveryCase(t, "truncate:lines=1,times=1", nil)
	if got := c.streamBreaks.Load(); got == 0 {
		t.Error("truncation did not register as a stream break")
	}
}

// TestFleetRecoversFromInjected500: the victim answers HTTP 500 once; the
// retry (per backoff schedule) succeeds — on the victim or a successor.
func TestFleetRecoversFromInjected500(t *testing.T) {
	chaosRecoveryCase(t, "error:code=500,times=1", nil)
}

// TestFleetRecoversFromDelay: the victim stalls each request beyond the
// per-cell deadline, so the coordinator abandons its streams and re-routes.
func TestFleetRecoversFromDelay(t *testing.T) {
	// Keep the injected stall short: the victim's handler still runs it to
	// completion server-side, and worker teardown waits for that.
	c := chaosRecoveryCase(t, "delay:d=1s", func(o *Options) {
		o.CellTimeout = 100 * time.Millisecond
		o.BreakerFailures = 1
		o.BreakerCooldown = time.Hour
	})
	if got := c.streamBreaks.Load(); got == 0 {
		t.Error("deadline overruns did not register as stream breaks")
	}
}

// TestFleetShedsWhenNoWorkerAvailable: with every breaker open the
// coordinator degrades gracefully — 503 + Retry-After on submissions,
// not-ready on /readyz, and the shed is counted.
func TestFleetShedsWhenNoWorkerAvailable(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	c, ts, _ := newCoordinator(t, []string{w1.URL}, func(o *Options) {
		o.BreakerFailures = 1
		o.BreakerCooldown = time.Hour
	})
	c.workers[0].breaker.Fail() // trip it

	resp, body := postSweep(t, ts.URL, []hdls.Config{fleetCell(1)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep with dead fleet: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 is missing the Retry-After hint")
	}
	if got := c.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet: %d %s", rresp.StatusCode, b)
	}
	if !bytes.Contains(b, []byte(`"open"`)) {
		t.Errorf("readyz body does not show the open breaker: %s", b)
	}

	// Liveness is unaffected: the coordinator process itself is fine.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with dead fleet: %d, want 200", hresp.StatusCode)
	}
}

// TestProbeRecovery: a tripped breaker recovers through the active health
// probe (the probe is the half-open trial), without sacrificing any sweep
// traffic to an unproven worker.
func TestProbeRecovery(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	c, ts, _ := newCoordinator(t, []string{w1.URL}, func(o *Options) {
		o.BreakerFailures = 1
		o.BreakerCooldown = time.Millisecond
	})
	c.workers[0].breaker.Fail()
	if c.workers[0].breaker.State() == BreakerClosed {
		t.Fatal("breaker did not trip")
	}
	time.Sleep(5 * time.Millisecond) // let the cooldown elapse
	c.ProbeOnce(context.Background())
	if got := c.workers[0].breaker.State(); got != BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
	if c.probes.Load() == 0 {
		t.Error("probe counter did not move")
	}

	// And the recovered fleet serves again.
	resp, body := postSweep(t, ts.URL, []hdls.Config{fleetCell(1)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery sweep: status %d: %s", resp.StatusCode, body)
	}
}

// TestBackoffSchedule pins the retry delay law: attempt k waits
// base·2^(k-1) jittered to [d/2, d), capped at max — and the jitter stream
// is seeded, so two coordinators with the same seed agree.
func TestBackoffSchedule(t *testing.T) {
	mk := func() *Coordinator {
		c, err := New(Options{
			Workers:     []string{"http://unused:1"},
			BackoffBase: 100 * time.Millisecond,
			BackoffMax:  time.Second,
			JitterSeed:  42,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	c1, c2 := mk(), mk()
	for attempt := 1; attempt <= 10; attempt++ {
		d1, d2 := c1.backoff(attempt), c2.backoff(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: seeded jitter diverged (%s vs %s)", attempt, d1, d2)
		}
		ceil := 100 * time.Millisecond
		for i := 1; i < attempt && ceil < time.Second; i++ {
			ceil *= 2
		}
		if ceil > time.Second {
			ceil = time.Second
		}
		if d1 < ceil/2 || d1 >= ceil {
			t.Errorf("attempt %d: backoff %s outside [%s, %s)", attempt, d1, ceil/2, ceil)
		}
	}
}

// TestFleetRunRelay: /v1/run through the coordinator relays the worker
// response verbatim — bodies byte-identical to a direct worker call, cache
// headers preserved, and deterministic routing means the second call hits
// the same worker's cache.
func TestFleetRunRelay(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	w2 := startWorker(t, serve.Options{})
	_, ts, _ := newCoordinator(t, []string{w1.URL, w2.URL}, nil)

	cfg := fleetCell(7)
	body, _ := json.Marshal(cfg)
	post := func(url string) (*http.Response, []byte) {
		resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp1, b1 := post(ts.URL)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("fleet run: %d %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first fleet run X-Cache = %q, want miss", got)
	}
	if resp1.Header.Get("X-Fleet-Worker") == "" {
		t.Error("X-Fleet-Worker header missing")
	}
	resp2, b2 := post(ts.URL)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second fleet run X-Cache = %q, want hit (routing not sticky?)", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("fleet run bodies not byte-identical across cache hit")
	}

	// Ground truth: a standalone daemon produces the same body.
	single := startWorker(t, serve.Options{})
	_, b3 := post(single.URL)
	if !bytes.Equal(b1, b3) {
		t.Fatalf("fleet run body differs from single daemon:\n%s\n%s", b1, b3)
	}

	// Validation failures are the coordinator's own 400s (no worker hop).
	bad, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"nodes":-3}`))
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := io.ReadAll(bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config through fleet: %d %s", bad.StatusCode, bb)
	}
}

// TestFleetSweepValidation: the coordinator rejects malformed sweeps with
// the same 400 shape a worker would, before any shard is dispatched.
func TestFleetSweepValidation(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	_, ts, _ := newCoordinator(t, []string{w1.URL}, func(o *Options) { o.MaxCells = 4 })
	for name, body := range map[string]string{
		"empty cells":    `{"cells":[]}`,
		"unknown field":  `{"cellz":[]}`,
		"over max cells": `{"cells":[{},{},{},{},{}]}`,
		"invalid cell":   `{"cells":[{"nodes":-1}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, b)
		}
	}
}

// TestFleetMetricsAndDiscovery: the coordinator's /metrics carries the
// fleet counters and per-worker breaker gauge, and discovery endpoints
// proxy through.
func TestFleetMetricsAndDiscovery(t *testing.T) {
	w1 := startWorker(t, serve.Options{})
	_, ts, _ := newCoordinator(t, []string{w1.URL}, nil)

	resp, body := postSweep(t, ts.URL, []hdls.Config{fleetCell(3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"hdlsd_fleet_workers 1", "hdlsd_fleet_sweeps_total 1",
		"hdlsd_fleet_cells_total 1", "hdlsd_fleet_retries_total",
		"hdlsd_fleet_reroutes_total", "hdlsd_fleet_breaker_opens_total",
		"hdlsd_fleet_shed_total", "hdlsd_fleet_breaker_state{worker=",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("metrics missing %s", want)
		}
	}

	tresp, err := http.Get(ts.URL + "/v1/techniques")
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK || !bytes.Contains(tb, []byte("techniques")) {
		t.Errorf("techniques proxy: %d %s", tresp.StatusCode, tb)
	}
}

// TestStreamShardRejectsUnterminatedFinalLine pins the merge layer's
// NDJSON framing rule: a record is complete only with its newline. The
// fake worker emits cell 0 properly, then a fully parseable record for
// cell 1 whose newline never arrives before the connection closes — the
// signature of a worker dying mid-write. First-wins merging must not
// resolve cell 1 from it; the shard must fail with an unexpected-EOF so
// the cell re-routes.
func TestStreamShardRejectsUnterminatedFinalLine(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Cells []hdls.Config `json:"cells"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Cells) != 2 {
			t.Errorf("fake worker: bad shard request: %v", err)
			return
		}
		line := func(i int) []byte {
			b, _ := json.Marshal(map[string]any{
				"index": i, "hash": req.Cells[i].Hash(),
				"summary": map[string]any{"fake": i},
			})
			return b
		}
		w.Write(line(0))
		w.Write([]byte{'\n'})
		w.Write(line(1)) // complete JSON, no trailing newline
	}))
	defer fake.Close()

	c, err := New(Options{Workers: []string{fake.URL}, CellTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := make([]*cellWork, 2)
	for i := range batch {
		cfg := fleetCell(int64(i + 1))
		batch[i] = &cellWork{index: i, cfg: cfg, hash: cfg.Hash()}
	}
	mg := newMerge(2)
	unresolved, _, err := c.streamShard(context.Background(), 0, batch, "", shardMeta{}, mg)
	if len(unresolved) != 1 || unresolved[0] != batch[1] {
		t.Fatalf("unresolved = %v, want exactly the unterminated cell", unresolved)
	}
	if err == nil || !strings.Contains(err.Error(), "missing its newline") {
		t.Fatalf("shard error = %v, want the unterminated-line rejection", err)
	}
	mg.mu.Lock()
	resolved0, resolved1 := mg.lines[0] != nil, mg.lines[1] != nil
	mg.mu.Unlock()
	if !resolved0 {
		t.Error("the properly terminated cell 0 did not resolve")
	}
	if resolved1 {
		t.Error("cell 1 resolved from a record the worker never finished")
	}
}

// TestFleetRecoversFromUnterminatedLine wires X-Chaos through a
// coordinator sweep: every worker is armed header-only, and the submission
// asks first-attempt shard streams to die right before their second
// line's newline (truncate bytes=-1). The coordinator forwards the header
// on initial placement only, so retries run clean: the merged body must
// stay byte-identical and the truncations must register as stream breaks.
func TestFleetRecoversFromUnterminatedLine(t *testing.T) {
	w1 := startWorker(t, serve.Options{Chaos: "header"})
	w2 := startWorker(t, serve.Options{Chaos: "header"})
	w3 := startWorker(t, serve.Options{Chaos: "header"})
	c, ts, _ := newCoordinator(t, []string{w1.URL, w2.URL, w3.URL}, nil)

	cells := mixedCells(t, c, 24, 1, 4)
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep?stream=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Chaos", "truncate:lines=1,bytes=-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	fleetBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep under injected truncation: status %d: %s", resp.StatusCode, fleetBody)
	}
	if want := expectedStream(t, cells); !bytes.Equal(fleetBody, want) {
		t.Fatalf("sweep under injected truncation not byte-identical:\ngot:  %.300s\nwant: %.300s",
			fleetBody, want)
	}
	if got := c.streamBreaks.Load(); got == 0 {
		t.Error("unterminated lines did not register as stream breaks")
	}
	if got := c.retries.Load(); got == 0 {
		t.Error("recovery involved no retries — injection never fired")
	}
}
