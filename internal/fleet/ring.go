// Package fleet implements hdlsd's sharded-sweep coordinator: it
// partitions a sweep's cells across N worker daemons by consistent-hash
// routing on the canonical config hash, fans the shards out as streaming
// sweep requests with per-cell deadlines, retries failures with
// exponential backoff and deterministic jitter, re-routes cells from lost
// or breaker-tripped workers to their consistent-hash successors, and
// merges the worker streams back into strict index order — so the merged
// response body stays byte-identical to a single daemon running the same
// sweep (DESIGN.md §10).
//
// Robustness is the point: every worker has an active health probe feeding
// a circuit breaker (closed → open → half-open), capacity loss degrades
// gracefully (503 + Retry-After before unbounded queueing), and the
// worker-side chaos layer (internal/serve) lets tests provoke every
// failure mode — delay, 5xx, dropped connection, mid-stream truncation —
// deterministically.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring mapping 64-bit cell routing keys
// (hdls.Config.HashKey) to workers. Each worker owns Replicas virtual
// points; a key is served by the first point clockwise from it. Because
// the mapping depends only on (worker names, replicas, key), every
// coordinator instance routes a given cell to the same worker — per-worker
// result caches stay hot and disjoint — and removing a worker moves only
// that worker's arcs to its successors, leaving every other assignment
// untouched.
type Ring struct {
	workers []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker int // index into workers
}

// NewRing builds a ring over the given worker names with the given number
// of virtual points per worker (minimum 1; 64 is a good default).
func NewRing(workers []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	r := &Ring{workers: append([]string(nil), workers...)}
	r.points = make([]ringPoint, 0, len(workers)*replicas)
	for wi, name := range r.workers {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(name, v), worker: wi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes (vanishingly rare) tie-break on worker index so the
		// ring order is still a pure function of the worker list.
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// pointHash places virtual point v of a worker on the ring (FNV-64a over
// "name#v": fast, stable across processes, uniform enough for placement).
func pointHash(name string, v int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", name, v)
	return h.Sum64()
}

// Workers returns the ring's worker names in construction order.
func (r *Ring) Workers() []string { return r.workers }

// Successors returns every worker index in ring order starting from the
// owner of key: element 0 is the cell's home worker, element 1 the worker
// its arcs fall to if the home is lost, and so on. The slice is freshly
// allocated and always contains each worker exactly once.
func (r *Ring) Successors(key uint64) []int {
	out := make([]int, 0, len(r.workers))
	if len(r.points) == 0 {
		return out
	}
	seen := make([]bool, len(r.workers))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < len(r.points) && len(out) < len(r.workers); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

// Owner returns the index of the worker that owns key.
func (r *Ring) Owner(key uint64) int { return r.Successors(key)[0] }
