package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		// Spread keys over the space the way config hashes do: hash an
		// index, don't use it raw.
		keys[i] = pointHash(fmt.Sprintf("key-%d", i), 0)
	}
	return keys
}

func TestRingDeterministicAndComplete(t *testing.T) {
	workers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := NewRing(workers, 64)
	r2 := NewRing(workers, 64)
	counts := make([]int, len(workers))
	for _, key := range ringKeys(2000) {
		s1, s2 := r1.Successors(key), r2.Successors(key)
		if len(s1) != len(workers) {
			t.Fatalf("Successors returned %d workers, want %d", len(s1), len(workers))
		}
		seen := map[int]bool{}
		for i, wi := range s1 {
			if wi != s2[i] {
				t.Fatalf("ring not deterministic for key %d", key)
			}
			if seen[wi] {
				t.Fatalf("worker %d repeated in successor list", wi)
			}
			seen[wi] = true
		}
		counts[s1[0]]++
	}
	// 64 virtual points per worker keep the split rough but never
	// degenerate: every worker owns a real share of 2000 keys.
	for wi, n := range counts {
		if n < 200 {
			t.Errorf("worker %d owns only %d/2000 keys: placement degenerate (%v)", wi, n, counts)
		}
	}
}

// TestRingStabilityUnderWorkerLoss is the property the fleet's failure
// model rests on: removing one worker re-homes only that worker's keys —
// each to its ring successor — and leaves every other assignment alone, so
// a worker loss never invalidates the surviving workers' caches.
func TestRingStabilityUnderWorkerLoss(t *testing.T) {
	workers := []string{"http://a:1", "http://b:1", "http://c:1"}
	lost := 1 // drop b
	survivors := []string{workers[0], workers[2]}
	full := NewRing(workers, 64)
	reduced := NewRing(survivors, 64)
	// Map reduced-ring worker indices back to full-ring indices.
	toFull := []int{0, 2}

	moved := 0
	for _, key := range ringKeys(2000) {
		succ := full.Successors(key)
		newOwner := toFull[reduced.Owner(key)]
		if succ[0] != lost {
			if newOwner != succ[0] {
				t.Fatalf("key %d moved from surviving worker %d to %d", key, succ[0], newOwner)
			}
			continue
		}
		moved++
		// A lost worker's keys fall exactly to its next surviving successor.
		want := succ[1]
		if want == lost {
			want = succ[2]
		}
		if newOwner != want {
			t.Fatalf("key %d re-homed to %d, want ring successor %d", key, newOwner, want)
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed worker; test exercised nothing")
	}
}

func TestRingSingleWorker(t *testing.T) {
	r := NewRing([]string{"http://only:1"}, 8)
	for _, key := range ringKeys(50) {
		if got := r.Owner(key); got != 0 {
			t.Fatalf("single-worker ring routed key to %d", got)
		}
	}
}
