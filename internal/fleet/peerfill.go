package fleet

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/hdls"
	"repro/internal/castore"
)

// PeerFillOptions configures a worker's peer-fill hook.
type PeerFillOptions struct {
	// Peers lists the other workers' base URLs (e.g.
	// "http://host:9140"), excluding this worker itself. Order matters
	// only as ring identity: every worker must list a peer under the same
	// URL string for the ring arcs to agree.
	Peers []string
	// Replicas is the ring's virtual points per peer (default 64 —
	// matching the coordinator's default, so a worker probes exactly the
	// workers the coordinator routes the cell's hash to).
	Replicas int
	// Probes caps how many ring successors are asked per miss (default 2).
	// Probing is serial and stops at the first hit; deterministic results
	// make any copy as good as any other.
	Probes int
	// Timeout bounds each individual probe (default 500ms). Peer-fill is
	// an optimization: a slow peer must never cost more than a recompute.
	Timeout time.Duration
	// Client overrides the HTTP client used for probes (tests).
	Client *http.Client
}

// maxPeerBody caps a peer cache response; summaries are a few hundred
// bytes, so anything near this size is a broken or hostile peer.
const maxPeerBody = 4 << 20

// PeerFill builds a castore.PeerFetch that resolves misses from fleet
// peers: the cell hash's ring successors are probed via GET
// /v1/cache/{hash} until one returns the stored bytes. The ring is the
// same consistent-hash structure the coordinator shards by, so the first
// probe usually lands on the worker the coordinator would have routed the
// cell to — the one most likely to hold it.
//
// Peer-fill cannot violate byte reproducibility: results are pure
// functions of the canonical hash, a peer serves only bytes its own store
// verified (memory, or disk behind a checksum), and the endpoint is
// local-only on the peer side, so probes never chain. Any failure —
// timeout, non-200, oversized body — just falls through to the next
// successor and finally to local computation. Returns nil when Peers is
// empty (no hook, no probe cost).
func PeerFill(opt PeerFillOptions) castore.PeerFetch {
	if len(opt.Peers) == 0 {
		return nil
	}
	if opt.Replicas <= 0 {
		opt.Replicas = 64
	}
	if opt.Probes <= 0 {
		opt.Probes = 2
	}
	if opt.Probes > len(opt.Peers) {
		opt.Probes = len(opt.Peers)
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 500 * time.Millisecond
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	ring := NewRing(opt.Peers, opt.Replicas)
	return func(ctx context.Context, hash string) ([]byte, bool) {
		order := ring.Successors(hdls.HashKeyOf(hash))
		for _, wi := range order[:opt.Probes] {
			if body, ok := probePeer(ctx, client, opt.Peers[wi], hash, opt.Timeout); ok {
				return body, true
			}
			if ctx.Err() != nil {
				return nil, false
			}
		}
		return nil, false
	}
}

// probePeer asks one peer for one hash, bounded by timeout.
func probePeer(ctx context.Context, client *http.Client, base, hash string, timeout time.Duration) ([]byte, bool) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/v1/cache/"+hash, nil)
	if err != nil {
		return nil, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxPeerBody))
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody+1))
	if err != nil || len(body) == 0 || len(body) > maxPeerBody {
		return nil, false
	}
	return body, true
}
