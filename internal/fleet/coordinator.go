package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/hdls"
	"repro/internal/serve"
)

// Options configures a Coordinator.
type Options struct {
	// Workers lists the worker daemon base URLs (e.g. http://127.0.0.1:9101).
	// At least one is required; trailing slashes are trimmed.
	Workers []string
	// Replicas is the virtual points per worker on the consistent-hash ring
	// (default 64).
	Replicas int
	// MaxAttempts bounds the total tries per cell, initial dispatch included
	// (default 4). A cell that fails MaxAttempts times resolves to an
	// in-band NDJSON error line, never a broken stream.
	MaxAttempts int
	// BackoffBase is the pre-retry delay after the first failure; attempt k
	// waits BackoffBase·2^(k-1), jittered to [d/2, d), capped at BackoffMax
	// (defaults 25ms, 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter stream, so test schedules are
	// reproducible (default 1).
	JitterSeed int64
	// CellTimeout bounds the wait for each next result line of a worker
	// stream — a per-cell deadline, since workers stream cells in order
	// (default 60s). It also bounds /v1/run forwards and is the implicit
	// deadline for discovery proxying.
	CellTimeout time.Duration
	// BreakerFailures consecutive failures trip a worker's circuit breaker
	// open; BreakerCooldown later it admits one half-open trial
	// (defaults 3, 2s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// ProbeInterval enables active health probing of worker /readyz at this
	// period (0 disables; probes feed the breakers, so a recovered worker is
	// reclosed without sacrificing a live cell as the trial).
	ProbeInterval time.Duration
	// MaxCells bounds one sweep submission (default 4096).
	MaxCells int
	// DeadlineMargin is subtracted from a client's end-to-end deadline when
	// it is forwarded to workers (default 250ms): the worker must stop this
	// much earlier so its final lines still cross the network and merge
	// before the client's own deadline fires. Workers past the tightened
	// deadline resolve cells as frozen in-band "deadline exceeded" lines.
	DeadlineMargin time.Duration
	// MaxSweeps bounds concurrently coordinated sweeps; excess submissions
	// are shed with 503 + Retry-After (default 16).
	MaxSweeps int
	// Limits are the per-cell validation limits, matching the workers'
	// serve.Options so the coordinator 400s exactly what a worker would.
	// Zero fields take the serve defaults.
	Limits serve.Options
	// Client overrides the HTTP client used for worker traffic (tests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 64
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = 60 * time.Second
	}
	if o.BreakerFailures <= 0 {
		o.BreakerFailures = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.MaxCells <= 0 {
		o.MaxCells = 4096
	}
	if o.DeadlineMargin <= 0 {
		o.DeadlineMargin = 250 * time.Millisecond
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 16
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return o
}

// worker is one fleet member: its base URL and the circuit breaker that
// summarizes what the coordinator currently believes about it.
type worker struct {
	name    string
	breaker *Breaker
}

// Coordinator shards sweeps across a fleet of hdlsd workers and merges the
// result streams back into a byte-identical single-daemon response. See
// the package comment and DESIGN.md §10 for the failure model.
type Coordinator struct {
	opts    Options
	workers []*worker
	ring    *Ring
	mux     *http.ServeMux
	started time.Time

	sweepSem chan struct{}

	jitterMu sync.Mutex
	jitter   *rand.Rand

	// sleep is the backoff wait, injectable so retry tests run in
	// microseconds while still observing every requested delay.
	sleep func(ctx context.Context, d time.Duration) error
	// now is the clock behind Retry-After derivation, injectable for tests.
	now func() time.Time

	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once

	sweeps       atomic.Int64 // sweep submissions coordinated
	runs         atomic.Int64 // /v1/run forwards
	cells        atomic.Int64 // cell results merged (errors included)
	retries      atomic.Int64 // re-dispatched cell attempts
	reroutes     atomic.Int64 // retries that moved to a different worker
	cellFailures atomic.Int64 // cells resolved as error lines by the fleet
	shed         atomic.Int64 // submissions refused with 503
	streamBreaks atomic.Int64 // worker shard streams that failed mid-flight
	hintsHonored atomic.Int64 // retries whose backoff was floored by a worker Retry-After
	probes       atomic.Int64 // health probes sent
	probeFails   atomic.Int64 // health probes that failed
}

// New builds a Coordinator over the given workers and starts the health
// prober when Options.ProbeInterval is set. Call Close on shutdown.
func New(opt Options) (*Coordinator, error) {
	o := opt.withDefaults()
	if len(o.Workers) == 0 {
		return nil, errors.New("fleet: at least one worker URL is required")
	}
	c := &Coordinator{
		opts:      o,
		started:   time.Now(),
		sweepSem:  make(chan struct{}, o.MaxSweeps),
		jitter:    rand.New(rand.NewSource(o.JitterSeed)),
		sleep:     sleepCtx,
		now:       time.Now,
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	names := make([]string, 0, len(o.Workers))
	for _, u := range o.Workers {
		name := strings.TrimRight(strings.TrimSpace(u), "/")
		if name == "" {
			return nil, errors.New("fleet: empty worker URL")
		}
		names = append(names, name)
		c.workers = append(c.workers, &worker{
			name:    name,
			breaker: NewBreaker(o.BreakerFailures, o.BreakerCooldown),
		})
	}
	c.ring = NewRing(names, o.Replicas)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/run", c.handleRun)
	c.mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	c.mux.HandleFunc("GET /v1/techniques", c.proxyDiscovery)
	c.mux.HandleFunc("GET /v1/workloads", c.proxyDiscovery)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	if o.ProbeInterval > 0 {
		go c.probeLoop(o.ProbeInterval)
	} else {
		close(c.probeDone)
	}
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the health prober. In-flight sweeps are not interrupted.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.probeStop) })
	<-c.probeDone
}

// sleepCtx waits d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoff computes the jittered pre-retry delay after `attempt` failed
// attempts: base·2^(attempt-1) capped at max, then jittered to [d/2, d) so
// simultaneous retries against a recovering worker spread out. The jitter
// stream is seeded (Options.JitterSeed): the schedule is reproducible.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase
	for i := 1; i < attempt && d < c.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	c.jitterMu.Lock()
	f := c.jitter.Float64()
	c.jitterMu.Unlock()
	half := d / 2
	return half + time.Duration(f*float64(half))
}

// pickWorker returns the first worker in succ order (rotated by offset)
// whose breaker admits traffic, or -1 when every breaker refuses. The
// rotation makes attempt k of a cell start from its k-th ring successor,
// so retries walk away from the failing worker instead of hammering it.
func (c *Coordinator) pickWorker(succ []int, offset int) int {
	n := len(succ)
	for i := 0; i < n; i++ {
		wi := succ[(offset+i)%n]
		if c.workers[wi].breaker.Allow() {
			return wi
		}
	}
	return -1
}

// anyAvailable reports whether some worker's breaker would admit traffic,
// without consuming a half-open trial slot.
func (c *Coordinator) anyAvailable() bool {
	for _, wk := range c.workers {
		if wk.breaker.Available() {
			return true
		}
	}
	return false
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(append(body, '\n'))
}

// retryAfterSeconds mirrors the workers' back-pressure hint on capacity
// sheds (sweep limit reached, or a worker is ready right now and the
// failure was transient). Breaker-driven refusals derive a sharper hint
// from the actual half-open deadlines instead — see retryAfter.
const retryAfterSeconds = "2"

// retryAfter derives the Retry-After hint for a breaker-driven refusal:
// the earliest moment any worker's breaker re-admits traffic (its half-open
// deadline), rounded up to whole seconds and floored at 1 so the hint never
// tells clients to hammer immediately. When some breaker already admits
// traffic the refusal wasn't breaker-bound, and the workers' own
// back-pressure default applies.
func (c *Coordinator) retryAfter() string {
	var earliest time.Time
	for _, wk := range c.workers {
		at := wk.breaker.ReadyAt()
		if at.IsZero() {
			return retryAfterSeconds
		}
		if earliest.IsZero() || at.Before(earliest) {
			earliest = at
		}
	}
	secs := int64(math.Ceil(earliest.Sub(c.now()).Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// maxStreamLine bounds one worker NDJSON line (same cap the scanner-based
// reader enforced); longer lines are a protocol violation.
const maxStreamLine = 4 << 20

// maxRetryAfterFloor caps how long a worker's Retry-After hint can stretch
// a retry's backoff: the hint is honored as a floor (hammering a worker
// that told us when to come back wastes both ends), but a confused or
// hostile worker must not be able to park a sweep for minutes.
const maxRetryAfterFloor = 30 * time.Second

// parseRetryAfter extracts a delta-seconds Retry-After hint (the only form
// hdlsd emits); absent or malformed headers yield zero.
func parseRetryAfter(h http.Header) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h.Get("Retry-After")))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// shardMeta carries a sweep's cross-cutting request attributes through
// dispatch and retries. Unlike chaos (first attempt only), these ride on
// every attempt: the deadline is the client's end-to-end bound and the
// client key is what the workers' per-client admission budget charges.
type shardMeta struct {
	client   string
	deadline time.Time // already tightened by DeadlineMargin; zero = none
}

// apply stamps the metadata onto an outgoing worker request.
func (sm shardMeta) apply(req *http.Request) {
	if sm.client != "" {
		req.Header.Set("X-Client", sm.client)
	}
	if !sm.deadline.IsZero() {
		req.Header.Set("X-Deadline", sm.deadline.UTC().Format(time.RFC3339Nano))
	}
}

// cellWork is one cell's routing state while its sweep is in flight.
type cellWork struct {
	index int         // global index in the sweep
	cfg   hdls.Config // the cell, re-marshaled for worker dispatch
	hash  string      // canonical config hash (authoritative: computed here)
	succ  []int       // ring successor order for this cell's routing key
}

// merge reassembles per-cell lines into strict sweep order: deliver is
// first-wins per cell (a timed-out shard and its retry may both resolve a
// cell — with identical bytes, since summaries are pure functions of the
// config), wait blocks until cell i resolves or ctx cancels.
type merge struct {
	mu    sync.Mutex
	lines [][]byte
	ready []chan struct{}
}

func newMerge(n int) *merge {
	m := &merge{lines: make([][]byte, n), ready: make([]chan struct{}, n)}
	for i := range m.ready {
		m.ready[i] = make(chan struct{})
	}
	return m
}

func (m *merge) deliver(i int, line []byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lines[i] != nil {
		return false
	}
	m.lines[i] = line
	close(m.ready[i])
	return true
}

func (m *merge) wait(ctx context.Context, i int) ([]byte, error) {
	select {
	case <-m.ready[i]:
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.lines[i], nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// handleSweep validates the sweep exactly like a worker would, shards the
// cells across the fleet by consistent hash, and streams the merged NDJSON
// in strict index order. The response is always a stream (the coordinator
// keeps no job store), and its body is byte-identical to a single daemon
// running the same sweep, whatever routing, retries, or worker losses
// happened along the way.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Cells []hdls.Config `json:"cells"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep request: %v", err)
		return
	}
	if len(req.Cells) == 0 {
		httpError(w, http.StatusBadRequest, "sweep needs at least one cell")
		return
	}
	if len(req.Cells) > c.opts.MaxCells {
		httpError(w, http.StatusBadRequest, "sweep of %d cells exceeds the %d-cell limit",
			len(req.Cells), c.opts.MaxCells)
		return
	}
	for i, cfg := range req.Cells {
		if err := c.opts.Limits.CheckCell(cfg); err != nil {
			httpError(w, http.StatusBadRequest, "cell %d: %v", i, err)
			return
		}
	}
	deadline, err := serve.ParseDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Graceful degradation: refuse up front — with a Retry-After hint —
	// rather than queueing unboundedly against a dead fleet or coordinating
	// more sweeps than configured.
	if !c.anyAvailable() {
		c.shed.Add(1)
		w.Header().Set("Retry-After", c.retryAfter())
		httpError(w, http.StatusServiceUnavailable, "no fleet worker is available")
		return
	}
	select {
	case c.sweepSem <- struct{}{}:
	default:
		c.shed.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds)
		httpError(w, http.StatusServiceUnavailable, "coordinator at its %d-sweep limit", c.opts.MaxSweeps)
		return
	}
	defer func() { <-c.sweepSem }()
	c.sweeps.Add(1)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	work := make([]*cellWork, len(req.Cells))
	for i, cfg := range req.Cells {
		work[i] = &cellWork{
			index: i,
			cfg:   cfg,
			hash:  cfg.Hash(),
			succ:  c.ring.Successors(cfg.HashKey()),
		}
	}
	// Initial placement: each cell goes to its ring home unless that home's
	// breaker refuses, in which case it starts life on a successor (this is
	// the proactive re-route of cells owned by a known-lost worker).
	batches := make(map[int][]*cellWork)
	for _, cw := range work {
		wi := c.pickWorker(cw.succ, 0)
		if wi < 0 {
			wi = cw.succ[0] // raced to all-open: dispatch will fail and retry
		}
		batches[wi] = append(batches[wi], cw)
	}

	// The client's X-Chaos header (if any) rides along on first-attempt
	// shard streams, so a fault can be injected through the coordinator at
	// armed workers while recovery still runs clean. The client key and the
	// margin-tightened deadline ride on every attempt (shardMeta).
	chaos := r.Header.Get("X-Chaos")
	meta := shardMeta{client: serve.ClientKey(r)}
	if !deadline.IsZero() {
		meta.deadline = deadline.Add(-c.opts.DeadlineMargin)
	}

	mg := newMerge(len(work))
	var wg sync.WaitGroup
	for wi, batch := range batches {
		wg.Add(1)
		go func(wi int, batch []*cellWork) {
			defer wg.Done()
			c.dispatch(ctx, wi, batch, 1, chaos, meta, mg)
		}(wi, batch)
	}
	// dispatch resolves every cell (result, worker error line, or fleet
	// error line), so draining the merge in order terminates; the deferred
	// cancel + Wait reap the shard goroutines if the client disconnects.
	defer wg.Wait()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for i := range work {
		line, err := mg.wait(r.Context(), i)
		if err != nil {
			return // client went away
		}
		w.Write(line)
		w.Write([]byte{'\n'})
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// dispatch runs one shard attempt against worker wi and recursively
// retries whatever it leaves unresolved, with exponential backoff, against
// each cell's next ring successor. It returns only once every cell in
// batch is resolved in the merge. attempt counts this try (1-based);
// wi < 0 means no worker would admit the batch this round. chaos is the
// submission's X-Chaos header, forwarded on first attempts only (so
// injected faults hit initial placement, never the recovery path).
func (c *Coordinator) dispatch(ctx context.Context, wi int, batch []*cellWork, attempt int, chaos string, meta shardMeta, mg *merge) {
	var unresolved []*cellWork
	var hint time.Duration
	var cause error
	if wi < 0 {
		unresolved, cause = batch, errors.New("no fleet worker is available")
	} else {
		unresolved, hint, cause = c.streamShard(ctx, wi, batch, chaos, meta, mg)
	}
	if len(unresolved) == 0 || ctx.Err() != nil {
		return
	}
	if attempt >= c.opts.MaxAttempts {
		// Out of attempts: resolve in-band so the merged stream stays
		// well-formed — a fleet-level failure is a per-cell error line,
		// exactly the shape a worker uses for its own cell failures.
		for _, cw := range unresolved {
			msg := fmt.Sprintf("fleet: cell failed after %d attempts: %v", attempt, cause)
			if mg.deliver(cw.index, serve.ErrorCellLine(cw.index, cw.hash, msg)) {
				c.cells.Add(1)
				c.cellFailures.Add(1)
			}
		}
		return
	}
	c.retries.Add(int64(len(unresolved)))
	// A worker's Retry-After is the floor for this attempt's backoff: the
	// worker told us exactly when it expects to have capacity, and coming
	// back earlier just buys another shed. Capped, so a bad hint cannot
	// park the sweep (maxRetryAfterFloor).
	delay := c.backoff(attempt)
	if hint > delay {
		if hint > maxRetryAfterFloor {
			hint = maxRetryAfterFloor
		}
		if hint > delay {
			delay = hint
			c.hintsHonored.Add(int64(len(unresolved)))
		}
	}
	if err := c.sleep(ctx, delay); err != nil {
		return
	}
	// Regroup by each cell's next successor: retries walk the ring away
	// from the failure, and cells sharing a destination share one stream.
	regrouped := make(map[int][]*cellWork)
	for _, cw := range unresolved {
		nwi := c.pickWorker(cw.succ, attempt)
		if nwi >= 0 && nwi != wi {
			c.reroutes.Add(1)
		}
		regrouped[nwi] = append(regrouped[nwi], cw)
	}
	var wg sync.WaitGroup
	for nwi, g := range regrouped {
		wg.Add(1)
		go func(nwi int, g []*cellWork) {
			defer wg.Done()
			c.dispatch(ctx, nwi, g, attempt+1, "", meta, mg)
		}(nwi, g)
	}
	wg.Wait()
}

// workerLine is one parsed NDJSON line from a worker stream.
type workerLine struct {
	Index   int             `json:"index"`
	Hash    string          `json:"hash"`
	Summary json.RawMessage `json:"summary"`
	Error   string          `json:"error"`
}

// streamShard POSTs batch as one streaming sweep to worker wi and resolves
// cells as their lines arrive, enforcing the per-cell deadline between
// lines. Success lines are rebuilt around the worker's summary bytes with
// the cell's global index and the coordinator's own hash — that rebuild is
// what keeps the merged body byte-identical to a single daemon, no matter
// which worker served which cell. Worker error lines are deterministic
// (the worker ran the cell and the cell itself failed), so they resolve
// the cell too, without a retry. Anything else — transport error, non-200,
// protocol violation, deadline, truncation — fails the worker's breaker
// and returns the unresolved suffix of the batch for re-routing, except a
// 429: admission shedding means the worker is healthy but full, so it
// keeps its breaker closed and instead surfaces the worker's Retry-After
// as the returned backoff hint (503s carry their hint too, alongside the
// breaker failure).
func (c *Coordinator) streamShard(ctx context.Context, wi int, batch []*cellWork, chaos string, meta shardMeta, mg *merge) ([]*cellWork, time.Duration, error) {
	wk := c.workers[wi]
	body, err := json.Marshal(struct {
		Cells []hdls.Config `json:"cells"`
	}{Cells: cellConfigs(batch)})
	if err != nil { // hdls.Config is plain data; cannot fail
		return batch, 0, err
	}
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, wk.name+"/v1/sweep?stream=1", bytes.NewReader(body))
	if err != nil {
		return batch, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if chaos != "" {
		req.Header.Set("X-Chaos", chaos)
	}
	meta.apply(req)
	// The per-cell deadline must also bound the connect/first-header phase:
	// a stalled worker would otherwise pin the shard inside Do indefinitely.
	connTimer := time.AfterFunc(c.opts.CellTimeout, cancel)
	resp, err := c.opts.Client.Do(req)
	connTimer.Stop()
	if err != nil {
		wk.breaker.Fail()
		c.streamBreaks.Add(1)
		return batch, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		hint := parseRetryAfter(resp.Header)
		if resp.StatusCode == http.StatusTooManyRequests {
			// Shed by admission policy: the worker is alive and telling us
			// when to come back. Tripping its breaker would amplify the
			// overload into a routing outage.
			return batch, hint, fmt.Errorf("worker %s shed the shard (HTTP 429)", wk.name)
		}
		wk.breaker.Fail()
		c.streamBreaks.Add(1)
		return batch, hint, fmt.Errorf("worker %s answered HTTP %d", wk.name, resp.StatusCode)
	}

	// A reader goroutine feeds lines through a channel so the per-cell
	// deadline is a select, not a blocking Read; cancel() unblocks it.
	lines := make(chan []byte)
	readErr := make(chan error, 1)
	go func() {
		// readErr (buffered) receives exactly one value before lines closes,
		// so the !ok branch below can always collect the cause. Lines are
		// read by their delimiter, not scanned: NDJSON records end with a
		// newline, so a final fragment without one is a truncation artifact
		// (the worker died mid-line) and must never surface as a line —
		// even when the fragment happens to parse, first-wins merging would
		// resolve its cell from a record the worker never finished.
		defer close(lines)
		br := bufio.NewReaderSize(resp.Body, 64<<10)
		for {
			b, err := br.ReadBytes('\n')
			if err != nil {
				switch {
				case err != io.EOF:
					readErr <- err
				case len(b) > 0:
					readErr <- fmt.Errorf("final line missing its newline: %w", io.ErrUnexpectedEOF)
				default:
					readErr <- nil // clean EOF; callers decide if it was early
				}
				return
			}
			if len(b) > maxStreamLine {
				readErr <- fmt.Errorf("stream line exceeds %d bytes", maxStreamLine)
				return
			}
			b = bytes.TrimRight(b, "\r\n")
			select {
			case lines <- b:
			case <-reqCtx.Done():
				readErr <- reqCtx.Err()
				return
			}
		}
	}()

	// fail marks the worker bad and cancels the in-flight request so the
	// reader goroutine unblocks; callers return the unresolved batch suffix.
	fail := func(err error) error {
		wk.breaker.Fail()
		c.streamBreaks.Add(1)
		cancel()
		return err
	}
	timer := time.NewTimer(c.opts.CellTimeout)
	defer timer.Stop()
	for next := 0; next < len(batch); next++ {
		cw := batch[next]
		timer.Reset(c.opts.CellTimeout)
		select {
		case <-reqCtx.Done():
			return batch[next:], 0, reqCtx.Err()
		case <-timer.C:
			return batch[next:], 0, fail(fmt.Errorf("worker %s: cell deadline %s exceeded", wk.name, c.opts.CellTimeout))
		case b, ok := <-lines:
			if !ok {
				// Stream ended before the shard's cells did: the worker died
				// mid-stream (SIGKILL, chaos drop/truncate, network loss).
				err := <-readErr
				if err == nil {
					err = io.ErrUnexpectedEOF
				}
				return batch[next:], 0, fail(fmt.Errorf("worker %s: stream truncated after %d/%d cells: %w",
					wk.name, next, len(batch), err))
			}
			var wl workerLine
			if err := json.Unmarshal(b, &wl); err != nil || wl.Index != next || wl.Hash != cw.hash {
				return batch[next:], 0, fail(fmt.Errorf("worker %s: protocol violation at shard cell %d", wk.name, next))
			}
			if wl.Error != "" {
				// The worker ran the cell and the cell failed: that outcome
				// is deterministic (same line a single daemon would emit),
				// so it resolves the cell — retrying would reproduce it.
				if mg.deliver(cw.index, serve.ErrorCellLine(cw.index, cw.hash, wl.Error)) {
					c.cells.Add(1)
					c.cellFailures.Add(1)
				}
				continue
			}
			if mg.deliver(cw.index, serve.CellLine(cw.index, cw.hash, wl.Summary)) {
				c.cells.Add(1)
			}
		}
	}
	wk.breaker.Success()
	return nil, 0, nil
}

// cellConfigs projects a batch back to the worker wire format.
func cellConfigs(batch []*cellWork) []hdls.Config {
	cfgs := make([]hdls.Config, len(batch))
	for i, cw := range batch {
		cfgs[i] = cw.cfg
	}
	return cfgs
}

// handleRun validates one cell and forwards it to its ring home (or, on
// failure, successive ring successors with backoff), relaying the worker
// response verbatim — /v1/run bodies are already a pure function of the
// config, so relaying preserves byte-identity and the X-Cache header.
func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	var cfg hdls.Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}
	if err := c.opts.Limits.CheckCell(cfg); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline, derr := serve.ParseDeadline(r)
	if derr != nil {
		httpError(w, http.StatusBadRequest, "%v", derr)
		return
	}
	meta := shardMeta{client: serve.ClientKey(r)}
	if !deadline.IsZero() {
		meta.deadline = deadline.Add(-c.opts.DeadlineMargin)
	}
	c.runs.Add(1)
	body, err := json.Marshal(cfg)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	relay := func(wk *worker, status int, hdr http.Header, respBody []byte) {
		for _, k := range []string{"Content-Type", "X-Cache", "X-Config-Hash", "Retry-After"} {
			if v := hdr.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
		w.Header().Set("X-Fleet-Worker", wk.name)
		w.WriteHeader(status)
		w.Write(respBody)
	}
	succ := c.ring.Successors(cfg.HashKey())
	var lastErr error = errors.New("no fleet worker is available")
	var hint time.Duration
	prev := -1
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			// As in dispatch: a worker's Retry-After floors the backoff.
			delay := c.backoff(attempt - 1)
			if hint > delay {
				if hint > maxRetryAfterFloor {
					hint = maxRetryAfterFloor
				}
				if hint > delay {
					delay = hint
					c.hintsHonored.Add(1)
				}
			}
			hint = 0
			if c.sleep(r.Context(), delay) != nil {
				return
			}
		}
		wi := c.pickWorker(succ, attempt-1)
		if wi < 0 {
			continue
		}
		if prev >= 0 && wi != prev {
			c.reroutes.Add(1)
		}
		prev = wi
		wk := c.workers[wi]
		status, hdr, respBody, err := c.forwardRun(r.Context(), wk, body, meta)
		switch {
		case err == nil && status == http.StatusTooManyRequests:
			// Shed by admission policy: the worker is healthy, so its
			// breaker stays closed; its Retry-After floors the next backoff
			// and a ring successor may have capacity right now.
			hint = parseRetryAfter(hdr)
			lastErr = fmt.Errorf("worker %s shed the run (HTTP 429)", wk.name)
			continue
		case err != nil || status >= 500:
			if err == nil && status == http.StatusGatewayTimeout {
				// The cell's deadline expired at the worker. Retrying with
				// an even-staler deadline cannot succeed; relay it.
				wk.breaker.Success()
				relay(wk, status, hdr, respBody)
				return
			}
			wk.breaker.Fail()
			hint = parseRetryAfter(hdr)
			lastErr = err
			if err == nil {
				lastErr = fmt.Errorf("worker %s answered HTTP %d", wk.name, status)
			}
			continue
		}
		wk.breaker.Success()
		relay(wk, status, hdr, respBody)
		return
	}
	c.shed.Add(1)
	w.Header().Set("Retry-After", c.retryAfter())
	httpError(w, http.StatusServiceUnavailable, "cell failed after %d attempts: %v", c.opts.MaxAttempts, lastErr)
}

// forwardRun POSTs one cell to a worker under the cell deadline, stamping
// the client key and margin-tightened end-to-end deadline.
func (c *Coordinator) forwardRun(ctx context.Context, wk *worker, body []byte, meta shardMeta) (int, http.Header, []byte, error) {
	reqCtx, cancel := context.WithTimeout(ctx, c.opts.CellTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, wk.name+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	meta.apply(req)
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// proxyDiscovery relays the static discovery endpoints (/v1/techniques,
// /v1/workloads) from the first worker that answers: they are identical on
// every worker, so any answer is the fleet's answer.
func (c *Coordinator) proxyDiscovery(w http.ResponseWriter, r *http.Request) {
	for _, wk := range c.workers {
		if !wk.breaker.Available() {
			continue
		}
		reqCtx, cancel := context.WithTimeout(r.Context(), c.opts.CellTimeout)
		req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, wk.name+r.URL.Path, nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := c.opts.Client.Do(req)
		if err != nil {
			cancel()
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if v := resp.Header.Get("Content-Type"); v != "" {
			w.Header().Set("Content-Type", v)
		}
		w.Write(body)
		return
	}
	httpError(w, http.StatusBadGateway, "no fleet worker answered %s", r.URL.Path)
}

// handleHealthz is the coordinator's liveness probe: 200 while the process
// answers HTTP, regardless of worker health (that is /readyz).
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"role\":\"coordinator\",\"uptime_seconds\":%.1f}\n",
		time.Since(c.started).Seconds())
}

// workerStatus is one /readyz row: a worker and its breaker position.
type workerStatus struct {
	Worker  string `json:"worker"`
	Breaker string `json:"breaker"`
}

// handleReadyz is the coordinator's readiness probe: ready while at least
// one worker's breaker admits traffic, 503 + Retry-After otherwise. The
// body lists every worker's breaker state either way, so a half-degraded
// fleet is visible before it becomes an outage.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	statuses := make([]workerStatus, len(c.workers))
	available := 0
	for i, wk := range c.workers {
		statuses[i] = workerStatus{Worker: wk.name, Breaker: wk.breaker.State().String()}
		if wk.breaker.Available() {
			available++
		}
	}
	status, code := "ready", http.StatusOK
	if available == 0 {
		status, code = "no-workers", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", c.retryAfter())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":            status,
		"role":              "coordinator",
		"workers":           len(c.workers),
		"workers_available": available,
		"fleet":             statuses,
	})
}

// handleMetrics exposes the coordinator's counters in the Prometheus text
// format: routing volume, retry/re-route pressure, breaker activity, shed
// traffic, and a per-worker breaker-state gauge.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	available := 0
	var opens int64
	for _, wk := range c.workers {
		if wk.breaker.Available() {
			available++
		}
		opens += wk.breaker.Opens()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	type metric struct {
		name, help, typ string
		value           float64
	}
	for _, m := range []metric{
		{"hdlsd_fleet_workers", "Configured fleet workers.", "gauge", float64(len(c.workers))},
		{"hdlsd_fleet_workers_available", "Workers whose breaker admits traffic.", "gauge", float64(available)},
		{"hdlsd_fleet_uptime_seconds", "Seconds since the coordinator started.", "gauge", time.Since(c.started).Seconds()},
		{"hdlsd_fleet_sweeps_total", "Sweep submissions coordinated.", "counter", float64(c.sweeps.Load())},
		{"hdlsd_fleet_runs_total", "Single-cell runs forwarded.", "counter", float64(c.runs.Load())},
		{"hdlsd_fleet_cells_total", "Cell results merged (error lines included).", "counter", float64(c.cells.Load())},
		{"hdlsd_fleet_retries_total", "Cell attempts re-dispatched after a failure.", "counter", float64(c.retries.Load())},
		{"hdlsd_fleet_reroutes_total", "Retries that moved to a different worker.", "counter", float64(c.reroutes.Load())},
		{"hdlsd_fleet_cell_failures_total", "Cells resolved as in-band error lines.", "counter", float64(c.cellFailures.Load())},
		{"hdlsd_fleet_stream_breaks_total", "Worker shard streams that failed mid-flight.", "counter", float64(c.streamBreaks.Load())},
		{"hdlsd_fleet_shed_total", "Submissions refused with 503 + Retry-After.", "counter", float64(c.shed.Load())},
		{"hdlsd_fleet_retry_after_honored_total", "Retries whose backoff was floored by a worker Retry-After hint.", "counter", float64(c.hintsHonored.Load())},
		{"hdlsd_fleet_breaker_opens_total", "Circuit-breaker trips across the fleet.", "counter", float64(opens)},
		{"hdlsd_fleet_probes_total", "Health probes sent.", "counter", float64(c.probes.Load())},
		{"hdlsd_fleet_probe_failures_total", "Health probes that failed.", "counter", float64(c.probeFails.Load())},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
	fmt.Fprintf(w, "# HELP hdlsd_fleet_breaker_state Worker breaker position (0 closed, 1 open, 2 half-open).\n# TYPE hdlsd_fleet_breaker_state gauge\n")
	for _, wk := range c.workers {
		fmt.Fprintf(w, "hdlsd_fleet_breaker_state{worker=%q} %d\n", wk.name, int(wk.breaker.State()))
	}
}
