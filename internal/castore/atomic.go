package castore

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic persists data at path with the store's crash-safe write
// discipline: write to a temp file in the destination directory, fsync it,
// then rename over the final name. Rename is atomic on POSIX filesystems,
// so a concurrent reader — or a crash at any instant — observes either no
// file or the complete bytes, never a torn write. The temp file carries
// the ".tmp-" prefix shared with the disk tier, so crash leftovers are
// recognizable and swept by the same startup cleanup. Exported because the
// serve layer's job journal (DESIGN.md §13) needs exactly this guarantee
// for its acceptance records.
func WriteFileAtomic(path string, data []byte) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+base+"-")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return nil
}

// TempFilePrefix is the prefix marking in-progress atomic writes
// (WriteFileAtomic temp files). Directories that persist atomic-write
// artifacts — the disk tier, the serve journal — skip and remove files
// with this prefix when scanning at startup: they are abandoned partials
// from a crash mid-write.
const TempFilePrefix = tmpPrefix
