package castore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// newFaultyTier opens a disk tier whose write seam fails with errFail
// whenever *failing is true, recording every attempted path.
func newFaultyTier(t *testing.T, failing *bool, attempts *int) *diskTier {
	t.Helper()
	d, err := openDiskTier(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	real := d.writeFile
	d.writeFile = func(path string, data []byte) error {
		*attempts++
		if *failing {
			return errors.New("injected: no space left on device")
		}
		return real(path, data)
	}
	return d
}

// TestDiskTierDisablesAfterConsecutiveWriteFailures pins the lockout
// policy: ENOSPC-style failures are counted per attempt, and after
// diskWriteFailureLimit consecutive failures the tier stops issuing
// writes entirely — disk is an accelerator, never a dependency, so a dead
// disk must cost a bounded number of failed syscalls, not one per cell
// forever. Reads of already-persisted entries keep working throughout.
func TestDiskTierDisablesAfterConsecutiveWriteFailures(t *testing.T) {
	failing := false
	attempts := 0
	d := newFaultyTier(t, &failing, &attempts)

	// A healthy write persists and is readable back.
	good := testHash("pre-fault")
	d.put(good, []byte(`{"ok":1}`))
	if got, ok := d.get(good); !ok || !bytes.Equal(got, []byte(`{"ok":1}`)) {
		t.Fatalf("pre-fault entry unreadable: %q %v", got, ok)
	}

	failing = true
	base := attempts
	for i := 0; i < diskWriteFailureLimit+10; i++ {
		d.put(testHash(fmt.Sprintf("fail-%d", i)), []byte("doomed"))
	}
	if got := attempts - base; got != diskWriteFailureLimit {
		t.Errorf("write attempts after fault = %d, want exactly %d (then lockout)",
			got, diskWriteFailureLimit)
	}
	if !d.disabled.Load() {
		t.Fatal("tier not disabled after consecutive failures")
	}
	if got := d.writeErrors.Load(); got != int64(diskWriteFailureLimit) {
		t.Errorf("writeErrors = %d, want %d", got, diskWriteFailureLimit)
	}
	if d.disabledDrops.Load() != 10 {
		t.Errorf("disabledDrops = %d, want 10", d.disabledDrops.Load())
	}

	// The disk recovering does not re-enable the tier (lockout is for the
	// process lifetime), and reads still serve persisted entries.
	failing = false
	d.put(testHash("post-lockout"), []byte("still dropped"))
	if attempts != base+diskWriteFailureLimit {
		t.Error("disabled tier issued a write")
	}
	if got, ok := d.get(good); !ok || !bytes.Equal(got, []byte(`{"ok":1}`)) {
		t.Errorf("read-after-lockout broken: %q %v", got, ok)
	}
}

// TestDiskTierWriteFailureCounterResets pins that intermittent failures
// below the consecutive limit never trip the lockout: one success resets
// the budget.
func TestDiskTierWriteFailureCounterResets(t *testing.T) {
	failing := false
	attempts := 0
	d := newFaultyTier(t, &failing, &attempts)

	for round := 0; round < 3; round++ {
		failing = true
		for i := 0; i < diskWriteFailureLimit-1; i++ {
			d.put(testHash(fmt.Sprintf("flaky-%d-%d", round, i)), []byte("x"))
		}
		failing = false
		d.put(testHash(fmt.Sprintf("ok-%d", round)), []byte("y"))
	}
	if d.disabled.Load() {
		t.Fatal("intermittent failures below the limit tripped the lockout")
	}
	if got := d.writeErrors.Load(); got != int64(3*(diskWriteFailureLimit-1)) {
		t.Errorf("writeErrors = %d, want %d", got, 3*(diskWriteFailureLimit-1))
	}
}

// TestStoreStatsReportDiskDisabled pins the surfaced health signal: the
// store's Stats (and through them /metrics) must expose the lockout and
// fold disabled-tier drops into the write-drop counter.
func TestStoreStatsReportDiskDisabled(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MemEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fail := errors.New("injected write failure")
	s.disk.writeFile = func(string, []byte) error { return fail }

	for i := 0; i < diskWriteFailureLimit+3; i++ {
		s.put(testHash(fmt.Sprintf("stats-%d", i)), []byte("z"))
	}
	// puts are async through the writer goroutine; wait for it to drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().PendingWrites > 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never drained")
		}
		time.Sleep(time.Millisecond)
	}
	st := s.Stats()
	if !st.DiskDisabled {
		t.Fatal("Stats.DiskDisabled not set after lockout")
	}
	if st.DiskWriteErrors != int64(diskWriteFailureLimit) {
		t.Errorf("DiskWriteErrors = %d, want %d", st.DiskWriteErrors, diskWriteFailureLimit)
	}
	if st.DiskWriteDrops != 3 {
		t.Errorf("DiskWriteDrops = %d, want 3", st.DiskWriteDrops)
	}
}

// TestWriteFileAtomicLeavesNoPartials pins the exported helper's contract:
// the destination appears complete or not at all, temp debris is cleaned
// on failure, and the temp prefix matches what startup scans sweep.
func TestWriteFileAtomicLeavesNoPartials(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "record.json")
	if err := WriteFileAtomic(path, []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte(`{"a":1}`)) {
		t.Fatalf("read back: %q %v", got, err)
	}
	// Overwrite is atomic too.
	if err := WriteFileAtomic(path, []byte(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); !bytes.Equal(got, []byte(`{"a":2}`)) {
		t.Fatalf("overwrite read back %q", got)
	}
	// A failing write (unwritable directory) must not leave temp files.
	bad := filepath.Join(dir, "no-such-subdir", "x")
	if err := WriteFileAtomic(bad, []byte("y")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "record.json" {
			t.Errorf("unexpected debris %q", e.Name())
		}
	}
	if TempFilePrefix != tmpPrefix {
		t.Errorf("TempFilePrefix %q drifted from the disk tier's %q", TempFilePrefix, tmpPrefix)
	}
}
