package castore

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Disk-tier file format: a fixed 16-byte header followed by the frozen
// summary bytes. The header carries a magic, the payload length, and a
// CRC-32C of the payload, so a torn write (crash mid-rename never produces
// one — see writeEntry — but a corrupted sector can) is detected on read
// and treated as a miss instead of ever surfacing altered bytes. DESIGN.md
// §12 has the full crash/corruption story.
const (
	diskMagic      = "HDLSCAS1"
	diskHeaderSize = len(diskMagic) + 4 + 4 // magic + u32 length + u32 crc
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// diskEntry is the in-memory index record of one on-disk result file.
type diskEntry struct {
	hash string
	size int64
}

// diskTier is the persistent tier: one checksummed file per canonical
// config hash under dir, with an in-memory LRU index (rebuilt from file
// mtimes at startup) enforcing the byte cap. All mutation goes through mu;
// reads copy the file into a fresh slice, so returned bytes are immune to
// later eviction.
type diskTier struct {
	dir string
	max int64

	// writeFile persists framed bytes with the atomic temp+fsync+rename
	// discipline. A seam (defaults to WriteFileAtomic) so fault tests can
	// inject ENOSPC-style failures without filling a real filesystem.
	writeFile func(path string, data []byte) error

	mu    sync.Mutex
	order *list.List // front = most recently used
	items map[string]*list.Element
	total int64

	corruptions atomic.Int64
	evictions   atomic.Int64
	writeErrors atomic.Int64

	// consecFails counts consecutive put failures; at diskWriteFailureLimit
	// the tier flips disabled and stays off for the process lifetime. Disk
	// is an accelerator, never a dependency: a dying disk (ENOSPC, pulled
	// mount, permissions) must cost bounded error handling, not an error
	// per cell forever. Reads keep working — entries already persisted stay
	// servable. disabledDrops counts the writes skipped while disabled.
	consecFails   atomic.Int64
	disabled      atomic.Bool
	disabledDrops atomic.Int64
}

// diskWriteFailureLimit is the consecutive-failure budget before the tier
// stops attempting writes (see diskTier.disabled).
const diskWriteFailureLimit = 5

// openDiskTier scans dir (creating it if needed), removes stale temp
// files, and rebuilds the LRU index ordered by file modification time so
// recency survives restarts approximately. Unreadable entries are skipped;
// corruption is detected lazily on read.
func openDiskTier(dir string, max int64) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("castore: cache dir: %w", err)
	}
	d := &diskTier{
		dir:       dir,
		max:       max,
		writeFile: WriteFileAtomic,
		order:     list.New(),
		items:     make(map[string]*list.Element),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("castore: scan cache dir: %w", err)
	}
	type scanned struct {
		hash  string
		size  int64
		mtime time.Time
	}
	var found []scanned
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name)) // abandoned by a crash mid-write
			continue
		}
		if !isHexHash(name) || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{hash: name, size: info.Size(), mtime: info.ModTime()})
	}
	// Oldest first, so pushing each to the front leaves the newest as MRU.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	d.mu.Lock()
	for _, f := range found {
		d.items[f.hash] = d.order.PushFront(&diskEntry{hash: f.hash, size: f.size})
		d.total += f.size
	}
	d.evictOverCapLocked()
	d.mu.Unlock()
	return d, nil
}

// tmpPrefix marks in-progress writes; scanned and skipped at startup.
const tmpPrefix = ".tmp-"

// isHexHash reports whether name looks like a canonical config hash
// (lower-case hex SHA-256). Anything else in the cache dir is ignored.
func isHexHash(name string) bool {
	if len(name) != 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// get reads and verifies the entry for hash, refreshing its LRU position.
// A checksum or framing mismatch deletes the file and reports a miss: a
// corrupt entry must never replay altered bytes, and deterministic
// recomputation restores it for free.
func (d *diskTier) get(hash string) ([]byte, bool) {
	d.mu.Lock()
	el, ok := d.items[hash]
	if !ok {
		d.mu.Unlock()
		return nil, false
	}
	d.order.MoveToFront(el)
	d.mu.Unlock()

	path := filepath.Join(d.dir, hash)
	raw, err := os.ReadFile(path)
	if err != nil {
		// The file vanished under us (concurrent eviction); a plain miss.
		d.drop(hash)
		return nil, false
	}
	body, ok := decodeEntry(raw)
	if !ok {
		d.corruptions.Add(1)
		os.Remove(path)
		d.drop(hash)
		return nil, false
	}
	// Persist the recency refresh so LRU order survives restarts;
	// best-effort, the in-memory index is authoritative while we live.
	now := time.Now()
	os.Chtimes(path, now, now)
	return body, true
}

// decodeEntry verifies the header framing and payload checksum.
func decodeEntry(raw []byte) ([]byte, bool) {
	if len(raw) < diskHeaderSize || string(raw[:len(diskMagic)]) != diskMagic {
		return nil, false
	}
	length := binary.LittleEndian.Uint32(raw[len(diskMagic):])
	crc := binary.LittleEndian.Uint32(raw[len(diskMagic)+4:])
	body := raw[diskHeaderSize:]
	if uint32(len(body)) != length || crc32.Checksum(body, crcTable) != crc {
		return nil, false
	}
	return body, true
}

// encodeEntry frames body with the checksummed header.
func encodeEntry(body []byte) []byte {
	out := make([]byte, diskHeaderSize+len(body))
	copy(out, diskMagic)
	binary.LittleEndian.PutUint32(out[len(diskMagic):], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[len(diskMagic)+4:], crc32.Checksum(body, crcTable))
	copy(out[diskHeaderSize:], body)
	return out
}

// put persists body under hash via WriteFileAtomic (temp + fsync +
// rename), so a reader (or a crash) sees either no entry or the complete
// checksummed entry — never a partial write. Evicts LRU entries past the
// byte cap afterwards. Write failures other than queue overflow (ENOSPC,
// permissions, a dead mount) are counted, and diskWriteFailureLimit
// consecutive failures disable further writes for the process lifetime —
// the tier degrades to read-only instead of paying an I/O error per cell.
func (d *diskTier) put(hash string, body []byte) {
	if d.disabled.Load() {
		d.disabledDrops.Add(1)
		return
	}
	d.mu.Lock()
	_, exists := d.items[hash]
	d.mu.Unlock()
	if exists {
		return // deterministic results: the stored bytes are already identical
	}
	framed := encodeEntry(body)
	if err := d.writeFile(filepath.Join(d.dir, hash), framed); err != nil {
		d.writeErrors.Add(1)
		if d.consecFails.Add(1) >= diskWriteFailureLimit {
			d.disabled.Store(true)
		}
		return
	}
	d.consecFails.Store(0)
	d.mu.Lock()
	if _, dup := d.items[hash]; !dup {
		d.items[hash] = d.order.PushFront(&diskEntry{hash: hash, size: int64(len(framed))})
		d.total += int64(len(framed))
		d.evictOverCapLocked()
	}
	d.mu.Unlock()
}

// drop removes hash from the index (the file is already gone or doomed).
func (d *diskTier) drop(hash string) {
	d.mu.Lock()
	if el, ok := d.items[hash]; ok {
		d.total -= el.Value.(*diskEntry).size
		d.order.Remove(el)
		delete(d.items, hash)
	}
	d.mu.Unlock()
}

// evictOverCapLocked removes least-recently-used entries until the tier
// fits its byte cap again, keeping at least the newest entry so a single
// oversized result cannot empty the tier. Caller holds d.mu.
func (d *diskTier) evictOverCapLocked() {
	for d.total > d.max && d.order.Len() > 1 {
		oldest := d.order.Back()
		e := oldest.Value.(*diskEntry)
		d.order.Remove(oldest)
		delete(d.items, e.hash)
		d.total -= e.size
		os.Remove(filepath.Join(d.dir, e.hash))
		d.evictions.Add(1)
	}
}

// stats reports resident entries and bytes.
func (d *diskTier) stats() (entries int, bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.order.Len(), d.total
}
