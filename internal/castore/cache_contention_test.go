package castore

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheEvictionOrderUnderTouch pins the LRU discipline precisely: a
// Get refreshes recency, a Put of an existing key refreshes recency
// without replacing bytes, and eviction always takes the least recently
// used entry — the properties the serve layer's byte-replay contract
// leans on.
func TestCacheEvictionOrderUnderTouch(t *testing.T) {
	c := NewCache(3)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("c", []byte("C"))
	c.Get("a")              // order (MRU→LRU): a c b
	c.Put("b", []byte("X")) // refreshes b's recency, keeps original bytes
	c.Put("d", []byte("D")) // evicts c, the LRU

	if _, ok := c.Get("c"); ok {
		t.Fatal("c should have been evicted as LRU")
	}
	for key, want := range map[string]string{"a": "A", "b": "B", "d": "D"} {
		v, ok := c.Get(key)
		if !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q, %t; want %q", key, v, ok, want)
		}
	}
}

// TestCacheContention hammers the cache from many goroutines over a key
// space larger than the capacity, so hits, misses, inserts and evictions
// interleave constantly (run under -race in CI). It verifies the two
// things the daemon depends on: every hit returns byte-identical content
// for its key even while that key's neighbors are being evicted, and the
// hit/miss accounting exactly matches what callers observed.
func TestCacheContention(t *testing.T) {
	const (
		capacity   = 32
		keySpace   = 128
		goroutines = 8
		opsPerG    = 4000
	)
	c := NewCache(capacity)
	value := func(k int) []byte { return []byte(fmt.Sprintf("summary-of-key-%d", k)) }

	var sawHits, sawMisses atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Deterministic per-goroutine walk; different strides make the
			// goroutines collide on different keys at different times.
			k := g
			for i := 0; i < opsPerG; i++ {
				k = (k + 2*g + 1) % keySpace
				key := fmt.Sprintf("key-%d", k)
				if body, ok := c.Get(key); ok {
					sawHits.Add(1)
					if !bytes.Equal(body, value(k)) {
						errs <- fmt.Errorf("hit for %s returned %q", key, body)
						return
					}
				} else {
					sawMisses.Add(1)
					c.Put(key, value(k))
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	hits, misses, entries := c.Stats()
	if entries > capacity {
		t.Fatalf("cache grew past capacity: %d > %d", entries, capacity)
	}
	if hits != sawHits.Load() || misses != sawMisses.Load() {
		t.Fatalf("accounting drifted: cache says %d/%d, callers saw %d/%d",
			hits, misses, sawHits.Load(), sawMisses.Load())
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate run: %d hits, %d misses — contention not exercised", hits, misses)
	}
}

// TestCacheHitByteIdentityDuringEviction holds one key's bytes across a
// storm of evictions of everything around it: as long as the key remains
// resident its Get must return the original bytes, and once evicted a
// re-Put must restore byte-identical content — the cache can never serve a
// torn or stale mixture.
func TestCacheHitByteIdentityDuringEviction(t *testing.T) {
	const capacity = 8
	c := NewCache(capacity)
	hot := []byte(`{"t_par":1.25,"cov":0.97}`)
	c.Put("hot", hot)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churners continuously insert fresh keys, forcing evictions.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Put(fmt.Sprintf("churn-%d-%d", g, i), []byte("x"))
			}
		}(g)
	}
	// The reader keeps the hot key alive-ish and checks every hit; when the
	// churn wins and evicts it, the re-Put must restore identical bytes.
	for i := 0; i < 20000; i++ {
		body, ok := c.Get("hot")
		if !ok {
			c.Put("hot", hot)
			continue
		}
		if !bytes.Equal(body, hot) {
			close(stop)
			wg.Wait()
			t.Fatalf("hot key served corrupted bytes: %q", body)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCacheLRUEviction pins the basic LRU bound: full caches evict the
// least recently used entry, a Get refreshes recency, and the counters
// match the observed traffic.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.Put("c", []byte("C")) // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("a lost: %q %v", v, ok)
	}
	hits, misses, entries := c.Stats()
	if entries != 2 || hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits %d misses %d entries", hits, misses, entries)
	}
}
