package castore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testHash derives a well-formed (64 hex chars) content hash for tests.
func testHash(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

func openTestStore(t *testing.T, opt Options) *Store {
	t.Helper()
	s, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestSingleflightCollapsesConcurrentMisses is the core dedup contract: 32
// goroutines requesting one hash run the compute exactly once, and every
// caller receives byte-identical content. Run under -race in CI.
func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	s := openTestStore(t, Options{MemEntries: 16})
	hash := testHash("collapse")
	want := []byte(`{"index":0,"summary":{"t_par":1.25}}`)

	var computes atomic.Int64
	release := make(chan struct{})
	compute := func(ctx context.Context) ([]byte, error) {
		computes.Add(1)
		<-release // hold the flight open until all callers have piled on
		return want, nil
	}

	const callers = 32
	var wg sync.WaitGroup
	var started sync.WaitGroup
	results := make([][]byte, callers)
	outcomes := make([]Outcome, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			results[i], outcomes[i], errs[i] = s.Do(context.Background(), hash, compute)
		}(i)
	}
	started.Wait()
	time.Sleep(20 * time.Millisecond) // let the stragglers reach the flight
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	var computed, collapsed int
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], want) {
			t.Fatalf("caller %d got %q, want %q", i, results[i], want)
		}
		switch outcomes[i] {
		case Computed:
			computed++
		case Collapsed:
			collapsed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d callers report Computed, want exactly 1 (collapsed=%d)", computed, collapsed)
	}
	if st := s.Stats(); st.Collapsed != int64(collapsed) || st.Misses != 1 {
		t.Fatalf("stats = %+v; want Collapsed=%d Misses=1", st, collapsed)
	}
}

// TestSingleflightLeaderFailureRetries: a leader whose compute fails must
// not poison waiters — a live waiter retries and becomes the next leader,
// and the failed result is never cached.
func TestSingleflightLeaderFailureRetries(t *testing.T) {
	s := openTestStore(t, Options{MemEntries: 16})
	hash := testHash("leader-fail")
	boom := errors.New("canceled mid-cell")
	want := []byte("good bytes")

	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	var calls atomic.Int64
	failingFirst := func(ctx context.Context) ([]byte, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-leaderGo
			return nil, boom
		}
		return want, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, _, leaderErr = s.Do(context.Background(), hash, failingFirst)
	}()
	<-leaderIn // leader is inside compute; join as a waiter
	var waiterBody []byte
	var waiterOutcome Outcome
	var waiterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		waiterBody, waiterOutcome, waiterErr = s.Do(context.Background(), hash, failingFirst)
	}()
	time.Sleep(10 * time.Millisecond)
	close(leaderGo)
	wg.Wait()

	if !errors.Is(leaderErr, boom) {
		t.Fatalf("leader error = %v, want %v", leaderErr, boom)
	}
	if waiterErr != nil || !bytes.Equal(waiterBody, want) {
		t.Fatalf("waiter got (%q, %v), want retried success %q", waiterBody, waiterErr, want)
	}
	if waiterOutcome != Computed {
		t.Fatalf("waiter outcome = %v, want Computed after retrying as leader", waiterOutcome)
	}
	// The failure must not have been cached: a fresh lookup hits the
	// retried (good) bytes.
	body, tier, ok := s.LookupLocal(hash)
	if !ok || tier != TierMem || !bytes.Equal(body, want) {
		t.Fatalf("LookupLocal after retry = (%q, %v, %t), want mem hit of %q", body, tier, ok, want)
	}
}

// TestSingleflightCanceledWaiter: a waiter whose own ctx dies while the
// leader runs gets its ctx error immediately, without waiting for the
// leader or perturbing it.
func TestSingleflightCanceledWaiter(t *testing.T) {
	s := openTestStore(t, Options{MemEntries: 16})
	hash := testHash("canceled-waiter")
	inCompute := make(chan struct{})
	release := make(chan struct{})
	compute := func(ctx context.Context) ([]byte, error) {
		close(inCompute)
		<-release
		return []byte("late"), nil
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Do(context.Background(), hash, compute)
	}()
	<-inCompute

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, outcome, err := s.Do(ctx, hash, compute)
	if !errors.Is(err, context.Canceled) || outcome != Collapsed {
		t.Fatalf("canceled waiter got (%v, %v), want (Collapsed, context.Canceled)", outcome, err)
	}
	close(release)
	<-done
}

// TestDiskRoundTrip covers the persistence loop: compute once, Close to
// flush, reopen the same dir with a fresh store, and the lookup must hit
// disk with byte-identical content — the warm-restart contract.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	hash := testHash("round-trip")
	want := []byte(`{"index":3,"hash":"abc","summary":{"cov":0.97}}` + "\n")

	s1, err := Open(Options{MemEntries: 4, Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	body, outcome, err := s1.Do(context.Background(), hash, func(ctx context.Context) ([]byte, error) {
		return want, nil
	})
	if err != nil || outcome != Computed || !bytes.Equal(body, want) {
		t.Fatalf("first Do = (%q, %v, %v)", body, outcome, err)
	}
	s1.Close() // flushes the pending disk write
	if st := s1.Stats(); st.PendingWrites != 0 || st.DiskEntries != 1 {
		t.Fatalf("after Close: %+v; want 0 pending, 1 disk entry", st)
	}

	s2 := openTestStore(t, Options{MemEntries: 4, Dir: dir})
	got, tier, ok := s2.LookupLocal(hash)
	if !ok || tier != TierDisk {
		t.Fatalf("restart lookup tier = %v ok = %t, want disk hit", tier, ok)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restart bytes = %q, want byte-identical %q", got, want)
	}
	// The disk hit promoted into memory: a second lookup is a mem hit.
	if _, tier, ok = s2.LookupLocal(hash); !ok || tier != TierMem {
		t.Fatalf("post-promotion lookup = (%v, %t), want mem hit", tier, ok)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v; want DiskHits=1 MemHits=1", st)
	}
}

// TestDiskCorruptionIsAMiss flips bytes in a persisted entry; the read
// must detect the bad checksum, count it, delete the file, and report a
// miss — never surface altered bytes.
func TestDiskCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	hash := testHash("corrupt")
	s1, err := Open(Options{MemEntries: 4, Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s1.Do(context.Background(), hash, func(ctx context.Context) ([]byte, error) {
		return []byte("pristine result bytes"), nil
	})
	s1.Close()

	path := filepath.Join(dir, hash)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read persisted entry: %v", err)
	}
	raw[len(raw)-1] ^= 0xFF // corrupt the payload tail
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("rewrite corrupted entry: %v", err)
	}

	s2 := openTestStore(t, Options{MemEntries: 4, Dir: dir})
	if _, _, ok := s2.LookupLocal(hash); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	if st := s2.Stats(); st.DiskCorruptions != 1 {
		t.Fatalf("stats = %+v; want DiskCorruptions=1", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not deleted: stat err = %v", err)
	}
	// Deterministic recomputation restores the entry.
	want := []byte("pristine result bytes")
	body, outcome, err := s2.Do(context.Background(), hash, func(ctx context.Context) ([]byte, error) {
		return want, nil
	})
	if err != nil || outcome != Computed || !bytes.Equal(body, want) {
		t.Fatalf("recompute after corruption = (%q, %v, %v)", body, outcome, err)
	}
}

// TestDiskEvictionHonorsByteCap fills the tier past its cap and checks LRU
// files are removed from disk while recently used ones survive.
func TestDiskEvictionHonorsByteCap(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("x"), 100)
	framedSize := int64(diskHeaderSize + len(body))
	s := openTestStore(t, Options{MemEntries: 1, Dir: dir, DiskMaxBytes: 3 * framedSize})

	var hashes []string
	for i := 0; i < 6; i++ {
		h := testHash(fmt.Sprintf("evict-%d", i))
		hashes = append(hashes, h)
		s.Do(context.Background(), h, func(ctx context.Context) ([]byte, error) {
			return body, nil
		})
	}
	s.Close()

	st := s.Stats()
	if st.DiskEntries != 3 || st.DiskBytes != 3*framedSize {
		t.Fatalf("stats = %+v; want 3 entries / %d bytes resident", st, 3*framedSize)
	}
	if st.DiskEvictions != 3 {
		t.Fatalf("stats = %+v; want 3 evictions", st)
	}
	for i, h := range hashes {
		_, err := os.Stat(filepath.Join(dir, h))
		if i < 3 && !os.IsNotExist(err) {
			t.Fatalf("old entry %d should be evicted from disk (err=%v)", i, err)
		}
		if i >= 3 && err != nil {
			t.Fatalf("recent entry %d missing from disk: %v", i, err)
		}
	}
}

// TestDiskStartupCleansTempAndIgnoresForeignFiles: leftover .tmp- files
// from a crashed writer are removed, and non-hash names never enter the
// index.
func TestDiskStartupCleansTempAndIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+testHash("crashed")+"-123")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := openTestStore(t, Options{Dir: dir})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived startup: %v", err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file should be left alone: %v", err)
	}
	if st := s.Stats(); st.DiskEntries != 0 {
		t.Fatalf("index picked up foreign files: %+v", st)
	}
}

// TestDiskRestartPreservesLRUOrder: mtimes rebuild the recency order, so
// the entry touched most recently before shutdown is the last to evict
// after restart.
func TestDiskRestartPreservesLRUOrder(t *testing.T) {
	dir := t.TempDir()
	old := testHash("old")
	hot := testHash("hot")
	// Write with explicit mtimes rather than sleeping through a real store.
	for i, h := range []string{old, hot} {
		framed := encodeEntry([]byte("payload-" + h[:8]))
		if err := os.WriteFile(filepath.Join(dir, h), framed, 0o644); err != nil {
			t.Fatal(err)
		}
		mt := time.Now().Add(time.Duration(i-2) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, h), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	framedSize := int64(diskHeaderSize + len("payload-12345678"))
	s := openTestStore(t, Options{MemEntries: 1, Dir: dir, DiskMaxBytes: 2 * framedSize})
	// Inserting one more entry pushes the tier over cap; "old" must go.
	s.Do(context.Background(), testHash("new"), func(ctx context.Context) ([]byte, error) {
		return []byte("payload-newentry"), nil
	})
	s.Close()

	if _, err := os.Stat(filepath.Join(dir, old)); !os.IsNotExist(err) {
		t.Fatalf("oldest-mtime entry should be evicted first, stat err = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, hot)); err != nil {
		t.Fatalf("recent entry evicted out of order: %v", err)
	}
}

// TestPeerFillFetchesBeforeCompute: with a peer hook installed, a local
// miss consults peers first; a peer hit skips compute entirely and the
// bytes are cached locally for next time.
func TestPeerFillFetchesBeforeCompute(t *testing.T) {
	hash := testHash("peer")
	want := []byte("peer-computed bytes")
	var probes atomic.Int64
	s := openTestStore(t, Options{
		MemEntries: 16,
		Peers: func(ctx context.Context, h string) ([]byte, bool) {
			probes.Add(1)
			if h == hash {
				return want, true
			}
			return nil, false
		},
	})

	computeCalled := false
	body, outcome, err := s.Do(context.Background(), hash, func(ctx context.Context) ([]byte, error) {
		computeCalled = true
		return nil, errors.New("should not compute")
	})
	if err != nil || outcome != HitPeer || !bytes.Equal(body, want) {
		t.Fatalf("Do = (%q, %v, %v), want peer hit", body, outcome, err)
	}
	if computeCalled {
		t.Fatal("compute ran despite peer hit")
	}
	// Second call is a mem hit: the peer result was cached locally.
	if _, outcome, _ = s.Do(context.Background(), hash, nil); outcome != HitMem {
		t.Fatalf("second Do outcome = %v, want HitMem", outcome)
	}
	if probes.Load() != 1 {
		t.Fatalf("peer probed %d times, want 1", probes.Load())
	}
	if st := s.Stats(); st.PeerHits != 1 {
		t.Fatalf("stats = %+v; want PeerHits=1", st)
	}
}

// TestOutcomeLabels pins the X-Cache wire labels — scripts and the smoke
// suite grep for these exact strings.
func TestOutcomeLabels(t *testing.T) {
	want := map[Outcome]string{
		Computed:  "miss",
		Collapsed: "collapsed",
		HitMem:    "hit",
		HitDisk:   "hit-disk",
		HitPeer:   "hit-peer",
	}
	for o, label := range want {
		if o.String() != label {
			t.Fatalf("Outcome(%d).String() = %q, want %q", o, o.String(), label)
		}
	}
}

// TestCloseIsIdempotent: serve's Drain path may close the store more than
// once (repeated drains, cleanup drains); every call must be safe.
func TestCloseIsIdempotent(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	s.Close()
	// And puts after close are dropped, not panics.
	s.put(testHash("late"), []byte("late"))
	if st := s.Stats(); st.DiskWriteDrops != 1 {
		t.Fatalf("stats = %+v; want DiskWriteDrops=1", st)
	}
}

// TestIsHexHash guards the directory-scan filter.
func TestIsHexHash(t *testing.T) {
	if !isHexHash(strings.Repeat("ab", 32)) {
		t.Fatal("valid 64-hex name rejected")
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64), strings.Repeat("a", 63)} {
		if isHexHash(bad) {
			t.Fatalf("isHexHash(%q) = true", bad)
		}
	}
}
