package castore

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a bounded LRU of marshaled cell results keyed by canonical
// config hash (hdls.Config.Hash) — the store's memory tier. Simulations
// are bit-deterministic functions of their canonical config, so a hit can
// skip the engine entirely and replay stored bytes — responses are
// byte-identical to the run that populated the entry. Safe for concurrent
// use.
type Cache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache returns an LRU holding at most max entries (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:   max,
		order: list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the stored bytes for key, marking the entry most recently
// used. The returned slice is shared: callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	body := el.Value.(*cacheEntry).body
	c.mu.Unlock()
	c.hits.Add(1)
	return body, true
}

// Put stores body under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its recency but
// keeps the original bytes (deterministic sims make re-runs identical).
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// Stats reports lifetime hit/miss counters and the current entry count.
func (c *Cache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	entries = c.order.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), entries
}
