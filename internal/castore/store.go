// Package castore implements hdlsd's tiered content-addressed result
// store. Deterministic simulation makes every cell result a pure function
// of its canonical config hash (hdls.Config.Hash), so the hash is a
// complete address for the frozen result bytes and any tier may serve them
// interchangeably:
//
//	tier 0  in-memory LRU        — hot set, zero-copy replay
//	tier 1  checksummed disk     — survives restarts; atomic write-rename,
//	                               corruption detected and treated as a miss
//	tier 2  peer fetch (hook)    — a fleet worker asks the cell's ring
//	                               successors before simulating
//
// On top of the tiers, Do collapses concurrent misses of one hash with a
// singleflight: N simultaneous requests run the compute exactly once and
// every caller receives the identical frozen byte slice. The invariant
// throughout is byte identity — a hit at any tier replays the exact bytes
// the original computation produced (DESIGN.md §12).
package castore

import (
	"context"
	"sync"
	"sync/atomic"
)

// PeerFetch resolves a canonical config hash from fleet peers, returning
// the frozen result bytes if some peer holds them. Implementations must be
// safe for concurrent use and should bound their own probe time; the store
// calls the hook only under a singleflight, so one miss probes once no
// matter how many callers collapsed onto it.
type PeerFetch func(ctx context.Context, hash string) ([]byte, bool)

// Options configures a Store.
type Options struct {
	// MemEntries bounds the in-memory LRU tier (default 4096 entries).
	MemEntries int
	// Dir enables the disk tier at this directory; empty disables it.
	Dir string
	// DiskMaxBytes caps the disk tier's total size, LRU-evicted
	// (default 256 MiB; ignored without Dir).
	DiskMaxBytes int64
	// Peers, when non-nil, is probed on a local miss before computing.
	Peers PeerFetch
}

func (o Options) withDefaults() Options {
	if o.MemEntries <= 0 {
		o.MemEntries = 4096
	}
	if o.DiskMaxBytes <= 0 {
		o.DiskMaxBytes = 256 << 20
	}
	return o
}

// Tier identifies which layer of the store satisfied a lookup.
type Tier int

// The store's tiers, in probe order.
const (
	TierNone Tier = iota
	TierMem
	TierDisk
	TierPeer
)

// Outcome describes how Do resolved a request — which tier hit, that the
// caller collapsed onto another caller's in-flight computation, or that
// this caller ran the compute itself.
type Outcome int

// Do outcomes. Computed means this call ran the engine; Collapsed means it
// waited on a concurrent identical call and received the same bytes.
const (
	Computed Outcome = iota
	Collapsed
	HitMem
	HitDisk
	HitPeer
)

// String returns the outcome's X-Cache wire label.
func (o Outcome) String() string {
	switch o {
	case Collapsed:
		return "collapsed"
	case HitMem:
		return "hit"
	case HitDisk:
		return "hit-disk"
	case HitPeer:
		return "hit-peer"
	}
	return "miss"
}

// flight is one in-progress computation all concurrent callers of a hash
// share. body/err are written once, before done closes.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// diskWrite is one queued persistence request.
type diskWrite struct {
	hash string
	body []byte
}

// Store is the tiered content-addressed result store. Create with Open,
// resolve cells with Do (singleflight) or LookupLocal (tiers only), and
// Close on shutdown to flush pending disk writes.
type Store struct {
	mem   *Cache
	disk  *diskTier // nil when the disk tier is disabled
	peers PeerFetch

	flightMu sync.Mutex
	flights  map[string]*flight

	// Disk persistence is asynchronous: the simulation path enqueues and
	// moves on, a single writer goroutine does the fsync+rename dance, and
	// Close drains the queue — that is the "drain flushes pending disk
	// writes" guarantee. A full queue drops the write (counted): losing
	// warmth is acceptable, stalling the engine worker pool is not.
	qmu        sync.Mutex
	writeQ     chan diskWrite
	qClosed    bool
	writerDone chan struct{}
	closeOnce  sync.Once

	memHits    atomic.Int64
	diskHits   atomic.Int64
	peerHits   atomic.Int64
	misses     atomic.Int64
	collapsed  atomic.Int64
	pending    atomic.Int64
	writeDrops atomic.Int64
}

// Open builds a Store, scanning Options.Dir to warm the disk index when
// the disk tier is enabled.
func Open(opt Options) (*Store, error) {
	o := opt.withDefaults()
	s := &Store{
		mem:        NewCache(o.MemEntries),
		peers:      o.Peers,
		flights:    make(map[string]*flight),
		writeQ:     make(chan diskWrite, 1024),
		writerDone: make(chan struct{}),
	}
	if o.Dir != "" {
		d, err := openDiskTier(o.Dir, o.DiskMaxBytes)
		if err != nil {
			return nil, err
		}
		s.disk = d
	}
	go s.writer()
	return s, nil
}

// writer persists queued results until Close drains and closes the queue.
func (s *Store) writer() {
	defer close(s.writerDone)
	for w := range s.writeQ {
		if s.disk != nil {
			s.disk.put(w.hash, w.body)
		}
		s.pending.Add(-1)
	}
}

// Close flushes every pending disk write and stops the writer. Idempotent;
// Do/LookupLocal calls racing Close lose only persistence, never results.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		s.qmu.Lock()
		s.qClosed = true
		close(s.writeQ)
		s.qmu.Unlock()
	})
	<-s.writerDone
}

// put inserts the frozen bytes into the memory tier and queues the disk
// write.
func (s *Store) put(hash string, body []byte) {
	s.mem.Put(hash, body)
	if s.disk == nil {
		return
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.qClosed {
		s.writeDrops.Add(1)
		return
	}
	select {
	case s.writeQ <- diskWrite{hash: hash, body: body}:
		s.pending.Add(1)
	default:
		s.writeDrops.Add(1)
	}
}

// LookupLocal resolves hash from the local tiers only — memory, then disk
// (promoting a disk hit into memory). It never probes peers and never
// computes, which is what makes it safe to serve fleet peer lookups
// (GET /v1/cache/{hash}) without probe cascades. The returned slice is
// shared on a memory hit: callers must not modify it.
func (s *Store) LookupLocal(hash string) ([]byte, Tier, bool) {
	if body, ok := s.mem.Get(hash); ok {
		s.memHits.Add(1)
		return body, TierMem, true
	}
	if s.disk != nil {
		if body, ok := s.disk.get(hash); ok {
			s.diskHits.Add(1)
			s.mem.Put(hash, body)
			return body, TierDisk, true
		}
	}
	s.misses.Add(1)
	return nil, TierNone, false
}

// Do resolves hash through every tier, collapsing concurrent identical
// requests onto one computation: the first caller to miss all tiers
// becomes the leader, probes peers, runs compute, and publishes the frozen
// bytes; every caller that arrived meanwhile blocks on the same flight and
// receives the identical slice. compute runs at most once per flight, so N
// concurrent requests for one hash cost one engine execution.
//
// compute receives the leader's ctx. A leader whose compute fails (a
// canceled job, an internal engine error) publishes the error without
// caching it; waiters whose own ctx is still live then retry the tiers —
// one of them becomes the next leader — so a canceled client never poisons
// the result for the clients still waiting.
func (s *Store) Do(ctx context.Context, hash string, compute func(ctx context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	for {
		if body, ok := s.mem.Get(hash); ok {
			s.memHits.Add(1)
			return body, HitMem, nil
		}
		if s.disk != nil {
			if body, ok := s.disk.get(hash); ok {
				s.diskHits.Add(1)
				s.mem.Put(hash, body)
				return body, HitDisk, nil
			}
		}
		s.flightMu.Lock()
		if f, ok := s.flights[hash]; ok {
			s.flightMu.Unlock()
			s.collapsed.Add(1)
			select {
			case <-f.done:
				if f.err == nil {
					return f.body, Collapsed, nil
				}
				if err := ctx.Err(); err != nil {
					return nil, Collapsed, err
				}
				continue // leader failed but we are live: retry as leader
			case <-ctx.Done():
				return nil, Collapsed, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		s.flights[hash] = f
		s.flightMu.Unlock()

		body, outcome, err := s.fill(ctx, hash, compute)
		if err == nil {
			f.body = body
			s.put(hash, body)
		}
		f.err = err
		s.flightMu.Lock()
		delete(s.flights, hash)
		s.flightMu.Unlock()
		close(f.done)
		return body, outcome, err
	}
}

// fill is the leader's path: peers first (a ring successor may already
// hold the bytes — fetching them preserves byte identity because results
// are pure functions of the hash), then the real computation.
func (s *Store) fill(ctx context.Context, hash string, compute func(ctx context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	if s.peers != nil {
		if body, ok := s.peers(ctx, hash); ok {
			s.peerHits.Add(1)
			return body, HitPeer, nil
		}
	}
	s.misses.Add(1)
	body, err := compute(ctx)
	if err != nil {
		return nil, Computed, err
	}
	return body, Computed, nil
}

// Stats is the store's counter snapshot.
type Stats struct {
	MemHits   int64 // lookups served by the memory tier
	DiskHits  int64 // lookups served by the disk tier
	PeerHits  int64 // misses filled from a fleet peer
	Misses    int64 // lookups no tier could serve
	Collapsed int64 // callers that joined another caller's flight

	MemEntries  int   // memory-tier resident entries
	DiskEntries int   // disk-tier resident entries
	DiskBytes   int64 // disk-tier resident bytes

	DiskEvictions   int64 // disk entries removed by the byte cap
	DiskCorruptions int64 // disk entries rejected by checksum/framing
	DiskWriteErrors int64 // disk writes that failed (I/O)
	DiskWriteDrops  int64 // disk writes dropped (full queue, or tier disabled)
	PendingWrites   int64 // disk writes queued but not yet persisted
	DiskDisabled    bool  // disk writes shut off after consecutive failures
}

// Hits returns the aggregate across tiers — the legacy single-cache
// hit counter.
func (st Stats) Hits() int64 { return st.MemHits + st.DiskHits + st.PeerHits }

// Stats reports the store's lifetime counters and tier occupancy.
func (s *Store) Stats() Stats {
	st := Stats{
		MemHits:        s.memHits.Load(),
		DiskHits:       s.diskHits.Load(),
		PeerHits:       s.peerHits.Load(),
		Misses:         s.misses.Load(),
		Collapsed:      s.collapsed.Load(),
		PendingWrites:  s.pending.Load(),
		DiskWriteDrops: s.writeDrops.Load(),
	}
	_, _, st.MemEntries = s.mem.Stats()
	if s.disk != nil {
		st.DiskEntries, st.DiskBytes = s.disk.stats()
		st.DiskEvictions = s.disk.evictions.Load()
		st.DiskCorruptions = s.disk.corruptions.Load()
		st.DiskWriteErrors = s.disk.writeErrors.Load()
		st.DiskWriteDrops += s.disk.disabledDrops.Load()
		st.DiskDisabled = s.disk.disabled.Load()
	}
	return st
}
