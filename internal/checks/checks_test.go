package checks

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeTree materializes a one-class checks tree for a test.
func writeTree(t *testing.T, machine string, cases map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "trend"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "test", "cases"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "test", "machine.json"), []byte(machine), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, body := range cases {
		cdir := filepath.Join(dir, "test", "cases", name)
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, "case.json"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const okMachine = `{"calib_ref_mops": 700, "calib_band": 8}`

const okSweepCase = `{
  "target": "sweep",
  "sweep": {"figures": [4], "nodes": [2], "scale": 1024, "passes": 2},
  "goals": {"cells_per_second_min": 1, "warm_speedup_min": 1, "error_lines_max": 0}
}`

// TestLoadValidation exercises the named-error contract: every broken
// tree must fail naming the class, case and field, never with a generic
// unmarshal message.
func TestLoadValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		machine string
		cases   map[string]string
		want    string // substring of the load error
	}{
		{
			name:    "bad size unit",
			machine: okMachine,
			cases: map[string]string{"c": `{
				"target": "sweep", "sweep": {"figures": [4], "nodes": [2]},
				"goals": {"rss_max": "512mb"}}`},
			want: `goal rss_max: bad size "512mb"`,
		},
		{
			name:    "bad duration",
			machine: okMachine,
			cases: map[string]string{"c": `{
				"target": "serve", "load": {"clients": 1, "sweeps": 1, "cells": 1},
				"goals": {"p99_stream_max": "fast"}}`},
			want: `goal p99_stream_max: bad duration "fast"`,
		},
		{
			name:    "no goals",
			machine: okMachine,
			cases: map[string]string{"c": `{
				"target": "sweep", "sweep": {"figures": [4], "nodes": [2]}, "goals": {}}`},
			want: "declares no goals",
		},
		{
			name:    "goal wrong target",
			machine: okMachine,
			cases: map[string]string{"c": `{
				"target": "serve", "load": {"clients": 1, "sweeps": 1, "cells": 1},
				"goals": {"cells_per_second_min": 10}}`},
			want: "goal cells_per_second_min requires target sweep",
		},
		{
			name:    "warm speedup needs passes",
			machine: okMachine,
			cases: map[string]string{"c": `{
				"target": "sweep", "sweep": {"figures": [4], "nodes": [2]},
				"goals": {"warm_speedup_min": 5}}`},
			want: "warm_speedup_min needs sweep.passes >= 2",
		},
		{
			name:    "unknown target",
			machine: okMachine,
			cases: map[string]string{"c": `{
				"target": "bench", "goals": {"error_lines_max": 0}}`},
			want: `unknown target "bench"`,
		},
		{
			name:    "sweep block on serve target",
			machine: okMachine,
			cases: map[string]string{"c": `{
				"target": "serve", "load": {"clients": 1, "sweeps": 1, "cells": 1},
				"sweep": {"figures": [4], "nodes": [2]},
				"goals": {"error_lines_max": 0}}`},
			want: `target serve does not take a "sweep" block`,
		},
		{
			name:    "unknown figure",
			machine: okMachine,
			cases: map[string]string{"c": `{
				"target": "sweep", "sweep": {"figures": [9], "nodes": [2]},
				"goals": {"error_lines_max": 0}}`},
			want: "unknown figure 9",
		},
		{
			name:    "typoed goal key",
			machine: okMachine,
			cases: map[string]string{"c": `{
				"target": "sweep", "sweep": {"figures": [4], "nodes": [2]},
				"goals": {"cells_per_sec_min": 10}}`},
			want: "cells_per_sec_min",
		},
		{
			name:    "machine missing calibration",
			machine: `{"cores_min": 1}`,
			cases:   map[string]string{"c": okSweepCase},
			want:    "calib_ref_mops must be positive",
		},
		{
			name:    "machine band below one",
			machine: `{"calib_ref_mops": 700, "calib_band": 0.5}`,
			cases:   map[string]string{"c": okSweepCase},
			want:    "calib_band must be >= 1",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeTree(t, tc.machine, tc.cases)
			_, err := Load(dir)
			if err == nil {
				t.Fatalf("Load accepted a broken tree")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestUnknownClass pins the named error listing available classes.
func TestUnknownClass(t *testing.T) {
	dir := writeTree(t, okMachine, map[string]string{"c": okSweepCase})
	tree, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tree.Class("metal")
	if err == nil || !strings.Contains(err.Error(), `unknown machine class "metal" (have: test)`) {
		t.Fatalf("unknown class error = %v", err)
	}
}

// TestEvalGoals covers the verdict arithmetic: floors vs ceilings,
// calibration scaling, and skip-with-note for unmeasured metrics.
func TestEvalGoals(t *testing.T) {
	goals := []Goal{
		{Metric: MetricCellsPerSecond, Floor: true, Limit: 65, Scaled: true, Display: "65"},
		{Metric: MetricRSSBytes, Floor: false, Limit: 256 << 20, Display: "256MiB"},
		{Metric: MetricErrorLines, Floor: false, Limit: 0, Display: "0"},
	}
	t.Run("pass", func(t *testing.T) {
		fails, notes := evalGoals(goals, map[string]float64{
			MetricCellsPerSecond: 70, MetricRSSBytes: 100 << 20, MetricErrorLines: 0,
		}, 1)
		if len(fails) != 0 || len(notes) != 0 {
			t.Fatalf("fails=%v notes=%v", fails, notes)
		}
	})
	t.Run("floor fails with scale note", func(t *testing.T) {
		// Effective floor = 65 × 0.97 = 63.05, so 61.23 fails.
		fails, _ := evalGoals(goals, map[string]float64{
			MetricCellsPerSecond: 61.23, MetricRSSBytes: 1, MetricErrorLines: 0,
		}, 0.97)
		if len(fails) != 1 {
			t.Fatalf("fails = %v, want 1", fails)
		}
		msg := fails[0].String()
		for _, part := range []string{"cells_per_second", "61.2", "< goal 65", "calib 0.97"} {
			if !strings.Contains(msg, part) {
				t.Errorf("failure %q missing %q", msg, part)
			}
		}
	})
	t.Run("scaled floor lowers the bar", func(t *testing.T) {
		// 61 < 65 raw, but the host calibrates at 0.9× the reference, so the
		// effective floor is 58.5 and the measurement passes.
		fails, _ := evalGoals(goals[:1], map[string]float64{MetricCellsPerSecond: 61}, 0.9)
		if len(fails) != 0 {
			t.Fatalf("scaled floor still failed: %v", fails)
		}
	})
	t.Run("ceiling fails", func(t *testing.T) {
		fails, _ := evalGoals(goals, map[string]float64{
			MetricCellsPerSecond: 70, MetricRSSBytes: 300 << 20, MetricErrorLines: 0,
		}, 1)
		if len(fails) != 1 || fails[0].Metric != MetricRSSBytes {
			t.Fatalf("fails = %v, want one rss_bytes ceiling", fails)
		}
		if msg := fails[0].String(); !strings.Contains(msg, "> goal 256MiB") {
			t.Errorf("failure %q missing declared display", msg)
		}
	})
	t.Run("unmeasured metric skips with note", func(t *testing.T) {
		fails, notes := evalGoals(goals, map[string]float64{
			MetricCellsPerSecond: 70, MetricRSSBytes: 0, MetricErrorLines: 0,
		}, 1)
		if len(fails) != 0 {
			t.Fatalf("rss 0 (unmeasured) produced failures: %v", fails)
		}
		if len(notes) != 1 || !strings.Contains(notes[0], "goal rss_max skipped") {
			t.Fatalf("notes = %v, want one rss skip note", notes)
		}
	})
}

// TestHostFitSkips pins the uncalibrated-host verdict: a host outside the
// class's calibration band gets per-case skips, not wall-clock verdicts.
func TestHostFitSkips(t *testing.T) {
	dir := writeTree(t, `{"calib_ref_mops": 1e9, "calib_band": 2}`,
		map[string]string{"c": okSweepCase})
	tree, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	class := tree.Classes[0]
	host := Host{Cores: 1, CalibMops: 700}
	if _, reason := class.Machine.Fit(host); reason == "" {
		t.Fatal("absurd reference fit the host")
	}
	runner := &Runner{Exec: &InProcessExecutor{}, Host: host}
	results := runner.RunClass(class)
	if len(results) != 1 || results[0].Status != StatusSkip {
		t.Fatalf("results = %+v, want one skip", results)
	}
	if !strings.Contains(results[0].Summary(), "SKIP") {
		t.Errorf("summary %q not a skip", results[0].Summary())
	}

	t.Run("cores_min", func(t *testing.T) {
		m := MachineSpec{CalibRefMops: 700, CoresMin: 64}
		if _, reason := m.Fit(host); !strings.Contains(reason, "cores") {
			t.Fatalf("reason %q does not name cores", reason)
		}
	})
}

// TestTrendRoundTrip appends rows, reloads them, and checks the reader
// tolerates keys a future runner may add.
func TestTrendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend", "quick.ndjson")
	host := Host{Cores: 1, CalibMops: 700, GoVersion: "go1.24.0"}
	when := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	results := []Result{
		{
			Check: "quick/fig4-grid", Status: StatusPass,
			Measured: map[string]float64{MetricCellsPerSecond: 400},
			Elapsed:  1500 * time.Millisecond,
		},
		{
			Check: "quick/serve-stream", Status: StatusFail,
			Failures: []Failure{{Metric: MetricP99StreamMs, Measured: 312, Limit: 250, Display: "250ms"}},
		},
	}
	if err := AppendRows(path, RowsFromResults(host, when, results)); err != nil {
		t.Fatal(err)
	}
	// A future runner adds keys; today's reader must shrug them off.
	future := `{"time":"2026-09-01T00:00:00Z","check":"quick/fig4-grid","status":"pass","flux_capacitance":1.21,"measured":{"cells_per_second":410}}` + "\n"
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(future); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rows, err := LoadRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Check != "quick/fig4-grid" || rows[0].Time != "2026-08-07T12:00:00Z" {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[0].ElapsedSeconds != 1.5 || rows[0].CalibMops != 700 {
		t.Errorf("row 0 stamps = %+v", rows[0])
	}
	if len(rows[1].Failures) != 1 || !strings.Contains(rows[1].Failures[0], "p99_stream_ms") {
		t.Errorf("row 1 failures = %v", rows[1].Failures)
	}
	if rows[2].Measured[MetricCellsPerSecond] != 410 {
		t.Errorf("future row measured = %v", rows[2].Measured)
	}

	t.Run("missing file is empty history", func(t *testing.T) {
		rows, err := LoadRows(filepath.Join(t.TempDir(), "absent.ndjson"))
		if err != nil || rows != nil {
			t.Fatalf("rows=%v err=%v", rows, err)
		}
	})
	t.Run("broken line names its number", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "bad.ndjson")
		if err := os.WriteFile(p, []byte("{\"check\":\"a\"}\nnot json\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadRows(p)
		if err == nil || !strings.Contains(err.Error(), ":2:") {
			t.Fatalf("err = %v, want line 2 named", err)
		}
	})
}

// TestRowFromBenchSnapshot converts a committed-snapshot shape into a
// seed row.
func TestRowFromBenchSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_2026-08-07.json")
	snap := `{
		"date": "2026-08-07", "go_version": "go1.24.0", "calib_score": 707,
		"cells_per_second": 70.8,
		"serve_cache": {"cold": {"cells_per_second": 56.4}, "warm_speedup": 442.5}
	}`
	if err := os.WriteFile(path, []byte(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	row, err := RowFromBenchSnapshot(path, "bench/figure-grid")
	if err != nil {
		t.Fatal(err)
	}
	if row.Check != "bench/figure-grid" || row.Time != "2026-08-07T00:00:00Z" {
		t.Errorf("row = %+v", row)
	}
	if row.Measured[MetricCellsPerSecond] != 56.4 || row.Measured[MetricWarmSpeedup] != 442.5 {
		t.Errorf("measured = %v", row.Measured)
	}
	if _, err := RowFromBenchSnapshot(filepath.Join(t.TempDir(), "nope.json"), "x"); err == nil {
		t.Error("missing snapshot accepted")
	}
}

// TestRunCaseEndToEnd is the serving-path e2e: real cases executed
// against an in-process hdlsd, goals evaluated from real /metrics
// scrapes, the sweep target's replay pass hitting the real store. Runs
// under -race in CI.
func TestRunCaseEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons and simulates; skipped under -short")
	}
	dir := writeTree(t, okMachine, map[string]string{
		"grid": `{
			"target": "sweep",
			"sweep": {"figures": [4], "nodes": [2], "scale": 1024, "passes": 2},
			"goals": {"cells_per_second_min": 1, "warm_speedup_min": 1,
			          "cache_hit_rate_min": 0.45, "error_lines_max": 0}}`,
		"serve": `{
			"target": "serve",
			"load": {"clients": 2, "sweeps": 2, "cells": 2, "workload": "constant:n=256"},
			"goals": {"requests_per_second_min": 0.5, "p99_stream_max": "30s",
			          "error_lines_max": 0, "transport_errors_max": 0}}`,
		"soak": `{
			"target": "soak",
			"load": {"clients": 1, "sweeps": 2, "cells": 2, "workload": "constant:n=256"},
			"goals": {"p99_stream_max": "60s", "transport_errors_max": 0}}`,
	})
	tree, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	class := tree.Classes[0]
	runner := &Runner{Exec: &InProcessExecutor{Workers: 2}, Host: Host{Cores: 1, CalibMops: 700}}
	results := runner.RunClass(class)
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	byCheck := map[string]Result{}
	for _, res := range results {
		byCheck[res.Check] = res
		if res.Err != nil {
			t.Fatalf("%s: structural error: %v", res.Check, res.Err)
		}
		if res.Failed() {
			t.Errorf("%s", res.Summary())
		}
	}
	grid := byCheck["test/grid"]
	if grid.Measured[MetricCellsPerSecond] <= 0 {
		t.Errorf("grid measured no throughput: %v", grid.Measured)
	}
	// Two identical passes: the second is all hits, so the case's own
	// lookups split exactly 50/50.
	if got := grid.Measured[MetricCacheHitRate]; got != 0.5 {
		t.Errorf("grid hit rate = %g, want 0.5", got)
	}
	if grid.Measured[MetricWarmSpeedup] <= 1 {
		t.Errorf("warm pass no faster than cold: %v", grid.Measured)
	}
	srv := byCheck["test/serve"]
	if srv.Measured[MetricP99StreamMs] <= 0 || srv.Measured[MetricRequestsPerSecond] <= 0 {
		t.Errorf("serve latency/rate missing: %v", srv.Measured)
	}
	soak := byCheck["test/soak"]
	if soak.Measured[MetricP99StreamMs] <= 0 {
		t.Errorf("soak drain latency missing: %v", soak.Measured)
	}

	t.Run("lowered goal fails by name", func(t *testing.T) {
		raised := *class.Cases[0] // the grid case
		raised.Goals = []Goal{{Metric: MetricCellsPerSecond, Floor: true, Limit: 1e12, Scaled: true, Display: "1e+12"}}
		res := runner.RunCase(&raised, 1)
		if !res.Failed() || res.Err != nil {
			t.Fatalf("absurd floor did not fail cleanly: %+v", res)
		}
		msg := res.Summary()
		for _, part := range []string{"check test/grid", "FAIL", "cells_per_second", "< goal 1e+12"} {
			if !strings.Contains(msg, part) {
				t.Errorf("summary %q missing %q", msg, part)
			}
		}
	})
}

// TestCommittedTree loads the repo's real checks/ tree, so a broken
// case.json fails `go test ./...` before it can break `make check`.
func TestCommittedTree(t *testing.T) {
	tree, err := Load(filepath.Join("..", "..", "checks"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nightly", "quick"} {
		if _, err := tree.Class(want); err != nil {
			t.Errorf("committed tree: %v", err)
		}
	}
	quick, _ := tree.Class("quick")
	if len(quick.Cases) < 3 {
		t.Errorf("quick class has %d cases, want >= 3", len(quick.Cases))
	}
	for _, c := range quick.Cases {
		if len(c.Goals) == 0 {
			t.Errorf("case %s has no goals", c.CheckName())
		}
	}
}

// TestGridCellsMatchesBench pins the shared grid enumeration to the
// 256-cell count every BENCH snapshot records for figures 4-7 over the
// default node axis.
func TestGridCellsMatchesBench(t *testing.T) {
	cells, err := GridCells([]int{4, 5, 6, 7}, []int{2, 4, 8, 16}, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 256 {
		t.Fatalf("grid = %d cells, want 256", len(cells))
	}
	raw, err := json.Marshal(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"app"`, `"nodes"`, `"inter"`, `"intra"`, `"approach"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("cell JSON %s missing %s", raw, key)
		}
	}
}
