package checks

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Row is one case measurement in a checks/trend/<class>.ndjson history.
// Rows are append-only and forward-compatible: LoadRows unmarshals a
// tolerant subset, so a future runner may add keys without breaking a
// reader pinned to this struct.
type Row struct {
	// Time is the measurement instant, RFC3339 UTC.
	Time string `json:"time"`
	// Check is the qualified check name, "<class>/<case>".
	Check string `json:"check"`
	// Status is the verdict: pass, fail or skip.
	Status string `json:"status"`
	// GoVersion identifies the toolchain that produced the row.
	GoVersion string `json:"go,omitempty"`
	// CalibMops is the host's calibration score at measurement time; rows
	// from differently-powered hosts stay comparable through it.
	CalibMops float64 `json:"calib_mops,omitempty"`
	// Measured maps metric names to observed values.
	Measured map[string]float64 `json:"measured,omitempty"`
	// Failures renders the violated goals, one message per goal.
	Failures []string `json:"failures,omitempty"`
	// Notes records skipped goals and host-fit reasons.
	Notes []string `json:"notes,omitempty"`
	// ElapsedSeconds is the case's wall time.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// RowsFromResults renders a run's results as trend rows stamped with the
// host that produced them.
func RowsFromResults(host Host, when time.Time, results []Result) []Row {
	rows := make([]Row, 0, len(results))
	for _, res := range results {
		row := Row{
			Time:           when.UTC().Format(time.RFC3339),
			Check:          res.Check,
			Status:         res.Status,
			GoVersion:      host.GoVersion,
			CalibMops:      host.CalibMops,
			Measured:       res.Measured,
			Notes:          res.Notes,
			ElapsedSeconds: res.Elapsed.Seconds(),
		}
		if res.Err != nil {
			row.Failures = append(row.Failures, res.Err.Error())
		}
		for _, f := range res.Failures {
			row.Failures = append(row.Failures, f.String())
		}
		rows = append(rows, row)
	}
	return rows
}

// AppendRows appends rows to an NDJSON history, creating the file and its
// directory as needed. O_APPEND keeps concurrent writers line-atomic for
// rows far below a pipe buffer, which these are.
func AppendRows(path string, rows []Row) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	defer f.Close()
	for _, row := range rows {
		line, err := json.Marshal(row)
		if err != nil {
			return fmt.Errorf("trend: marshal row for %s: %w", row.Check, err)
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("trend: %w", err)
		}
	}
	return f.Close()
}

// LoadRows reads an NDJSON trend history. Unknown keys are ignored — the
// subset-unmarshal tolerance that lets old readers walk histories written
// by newer runners — but a syntactically broken line is an error naming
// its line number. A missing file is an empty history, not an error.
func LoadRows(path string) ([]Row, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trend: %w", err)
	}
	defer f.Close()
	var rows []Row
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for n := 1; sc.Scan(); n++ {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			return nil, fmt.Errorf("trend: %s:%d: %w", path, n, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trend: %s: %w", path, err)
	}
	return rows, nil
}

// RowFromBenchSnapshot converts a committed BENCH_*.json snapshot (the
// hdlsweep/cachebench bench pathway this service replaces) into one trend
// row, so a fresh history starts with the measurements already in the
// repo instead of an empty baseline. The snapshot's whole-grid sweep maps
// onto the sweep-target metric vocabulary: cells_per_second from the
// serve_cache cold pass (the daemon-executed rate, matching what the
// runner measures), warm_speedup from the same block.
func RowFromBenchSnapshot(path, check string) (Row, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Row{}, fmt.Errorf("trend: %w", err)
	}
	var snap struct {
		Date       string  `json:"date"`
		GoVersion  string  `json:"go_version"`
		CalibScore float64 `json:"calib_score"`
		ServeCache *struct {
			Cold struct {
				CellsPerSec float64 `json:"cells_per_second"`
			} `json:"cold"`
			WarmSpeedup float64 `json:"warm_speedup"`
		} `json:"serve_cache"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return Row{}, fmt.Errorf("trend: %s: %w", path, err)
	}
	if snap.ServeCache == nil {
		return Row{}, fmt.Errorf("trend: %s: no serve_cache block to seed from", path)
	}
	when := snap.Date
	if when == "" {
		when = "1970-01-01"
	}
	return Row{
		Time:      when + "T00:00:00Z",
		Check:     check,
		Status:    StatusPass,
		GoVersion: snap.GoVersion,
		CalibMops: snap.CalibScore,
		Measured: map[string]float64{
			MetricCellsPerSecond: snap.ServeCache.Cold.CellsPerSec,
			MetricWarmSpeedup:    snap.ServeCache.WarmSpeedup,
		},
		Notes: []string{"seeded from " + filepath.Base(path)},
	}, nil
}
