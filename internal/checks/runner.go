package checks

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/serve"
)

// Verdict statuses.
const (
	// StatusPass means every measured goal held.
	StatusPass = "pass"
	// StatusFail means a goal was violated or the case broke structurally
	// (daemon died, replay bytes diverged, transport failure).
	StatusFail = "fail"
	// StatusSkip means the host does not fit the machine class; no verdict
	// is meaningful.
	StatusSkip = "skip"
)

// Instance is one live hdlsd the runner executes a case against.
type Instance struct {
	// BaseURL is the daemon's root URL ("http://127.0.0.1:PORT").
	BaseURL string
	// Down probes whether the daemon died out from under the case; a
	// non-nil error explains how. May be nil (in-process executors cannot
	// die separately from the test).
	Down func() error
	// Stop tears the instance down after the case.
	Stop func() error
}

// Executor provides a fresh live hdlsd per case, so every case starts
// from a cold store and unpolluted counters. The CLI runs a subprocess
// daemon (StartDaemon); tests and the no-daemon fallback run an
// in-process serve.Server behind httptest.
type Executor interface {
	Start(c *Case) (*Instance, error)
}

// Result is one case's verdict plus everything the trend history keeps.
type Result struct {
	// Check is the qualified check name, "<class>/<case>".
	Check string
	// Status is pass, fail or skip.
	Status string
	// Measured maps metric names to observed values (empty on skip and on
	// structural failure before measurement).
	Measured map[string]float64
	// Failures lists the violated goals (goal failures only).
	Failures []Failure
	// Notes records skipped goals and host-fit reasons.
	Notes []string
	// Err is a structural failure: the daemon died, a replay pass diverged
	// byte-wise, the executor could not start. A Result with Err is a
	// StatusFail even if no goal was evaluated.
	Err error
	// Elapsed is the case's wall time.
	Elapsed time.Duration
}

// Failed reports whether the result must fail CI.
func (r Result) Failed() bool { return r.Status == StatusFail }

// Summary renders the one-line verdict CI surfaces:
//
//	check quick/fig4-grid: FAIL: cells_per_second 61.2 < goal 65
func (r Result) Summary() string {
	switch {
	case r.Err != nil:
		return fmt.Sprintf("check %s: FAIL: %v", r.Check, r.Err)
	case r.Status == StatusFail:
		msgs := make([]string, len(r.Failures))
		for i, f := range r.Failures {
			msgs[i] = f.String()
		}
		return fmt.Sprintf("check %s: FAIL: %s", r.Check, strings.Join(msgs, "; "))
	case r.Status == StatusSkip:
		note := ""
		if len(r.Notes) > 0 {
			note = ": " + r.Notes[0]
		}
		return fmt.Sprintf("check %s: SKIP%s", r.Check, note)
	default:
		return fmt.Sprintf("check %s: PASS", r.Check)
	}
}

// Runner executes a machine class's cases through live hdlsd instances
// and renders named verdicts.
type Runner struct {
	// Exec provides one fresh daemon per case.
	Exec Executor
	// Host is the calibrated execution environment (Calibrate()).
	Host Host
	// Client issues the case's HTTP traffic (default http.DefaultClient).
	Client *http.Client
	// Log receives per-case progress lines; nil silences them.
	Log io.Writer
}

func (r *Runner) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// RunClass fits the host against the class envelope and runs every case.
// A host outside the envelope yields one skip Result per case — the trend
// history still records that the class was attempted — and never a
// wall-clock verdict that would be noise.
func (r *Runner) RunClass(class *Class) []Result {
	scale, reason := class.Machine.Fit(r.Host)
	results := make([]Result, 0, len(class.Cases))
	for _, c := range class.Cases {
		if reason != "" {
			res := Result{
				Check:  c.CheckName(),
				Status: StatusSkip,
				Notes:  []string{"host does not fit machine class: " + reason},
			}
			r.logf("%s", res.Summary())
			results = append(results, res)
			continue
		}
		res := r.RunCase(c, scale)
		r.logf("%s", res.Summary())
		results = append(results, res)
	}
	return results
}

// RunCase executes one case against a fresh daemon and evaluates its
// goals. scale is the host-over-reference calibration ratio from
// MachineSpec.Fit.
func (r *Runner) RunCase(c *Case, scale float64) (res Result) {
	res = Result{Check: c.CheckName(), Status: StatusPass}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()

	inst, err := r.Exec.Start(c)
	if err != nil {
		res.Status = StatusFail
		res.Err = fmt.Errorf("executor: %w", err)
		return res
	}
	defer func() {
		if inst.Stop != nil {
			if err := inst.Stop(); err != nil && res.Err == nil {
				res.Notes = append(res.Notes, "stop: "+err.Error())
			}
		}
	}()

	var measured map[string]float64
	switch c.Spec.Target {
	case TargetSweep:
		measured, err = r.runSweep(c, inst)
	case TargetServe, TargetSoak:
		measured, err = r.runLoad(c, inst)
	default: // unreachable after Load validation
		err = fmt.Errorf("unknown target %q", c.Spec.Target)
	}
	if err != nil {
		res.Status = StatusFail
		res.Err = r.attributeDown(inst, err)
		return res
	}
	res.Measured = measured

	fails, notes := evalGoals(c.Goals, measured, scale)
	res.Failures = fails
	res.Notes = append(res.Notes, notes...)
	if len(fails) > 0 {
		res.Status = StatusFail
	}
	return res
}

// attributeDown upgrades a transport-level error to a daemon-death
// verdict when the executor knows its process is gone, so a SIGKILLed
// daemon fails the check by name instead of crashing the harness. The
// kernel delivers the connection error before the supervisor reaps the
// corpse, so the probe gets a short grace window; the wait only happens
// on the already-failing path.
func (r *Runner) attributeDown(inst *Instance, err error) error {
	if inst.Down == nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if derr := inst.Down(); derr != nil {
			return fmt.Errorf("daemon died mid-case (%v) — last error: %v", derr, err)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// scrape fetches and parses the daemon's /metrics.
func (r *Runner) scrape(baseURL string) (map[string]float64, error) {
	resp, err := r.client().Get(baseURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape /metrics: status %d", resp.StatusCode)
	}
	m, err := serve.ParseMetrics(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape /metrics: %w", err)
	}
	return m, nil
}

// runSweep streams the case's figure-grid slice through POST
// /v1/sweep?stream=1, passes times. Pass 1 is the cold measurement;
// later passes must replay byte-identically from the result store (the
// castore invariant) and feed warm_speedup. Store effectiveness, allocs
// and RSS come from /metrics deltas around the case, so the measurement
// is identical whether the daemon is in-process or a subprocess.
func (r *Runner) runSweep(c *Case, inst *Instance) (map[string]float64, error) {
	spec := c.Spec.Sweep
	cells := spec.cellsFor()
	req, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		return nil, err
	}

	before, err := r.scrape(inst.BaseURL)
	if err != nil {
		return nil, err
	}

	var coldBody []byte
	var coldWall, lastWall time.Duration
	for pass := 1; pass <= spec.passes(); pass++ {
		body, wall, err := r.sweepOnce(inst.BaseURL, req)
		if err != nil {
			return nil, fmt.Errorf("pass %d: %w", pass, err)
		}
		if pass == 1 {
			coldBody, coldWall = body, wall
		} else if !bytes.Equal(body, coldBody) {
			return nil, fmt.Errorf("pass %d replay bytes differ from pass 1 (store invariant broken)", pass)
		}
		lastWall = wall
	}

	after, err := r.scrape(inst.BaseURL)
	if err != nil {
		return nil, err
	}

	measured := map[string]float64{
		MetricCellsPerSecond: float64(len(cells)) / coldWall.Seconds(),
		MetricErrorLines:     float64(bytes.Count(coldBody, []byte(`"error":"`))),
	}
	if spec.passes() >= 2 && lastWall > 0 {
		measured[MetricWarmSpeedup] = coldWall.Seconds() / lastWall.Seconds()
	}
	addScrapeDeltas(measured, before, after)
	return measured, nil
}

// sweepOnce streams one sweep and returns the NDJSON body and wall time.
func (r *Runner) sweepOnce(baseURL string, body []byte) ([]byte, time.Duration, error) {
	start := time.Now()
	resp, err := r.client().Post(baseURL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("sweep: status %d: %s", resp.StatusCode, firstLine(out))
	}
	return out, time.Since(start), nil
}

// runLoad replays loadgen traffic against the daemon: stream mode for the
// serve target, async+wait for the soak target (gating the drain path).
func (r *Runner) runLoad(c *Case, inst *Instance) (map[string]float64, error) {
	spec := c.Spec.Load
	mode, wait := "stream", false
	if c.Spec.Target == TargetSoak {
		mode, wait = "async", true
	}

	before, err := r.scrape(inst.BaseURL)
	if err != nil {
		return nil, err
	}

	sum, err := loadgen.Run(context.Background(), loadgen.Options{
		Target:       inst.BaseURL,
		Clients:      spec.Clients,
		Sweeps:       spec.Sweeps,
		Cells:        spec.Cells,
		Workload:     spec.workload(),
		Mode:         mode,
		Wait:         wait,
		Seed:         spec.seed(),
		ClientPrefix: "check",
		Client:       r.client(),
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if sum.Sweeps == 0 {
		return nil, fmt.Errorf("loadgen: no sweeps completed (transport errors: %d)", sum.TransportErrors)
	}

	after, err := r.scrape(inst.BaseURL)
	if err != nil {
		return nil, err
	}

	measured := map[string]float64{
		MetricRequestsPerSecond: float64(sum.Sweeps) / sum.ElapsedSeconds,
		MetricP99StreamMs:       sum.Latency.P99,
		MetricErrorLines:        float64(sum.ErrorLines),
		MetricTransportErrors:   float64(sum.TransportErrors),
	}
	addScrapeDeltas(measured, before, after)
	return measured, nil
}

// addScrapeDeltas derives the daemon-side metrics every target shares
// from the /metrics scrapes bracketing the case: the store hit rate over
// the case's own lookups, allocations per processed cell, and the final
// resident set (a gauge, not a delta; 0 means the platform could not
// measure it and the goal is skipped).
func addScrapeDeltas(measured map[string]float64, before, after map[string]float64) {
	hits := after["hdlsd_cache_hits_total"] - before["hdlsd_cache_hits_total"]
	misses := after["hdlsd_cache_misses_total"] - before["hdlsd_cache_misses_total"]
	if lookups := hits + misses; lookups > 0 {
		measured[MetricCacheHitRate] = hits / lookups
	}
	cells := after["hdlsd_cells_total"] - before["hdlsd_cells_total"]
	mallocs := after["hdlsd_go_mallocs_total"] - before["hdlsd_go_mallocs_total"]
	if cells > 0 && mallocs > 0 {
		measured[MetricAllocsPerCell] = mallocs / cells
	}
	measured[MetricRSSBytes] = after["hdlsd_process_rss_bytes"]
}

// firstLine trims an error body to its first line for messages.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	return s
}
