package checks

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Measured-metric keys. Goals reference these names, the runner writes
// them into Result.Measured, and trend rows persist them — one vocabulary
// end to end so a failure message, a trend row, and a case.json goal all
// name the same quantity.
const (
	// MetricCellsPerSecond is cold-pass sweep throughput (sweep target).
	MetricCellsPerSecond = "cells_per_second"
	// MetricWarmSpeedup is the last pass's throughput over the first's
	// (sweep target with passes >= 2 — the cachebench warm-over-cold gate).
	MetricWarmSpeedup = "warm_speedup"
	// MetricRequestsPerSecond is completed sweeps per second (serve/soak).
	MetricRequestsPerSecond = "requests_per_second"
	// MetricP99StreamMs is the p99 submit-to-drained latency in
	// milliseconds (serve/soak; for soak it is the async drain latency).
	MetricP99StreamMs = "p99_stream_ms"
	// MetricCacheHitRate is the result-store hit fraction over the case's
	// own lookups (scrape delta, all tiers).
	MetricCacheHitRate = "cache_hit_rate"
	// MetricAllocsPerCell is daemon-side heap allocations per processed
	// cell (scrape delta of hdlsd_go_mallocs_total over hdlsd_cells_total).
	MetricAllocsPerCell = "allocs_per_cell"
	// MetricRSSBytes is the daemon's resident set size after the case.
	MetricRSSBytes = "rss_bytes"
	// MetricErrorLines counts in-band per-cell error lines.
	MetricErrorLines = "error_lines"
	// MetricTransportErrors counts below-HTTP failures (serve/soak).
	MetricTransportErrors = "transport_errors"
)

// GoalSpec is the declarative "goals" object of a case.json. Every field
// is optional but a case must declare at least one. Floors with _min
// suffixes fail when the measurement comes in below them; ceilings with
// _max fail above. Human-unit strings keep the JSON readable: sizes take
// B/KiB/MiB/GiB suffixes, latencies take Go durations ("250ms").
type GoalSpec struct {
	// CellsPerSecondMin is the sweep-throughput floor, declared relative
	// to the machine class's reference calibration and scaled to the host
	// (sweep target only).
	CellsPerSecondMin *float64 `json:"cells_per_second_min,omitempty"`
	// WarmSpeedupMin is the warm-over-cold throughput floor (sweep target
	// with passes >= 2).
	WarmSpeedupMin *float64 `json:"warm_speedup_min,omitempty"`
	// RequestsPerSecondMin is the serving-path throughput floor, scaled
	// like CellsPerSecondMin (serve/soak targets only).
	RequestsPerSecondMin *float64 `json:"requests_per_second_min,omitempty"`
	// P99StreamMax is the p99 stream/drain latency ceiling, a Go duration
	// string (serve/soak targets only).
	P99StreamMax string `json:"p99_stream_max,omitempty"`
	// CacheHitRateMin is the result-store hit-rate floor over the case's
	// own lookups (0..1).
	CacheHitRateMin *float64 `json:"cache_hit_rate_min,omitempty"`
	// AllocsPerCellMax is the daemon-side allocations-per-cell ceiling.
	AllocsPerCellMax *float64 `json:"allocs_per_cell_max,omitempty"`
	// RSSMax is the daemon resident-set ceiling, a size string ("512MiB").
	RSSMax string `json:"rss_max,omitempty"`
	// ErrorLinesMax is the in-band error-line ceiling (usually 0).
	ErrorLinesMax *int `json:"error_lines_max,omitempty"`
	// TransportErrorsMax is the transport-failure ceiling (serve/soak).
	TransportErrorsMax *int `json:"transport_errors_max,omitempty"`
}

// Goal is one normalized, evaluatable gate.
type Goal struct {
	// Metric is the measured key the goal gates (Metric* constants).
	Metric string
	// Floor: true fails when measured < Limit, false when measured > Limit.
	Floor bool
	// Limit is the declared bound in the metric's canonical unit (bytes,
	// milliseconds, plain count) before any host scaling.
	Limit float64
	// Scaled marks throughput floors that scale with the host's
	// calibration ratio against the machine class reference.
	Scaled bool
	// Display is the limit as declared in case.json ("2GiB", "250ms",
	// "65"), used in verdict messages.
	Display string
}

// goalTargets names which targets may declare which goals, so a case
// cannot silently gate a quantity its target never measures.
var goalTargets = map[string][]string{
	MetricCellsPerSecond:    {TargetSweep},
	MetricWarmSpeedup:       {TargetSweep},
	MetricRequestsPerSecond: {TargetServe, TargetSoak},
	MetricP99StreamMs:       {TargetServe, TargetSoak},
	MetricTransportErrors:   {TargetServe, TargetSoak},
	MetricCacheHitRate:      {TargetSweep, TargetServe, TargetSoak},
	MetricAllocsPerCell:     {TargetSweep, TargetServe, TargetSoak},
	MetricRSSBytes:          {TargetSweep, TargetServe, TargetSoak},
	MetricErrorLines:        {TargetSweep, TargetServe, TargetSoak},
}

// parseGoals normalizes a GoalSpec into evaluatable goals, validating
// units, ranges, and goal/target compatibility. Errors name the goal
// field so a broken case.json fails with "goal rss_max: ..." instead of a
// generic unmarshal message.
func (g GoalSpec) parseGoals(target string, passes int) ([]Goal, error) {
	var goals []Goal
	add := func(metric string, floor bool, limit float64, scaled bool, display string) error {
		ok := false
		for _, t := range goalTargets[metric] {
			if t == target {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("goal %s requires target %s, case targets %q",
				goalName(metric, floor), strings.Join(goalTargets[metric], " or "), target)
		}
		goals = append(goals, Goal{Metric: metric, Floor: floor, Limit: limit, Scaled: scaled, Display: display})
		return nil
	}
	if g.CellsPerSecondMin != nil {
		if *g.CellsPerSecondMin <= 0 {
			return nil, fmt.Errorf("goal cells_per_second_min must be positive, got %g", *g.CellsPerSecondMin)
		}
		if err := add(MetricCellsPerSecond, true, *g.CellsPerSecondMin, true,
			trimFloat(*g.CellsPerSecondMin)); err != nil {
			return nil, err
		}
	}
	if g.WarmSpeedupMin != nil {
		if *g.WarmSpeedupMin <= 0 {
			return nil, fmt.Errorf("goal warm_speedup_min must be positive, got %g", *g.WarmSpeedupMin)
		}
		if passes < 2 {
			return nil, fmt.Errorf("goal warm_speedup_min needs sweep.passes >= 2, case declares %d", passes)
		}
		if err := add(MetricWarmSpeedup, true, *g.WarmSpeedupMin, false,
			trimFloat(*g.WarmSpeedupMin)); err != nil {
			return nil, err
		}
	}
	if g.RequestsPerSecondMin != nil {
		if *g.RequestsPerSecondMin <= 0 {
			return nil, fmt.Errorf("goal requests_per_second_min must be positive, got %g", *g.RequestsPerSecondMin)
		}
		if err := add(MetricRequestsPerSecond, true, *g.RequestsPerSecondMin, true,
			trimFloat(*g.RequestsPerSecondMin)); err != nil {
			return nil, err
		}
	}
	if g.P99StreamMax != "" {
		d, err := time.ParseDuration(g.P99StreamMax)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("goal p99_stream_max: bad duration %q (want e.g. \"250ms\")", g.P99StreamMax)
		}
		if err := add(MetricP99StreamMs, false, float64(d)/float64(time.Millisecond), false,
			g.P99StreamMax); err != nil {
			return nil, err
		}
	}
	if g.CacheHitRateMin != nil {
		if *g.CacheHitRateMin < 0 || *g.CacheHitRateMin > 1 {
			return nil, fmt.Errorf("goal cache_hit_rate_min must be in [0,1], got %g", *g.CacheHitRateMin)
		}
		if err := add(MetricCacheHitRate, true, *g.CacheHitRateMin, false,
			trimFloat(*g.CacheHitRateMin)); err != nil {
			return nil, err
		}
	}
	if g.AllocsPerCellMax != nil {
		if *g.AllocsPerCellMax <= 0 {
			return nil, fmt.Errorf("goal allocs_per_cell_max must be positive, got %g", *g.AllocsPerCellMax)
		}
		if err := add(MetricAllocsPerCell, false, *g.AllocsPerCellMax, false,
			trimFloat(*g.AllocsPerCellMax)); err != nil {
			return nil, err
		}
	}
	if g.RSSMax != "" {
		bytes, err := parseSize(g.RSSMax)
		if err != nil {
			return nil, fmt.Errorf("goal rss_max: %v", err)
		}
		if err := add(MetricRSSBytes, false, float64(bytes), false, g.RSSMax); err != nil {
			return nil, err
		}
	}
	if g.ErrorLinesMax != nil {
		if *g.ErrorLinesMax < 0 {
			return nil, fmt.Errorf("goal error_lines_max must be >= 0, got %d", *g.ErrorLinesMax)
		}
		if err := add(MetricErrorLines, false, float64(*g.ErrorLinesMax), false,
			strconv.Itoa(*g.ErrorLinesMax)); err != nil {
			return nil, err
		}
	}
	if g.TransportErrorsMax != nil {
		if *g.TransportErrorsMax < 0 {
			return nil, fmt.Errorf("goal transport_errors_max must be >= 0, got %d", *g.TransportErrorsMax)
		}
		if err := add(MetricTransportErrors, false, float64(*g.TransportErrorsMax), false,
			strconv.Itoa(*g.TransportErrorsMax)); err != nil {
			return nil, err
		}
	}
	if len(goals) == 0 {
		return nil, fmt.Errorf("case declares no goals")
	}
	return goals, nil
}

// goalName reconstructs the case.json field name for error messages.
func goalName(metric string, floor bool) string {
	suffix := "_max"
	if floor {
		suffix = "_min"
	}
	switch metric {
	case MetricP99StreamMs:
		return "p99_stream_max"
	case MetricRSSBytes:
		return "rss_max"
	}
	return metric + suffix
}

// parseSize parses a human byte size: a plain integer (bytes) or an
// integer/decimal with a B, KiB, MiB or GiB suffix. Unknown units are
// named in the error — "512mb" fails loudly instead of gating nothing.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	num := s
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10}, {"B", 1}} {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			num = strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			break
		}
	}
	if num == s && strings.TrimRight(s, "0123456789.") != "" {
		return 0, fmt.Errorf("bad size %q: unknown unit %q (want B, KiB, MiB or GiB)",
			s, strings.TrimLeft(s, "0123456789. "))
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. \"512MiB\")", s)
	}
	return int64(v * float64(mult)), nil
}

// trimFloat formats a declared numeric limit compactly for messages.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Failure is one goal the measurement violated.
type Failure struct {
	// Metric is the measured key that failed.
	Metric string
	// Measured is the observed value in the metric's canonical unit.
	Measured float64
	// Limit is the effective bound after host scaling.
	Limit float64
	// Floor reports the direction: true means measured < Limit failed.
	Floor bool
	// Display is the limit as declared in case.json, for the message.
	Display string
	// ScaleNote is non-empty when the limit was calibration-scaled,
	// e.g. "goal 65 × calib 0.91".
	ScaleNote string
}

// String renders the failure the way CI surfaces it:
// "cells_per_second 61.2 < goal 65 (goal 65 × calib 0.94)".
func (f Failure) String() string {
	op := ">"
	if f.Floor {
		op = "<"
	}
	msg := fmt.Sprintf("%s %s %s goal %s", f.Metric, trimFloat(round3(f.Measured)), op, f.Display)
	if f.ScaleNote != "" {
		msg += " (" + f.ScaleNote + ")"
	}
	return msg
}

// round3 keeps verdict messages readable without hiding regressions.
func round3(v float64) float64 {
	if v == 0 {
		return 0
	}
	scale := 1.0
	for abs := v; abs < 100 && abs > -100 && scale < 1e9; abs *= 10 {
		scale *= 10
	}
	return float64(int64(v*scale+0.5)) / scale
}

// evalGoals applies the goals to a measured map. scale is the host's
// calibration ratio against the machine-class reference (1 when equal);
// throughput floors multiply by it so a slower host gets a
// proportionally lower bar. Metrics the case never measured — RSS on a
// platform without procfs reports 0 and is treated as unmeasured — skip
// their goal and record a note instead of passing or failing blind.
func evalGoals(goals []Goal, measured map[string]float64, scale float64) (fails []Failure, notes []string) {
	for _, g := range goals {
		v, ok := measured[g.Metric]
		if !ok || (g.Metric == MetricRSSBytes && v == 0) {
			notes = append(notes, fmt.Sprintf("goal %s skipped: %s not measured",
				goalName(g.Metric, g.Floor), g.Metric))
			continue
		}
		limit := g.Limit
		scaleNote := ""
		if g.Scaled && scale > 0 && scale != 1 {
			limit *= scale
			scaleNote = fmt.Sprintf("goal %s × calib %s", g.Display, trimFloat(round3(scale)))
		}
		if (g.Floor && v < limit) || (!g.Floor && v > limit) {
			fails = append(fails, Failure{
				Metric: g.Metric, Measured: v, Limit: limit,
				Floor: g.Floor, Display: g.Display, ScaleNote: scaleNote,
			})
		}
	}
	return fails, notes
}
