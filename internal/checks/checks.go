// Package checks is the machine-class perf-gate service (DESIGN.md §14):
// a declarative checks/ tree of machine classes and cases in the
// DataDog-SMP "workload checks" shape, a runner that executes every case
// through a live hdlsd instance — the daemon is dogfooded as the bench
// executor — and a trend history of one NDJSON row per case per run.
//
// The tree:
//
//	checks/<class>/machine.json            resource + calibration envelope
//	checks/<class>/cases/<name>/case.json  workload, target, goals
//	checks/trend/<class>.ndjson            appended measurement history
//
// A case declares a target — a figure-grid sweep, the serving path under
// loadgen traffic, or an async soak slice — and goals: throughput floors,
// alloc/RSS ceilings, cache-hit-rate floors, p99 latency ceilings.
// Verdicts are named: CI fails with
//
//	check quick/fig4-grid: cells_per_second 61.2 < goal 65
//
// instead of a raw regression percentage. Throughput floors are declared
// relative to the machine class's reference calibration and scaled to the
// measured host, the same load-normalization the old bench-trend smoke
// used; hosts outside the class's calibration band skip the class rather
// than producing meaningless wall-clock verdicts.
package checks

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/hdls"
	"repro/internal/cliutil"
)

// Case targets.
const (
	// TargetSweep streams a figure-grid sweep through POST /v1/sweep and
	// gates throughput, warm speedup, hit rate, allocs and RSS.
	TargetSweep = "sweep"
	// TargetServe replays concurrent stream-mode loadgen traffic and gates
	// requests/sec, p99 stream latency and error counts.
	TargetServe = "serve"
	// TargetSoak replays async loadgen traffic polled to completion and
	// gates the drain path (p99 submit-to-drained latency, errors).
	TargetSoak = "soak"
)

// MachineSpec is a machine class's machine.json: the resource envelope a
// host must fit before the class's goals mean anything.
type MachineSpec struct {
	// Description says what hardware the class models.
	Description string `json:"description,omitempty"`
	// CoresMin is the minimum host core count (default 1).
	CoresMin int `json:"cores_min,omitempty"`
	// CalibRefMops is the single-core calibration score (millions of
	// splitmix64 steps per second, cliutil.CalibScore) the class's
	// throughput goals are declared against. Required.
	CalibRefMops float64 `json:"calib_ref_mops"`
	// CalibBand bounds how far a host's calibration may drift from the
	// reference, as a ratio: hosts outside
	// [CalibRefMops/CalibBand, CalibRefMops*CalibBand] skip the class
	// (default 4).
	CalibBand float64 `json:"calib_band,omitempty"`
}

func (m MachineSpec) withDefaults() MachineSpec {
	if m.CoresMin == 0 {
		m.CoresMin = 1
	}
	if m.CalibBand == 0 {
		m.CalibBand = 4
	}
	return m
}

func (m MachineSpec) validate() error {
	if m.CalibRefMops <= 0 {
		return fmt.Errorf("machine.json: calib_ref_mops must be positive, got %g", m.CalibRefMops)
	}
	if m.CalibBand != 0 && m.CalibBand < 1 {
		return fmt.Errorf("machine.json: calib_band must be >= 1, got %g", m.CalibBand)
	}
	if m.CoresMin < 0 {
		return fmt.Errorf("machine.json: cores_min must be >= 0, got %d", m.CoresMin)
	}
	return nil
}

// Host is the measured execution environment a check run calibrates.
type Host struct {
	// Cores is the host's logical CPU count.
	Cores int
	// CalibMops is the measured single-core calibration score.
	CalibMops float64
	// GoVersion stamps trend rows.
	GoVersion string
}

// Calibrate measures the current host: core count plus a ~100ms
// single-core integer-throughput kernel (cliutil.CalibScore — the same
// score the BENCH snapshots record, so trend rows stay comparable).
func Calibrate() Host {
	return Host{
		Cores:     runtime.NumCPU(),
		CalibMops: cliutil.CalibScore(),
		GoVersion: runtime.Version(),
	}
}

// Fit reports whether the host fits the class envelope. On a fit it
// returns the goal scale factor (host calibration over the class
// reference); otherwise reason names what disqualified the host.
func (m MachineSpec) Fit(h Host) (scale float64, reason string) {
	spec := m.withDefaults()
	if h.Cores < spec.CoresMin {
		return 0, fmt.Sprintf("host has %d cores, class needs >= %d", h.Cores, spec.CoresMin)
	}
	if h.CalibMops <= 0 {
		return 0, "host calibration unavailable"
	}
	lo, hi := spec.CalibRefMops/spec.CalibBand, spec.CalibRefMops*spec.CalibBand
	if h.CalibMops < lo || h.CalibMops > hi {
		return 0, fmt.Sprintf("host calibration %.0f Mops/s outside class band [%.0f, %.0f]",
			h.CalibMops, lo, hi)
	}
	return h.CalibMops / spec.CalibRefMops, ""
}

// SweepSpec configures a sweep-target case: the figure-grid slice to
// stream through the daemon.
type SweepSpec struct {
	// Figures lists paper figures (4-7) whose grids the case sweeps.
	Figures []int `json:"figures"`
	// Nodes lists the node counts on the grid's system-size axis.
	Nodes []int `json:"nodes"`
	// Scale is the workload scale divisor (bench uses 64).
	Scale int `json:"scale,omitempty"`
	// Seed drives every cell (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Passes repeats the identical sweep: pass 1 is the cold measurement,
	// later passes must replay byte-identically from the result store and
	// feed the warm_speedup and cache_hit_rate goals (default 1).
	Passes int `json:"passes,omitempty"`
}

// LoadSpec configures a serve- or soak-target case: the loadgen traffic
// replayed against the daemon. Sweep counts (not wall durations) keep the
// case deterministic in shape.
type LoadSpec struct {
	// Clients is the number of concurrent X-Client identities.
	Clients int `json:"clients"`
	// Sweeps is the per-client sweep budget.
	Sweeps int `json:"sweeps"`
	// Cells is the cell count per generated sweep.
	Cells int `json:"cells"`
	// Workload is the workload spec of every cell (default
	// "constant:n=4096").
	Workload string `json:"workload,omitempty"`
	// Seed is the loadgen base seed (default 1); distinct seeds per cell
	// keep the target simulating instead of replaying its cache.
	Seed int64 `json:"seed,omitempty"`
}

// CaseSpec is one case.json.
type CaseSpec struct {
	// Description says what the case gates.
	Description string `json:"description,omitempty"`
	// Target selects the execution path: sweep, serve or soak.
	Target string `json:"target"`
	// Sweep configures a sweep-target case (required for that target).
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Load configures a serve/soak-target case (required for those).
	Load *LoadSpec `json:"load,omitempty"`
	// Goals declares the gates; at least one is required.
	Goals GoalSpec `json:"goals"`
}

// Case is one loaded, validated check.
type Case struct {
	// Name is the case directory name.
	Name string
	// Class is the owning machine class name.
	Class string
	// Spec is the parsed case.json.
	Spec CaseSpec
	// Goals are the normalized gates parsed from Spec.Goals.
	Goals []Goal
}

// CheckName is the qualified name verdicts carry: "<class>/<case>".
func (c *Case) CheckName() string { return c.Class + "/" + c.Name }

// Class is one machine class: its envelope and its cases, sorted by name
// so runs are ordered deterministically.
type Class struct {
	// Name is the class directory name.
	Name string
	// Machine is the parsed machine.json.
	Machine MachineSpec
	// Cases lists the class's checks in name order.
	Cases []*Case
}

// Tree is a loaded checks/ directory.
type Tree struct {
	// Dir is the tree root the classes were loaded from.
	Dir string
	// Classes lists every machine class in name order.
	Classes []*Class
}

// Class resolves a machine class by name; unknown classes are a named
// error listing what exists.
func (t *Tree) Class(name string) (*Class, error) {
	for _, c := range t.Classes {
		if c.Name == name {
			return c, nil
		}
	}
	var have []string
	for _, c := range t.Classes {
		have = append(have, c.Name)
	}
	return nil, fmt.Errorf("checks: unknown machine class %q (have: %s)",
		name, strings.Join(have, ", "))
}

// reservedDirs are checks/ entries that are not machine classes.
var reservedDirs = map[string]bool{"trend": true}

// Load reads and validates a checks/ tree. Every error names the class,
// case and field that broke, so a bad goal unit fails as
// "checks: case quick/fig4-grid: goal rss_max: bad size ..." rather than
// an anonymous unmarshal error.
func Load(dir string) (*Tree, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checks: %w", err)
	}
	tree := &Tree{Dir: dir}
	for _, e := range entries {
		if !e.IsDir() || reservedDirs[e.Name()] || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		class, err := loadClass(dir, e.Name())
		if err != nil {
			return nil, err
		}
		tree.Classes = append(tree.Classes, class)
	}
	if len(tree.Classes) == 0 {
		return nil, fmt.Errorf("checks: no machine classes under %s", dir)
	}
	sort.Slice(tree.Classes, func(i, j int) bool { return tree.Classes[i].Name < tree.Classes[j].Name })
	return tree, nil
}

func loadClass(dir, name string) (*Class, error) {
	class := &Class{Name: name}
	if err := readStrictJSON(filepath.Join(dir, name, "machine.json"), &class.Machine); err != nil {
		return nil, fmt.Errorf("checks: class %s: %w", name, err)
	}
	if err := class.Machine.validate(); err != nil {
		return nil, fmt.Errorf("checks: class %s: %w", name, err)
	}
	casesDir := filepath.Join(dir, name, "cases")
	entries, err := os.ReadDir(casesDir)
	if err != nil {
		return nil, fmt.Errorf("checks: class %s: %w", name, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		c, err := loadCase(casesDir, name, e.Name())
		if err != nil {
			return nil, err
		}
		class.Cases = append(class.Cases, c)
	}
	if len(class.Cases) == 0 {
		return nil, fmt.Errorf("checks: class %s: no cases under %s", name, casesDir)
	}
	sort.Slice(class.Cases, func(i, j int) bool { return class.Cases[i].Name < class.Cases[j].Name })
	return class, nil
}

func loadCase(casesDir, className, caseName string) (*Case, error) {
	c := &Case{Name: caseName, Class: className}
	fail := func(err error) (*Case, error) {
		return nil, fmt.Errorf("checks: case %s/%s: %w", className, caseName, err)
	}
	if err := readStrictJSON(filepath.Join(casesDir, caseName, "case.json"), &c.Spec); err != nil {
		return fail(err)
	}
	passes := 1
	switch c.Spec.Target {
	case TargetSweep:
		if c.Spec.Sweep == nil {
			return fail(fmt.Errorf("target sweep needs a \"sweep\" block"))
		}
		if c.Spec.Load != nil {
			return fail(fmt.Errorf("target sweep does not take a \"load\" block"))
		}
		s := c.Spec.Sweep
		if s.Passes != 0 {
			passes = s.Passes
		}
		if passes < 1 {
			return fail(fmt.Errorf("sweep.passes must be >= 1, got %d", s.Passes))
		}
		if _, err := GridCells(s.Figures, s.Nodes, s.scale(), s.seed()); err != nil {
			return fail(err)
		}
	case TargetServe, TargetSoak:
		if c.Spec.Load == nil {
			return fail(fmt.Errorf("target %s needs a \"load\" block", c.Spec.Target))
		}
		if c.Spec.Sweep != nil {
			return fail(fmt.Errorf("target %s does not take a \"sweep\" block", c.Spec.Target))
		}
		l := c.Spec.Load
		if l.Clients <= 0 || l.Sweeps <= 0 || l.Cells <= 0 {
			return fail(fmt.Errorf("load needs positive clients/sweeps/cells, got %d/%d/%d",
				l.Clients, l.Sweeps, l.Cells))
		}
	case "":
		return fail(fmt.Errorf("missing target (sweep, serve or soak)"))
	default:
		return fail(fmt.Errorf("unknown target %q (sweep, serve or soak)", c.Spec.Target))
	}
	goals, err := c.Spec.Goals.parseGoals(c.Spec.Target, passes)
	if err != nil {
		return fail(err)
	}
	c.Goals = goals
	return c, nil
}

func (s *SweepSpec) scale() int {
	if s.Scale == 0 {
		return 64
	}
	return s.Scale
}

func (s *SweepSpec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

func (s *SweepSpec) passes() int {
	if s.Passes == 0 {
		return 1
	}
	return s.Passes
}

func (l *LoadSpec) workload() string {
	if l.Workload == "" {
		return "constant:n=4096"
	}
	return l.Workload
}

func (l *LoadSpec) seed() int64 {
	if l.Seed == 0 {
		return 1
	}
	return l.Seed
}

// readStrictJSON decodes one JSON file rejecting unknown fields, so a
// typoed goal name fails the load instead of silently gating nothing.
func readStrictJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return nil
}

// cellsFor rebuilds a sweep case's cell list (validated at load time).
func (s *SweepSpec) cellsFor() []hdls.Config {
	cells, err := GridCells(s.Figures, s.Nodes, s.scale(), s.seed())
	if err != nil { // validated by loadCase; cannot fail here
		panic(fmt.Sprintf("checks: %v", err))
	}
	return cells
}
