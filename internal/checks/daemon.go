package checks

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/serve"
)

// InProcessExecutor runs cases against an in-process serve.Server behind
// an httptest listener: the no-daemon fallback the Go tests use, and what
// `go test ./...` exercises without building cmd/hdlsd. Each case still
// gets a fresh server and a fresh store, so measurements match the
// subprocess executor's cold-start semantics; what it cannot reproduce is
// a daemon dying independently of the harness, which is exactly what the
// subprocess executor exists to gate.
type InProcessExecutor struct {
	// Workers is the per-case worker pool (0 = GOMAXPROCS).
	Workers int
}

// Start boots a fresh in-process daemon for the case.
func (e *InProcessExecutor) Start(c *Case) (*Instance, error) {
	dir, err := os.MkdirTemp("", "hdlscheck-*")
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewWithError(serve.Options{Workers: e.Workers, CacheDir: dir})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	return &Instance{
		BaseURL: ts.URL,
		Stop: func() error {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			err := srv.Drain(ctx)
			os.RemoveAll(dir)
			return err
		},
	}, nil
}

// DaemonExecutor runs each case against a freshly exec'd hdlsd subprocess
// — the dogfooding executor cmd/hdlscheck uses. A fresh daemon per case
// keeps cold passes honest (no store or counter pollution across cases)
// and makes the RSS goal meaningful: the scrape sees one case's working
// set, not the whole run's.
type DaemonExecutor struct {
	// Binary is the hdlsd executable path.
	Binary string
	// Workers is forwarded as -workers (0 = daemon default).
	Workers int
	// PidFile, when non-empty, receives the live daemon's PID before each
	// case — the hook scripts/checks_smoke.sh uses to SIGKILL the daemon
	// mid-case and assert the check fails rather than the harness.
	PidFile string
	// StartTimeout bounds the wait for /healthz (default 10s).
	StartTimeout time.Duration
	// Stderr receives the daemon's log output; nil discards it.
	Stderr *os.File
}

// Start execs a fresh hdlsd on a free port and waits for /healthz.
func (e *DaemonExecutor) Start(c *Case) (*Instance, error) {
	dir, err := os.MkdirTemp("", "hdlscheck-*")
	if err != nil {
		return nil, err
	}
	port, err := freePort()
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	addr := "127.0.0.1:" + strconv.Itoa(port)
	args := []string{"-addr", addr, "-cache-dir", dir}
	if e.Workers > 0 {
		args = append(args, "-workers", strconv.Itoa(e.Workers))
	}
	cmd := exec.Command(e.Binary, args...)
	if e.Stderr != nil {
		cmd.Stderr = e.Stderr
		cmd.Stdout = e.Stderr
	}
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("start %s: %w", e.Binary, err)
	}

	// Reap the process in the background so Down can distinguish "daemon
	// exited" from "network blip" without blocking.
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	down := func() error {
		select {
		case err := <-exited:
			exited <- err // keep the result for Stop
			if err == nil {
				return fmt.Errorf("hdlsd pid %d exited", cmd.Process.Pid)
			}
			return fmt.Errorf("hdlsd pid %d: %v", cmd.Process.Pid, err)
		default:
			return nil
		}
	}

	baseURL := "http://" + addr
	if err := waitHealthy(baseURL, down, e.startTimeout()); err != nil {
		cmd.Process.Kill()
		<-exited
		os.RemoveAll(dir)
		return nil, err
	}
	if e.PidFile != "" {
		pid := strconv.Itoa(cmd.Process.Pid) + "\n"
		if err := os.WriteFile(e.PidFile, []byte(pid), 0o644); err != nil {
			cmd.Process.Kill()
			<-exited
			os.RemoveAll(dir)
			return nil, fmt.Errorf("pidfile: %w", err)
		}
	}

	return &Instance{
		BaseURL: baseURL,
		Down:    down,
		Stop: func() error {
			defer os.RemoveAll(dir)
			if down() != nil {
				return nil // already dead; nothing to tear down
			}
			// SIGTERM starts the graceful drain; escalate if it stalls.
			cmd.Process.Signal(os.Interrupt)
			select {
			case <-exited:
				return nil
			case <-time.After(10 * time.Second):
				cmd.Process.Kill()
				<-exited
				return fmt.Errorf("hdlsd pid %d did not drain; killed", cmd.Process.Pid)
			}
		},
	}, nil
}

func (e *DaemonExecutor) startTimeout() time.Duration {
	if e.StartTimeout > 0 {
		return e.StartTimeout
	}
	return 10 * time.Second
}

// waitHealthy polls /healthz until the daemon serves, it dies, or the
// timeout expires.
func waitHealthy(baseURL string, down func() error, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := down(); err != nil {
			return fmt.Errorf("daemon died during startup: %w", err)
		}
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon not healthy at %s after %s", baseURL, timeout)
}

// freePort asks the kernel for an unused TCP port. The tiny race between
// closing and the daemon's bind is acceptable for a test harness.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}
