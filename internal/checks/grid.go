package checks

import (
	"fmt"

	"repro/dls"
	"repro/hdls"
)

// GridCells enumerates a figure-grid slice exactly as hdls.RunFigure
// does — figure × application × intra-node technique × node count ×
// approach — skipping the MPI+OpenMP TSS/FAC2 cells the stock Intel
// runtime cannot run (DESIGN.md §5). It is the shared cell generator for
// the checks runner's sweep target and cmd/cachebench, so both gate the
// same grid `make bench` times through hdlsweep. Unknown figures and
// empty axes are named errors, surfaced when the case is loaded rather
// than mid-run.
func GridCells(figures []int, nodes []int, scale int, seed int64) ([]hdls.Config, error) {
	if len(figures) == 0 {
		return nil, fmt.Errorf("sweep.figures must list at least one figure")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sweep.nodes must list at least one node count")
	}
	if scale <= 0 {
		return nil, fmt.Errorf("sweep.scale must be positive, got %d", scale)
	}
	for _, n := range nodes {
		if n <= 0 {
			return nil, fmt.Errorf("sweep.nodes entries must be positive, got %d", n)
		}
	}
	var cells []hdls.Config
	for _, fig := range figures {
		inter, ok := hdls.FigureInter[fig]
		if !ok {
			return nil, fmt.Errorf("sweep.figures: unknown figure %d (have 4-7)", fig)
		}
		for _, app := range []hdls.App{hdls.Mandelbrot, hdls.PSIA} {
			for _, intra := range hdls.FigureIntras {
				for _, n := range nodes {
					for _, ap := range []hdls.Approach{hdls.MPIMPI, hdls.MPIOpenMP} {
						if ap == hdls.MPIOpenMP && (intra == dls.TSS || intra == dls.FAC2) {
							continue // Intel runtime limitation (§5)
						}
						cells = append(cells, hdls.Config{
							App: app, Nodes: n, Inter: inter, Intra: intra,
							Approach: ap, Scale: scale, Seed: seed,
						})
					}
				}
			}
		}
	}
	return cells, nil
}
