// Package cluster describes the simulated distributed-memory machine:
// topology (nodes × cores), relative core speeds, and the cost parameters of
// the network and memory subsystems. It is a pure description; the MPI and
// OpenMP runtime models consume it.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// NetParams holds inter-node communication costs.
type NetParams struct {
	// Latency is the one-way MPI-level latency of a small message.
	Latency sim.Time
	// Bandwidth is the link bandwidth in bytes per second.
	Bandwidth float64
	// SendOverhead is CPU time the sender spends per message (injection).
	SendOverhead sim.Time
	// RecvOverhead is CPU time the receiver spends per matched message.
	RecvOverhead sim.Time
	// PortService is the per-message service time at a node's NIC; messages
	// targeting the same node serialize on it, which makes incast contention
	// emerge under load. A passive-target RMA atomic on a remote window costs
	// 2×Latency + port service of (SharedWinOp + PortService), ≈3 µs on the
	// miniHPC preset.
	PortService sim.Time
}

// MemParams holds intra-node (shared-memory) costs.
type MemParams struct {
	// LocalAtomic is an uncontended hardware atomic (the OpenMP runtime's
	// dynamic-schedule chunk grab).
	LocalAtomic sim.Time
	// SharedWinOp is the service time of one MPI RMA operation on an
	// MPI-3 shared-memory window. MPI shared windows go through the RMA
	// machinery, so this is markedly more expensive than LocalAtomic.
	SharedWinOp sim.Time
	// LockAttempt is the service time one lock-attempt consumes at the
	// window's host port under the lock-polling protocol (Zhao et al.).
	LockAttempt sim.Time
	// PollInterval is the back-off between failed lock attempts.
	PollInterval sim.Time
	// WinSync is the cost of MPI_Win_sync (memory barrier) on a shared window.
	WinSync sim.Time
	// CopyBandwidth is intra-node memcpy bandwidth in bytes per second,
	// used for node-local two-sided messages.
	CopyBandwidth float64
}

// Perturber injects time-dependent execution-time perturbations (transient
// slowdowns, background load, extra noise). internal/perturb provides the
// implementation; the indirection keeps this package a pure description.
// Factor returns the multiplier (≥ some small positive value) for work
// starting on node at virtual time now; NoiseCV adds white noise on top of
// the cluster's own NoiseCV.
type Perturber interface {
	Factor(node int, now sim.Time) float64
	NoiseCV() float64
}

// Config describes a machine.
type Config struct {
	Name         string
	Nodes        int
	CoresPerNode int
	// NodeCores holds per-node core counts for heterogeneous machines (e.g.
	// miniHPC's 16-core Xeon vs. 64-core KNL partitions). A nil slice means
	// every node has CoresPerNode cores; otherwise the pattern is tiled
	// across nodes and CoresPerNode acts as the documentation default.
	NodeCores []int
	// NodeSpeed holds per-node relative speeds (1.0 = reference core). A nil
	// slice means homogeneous. Iteration execution time divides by speed.
	NodeSpeed []float64
	// NoiseCV, when positive, applies multiplicative noise with the given
	// coefficient of variation to each executed chunk, modelling systemic
	// variability (OS jitter). Zero keeps runs perfectly smooth.
	NoiseCV float64
	// Perturb, when non-nil, injects the scenario perturbations of
	// internal/perturb into every execution. Nil keeps the machine smooth
	// and the paper-default goldens byte-identical.
	Perturb Perturber
	Net     NetParams
	Mem     MemParams
}

// Validate checks structural invariants.
func (c *Config) Validate() error {
	if c.Nodes <= 0 {
		return errors.New("cluster: Nodes must be positive")
	}
	if c.CoresPerNode <= 0 {
		return errors.New("cluster: CoresPerNode must be positive")
	}
	if c.NodeSpeed != nil && len(c.NodeSpeed) != c.Nodes {
		return fmt.Errorf("cluster: NodeSpeed has %d entries for %d nodes", len(c.NodeSpeed), c.Nodes)
	}
	for i, s := range c.NodeSpeed {
		if s <= 0 {
			return fmt.Errorf("cluster: NodeSpeed[%d] = %v, must be positive", i, s)
		}
	}
	if len(c.NodeCores) > c.Nodes {
		return fmt.Errorf("cluster: NodeCores has %d entries for %d nodes", len(c.NodeCores), c.Nodes)
	}
	for i, n := range c.NodeCores {
		if n <= 0 {
			return fmt.Errorf("cluster: NodeCores[%d] = %d, must be positive", i, n)
		}
	}
	if c.NoiseCV < 0 {
		return errors.New("cluster: NoiseCV must be non-negative")
	}
	if c.Net.Bandwidth <= 0 || c.Mem.CopyBandwidth <= 0 {
		return errors.New("cluster: bandwidths must be positive")
	}
	if c.Net.Latency < 0 || c.Mem.PollInterval <= 0 {
		return errors.New("cluster: latency must be >= 0 and poll interval > 0")
	}
	return nil
}

// TotalCores reports the machine's core count (summing NodeCores when the
// machine is heterogeneous).
func (c *Config) TotalCores() int {
	if len(c.NodeCores) == 0 {
		return c.Nodes * c.CoresPerNode
	}
	total := 0
	for n := 0; n < c.Nodes; n++ {
		total += c.Cores(n)
	}
	return total
}

// Cores returns node n's core count (the tiled NodeCores pattern, or the
// homogeneous CoresPerNode).
func (c *Config) Cores(node int) int {
	if len(c.NodeCores) == 0 {
		return c.CoresPerNode
	}
	return c.NodeCores[node%len(c.NodeCores)]
}

// MaxCores returns the largest per-node core count.
func (c *Config) MaxCores() int {
	m := 0
	for n := 0; n < c.Nodes; n++ {
		if k := c.Cores(n); k > m {
			m = k
		}
	}
	return m
}

// Speed returns node n's relative speed.
func (c *Config) Speed(node int) float64 {
	if c.NodeSpeed == nil {
		return 1
	}
	return c.NodeSpeed[node]
}

// ExecTime converts a reference-core duration into node-local execution
// time starting at virtual time now: the duration divides by the node's
// relative speed, is stretched by the perturbation model's factor (sampled
// at the chunk's start time), and — when NoiseCV or the perturber's noise
// is set — picks up multiplicative noise drawn from rng (truncated so
// durations stay positive). With no perturber and NoiseCV = 0 the result
// is exactly ref/speed, preserving the smooth-machine goldens bit for bit.
func (c *Config) ExecTime(node int, ref, now sim.Time, rng *rand.Rand) sim.Time {
	d := ref / sim.Time(c.Speed(node))
	if c.Perturb != nil {
		if f := c.Perturb.Factor(node, now); f != 1 {
			d *= sim.Time(f)
		}
	}
	d = applyNoise(d, c.NoiseCV, rng)
	if c.Perturb != nil {
		d = applyNoise(d, c.Perturb.NoiseCV(), rng)
	}
	return d
}

// applyNoise multiplies d by a 1+cv·N(0,1) factor floored at 0.05.
func applyNoise(d sim.Time, cv float64, rng *rand.Rand) sim.Time {
	if cv <= 0 || rng == nil {
		return d
	}
	f := 1 + cv*rng.NormFloat64()
	if f < 0.05 {
		f = 0.05
	}
	return d * sim.Time(f)
}

// WithNodes returns a copy of the config resized to n nodes, keeping all
// cost parameters and tiling any per-node speed/core patterns. Used by
// scaling sweeps.
func (c Config) WithNodes(n int) Config {
	c.Nodes = n
	if c.NodeSpeed != nil {
		sp := make([]float64, n)
		for i := range sp {
			sp[i] = c.NodeSpeed[i%len(c.NodeSpeed)]
		}
		c.NodeSpeed = sp
	}
	if c.NodeCores != nil {
		nc := make([]int, n)
		for i := range nc {
			nc[i] = c.NodeCores[i%len(c.NodeCores)]
		}
		c.NodeCores = nc
	}
	return c
}

// MiniHPC models the paper's target system: dual-socket Intel Xeon E5-2640
// nodes (16 of the 20 cores are used per node, as in the paper's runs),
// Intel Omni-Path (100 Gbit/s, ~100 ns link latency; ~1 µs MPI small-message
// latency once the software stack is included).
//
// The RMA cost constants are calibrated against published MPI shared-memory
// microbenchmarks: a shared-window RMA op costs ~0.4 µs of port service, a
// lock attempt ~1.2 µs (it is a full RMA round through the progress engine),
// the polling retry interval is ~6 µs, and MPI_Win_sync ~0.25 µs. DESIGN.md
// §3 explains why only these relative magnitudes matter for the paper's
// observations.
func MiniHPC(nodes int) Config {
	return Config{
		Name:         "miniHPC",
		Nodes:        nodes,
		CoresPerNode: 16,
		Net: NetParams{
			Latency:      1.2 * sim.Microsecond,
			Bandwidth:    12.5e9, // 100 Gbit/s
			SendOverhead: 0.3 * sim.Microsecond,
			RecvOverhead: 0.3 * sim.Microsecond,
			PortService:  0.25 * sim.Microsecond,
		},
		Mem: MemParams{
			LocalAtomic:   0.06 * sim.Microsecond,
			SharedWinOp:   0.4 * sim.Microsecond,
			LockAttempt:   1.2 * sim.Microsecond,
			PollInterval:  6 * sim.Microsecond,
			WinSync:       0.25 * sim.Microsecond,
			CopyBandwidth: 8e9,
		},
	}
}

// MiniHPCKNL models the remaining four miniHPC nodes: standalone Intel Xeon
// Phi 7210 manycore processors (64 cores, lower per-core speed — roughly
// 0.45× a Xeon core at scalar work — and slower shared-memory operations).
// The paper dedicates only the 16 Xeon nodes to its evaluation; this preset
// supports the manycore what-if experiments.
func MiniHPCKNL(nodes int) Config {
	c := MiniHPC(nodes)
	c.Name = "miniHPC-KNL"
	c.CoresPerNode = 64
	c.NodeSpeed = make([]float64, nodes)
	for i := range c.NodeSpeed {
		c.NodeSpeed[i] = 0.45
	}
	// KNL's MCDRAM/mesh makes atomics and memory ops slower per-core.
	c.Mem.LocalAtomic *= 2
	c.Mem.SharedWinOp *= 2
	c.Mem.LockAttempt *= 2
	c.Mem.CopyBandwidth = 6e9
	return c
}

// MiniHPCMixed models a mixed miniHPC allocation alternating Xeon nodes
// (16 cores, speed 1.0) with KNL nodes (64 cores, speed 0.45) — the
// machine-level heterogeneity scenario the paper's homogeneous evaluation
// leaves open. The pattern starts with a Xeon node and tiles.
func MiniHPCMixed(nodes int) Config {
	c := MiniHPC(nodes)
	c.Name = "miniHPC-mixed"
	c.NodeCores = make([]int, nodes)
	c.NodeSpeed = make([]float64, nodes)
	for i := 0; i < nodes; i++ {
		if i%2 == 0 {
			c.NodeCores[i] = 16
			c.NodeSpeed[i] = 1.0
		} else {
			c.NodeCores[i] = 64
			c.NodeSpeed[i] = 0.45
		}
	}
	return c
}

// MiniHPCHetero returns the miniHPC model with a repeating pattern of node
// speeds, for experiments with systemic heterogeneity (e.g. the AWF
// extension benches).
func MiniHPCHetero(nodes int, speeds ...float64) Config {
	c := MiniHPC(nodes)
	if len(speeds) == 0 {
		speeds = []float64{1.0, 0.8}
	}
	c.Name = "miniHPC-hetero"
	c.NodeSpeed = make([]float64, nodes)
	for i := range c.NodeSpeed {
		c.NodeSpeed[i] = speeds[i%len(speeds)]
	}
	return c
}
