package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestNodeCoresAccessors(t *testing.T) {
	c := MiniHPC(4)
	c.NodeCores = []int{16, 64}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	wantCores := []int{16, 64, 16, 64} // tiled
	total := 0
	for n, want := range wantCores {
		if got := c.Cores(n); got != want {
			t.Errorf("Cores(%d) = %d, want %d", n, got, want)
		}
		total += want
	}
	if got := c.TotalCores(); got != total {
		t.Errorf("TotalCores = %d, want %d", got, total)
	}
	if got := c.MaxCores(); got != 64 {
		t.Errorf("MaxCores = %d, want 64", got)
	}
	homo := MiniHPC(4)
	if homo.TotalCores() != 64 || homo.MaxCores() != 16 || homo.Cores(3) != 16 {
		t.Error("homogeneous accessors changed")
	}
}

func TestNodeCoresValidation(t *testing.T) {
	c := MiniHPC(2)
	c.NodeCores = []int{16, 0}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted zero core count")
	}
	c.NodeCores = []int{16, 16, 16}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted more NodeCores entries than nodes")
	}
}

func TestWithNodesTilesCores(t *testing.T) {
	c := MiniHPCMixed(2)
	d := c.WithNodes(5)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []int{16, 64, 16, 64, 16}
	for n, w := range want {
		if d.Cores(n) != w {
			t.Errorf("WithNodes(5).Cores(%d) = %d, want %d", n, d.Cores(n), w)
		}
	}
}

// stubPerturber scales node 1 by 3× and reports no extra noise.
type stubPerturber struct{ calls int }

func (s *stubPerturber) Factor(node int, now sim.Time) float64 {
	s.calls++
	if node == 1 {
		return 3
	}
	return 1
}
func (s *stubPerturber) NoiseCV() float64 { return 0 }

func TestExecTimePerturbHook(t *testing.T) {
	c := MiniHPC(2)
	c.NodeSpeed = []float64{1, 0.5}
	st := &stubPerturber{}
	c.Perturb = st
	rng := rand.New(rand.NewSource(1))
	if got := c.ExecTime(0, 1, 0, rng); got != 1 {
		t.Errorf("node 0 ExecTime = %v, want 1 (speed 1, factor 1)", got)
	}
	if got := c.ExecTime(1, 1, 0, rng); got != 6 {
		t.Errorf("node 1 ExecTime = %v, want 6 (speed 0.5 ×2, factor ×3)", got)
	}
	if st.calls != 2 {
		t.Errorf("perturber consulted %d times, want 2", st.calls)
	}
	// Without perturber and noise, ExecTime must be the exact division.
	c.Perturb = nil
	if got := c.ExecTime(1, 1, 123, nil); got != 2 {
		t.Errorf("smooth ExecTime = %v, want 2", got)
	}
}
