package cluster

import (
	"strings"
	"testing"
)

func TestMiniHPCValid(t *testing.T) {
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		c := MiniHPC(nodes)
		if err := c.Validate(); err != nil {
			t.Fatalf("MiniHPC(%d) invalid: %v", nodes, err)
		}
		if c.TotalCores() != nodes*16 {
			t.Fatalf("TotalCores = %d, want %d", c.TotalCores(), nodes*16)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := MiniHPC(4)
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }, "Nodes"},
		{"negative cores", func(c *Config) { c.CoresPerNode = -1 }, "CoresPerNode"},
		{"speed length", func(c *Config) { c.NodeSpeed = []float64{1, 1} }, "NodeSpeed"},
		{"zero speed", func(c *Config) { c.NodeSpeed = []float64{1, 0, 1, 1} }, "positive"},
		{"negative noise", func(c *Config) { c.NoiseCV = -0.1 }, "NoiseCV"},
		{"zero bandwidth", func(c *Config) { c.Net.Bandwidth = 0 }, "bandwidth"},
		{"zero poll", func(c *Config) { c.Mem.PollInterval = 0 }, "poll"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("Validate accepted a bad config")
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSpeedDefaultsToOne(t *testing.T) {
	c := MiniHPC(3)
	for n := 0; n < 3; n++ {
		if c.Speed(n) != 1 {
			t.Fatalf("Speed(%d) = %v, want 1", n, c.Speed(n))
		}
	}
}

func TestHeteroSpeeds(t *testing.T) {
	c := MiniHPCHetero(4, 1.0, 0.5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0, 0.5, 1.0, 0.5}
	for i, w := range want {
		if c.Speed(i) != w {
			t.Fatalf("Speed(%d) = %v, want %v", i, c.Speed(i), w)
		}
	}
}

func TestWithNodesResizes(t *testing.T) {
	c := MiniHPCHetero(2, 1.0, 0.5).WithNodes(5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Nodes != 5 || len(c.NodeSpeed) != 5 {
		t.Fatalf("WithNodes: Nodes=%d len(NodeSpeed)=%d", c.Nodes, len(c.NodeSpeed))
	}
	if c.NodeSpeed[2] != 1.0 || c.NodeSpeed[3] != 0.5 {
		t.Fatalf("speed pattern not repeated: %v", c.NodeSpeed)
	}
	// Homogeneous resize keeps nil speeds.
	h := MiniHPC(2).WithNodes(8)
	if h.NodeSpeed != nil {
		t.Fatal("homogeneous WithNodes grew a NodeSpeed slice")
	}
}

func TestKNLPreset(t *testing.T) {
	c := MiniHPCKNL(4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.CoresPerNode != 64 {
		t.Fatalf("KNL cores = %d, want 64", c.CoresPerNode)
	}
	for n := 0; n < 4; n++ {
		if c.Speed(n) != 0.45 {
			t.Fatalf("KNL speed = %v, want 0.45", c.Speed(n))
		}
	}
	xeon := MiniHPC(4)
	if c.Mem.LockAttempt <= xeon.Mem.LockAttempt {
		t.Fatal("KNL lock attempts should cost more than Xeon's")
	}
}
