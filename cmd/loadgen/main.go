// Command loadgen replays concurrent sweep traffic against an hdlsd
// daemon or fleet coordinator: N client goroutines, each with its own
// X-Client identity, submitting generated sweeps for a bounded duration.
// It is the load half of the durability story (DESIGN.md §13) — the soak
// harness (scripts/fleet_soak.sh) runs it while SIGKILLing daemons to
// prove jobs survive, and points it at a tiny-capacity daemon to prove
// overload sheds with 429 + Retry-After instead of queuing silently.
//
// Modes:
//
//	-mode stream  POST /v1/sweep?stream=1 and consume the NDJSON stream
//	-mode async   POST /v1/sweep (202 + job id), optionally poll the job
//	              to completion and fetch its results (-wait)
//
// A 429 or 503 is not an error: loadgen records it, honors a bounded
// slice of the Retry-After hint, and keeps going — exactly what a
// well-behaved sweep client does. The run summary is a single JSON line
// on stdout (counts per HTTP status, NDJSON lines seen, in-band error
// lines, transport errors, Retry-After observations, async job ids), so
// shell harnesses can assert on it with python3 or grep.
//
//	loadgen -target http://127.0.0.1:8080 -clients 4 -duration 10s
//	loadgen -target http://127.0.0.1:8080 -mode async -sweeps 2 -wait
//	loadgen -target http://127.0.0.1:8080 -chaos 'delay:cells=1,ms=50'
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "daemon or coordinator base URL")
		clients  = flag.Int("clients", 4, "concurrent client identities (X-Client loadgen-<i>)")
		duration = flag.Duration("duration", 10*time.Second, "run length (ignored when -sweeps > 0)")
		sweeps   = flag.Int("sweeps", 0, "sweeps per client (0 = submit until -duration elapses)")
		cells    = flag.Int("cells", 8, "cells per sweep (seeds stay distinct across the whole run)")
		workload = flag.String("workload", "constant:n=4096", "workload spec for every generated cell")
		mode     = flag.String("mode", "stream", "submission mode: stream or async")
		timeout  = flag.String("timeout", "", "per-sweep deadline forwarded as ?timeout= (e.g. 5s)")
		chaos    = flag.String("chaos", "", "X-Chaos header armed on every sweep (worker must run -chaos header)")
		prefix   = flag.String("client-prefix", "loadgen", "X-Client identity prefix")
		seed     = flag.Int64("seed", 1, "base seed; client i sweep k cell j gets a distinct derived seed")
		wait     = flag.Bool("wait", false, "async mode: poll each job to completion and fetch its results")
	)
	flag.Parse()
	if *mode != "stream" && *mode != "async" {
		log.Fatalf("loadgen: unknown -mode %q (stream, async)", *mode)
	}

	var t tally
	t.statuses = map[int]int{}
	start := time.Now()
	stopAt := start.Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client{
				target: *target, mode: *mode, timeout: *timeout, chaos: *chaos,
				id: fmt.Sprintf("%s-%d", *prefix, i), wait: *wait,
				cells: *cells, workload: *workload,
				seedBase: *seed + int64(i)*1_000_000_000,
				tally:    &t,
			}
			for k := 0; ; k++ {
				if *sweeps > 0 {
					if k >= *sweeps {
						return
					}
				} else if time.Now().After(stopAt) {
					return
				}
				c.sweep(k)
			}
		}(i)
	}
	wg.Wait()

	t.mu.Lock()
	statuses := map[string]int{}
	for code, n := range t.statuses {
		statuses[strconv.Itoa(code)] = n
	}
	sort.Strings(t.jobIDs)
	summary := map[string]any{
		"sweeps":           t.sweeps,
		"statuses":         statuses,
		"lines":            t.lines,
		"error_lines":      t.errorLines,
		"transport_errors": t.transportErrors,
		"retry_after_seen": t.retryAfterSeen,
		"job_ids":          t.jobIDs,
		"elapsed_seconds":  time.Since(start).Seconds(),
	}
	attempted := t.sweeps
	t.mu.Unlock()
	if err := json.NewEncoder(os.Stdout).Encode(summary); err != nil {
		log.Fatalf("loadgen: encode summary: %v", err)
	}
	// Zero attempts means the configuration never produced traffic —
	// fail loudly so a broken harness cannot pass vacuously.
	if attempted == 0 {
		log.Fatal("loadgen: no sweeps were attempted")
	}
}

// tally aggregates observations across all client goroutines.
type tally struct {
	mu              sync.Mutex
	sweeps          int
	statuses        map[int]int
	lines           int
	errorLines      int
	transportErrors int
	retryAfterSeen  int
	jobIDs          []string
}

// client is one concurrent submitter identity.
type client struct {
	target, mode, timeout, chaos, id string
	wait                             bool
	cells                            int
	workload                         string
	seedBase                         int64
	tally                            *tally
}

// sweep submits one generated sweep and records the outcome. Submission
// failures are observations, not fatal errors: the soak harness kills
// daemons under this load on purpose.
func (c *client) sweep(k int) {
	body := c.body(k)
	url := c.target + "/v1/sweep"
	if c.mode == "stream" {
		url += "?stream=1"
		if c.timeout != "" {
			url += "&timeout=" + c.timeout
		}
	} else if c.timeout != "" {
		url += "?timeout=" + c.timeout
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		log.Fatalf("loadgen: build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", c.id)
	if c.chaos != "" {
		req.Header.Set("X-Chaos", c.chaos)
	}
	resp, err := http.DefaultClient.Do(req)
	c.tally.mu.Lock()
	c.tally.sweeps++
	c.tally.mu.Unlock()
	if err != nil {
		c.note(func(t *tally) { t.transportErrors++ })
		time.Sleep(100 * time.Millisecond) // the target may be mid-restart
		return
	}
	defer resp.Body.Close()
	c.note(func(t *tally) { t.statuses[resp.StatusCode]++ })
	switch {
	case resp.StatusCode == http.StatusOK && c.mode == "stream":
		c.consume(resp.Body)
	case resp.StatusCode == http.StatusAccepted && c.mode == "async":
		var acc struct {
			JobID string `json:"job_id"`
		}
		if json.NewDecoder(resp.Body).Decode(&acc) == nil && acc.JobID != "" {
			c.note(func(t *tally) { t.jobIDs = append(t.jobIDs, acc.JobID) })
			if c.wait {
				c.awaitJob(acc.JobID)
			}
		}
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		// Honor a bounded slice of the hint: enough to be a polite client,
		// capped so a long hint cannot stall the generator's run budget.
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			c.note(func(t *tally) { t.retryAfterSeen++ })
			time.Sleep(min(time.Duration(secs)*time.Second, 500*time.Millisecond))
		}
	default:
		io.Copy(io.Discard, resp.Body)
	}
}

// body generates the k-th sweep request for this client; every cell seed
// is distinct run-wide so the target really simulates under load instead
// of replaying its cache.
func (c *client) body(k int) []byte {
	inters := []string{"STATIC", "GSS", "TSS", "FAC2"}
	cells := make([]map[string]any, c.cells)
	for j := range cells {
		cells[j] = map[string]any{
			"nodes": 2, "workers_per_node": 4,
			"inter": inters[j%len(inters)], "intra": "STATIC", "approach": "MPI+MPI",
			"seed":     c.seedBase + int64(k)*int64(c.cells) + int64(j),
			"workload": c.workload,
		}
	}
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		log.Fatalf("loadgen: marshal sweep: %v", err)
	}
	return body
}

// consume counts the NDJSON lines of one sweep stream.
func (c *client) consume(r io.Reader) {
	data, err := io.ReadAll(r)
	if err != nil {
		c.note(func(t *tally) { t.transportErrors++ })
		return
	}
	lines := bytes.Count(data, []byte{'\n'})
	errs := bytes.Count(data, []byte(`"error":"`))
	c.note(func(t *tally) { t.lines += lines; t.errorLines += errs })
}

// awaitJob polls an async job to completion, then fetches and counts its
// results. Poll failures are transport observations — the daemon may be
// down between SIGKILL and restart.
func (c *client) awaitJob(id string) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.target + "/v1/jobs/" + id)
		if err != nil {
			c.note(func(t *tally) { t.transportErrors++ })
			time.Sleep(200 * time.Millisecond)
			continue
		}
		var status struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err == nil && status.Status == "done" {
			results, err := http.Get(c.target + "/v1/jobs/" + id + "/results")
			if err != nil {
				c.note(func(t *tally) { t.transportErrors++ })
				return
			}
			defer results.Body.Close()
			c.consume(results.Body)
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Printf("loadgen: job %s never completed", id)
}

// note applies one mutation to the shared tally under its lock.
func (c *client) note(fn func(*tally)) {
	c.tally.mu.Lock()
	defer c.tally.mu.Unlock()
	fn(c.tally)
}
