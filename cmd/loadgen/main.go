// Command loadgen replays concurrent sweep traffic against an hdlsd
// daemon or fleet coordinator: N client goroutines, each with its own
// X-Client identity, submitting generated sweeps for a bounded duration.
// It is the load half of the durability story (DESIGN.md §13) — the soak
// harness (scripts/fleet_soak.sh) runs it while SIGKILLing daemons to
// prove jobs survive, and points it at a tiny-capacity daemon to prove
// overload sheds with 429 + Retry-After instead of queuing silently.
//
// Modes:
//
//	-mode stream  POST /v1/sweep?stream=1 and consume the NDJSON stream
//	-mode async   POST /v1/sweep (202 + job id), optionally poll the job
//	              to completion and fetch its results (-wait)
//
// A 429 or 503 is not an error: loadgen records it, honors a bounded
// slice of the Retry-After hint, and keeps going — exactly what a
// well-behaved sweep client does. The run summary is a single JSON line
// on stdout (counts per HTTP status, NDJSON lines seen, in-band error
// lines, transport errors, Retry-After observations, async job ids,
// completed-sweep latency percentiles), so shell harnesses can assert on
// it with python3 or grep. The generator itself lives in internal/loadgen
// — the machine-class perf gates (internal/checks, DESIGN.md §14) drive
// the same engine for their serving-path cases — and the summary's field
// names are a frozen schema pinned by that package's golden test.
//
//	loadgen -target http://127.0.0.1:8080 -clients 4 -duration 10s
//	loadgen -target http://127.0.0.1:8080 -mode async -sweeps 2 -wait
//	loadgen -target http://127.0.0.1:8080 -chaos 'delay:cells=1,ms=50'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "daemon or coordinator base URL")
		clients  = flag.Int("clients", 4, "concurrent client identities (X-Client loadgen-<i>)")
		duration = flag.Duration("duration", 10*time.Second, "run length (ignored when -sweeps > 0)")
		sweeps   = flag.Int("sweeps", 0, "sweeps per client (0 = submit until -duration elapses)")
		cells    = flag.Int("cells", 8, "cells per sweep (seeds stay distinct across the whole run)")
		workload = flag.String("workload", "constant:n=4096", "workload spec for every generated cell")
		mode     = flag.String("mode", "stream", "submission mode: stream or async")
		timeout  = flag.String("timeout", "", "per-sweep deadline forwarded as ?timeout= (e.g. 5s)")
		chaos    = flag.String("chaos", "", "X-Chaos header armed on every sweep (worker must run -chaos header)")
		prefix   = flag.String("client-prefix", "loadgen", "X-Client identity prefix")
		seed     = flag.Int64("seed", 1, "base seed; client i sweep k cell j gets a distinct derived seed")
		wait     = flag.Bool("wait", false, "async mode: poll each job to completion and fetch its results")
	)
	flag.Parse()

	summary, err := loadgen.Run(context.Background(), loadgen.Options{
		Target:       *target,
		Clients:      *clients,
		Duration:     *duration,
		Sweeps:       *sweeps,
		Cells:        *cells,
		Workload:     *workload,
		Mode:         *mode,
		Timeout:      *timeout,
		Chaos:        *chaos,
		ClientPrefix: *prefix,
		Seed:         *seed,
		Wait:         *wait,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if err := json.NewEncoder(os.Stdout).Encode(summary); err != nil {
		log.Fatalf("loadgen: encode summary: %v", err)
	}
	// Zero attempts means the configuration never produced traffic —
	// fail loudly so a broken harness cannot pass vacuously.
	if summary.Sweeps == 0 {
		log.Fatal("loadgen: no sweeps were attempted")
	}
}
