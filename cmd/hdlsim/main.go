// Command hdlsim runs a single hierarchical DLS experiment on the simulated
// miniHPC cluster and reports the paper's metric (parallel loop time) plus
// the overhead breakdown, optionally with an ASCII Gantt chart (the
// reproduction of the paper's Figures 2 and 3) and a CSV event trace.
//
// Examples:
//
//	hdlsim -app mandelbrot -inter GSS -intra STATIC -approach mpi+mpi -nodes 4
//	hdlsim -app psia -inter FAC2 -intra SS -approach mpi+openmp -nodes 8 -scale 32
//	hdlsim -app mandelbrot -inter GSS -intra STATIC -nodes 1 -workers 8 -gantt -scale 256
//	hdlsim -app mandelbrot -inter GSS -intra SS -nodes 2,4,8,16,64   # system-size scan
//
// Scenario axes (heterogeneous topology, perturbations, synthetic
// workloads) ride on the same flags the robustness sweep uses:
//
//	hdlsim -inter GSS -speeds 1,0.5 -workload "gaussian:n=8192,cv=0.5"
//	hdlsim -inter FAC2 -slow-rate 5 -slow-factor 3 -slow-dur 0.01 -bg 0,0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/dls"
	"repro/hdls"
	"repro/internal/cliutil"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		appName  = flag.String("app", "mandelbrot", "application: mandelbrot | psia")
		interS   = flag.String("inter", "GSS", "inter-node DLS technique (STATIC, SS, GSS, TSS, FAC, FAC2, TFSS, FSC)")
		intraS   = flag.String("intra", "STATIC", "intra-node DLS technique (STATIC, SS, GSS, TSS, FAC2, ...)")
		approach = flag.String("approach", "mpi+mpi", "mpi+mpi | mpi+openmp | nowait")
		nodesCSV = flag.String("nodes", "4", "compute node count, or a comma-separated list (runs one experiment per count)")
		workers  = flag.Int("workers", 16, "workers (ranks or threads) per node")
		scale    = flag.Int("scale", 8, "workload scale divisor (1 = full size)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		noise    = flag.Float64("noise", 0, "systemic noise CoV (0 = smooth machine)")
		extended = flag.Bool("extended", false, "enable the extended OpenMP runtime (TSS/FAC2 intra)")
		gantt    = flag.Bool("gantt", false, "print an ASCII Gantt chart of the execution")
		csvPath  = flag.String("trace-csv", "", "write the event trace to this CSV file")
		jsonPath = flag.String("trace-chrome", "", "write the event trace as Chrome tracing JSON (chrome://tracing, Perfetto)")

		speedCSV = flag.String("speeds", "", "relative node speeds, tiled (e.g. 1,0.5)")
		coreCSV  = flag.String("cores", "", "per-node core counts, tiled (e.g. 16,64)")
		slowRate = flag.Float64("slow-rate", 0, "transient slowdowns per second per node")
		slowFac  = flag.Float64("slow-factor", 2, "slowdown execution-time multiplier")
		slowDur  = flag.Float64("slow-dur", 0.01, "mean slowdown duration (seconds)")
		bgCSV    = flag.String("bg", "", "per-node background load fractions, tiled (e.g. 0,0.3)")
		wlSpec   = flag.String("workload", "", "workload spec (e.g. \"gaussian:n=8192,cv=0.5\") overriding -app")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf  = flag.String("memprofile", "", "write a heap profile to this path on exit")
	)
	flag.Parse()

	stopProf, err := cliutil.StartProfiles(*cpuProf, *memProf)
	fatalIf(err)
	defer stopProf()

	app, err := hdls.ParseApp(*appName)
	fatalIf(err)
	inter, err := dls.Parse(*interS)
	fatalIf(err)
	intra, err := dls.Parse(*intraS)
	fatalIf(err)
	ap, err := parseApproach(*approach)
	fatalIf(err)
	nodeList, err := cliutil.ParseNodeCounts(*nodesCSV)
	if err != nil {
		fatalIf(fmt.Errorf("-nodes: %w (want a positive count or comma-separated list, e.g. 2,4,8,16)", err))
	}
	if len(nodeList) > 1 && (*gantt || *csvPath != "" || *jsonPath != "") {
		fatalIf(fmt.Errorf("-gantt/-trace-csv/-trace-chrome need a single -nodes value (got %d)", len(nodeList)))
	}

	for _, nodes := range nodeList {
		cfg := hdls.Config{
			App: app, Nodes: nodes, WorkersPerNode: *workers,
			Inter: inter, Intra: intra, Approach: ap,
			Scale: *scale, Seed: *seed, NoiseCV: *noise,
			Workload:        *wlSpec,
			ExtendedRuntime: *extended,
			CollectTrace:    *gantt || *csvPath != "" || *jsonPath != "",
		}
		if *speedCSV != "" {
			cfg.Topology.NodeSpeeds, err = cliutil.ParseFloats(*speedCSV)
			fatalIf(err)
		}
		if *coreCSV != "" {
			cfg.Topology.NodeCores, err = cliutil.ParsePositiveInts(*coreCSV)
			fatalIf(err)
		}
		if *slowRate > 0 {
			cfg.Perturbation.SlowdownRate = *slowRate
			cfg.Perturbation.SlowdownFactor = *slowFac
			cfg.Perturbation.SlowdownDuration = sim.Time(*slowDur)
			cfg.Perturbation.Seed = *seed
		}
		if *bgCSV != "" {
			cfg.Perturbation.BackgroundLoad, err = cliutil.ParseFloats(*bgCSV)
			fatalIf(err)
		}
		res, err := hdls.Run(cfg)
		fatalIf(err)
		report(res, app, inter, intra, ap, nodes, *workers, *scale, *wlSpec)

		if *gantt && res.Trace != nil {
			fmt.Println()
			fmt.Print(res.Trace.Gantt(100))
		}
		if *csvPath != "" && res.Trace != nil {
			f, err := os.Create(*csvPath)
			fatalIf(err)
			fatalIf(res.Trace.WriteCSV(f))
			fatalIf(f.Close())
			fmt.Printf("  trace written      : %s (%d events)\n", *csvPath, len(res.Trace.Events))
		}
		if *jsonPath != "" && res.Trace != nil {
			f, err := os.Create(*jsonPath)
			fatalIf(err)
			fatalIf(res.Trace.WriteChromeJSON(f))
			fatalIf(f.Close())
			fmt.Printf("  chrome trace       : %s (open in chrome://tracing)\n", *jsonPath)
		}
	}
}

// report prints one experiment's metric block.
func report(res *hdls.Result, app hdls.App, inter, intra dls.Technique,
	ap hdls.Approach, nodes, workers, scale int, wlSpec string) {
	name := app.String()
	if wlSpec != "" {
		name = wlSpec
	}
	fmt.Printf("%s  %v+%v  %v  %d nodes × %d workers (scale 1/%d)\n",
		name, inter, intra, ap, nodes, workers, scale)
	if wlSpec == "" {
		// The ideal-time bound is defined for the paper kernels only.
		ideal := hdls.IdealTime(app, scale, nodes, workers)
		fmt.Printf("  parallel loop time : %s  (%.2f× ideal %s)\n",
			stats.FormatSeconds(float64(res.ParallelTime)),
			float64(res.ParallelTime)/float64(ideal),
			stats.FormatSeconds(float64(ideal)))
	} else {
		fmt.Printf("  parallel loop time : %s\n", stats.FormatSeconds(float64(res.ParallelTime)))
	}
	fmt.Printf("  load imbalance     : %.3f (max/mean − 1 over worker finish times)\n", res.LoadImbalance)
	fmt.Printf("  global chunks      : %d\n", res.GlobalChunks)
	fmt.Printf("  local sub-chunks   : %d\n", res.LocalChunks)
	if res.LockAcquisitions > 0 {
		fmt.Printf("  Win_lock attempts  : %d for %d acquisitions (%.2f per acquisition)\n",
			res.LockAttempts, res.LockAcquisitions,
			float64(res.LockAttempts)/float64(res.LockAcquisitions))
	}
	if res.BarrierWait > 0 {
		fmt.Printf("  barrier idle time  : %s accumulated across threads\n",
			stats.FormatSeconds(float64(res.BarrierWait)))
	}
}

func parseApproach(s string) (hdls.Approach, error) {
	return hdls.ParseApproach(s)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdlsim:", err)
		os.Exit(1)
	}
}
